// Table 1: performance breakdown of metropolis and oracle with and
// without priority scheduling — busy hour, 500 agents, 4 and 8 L4 GPUs.
//
// Paper reference points: priority scheduling speeds metropolis up by
// 3.84% (4 GPUs) and 15.7% (8 GPUs) while oracle barely moves (1.10%,
// 0.11%); with priority enabled, metropolis parallelism rises 41.9 -> 50.9
// while oracle only moves 69.4 -> 69.9.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::print_header(
      "Table 1 — priority scheduling ablation (busy hour, 500 agents, L4)");
  const auto busy = bench::registry_window(bench::registry_spec(
      bench::ville_scenario_name(quick ? 100 : 500),
      {strformat("window_begin=%d", bench::kBusyBegin),
       strformat("window_end=%d", bench::kBusyEnd)}));
  const std::vector<int> widths{18, 12, 12, 12, 12};
  bench::print_row({"", "metro 4gpu", "metro 8gpu", "oracle 4gpu",
                    "oracle 8gpu"},
                   widths);
  double with_priority[4], without_priority[4];
  double par_with[4], par_without[4];
  int col = 0;
  for (replay::Mode mode : {replay::Mode::kMetropolis, replay::Mode::kOracle}) {
    for (int gpus : {4, 8}) {
      auto cfg = bench::l4_llama8b(gpus);
      // Finite worker pool (the paper sizes workers by CPU resources,
      // §3.1): with FIFO dispatch, far-ahead agents hog workers while the
      // laggards everyone depends on sit queued — the blocking the paper's
      // priority scheduling removes.
      cfg.max_concurrent_clusters = 32;
      cfg.cluster.replica.max_running_requests = 16;
      cfg.cluster.priority_scheduling = true;
      const auto w = bench::run_mode(busy, cfg, mode);
      cfg.cluster.priority_scheduling = false;
      const auto wo = bench::run_mode(busy, cfg, mode);
      with_priority[col] = w.completion_seconds;
      without_priority[col] = wo.completion_seconds;
      par_with[col] = w.avg_parallelism;
      par_without[col] = wo.avg_parallelism;
      ++col;
    }
  }
  auto fmt_row = [&](const char* name, const double* vals) {
    bench::print_row({name, strformat("%.0fs", vals[0]),
                      strformat("%.0fs", vals[1]),
                      strformat("%.0fs", vals[2]),
                      strformat("%.0fs", vals[3])},
                     widths);
  };
  fmt_row("w/ priority", with_priority);
  fmt_row("w/o priority", without_priority);
  bench::print_row(
      {"speedup",
       strformat("%.2f%%", 100.0 * (without_priority[0] / with_priority[0] - 1.0)),
       strformat("%.2f%%", 100.0 * (without_priority[1] / with_priority[1] - 1.0)),
       strformat("%.2f%%", 100.0 * (without_priority[2] / with_priority[2] - 1.0)),
       strformat("%.2f%%", 100.0 * (without_priority[3] / with_priority[3] - 1.0))},
      widths);
  std::printf(
      "\nachieved parallelism (8 GPUs): metropolis %.1f -> %.1f with "
      "priority; oracle %.1f -> %.1f (paper: 41.9 -> 50.9 and 69.4 -> "
      "69.9)\n",
      par_without[1], par_with[1], par_without[3], par_with[3]);
  return 0;
}
