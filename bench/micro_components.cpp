// Component micro-benchmarks (google-benchmark): the building blocks whose
// cost the paper's §3.6 engineering keeps off the critical path.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/metric.h"
#include "core/scoreboard.h"
#include "des/event_loop.h"
#include "kv/store.h"
#include "llm/cost_model.h"
#include "runtime/task_pool.h"
#include "world/graph_index.h"
#include "world/pathfinding.h"
#include "world/social_graph.h"
#include "world/spatial_index.h"

namespace {

using namespace aimetro;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      loop.schedule_at((i * 2654435761u) % 100000, [&sink] { ++sink; });
    }
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

void BM_KvIncr(benchmark::State& state) {
  kv::Store store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.incr_by("counter", 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvIncr);

void BM_KvTransaction(benchmark::State& state) {
  kv::Store store;
  std::int64_t i = 0;
  for (auto _ : state) {
    kv::Transaction txn = store.transaction();
    txn.watch("agent:1");
    txn.hset("agent:1", "step", std::to_string(i++));
    txn.rpush("log", "commit");
    benchmark::DoNotOptimize(txn.exec());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvTransaction);

void BM_SpatialIndexQuery(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  world::SpatialIndex index(8.0);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    index.insert(i, Pos{rng.uniform(0, 1000), rng.uniform(0, 100)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query_box(Pos{rng.uniform(0, 1000), rng.uniform(0, 100)}, 16.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpatialIndexQuery)->Arg(100)->Arg(1000);

// Full dispatch->commit cycles over a crowd of the given size: the cost
// of the dependency bookkeeping per agent-step, for the spatial-index
// probe path against the historical full-scan reference. At the paper's
// sparsity the indexed path should scale near-flat per agent-step while
// brute force grows linearly — this pair headlines the win.
void BM_ScoreboardCommit(benchmark::State& state, core::ScanMode mode) {
  const auto n = static_cast<int>(state.range(0));
  constexpr Step kTarget = 5;
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Pos> init;
    for (int i = 0; i < n; ++i) {
      init.push_back(Pos{rng.uniform(0, n * 4.0), rng.uniform(0, 100.0)});
    }
    core::Scoreboard sb(core::DependencyParams{4.0, 1.0},
                        core::make_euclidean(), init, kTarget, mode);
    state.ResumeTiming();
    std::uint64_t steps = 0;
    while (!sb.all_done()) {
      for (auto& cluster : sb.pop_ready_clusters()) {
        std::vector<std::pair<AgentId, Pos>> moves;
        for (AgentId m : cluster.members) {
          Pos p = sb.pos_of(m);
          p.x += rng.uniform(-1.0, 1.0) * 0.7;
          moves.emplace_back(m, p);
          ++steps;
        }
        sb.commit(moves);
      }
    }
    benchmark::DoNotOptimize(steps);
  }
  state.SetItemsProcessed(state.iterations() * n * kTarget);
}
BENCHMARK_CAPTURE(BM_ScoreboardCommit, brute, core::ScanMode::kBruteForce)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScoreboardCommit, indexed, core::ScanMode::kIndexed)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// "Who is within r hops of here" on a social graph, one agent per node:
// the graph-metric neighbor probe the scoreboard issues on every
// dispatch/commit. `brute` is exactly the full-scan reference path — a
// GraphMetric distance test against every agent (the metric's lazy BFS
// row cache included, so this is the real cost, not a strawman); the
// indexed probe walks the GraphIndex ball, touching only the ~d^r nodes
// inside it. The gap is the reason social_net10000 is tractable.
void BM_GraphNeighborQuery(benchmark::State& state, bool indexed) {
  const auto n = static_cast<int>(state.range(0));
  const auto adjacency = world::newman_watts_graph(n, 4, 0.1, 17);
  const core::GraphMetric metric(adjacency);
  world::GraphIndex index(&adjacency);
  std::vector<Pos> positions;
  for (int i = 0; i < n; ++i) {
    positions.push_back(Pos{static_cast<double>(i), 0});
    index.insert(i, positions.back());
  }
  constexpr double kRadius = 2.0;  // social_net's perception radius
  Rng rng(3);
  std::vector<AgentId> out;
  for (auto _ : state) {
    const Pos center{static_cast<double>(rng.uniform_int(0, n - 1)), 0};
    if (indexed) {
      index.query_ball_into(center, kRadius, &out);
    } else {
      out.clear();
      for (int i = 0; i < n; ++i) {
        if (metric.distance(center, positions[static_cast<std::size_t>(i)]) <=
            kRadius) {
          out.push_back(i);
        }
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_GraphNeighborQuery, brute, false)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);
BENCHMARK_CAPTURE(BM_GraphNeighborQuery, indexed, true)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_AStarSmallville(benchmark::State& state) {
  const auto map = world::GridMap::smallville(25);
  const Tile start =
      world::nearest_walkable(map, map.object("bed_0")->tile);
  const Tile goal =
      world::nearest_walkable(map, map.arena("bar")->rect.center());
  for (auto _ : state) {
    benchmark::DoNotOptimize(world::find_path(map, start, goal));
  }
}
BENCHMARK(BM_AStarSmallville);

// ---- Dispatch overhead: per-dispatch thread spawn vs persistent pool ----
//
// Before the TaskPool refactor the scenario driver and the gym Env
// constructed and joined `members` std::threads inside the timed region
// of every dispatch; the engine-backend numbers therefore carried a
// pthread_create per member chain on the critical path. These two
// benchmarks measure exactly that per-dispatch cost against handing the
// same batch to an already-running TaskPool, so the refactor's win is a
// number rather than an assertion. Arg = members per dispatch (typical
// cluster sizes).

void BM_DispatchSpawnThreads(benchmark::State& state) {
  const auto members = static_cast<int>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m) {
      threads.emplace_back(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    for (std::thread& t : threads) t.join();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * members);
}
BENCHMARK(BM_DispatchSpawnThreads)->Arg(2)->Arg(4)->Arg(8);

void BM_DispatchTaskPool(benchmark::State& state) {
  const auto members = static_cast<int>(state.range(0));
  runtime::TaskPool pool(runtime::derive_pool_workers(4));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m) {
      tasks.push_back(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit_and_wait(std::move(tasks));
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * members);
}
BENCHMARK(BM_DispatchTaskPool)->Arg(2)->Arg(4)->Arg(8);

void BM_CostModelIteration(benchmark::State& state) {
  const llm::CostModel cm(llm::ModelSpec::llama3_8b(), llm::GpuSpec::l4(), 1);
  std::int64_t kv = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.iteration_time(32, 512, kv += 100));
  }
}
BENCHMARK(BM_CostModelIteration);

}  // namespace

BENCHMARK_MAIN();
