// Component micro-benchmarks (google-benchmark): the building blocks whose
// cost the paper's §3.6 engineering keeps off the critical path.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "core/metric.h"
#include "core/scoreboard.h"
#include "des/event_loop.h"
#include "kv/store.h"
#include "llm/cost_model.h"
#include "runtime/engine.h"
#include "runtime/task_pool.h"
#include "world/graph_index.h"
#include "world/pathfinding.h"
#include "world/social_graph.h"
#include "world/spatial_index.h"
#include "world/world_state.h"

namespace {

using namespace aimetro;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      loop.schedule_at((i * 2654435761u) % 100000, [&sink] { ++sink; });
    }
    loop.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

void BM_KvIncr(benchmark::State& state) {
  kv::Store store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.incr_by("counter", 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvIncr);

void BM_KvTransaction(benchmark::State& state) {
  kv::Store store;
  std::int64_t i = 0;
  for (auto _ : state) {
    kv::Transaction txn = store.transaction();
    txn.watch("agent:1");
    txn.hset("agent:1", "step", std::to_string(i++));
    txn.rpush("log", "commit");
    benchmark::DoNotOptimize(txn.exec());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvTransaction);

void BM_SpatialIndexQuery(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  world::SpatialIndex index(8.0);
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    index.insert(i, Pos{rng.uniform(0, 1000), rng.uniform(0, 100)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query_box(Pos{rng.uniform(0, 1000), rng.uniform(0, 100)}, 16.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpatialIndexQuery)->Arg(100)->Arg(1000);

// Full dispatch->commit cycles over a crowd of the given size: the cost
// of the dependency bookkeeping per agent-step, for the spatial-index
// probe path against the historical full-scan reference. At the paper's
// sparsity the indexed path should scale near-flat per agent-step while
// brute force grows linearly — this pair headlines the win.
void BM_ScoreboardCommit(benchmark::State& state, core::ScanMode mode) {
  const auto n = static_cast<int>(state.range(0));
  constexpr Step kTarget = 5;
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Pos> init;
    for (int i = 0; i < n; ++i) {
      init.push_back(Pos{rng.uniform(0, n * 4.0), rng.uniform(0, 100.0)});
    }
    core::Scoreboard sb(core::DependencyParams{4.0, 1.0},
                        core::make_euclidean(), init, kTarget, mode);
    state.ResumeTiming();
    std::uint64_t steps = 0;
    while (!sb.all_done()) {
      for (auto& cluster : sb.pop_ready_clusters()) {
        std::vector<std::pair<AgentId, Pos>> moves;
        for (AgentId m : cluster.members) {
          Pos p = sb.pos_of(m);
          p.x += rng.uniform(-1.0, 1.0) * 0.7;
          moves.emplace_back(m, p);
          ++steps;
        }
        sb.commit(moves);
      }
    }
    benchmark::DoNotOptimize(steps);
  }
  state.SetItemsProcessed(state.iterations() * n * kTarget);
  state.counters["N"] = n;
  state.counters["shards"] = 1;
}
BENCHMARK_CAPTURE(BM_ScoreboardCommit, brute, core::ScanMode::kBruteForce)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ScoreboardCommit, indexed, core::ScanMode::kIndexed)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// "Who is within r hops of here" on a social graph, one agent per node:
// the graph-metric neighbor probe the scoreboard issues on every
// dispatch/commit. `brute` is exactly the full-scan reference path — a
// GraphMetric distance test against every agent (the metric's lazy BFS
// row cache included, so this is the real cost, not a strawman); the
// indexed probe walks the GraphIndex ball, touching only the ~d^r nodes
// inside it. The gap is the reason social_net10000 is tractable.
void BM_GraphNeighborQuery(benchmark::State& state, bool indexed) {
  const auto n = static_cast<int>(state.range(0));
  const auto adjacency = world::newman_watts_graph(n, 4, 0.1, 17);
  const core::GraphMetric metric(adjacency);
  world::GraphIndex index(&adjacency);
  std::vector<Pos> positions;
  for (int i = 0; i < n; ++i) {
    positions.push_back(Pos{static_cast<double>(i), 0});
    index.insert(i, positions.back());
  }
  constexpr double kRadius = 2.0;  // social_net's perception radius
  Rng rng(3);
  std::vector<AgentId> out;
  for (auto _ : state) {
    const Pos center{static_cast<double>(rng.uniform_int(0, n - 1)), 0};
    if (indexed) {
      index.query_ball_into(center, kRadius, &out);
    } else {
      out.clear();
      for (int i = 0; i < n; ++i) {
        if (metric.distance(center, positions[static_cast<std::size_t>(i)]) <=
            kRadius) {
          out.push_back(i);
        }
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["N"] = n;
  state.counters["shards"] = 1;
}
BENCHMARK_CAPTURE(BM_GraphNeighborQuery, brute, false)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);
BENCHMARK_CAPTURE(BM_GraphNeighborQuery, indexed, true)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

// End-to-end engine commits under the boundary-lag protocol: 10k agents
// random-walking a wide arena (2048 tiles across — each of 8 strips is
// ~256 wide against a ~15-tile blocking+coupling radius, so nearly every
// commit is interior). Arg = shards. The shards=1 row is the old global
// commit lock; the shards=8 row is the same workload with interior
// commits striped across per-shard mutexes. The step function is a
// zero-latency hash walk, so the commit path IS the workload — the gap
// between the rows is the contention the partition removes.
void BM_ShardedCommit(benchmark::State& state) {
  const auto shards = static_cast<std::int32_t>(state.range(0));
  constexpr int kAgents = 10000;
  constexpr Step kTarget = 3;
  const auto map = world::GridMap::arena(2048, 8);
  std::vector<Tile> starts;
  starts.reserve(kAgents);
  for (int i = 0; i < kAgents; ++i) {
    starts.push_back(Tile{i % 2048, i / 2048});
  }
  auto step_fn = [&map](const core::AgentCluster& cluster,
                        const world::WorldState& w) {
    std::vector<world::StepIntent> intents;
    intents.reserve(cluster.members.size());
    for (AgentId m : cluster.members) {
      Tile t;
      {
        common::ReaderLock lock(w.mutex());
        t = w.tile_of(m);
      }
      // Deterministic per-(agent, step) drift along x; stays walkable
      // because the arena has no obstacles.
      const std::uint64_t h =
          (static_cast<std::uint64_t>(m) * 2654435761u) ^
          (static_cast<std::uint64_t>(cluster.step) * 40503u);
      Tile next{t.x + static_cast<std::int32_t>(h % 3) - 1, t.y};
      world::StepIntent intent;
      intent.agent = m;
      if (map.in_bounds(next) && map.walkable(next)) intent.move_to = next;
      intents.push_back(intent);
    }
    return intents;
  };
  for (auto _ : state) {
    state.PauseTiming();
    world::WorldState world(&map, starts);
    runtime::EngineConfig cfg;
    cfg.params = core::DependencyParams{4.0, 1.0};
    cfg.target_step = kTarget;
    cfg.n_workers = 8;
    cfg.shards = shards;
    cfg.kv_instrumentation = false;
    runtime::Engine engine(&world, cfg, step_fn);
    state.ResumeTiming();
    const auto stats = engine.run();
    benchmark::DoNotOptimize(stats.commits);
  }
  state.SetItemsProcessed(state.iterations() * kAgents * kTarget);
  state.counters["N"] = kAgents;
  state.counters["shards"] = shards;
}
BENCHMARK(BM_ShardedCommit)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// The same engine-commit workload under a hotspot: 95% of the 10k agents
// start in the leftmost quarter of an 8192-wide arena, so equal-width
// strips hand two of the eight pools ~4x their share of the commits
// while the eastern pools idle. The hot band is kept wide relative to
// the ~15-tile confinement radius so population quantiles (~270-wide hot
// strips) still classify almost every commit as interior — the rebalance
// moves load, it must not convert it into cross-shard escalations.
// Variants:
//   width       static equal-width strips (the degenerate baseline);
//   population  boundaries at population quantiles of the initial
//               positions (hot band split across all strips up front);
//   episode     starts equal-width, then one contention-driven
//               rebalance fires mid-run once the floor clears step 1 —
//               the engine's episode-boundary reshard in miniature.
// All three commit the identical moves; digests are checked equal in CI,
// so the only thing moving here is commit wall-time.
void BM_ShardedCommitSkewed(benchmark::State& state,
                            world::PartitionKind partition, bool episode) {
  const auto shards = static_cast<std::int32_t>(state.range(0));
  constexpr int kAgents = 10000;
  constexpr int kHot = kAgents * 95 / 100;
  constexpr Step kTarget = 4;
  const auto map = world::GridMap::arena(8192, 8);
  std::vector<Tile> starts;
  starts.reserve(kAgents);
  // Hot band: x in [0, 2048) — two equal-width strips' span at shards=8.
  for (int i = 0; i < kHot; ++i) {
    starts.push_back(Tile{i % 2048, i / 2048});
  }
  for (int j = 0; j < kAgents - kHot; ++j) {
    starts.push_back(Tile{2048 + j % 6144, 5 + j / 6144});
  }
  auto step_fn = [&map](const core::AgentCluster& cluster,
                        const world::WorldState& w) {
    std::vector<world::StepIntent> intents;
    intents.reserve(cluster.members.size());
    for (AgentId m : cluster.members) {
      Tile t;
      {
        common::ReaderLock lock(w.mutex());
        t = w.tile_of(m);
      }
      const std::uint64_t h =
          (static_cast<std::uint64_t>(m) * 2654435761u) ^
          (static_cast<std::uint64_t>(cluster.step) * 40503u);
      Tile next{t.x + static_cast<std::int32_t>(h % 3) - 1, t.y};
      world::StepIntent intent;
      intent.agent = m;
      if (map.in_bounds(next) && map.walkable(next)) intent.move_to = next;
      intents.push_back(intent);
    }
    return intents;
  };
  for (auto _ : state) {
    state.PauseTiming();
    world::WorldState world(&map, starts);
    runtime::EngineConfig cfg;
    cfg.params = core::DependencyParams{4.0, 1.0};
    cfg.target_step = kTarget;
    cfg.n_workers = 8;
    cfg.shards = shards;
    cfg.partition = partition;
    if (episode) cfg.reshard_at = {1};
    cfg.kv_instrumentation = false;
    runtime::Engine engine(&world, cfg, step_fn);
    state.ResumeTiming();
    const auto stats = engine.run();
    benchmark::DoNotOptimize(stats.commits);
  }
  state.SetItemsProcessed(state.iterations() * kAgents * kTarget);
  state.counters["N"] = kAgents;
  state.counters["shards"] = shards;
}
BENCHMARK_CAPTURE(BM_ShardedCommitSkewed, width,
                  world::PartitionKind::kEqualWidth, false)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedCommitSkewed, population,
                  world::PartitionKind::kEqualPopulation, false)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedCommitSkewed, episode,
                  world::PartitionKind::kEqualWidth, true)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AStarSmallville(benchmark::State& state) {
  const auto map = world::GridMap::smallville(25);
  const Tile start =
      world::nearest_walkable(map, map.object("bed_0")->tile);
  const Tile goal =
      world::nearest_walkable(map, map.arena("bar")->rect.center());
  for (auto _ : state) {
    benchmark::DoNotOptimize(world::find_path(map, start, goal));
  }
}
BENCHMARK(BM_AStarSmallville);

// ---- Dispatch overhead: per-dispatch thread spawn vs persistent pool ----
//
// Before the TaskPool refactor the scenario driver and the gym Env
// constructed and joined `members` std::threads inside the timed region
// of every dispatch; the engine-backend numbers therefore carried a
// pthread_create per member chain on the critical path. These two
// benchmarks measure exactly that per-dispatch cost against handing the
// same batch to an already-running TaskPool, so the refactor's win is a
// number rather than an assertion. Arg = members per dispatch (typical
// cluster sizes).

void BM_DispatchSpawnThreads(benchmark::State& state) {
  const auto members = static_cast<int>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m) {
      threads.emplace_back(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    for (std::thread& t : threads) t.join();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * members);
}
BENCHMARK(BM_DispatchSpawnThreads)->Arg(2)->Arg(4)->Arg(8);

void BM_DispatchTaskPool(benchmark::State& state) {
  const auto members = static_cast<int>(state.range(0));
  runtime::TaskPool pool(runtime::derive_pool_workers(4));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    std::vector<runtime::TaskPool::Task> tasks;
    tasks.reserve(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m) {
      tasks.push_back(
          [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit_and_wait(std::move(tasks));
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * members);
}
BENCHMARK(BM_DispatchTaskPool)->Arg(2)->Arg(4)->Arg(8);

void BM_CostModelIteration(benchmark::State& state) {
  const llm::CostModel cm(llm::ModelSpec::llama3_8b(), llm::GpuSpec::l4(), 1);
  std::int64_t kv = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.iteration_time(32, 512, kv += 100));
  }
}
BENCHMARK(BM_CostModelIteration);

// Tees every run that carries an "N" counter into BenchRecords (the
// benchmarks wired into the perf trajectory set it; the rest only print).
// Console output is unchanged — this subclass only observes.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      auto n_it = run.counters.find("N");
      if (n_it == run.counters.end() || run.error_occurred) continue;
      aimetro::bench::BenchRecord rec;
      rec.benchmark = run.run_name.function_name;
      for (char& c : rec.benchmark) {
        if (c == '/') c = '_';
      }
      rec.n = static_cast<std::int64_t>(n_it->second.value);
      auto s_it = run.counters.find("shards");
      if (s_it != run.counters.end()) {
        rec.shards = static_cast<std::int32_t>(s_it->second.value);
      }
      rec.ms = run.iterations > 0 ? run.real_accumulated_time /
                                        static_cast<double>(run.iterations) *
                                        1e3
                                  : 0.0;
      records_.push_back(std::move(rec));
    }
  }

  const std::vector<aimetro::bench::BenchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<aimetro::bench::BenchRecord> records_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_dir = aimetro::bench::strip_json_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  aimetro::bench::write_bench_json(json_dir, reporter.records());
  benchmark::Shutdown();
  return 0;
}
