// §3.2/§6 ablation: how conservative are the dependency rules? The
// blocking cone scales with radius_p and max_vel; inflating either
// restrains agents that would never actually interact, widening the gap
// to oracle — the cost of forgoing a data-race detector.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main() {
  bench::print_header(
      "Ablation — rule conservatism (busy hour, 100 agents, 8x L4)");
  auto busy = bench::registry_window(bench::registry_spec(
      bench::ville_scenario_name(100),
      {strformat("window_begin=%d", bench::kBusyBegin),
       strformat("window_end=%d", bench::kBusyEnd)}));
  const auto cfg = bench::l4_llama8b(8);
  const double oracle =
      bench::run_mode(busy, cfg, replay::Mode::kOracle).completion_seconds;
  const std::vector<int> widths{10, 9, 14, 12, 14};
  bench::print_row({"radius_p", "max_vel", "metropolis", "% oracle",
                    "parallelism"},
                   widths);
  for (const double radius : {2.0, 4.0, 8.0, 16.0}) {
    for (const double vel : {1.0, 2.0}) {
      // The replay honours the params carried in the trace header.
      auto variant = busy;
      variant.radius_p = radius;
      variant.max_vel = vel;  // rules only; movement in the trace is 1/step
      const auto metro =
          bench::run_mode(variant, cfg, replay::Mode::kMetropolis);
      bench::print_row(
          {strformat("%.0f", radius), strformat("%.0f", vel),
           strformat("%.0fs", metro.completion_seconds),
           strformat("%.1f%%", 100.0 * oracle / metro.completion_seconds),
           strformat("%.2f", metro.avg_parallelism)},
          widths);
    }
  }
  std::printf(
      "\n(oracle = %.0fs; GenAgent's actual parameters are radius_p=4, "
      "max_vel=1)\n",
      oracle);
  return 0;
}
