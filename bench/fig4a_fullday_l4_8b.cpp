// Figure 4a + §4.2 text: end-to-end 25-agent full-day simulation
// completion time, Llama-3-8B-Instruct on 1..8 NVIDIA L4 GPUs, for
// single-thread / parallel-sync / metropolis / oracle / critical.
//
// Paper reference points: metropolis beats single-thread and parallel-sync
// by 2.38x / 1.44x on one GPU and 3.25x / 1.67x on eight; achieved
// parallelism 0.95 / 1.94 / 3.46 (single / sync / metropolis, 8 GPUs);
// metropolis reaches 82.9% (1 GPU) to 74.7% (8 GPUs) of oracle.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main() {
  bench::print_header(
      "Figure 4a — full day, 25 agents, Llama-3-8B on NVIDIA L4");
  // The registry's calibrated day, full-day window (the entry defaults to
  // the busy hour).
  const auto& day =
      bench::registry_day_trace(bench::registry_spec("smallville_day"));
  const std::vector<int> widths{6, 14, 14, 14, 14, 14};
  bench::print_row({"gpus", "single-thread", "parallel-sync", "metropolis",
                    "oracle", "critical"},
                   widths);

  // single-thread ignores extra GPUs; run it once.
  const double single =
      bench::run_mode(day, bench::l4_llama8b(1), replay::Mode::kSingleThread)
          .completion_seconds;

  for (int gpus : {1, 2, 4, 8}) {
    const auto cfg = bench::l4_llama8b(gpus);
    const auto sync = bench::run_mode(day, cfg, replay::Mode::kParallelSync);
    const auto metro = bench::run_mode(day, cfg, replay::Mode::kMetropolis);
    const auto oracle = bench::run_mode(day, cfg, replay::Mode::kOracle);
    const auto critical = bench::run_mode(day, cfg, replay::Mode::kCritical);
    bench::print_row(
        {std::to_string(gpus), strformat("%.0fs", single),
         strformat("%.0fs", sync.completion_seconds),
         strformat("%.0fs", metro.completion_seconds),
         strformat("%.0fs", oracle.completion_seconds),
         strformat("%.0fs", critical.completion_seconds)},
        widths);
    std::printf(
        "        metropolis speedup: %.2fx vs single-thread, %.2fx vs "
        "parallel-sync | parallelism single=1.00 sync=%.2f metro=%.2f | "
        "%.1f%% of oracle\n",
        single / metro.completion_seconds,
        sync.completion_seconds / metro.completion_seconds,
        sync.avg_parallelism, metro.avg_parallelism,
        100.0 * oracle.completion_seconds / metro.completion_seconds);
  }
  return 0;
}
