// Figure 1: a snippet of the execution trace under lock-step scheduling —
// per-agent streams of LLM invocations with step-boundary lines, showing
// the imbalance that causes idle waiting.
#include <cstdio>

#include "bench/bench_common.h"
#include "replay/gantt.h"

using namespace aimetro;

int main() {
  bench::print_header(
      "Figure 1 — execution trace snippet (parallel-sync, 25 agents)");
  const auto busy = bench::registry_window(bench::registry_spec(
      "smallville_day",
      {strformat("window_begin=%d", bench::kBusyBegin),
       strformat("window_end=%d", bench::kBusyBegin + 40)}));
  auto cfg = bench::l4_llama8b(1);
  cfg.record_gantt = true;
  const auto result =
      bench::run_mode(busy, cfg, replay::Mode::kParallelSync);
  const SimTime end = sim_time_from_seconds(result.completion_seconds);
  // Show the first ~500 seconds like the paper's snippet.
  const SimTime window = std::min<SimTime>(end, sim_time_from_seconds(500));
  std::printf("%s", replay::render_gantt_ascii(result.gantt, busy.n_agents, 0,
                                               window, 110,
                                               result.step_completion_times)
                        .c_str());
  std::printf(
      "\ncalls=%llu  achieved parallelism=%.2f  (the paper measures 1.94 "
      "trace-wide for parallel-sync)\n",
      static_cast<unsigned long long>(result.total_calls),
      result.avg_parallelism);
  return 0;
}
