// Figure 4b: full-day 25-agent simulation with Llama-3-70B-Instruct on
// NVIDIA A100-80GB GPUs — tensor parallelism 4, hybrid TP4xDP2 on eight.
//
// Paper reference points: 2.45x over single-thread and 1.45x over
// parallel-sync, 82% of oracle on 8 GPUs; oracle-to-critical 64.7%.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main() {
  bench::print_header(
      "Figure 4b — full day, 25 agents, Llama-3-70B on NVIDIA A100");
  const auto& day =
      bench::registry_day_trace(bench::registry_spec("smallville_day"));
  const std::vector<int> widths{6, 14, 14, 14, 14, 14};
  bench::print_row({"gpus", "single-thread", "parallel-sync", "metropolis",
                    "oracle", "critical"},
                   widths);
  const double single =
      bench::run_mode(day, bench::a100_llama70b(4),
                      replay::Mode::kSingleThread)
          .completion_seconds;
  for (int gpus : {4, 8}) {
    const auto cfg = bench::a100_llama70b(gpus);
    const auto sync = bench::run_mode(day, cfg, replay::Mode::kParallelSync);
    const auto metro = bench::run_mode(day, cfg, replay::Mode::kMetropolis);
    const auto oracle = bench::run_mode(day, cfg, replay::Mode::kOracle);
    const auto critical = bench::run_mode(day, cfg, replay::Mode::kCritical);
    bench::print_row(
        {std::to_string(gpus), strformat("%.0fs", single),
         strformat("%.0fs", sync.completion_seconds),
         strformat("%.0fs", metro.completion_seconds),
         strformat("%.0fs", oracle.completion_seconds),
         strformat("%.0fs", critical.completion_seconds)},
        widths);
    std::printf(
        "        metropolis speedup: %.2fx vs single-thread, %.2fx vs "
        "parallel-sync | %.1f%% of oracle | oracle/critical=%.1f%%\n",
        single / metro.completion_seconds,
        sync.completion_seconds / metro.completion_seconds,
        100.0 * oracle.completion_seconds / metro.completion_seconds,
        100.0 * critical.completion_seconds / oracle.completion_seconds);
  }
  return 0;
}
