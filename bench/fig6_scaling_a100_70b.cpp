// Figure 6: busy- and quiet-hour benchmarks with Llama-3-70B on eight
// NVIDIA A100 GPUs (TP4 x DP2), agents scaled 25 -> 1000.
//
// Paper reference points: metropolis peaks at 1.97x over parallel-sync at
// 500 agents (busy) and 2.01x at 1000 agents (quiet).
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<int> agent_counts =
      quick ? std::vector<int>{25, 100} : std::vector<int>{25, 100, 500, 1000};
  const std::vector<int> widths{7, 14, 14, 14, 12};
  for (const bool busy : {true, false}) {
    bench::print_header(strformat(
        "Figure 6 — %s hour, Llama-3-70B on 8x A100 (TP4 x DP2)",
        busy ? "busy (12-1pm)" : "quiet (6-7am)"));
    bench::print_row(
        {"agents", "parallel-sync", "metropolis", "oracle", "gpu-limit"},
        widths);
    for (int agents : agent_counts) {
      const auto window = bench::registry_window(bench::registry_spec(
          bench::ville_scenario_name(agents),
          {strformat("window_begin=%d", busy ? bench::kBusyBegin
                                             : bench::kQuietBegin),
           strformat("window_end=%d",
                     busy ? bench::kBusyEnd : bench::kQuietEnd)}));
      const auto cfg = bench::a100_llama70b(8);
      const auto sync =
          bench::run_mode(window, cfg, replay::Mode::kParallelSync);
      const auto metro =
          bench::run_mode(window, cfg, replay::Mode::kMetropolis);
      const auto oracle = bench::run_mode(window, cfg, replay::Mode::kOracle);
      const double limit = bench::gpu_limit_seconds(window, cfg);
      bench::print_row({std::to_string(agents),
                        strformat("%.0fs", sync.completion_seconds),
                        strformat("%.0fs", metro.completion_seconds),
                        strformat("%.0fs", oracle.completion_seconds),
                        strformat("%.0fs", limit)},
                       widths);
      std::printf(
          "        speedup vs sync: %.2fx | %.1f%% of oracle\n",
          sync.completion_seconds / metro.completion_seconds,
          100.0 * oracle.completion_seconds / metro.completion_seconds);
    }
  }
  return 0;
}
