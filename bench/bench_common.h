// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§4). Workloads and platforms come from the scenario registry
// — a harness names a registry scenario (plus `key = value` overrides) and
// gets its trace and DES platform cell through ScenarioDriver, the same
// code path `aimetro_run` and the tests use. Nothing here hand-builds
// traces anymore; a new workload is a registry entry, not a bench edit.
#pragma once

#include <string>
#include <vector>

#include "common/strings.h"
#include "replay/experiment.h"
#include "scenario/spec.h"
#include "trace/generator.h"
#include "world/grid_map.h"

namespace aimetro::bench {

/// Canonical trace windows (steps; 10 simulated seconds per step).
inline constexpr Step kBusyBegin = 4320;   // 12:00
inline constexpr Step kBusyEnd = 4680;     // 13:00
inline constexpr Step kQuietBegin = 2160;  // 06:00
inline constexpr Step kQuietEnd = 2520;    // 07:00

/// Resolve a registry scenario and apply `key = value` overrides on top.
/// Check-fails on unknown scenario names, keys, or invalid final specs, so
/// a harness cannot silently drift off the registry.
scenario::ScenarioSpec registry_spec(
    const std::string& name, const std::vector<std::string>& overrides = {});

/// The full-episode trace of `spec` (its window cleared; `days` day
/// episodes for multi-day specs), built by ScenarioDriver::build_trace
/// and cached — harnesses slice several windows out of one generation.
const trace::SimulationTrace& registry_day_trace(
    const scenario::ScenarioSpec& spec);

/// The spec's replay window of the cached full episode (the whole episode
/// when the spec has no window).
trace::SimulationTrace registry_window(const scenario::ScenarioSpec& spec);

/// The DES platform cell `spec` describes (model/GPU resolved, TP x DP
/// applied) — ScenarioDriver::experiment_config.
replay::ExperimentConfig registry_platform(const scenario::ScenarioSpec& spec);

/// The scenario name covering `n_agents` agents: the paper's calibrated
/// 25-agent day, or its §4.3 scaling construction (`scaling_ville<N>`,
/// n_agents a multiple of 25).
std::string ville_scenario_name(std::int32_t n_agents);

/// Platform presets from §4.1, resolved through the spec layer.
replay::ExperimentConfig l4_llama8b(std::int32_t gpus);
replay::ExperimentConfig a100_llama70b(std::int32_t gpus);   // TP4 (+DP)
replay::ExperimentConfig a100_mixtral(std::int32_t gpus);    // TP2 (+DP)

/// Run one mode on a platform config.
replay::ExperimentResult run_mode(const trace::SimulationTrace& trace,
                                  replay::ExperimentConfig cfg,
                                  replay::Mode mode);

/// gpu-limit (§4.3): the tighter of the two lower bounds — the critical
/// path (dependency bound) and no-dependency (resource bound). The paper's
/// text says "shorter"; both are lower bounds on completion time, so the
/// max is the sound combined bound (see EXPERIMENTS.md).
double gpu_limit_seconds(const trace::SimulationTrace& trace,
                         const replay::ExperimentConfig& cfg);

/// Table printing helpers.
void print_header(const std::string& title);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

// ---- Perf-trajectory JSON emitter ----
//
// Bench binaries accept `--json <dir>` (or `--json=<dir>`): each wired
// benchmark then writes a machine-readable `BENCH_<benchmark>.json` under
// <dir> alongside its console output, so CI can accumulate a perf
// trajectory instead of scraping logs. One record per (benchmark, N,
// shards) cell; peak RSS is the process high-water mark at write time.

struct BenchRecord {
  std::string benchmark;
  std::int64_t n = 0;        // problem size (agents, nodes, ...)
  std::int32_t shards = 1;   // region partition, 1 when not applicable
  double ms = 0.0;           // wall milliseconds per iteration
};

/// Remove `--json <dir>` / `--json=<dir>` from argv (compacting it and
/// updating *argc) so downstream flag parsers never see it. Returns the
/// directory, empty when the flag is absent.
std::string strip_json_flag(int* argc, char** argv);

/// Current process peak RSS in KiB (getrusage high-water mark).
std::int64_t peak_rss_kib();

/// Write one `BENCH_<benchmark>.json` per distinct record.benchmark under
/// `dir` (a flat JSON array of {benchmark, n, shards, ms, peak_rss_kib}).
/// No-op when dir is empty; check-fails when a file cannot be written.
void write_bench_json(const std::string& dir,
                      const std::vector<BenchRecord>& records);

}  // namespace aimetro::bench
