// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§4): it builds the workload (synthetic GenAgent traces,
// §4.1 substitution), sweeps the paper's parameter grid, and prints the
// same rows/series the paper reports, in TSV-friendly form.
#pragma once

#include <string>
#include <vector>

#include "common/strings.h"
#include "replay/experiment.h"
#include "trace/generator.h"
#include "world/grid_map.h"

namespace aimetro::bench {

/// Canonical trace windows (steps; 10 simulated seconds per step).
inline constexpr Step kBusyBegin = 4320;   // 12:00
inline constexpr Step kBusyEnd = 4680;     // 13:00
inline constexpr Step kQuietBegin = 2160;  // 06:00
inline constexpr Step kQuietEnd = 2520;    // 07:00

/// Full-day 25-agent SmallVille trace (cached per seed).
const trace::SimulationTrace& smallville_day(std::uint64_t seed = 42);

/// Concatenated ville with `n_agents` (multiple of 25) agents.
trace::SimulationTrace large_ville(std::int32_t n_agents,
                                   std::uint64_t seed = 42);

/// Platform presets from §4.1.
replay::ExperimentConfig l4_llama8b(std::int32_t gpus);
replay::ExperimentConfig a100_llama70b(std::int32_t gpus);   // TP4 (+DP)
replay::ExperimentConfig a100_mixtral(std::int32_t gpus);    // TP2 (+DP)

/// Run one mode on a platform config.
replay::ExperimentResult run_mode(const trace::SimulationTrace& trace,
                                  replay::ExperimentConfig cfg,
                                  replay::Mode mode);

/// gpu-limit (§4.3): the tighter of the two lower bounds — the critical
/// path (dependency bound) and no-dependency (resource bound). The paper's
/// text says "shorter"; both are lower bounds on completion time, so the
/// max is the sound combined bound (see EXPERIMENTS.md).
double gpu_limit_seconds(const trace::SimulationTrace& trace,
                         const replay::ExperimentConfig& cfg);

/// Table printing helpers.
void print_header(const std::string& title);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

}  // namespace aimetro::bench
