// Multi-day scaling: out-of-order slack across day boundaries.
//
// Sweeps the episode length of the metropolis_week mixed-population
// scenario (1, 2, 4, 7 days) on the DES backend and reports completion
// times for every scheduling setting, plus a cross-day overlap column for
// the metropolis and oracle schedulers: how many of day d+1's calls were
// already submitted while day d's stragglers were still in flight.
//
// The conservative spatiotemporal rule provably cannot overlap a day
// boundary: after the ~7-hour sleeping gap (2520 steps) the lead bound
// radius_p + gap * max_vel exceeds any map diameter, so every pair
// re-couples and the population crosses midnight as one loose wavefront
// (metropolis overlap = 0 is expected, and is itself the paper's
// bounded-lead property made visible). The trace-mined oracle knows who
// actually never interacts and lets decoupled agents start tomorrow while
// yesterday's stragglers are still draining — its overlap column measures
// the cross-day slack a smarter-than-conservative scheduler could still
// harvest. What the metropolis scheduler *does* keep across boundaries is
// its barrier-free night: speedup vs lock-step holds as days grow.
//
//   build/bench/multi_day_scaling [max_days] [key=value overrides...]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "replay/experiment.h"
#include "scenario/driver.h"

using namespace aimetro;

namespace {

struct OverlapStats {
  std::uint64_t overlapped_calls = 0;  // submitted before the prior day drained
  std::uint64_t later_day_calls = 0;   // calls belonging to day 2+
};

OverlapStats cross_day_overlap(const std::vector<replay::GanttRecord>& gantt,
                               Step steps_per_day) {
  // Last finish time per day, then count later-day calls submitted early.
  std::vector<SimTime> day_finish;
  for (const auto& rec : gantt) {
    const auto d = static_cast<std::size_t>(rec.step / steps_per_day);
    if (day_finish.size() <= d) day_finish.resize(d + 1, 0);
    day_finish[d] = std::max(day_finish[d], rec.finish);
  }
  OverlapStats stats;
  for (const auto& rec : gantt) {
    const auto d = static_cast<std::size_t>(rec.step / steps_per_day);
    if (d == 0) continue;
    stats.later_day_calls += 1;
    if (rec.submit < day_finish[d - 1]) stats.overlapped_calls += 1;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::int32_t max_days = 7;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.find('=') == std::string::npos) {
      max_days = std::atoi(arg.c_str());
    } else {
      overrides.push_back(arg);
    }
  }

  bench::print_header(
      "Multi-day scaling: mixed population, cross-day OOO slack");
  const std::vector<int> widths = {5, 9, 11, 11, 11, 9, 11, 13, 13};
  bench::print_row({"days", "calls", "serial(s)", "sync(s)", "metro(s)",
                    "vs sync", "oracle(s)", "metro x-day", "oracle x-day"},
                   widths);

  for (std::int32_t days : {1, 2, 4, 7}) {
    if (days > max_days) break;
    std::vector<std::string> ov = overrides;
    ov.push_back(strformat("days=%d", days));
    const auto spec = bench::registry_spec("metropolis_week", ov);
    const trace::SimulationTrace tr = scenario::ScenarioDriver(spec).build_trace();
    replay::ExperimentConfig cfg = bench::registry_platform(spec);
    cfg.record_gantt = true;

    const auto serial = bench::run_mode(tr, cfg, replay::Mode::kSingleThread);
    const auto sync = bench::run_mode(tr, cfg, replay::Mode::kParallelSync);
    const auto metro = bench::run_mode(tr, cfg, replay::Mode::kMetropolis);
    const auto oracle = bench::run_mode(tr, cfg, replay::Mode::kOracle);

    auto overlap_cell = [&](const replay::ExperimentResult& result) {
      if (days == 1) return std::string("-");
      const OverlapStats overlap =
          cross_day_overlap(result.gantt, spec.steps_per_day);
      return strformat(
          "%llu/%llu",
          static_cast<unsigned long long>(overlap.overlapped_calls),
          static_cast<unsigned long long>(overlap.later_day_calls));
    };
    bench::print_row(
        {strformat("%d", days),
         strformat("%llu",
                   static_cast<unsigned long long>(metro.total_calls)),
         strformat("%.0f", serial.completion_seconds),
         strformat("%.0f", sync.completion_seconds),
         strformat("%.0f", metro.completion_seconds),
         strformat("%.2fx",
                   sync.completion_seconds / metro.completion_seconds),
         strformat("%.0f", oracle.completion_seconds),
         overlap_cell(metro), overlap_cell(oracle)},
        widths);
  }
  std::printf(
      "\nx-day: calls of day d+1 submitted before day d fully drained.\n"
      "Conservative metropolis scheduling is 0 by the bounded-lead rule\n"
      "(the sleeping gap exceeds any map's distance/velocity bound); the\n"
      "trace-mined oracle shows the cross-day slack that actually exists.\n");
  return 0;
}
