// Figure 4c: distribution of LLM calls over the simulated hours — near
// zero 1am-4am (all agents sleeping), quiet ~800 calls at 6-7am, peak
// ~5,000 calls at 12-1pm.
#include <cstdio>

#include "bench/bench_common.h"
#include "trace/stats.h"

using namespace aimetro;

int main() {
  bench::print_header("Figure 4c — LLM query distribution over simulated hours");
  const auto stats = trace::compute_stats(
      bench::registry_day_trace(bench::registry_spec("smallville_day")));
  std::size_t peak = 1;
  for (auto c : stats.calls_per_hour) peak = std::max(peak, c);
  for (int h = 0; h < 24; ++h) {
    const auto calls = stats.calls_per_hour[static_cast<std::size_t>(h)];
    const int bar = static_cast<int>(60.0 * static_cast<double>(calls) /
                                     static_cast<double>(peak));
    std::printf("%02d:00 %6zu %s\n", h, calls, std::string(
        static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf(
      "\ntotal=%zu (paper: 56.7k/day)  mean_in=%.1f (642.6)  mean_out=%.1f "
      "(21.9)  busy 12-13h=%zu (~5000)  quiet 6-7h=%zu (~800)\n",
      stats.total_calls, stats.mean_input_tokens, stats.mean_output_tokens,
      stats.calls_per_hour[12], stats.calls_per_hour[6]);
  return 0;
}
