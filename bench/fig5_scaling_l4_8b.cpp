// Figure 5: busy-hour (12-1pm) and quiet-hour (6-7am) completion times
// with Llama-3-8B on L4 GPUs, scaling agents 25 -> 1000 by concatenating
// independent SmallVilles. gpu-limit combines the critical-path and
// no-dependency lower bounds.
//
// Paper reference points (8 GPUs, busy hour): speedup over parallel-sync
// grows from 1.88x at 25 agents to 4.15x at 500, easing to 3.94x at 1000;
// metropolis rises from 53.1% to 97.0% of oracle.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<int> agent_counts =
      quick ? std::vector<int>{25, 100} : std::vector<int>{25, 100, 500, 1000};
  const std::vector<int> widths{7, 6, 14, 14, 14, 14, 12};

  for (const bool busy : {true, false}) {
    bench::print_header(strformat(
        "Figure 5 — %s hour, Llama-3-8B on L4, agents 25..1000",
        busy ? "busy (12-1pm)" : "quiet (6-7am)"));
    bench::print_row({"agents", "gpus", "single-thread", "parallel-sync",
                      "metropolis", "oracle", "gpu-limit"},
                     widths);
    for (int agents : agent_counts) {
      const auto window = bench::registry_window(bench::registry_spec(
          bench::ville_scenario_name(agents),
          {strformat("window_begin=%d", busy ? bench::kBusyBegin
                                             : bench::kQuietBegin),
           strformat("window_end=%d",
                     busy ? bench::kBusyEnd : bench::kQuietEnd)}));
      const double single =
          bench::run_mode(window, bench::l4_llama8b(1),
                          replay::Mode::kSingleThread)
              .completion_seconds;
      for (int gpus : {1, 8}) {
        const auto cfg = bench::l4_llama8b(gpus);
        const auto sync =
            bench::run_mode(window, cfg, replay::Mode::kParallelSync);
        const auto metro =
            bench::run_mode(window, cfg, replay::Mode::kMetropolis);
        const auto oracle =
            bench::run_mode(window, cfg, replay::Mode::kOracle);
        const double limit = bench::gpu_limit_seconds(window, cfg);
        bench::print_row(
            {std::to_string(agents), std::to_string(gpus),
             strformat("%.0fs", single),
             strformat("%.0fs", sync.completion_seconds),
             strformat("%.0fs", metro.completion_seconds),
             strformat("%.0fs", oracle.completion_seconds),
             strformat("%.0fs", limit)},
            widths);
        std::printf(
            "                speedups: %.2fx vs single, %.2fx vs sync | "
            "parallelism sync=%.2f metro=%.2f | %.1f%% of oracle\n",
            single / metro.completion_seconds,
            sync.completion_seconds / metro.completion_seconds,
            sync.avg_parallelism, metro.avg_parallelism,
            100.0 * oracle.completion_seconds / metro.completion_seconds);
      }
    }
  }
  return 0;
}
