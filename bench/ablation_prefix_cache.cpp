// §4.1 ablation: the paper disables SGLang's automatic common-prefix
// caching for stable benchmarking but notes that "enabling the cache
// generally provides about a 20% throughput gain across all settings".
// This bench toggles the replica prefix-cache model across schedulers.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main() {
  bench::print_header(
      "Ablation — prefix cache on/off (busy hour, 25 agents, 4x L4)");
  // The registry entry's own window is exactly the busy hour.
  const auto busy =
      bench::registry_window(bench::registry_spec("smallville_day"));
  const std::vector<int> widths{14, 12, 12, 10, 12};
  bench::print_row({"mode", "cache off", "cache on", "gain", "hit rate"},
                   widths);
  for (replay::Mode mode :
       {replay::Mode::kParallelSync, replay::Mode::kMetropolis,
        replay::Mode::kOracle}) {
    auto cfg = bench::l4_llama8b(4);
    cfg.cluster.replica.prefix_cache = false;
    const auto off = bench::run_mode(busy, cfg, mode);
    cfg.cluster.replica.prefix_cache = true;
    const auto on = bench::run_mode(busy, cfg, mode);
    bench::print_row(
        {replay::mode_name(mode), strformat("%.0fs", off.completion_seconds),
         strformat("%.0fs", on.completion_seconds),
         strformat("%.1f%%",
                   100.0 * (off.completion_seconds / on.completion_seconds -
                            1.0)),
         strformat("%.1f%%", 100.0 * static_cast<double>(on.prefix_cache_hits) /
                                 static_cast<double>(on.total_calls))},
        widths);
  }
  return 0;
}
