// Figure 7: Mixtral-8x7B (MoE) on eight A100 GPUs — TP2 x DP4, so twice
// the data parallelism of the 70B deployment. Agents scaled 25 -> 1000.
//
// Paper reference points: higher peak speedups than the 70B — 2.97x (busy)
// and 2.29x (quiet) over parallel-sync at 500 agents — thanks to the
// lighter per-replica footprint freeing resources for parallelism.
#include <cstdio>

#include "bench/bench_common.h"

using namespace aimetro;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<int> agent_counts =
      quick ? std::vector<int>{25, 100} : std::vector<int>{25, 100, 500, 1000};
  const std::vector<int> widths{7, 14, 14, 14, 12};
  for (const bool busy : {true, false}) {
    bench::print_header(strformat(
        "Figure 7 — %s hour, Mixtral-8x7B on 8x A100 (TP2 x DP4)",
        busy ? "busy (12-1pm)" : "quiet (6-7am)"));
    bench::print_row(
        {"agents", "parallel-sync", "metropolis", "oracle", "gpu-limit"},
        widths);
    for (int agents : agent_counts) {
      const auto window = bench::registry_window(bench::registry_spec(
          bench::ville_scenario_name(agents),
          {strformat("window_begin=%d", busy ? bench::kBusyBegin
                                             : bench::kQuietBegin),
           strformat("window_end=%d",
                     busy ? bench::kBusyEnd : bench::kQuietEnd)}));
      const auto cfg = bench::a100_mixtral(8);
      const auto sync =
          bench::run_mode(window, cfg, replay::Mode::kParallelSync);
      const auto metro =
          bench::run_mode(window, cfg, replay::Mode::kMetropolis);
      const auto oracle = bench::run_mode(window, cfg, replay::Mode::kOracle);
      const double limit = bench::gpu_limit_seconds(window, cfg);
      bench::print_row({std::to_string(agents),
                        strformat("%.0fs", sync.completion_seconds),
                        strformat("%.0fs", metro.completion_seconds),
                        strformat("%.0fs", oracle.completion_seconds),
                        strformat("%.0fs", limit)},
                       widths);
      std::printf(
          "        speedup vs sync: %.2fx | %.1f%% of oracle\n",
          sync.completion_seconds / metro.completion_seconds,
          100.0 * oracle.completion_seconds / metro.completion_seconds);
    }
  }
  return 0;
}
