#include "bench/bench_common.h"

#include <cstdio>
#include <map>

#include "common/strings.h"

namespace aimetro::bench {

const trace::SimulationTrace& smallville_day(std::uint64_t seed) {
  static std::map<std::uint64_t, trace::SimulationTrace> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    const auto map = world::GridMap::smallville(25);
    trace::GeneratorConfig cfg;
    cfg.n_agents = 25;
    cfg.seed = seed;
    it = cache.emplace(seed, trace::generate(map, cfg)).first;
  }
  return it->second;
}

trace::SimulationTrace large_ville(std::int32_t n_agents, std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.n_agents = 25;
  cfg.seed = seed;
  return trace::generate_large_ville(n_agents / 25, cfg);
}

replay::ExperimentConfig l4_llama8b(std::int32_t gpus) {
  replay::ExperimentConfig cfg;
  cfg.model = llm::ModelSpec::llama3_8b();
  cfg.gpu = llm::GpuSpec::l4();
  cfg.parallelism = llm::ParallelismConfig{1, gpus};
  return cfg;
}

replay::ExperimentConfig a100_llama70b(std::int32_t gpus) {
  replay::ExperimentConfig cfg;
  cfg.model = llm::ModelSpec::llama3_70b();
  cfg.gpu = llm::GpuSpec::a100_80gb();
  // TP4 per replica, hybrid data parallelism beyond four GPUs (§4.1).
  cfg.parallelism = llm::ParallelismConfig{4, std::max(1, gpus / 4)};
  return cfg;
}

replay::ExperimentConfig a100_mixtral(std::int32_t gpus) {
  replay::ExperimentConfig cfg;
  cfg.model = llm::ModelSpec::mixtral_8x7b();
  cfg.gpu = llm::GpuSpec::a100_80gb();
  // Mixtral fits in TP2, enabling higher data parallelism on the same
  // eight-GPU platform (§4.3).
  cfg.parallelism = llm::ParallelismConfig{2, std::max(1, gpus / 2)};
  return cfg;
}

replay::ExperimentResult run_mode(const trace::SimulationTrace& trace,
                                  replay::ExperimentConfig cfg,
                                  replay::Mode mode) {
  cfg.mode = mode;
  return replay::run_experiment(trace, cfg);
}

double gpu_limit_seconds(const trace::SimulationTrace& trace,
                         const replay::ExperimentConfig& cfg) {
  const double critical =
      run_mode(trace, cfg, replay::Mode::kCritical).completion_seconds;
  const double nodep =
      run_mode(trace, cfg, replay::Mode::kNoDependency).completion_seconds;
  return std::max(critical, nodep);
}

void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    line += pad_left(cells[i], static_cast<std::size_t>(w));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

}  // namespace aimetro::bench
