#include "bench/bench_common.h"

#include <sys/resource.h>

#include <cstdio>
#include <map>

#include "common/check.h"
#include "common/strings.h"
#include "scenario/driver.h"
#include "scenario/registry.h"

namespace aimetro::bench {

scenario::ScenarioSpec registry_spec(const std::string& name,
                                     const std::vector<std::string>& overrides) {
  std::string error;
  auto spec = scenario::find_scenario(name, &error);
  AIM_CHECK_MSG(spec.has_value(), error);
  for (const std::string& assignment : overrides) {
    AIM_CHECK_MSG(scenario::apply_override(&*spec, assignment, &error), error);
  }
  error = scenario::validate_spec(*spec);
  AIM_CHECK_MSG(error.empty(), "invalid bench spec '" << name
                                                      << "': " << error);
  return *spec;
}

const trace::SimulationTrace& registry_day_trace(
    const scenario::ScenarioSpec& spec) {
  scenario::ScenarioSpec day = spec;
  day.window_begin = -1;
  day.window_end = -1;
  // Keyed on the full spec text: any knob that shapes the trace (map,
  // agents, segments, profile, seed, scales) is part of the key.
  static std::map<std::string, trace::SimulationTrace> cache;
  const std::string key = day.to_text();
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, scenario::ScenarioDriver(day).build_trace()).first;
  }
  return it->second;
}

trace::SimulationTrace registry_window(const scenario::ScenarioSpec& spec) {
  const trace::SimulationTrace& day = registry_day_trace(spec);
  if (spec.window_begin >= 0) {
    return trace::slice(day, spec.window_begin, spec.window_end);
  }
  return day;
}

replay::ExperimentConfig registry_platform(
    const scenario::ScenarioSpec& spec) {
  return scenario::ScenarioDriver(spec).experiment_config();
}

std::string ville_scenario_name(std::int32_t n_agents) {
  AIM_CHECK_MSG(n_agents >= 25 && n_agents % 25 == 0,
                "ville populations come in multiples of 25");
  if (n_agents == 25) return "smallville_day";
  return strformat("scaling_ville%d", n_agents / 25);
}

replay::ExperimentConfig l4_llama8b(std::int32_t gpus) {
  return registry_platform(registry_spec(
      "smallville_day", {strformat("data_parallel=%d", gpus)}));
}

replay::ExperimentConfig a100_llama70b(std::int32_t gpus) {
  // TP4 per replica, hybrid data parallelism beyond four GPUs (§4.1).
  return registry_platform(registry_spec(
      "smallville_day",
      {"model=llama-3-70b-instruct", "gpu=a100", "tensor_parallel=4",
       strformat("data_parallel=%d", std::max(1, gpus / 4))}));
}

replay::ExperimentConfig a100_mixtral(std::int32_t gpus) {
  // Mixtral fits in TP2, enabling higher data parallelism on the same
  // eight-GPU platform (§4.3).
  return registry_platform(registry_spec(
      "smallville_day",
      {"model=mixtral", "gpu=a100", "tensor_parallel=2",
       strformat("data_parallel=%d", std::max(1, gpus / 2))}));
}

replay::ExperimentResult run_mode(const trace::SimulationTrace& trace,
                                  replay::ExperimentConfig cfg,
                                  replay::Mode mode) {
  cfg.mode = mode;
  return replay::run_experiment(trace, cfg);
}

double gpu_limit_seconds(const trace::SimulationTrace& trace,
                         const replay::ExperimentConfig& cfg) {
  const double critical =
      run_mode(trace, cfg, replay::Mode::kCritical).completion_seconds;
  const double nodep =
      run_mode(trace, cfg, replay::Mode::kNoDependency).completion_seconds;
  return std::max(critical, nodep);
}

std::string strip_json_flag(int* argc, char** argv) {
  std::string dir;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < *argc) {
      dir = argv[++r];
    } else if (arg.rfind("--json=", 0) == 0) {
      dir = arg.substr(7);
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  argv[w] = nullptr;
  return dir;
}

std::int64_t peak_rss_kib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB already; macOS reports bytes.
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::int64_t>(usage.ru_maxrss);
#endif
}

void write_bench_json(const std::string& dir,
                      const std::vector<BenchRecord>& records) {
  if (dir.empty()) return;
  const std::int64_t rss = peak_rss_kib();
  std::map<std::string, std::string> bodies;
  for (const BenchRecord& rec : records) {
    std::string& body = bodies[rec.benchmark];
    body += body.empty() ? "[\n" : ",\n";
    body += strformat(
        "  {\"benchmark\": \"%s\", \"n\": %lld, \"shards\": %d, "
        "\"ms\": %.6f, \"peak_rss_kib\": %lld}",
        rec.benchmark.c_str(), static_cast<long long>(rec.n), rec.shards,
        rec.ms, static_cast<long long>(rss));
  }
  for (auto& [name, body] : bodies) {
    body += "\n]\n";
    const std::string path = strformat("%s/BENCH_%s.json", dir.c_str(),
                                       name.c_str());
    std::FILE* f = std::fopen(path.c_str(), "w");
    AIM_CHECK_MSG(f != nullptr, "cannot write " << path);
    std::fputs(body.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
}

void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    line += pad_left(cells[i], static_cast<std::size_t>(w));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

}  // namespace aimetro::bench
