#include "scenario/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/metric.h"
#include "gym/agents.h"
#include "gym/env.h"
#include "llm/client.h"
#include "llm/cost_model_client.h"
#include "llm/specs.h"
#include "runtime/engine.h"
#include "runtime/sim_clock.h"
#include "runtime/task_pool.h"
#include "trace/generator.h"
#include "world/social_graph.h"
#include "world/world_state.h"

namespace aimetro::scenario {

namespace {

/// Order-sensitive digest over agent-indexed (step, position) states.
/// Positions are tile centers, so quantizing by 4 is exact.
std::uint64_t digest_states(const std::vector<std::pair<Step, Pos>>& states) {
  std::uint64_t h = 0xA13E7205C0FFEE01ULL;
  for (const auto& [step, pos] : states) {
    std::uint64_t v = splitmix64(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(step)));
    v = splitmix64(v ^ static_cast<std::uint64_t>(
                           std::llround(pos.x * 4.0) + (1LL << 30)));
    v = splitmix64(v ^ static_cast<std::uint64_t>(
                           std::llround(pos.y * 4.0) + (1LL << 30)));
    h = splitmix64(h ^ v) + 0x9e3779b97f4a7c15ULL;
  }
  return h;
}

/// Per-agent profile names for a heterogeneous spec, drawn
/// deterministically from the population mix (empty for homogeneous
/// specs). Depends only on (population, agents, seed) — never on the
/// backend. Called once, from the ScenarioDriver constructor.
std::vector<std::string> assigned_profile_names(const ScenarioSpec& spec) {
  if (spec.population.empty()) return {};
  std::string mix_error;
  const auto mix = trace::PopulationMix::parse(spec.population, &mix_error);
  AIM_CHECK_MSG(mix.has_value(), "population: " << mix_error);
  return trace::assign_profiles(*mix, spec.agents, spec.seed);
}

/// Realized population as "profile:count,..." in mix order, for reports.
/// `names` is the driver's one authoritative assignment.
std::string population_summary(const ScenarioSpec& spec,
                               const std::vector<std::string>& names) {
  if (names.empty()) return "";
  std::string mix_error;
  const auto mix = trace::PopulationMix::parse(spec.population, &mix_error);
  AIM_CHECK_MSG(mix.has_value(), "population: " << mix_error);
  std::vector<std::string> parts;
  for (const std::string& profile : mix->profiles) {
    const auto count = std::count(names.begin(), names.end(), profile);
    parts.push_back(strformat("%s:%lld", profile.c_str(),
                              static_cast<long long>(count)));
  }
  return join(parts, ",");
}

/// Generator settings shared by every segment; the per-segment population
/// is decided by segment_agent_counts (n_agents here is a placeholder the
/// per-segment overload overrides; the heterogeneous assignment in
/// `names` — the driver's one authoritative copy — is split across
/// segments in agent-id order).
trace::GeneratorConfig generator_config(
    const ScenarioSpec& spec, const std::vector<std::string>& names) {
  trace::GeneratorConfig cfg;
  cfg.n_agents = spec.agents;
  cfg.steps_per_day = spec.steps_per_day;
  cfg.days = spec.days;
  cfg.seed = spec.seed;
  cfg.radius_p = spec.radius_p;
  cfg.max_vel = spec.max_vel;
  cfg.target_calls_per_25_agents = 56700.0 * spec.calls_scale;
  const auto profile = trace::BehaviorProfile::find(spec.profile);
  AIM_CHECK_MSG(profile.has_value(), "unknown profile " << spec.profile);
  cfg.profile = *profile;
  cfg.profile.conversation_start_prob = std::min(
      1.0, cfg.profile.conversation_start_prob * spec.conversation_scale);
  for (const std::string& name : names) {
    auto assigned = trace::BehaviorProfile::find(name);
    AIM_CHECK_MSG(assigned.has_value(), "unknown profile " << name);
    assigned->conversation_start_prob = std::min(
        1.0, assigned->conversation_start_prob * spec.conversation_scale);
    cfg.agent_profiles.push_back(std::move(*assigned));
  }
  return cfg;
}

/// Trace-side day rows (workload columns) for every day the window
/// overlaps; finish_seconds is filled in by the backend afterwards.
std::vector<ScenarioReport::DayRow> day_rows_from_trace(
    const trace::SimulationTrace& tr, std::int32_t steps_per_day) {
  AIM_CHECK(steps_per_day >= 1);
  const std::int32_t first_day = tr.start_step / steps_per_day;
  const std::int32_t last_day =
      (tr.start_step + tr.n_steps - 1) / steps_per_day;
  std::vector<ScenarioReport::DayRow> rows;
  for (std::int32_t d = first_day; d <= last_day; ++d) {
    ScenarioReport::DayRow row;
    row.day = d;
    rows.push_back(row);
  }
  auto row_of = [&](Step step) -> ScenarioReport::DayRow& {
    return rows[static_cast<std::size_t>(step / steps_per_day - first_day)];
  };
  // Distinct conversations per day (ids are day-unique by construction,
  // so a per-day id set counts whole conversations, not turns).
  std::vector<std::set<std::int32_t>> day_conversations(rows.size());
  for (const trace::AgentTrace& a : tr.agents) {
    for (const trace::LlmCall& c : a.calls) {
      ScenarioReport::DayRow& row = row_of(c.step);
      row.calls += 1;
      row.input_tokens += c.input_tokens;
      row.output_tokens += c.output_tokens;
      if (c.conversation_id >= 0) {
        day_conversations[static_cast<std::size_t>(
                              c.step / steps_per_day - first_day)]
            .insert(c.conversation_id);
      }
    }
  }
  for (std::size_t d = 0; d < rows.size(); ++d) {
    rows[d].conversations = day_conversations[d].size();
  }
  return rows;
}

world::GridMap segment_map(const ScenarioSpec& spec) {
  switch (spec.map) {
    case MapKind::kSmallville:
      return world::GridMap::smallville(spec.homes);
    case MapKind::kPlaza:
      return world::GridMap::plaza(spec.homes);
    case MapKind::kUrbanGrid:
      return world::GridMap::urban_grid(spec.districts, spec.homes);
    case MapKind::kArena:
      return world::GridMap::arena(spec.map_width, spec.map_height);
  }
  AIM_CHECK_MSG(false, "unreachable map kind");
  return world::GridMap(1, 1);
}

/// One engine run's LLM stack, per the spec's clock: a fixed-latency fake
/// measured on the wall clock, or a CostModelLlmClient pricing calls on
/// the spec's model/GPU/parallelism over a scaled virtual SimClock.
struct EngineLlmStack {
  std::unique_ptr<runtime::SimClock> clock;  // virtual mode only
  std::unique_ptr<llm::FakeLlmClient> fake;
  std::unique_ptr<llm::CostModelLlmClient> priced;
  std::chrono::steady_clock::time_point wall_start;

  llm::LlmClient& client() {
    return priced != nullptr ? static_cast<llm::LlmClient&>(*priced) : *fake;
  }
  std::uint64_t calls() const {
    return priced != nullptr ? priced->calls() : fake->calls();
  }
  void start_timing() {
    wall_start = std::chrono::steady_clock::now();
    if (clock != nullptr) clock->restart();
  }
  /// Completion in report units: virtual seconds when priced, else wall.
  double completion_seconds() const {
    if (clock != nullptr) return clock->elapsed_seconds();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  }
};

EngineLlmStack make_engine_llm(const ScenarioSpec& spec) {
  EngineLlmStack stack;
  if (spec.clock == ClockKind::kVirtual) {
    const auto model = llm::find_model(spec.model);
    const auto gpu = llm::find_gpu(spec.gpu);
    AIM_CHECK_MSG(model.has_value(), "unknown model " << spec.model);
    AIM_CHECK_MSG(gpu.has_value(), "unknown GPU " << spec.gpu);
    llm::CostModelClientConfig cfg;
    cfg.data_parallel = spec.data_parallel;
    cfg.seed = spec.seed;
    stack.clock = std::make_unique<runtime::SimClock>(spec.time_scale);
    stack.priced = std::make_unique<llm::CostModelLlmClient>(
        llm::CostModel(*model, *gpu, spec.tensor_parallel), stack.clock.get(),
        cfg);
  } else {
    stack.fake =
        std::make_unique<llm::FakeLlmClient>(spec.seed, spec.call_latency_us);
  }
  stack.start_timing();
  return stack;
}

core::ScanMode scan_mode_of(const ScenarioSpec& spec) {
  return spec.scoreboard == ScoreboardKind::kBrute
             ? core::ScanMode::kBruteForce
             : core::ScanMode::kIndexed;
}

world::PartitionKind partition_kind_of(const ScenarioSpec& spec) {
  return spec.partition == PartitionChoice::kPopulation
             ? world::PartitionKind::kEqualPopulation
             : world::PartitionKind::kEqualWidth;
}

/// Trace-relative rebalance points for reshard = episode: every midnight
/// boundary strictly inside the replay window. The trace slice renumbers
/// steps so step 0 is window_begin; day d's boundary sits at
/// d * steps_per_day - window_start. Empty when reshard is off or the
/// window straddles no midnight (days = 1, or a within-day window).
std::vector<Step> reshard_boundaries(const ScenarioSpec& spec) {
  std::vector<Step> out;
  if (spec.reshard != ReshardMode::kEpisode) return out;
  const Step start = spec.window_start();
  const Step n_steps = spec.sim_steps();
  for (std::int32_t d = 1; d < spec.days; ++d) {
    const Step abs = static_cast<Step>(d) * spec.steps_per_day;
    if (abs > start && abs < start + n_steps) out.push_back(abs - start);
  }
  return out;
}

std::int32_t sign(std::int32_t d) { return d > 0 ? 1 : (d < 0 ? -1 : 0); }

/// One 4-neighbor step from `from` toward `to` (axis with the larger gap
/// first, falling back to the other axis when that tile is unwalkable).
/// Single-axis moves keep Euclidean displacement <= max_vel = 1, which the
/// dependency scoreboard enforces at commit.
Tile step_toward(const world::GridMap& map, Tile from, Tile to) {
  const std::int32_t dx = to.x - from.x;
  const std::int32_t dy = to.y - from.y;
  const Tile via_x{from.x + sign(dx), from.y};
  const Tile via_y{from.x, from.y + sign(dy)};
  const Tile first = std::abs(dx) >= std::abs(dy) ? via_x : via_y;
  const Tile second = std::abs(dx) >= std::abs(dy) ? via_y : via_x;
  if (!(first == from) && map.walkable(first)) return first;
  if (!(second == from) && map.walkable(second)) return second;
  return from;
}

}  // namespace

std::string ScenarioReport::summary() const {
  std::string out = strformat(
      "== scenario '%s' [%s backend] ==\n"
      "agents=%d  steps=%d  llm-calls=%llu  agent-steps=%llu\n",
      scenario.c_str(), backend_name(backend), agents, steps,
      static_cast<unsigned long long>(total_calls),
      static_cast<unsigned long long>(agent_steps));
  if (days > 1) {
    out += strformat("days=%d  steps/day=%d\n", days, steps_per_day);
  }
  if (!population.empty()) {
    out += strformat("population  %s\n", population.c_str());
  }
  const char* unit = virtual_time ? "s (virtual)" : "s (wall)";
  // DES: one global cursor. Engine: 1 worker (trace maps) or lock-step
  // (arena maps) — the pre-metropolis baseline either way. Omitted
  // entirely when the baseline run was skipped.
  if (has_serial) {
    out += strformat("baseline    %10.2f%s\n", serial_seconds, unit);
  }
  if (backend == Backend::kDes) {
    out += strformat("sync        %10.2f%s\n", sync_seconds, unit);
  }
  out += strformat("metropolis  %10.2f%s", metro_seconds, unit);
  std::vector<std::string> speedups;
  if (has_serial) {
    speedups.push_back(strformat("%.2fx vs serial", speedup_vs_serial));
  }
  if (backend == Backend::kDes) {
    speedups.push_back(strformat("%.2fx vs sync", speedup_vs_sync));
  }
  if (!speedups.empty()) {
    out += strformat("   (%s)", join(speedups, ", ").c_str());
  }
  out += "\n";
  if (backend == Backend::kDes) {
    out += strformat("parallelism=%.2f  ", avg_parallelism);
  }
  out += strformat(
      "mean-cluster=%.2f  mean-blockers=%.2f  clusters=%llu\n",
      mean_cluster_size, mean_blockers,
      static_cast<unsigned long long>(clusters_dispatched));
  if (pool_workers > 0) {
    out += strformat(
        "chain-pool  workers=%d  peak-inflight=%llu\n", pool_workers,
        static_cast<unsigned long long>(peak_inflight_tasks));
  }
  if (shards > 1) {
    out += strformat("shards=%d\n", shards);
    if (!shard_rows.empty()) {
      out += strformat("  %6s %10s %12s %12s %14s\n", "shard", "commits",
                       "wait-us", "hold-us", "max-wait-us");
      for (const ShardContention& row : shard_rows) {
        out += strformat(
            "  %6s %10llu %12llu %12llu %14llu\n",
            row.shard < 0 ? "cross" : std::to_string(row.shard).c_str(),
            static_cast<unsigned long long>(row.commits),
            static_cast<unsigned long long>(row.commit_wait_us),
            static_cast<unsigned long long>(row.commit_hold_us),
            static_cast<unsigned long long>(row.max_commit_wait_us));
      }
    }
  }
  out += strformat("scoreboard-digest=%016llx\n",
                   static_cast<unsigned long long>(scoreboard_digest));
  if (day_rows.size() > 1) {
    out += strformat("per-day breakdown (metropolis, %s):\n",
                     virtual_time ? "virtual" : "wall");
    out += strformat("  %4s %10s %12s %11s %9s %14s\n", "day", "calls",
                     "in-tok", "out-tok", "convs", "day-finish");
    for (const DayRow& row : day_rows) {
      out += strformat(
          "  %4d %10llu %12lld %11lld %9llu %13.2fs\n", row.day + 1,
          static_cast<unsigned long long>(row.calls),
          static_cast<long long>(row.input_tokens),
          static_cast<long long>(row.output_tokens),
          static_cast<unsigned long long>(row.conversations),
          row.finish_seconds);
    }
  }
  if (world_hash_serial != 0 && world_hash_metro != 0) {
    out += strformat(
        "world-hash  serial=%016llx  metropolis=%016llx  %s\n",
        static_cast<unsigned long long>(world_hash_serial),
        static_cast<unsigned long long>(world_hash_metro),
        world_hash_serial == world_hash_metro ? "(identical: OK)"
                                              : "(DIVERGED!)");
  }
  return out;
}

ScenarioDriver::ScenarioDriver(ScenarioSpec spec) : spec_(std::move(spec)) {
  const std::string error = validate_spec(spec_);
  AIM_CHECK_MSG(error.empty(), "invalid scenario '" << spec_.name
                                                    << "': " << error);
  assigned_profiles_ = assigned_profile_names(spec_);
}

world::GridMap ScenarioDriver::build_map() const {
  world::GridMap segment = segment_map(spec_);
  if (spec_.segments > 1) {
    return world::GridMap::concatenate(segment, spec_.segments,
                                       /*divider=*/true);
  }
  return segment;
}

trace::SimulationTrace ScenarioDriver::build_trace() const {
  AIM_CHECK_MSG(spec_.map != MapKind::kArena,
                "arena maps have no generated trace");
  const trace::GeneratorConfig cfg = generator_config(spec_, assigned_profiles_);
  trace::SimulationTrace full;
  if (spec_.world == WorldKind::kGraph) {
    full = trace::generate_social_graph(
        world::newman_watts_graph(spec_.graph_nodes, spec_.graph_degree,
                                  spec_.graph_rewire, spec_.seed),
        cfg);
  } else {
    const world::GridMap segment = segment_map(spec_);
    full = trace::generate_concatenated(
        segment,
        segment_agent_counts(spec_.agents, spec_.segments, spec_.segment_skew),
        cfg);
  }
  AIM_CHECK_MSG(full.n_agents == spec_.agents,
                "segment split lost agents: " << full.n_agents << " vs "
                                              << spec_.agents);
  if (spec_.window_begin >= 0) {
    return trace::slice(full, spec_.window_begin, spec_.window_end);
  }
  return full;
}

replay::ExperimentConfig ScenarioDriver::experiment_config() const {
  replay::ExperimentConfig cfg;
  const auto model = llm::find_model(spec_.model);
  const auto gpu = llm::find_gpu(spec_.gpu);
  AIM_CHECK_MSG(model.has_value(), "unknown model " << spec_.model);
  AIM_CHECK_MSG(gpu.has_value(), "unknown GPU " << spec_.gpu);
  cfg.model = *model;
  cfg.gpu = *gpu;
  cfg.parallelism =
      llm::ParallelismConfig{spec_.tensor_parallel, spec_.data_parallel};
  cfg.scan_mode = scan_mode_of(spec_);
  cfg.shards = spec_.resolved_shards();
  cfg.partition = partition_kind_of(spec_);
  cfg.reshard_at = reshard_boundaries(spec_);
  return cfg;
}

std::vector<std::int32_t> segment_agent_counts(std::int32_t agents,
                                               std::int32_t segments) {
  AIM_CHECK(segments >= 1 && agents >= segments);
  const std::int32_t base = agents / segments;
  const std::int32_t remainder = agents % segments;
  std::vector<std::int32_t> counts(static_cast<std::size_t>(segments), base);
  for (std::int32_t k = 0; k < remainder; ++k) counts[k] += 1;
  return counts;
}

std::vector<std::int32_t> segment_agent_counts(std::int32_t agents,
                                               std::int32_t segments,
                                               double skew) {
  AIM_CHECK(skew >= 0.0 && skew < 1.0);
  if (skew == 0.0) return segment_agent_counts(agents, segments);
  AIM_CHECK(segments >= 1 && agents >= segments);
  // One guaranteed agent per segment; the spare mass goes out
  // proportionally to the geometric weights (1 - skew)^k, rounded by
  // largest remainder (ties broken toward lower segment index) so the
  // counts are deterministic and sum exactly to `agents`.
  std::vector<std::int32_t> counts(static_cast<std::size_t>(segments), 1);
  const std::int32_t spare = agents - segments;
  if (spare == 0) return counts;
  std::vector<double> weight(static_cast<std::size_t>(segments));
  double total = 0.0;
  double w = 1.0;
  for (std::int32_t k = 0; k < segments; ++k) {
    weight[static_cast<std::size_t>(k)] = w;
    total += w;
    w *= 1.0 - skew;
  }
  std::vector<double> frac(static_cast<std::size_t>(segments));
  std::int32_t assigned = 0;
  for (std::int32_t k = 0; k < segments; ++k) {
    const double share =
        static_cast<double>(spare) * weight[static_cast<std::size_t>(k)] /
        total;
    const auto whole = static_cast<std::int32_t>(share);
    counts[static_cast<std::size_t>(k)] += whole;
    assigned += whole;
    frac[static_cast<std::size_t>(k)] = share - whole;
  }
  std::vector<std::int32_t> order(static_cast<std::size_t>(segments));
  for (std::int32_t k = 0; k < segments; ++k) {
    order[static_cast<std::size_t>(k)] = k;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return frac[static_cast<std::size_t>(a)] >
                            frac[static_cast<std::size_t>(b)];
                   });
  for (std::int32_t i = 0; i < spare - assigned; ++i) {
    counts[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] += 1;
  }
  return counts;
}

std::vector<Tile> plan_gym_starts(const world::GridMap& map, std::int32_t n) {
  AIM_CHECK(n >= 1);
  // Anchor tiles on an evenly spaced grid with margins (the historical
  // layout), then snap each anchor to the nearest walkable tile no other
  // agent holds — ring search in deterministic scan order. The old clamp
  // to width-1/height-1 could stack agents on one tile when the grid
  // overflowed the map.
  const std::int32_t cols = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::ceil(std::sqrt(n))));
  const std::int32_t rows = (n + cols - 1) / cols;
  const std::int32_t dx = std::max<std::int32_t>(1, (map.width() - 6) / cols);
  const std::int32_t dy = std::max<std::int32_t>(1, (map.height() - 6) / rows);
  const std::int32_t max_ring = std::max(map.width(), map.height());

  std::unordered_set<Tile, TileHash> taken;
  std::vector<Tile> starts;
  starts.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    const Tile anchor{
        std::min(map.width() - 1, 3 + (i % cols) * dx),
        std::min(map.height() - 1, 3 + (i / cols) * dy)};
    bool placed = false;
    for (std::int32_t ring = 0; ring <= max_ring && !placed; ++ring) {
      for (std::int32_t oy = -ring; oy <= ring && !placed; ++oy) {
        for (std::int32_t ox = -ring; ox <= ring && !placed; ++ox) {
          if (std::max(std::abs(ox), std::abs(oy)) != ring) continue;
          const Tile t{anchor.x + ox, anchor.y + oy};
          if (!map.walkable(t) || taken.count(t) != 0) continue;
          taken.insert(t);
          starts.push_back(t);
          placed = true;
        }
      }
    }
    AIM_CHECK_MSG(placed, "map cannot seat " << n << " agents: no free "
                          "walkable tile near (" << anchor.x << ","
                          << anchor.y << ")");
  }
  return starts;
}

ScenarioReport ScenarioDriver::run(bool serial_baseline) const {
  switch (spec_.backend) {
    case Backend::kDes:
      return run_des(serial_baseline);
    case Backend::kEngine:
      return spec_.map == MapKind::kArena
                 ? run_engine_gym(serial_baseline)
                 : run_engine_trace(serial_baseline);
  }
  AIM_CHECK_MSG(false, "unreachable backend");
  return ScenarioReport{};
}

ScenarioReport ScenarioDriver::run_des(bool serial_baseline) const {
  const trace::SimulationTrace tr = build_trace();
  replay::ExperimentConfig cfg = experiment_config();
  const bool multi_day = spec_.days > 1;

  replay::ExperimentResult serial;
  if (serial_baseline) {
    cfg.mode = replay::Mode::kSingleThread;
    serial = replay::run_experiment(tr, cfg);
  }
  cfg.mode = replay::Mode::kParallelSync;
  const auto sync = replay::run_experiment(tr, cfg);
  cfg.mode = replay::Mode::kMetropolis;
  // Per-call finish times feed the per-day breakdown of multi-day runs.
  cfg.record_gantt = multi_day;
  const auto metro = replay::run_experiment(tr, cfg);

  ScenarioReport r;
  r.scenario = spec_.name;
  r.backend = Backend::kDes;
  r.agents = tr.n_agents;
  r.steps = tr.n_steps;
  r.days = spec_.days;
  r.steps_per_day = spec_.steps_per_day;
  r.population = population_summary(spec_, assigned_profiles_);
  if (multi_day) {
    r.day_rows = day_rows_from_trace(tr, spec_.steps_per_day);
    for (const replay::GanttRecord& rec : metro.gantt) {
      const std::size_t d = static_cast<std::size_t>(
          rec.step / spec_.steps_per_day - r.day_rows.front().day);
      r.day_rows[d].finish_seconds = std::max(
          r.day_rows[d].finish_seconds, sim_time_to_seconds(rec.finish));
    }
  }
  r.total_calls = metro.total_calls;
  r.agent_steps = static_cast<std::uint64_t>(
      std::llround(metro.scoreboard.sum_cluster_sizes));
  r.has_serial = serial_baseline;
  r.virtual_time = true;  // the DES backend always reports virtual time
  r.serial_seconds = serial.completion_seconds;
  r.sync_seconds = sync.completion_seconds;
  r.metro_seconds = metro.completion_seconds;
  if (r.metro_seconds > 0.0) {
    if (serial_baseline) {
      r.speedup_vs_serial = r.serial_seconds / r.metro_seconds;
    }
    r.speedup_vs_sync = r.sync_seconds / r.metro_seconds;
  }
  r.avg_parallelism = metro.avg_parallelism;
  r.mean_cluster_size = metro.scoreboard.mean_cluster_size();
  r.mean_blockers = metro.mean_blockers;
  r.clusters_dispatched = metro.scoreboard.clusters_dispatched;
  // Mirror the scoreboard's collapse rules (brute scans and hop metrics
  // run unsharded) so the report never claims a partition that was not
  // actually in effect.
  r.shards = spec_.scoreboard == ScoreboardKind::kBrute ||
                     spec_.world == WorldKind::kGraph
                 ? 1
                 : spec_.resolved_shards();
  r.scoreboard_digest = digest_states(metro.final_agent_states);
  return r;
}

ScenarioReport ScenarioDriver::run_engine_trace(bool serial_baseline) const {
  const bool graph = spec_.world == WorldKind::kGraph;
  // Graph worlds stand on a node-count-by-1 substrate map (bounds checks
  // only); the dependency metric measures hops over the trace's graph.
  const world::GridMap map =
      graph ? world::GridMap(spec_.graph_nodes, 1) : build_map();
  const trace::SimulationTrace tr = build_trace();
  const std::shared_ptr<const core::Metric> metric =
      graph ? std::make_shared<core::GraphMetric>(tr.graph_adjacency)
            : nullptr;

  std::vector<trace::StepCalls> chains(
      static_cast<std::size_t>(tr.n_agents));
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i] = trace::group_calls_by_step(tr.agents[i]);
  }

  struct RunOutcome {
    double completion_seconds = 0.0;  // virtual or wall, per spec clock
    runtime::EngineStats stats;
    std::uint64_t calls = 0;
    std::uint64_t digest = 0;
    std::uint64_t world_hash = 0;
    core::ScoreboardStats scoreboard;
    double mean_blockers = 0.0;
    std::int32_t shards = 1;
    std::vector<runtime::EngineStats> shard_rows;
    /// Member-chain pool diagnostics (zero for the serial baseline,
    /// which runs chains inline).
    std::int32_t pool_workers = 0;
    std::uint64_t peak_inflight_tasks = 0;
    /// Multi-day runs: elapsed (virtual or wall) seconds when the last
    /// chain belonging to each episode day finished, indexed by day.
    std::vector<double> day_finish;
  };

  // Replay the generated trace through the live threaded engine: movement
  // follows the trace (one step toward the trace position, so a move lost
  // to a conflict just lags and retries), and every traced LLM call is
  // issued through the blocking client shim from the worker threads.
  auto run_once = [&](std::int32_t workers) {
    EngineLlmStack llm_stack = make_engine_llm(spec_);
    llm::LlmClient& client = llm_stack.client();
    std::vector<Tile> starts;
    starts.reserve(static_cast<std::size_t>(tr.n_agents));
    for (AgentId a = 0; a < tr.n_agents; ++a) {
      starts.push_back(tr.position_at(a, tr.start_step));
    }
    world::WorldState world(&map, std::move(starts),
                            graph ? &tr.graph_adjacency : nullptr);

    runtime::EngineConfig ecfg;
    ecfg.params = core::DependencyParams{spec_.radius_p, spec_.max_vel};
    ecfg.target_step = tr.n_steps;
    ecfg.n_workers = workers;
    ecfg.scan_mode = scan_mode_of(spec_);
    ecfg.kv_instrumentation = false;
    ecfg.metric = metric;  // null = Euclidean
    ecfg.shards = spec_.resolved_shards();
    ecfg.partition = partition_kind_of(spec_);
    ecfg.reshard_at = reshard_boundaries(spec_);
    ecfg.pin_cores = spec_.pin == PinMode::kCores;

    // One agent's traced calls for a step, issued in chain order (calls
    // within a chain are serial by definition).
    auto issue_chain = [&](AgentId m, Step abs_step) {
      const auto& by_step = chains[static_cast<std::size_t>(m)];
      const auto it = by_step.find(abs_step);
      if (it == by_step.end()) return;
      for (const trace::LlmCall* call : it->second) {
        llm::CompletionRequest req;
        req.prompt = strformat("agent=%d step=%d type=%s", m, abs_step,
                               trace::call_type_name(call->type));
        req.prompt_tokens = call->input_tokens;
        req.max_tokens = call->output_tokens;
        req.priority = abs_step;
        client.complete(req);
      }
    };

    // Multi-day runs: track when each episode day's last chain finished
    // (workers race on this; the mutex is cold next to an LLM call).
    const std::int32_t first_day = tr.start_step / spec_.steps_per_day;
    const std::int32_t n_days =
        (tr.start_step + tr.n_steps - 1) / spec_.steps_per_day - first_day + 1;
    std::vector<double> day_finish(static_cast<std::size_t>(n_days), 0.0);
    common::Mutex day_finish_mutex{"scenario.day_finish"};
    auto note_chain_done = [&](Step abs_step) {
      if (spec_.days <= 1) return;
      const double elapsed = llm_stack.completion_seconds();
      const auto d =
          static_cast<std::size_t>(abs_step / spec_.steps_per_day - first_day);
      common::MutexLock lock(day_finish_mutex);
      day_finish[d] = std::max(day_finish[d], elapsed);
    };

    // Distinct members' chains are independent, so they run concurrently —
    // matching the DES replay, which submits every member's chain on
    // dispatch. The 1-worker baseline keeps them serial: it models the
    // original implementation's single global cursor. Parallel runs hand
    // chains to one persistent per-run TaskPool (created here, before the
    // timed region starts) instead of constructing and joining a thread
    // per chain on every dispatch.
    const bool parallel_chains = workers > 1;
    std::unique_ptr<runtime::TaskPool> chain_pool;
    if (parallel_chains) {
      chain_pool = std::make_unique<runtime::TaskPool>(
          spec_.resolved_pool_workers());
    }
    auto step_fn = [&, parallel_chains](const core::AgentCluster& cluster,
                                        const world::WorldState& w) {
      const Step abs_step = tr.start_step + cluster.step;
      std::vector<AgentId> with_calls;
      for (AgentId m : cluster.members) {
        const auto& by_step = chains[static_cast<std::size_t>(m)];
        if (by_step.count(abs_step) != 0) with_calls.push_back(m);
      }
      if (parallel_chains && with_calls.size() > 1) {
        std::vector<runtime::TaskPool::Task> tasks;
        tasks.reserve(with_calls.size());
        for (AgentId m : with_calls) {
          tasks.push_back([&issue_chain, m, abs_step] {
            issue_chain(m, abs_step);
          });
        }
        chain_pool->submit_and_wait(std::move(tasks), /*priority=*/abs_step);
      } else {
        for (AgentId m : with_calls) issue_chain(m, abs_step);
      }
      if (!with_calls.empty()) note_chain_done(abs_step);

      std::vector<world::StepIntent> intents;
      intents.reserve(cluster.members.size());
      for (AgentId m : cluster.members) {
        Tile current;
        {
          common::ReaderLock lock(w.mutex());
          current = w.tile_of(m);
        }
        const Tile want = tr.position_at(m, abs_step + 1);
        // Graph traces already move one hop per step, so the target is
        // directly reachable; grid traces may need axis decomposition.
        const Tile next = graph ? want : step_toward(map, current, want);
        world::StepIntent intent;
        intent.agent = m;
        if (!(next == current)) intent.move_to = next;
        intents.push_back(intent);
      }
      return intents;
    };

    RunOutcome out;
    runtime::Engine engine(&world, ecfg, step_fn);
    llm_stack.start_timing();
    out.stats = engine.run();
    out.completion_seconds = llm_stack.completion_seconds();
    out.calls = llm_stack.calls();
    if (chain_pool != nullptr) {
      out.pool_workers = chain_pool->workers();
      out.peak_inflight_tasks = chain_pool->stats().peak_in_flight;
    }
    out.day_finish = std::move(day_finish);
    AIM_CHECK(engine.scoreboard().all_done());
    std::vector<std::pair<Step, Pos>> states;
    for (AgentId a = 0; a < tr.n_agents; ++a) {
      states.emplace_back(engine.scoreboard().step_of(a),
                          engine.scoreboard().pos_of(a));
    }
    out.digest = digest_states(states);
    {
      // The engine has drained, but the digest read still follows the
      // protocol: state_hash requires the world lock.
      common::ReaderLock lock(world.mutex());
      out.world_hash = world.state_hash();
    }
    out.scoreboard = engine.scoreboard().stats();
    out.mean_blockers = engine.scoreboard().mean_blockers();
    out.shards = engine.shards();
    out.shard_rows = engine.shard_commit_stats();
    return out;
  };

  const RunOutcome serial = serial_baseline ? run_once(1) : RunOutcome{};
  const RunOutcome metro = run_once(spec_.workers);

  ScenarioReport r;
  r.scenario = spec_.name;
  r.backend = Backend::kEngine;
  r.agents = tr.n_agents;
  r.steps = tr.n_steps;
  r.days = spec_.days;
  r.steps_per_day = spec_.steps_per_day;
  r.population = population_summary(spec_, assigned_profiles_);
  if (spec_.days > 1) {
    r.day_rows = day_rows_from_trace(tr, spec_.steps_per_day);
    for (std::size_t d = 0;
         d < r.day_rows.size() && d < metro.day_finish.size(); ++d) {
      r.day_rows[d].finish_seconds = metro.day_finish[d];
    }
  }
  r.total_calls = metro.calls;
  r.agent_steps = metro.stats.agent_steps;
  r.has_serial = serial_baseline;
  r.virtual_time = spec_.clock == ClockKind::kVirtual;
  r.serial_seconds = serial.completion_seconds;
  r.metro_seconds = metro.completion_seconds;
  if (serial_baseline && r.metro_seconds > 0.0) {
    r.speedup_vs_serial = r.serial_seconds / r.metro_seconds;
  }
  r.mean_cluster_size = metro.scoreboard.mean_cluster_size();
  r.mean_blockers = metro.mean_blockers;
  r.clusters_dispatched = metro.scoreboard.clusters_dispatched;
  r.pool_workers = metro.pool_workers;
  r.peak_inflight_tasks = metro.peak_inflight_tasks;
  r.shards = metro.shards;
  if (metro.shards > 1) {
    for (std::size_t i = 0; i < metro.shard_rows.size(); ++i) {
      const runtime::EngineStats& row = metro.shard_rows[i];
      ScenarioReport::ShardContention c;
      c.shard = i + 1 == metro.shard_rows.size()
                    ? -1  // the cross-shard (boundary) row
                    : static_cast<std::int32_t>(i);
      c.commits = row.commits;
      c.commit_wait_us = row.commit_wait_us;
      c.commit_hold_us = row.commit_hold_us;
      c.max_commit_wait_us = row.max_commit_wait_us;
      r.shard_rows.push_back(c);
    }
  }
  r.scoreboard_digest = metro.digest;
  r.world_hash_serial = serial.world_hash;
  r.world_hash_metro = metro.world_hash;
  return r;
}

ScenarioReport ScenarioDriver::run_engine_gym(bool serial_baseline) const {
  const world::GridMap map = build_map();
  const std::int32_t n = spec_.agents;
  const std::vector<Tile> starts = plan_gym_starts(map, n);

  auto make_agents = [&] {
    std::vector<std::unique_ptr<gym::Agent>> agents;
    for (std::int32_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<gym::WandererAgent>(
          spec_.seed + static_cast<std::uint64_t>(i) * 1000));
    }
    return agents;
  };

  gym::EnvConfig cfg;
  cfg.params = core::DependencyParams{spec_.radius_p, spec_.max_vel};
  cfg.target_step = spec_.sim_steps();
  cfg.n_workers = spec_.workers;
  cfg.pool_workers = spec_.resolved_pool_workers();
  cfg.scan_mode = scan_mode_of(spec_);

  // Baseline: lock-step execution (Algorithm 1), same LLM pricing.
  double serial_secs = 0.0;
  std::uint64_t serial_hash = 0;
  if (serial_baseline) {
    cfg.out_of_order = false;
    EngineLlmStack llm_serial = make_engine_llm(spec_);
    gym::Env lockstep(&map, starts, make_agents(), &llm_serial.client(), cfg);
    llm_serial.start_timing();
    lockstep.run();
    serial_secs = llm_serial.completion_seconds();
    serial_hash = lockstep.state_hash();
  }

  // Out-of-order on the AI Metropolis engine (Algorithm 3).
  cfg.out_of_order = true;
  EngineLlmStack llm_metro = make_engine_llm(spec_);
  gym::Env metro(&map, starts, make_agents(), &llm_metro.client(), cfg);
  llm_metro.start_timing();
  const auto metro_stats = metro.run();
  const double metro_secs = llm_metro.completion_seconds();

  ScenarioReport r;
  r.scenario = spec_.name;
  r.backend = Backend::kEngine;
  r.agents = n;
  r.steps = spec_.sim_steps();
  r.days = spec_.days;
  r.steps_per_day = spec_.steps_per_day;
  r.total_calls = llm_metro.calls();
  r.agent_steps = metro_stats.agent_steps;
  r.has_serial = serial_baseline;
  r.virtual_time = spec_.clock == ClockKind::kVirtual;
  r.serial_seconds = serial_secs;
  r.metro_seconds = metro_secs;
  if (serial_baseline && metro_secs > 0.0) {
    r.speedup_vs_serial = serial_secs / metro_secs;
  }
  // Dependency statistics come from the OOO engine's scoreboard, the
  // same source as the trace paths — so gym runs report the paper's
  // sparsity measure too.
  r.clusters_dispatched = metro.scoreboard_stats().clusters_dispatched;
  r.mean_cluster_size = metro.scoreboard_stats().mean_cluster_size();
  r.mean_blockers = metro.mean_blockers();
  r.pool_workers = metro.chain_pool().workers();
  r.peak_inflight_tasks = metro.chain_pool().stats().peak_in_flight;
  r.world_hash_serial = serial_hash;
  r.world_hash_metro = metro.state_hash();
  r.scoreboard_digest = r.world_hash_metro;
  return r;
}

}  // namespace aimetro::scenario
