#include "scenario/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gym/agents.h"
#include "gym/env.h"
#include "llm/client.h"
#include "llm/specs.h"
#include "runtime/engine.h"
#include "trace/generator.h"
#include "world/world_state.h"

namespace aimetro::scenario {

namespace {

/// Order-sensitive digest over agent-indexed (step, position) states.
/// Positions are tile centers, so quantizing by 4 is exact.
std::uint64_t digest_states(const std::vector<std::pair<Step, Pos>>& states) {
  std::uint64_t h = 0xA13E7205C0FFEE01ULL;
  for (const auto& [step, pos] : states) {
    std::uint64_t v = splitmix64(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(step)));
    v = splitmix64(v ^ static_cast<std::uint64_t>(
                           std::llround(pos.x * 4.0) + (1LL << 30)));
    v = splitmix64(v ^ static_cast<std::uint64_t>(
                           std::llround(pos.y * 4.0) + (1LL << 30)));
    h = splitmix64(h ^ v) + 0x9e3779b97f4a7c15ULL;
  }
  return h;
}

trace::GeneratorConfig generator_config(const ScenarioSpec& spec) {
  trace::GeneratorConfig cfg;
  cfg.n_agents = spec.agents / spec.segments;
  cfg.steps_per_day = spec.steps_per_day;
  cfg.seed = spec.seed;
  cfg.radius_p = spec.radius_p;
  cfg.max_vel = spec.max_vel;
  cfg.target_calls_per_25_agents = 56700.0 * spec.calls_scale;
  const auto profile = trace::BehaviorProfile::find(spec.profile);
  AIM_CHECK_MSG(profile.has_value(), "unknown profile " << spec.profile);
  cfg.profile = *profile;
  cfg.profile.conversation_start_prob = std::min(
      1.0, cfg.profile.conversation_start_prob * spec.conversation_scale);
  return cfg;
}

world::GridMap segment_map(const ScenarioSpec& spec) {
  switch (spec.map) {
    case MapKind::kSmallville:
      return world::GridMap::smallville(spec.homes);
    case MapKind::kPlaza:
      return world::GridMap::plaza(spec.homes);
    case MapKind::kUrbanGrid:
      return world::GridMap::urban_grid(spec.districts, spec.homes);
    case MapKind::kArena:
      return world::GridMap::arena(spec.map_width, spec.map_height);
  }
  AIM_CHECK_MSG(false, "unreachable map kind");
  return world::GridMap(1, 1);
}

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::int32_t sign(std::int32_t d) { return d > 0 ? 1 : (d < 0 ? -1 : 0); }

/// One 4-neighbor step from `from` toward `to` (axis with the larger gap
/// first, falling back to the other axis when that tile is unwalkable).
/// Single-axis moves keep Euclidean displacement <= max_vel = 1, which the
/// dependency scoreboard enforces at commit.
Tile step_toward(const world::GridMap& map, Tile from, Tile to) {
  const std::int32_t dx = to.x - from.x;
  const std::int32_t dy = to.y - from.y;
  const Tile via_x{from.x + sign(dx), from.y};
  const Tile via_y{from.x, from.y + sign(dy)};
  const Tile first = std::abs(dx) >= std::abs(dy) ? via_x : via_y;
  const Tile second = std::abs(dx) >= std::abs(dy) ? via_y : via_x;
  if (!(first == from) && map.walkable(first)) return first;
  if (!(second == from) && map.walkable(second)) return second;
  return from;
}

}  // namespace

std::string ScenarioReport::summary() const {
  std::string out = strformat(
      "== scenario '%s' [%s backend] ==\n"
      "agents=%d  steps=%d  llm-calls=%llu  agent-steps=%llu\n",
      scenario.c_str(), backend_name(backend), agents, steps,
      static_cast<unsigned long long>(total_calls),
      static_cast<unsigned long long>(agent_steps));
  const char* unit = backend == Backend::kDes ? "s (virtual)" : "s (wall)";
  // DES: one global cursor. Engine: 1 worker (trace maps) or lock-step
  // (arena maps) — the pre-metropolis baseline either way.
  out += strformat("baseline    %10.2f%s\n", serial_seconds, unit);
  if (backend == Backend::kDes) {
    out += strformat("sync        %10.2f%s\n", sync_seconds, unit);
  }
  out += strformat("metropolis  %10.2f%s   (%.2fx vs serial", metro_seconds,
                   unit, speedup_vs_serial);
  if (backend == Backend::kDes) {
    out += strformat(", %.2fx vs sync", speedup_vs_sync);
  }
  out += ")\n";
  if (backend == Backend::kDes) {
    out += strformat("parallelism=%.2f  ", avg_parallelism);
  }
  out += strformat(
      "mean-cluster=%.2f  mean-blockers=%.2f  clusters=%llu\n",
      mean_cluster_size, mean_blockers,
      static_cast<unsigned long long>(clusters_dispatched));
  out += strformat("scoreboard-digest=%016llx\n",
                   static_cast<unsigned long long>(scoreboard_digest));
  if (world_hash_serial != 0 && world_hash_metro != 0) {
    out += strformat(
        "world-hash  serial=%016llx  metropolis=%016llx  %s\n",
        static_cast<unsigned long long>(world_hash_serial),
        static_cast<unsigned long long>(world_hash_metro),
        world_hash_serial == world_hash_metro ? "(identical: OK)"
                                              : "(DIVERGED!)");
  }
  return out;
}

ScenarioDriver::ScenarioDriver(ScenarioSpec spec) : spec_(std::move(spec)) {
  const std::string error = validate_spec(spec_);
  AIM_CHECK_MSG(error.empty(), "invalid scenario '" << spec_.name
                                                    << "': " << error);
}

world::GridMap ScenarioDriver::build_map() const {
  world::GridMap segment = segment_map(spec_);
  if (spec_.segments > 1) {
    return world::GridMap::concatenate(segment, spec_.segments,
                                       /*divider=*/true);
  }
  return segment;
}

trace::SimulationTrace ScenarioDriver::build_trace() const {
  AIM_CHECK_MSG(spec_.map != MapKind::kArena,
                "arena maps have no generated trace");
  const world::GridMap segment = segment_map(spec_);
  const trace::GeneratorConfig cfg = generator_config(spec_);
  trace::SimulationTrace full =
      trace::generate_concatenated(segment, spec_.segments, cfg);
  if (spec_.window_begin >= 0) {
    return trace::slice(full, spec_.window_begin, spec_.window_end);
  }
  return full;
}

replay::ExperimentConfig ScenarioDriver::experiment_config() const {
  replay::ExperimentConfig cfg;
  const auto model = llm::find_model(spec_.model);
  const auto gpu = llm::find_gpu(spec_.gpu);
  AIM_CHECK_MSG(model.has_value(), "unknown model " << spec_.model);
  AIM_CHECK_MSG(gpu.has_value(), "unknown GPU " << spec_.gpu);
  cfg.model = *model;
  cfg.gpu = *gpu;
  cfg.parallelism =
      llm::ParallelismConfig{spec_.tensor_parallel, spec_.data_parallel};
  return cfg;
}

ScenarioReport ScenarioDriver::run(bool serial_baseline) const {
  switch (spec_.backend) {
    case Backend::kDes:
      return run_des(serial_baseline);
    case Backend::kEngine:
      return spec_.map == MapKind::kArena
                 ? run_engine_gym(serial_baseline)
                 : run_engine_trace(serial_baseline);
  }
  AIM_CHECK_MSG(false, "unreachable backend");
  return ScenarioReport{};
}

ScenarioReport ScenarioDriver::run_des(bool serial_baseline) const {
  const trace::SimulationTrace tr = build_trace();
  replay::ExperimentConfig cfg = experiment_config();

  replay::ExperimentResult serial;
  if (serial_baseline) {
    cfg.mode = replay::Mode::kSingleThread;
    serial = replay::run_experiment(tr, cfg);
  }
  cfg.mode = replay::Mode::kParallelSync;
  const auto sync = replay::run_experiment(tr, cfg);
  cfg.mode = replay::Mode::kMetropolis;
  const auto metro = replay::run_experiment(tr, cfg);

  ScenarioReport r;
  r.scenario = spec_.name;
  r.backend = Backend::kDes;
  r.agents = tr.n_agents;
  r.steps = tr.n_steps;
  r.total_calls = metro.total_calls;
  r.agent_steps = static_cast<std::uint64_t>(
      std::llround(metro.scoreboard.sum_cluster_sizes));
  r.serial_seconds = serial.completion_seconds;
  r.sync_seconds = sync.completion_seconds;
  r.metro_seconds = metro.completion_seconds;
  if (r.metro_seconds > 0.0) {
    if (serial_baseline) {
      r.speedup_vs_serial = r.serial_seconds / r.metro_seconds;
    }
    r.speedup_vs_sync = r.sync_seconds / r.metro_seconds;
  }
  r.avg_parallelism = metro.avg_parallelism;
  r.mean_cluster_size = metro.scoreboard.mean_cluster_size();
  r.mean_blockers = metro.mean_blockers;
  r.clusters_dispatched = metro.scoreboard.clusters_dispatched;
  r.scoreboard_digest = digest_states(metro.final_agent_states);
  return r;
}

ScenarioReport ScenarioDriver::run_engine_trace(bool serial_baseline) const {
  const world::GridMap map = build_map();
  const trace::SimulationTrace tr = build_trace();

  std::vector<trace::StepCalls> chains(
      static_cast<std::size_t>(tr.n_agents));
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i] = trace::group_calls_by_step(tr.agents[i]);
  }

  struct RunOutcome {
    double wall_seconds = 0.0;
    runtime::EngineStats stats;
    std::uint64_t calls = 0;
    std::uint64_t digest = 0;
    std::uint64_t world_hash = 0;
    core::ScoreboardStats scoreboard;
    double mean_blockers = 0.0;
  };

  // Replay the generated trace through the live threaded engine: movement
  // follows the trace (one step toward the trace position, so a move lost
  // to a conflict just lags and retries), and every traced LLM call is
  // issued through the blocking client shim from the worker threads.
  auto run_once = [&](std::int32_t workers) {
    llm::FakeLlmClient client(spec_.seed, spec_.call_latency_us);
    std::vector<Tile> starts;
    starts.reserve(static_cast<std::size_t>(tr.n_agents));
    for (AgentId a = 0; a < tr.n_agents; ++a) {
      starts.push_back(tr.position_at(a, tr.start_step));
    }
    world::WorldState world(&map, std::move(starts));

    runtime::EngineConfig ecfg;
    ecfg.params = core::DependencyParams{spec_.radius_p, spec_.max_vel};
    ecfg.target_step = tr.n_steps;
    ecfg.n_workers = workers;
    ecfg.kv_instrumentation = false;

    auto step_fn = [&](const core::AgentCluster& cluster,
                       const world::WorldState& w) {
      std::vector<world::StepIntent> intents;
      intents.reserve(cluster.members.size());
      const Step abs_step = tr.start_step + cluster.step;
      for (AgentId m : cluster.members) {
        const auto& by_step = chains[static_cast<std::size_t>(m)];
        if (auto it = by_step.find(abs_step); it != by_step.end()) {
          for (const trace::LlmCall* call : it->second) {
            llm::CompletionRequest req;
            req.prompt = strformat("agent=%d step=%d type=%s", m, abs_step,
                                   trace::call_type_name(call->type));
            req.max_tokens = call->output_tokens;
            req.priority = abs_step;
            client.complete(req);
          }
        }
        Tile current;
        {
          std::shared_lock<std::shared_mutex> lock(w.mutex());
          current = w.tile_of(m);
        }
        const Tile want = tr.position_at(m, abs_step + 1);
        const Tile next = step_toward(map, current, want);
        world::StepIntent intent;
        intent.agent = m;
        if (!(next == current)) intent.move_to = next;
        intents.push_back(intent);
      }
      return intents;
    };

    RunOutcome out;
    runtime::Engine engine(&world, ecfg, step_fn);
    const auto start = std::chrono::steady_clock::now();
    out.stats = engine.run();
    out.wall_seconds = wall_seconds_since(start);
    out.calls = client.calls();
    AIM_CHECK(engine.scoreboard().all_done());
    std::vector<std::pair<Step, Pos>> states;
    for (AgentId a = 0; a < tr.n_agents; ++a) {
      states.emplace_back(engine.scoreboard().step_of(a),
                          engine.scoreboard().pos_of(a));
    }
    out.digest = digest_states(states);
    out.world_hash = world.state_hash();
    out.scoreboard = engine.scoreboard().stats();
    out.mean_blockers = engine.scoreboard().mean_blockers();
    return out;
  };

  const RunOutcome serial = serial_baseline ? run_once(1) : RunOutcome{};
  const RunOutcome metro = run_once(spec_.workers);

  ScenarioReport r;
  r.scenario = spec_.name;
  r.backend = Backend::kEngine;
  r.agents = tr.n_agents;
  r.steps = tr.n_steps;
  r.total_calls = metro.calls;
  r.agent_steps = metro.stats.agent_steps;
  r.serial_seconds = serial.wall_seconds;
  r.metro_seconds = metro.wall_seconds;
  if (serial_baseline && r.metro_seconds > 0.0) {
    r.speedup_vs_serial = r.serial_seconds / r.metro_seconds;
  }
  r.mean_cluster_size = metro.scoreboard.mean_cluster_size();
  r.mean_blockers = metro.mean_blockers;
  r.clusters_dispatched = metro.scoreboard.clusters_dispatched;
  r.scoreboard_digest = metro.digest;
  r.world_hash_serial = serial.world_hash;
  r.world_hash_metro = metro.world_hash;
  return r;
}

ScenarioReport ScenarioDriver::run_engine_gym(bool serial_baseline) const {
  const world::GridMap map = build_map();
  const std::int32_t n = spec_.agents;

  // Spread starts over a grid with margins.
  const std::int32_t cols = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::ceil(std::sqrt(n))));
  const std::int32_t rows = (n + cols - 1) / cols;
  const std::int32_t dx = std::max<std::int32_t>(1, (map.width() - 6) / cols);
  const std::int32_t dy = std::max<std::int32_t>(1, (map.height() - 6) / rows);
  std::vector<Tile> starts;
  for (std::int32_t i = 0; i < n; ++i) {
    starts.push_back(Tile{std::min(map.width() - 1, 3 + (i % cols) * dx),
                          std::min(map.height() - 1, 3 + (i / cols) * dy)});
  }

  auto make_agents = [&] {
    std::vector<std::unique_ptr<gym::Agent>> agents;
    for (std::int32_t i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<gym::WandererAgent>(
          spec_.seed + static_cast<std::uint64_t>(i) * 1000));
    }
    return agents;
  };

  gym::EnvConfig cfg;
  cfg.params = core::DependencyParams{spec_.radius_p, spec_.max_vel};
  cfg.target_step = spec_.sim_steps();
  cfg.n_workers = spec_.workers;

  // Baseline: lock-step execution (Algorithm 1), same LLM latency.
  double serial_secs = 0.0;
  std::uint64_t serial_hash = 0;
  if (serial_baseline) {
    cfg.out_of_order = false;
    llm::FakeLlmClient llm_serial(spec_.seed, spec_.call_latency_us);
    gym::Env lockstep(&map, starts, make_agents(), &llm_serial, cfg);
    const auto serial_start = std::chrono::steady_clock::now();
    lockstep.run();
    serial_secs = wall_seconds_since(serial_start);
    serial_hash = lockstep.state_hash();
  }

  // Out-of-order on the AI Metropolis engine (Algorithm 3).
  cfg.out_of_order = true;
  llm::FakeLlmClient llm_metro(spec_.seed, spec_.call_latency_us);
  gym::Env metro(&map, starts, make_agents(), &llm_metro, cfg);
  const auto metro_start = std::chrono::steady_clock::now();
  const auto metro_stats = metro.run();
  const double metro_secs = wall_seconds_since(metro_start);

  ScenarioReport r;
  r.scenario = spec_.name;
  r.backend = Backend::kEngine;
  r.agents = n;
  r.steps = spec_.sim_steps();
  r.total_calls = llm_metro.calls();
  r.agent_steps = metro_stats.agent_steps;
  r.serial_seconds = serial_secs;
  r.metro_seconds = metro_secs;
  if (serial_baseline && metro_secs > 0.0) {
    r.speedup_vs_serial = serial_secs / metro_secs;
  }
  r.clusters_dispatched = metro_stats.clusters_executed;
  r.mean_cluster_size =
      metro_stats.clusters_executed > 0
          ? static_cast<double>(metro_stats.agent_steps) /
                static_cast<double>(metro_stats.clusters_executed)
          : 0.0;
  r.world_hash_serial = serial_hash;
  r.world_hash_metro = metro.state_hash();
  r.scoreboard_digest = r.world_hash_metro;
  return r;
}

}  // namespace aimetro::scenario
