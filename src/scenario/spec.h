// Declarative workload specifications.
//
// A ScenarioSpec describes one complete workload — world geometry, agent
// population and behavior profile, dependency parameters, the LLM serving
// platform, and which execution backend runs it — as plain data. Specs are
// serialized to / parsed from a simple `key = value` text format ('#'
// comments, one key per line) with a std::from_chars-based typed
// conversion layer, so a scenario is a file you can diff, share, and sweep
// rather than a C++ binary you have to write.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace aimetro::scenario {

/// Which execution pipeline runs the scenario.
///  - kDes: trace replay on the discrete-event serving simulator
///    (src/replay + src/llm) — virtual time, cost-model GPUs.
///  - kEngine: the live threaded runtime::Engine — real threads, a real
///    world, wall-clock time, fake-LLM latency.
enum class Backend : std::uint8_t { kDes, kEngine };

const char* backend_name(Backend b);
std::optional<Backend> backend_from_name(const std::string& name);

/// World-geometry family; see world::GridMap builders.
enum class MapKind : std::uint8_t { kSmallville, kPlaza, kUrbanGrid, kArena };

const char* map_kind_name(MapKind m);
std::optional<MapKind> map_kind_from_name(const std::string& name);

/// What the agents stand on.
///  - kGrid: a tile map (`map` picks the GridMap family) — distances are
///    Euclidean, movement is one tile per step.
///  - kGraph: the nodes of a Newman-Watts small-world follower graph
///    (`graph_nodes`/`graph_degree`/`graph_rewire`) — distances are hops,
///    movement is one edge per step, and `map` is ignored.
enum class WorldKind : std::uint8_t { kGrid, kGraph };

const char* world_name(WorldKind w);
std::optional<WorldKind> world_from_name(const std::string& name);

/// Time base of the engine backend.
///  - kWall: real time; LLM calls sleep the fixed `call_latency_us` on a
///    FakeLlmClient, reports are in wall seconds.
///  - kVirtual: cost-model time; LLM calls are priced on llm::CostModel by
///    a CostModelLlmClient and served on a runtime::SimClock at
///    `time_scale`x compression, reports are in virtual seconds directly
///    comparable to the DES backend.
/// The DES backend is always virtual; `clock` is ignored there.
enum class ClockKind : std::uint8_t { kWall, kVirtual };

const char* clock_name(ClockKind c);
std::optional<ClockKind> clock_from_name(const std::string& name);

/// Scoreboard neighbor-scan implementation (core::ScanMode).
///  - kIndexed: spatial-index box probes — the production path.
///  - kBrute: the O(n) full-scan reference, for differential digest
///    checks; results are identical, only the cost differs.
enum class ScoreboardKind : std::uint8_t { kIndexed, kBrute };

const char* scoreboard_name(ScoreboardKind s);
std::optional<ScoreboardKind> scoreboard_from_name(const std::string& name);

/// Initial placement of the scoreboard's strip boundaries (shards > 1).
///  - kWidth: equal-width strips over the world's x-extent (the
///    historical layout; ignores where the agents are).
///  - kPopulation: boundaries at population quantiles of the initial
///    agent positions, so every strip starts with an equal agent share.
/// Digest-invariant: the partition changes only which commits take a
/// strip lock instead of the exclusive one.
enum class PartitionChoice : std::uint8_t { kWidth, kPopulation };

const char* partition_name(PartitionChoice p);
std::optional<PartitionChoice> partition_from_name(const std::string& name);

/// Whether the partition is rebalanced against observed contention.
///  - kOff: the construction-time partition is final.
///  - kEpisode: re-quantile the strip boundaries at each midnight
///    carry-over point between `days`, weighting every strip by the
///    commit/wait contention it accumulated over the previous day. A
///    scenario with no interior midnight in its window simply never
///    fires. Digest-invariant, like every partition setting.
enum class ReshardMode : std::uint8_t { kOff, kEpisode };

const char* reshard_name(ReshardMode r);
std::optional<ReshardMode> reshard_from_name(const std::string& name);

/// CPU placement of the engine backend's per-strip worker pools.
///  - kNone: leave thread placement to the OS scheduler.
///  - kCores: pin each strip's pool to a contiguous core group
///    (Linux sched affinity; silently a no-op elsewhere, on the DES
///    backend, and with one effective strip).
enum class PinMode : std::uint8_t { kNone, kCores };

const char* pin_name(PinMode p);
std::optional<PinMode> pin_from_name(const std::string& name);

struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;

  // ---- World geometry ----
  /// Grid worlds read `map`/`map_width`/... below; graph worlds read the
  /// graph_* keys and ignore the grid geometry entirely.
  WorldKind world = WorldKind::kGrid;
  std::int32_t graph_nodes = 0;   // graph worlds: node count (>= 3)
  std::int32_t graph_degree = 4;  // graph worlds: even ring degree
  double graph_rewire = 0.1;      // graph worlds: shortcut probability [0,1]
  MapKind map = MapKind::kSmallville;
  std::int32_t map_width = 40;   // arena maps only
  std::int32_t map_height = 40;  // arena maps only
  std::int32_t homes = 15;       // smallville / plaza / urban_grid
  std::int32_t districts = 6;    // urban_grid office districts
  /// Horizontal segment concatenation — the paper's large-ville scaling
  /// construction (§4.3). Requires agents >= segments; when agents is not
  /// divisible by segments the remainder is spread over the first
  /// segments, so every specified agent is simulated.
  std::int32_t segments = 1;
  /// Hotspot skew of the agents-per-segment allocation, in [0, 1): 0 is
  /// the even split (the historical layout); larger values concentrate
  /// the population geometrically toward the first (leftmost) segments —
  /// segment k is weighted (1 - skew)^k — while every segment keeps at
  /// least one agent. This is what makes load imbalance reproducible
  /// from a spec name (the skewed_ville family).
  double segment_skew = 0.0;

  // ---- Agent population & behavior ----
  std::int32_t agents = 25;
  std::string profile = "townsfolk";  // see trace::BehaviorProfile
  /// Heterogeneous population mix, e.g.
  /// "townsfolk:0.6,socialite:0.2,commuter:0.15,hermit:0.05" (see
  /// trace::PopulationMix). Empty = every agent runs `profile`. When set,
  /// per-agent profiles are drawn deterministically from the mix
  /// (trace::assign_profiles keyed by `seed`) and `profile` is ignored.
  std::string population;
  double conversation_scale = 1.0;    // multiplies conversation propensity
  double calls_scale = 1.0;           // multiplies the calls-per-day target
  std::int32_t steps_per_day = 8640;  // 10 simulated seconds per step
  /// Episode length in days: the trace chains `days` day episodes with
  /// positional carry-over at each midnight boundary and fresh per-day
  /// randomness. days = 1 is exactly the historical single-day workload.
  std::int32_t days = 1;
  /// Replay window [begin, end) in absolute steps over the whole episode
  /// (day d covers [d*steps_per_day, (d+1)*steps_per_day)); -1/-1 = the
  /// full episode.
  Step window_begin = -1;
  Step window_end = -1;
  std::uint64_t seed = 42;

  // ---- Dependency parameters ----
  double radius_p = 4.0;
  double max_vel = 1.0;
  /// Scoreboard scan implementation on both backends: `indexed` (spatial
  /// index, the default) or `brute` (full-scan reference path — same
  /// results, O(n) per commit; for differential digest checks).
  ScoreboardKind scoreboard = ScoreboardKind::kIndexed;
  /// Region partition of the scoreboard: `auto` (scale with the agent
  /// count; see resolved_shards()) or an explicit strip count in
  /// [1, 64] (core::kMaxShards). Internally 0 = auto. Digests are
  /// byte-identical for every value — sharding changes only which locks
  /// the engine takes, never what the simulation computes.
  std::int32_t shards = 0;
  /// Initial strip-boundary placement: `width` (equal-width) or
  /// `population` (equal agent share per strip). Matters only when the
  /// effective shard count exceeds 1; digests are identical either way.
  PartitionChoice partition = PartitionChoice::kWidth;
  /// Contention-driven rebalancing: `off`, or `episode` to re-quantile
  /// the strips at each midnight boundary from the previous day's
  /// per-strip commit/wait statistics. Digest-invariant.
  ReshardMode reshard = ReshardMode::kOff;
  /// `cores` pins each per-strip engine pool to a contiguous CPU core
  /// group; `none` (the default) leaves placement to the OS.
  PinMode pin = PinMode::kNone;

  // ---- LLM serving platform (DES backend) ----
  /// Resolved through llm::find_model / llm::find_gpu; unknown names are a
  /// validation error, never a silent default.
  std::string model = "llama-3-8b-instruct";
  std::string gpu = "l4";
  std::int32_t tensor_parallel = 1;
  std::int32_t data_parallel = 4;

  // ---- Execution ----
  Backend backend = Backend::kDes;
  std::int32_t workers = 4;            // engine backend worker threads
  /// Worker threads in the engine backend's member-chain TaskPool (the
  /// per-run pool that executes coupled members' LLM chains). 0 derives
  /// runtime::derive_pool_workers(workers) = 2 * workers; see
  /// resolved_pool_workers().
  std::int32_t pool_workers = 0;
  /// Engine-backend time base (see ClockKind). clock = virtual prices
  /// calls on the spec's model/GPU/parallelism via the DES cost model.
  ClockKind clock = ClockKind::kWall;
  /// Virtual microseconds per wall microsecond when clock = virtual: 1000
  /// compresses ~2.5 virtual hours of GPU time into ~9 wall seconds.
  double time_scale = 1000.0;
  std::int64_t call_latency_us = 200;  // clock = wall fake-LLM latency

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  /// Serialize as `key = value` text; parse_spec_text round-trips it.
  std::string to_text() const;

  /// Steps actually simulated: the window size, or the full episode
  /// (days * steps_per_day).
  Step sim_steps() const;
  /// Full episode length in steps (ignoring any window).
  Step episode_steps() const {
    return static_cast<Step>(days) * steps_per_day;
  }
  /// Window start in absolute steps (0 when running the full day).
  Step window_start() const { return window_begin >= 0 ? window_begin : 0; }
  /// Member-chain pool size the engine backend actually uses:
  /// `pool_workers` when set, else derived from `workers`.
  std::int32_t resolved_pool_workers() const;
  /// Strip count the backends actually use: `shards` when explicit, else
  /// one strip per ~2500 agents, clamped to [1, 64] — small worlds stay
  /// unsharded, metro_ville100000 gets 40 strips.
  std::int32_t resolved_shards() const;
};

struct SpecParseResult {
  std::optional<ScenarioSpec> spec;
  std::string error;  // non-empty iff !spec; includes the offending line

  explicit operator bool() const { return spec.has_value(); }
};

/// Parse `key = value` text on top of `base` (so files and CLI overrides
/// can patch a registry entry). Rejects unknown keys, malformed values,
/// and garbage lines with a line-numbered error.
SpecParseResult parse_spec_text(const std::string& text,
                                ScenarioSpec base = {});

/// Parse a spec file from disk.
SpecParseResult parse_spec_file(const std::string& path);

/// Apply a single "key=value" override. Returns false and sets *error on
/// unknown keys or unconvertible values; unknown-key errors name the
/// nearest valid key ("did you mean ...?") so typos fail loudly and
/// helpfully rather than silently shaping a different workload.
bool apply_override(ScenarioSpec* spec, const std::string& assignment,
                    std::string* error);

/// Every valid spec key, in to_text() order (for docs, CLI help, tests).
std::vector<std::string> spec_key_names();

/// Semantic validation: ranges, divisibility, profile/model/GPU name
/// resolution, backend/map compatibility. Empty string when valid.
std::string validate_spec(const ScenarioSpec& spec);

}  // namespace aimetro::scenario
