#include "scenario/registry.h"

#include <charconv>

#include "common/strings.h"

namespace aimetro::scenario {

namespace {

// Canonical trace windows (steps; 10 simulated seconds per step).
constexpr Step kBusyBegin = 4320;   // 12:00
constexpr Step kBusyEnd = 4680;     // 13:00
constexpr Step kRushBegin = 2700;   // 07:30
constexpr Step kRushEnd = 3060;     // 08:30
constexpr Step kEveningBegin = 6480;  // 18:00
constexpr Step kEveningEnd = 6840;    // 19:00

ScenarioSpec smallville_day() {
  ScenarioSpec s;
  s.name = "smallville_day";
  s.description =
      "The paper's calibrated Generative-Agents day: 25 townsfolk on the "
      "140x100 SmallVille, busy-hour replay on 4x L4 / Llama-3-8B (#4.2)";
  s.map = MapKind::kSmallville;
  s.homes = 25;
  s.agents = 25;
  s.profile = "townsfolk";
  s.window_begin = kBusyBegin;
  s.window_end = kBusyEnd;
  s.backend = Backend::kDes;
  s.model = "llama-3-8b-instruct";
  s.gpu = "l4";
  s.tensor_parallel = 1;
  s.data_parallel = 4;
  return s;
}

ScenarioSpec social_hub() {
  ScenarioSpec s;
  s.name = "social_hub";
  s.description =
      "40 socialites on an 80x80 plaza town: Zipf-skewed venue choice "
      "concentrates evenings on one hub, producing a power-law contact "
      "graph and large coupled clusters (evening-hour replay)";
  s.map = MapKind::kPlaza;
  s.homes = 14;
  s.agents = 40;
  s.profile = "socialite";
  s.window_begin = kEveningBegin;
  s.window_end = kEveningEnd;
  s.backend = Backend::kDes;
  s.data_parallel = 4;
  return s;
}

ScenarioSpec urban_commute() {
  ScenarioSpec s;
  s.name = "urban_commute";
  s.description =
      "60 commuters on an OpenCity-style grid city: west-side homes, "
      "east-side office districts, origin-destination flows with "
      "synchronized rush hours (morning-rush replay)";
  s.map = MapKind::kUrbanGrid;
  s.homes = 18;
  s.districts = 9;
  s.agents = 60;
  s.profile = "commuter";
  s.window_begin = kRushBegin;
  s.window_end = kRushEnd;
  s.backend = Backend::kDes;
  s.data_parallel = 8;
  return s;
}

ScenarioSpec sparse_ville() {
  ScenarioSpec s;
  s.name = "sparse_ville";
  s.description =
      "12 hermits who never leave home or converse, perception radius 1: "
      "the near-zero-coupling workload where out-of-order execution "
      "should approach the no-dependency resource bound";
  s.map = MapKind::kSmallville;
  s.homes = 25;
  s.agents = 12;
  s.profile = "hermit";
  s.radius_p = 1.0;
  s.calls_scale = 0.4;
  s.window_begin = kBusyBegin;
  s.window_end = kBusyEnd;
  s.backend = Backend::kDes;
  s.data_parallel = 4;
  return s;
}

ScenarioSpec scaling_ville(std::int32_t n_segments) {
  ScenarioSpec s;
  s.name = strformat("scaling_ville%d", n_segments);
  s.description = strformat(
      "The paper's #4.3 scaling construction: %d SmallVilles concatenated "
      "side by side (%d agents), busy-hour replay on 8x L4",
      n_segments, n_segments * 25);
  s.map = MapKind::kSmallville;
  s.homes = 25;
  s.segments = n_segments;
  s.agents = 25 * n_segments;
  s.profile = "townsfolk";
  s.window_begin = kBusyBegin;
  s.window_end = kBusyEnd;
  s.backend = Backend::kDes;
  s.data_parallel = 8;
  return s;
}

// The default heterogeneous mix: mostly townsfolk, a socialite core that
// couples the evenings, commuters that synchronize the rush hours, and a
// few hermits that decouple entirely.
constexpr const char* kDefaultMix =
    "townsfolk:0.6,socialite:0.2,commuter:0.15,hermit:0.05";

ScenarioSpec mixed_ville(std::int32_t n_agents) {
  ScenarioSpec s;
  s.name = strformat("mixed_ville%d", n_agents);
  s.description = strformat(
      "%d agents drawn from a fixed population mix "
      "(townsfolk/socialite/commuter/hermit) on the urban grid: "
      "heterogeneous diurnal curves and coupling in one town "
      "(busy-hour replay)",
      n_agents);
  s.map = MapKind::kUrbanGrid;
  s.homes = 18;
  s.districts = 9;
  s.agents = n_agents;
  s.population = kDefaultMix;
  s.window_begin = kBusyBegin;
  s.window_end = kBusyEnd;
  s.backend = Backend::kDes;
  s.data_parallel = 4;
  return s;
}

ScenarioSpec metro_ville(std::int32_t n_agents) {
  ScenarioSpec s;
  s.name = strformat("metro_ville%d", n_agents);
  s.description = strformat(
      "Production-scale stress of the dependency core: %d townsfolk on %d "
      "concatenated SmallVilles, 10-minute busy-window replay on 8x L4 "
      "(N in [100, 100000]; exercises the sharded spatial-index "
      "scoreboard)",
      n_agents, (n_agents + 24) / 25);
  s.map = MapKind::kSmallville;
  s.homes = 25;
  // The paper's scaling construction taken to production scale: one
  // 25-agent SmallVille segment per 25 agents, remainder spread by the
  // generic segment split.
  s.segments = (n_agents + 24) / 25;
  s.agents = n_agents;
  s.profile = "townsfolk";
  // Keep the biggest members CI-tractable: the family headlines commit
  // throughput, not serving calibration.
  s.calls_scale = 0.25;
  s.window_begin = kBusyBegin;
  s.window_end = kBusyBegin + 60;
  s.backend = Backend::kDes;
  s.data_parallel = 8;
  return s;
}

ScenarioSpec skewed_ville(std::int32_t n_agents) {
  ScenarioSpec s;
  s.name = strformat("skewed_ville%d", n_agents);
  s.description = strformat(
      "Hotspot stress for adaptive partitioning: %d townsfolk packed "
      "geometrically toward the west segments (segment_skew 0.3) on %d "
      "concatenated SmallVilles, a two-day episode replayed across the "
      "midnight boundary so episode resharding fires (N in [100, 100000])",
      n_agents, (n_agents + 24) / 25);
  s.map = MapKind::kSmallville;
  s.homes = 25;
  s.segments = (n_agents + 24) / 25;
  // Geometric decay per segment: the west end of the concatenated world
  // carries several times its even share, so equal-width strips leave the
  // east strips idle while the west strip serializes commits.
  s.segment_skew = 0.3;
  s.agents = n_agents;
  s.profile = "townsfolk";
  s.calls_scale = 0.25;
  // Two days with a 40-minute window straddling midnight (day 0 step
  // 8520 .. day 1 step 120): reshard = episode gets exactly one boundary
  // to rebalance at, and the digest checks cover both sides of it.
  s.days = 2;
  s.window_begin = 8520;
  s.window_end = 8760;
  s.backend = Backend::kDes;
  s.data_parallel = 8;
  s.partition = PartitionChoice::kPopulation;
  s.reshard = ReshardMode::kEpisode;
  return s;
}

ScenarioSpec social_net(std::int32_t n_agents) {
  ScenarioSpec s;
  s.name = strformat("social_net%d", n_agents);
  s.description = strformat(
      "Graph-native social world: %d agents roaming a %d-node Newman-Watts "
      "small-world follower graph, hop-distance dependency rules, "
      "10-minute busy-window replay (N in [10, 10000]; exercises the "
      "graph neighbor index)",
      n_agents, 20 * n_agents);
  s.world = WorldKind::kGraph;
  // ~1 agent per 20 nodes: a 3-hop coupling ball on a degree-4 small-world
  // graph covers ~16 nodes, so the expected coupled-partner count sits
  // just under the percolation threshold — sparse clusters at noon,
  // hub-crowd clusters in the social hours, never one giant component.
  s.graph_nodes = 20 * n_agents;
  s.graph_degree = 4;
  s.graph_rewire = 0.1;
  s.agents = n_agents;
  s.profile = "townsfolk";
  // Two hops of perception on a degree-4 small-world graph couples a few
  // dozen nodes — the graph analogue of SmallVille's radius-4 tiles.
  s.radius_p = 2.0;
  s.max_vel = 1.0;
  s.calls_scale = 0.25;
  s.window_begin = kBusyBegin;
  s.window_end = kBusyBegin + 60;
  s.backend = Backend::kDes;
  s.data_parallel = 8;
  return s;
}

ScenarioSpec metropolis_week() {
  ScenarioSpec s;
  s.name = "metropolis_week";
  s.description =
      "A 7-day mixed-population episode on the urban grid: 20 agents drawn "
      "from the default mix, day episodes chained with cross-day "
      "carry-over — measures out-of-order slack across day boundaries "
      "(per-day rows in the report)";
  s.map = MapKind::kUrbanGrid;
  s.homes = 18;
  s.districts = 9;
  s.agents = 20;
  s.population = kDefaultMix;
  s.days = 7;
  // A full traced week is 7x the calibrated day; scale the per-day call
  // target down so the week stays tractable on both backends.
  s.calls_scale = 0.25;
  s.backend = Backend::kDes;
  s.data_parallel = 4;
  return s;
}

ScenarioSpec quickstart_arena() {
  ScenarioSpec s;
  s.name = "quickstart_arena";
  s.description =
      "10 live LLM-driven wanderers on a 40x40 arena, run on the threaded "
      "engine: verifies out-of-order execution reproduces the lock-step "
      "world exactly";
  s.map = MapKind::kArena;
  s.map_width = 40;
  s.map_height = 40;
  s.agents = 10;
  s.steps_per_day = 120;  // target steps for the live run
  s.backend = Backend::kEngine;
  s.workers = 4;
  s.call_latency_us = 300;
  return s;
}

}  // namespace

namespace {

/// Parse the integer suffix of a parameterized family name; nullopt when
/// the suffix is not a clean integer in [lo, hi].
std::optional<std::int32_t> family_param(const std::string& name,
                                         const std::string& prefix,
                                         std::int32_t lo, std::int32_t hi) {
  const std::string suffix = name.substr(prefix.size());
  std::int32_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(suffix.data(), suffix.data() + suffix.size(), n);
  if (ec == std::errc{} && ptr == suffix.data() + suffix.size() && n >= lo &&
      n <= hi) {
    return n;
  }
  return std::nullopt;
}

}  // namespace

std::vector<RegistryEntry> registry_entries() {
  std::vector<RegistryEntry> out;
  for (const ScenarioSpec& s :
       {smallville_day(), social_hub(), urban_commute(), sparse_ville(),
        scaling_ville(4), mixed_ville(40), metro_ville(1000),
        metro_ville(100000), skewed_ville(10000), social_net(1000),
        metropolis_week(),
        quickstart_arena()}) {
    out.push_back(RegistryEntry{s.name, s.description});
  }
  return out;
}

std::optional<ScenarioSpec> find_scenario(const std::string& name,
                                          std::string* error) {
  if (name == "smallville_day") return smallville_day();
  if (name == "social_hub") return social_hub();
  if (name == "urban_commute") return urban_commute();
  if (name == "sparse_ville") return sparse_ville();
  if (name == "metropolis_week") return metropolis_week();
  if (name == "quickstart_arena") return quickstart_arena();
  constexpr const char* kScalingPrefix = "scaling_ville";
  if (name.rfind(kScalingPrefix, 0) == 0) {
    if (const auto n = family_param(name, kScalingPrefix, 1, 64)) {
      return scaling_ville(*n);
    }
    if (error != nullptr) {
      *error = strformat(
          "scaling_ville<N> takes N in [1, 64]; '%s' does not parse",
          name.c_str());
    }
    return std::nullopt;
  }
  constexpr const char* kMetroPrefix = "metro_ville";
  if (name.rfind(kMetroPrefix, 0) == 0) {
    if (const auto n = family_param(name, kMetroPrefix, 100, 100000)) {
      return metro_ville(*n);
    }
    if (error != nullptr) {
      *error = strformat(
          "metro_ville<N> takes N in [100, 100000]; '%s' does not parse",
          name.c_str());
    }
    return std::nullopt;
  }
  constexpr const char* kSkewedPrefix = "skewed_ville";
  if (name.rfind(kSkewedPrefix, 0) == 0) {
    if (const auto n = family_param(name, kSkewedPrefix, 100, 100000)) {
      return skewed_ville(*n);
    }
    if (error != nullptr) {
      *error = strformat(
          "skewed_ville<N> takes N in [100, 100000]; '%s' does not parse",
          name.c_str());
    }
    return std::nullopt;
  }
  constexpr const char* kSocialPrefix = "social_net";
  if (name.rfind(kSocialPrefix, 0) == 0) {
    if (const auto n = family_param(name, kSocialPrefix, 10, 10000)) {
      return social_net(*n);
    }
    if (error != nullptr) {
      *error = strformat(
          "social_net<N> takes N in [10, 10000]; '%s' does not parse",
          name.c_str());
    }
    return std::nullopt;
  }
  constexpr const char* kMixedPrefix = "mixed_ville";
  if (name.rfind(kMixedPrefix, 0) == 0) {
    if (const auto n = family_param(name, kMixedPrefix, 4, 400)) {
      return mixed_ville(*n);
    }
    if (error != nullptr) {
      *error = strformat(
          "mixed_ville<N> takes N in [4, 400]; '%s' does not parse",
          name.c_str());
    }
    return std::nullopt;
  }
  if (error != nullptr) {
    std::vector<std::string> names;
    for (const auto& entry : registry_entries()) names.push_back(entry.name);
    *error = strformat("unknown scenario '%s' (known: %s)", name.c_str(),
                       join(names, ", ").c_str());
  }
  return std::nullopt;
}

}  // namespace aimetro::scenario
