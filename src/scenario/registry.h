// Named built-in scenarios.
//
// The registry is the catalog every workload PR plugs into: each entry is
// a ScenarioSpec (see spec.h) chosen to stress the dependency scoreboard
// in a different way — the paper's calibrated day, a hub-dominated social
// plaza, OpenCity-style commuter flows, a near-zero-coupling lower bound,
// the parameterized large-ville scaling construction, a heterogeneous
// population mix (mixed_ville<N>), and a multi-day mixed-population
// episode (metropolis_week).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.h"

namespace aimetro::scenario {

struct RegistryEntry {
  std::string name;
  std::string summary;
};

/// All registered scenarios (parameterized families list a representative
/// instance), in presentation order for `aimetro_run --list`.
std::vector<RegistryEntry> registry_entries();

/// Look up a scenario by name. `scaling_ville<N>` (N in [1, 64]: N
/// segments, 25*N agents) and `mixed_ville<N>` (N in [4, 400]: N agents
/// drawn from the default population mix) are parameterized families.
/// Unknown names return nullopt and set *error to a message listing what
/// exists.
std::optional<ScenarioSpec> find_scenario(const std::string& name,
                                          std::string* error);

}  // namespace aimetro::scenario
