// Named built-in scenarios.
//
// The registry is the catalog every workload PR plugs into: each entry is
// a ScenarioSpec (see spec.h) chosen to stress the dependency scoreboard
// in a different way — the paper's calibrated day, a hub-dominated social
// plaza, OpenCity-style commuter flows, a near-zero-coupling lower bound,
// and the parameterized large-ville scaling construction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/spec.h"

namespace aimetro::scenario {

struct RegistryEntry {
  std::string name;
  std::string summary;
};

/// All registered scenarios (parameterized families list a representative
/// instance), in presentation order for `aimetro_run --list`.
std::vector<RegistryEntry> registry_entries();

/// Look up a scenario by name. `scaling_ville<N>` is a parameterized
/// family: any N in [1, 64] resolves (N segments, 25*N agents). Unknown
/// names return nullopt and set *error to a message listing what exists.
std::optional<ScenarioSpec> find_scenario(const std::string& name,
                                          std::string* error);

}  // namespace aimetro::scenario
