#include "scenario/spec.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "llm/specs.h"
#include "runtime/task_pool.h"
#include "trace/behavior.h"

namespace aimetro::scenario {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kDes:
      return "des";
    case Backend::kEngine:
      return "engine";
  }
  return "?";
}

std::optional<Backend> backend_from_name(const std::string& name) {
  if (name == "des") return Backend::kDes;
  if (name == "engine") return Backend::kEngine;
  return std::nullopt;
}

const char* map_kind_name(MapKind m) {
  switch (m) {
    case MapKind::kSmallville:
      return "smallville";
    case MapKind::kPlaza:
      return "plaza";
    case MapKind::kUrbanGrid:
      return "urban_grid";
    case MapKind::kArena:
      return "arena";
  }
  return "?";
}

std::optional<MapKind> map_kind_from_name(const std::string& name) {
  if (name == "smallville") return MapKind::kSmallville;
  if (name == "plaza") return MapKind::kPlaza;
  if (name == "urban_grid") return MapKind::kUrbanGrid;
  if (name == "arena") return MapKind::kArena;
  return std::nullopt;
}

const char* world_name(WorldKind w) {
  switch (w) {
    case WorldKind::kGrid:
      return "grid";
    case WorldKind::kGraph:
      return "graph";
  }
  return "?";
}

std::optional<WorldKind> world_from_name(const std::string& name) {
  if (name == "grid") return WorldKind::kGrid;
  if (name == "graph") return WorldKind::kGraph;
  return std::nullopt;
}

const char* clock_name(ClockKind c) {
  switch (c) {
    case ClockKind::kWall:
      return "wall";
    case ClockKind::kVirtual:
      return "virtual";
  }
  return "?";
}

std::optional<ClockKind> clock_from_name(const std::string& name) {
  if (name == "wall") return ClockKind::kWall;
  if (name == "virtual") return ClockKind::kVirtual;
  return std::nullopt;
}

const char* scoreboard_name(ScoreboardKind s) {
  switch (s) {
    case ScoreboardKind::kIndexed:
      return "indexed";
    case ScoreboardKind::kBrute:
      return "brute";
  }
  return "?";
}

std::optional<ScoreboardKind> scoreboard_from_name(const std::string& name) {
  if (name == "indexed") return ScoreboardKind::kIndexed;
  if (name == "brute") return ScoreboardKind::kBrute;
  return std::nullopt;
}

const char* partition_name(PartitionChoice p) {
  switch (p) {
    case PartitionChoice::kWidth:
      return "width";
    case PartitionChoice::kPopulation:
      return "population";
  }
  return "?";
}

std::optional<PartitionChoice> partition_from_name(const std::string& name) {
  if (name == "width") return PartitionChoice::kWidth;
  if (name == "population") return PartitionChoice::kPopulation;
  return std::nullopt;
}

const char* reshard_name(ReshardMode r) {
  switch (r) {
    case ReshardMode::kOff:
      return "off";
    case ReshardMode::kEpisode:
      return "episode";
  }
  return "?";
}

std::optional<ReshardMode> reshard_from_name(const std::string& name) {
  if (name == "off") return ReshardMode::kOff;
  if (name == "episode") return ReshardMode::kEpisode;
  return std::nullopt;
}

const char* pin_name(PinMode p) {
  switch (p) {
    case PinMode::kNone:
      return "none";
    case PinMode::kCores:
      return "cores";
  }
  return "?";
}

std::optional<PinMode> pin_from_name(const std::string& name) {
  if (name == "none") return PinMode::kNone;
  if (name == "cores") return PinMode::kCores;
  return std::nullopt;
}

namespace {

// ---- Typed conversion layer (std::from_chars based) ----
// Every value type used by ScenarioSpec gets a conv() overload that
// converts the *entire* trimmed token or fails — no partial parses, no
// locale surprises, no silent truncation.

template <typename Int>
bool conv_int(const std::string& v, Int* out) {
  Int parsed{};
  const char* first = v.data();
  const char* last = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc{} || ptr != last) return false;
  *out = parsed;
  return true;
}

bool conv(const std::string& v, std::int32_t* out) { return conv_int(v, out); }
bool conv(const std::string& v, std::int64_t* out) { return conv_int(v, out); }
bool conv(const std::string& v, std::uint64_t* out) { return conv_int(v, out); }

bool conv(const std::string& v, double* out) {
  double parsed{};
  const char* first = v.data();
  const char* last = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc{} || ptr != last) return false;
  *out = parsed;
  return true;
}

bool conv(const std::string& v, std::string* out) {
  *out = v;
  return true;
}

bool conv(const std::string& v, Backend* out) {
  const auto b = backend_from_name(v);
  if (!b) return false;
  *out = *b;
  return true;
}

bool conv(const std::string& v, MapKind* out) {
  const auto m = map_kind_from_name(v);
  if (!m) return false;
  *out = *m;
  return true;
}

bool conv(const std::string& v, WorldKind* out) {
  const auto w = world_from_name(v);
  if (!w) return false;
  *out = *w;
  return true;
}

bool conv(const std::string& v, ClockKind* out) {
  const auto c = clock_from_name(v);
  if (!c) return false;
  *out = *c;
  return true;
}

bool conv(const std::string& v, ScoreboardKind* out) {
  const auto s = scoreboard_from_name(v);
  if (!s) return false;
  *out = *s;
  return true;
}

bool conv(const std::string& v, PartitionChoice* out) {
  const auto p = partition_from_name(v);
  if (!p) return false;
  *out = *p;
  return true;
}

bool conv(const std::string& v, ReshardMode* out) {
  const auto r = reshard_from_name(v);
  if (!r) return false;
  *out = *r;
  return true;
}

bool conv(const std::string& v, PinMode* out) {
  const auto p = pin_from_name(v);
  if (!p) return false;
  *out = *p;
  return true;
}

// ---- Rendering (for to_text round trips) ----

std::string render(const std::string& v) { return v; }
std::string render(std::int32_t v) { return std::to_string(v); }
std::string render(std::int64_t v) { return std::to_string(v); }
std::string render(std::uint64_t v) { return std::to_string(v); }
std::string render(Backend v) { return backend_name(v); }
std::string render(MapKind v) { return map_kind_name(v); }
std::string render(WorldKind v) { return world_name(v); }
std::string render(ClockKind v) { return clock_name(v); }
std::string render(ScoreboardKind v) { return scoreboard_name(v); }
std::string render(PartitionChoice v) { return partition_name(v); }
std::string render(ReshardMode v) { return reshard_name(v); }
std::string render(PinMode v) { return pin_name(v); }
std::string render(double v) {
  // Shortest representation that from_chars converts back exactly.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::to_string(v);
}

struct Field {
  const char* key;
  std::function<bool(ScenarioSpec&, const std::string&)> set;
  std::function<std::string(const ScenarioSpec&)> get;
};

#define AIM_SPEC_FIELD(key, member)                                       \
  Field {                                                                 \
    key,                                                                  \
        [](ScenarioSpec& s, const std::string& v) {                       \
          return conv(v, &s.member);                                      \
        },                                                                \
        [](const ScenarioSpec& s) { return render(s.member); }            \
  }

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      AIM_SPEC_FIELD("name", name),
      AIM_SPEC_FIELD("description", description),
      AIM_SPEC_FIELD("world", world),
      AIM_SPEC_FIELD("graph_nodes", graph_nodes),
      AIM_SPEC_FIELD("graph_degree", graph_degree),
      AIM_SPEC_FIELD("graph_rewire", graph_rewire),
      AIM_SPEC_FIELD("map", map),
      AIM_SPEC_FIELD("map_width", map_width),
      AIM_SPEC_FIELD("map_height", map_height),
      AIM_SPEC_FIELD("homes", homes),
      AIM_SPEC_FIELD("districts", districts),
      AIM_SPEC_FIELD("segments", segments),
      AIM_SPEC_FIELD("segment_skew", segment_skew),
      AIM_SPEC_FIELD("agents", agents),
      AIM_SPEC_FIELD("profile", profile),
      AIM_SPEC_FIELD("population", population),
      AIM_SPEC_FIELD("conversation_scale", conversation_scale),
      AIM_SPEC_FIELD("calls_scale", calls_scale),
      AIM_SPEC_FIELD("steps_per_day", steps_per_day),
      AIM_SPEC_FIELD("days", days),
      AIM_SPEC_FIELD("window_begin", window_begin),
      AIM_SPEC_FIELD("window_end", window_end),
      AIM_SPEC_FIELD("seed", seed),
      AIM_SPEC_FIELD("radius_p", radius_p),
      AIM_SPEC_FIELD("max_vel", max_vel),
      AIM_SPEC_FIELD("scoreboard", scoreboard),
      // `shards` reads/writes `auto` for the 0 sentinel, so the macro's
      // plain integer conversion does not fit.
      Field{"shards",
            [](ScenarioSpec& s, const std::string& v) {
              if (v == "auto") {
                s.shards = 0;
                return true;
              }
              return conv(v, &s.shards);
            },
            [](const ScenarioSpec& s) {
              return s.shards == 0 ? std::string("auto") : render(s.shards);
            }},
      AIM_SPEC_FIELD("partition", partition),
      AIM_SPEC_FIELD("reshard", reshard),
      AIM_SPEC_FIELD("pin", pin),
      AIM_SPEC_FIELD("model", model),
      AIM_SPEC_FIELD("gpu", gpu),
      AIM_SPEC_FIELD("tensor_parallel", tensor_parallel),
      AIM_SPEC_FIELD("data_parallel", data_parallel),
      AIM_SPEC_FIELD("backend", backend),
      AIM_SPEC_FIELD("workers", workers),
      AIM_SPEC_FIELD("pool_workers", pool_workers),
      AIM_SPEC_FIELD("clock", clock),
      AIM_SPEC_FIELD("time_scale", time_scale),
      AIM_SPEC_FIELD("call_latency_us", call_latency_us),
  };
  return kFields;
}

#undef AIM_SPEC_FIELD

const Field* find_field(const std::string& key) {
  for (const Field& f : fields()) {
    if (key == f.key) return &f;
  }
  return nullptr;
}

/// Classic Levenshtein distance, for "did you mean" suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The valid key closest to `key` by edit distance (ties: table order).
const char* nearest_key(const std::string& key) {
  const char* best = fields().front().key;
  std::size_t best_d = std::numeric_limits<std::size_t>::max();
  for (const Field& f : fields()) {
    const std::size_t d = edit_distance(key, f.key);
    if (d < best_d) {
      best_d = d;
      best = f.key;
    }
  }
  return best;
}

}  // namespace

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  os << "# scenario: " << name << "\n";
  for (const Field& f : fields()) {
    os << f.key << " = " << f.get(*this) << "\n";
  }
  return os.str();
}

std::int32_t ScenarioSpec::resolved_pool_workers() const {
  return pool_workers > 0 ? pool_workers
                          : runtime::derive_pool_workers(workers);
}

std::int32_t ScenarioSpec::resolved_shards() const {
  if (shards > 0) return shards;
  // One strip per ~2500 agents keeps strips wide relative to the
  // blocking radius (narrow strips make every agent a border agent and
  // every commit cross-shard). 64 mirrors core::kMaxShards.
  return std::clamp(agents / 2500, 1, 64);
}

Step ScenarioSpec::sim_steps() const {
  if (window_begin >= 0 && window_end > window_begin) {
    return window_end - window_begin;
  }
  return episode_steps();
}

std::vector<std::string> spec_key_names() {
  std::vector<std::string> out;
  for (const Field& f : fields()) out.emplace_back(f.key);
  return out;
}

bool apply_override(ScenarioSpec* spec, const std::string& assignment,
                    std::string* error) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos) {
    *error = strformat("expected key=value, got '%s'", assignment.c_str());
    return false;
  }
  const std::string key = trim(assignment.substr(0, eq));
  const std::string value = trim(assignment.substr(eq + 1));
  const Field* field = find_field(key);
  if (field == nullptr) {
    *error = strformat("unknown key '%s' (did you mean '%s'?)", key.c_str(),
                       nearest_key(key));
    return false;
  }
  if (!field->set(*spec, value)) {
    *error = strformat("invalid value '%s' for key '%s'", value.c_str(),
                       key.c_str());
    return false;
  }
  return true;
}

SpecParseResult parse_spec_text(const std::string& text, ScenarioSpec base) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::string error;
    if (!apply_override(&base, stripped, &error)) {
      return SpecParseResult{std::nullopt,
                             strformat("line %d: %s", line_no, error.c_str())};
    }
  }
  return SpecParseResult{std::move(base), ""};
}

SpecParseResult parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return SpecParseResult{std::nullopt,
                           strformat("cannot open '%s'", path.c_str())};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec_text(buffer.str());
}

std::string validate_spec(const ScenarioSpec& spec) {
  if (spec.agents < 1) return "agents must be >= 1";
  if (spec.segments < 1) return "segments must be >= 1";
  if (spec.agents < spec.segments) {
    // A non-divisible count is fine — the remainder is spread over the
    // first segments — but every segment needs at least one agent.
    return strformat("agents (%d) must be >= segments (%d)", spec.agents,
                     spec.segments);
  }
  if (spec.steps_per_day < 1) return "steps_per_day must be >= 1";
  if (spec.days < 1 || spec.days > 64) return "days must be in [1, 64]";
  const bool has_window = spec.window_begin >= 0 || spec.window_end >= 0;
  if (has_window) {
    if (spec.window_begin < 0 || spec.window_end <= spec.window_begin ||
        spec.window_end > spec.episode_steps()) {
      return strformat(
          "window [%d, %d) must satisfy 0 <= begin < end <= days * "
          "steps_per_day (%d)",
          spec.window_begin, spec.window_end, spec.episode_steps());
    }
  }
  if (spec.radius_p <= 0.0) return "radius_p must be > 0";
  if (spec.max_vel < 0.0) return "max_vel must be >= 0";
  if (spec.conversation_scale < 0.0) return "conversation_scale must be >= 0";
  if (spec.calls_scale < 0.0) return "calls_scale must be >= 0";
  if (spec.tensor_parallel < 1 || spec.data_parallel < 1) {
    return "tensor_parallel and data_parallel must be >= 1";
  }
  if (spec.workers < 1) return "workers must be >= 1";
  if (spec.pool_workers < 0) {
    return "pool_workers must be >= 0 (0 derives from workers)";
  }
  if (spec.shards < 0 || spec.shards > 64) {
    return "shards must be auto or in [1, 64]";
  }
  if (spec.segment_skew < 0.0 || spec.segment_skew >= 1.0) {
    return "segment_skew must be in [0, 1)";
  }
  if (spec.time_scale <= 0.0) return "time_scale must be > 0";
  if (spec.call_latency_us < 0) return "call_latency_us must be >= 0";

  if (spec.world == WorldKind::kGraph) {
    if (spec.graph_nodes < 3) {
      return "graph worlds need graph_nodes >= 3";
    }
    if (spec.graph_degree < 2 || spec.graph_degree % 2 != 0 ||
        spec.graph_degree >= spec.graph_nodes) {
      return strformat(
          "graph_degree (%d) must be even, >= 2, and < graph_nodes (%d)",
          spec.graph_degree, spec.graph_nodes);
    }
    if (spec.graph_rewire < 0.0 || spec.graph_rewire > 1.0) {
      return "graph_rewire must be in [0, 1]";
    }
    if (spec.max_vel < 1.0) {
      return "graph agents move one hop per step: max_vel must be >= 1";
    }
    if (spec.days != 1) return "graph worlds are single-day: days must be 1";
    if (spec.segments != 1) {
      return "segment concatenation offsets x coordinates, which graph "
             "worlds use as node ids: segments must be 1";
    }
    if (spec.map == MapKind::kArena) {
      return "arena maps run live gym agents on a grid; they cannot be "
             "graph worlds";
    }
  } else if (spec.graph_nodes != 0) {
    // A forgotten `world = graph` must fail loudly, not silently run the
    // grid workload the rest of the spec happens to describe.
    return "graph_nodes is set but world = grid: set world = graph (or "
           "drop the graph_* keys)";
  }

  switch (spec.map) {
    case MapKind::kSmallville:
      if (spec.homes < 1 || spec.homes > 26) {
        return "smallville maps support 1..26 homes";
      }
      break;
    case MapKind::kPlaza:
      if (spec.homes < 1 || spec.homes > 14) {
        return "plaza maps support 1..14 homes";
      }
      break;
    case MapKind::kUrbanGrid:
      if (spec.homes < 1 || spec.homes > 18) {
        return "urban_grid maps support 1..18 homes";
      }
      if (spec.districts < 1 || spec.districts > 9) {
        return "urban_grid maps support 1..9 districts";
      }
      break;
    case MapKind::kArena:
      if (spec.map_width < 4 || spec.map_height < 4) {
        return "arena maps must be at least 4x4";
      }
      if (static_cast<std::int64_t>(spec.map_width) * spec.map_height <
          spec.agents) {
        return strformat("arena %dx%d cannot hold %d agents on distinct tiles",
                         spec.map_width, spec.map_height, spec.agents);
      }
      if (spec.backend != Backend::kEngine) {
        return "arena maps have no routine venues, so no trace can be "
               "generated for them: set backend = engine";
      }
      if (spec.segments != 1) return "arena maps cannot be segmented";
      if (spec.shards > 1) {
        return "arena maps run the live gym loop, which commits through "
               "one scoreboard cursor: shards must be auto or 1";
      }
      if (!spec.population.empty()) {
        // Gym agents have no behavior profiles; accepting the key would
        // silently run a different workload than the spec claims.
        return "arena maps run live gym agents, which have no behavior "
               "profiles: population cannot be set";
      }
      break;
  }

  if (!trace::BehaviorProfile::find(spec.profile)) {
    return strformat("unknown behavior profile '%s' (known: %s)",
                     spec.profile.c_str(),
                     join(trace::BehaviorProfile::names(), ", ").c_str());
  }
  if (!spec.population.empty()) {
    std::string mix_error;
    if (!trace::PopulationMix::parse(spec.population, &mix_error)) {
      return strformat("population: %s", mix_error.c_str());
    }
  }
  if (!llm::find_model(spec.model)) {
    return strformat("unknown model '%s' (known: %s)", spec.model.c_str(),
                     join(llm::known_model_names(), ", ").c_str());
  }
  if (!llm::find_gpu(spec.gpu)) {
    return strformat("unknown GPU '%s' (known: %s)", spec.gpu.c_str(),
                     join(llm::known_gpu_names(), ", ").c_str());
  }
  return "";
}

}  // namespace aimetro::scenario
