// The unified scenario runner.
//
// ScenarioDriver turns a ScenarioSpec into a running simulation on either
// execution backend behind one interface:
//
//   - DES backend: generate the scenario's trace, then replay it in
//     virtual time on the discrete-event serving simulator under
//     single-thread, parallel-sync, and metropolis scheduling — the
//     paper's evaluation pipeline, with cost-model GPUs.
//   - Engine backend: run the workload on the live threaded
//     runtime::Engine. Trace-bearing maps replay the same generated trace
//     through the engine's scoreboard (so both backends execute the
//     identical workload); arena maps run live LLM-driven gym agents
//     lock-step and out-of-order instead. Under `clock = wall` LLM calls
//     sleep a fixed fake latency and times are wall seconds; under
//     `clock = virtual` calls are priced on the spec's model/GPU via the
//     DES cost model (CostModelLlmClient on a SimClock) and times are
//     virtual seconds directly comparable to the DES backend.
//
// Either way the result is one ScenarioReport — speedup over serial,
// achieved parallelism, mean cluster size, mean blockers — so scheduler
// behavior is comparable across scenarios and backends.
#pragma once

#include <string>
#include <vector>

#include "replay/experiment.h"
#include "scenario/spec.h"
#include "trace/schema.h"
#include "world/grid_map.h"

namespace aimetro::scenario {

struct ScenarioReport {
  std::string scenario;
  Backend backend = Backend::kDes;
  std::int32_t agents = 0;
  Step steps = 0;
  std::uint64_t total_calls = 0;
  std::uint64_t agent_steps = 0;  // committed (agent, step) pairs

  /// Episode shape (days > 1 for multi-day scenarios).
  std::int32_t days = 1;
  std::int32_t steps_per_day = 8640;
  /// Realized population for heterogeneous scenarios, as
  /// "profile:count,..." in mix order; empty for homogeneous runs.
  std::string population;

  /// Completion times in seconds: virtual for the DES backend and for the
  /// engine backend under clock = virtual, wall-clock otherwise.
  /// `sync_seconds` is DES-only (lock-step with a global barrier); serial
  /// is one global cursor / one worker.
  double serial_seconds = 0.0;
  double sync_seconds = 0.0;
  double metro_seconds = 0.0;
  double speedup_vs_serial = 0.0;
  double speedup_vs_sync = 0.0;
  /// True when the serial/lock-step baseline actually ran; summary() omits
  /// the baseline line and serial speedup otherwise.
  bool has_serial = false;
  /// Engine backend: times above are cost-model virtual seconds (clock =
  /// virtual) rather than wall time. Always true for the DES backend.
  bool virtual_time = false;

  /// Scheduler behavior (metropolis run).
  double avg_parallelism = 0.0;  // DES: time-averaged outstanding requests
  double mean_cluster_size = 0.0;
  double mean_blockers = 0.0;
  std::uint64_t clusters_dispatched = 0;

  /// Engine backend only: size of the member-chain TaskPool the metropolis
  /// run executed LLM chains on (spec key `pool_workers`, derived from
  /// `workers` when unset), and the largest number of chain tasks that
  /// were in flight at once. 0 / 0 on the DES backend.
  std::int32_t pool_workers = 0;
  std::uint64_t peak_inflight_tasks = 0;

  /// Effective scoreboard strip count (after the collapse rules: brute
  /// scans and graph metrics run unsharded regardless of the spec).
  std::int32_t shards = 1;
  /// Engine backend, shards > 1 only: commit-lock contention per strip.
  /// The `shard = -1` row is the cross-shard (boundary-reconciliation)
  /// path — the residue of the old global commit lock.
  struct ShardContention {
    std::int32_t shard = 0;
    std::uint64_t commits = 0;
    std::uint64_t commit_wait_us = 0;
    std::uint64_t commit_hold_us = 0;
    std::uint64_t max_commit_wait_us = 0;
  };
  std::vector<ShardContention> shard_rows;

  /// Order-insensitive hash of the final per-agent (step, position)
  /// scoreboard state. Two backends that executed the same workload to the
  /// same final state produce the same digest.
  std::uint64_t scoreboard_digest = 0;

  /// Engine/gym runs only: world hashes of the serial and OOO executions;
  /// equality is the paper's correctness guarantee.
  std::uint64_t world_hash_serial = 0;
  std::uint64_t world_hash_metro = 0;

  /// One row per simulated day of a multi-day episode (the days the replay
  /// window overlaps). Workload columns come from the trace; finish_seconds
  /// is when the day's last LLM call completed in the metropolis run —
  /// under out-of-order execution day d+1's calls start well before day
  /// d's stragglers finish, which is exactly the cross-day slack the
  /// scheduler exploits.
  struct DayRow {
    std::int32_t day = 0;  // 0-based episode day index
    std::uint64_t calls = 0;
    std::int64_t input_tokens = 0;
    std::int64_t output_tokens = 0;
    /// Distinct conversations whose turns fall in this day (conversation
    /// ids never straddle a day boundary).
    std::uint64_t conversations = 0;
    double finish_seconds = 0.0;
  };
  /// Populated when the scenario spans more than one day (trace-bearing
  /// maps on either backend; arena/gym runs have no trace to break down).
  std::vector<DayRow> day_rows;

  std::string summary() const;
};

class ScenarioDriver {
 public:
  /// Throws CheckError (with the validate_spec message) on invalid specs.
  explicit ScenarioDriver(ScenarioSpec spec);

  const ScenarioSpec& spec() const { return spec_; }

  /// The full world for this spec (segments already concatenated).
  world::GridMap build_map() const;

  /// The scenario's generated workload trace, windowed per the spec.
  /// Check-fails for arena maps (no routine venues to generate from).
  trace::SimulationTrace build_trace() const;

  /// The DES experiment cell this spec describes (model/GPU resolved,
  /// parallelism applied) — for callers sweeping modes themselves.
  replay::ExperimentConfig experiment_config() const;

  /// Run on the spec's backend and report. `serial_baseline = false`
  /// skips the serial/lock-step reference run (halving the cost) when the
  /// caller only needs the sync/metropolis comparison.
  ScenarioReport run(bool serial_baseline = true) const;

 private:
  ScenarioReport run_des(bool serial_baseline) const;
  ScenarioReport run_engine_trace(bool serial_baseline) const;
  ScenarioReport run_engine_gym(bool serial_baseline) const;

  ScenarioSpec spec_;
  /// Per-agent profile names for heterogeneous specs, derived once at
  /// construction (trace::assign_profiles over the population mix) —
  /// the generator and the report both consume this one assignment, so
  /// the workload and the printed population can never disagree. Empty
  /// for homogeneous specs.
  std::vector<std::string> assigned_profiles_;
};

/// Split `agents` over `segments` (floor share each, remainder spread over
/// the first segments) — sums exactly to `agents`, counts differ by at
/// most one. Requires agents >= segments >= 1.
std::vector<std::int32_t> segment_agent_counts(std::int32_t agents,
                                               std::int32_t segments);

/// The same split with a geometric hotspot skew (spec key `segment_skew`):
/// segment k is weighted (1 - skew)^k, every segment keeps at least one
/// agent, and the counts still sum exactly to `agents` (largest-remainder
/// rounding, deterministic). skew = 0 reduces to the even split above.
/// Requires agents >= segments >= 1 and skew in [0, 1).
std::vector<std::int32_t> segment_agent_counts(std::int32_t agents,
                                               std::int32_t segments,
                                               double skew);

/// `n` distinct walkable start tiles spread over `map` on an evenly spaced
/// grid, each snapped to the nearest free walkable tile. Check-fails when
/// the map cannot seat `n` agents.
std::vector<Tile> plan_gym_starts(const world::GridMap& map, std::int32_t n);

}  // namespace aimetro::scenario
