// The full serving deployment: `data_parallel` replicas (each a
// tensor-parallel group) pulling from one shared admission queue.
//
// The queue is a priority queue over the request's simulation step when
// priority scheduling is enabled (§3.5) and plain FIFO otherwise — the
// Table 1 ablation toggles exactly this switch. No preemption: once a
// request is admitted to a replica's running batch it runs to completion,
// matching the paper ("no preemption during LLM inference").
//
// Cluster-level metrics capture the paper's "achieved parallelism": the
// time-average of outstanding requests over the execution (§4.2).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/stats.h"
#include "des/event_loop.h"
#include "llm/replica.h"

namespace aimetro::llm {

struct ClusterConfig {
  ReplicaConfig replica;
  bool priority_scheduling = true;
  bool record_completions = false;  // keep per-request outcomes (Gantt)
};

class Cluster {
 public:
  Cluster(des::EventLoop* loop, ModelSpec model, GpuSpec gpu,
          ParallelismConfig parallelism, CostModelConfig cost_cfg = {},
          ClusterConfig cfg = {});

  /// Submit a request; returns its assigned id. `req.on_complete` fires
  /// when the last output token is produced.
  RequestId submit(Request req);

  std::size_t outstanding() const { return outstanding_; }
  std::uint64_t submitted() const { return next_id_ - 1; }
  std::uint64_t completed() const { return completed_; }

  /// Time-averaged number of outstanding requests from first submission to
  /// `until` ("achieved parallelism", §4.2).
  double average_parallelism(SimTime until) const;
  SimTime last_completion_time() const { return last_completion_; }

  /// Fraction of [0, until] each replica spent running iterations.
  double average_utilization(SimTime until) const;

  std::int64_t total_decode_tokens() const;
  std::int64_t total_prefill_tokens() const;
  std::uint64_t total_prefix_cache_hits() const;

  const std::vector<RequestOutcome>& completions() const {
    return completion_log_;
  }
  const CostModel& cost_model() const { return cost_; }
  std::int32_t replica_count() const {
    return static_cast<std::int32_t>(replicas_.size());
  }

 private:
  struct QueueEntry {
    std::int64_t priority;
    std::uint64_t seq;
    // Stored out-of-line: Request holds a std::function (move-only-ish).
    std::shared_ptr<Request> req;
    bool operator>(const QueueEntry& o) const {
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };

  std::optional<Request> pull(std::int32_t replica, std::int64_t kv_headroom);
  void on_request_complete(const RequestOutcome& outcome);
  /// Replica with the least pending work (queued + running), lowest index
  /// on ties — the data-parallel router.
  std::int32_t route() const;

  des::EventLoop* loop_;
  CostModel cost_;
  ClusterConfig cfg_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  using WaitHeap =
      std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;
  std::vector<WaitHeap> waiting_;  // one queue per replica
  RequestId next_id_ = 1;
  std::uint64_t queue_seq_ = 0;
  std::size_t outstanding_ = 0;
  std::uint64_t completed_ = 0;
  SimTime last_completion_ = 0;
  TimeWeightedStat outstanding_stat_;
  std::vector<RequestOutcome> completion_log_;
};

}  // namespace aimetro::llm
