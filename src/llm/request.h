// Request/outcome types shared by the cluster simulator and its clients.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace aimetro::llm {

using RequestId = std::uint64_t;

struct RequestOutcome {
  RequestId id = 0;
  SimTime submit_time = 0;
  SimTime admit_time = 0;   // when the request entered a running batch
  SimTime finish_time = 0;
  std::int32_t replica = -1;
  bool prefix_cache_hit = false;
};

/// A single completion request. `priority` is the simulation step of the
/// issuing task — the paper's priority scheduling serves smaller steps
/// first (§3.5); with priorities disabled requests are FIFO.
struct Request {
  RequestId id = 0;
  SimTime submit_time = 0;  // stamped by Cluster::submit
  std::int64_t prompt_tokens = 0;
  std::int64_t output_tokens = 0;  // replay fixes exact lengths (ignore_eos)
  std::int64_t priority = 0;
  std::uint64_t prompt_hash = 0;   // prefix identity for the cache model
  // Opaque caller tags carried into instrumentation (Gantt / Figure 1).
  std::int32_t tag_agent = -1;
  std::int32_t tag_step = -1;
  std::int32_t tag_type = -1;
  std::function<void(const RequestOutcome&)> on_complete;
};

}  // namespace aimetro::llm
