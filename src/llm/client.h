// Blocking LLM client interface for the real (threaded) runtime.
//
// The paper's workers talk to the serving engine "through a thin shim
// layer" (§3.6); this is that shim. The threaded engine and the gym
// environment depend only on this interface, so any backend — a
// deterministic fake for tests, or an adapter to a real OpenAI-compatible
// server — plugs in without touching scheduling code.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace aimetro::llm {

struct CompletionRequest {
  std::string prompt;
  /// Exact prompt length when the caller knows it (trace replay carries
  /// token counts); 0 = estimate from `prompt` text.
  std::int32_t prompt_tokens = 0;
  std::int32_t max_tokens = 128;
  std::int64_t priority = 0;  // simulation step (smaller = more urgent)
};

struct CompletionResult {
  std::string text;
  std::int32_t prompt_tokens = 0;
  std::int32_t output_tokens = 0;
};

class LlmClient {
 public:
  virtual ~LlmClient() = default;
  /// Blocking completion call (thread-safe).
  virtual CompletionResult complete(const CompletionRequest& request) = 0;
};

/// Deterministic fake backend: the response text is a pure function of the
/// prompt, so a simulation driven by it is reproducible regardless of
/// scheduling order — which is exactly what the OOO-equivalence tests need.
/// An optional artificial latency exercises real concurrency in the
/// threaded runtime.
class FakeLlmClient : public LlmClient {
 public:
  explicit FakeLlmClient(std::uint64_t seed = 1, SimTime latency_us = 0)
      : seed_(seed), latency_us_(latency_us) {}

  CompletionResult complete(const CompletionRequest& request) override;

  std::uint64_t calls() const { return calls_.load(); }

 private:
  std::uint64_t seed_;
  SimTime latency_us_;
  std::atomic<std::uint64_t> calls_{0};
};

/// Rough byte-length token estimate used by the fake backend (1 token ~ 4
/// characters), mirroring common tokenizer heuristics.
std::int32_t estimate_tokens(const std::string& text);

/// The deterministic "decision" text both fake backends return: a pure
/// digest of (seed, prompt). Shared so swapping FakeLlmClient for
/// CostModelLlmClient changes latencies but never agent behaviour — the
/// OOO-equivalence world hashes stay identical across client backends.
std::string deterministic_completion_text(std::uint64_t seed,
                                          const std::string& prompt);

}  // namespace aimetro::llm
