#include "llm/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aimetro::llm {

CostModel::CostModel(ModelSpec model, GpuSpec gpu, std::int32_t tensor_parallel,
                     CostModelConfig cfg)
    : model_(std::move(model)),
      gpu_(std::move(gpu)),
      tp_(tensor_parallel),
      cfg_(cfg) {
  AIM_CHECK(tp_ >= 1);
  tp_speedup_ = static_cast<double>(tp_) /
                (1.0 + cfg_.tp_comm_alpha * static_cast<double>(tp_ - 1));
  AIM_CHECK_MSG(model_.weight_bytes() <
                    gpu_.hbm_gb * 1e9 * static_cast<double>(tp_),
                model_.name << " does not fit on " << tp_ << "x " << gpu_.name);
}

double CostModel::weights_read_bytes(std::int32_t token_batch) const {
  const double w = model_.weight_bytes();
  if (!model_.is_moe() || token_batch <= 0) return w;
  // Expected fraction of experts touched by `token_batch` tokens, each
  // routed to `experts_per_token` of `n_experts` experts.
  const double miss = std::pow(
      1.0 - static_cast<double>(model_.experts_per_token) /
                static_cast<double>(model_.n_experts),
      std::max(1.0, static_cast<double>(token_batch)));
  const double touched_frac = 1.0 - miss;
  return w * (1.0 - model_.expert_params_frac) +
         w * model_.expert_params_frac * touched_frac;
}

SimTime CostModel::iteration_time(std::int32_t decode_batch,
                                  std::int64_t prefill_tokens,
                                  std::int64_t kv_resident_tokens) const {
  AIM_CHECK(decode_batch >= 0 && prefill_tokens >= 0);
  const double token_batch =
      static_cast<double>(decode_batch) + static_cast<double>(prefill_tokens);
  if (token_batch <= 0.0) return 0;

  const double bw =
      gpu_.mem_bw_gbps * 1e9 * cfg_.bw_efficiency;  // bytes/s per GPU
  const double flops = gpu_.tflops * 1e12 * cfg_.flops_efficiency;

  // Memory traffic: weights once per iteration plus the decode KV reads.
  const double weight_bytes =
      weights_read_bytes(static_cast<std::int32_t>(token_batch));
  const double kv_read_bytes =
      decode_batch > 0
          ? static_cast<double>(kv_resident_tokens) * model_.kv_bytes_per_token()
          : 0.0;
  const double mem_seconds =
      (weight_bytes + kv_read_bytes) / (bw * tp_speedup_);

  // Compute: 2 FLOPs per active parameter per token.
  const double compute_seconds =
      2.0 * model_.active_params_b * 1e9 * token_batch /
      (flops * tp_speedup_);

  const double seconds = std::max(mem_seconds, compute_seconds) +
                         cfg_.iteration_overhead_us * 1e-6;
  return sim_time_from_seconds(seconds);
}

std::int64_t CostModel::kv_capacity_tokens() const {
  const double total_hbm = gpu_.hbm_gb * 1e9 * static_cast<double>(tp_);
  const double reserve =
      cfg_.activation_reserve_gb * 1e9 * static_cast<double>(tp_);
  const double free_bytes = total_hbm - model_.weight_bytes() - reserve;
  AIM_CHECK_MSG(free_bytes > 0, "no HBM left for KV cache");
  return static_cast<std::int64_t>(free_bytes / model_.kv_bytes_per_token());
}

}  // namespace aimetro::llm
