#include "llm/cluster.h"

#include <utility>

#include "common/check.h"

namespace aimetro::llm {

Cluster::Cluster(des::EventLoop* loop, ModelSpec model, GpuSpec gpu,
                 ParallelismConfig parallelism, CostModelConfig cost_cfg,
                 ClusterConfig cfg)
    : loop_(loop),
      cost_(std::move(model), std::move(gpu), parallelism.tensor_parallel,
            cost_cfg),
      cfg_(cfg) {
  AIM_CHECK(loop_ != nullptr);
  AIM_CHECK(parallelism.data_parallel >= 1);
  waiting_.resize(static_cast<std::size_t>(parallelism.data_parallel));
  for (std::int32_t i = 0; i < parallelism.data_parallel; ++i) {
    replicas_.push_back(std::make_unique<Replica>(
        i, loop_, &cost_, cfg_.replica,
        [this, i](std::int64_t headroom) { return pull(i, headroom); }));
  }
}

std::int32_t Cluster::route() const {
  std::int32_t best = 0;
  std::size_t best_load = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::size_t load =
        waiting_[i].size() +
        static_cast<std::size_t>(replicas_[i]->running_count());
    if (load < best_load) {
      best_load = load;
      best = static_cast<std::int32_t>(i);
    }
  }
  return best;
}

RequestId Cluster::submit(Request req) {
  const RequestId id = next_id_++;
  req.id = id;
  req.submit_time = loop_->now();
  // Wrap the caller's completion callback with cluster bookkeeping.
  auto user_cb = std::move(req.on_complete);
  req.on_complete = [this, user_cb = std::move(user_cb)](
                        const RequestOutcome& outcome) {
    on_request_complete(outcome);
    if (user_cb) user_cb(outcome);
  };
  const std::int64_t priority = cfg_.priority_scheduling ? req.priority : 0;
  const std::int32_t target = route();
  waiting_[static_cast<std::size_t>(target)].push(QueueEntry{
      priority, queue_seq_++, std::make_shared<Request>(std::move(req))});
  ++outstanding_;
  outstanding_stat_.set(loop_->now(), static_cast<double>(outstanding_));
  replicas_[static_cast<std::size_t>(target)]->kick();
  return id;
}

std::optional<Request> Cluster::pull(std::int32_t replica,
                                     std::int64_t kv_headroom) {
  auto& queue = waiting_[static_cast<std::size_t>(replica)];
  if (queue.empty()) return std::nullopt;
  const QueueEntry& top = queue.top();
  const std::int64_t need = top.req->prompt_tokens + top.req->output_tokens;
  if (need > kv_headroom) return std::nullopt;  // head-of-line blocks
  Request out = std::move(*top.req);
  queue.pop();
  return out;
}

void Cluster::on_request_complete(const RequestOutcome& outcome) {
  AIM_CHECK(outstanding_ > 0);
  --outstanding_;
  ++completed_;
  last_completion_ = loop_->now();
  outstanding_stat_.set(loop_->now(), static_cast<double>(outstanding_));
  if (cfg_.record_completions) completion_log_.push_back(outcome);
}

double Cluster::average_parallelism(SimTime until) const {
  if (completed_ == 0 && outstanding_ == 0) return 0.0;
  return outstanding_stat_.average_until(until);
}

double Cluster::average_utilization(SimTime until) const {
  if (until <= 0 || replicas_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : replicas_) {
    total += static_cast<double>(r->busy_time());
  }
  return total / (static_cast<double>(until) *
                  static_cast<double>(replicas_.size()));
}

std::int64_t Cluster::total_decode_tokens() const {
  std::int64_t n = 0;
  for (const auto& r : replicas_) n += r->decode_tokens_done();
  return n;
}

std::int64_t Cluster::total_prefill_tokens() const {
  std::int64_t n = 0;
  for (const auto& r : replicas_) n += r->prefill_tokens_done();
  return n;
}

std::uint64_t Cluster::total_prefix_cache_hits() const {
  std::uint64_t n = 0;
  for (const auto& r : replicas_) n += r->prefix_cache_hits();
  return n;
}

}  // namespace aimetro::llm
