#include "llm/client.h"

#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/strings.h"

namespace aimetro::llm {

std::int32_t estimate_tokens(const std::string& text) {
  return static_cast<std::int32_t>(text.size() / 4) + 1;
}

std::string deterministic_completion_text(std::uint64_t seed,
                                          const std::string& prompt) {
  // Deterministic digest of the prompt drives the "decision" text.
  std::uint64_t h = seed;
  for (unsigned char c : prompt) h = splitmix64(h ^ c);
  return strformat("decision:%016llx", static_cast<unsigned long long>(h));
}

CompletionResult FakeLlmClient::complete(const CompletionRequest& request) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
  CompletionResult result;
  result.prompt_tokens = request.prompt_tokens > 0
                             ? request.prompt_tokens
                             : estimate_tokens(request.prompt);
  result.text = deterministic_completion_text(seed_, request.prompt);
  result.output_tokens = estimate_tokens(result.text);
  return result;
}

}  // namespace aimetro::llm
