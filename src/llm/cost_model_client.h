// A blocking LlmClient whose latencies come from the DES cost model.
//
// FakeLlmClient sleeps a fixed configured latency per call, so engine-
// backend completion times measured with it say nothing about a real
// serving platform. CostModelLlmClient instead prices every call on the
// same llm::CostModel the discrete-event simulator uses and routes calls
// across `data_parallel` replica queues the way llm::Cluster routes
// requests (least-loaded replica, capacity-gated admission). The computed
// latency is served on a runtime::SimClock: callers block for
// latency/scale wall time while the full latency advances on the virtual
// axis, so the threaded engine's serial and metropolis runs report
// virtual seconds directly comparable to the DES backend's numbers.
//
// Decode is priced *per iteration*, event-driven, exactly like the DES
// Replica's continuous batching: each replica keeps a DecodeTimeline that
// replays decode iterations on the virtual axis, and a request's decode
// latency is the sum of iteration_time over the batches it actually
// shares — a call admitted alone that is later joined by others gets
// slower mid-flight, and vice versa. Prefill is chunked at
// max_prefill_tokens_per_iter and runs as the request's own iterations
// before its decode joins the batch.
//
// Remaining approximations vs. the event-driven Cluster (documented in
// docs/ARCHITECTURE.md): prefill does not share iterations with
// co-resident decodes, the KV-resident footprint counts whole requests
// (prompt + full output) rather than growing token by token, and
// capacity gating uses predicted finish times (later arrivals can shift
// a predicted slot slightly).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "llm/client.h"
#include "llm/cost_model.h"
#include "runtime/sim_clock.h"

namespace aimetro::llm {

/// Event-driven continuous-batching decode timeline for one replica.
///
/// Mirrors Replica::run_iteration on the virtual axis without an event
/// loop: iterations run back to back whenever at least one admitted
/// request is decoding; every iteration decodes one token per batch
/// member and costs CostModel::iteration_time(batch, 0, kv) where kv is
/// the batch's resident footprint. A request joins the first iteration
/// whose start is >= its join time (admission happens at iteration
/// boundaries, as in the DES replica) and finishes at the boundary of
/// the iteration that produces its last token.
///
/// Not thread-safe by itself: CostModelLlmClient guards each replica's
/// timeline with that replica's mutex (one lock per replica, so traffic
/// on one replica never blocks another). Exposed for unit tests —
/// deterministic, no clock, no threads.
class DecodeTimeline {
 public:
  explicit DecodeTimeline(const CostModel* cost);

  /// Admit a request whose decode joins at virtual time `join`, needing
  /// `output_tokens` iterations with `kv_footprint` tokens resident.
  /// Returns the request's timeline id.
  std::uint64_t admit(SimTime join, std::int64_t output_tokens,
                      std::int64_t kv_footprint);

  /// Complete every whole iteration that ends at or before `t` (partial
  /// iterations do not advance the cursor).
  void advance(SimTime t);

  /// This request's finish time assuming no further admissions — exact
  /// once it is the latest-finishing request, a lower bound otherwise
  /// (later arrivals can only lengthen shared iterations).
  SimTime predict_finish(std::uint64_t id) const;

  /// Finish times of every admitted, un-reaped request: exact for those
  /// already finished, predicted (per predict_finish) for active ones.
  /// Unsorted. Feeds capacity-slot queueing.
  std::vector<SimTime> predicted_finishes() const;

  bool finished(std::uint64_t id) const;
  /// Pop a finished request's exact finish time (checked: must be
  /// finished).
  SimTime take_finish(std::uint64_t id);

  /// Admitted requests that have not yet finished decoding.
  std::int32_t active() const { return static_cast<std::int32_t>(active_.size()); }
  /// Largest decode batch any completed iteration actually ran with.
  std::int32_t peak_batch() const { return peak_batch_; }
  SimTime cursor() const { return cursor_; }

 private:
  struct Req {
    SimTime join = 0;
    std::int64_t remaining = 0;
    std::int64_t kv = 0;
  };

  /// Unbounded replay of the stepping rule over a copy of active_ until
  /// every request drains, reporting each (id, finish). The single
  /// source of truth predict_finish and predicted_finishes share.
  std::vector<std::pair<std::uint64_t, SimTime>> simulate_to_drain() const;

  const CostModel* cost_;
  std::map<std::uint64_t, Req> active_;
  std::map<std::uint64_t, SimTime> finished_;
  SimTime cursor_ = 0;
  std::uint64_t next_id_ = 0;
  std::int32_t peak_batch_ = 0;
};

struct CostModelClientConfig {
  /// Independent replica queues, as ParallelismConfig::data_parallel.
  std::int32_t data_parallel = 1;
  /// Per-replica admission cap; calls past it queue for a slot in virtual
  /// time (mirrors ReplicaConfig::max_running_requests).
  std::int32_t max_running_requests = 256;
  /// Chunked-prefill budget per iteration (mirrors ReplicaConfig).
  std::int64_t max_prefill_tokens_per_iter = 8192;
  /// Seed for the deterministic response text.
  std::uint64_t seed = 1;
};

class CostModelLlmClient : public LlmClient {
 public:
  /// `clock` must outlive the client and is shared with the caller, which
  /// reads the run's virtual completion time from it.
  CostModelLlmClient(CostModel cost, const runtime::SimClock* clock,
                     CostModelClientConfig cfg = {});

  CompletionResult complete(const CompletionRequest& request) override;

  /// Constant-batch reference latency, exposed so tests can pin the
  /// pricing against CostModel::iteration_time: chunked prefill of
  /// `prompt_tokens`, then `output_tokens` decode iterations at a fixed
  /// `decode_batch` with `kv_resident_tokens` of context resident. This
  /// is exactly what complete() charges a call that shares every decode
  /// iteration with the same batch (e.g. a call running alone prices at
  /// decode_batch = 1, kv = its own footprint).
  SimTime virtual_latency(std::int64_t prompt_tokens,
                          std::int64_t output_tokens,
                          std::int32_t decode_batch,
                          std::int64_t kv_resident_tokens) const;

  const CostModel& cost_model() const { return cost_; }
  std::uint64_t calls() const;
  /// Latest virtual finish time across all completed calls.
  SimTime last_finish() const;
  /// Largest decode batch any completed iteration actually ran with, from
  /// the per-iteration accounting (diagnostics). Admission-time batch
  /// snapshots are gone: this is the true peak concurrent batch.
  std::int32_t peak_batch() const;

 private:
  /// Chunked prefill time for `prompt_tokens` (the decode-free prefix of
  /// virtual_latency).
  SimTime prefill_time(std::int64_t prompt_tokens) const;

  struct ReplicaState {
    explicit ReplicaState(const CostModel* cost) : timeline(cost) {}
    /// Guards `timeline`. Per-replica, so the frequent per-wake replays
    /// (advance + predict) on one replica never block traffic on
    /// another.
    common::Mutex mutex{"llm.replica"};
    DecodeTimeline timeline GUARDED_BY(mutex);
  };

  CostModel cost_;
  const runtime::SimClock* clock_;
  CostModelClientConfig cfg_;

  /// Serializes routing decisions and inflight bookkeeping (cheap, O(dp)
  /// argmin) so least-loaded routing stays exact. Lock order:
  /// route_mutex_ before a replica mutex — admission and reaping both
  /// acquire in that order; the AIMETRO_LOCK_DEBUG validator enforces it.
  mutable common::Mutex route_mutex_{"llm.route"};
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
  /// inflight_[i]: calls admitted to replica i and not yet reaped by
  /// their waiting thread. Mutated only while replicas_[i]->mutex is also
  /// held, so admission's slot math sees the count and the timeline
  /// change together.
  std::vector<std::int32_t> inflight_ GUARDED_BY(route_mutex_);
  mutable common::Mutex stats_mutex_{"llm.stats"};
  std::uint64_t calls_ GUARDED_BY(stats_mutex_) = 0;
  SimTime last_finish_ GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace aimetro::llm
