// A blocking LlmClient whose latencies come from the DES cost model.
//
// FakeLlmClient sleeps a fixed configured latency per call, so engine-
// backend completion times measured with it say nothing about a real
// serving platform. CostModelLlmClient instead prices every call on the
// same llm::CostModel the discrete-event simulator uses — chunked prefill
// plus one decode iteration per output token at the replica's current
// batch size — and routes calls across `data_parallel` replica queues the
// way llm::Cluster routes requests (least-loaded replica, capacity-gated
// admission). The computed latency is served on a runtime::SimClock:
// callers block for latency/scale wall time while the full latency
// advances on the virtual axis, so the threaded engine's serial and
// metropolis runs report virtual seconds directly comparable to the DES
// backend's numbers for the same workload.
//
// Approximations vs. the event-driven Cluster (documented in README):
// decode batch is sampled once at admission instead of re-priced every
// iteration, prefill does not share iterations with co-resident decodes,
// and the KV-resident footprint counts whole requests (prompt + full
// output) rather than growing token by token.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "llm/client.h"
#include "llm/cost_model.h"
#include "runtime/sim_clock.h"

namespace aimetro::llm {

struct CostModelClientConfig {
  /// Independent replica queues, as ParallelismConfig::data_parallel.
  std::int32_t data_parallel = 1;
  /// Per-replica admission cap; calls past it queue for a slot in virtual
  /// time (mirrors ReplicaConfig::max_running_requests).
  std::int32_t max_running_requests = 256;
  /// Chunked-prefill budget per iteration (mirrors ReplicaConfig).
  std::int64_t max_prefill_tokens_per_iter = 8192;
  /// Seed for the deterministic response text.
  std::uint64_t seed = 1;
};

class CostModelLlmClient : public LlmClient {
 public:
  /// `clock` must outlive the client and is shared with the caller, which
  /// reads the run's virtual completion time from it.
  CostModelLlmClient(CostModel cost, const runtime::SimClock* clock,
                     CostModelClientConfig cfg = {});

  CompletionResult complete(const CompletionRequest& request) override;

  /// Pure latency model, exposed so tests can pin it against
  /// CostModel::iteration_time: chunked prefill of `prompt_tokens`, then
  /// `output_tokens` decode iterations at `decode_batch` with
  /// `kv_resident_tokens` of context resident on the replica.
  SimTime virtual_latency(std::int64_t prompt_tokens,
                          std::int64_t output_tokens,
                          std::int32_t decode_batch,
                          std::int64_t kv_resident_tokens) const;

  const CostModel& cost_model() const { return cost_; }
  std::uint64_t calls() const;
  /// Latest virtual finish time across all completed calls.
  SimTime last_finish() const;
  /// Largest decode batch any call was admitted at (diagnostics).
  std::int32_t peak_batch() const;

 private:
  struct ReplicaState {
    std::int32_t running = 0;
    std::int64_t kv_tokens = 0;
    /// Virtual finish times of in-flight calls (slot release schedule).
    std::multiset<SimTime> finishes;
  };

  CostModel cost_;
  const runtime::SimClock* clock_;
  CostModelClientConfig cfg_;

  mutable std::mutex mutex_;
  std::vector<ReplicaState> replicas_;
  std::uint64_t calls_ = 0;
  SimTime last_finish_ = 0;
  std::int32_t peak_batch_ = 0;
};

}  // namespace aimetro::llm
