#include "llm/specs.h"

#include <algorithm>
#include <cctype>

namespace aimetro::llm {

namespace {

/// Lowercase and fold '_', ' ', '.' to '-' so "Llama_3 8B" == "llama-3-8b".
std::string normalize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '_' || c == ' ' || c == '.') {
      out.push_back('-');
    } else {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

ModelSpec ModelSpec::llama3_8b() {
  ModelSpec m;
  m.name = "llama-3-8b-instruct";
  m.total_params_b = 8.0;
  m.active_params_b = 8.0;
  m.n_layers = 32;
  m.kv_dim = 1024;  // 8 KV heads x 128 (GQA)
  return m;
}

ModelSpec ModelSpec::llama3_70b() {
  ModelSpec m;
  m.name = "llama-3-70b-instruct";
  m.total_params_b = 70.0;
  m.active_params_b = 70.0;
  m.n_layers = 80;
  m.kv_dim = 1024;  // 8 KV heads x 128 (GQA)
  return m;
}

ModelSpec ModelSpec::mixtral_8x7b() {
  ModelSpec m;
  m.name = "mixtral-8x7b-instruct-v0.1";
  m.total_params_b = 46.7;
  m.active_params_b = 12.9;  // 2-of-8 experts per token
  m.n_layers = 32;
  m.kv_dim = 1024;  // 8 KV heads x 128 (GQA)
  m.n_experts = 8;
  m.experts_per_token = 2;
  m.expert_params_frac = 0.96 * (1.0 - 12.9 / 46.7) /
                         (1.0 - 12.9 / 46.7);  // ~= all non-shared weights
  m.expert_params_frac = 0.83;  // attention + embeddings are shared
  return m;
}

GpuSpec GpuSpec::l4() {
  GpuSpec g;
  g.name = "NVIDIA L4";
  g.tflops = 121.0;  // dense fp16/bf16
  g.mem_bw_gbps = 300.0;
  g.hbm_gb = 24.0;
  return g;
}

GpuSpec GpuSpec::a100_80gb() {
  GpuSpec g;
  g.name = "NVIDIA A100-80GB";
  g.tflops = 312.0;
  g.mem_bw_gbps = 2039.0;
  g.hbm_gb = 80.0;
  return g;
}

std::optional<ModelSpec> find_model(const std::string& name) {
  const std::string n = normalize(name);
  for (const ModelSpec& m :
       {ModelSpec::llama3_8b(), ModelSpec::llama3_70b(),
        ModelSpec::mixtral_8x7b()}) {
    if (n == normalize(m.name)) return m;
  }
  if (n == "llama3-8b" || n == "llama-3-8b" || n == "8b") {
    return ModelSpec::llama3_8b();
  }
  if (n == "llama3-70b" || n == "llama-3-70b" || n == "70b") {
    return ModelSpec::llama3_70b();
  }
  if (n == "mixtral-8x7b" || n == "mixtral") return ModelSpec::mixtral_8x7b();
  return std::nullopt;
}

std::optional<GpuSpec> find_gpu(const std::string& name) {
  const std::string n = normalize(name);
  if (n == normalize(GpuSpec::l4().name) || n == "l4") return GpuSpec::l4();
  if (n == normalize(GpuSpec::a100_80gb().name) || n == "a100-80gb" ||
      n == "a100") {
    return GpuSpec::a100_80gb();
  }
  return std::nullopt;
}

std::vector<std::string> known_model_names() {
  return {ModelSpec::llama3_8b().name, ModelSpec::llama3_70b().name,
          ModelSpec::mixtral_8x7b().name};
}

std::vector<std::string> known_gpu_names() {
  return {GpuSpec::l4().name, GpuSpec::a100_80gb().name};
}

}  // namespace aimetro::llm
