// Model and GPU specifications for the serving-cluster simulator.
//
// Presets cover the paper's evaluation matrix (§4.1): Llama-3-8B-Instruct on
// NVIDIA L4s (data parallel 1..8), Llama-3-70B-Instruct on A100-80GB (tensor
// parallel 4, hybrid 2x4 on 8 GPUs), and Mixtral-8x7B (MoE) on A100s.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aimetro::llm {

struct ModelSpec {
  std::string name;
  double total_params_b = 0.0;   // parameters resident in memory (billions)
  double active_params_b = 0.0;  // parameters touched per token (MoE < total)
  std::int32_t n_layers = 0;
  std::int32_t kv_dim = 0;  // per-layer K (or V) width in elements (GQA-aware)
  // MoE structure (dense models: n_experts == 0).
  std::int32_t n_experts = 0;
  std::int32_t experts_per_token = 0;
  double expert_params_frac = 0.0;  // fraction of weights living in experts

  double weight_bytes() const { return total_params_b * 1e9 * 2.0; }  // bf16
  double kv_bytes_per_token() const {
    return 2.0 * n_layers * kv_dim * 2.0;  // K and V, bf16
  }
  bool is_moe() const { return n_experts > 0; }

  static ModelSpec llama3_8b();
  static ModelSpec llama3_70b();
  static ModelSpec mixtral_8x7b();
};

struct GpuSpec {
  std::string name;
  double tflops = 0.0;      // dense bf16 peak
  double mem_bw_gbps = 0.0;  // GB/s
  double hbm_gb = 0.0;

  static GpuSpec l4();
  static GpuSpec a100_80gb();
};

/// Resolve a model by name. Matching is case-insensitive and treats '_',
/// ' ', and '.' as '-'; common short aliases ("llama3-8b", "8b",
/// "mixtral") resolve to the full preset. nullopt for unknown names —
/// callers must surface a clear error rather than fall back to a default.
std::optional<ModelSpec> find_model(const std::string& name);
std::optional<GpuSpec> find_gpu(const std::string& name);

/// Canonical names of every known preset (for error messages / --list).
std::vector<std::string> known_model_names();
std::vector<std::string> known_gpu_names();

/// How a model is mapped onto GPUs: `data_parallel` independent replicas,
/// each spanning `tensor_parallel` GPUs.
struct ParallelismConfig {
  std::int32_t tensor_parallel = 1;
  std::int32_t data_parallel = 1;
  std::int32_t total_gpus() const { return tensor_parallel * data_parallel; }
};

}  // namespace aimetro::llm
