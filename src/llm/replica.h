// One continuous-batching model replica (an SGLang/vLLM-style engine
// instance, possibly spanning a tensor-parallel GPU group).
//
// Iteration-level simulation: at each iteration boundary the replica admits
// waiting requests while KV capacity allows, decodes one token for every
// running request, and spends a bounded chunk of the iteration on prefill
// (chunked prefill a la Sarathi). Iteration duration comes from CostModel.
// The replica pulls work from a shared cluster queue so that priority
// ordering is global across replicas.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "des/event_loop.h"
#include "llm/cost_model.h"
#include "llm/request.h"

namespace aimetro::llm {

struct ReplicaConfig {
  std::int32_t max_running_requests = 256;
  std::int64_t max_prefill_tokens_per_iter = 8192;  // chunked prefill budget
  bool prefix_cache = false;  // §4.1: off for stable benchmarking
  double prefix_cache_hit_frac = 0.6;  // fraction of prompt skipped on hit
  std::size_t prefix_cache_capacity = 4096;  // distinct prefixes retained
};

class Replica {
 public:
  /// `pull` hands the replica the next request to admit given its KV
  /// headroom (tokens), or nullopt; the cluster owns the shared queue.
  using PullFn = std::function<std::optional<Request>(
      std::int64_t kv_headroom_tokens)>;

  Replica(std::int32_t index, des::EventLoop* loop, const CostModel* cost,
          ReplicaConfig cfg, PullFn pull);

  /// Notify the replica that new work may be available; starts the
  /// iteration loop if idle.
  void kick();

  std::int32_t index() const { return index_; }
  bool idle() const { return !iteration_scheduled_; }
  std::int32_t running_count() const {
    return static_cast<std::int32_t>(running_.size());
  }
  std::int64_t kv_used_tokens() const { return kv_used_; }
  std::int64_t kv_capacity_tokens() const { return kv_capacity_; }

  // Lifetime utilization counters.
  SimTime busy_time() const { return busy_time_; }
  std::int64_t decode_tokens_done() const { return decode_tokens_; }
  std::int64_t prefill_tokens_done() const { return prefill_tokens_; }
  std::uint64_t iterations() const { return iterations_; }
  std::uint64_t prefix_cache_hits() const { return cache_hits_; }

 private:
  struct Running {
    Request req;
    RequestOutcome outcome;
    std::int64_t prefill_remaining = 0;
    std::int64_t generated = 0;
    std::int64_t kv_tokens = 0;  // reserved KV footprint
  };

  void run_iteration();
  void admit();
  bool lookup_prefix_cache(std::uint64_t hash);

  std::int32_t index_;
  des::EventLoop* loop_;
  const CostModel* cost_;
  ReplicaConfig cfg_;
  PullFn pull_;
  std::vector<Running> running_;
  std::int64_t kv_used_ = 0;
  std::int64_t kv_capacity_ = 0;
  bool iteration_scheduled_ = false;

  // Prefix cache: most-recent prompt hashes (FIFO eviction).
  std::deque<std::uint64_t> cache_order_;
  std::unordered_set<std::uint64_t> cache_set_;

  SimTime busy_time_ = 0;
  std::int64_t decode_tokens_ = 0;
  std::int64_t prefill_tokens_ = 0;
  std::uint64_t iterations_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace aimetro::llm
