// Roofline cost model for one continuous-batching iteration.
//
// The simulator needs only the two properties that drive the paper's
// results: (a) decode is memory-bandwidth-bound, so iteration latency is
// nearly flat in batch size until a compute knee — which is why larger
// batches (more parallelism) raise throughput; (b) prefill is
// compute-bound and proportional to prompt tokens. Tensor parallelism
// divides both weight traffic and compute across GPUs at sub-linear
// efficiency; MoE models touch only the routed experts' weights, so light
// batches read far less than the resident footprint.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "llm/specs.h"

namespace aimetro::llm {

struct CostModelConfig {
  double flops_efficiency = 0.45;   // achieved fraction of peak TFLOPS
  double bw_efficiency = 0.80;      // achieved fraction of peak bandwidth
  double tp_comm_alpha = 0.15;      // TP speedup = tp / (1 + alpha*(tp-1))
  double activation_reserve_gb = 2.0;  // HBM set aside per GPU for activations
  double iteration_overhead_us = 300.0;  // scheduler + kernel launch
};

class CostModel {
 public:
  CostModel(ModelSpec model, GpuSpec gpu, std::int32_t tensor_parallel,
            CostModelConfig cfg = {});

  const ModelSpec& model() const { return model_; }
  const GpuSpec& gpu() const { return gpu_; }
  std::int32_t tensor_parallel() const { return tp_; }

  /// Duration of one iteration that decodes one token for `decode_batch`
  /// requests (total resident context `kv_resident_tokens`) and prefills
  /// `prefill_tokens` prompt tokens, in microseconds.
  SimTime iteration_time(std::int32_t decode_batch, std::int64_t prefill_tokens,
                         std::int64_t kv_resident_tokens) const;

  /// Max tokens of KV cache the replica can hold.
  std::int64_t kv_capacity_tokens() const;

  /// Bytes of weights actually read per iteration given the token batch
  /// (MoE models read only routed experts; dense models read everything).
  double weights_read_bytes(std::int32_t token_batch) const;

 private:
  ModelSpec model_;
  GpuSpec gpu_;
  std::int32_t tp_;
  CostModelConfig cfg_;
  double tp_speedup_;  // effective parallel speedup across the TP group
};

}  // namespace aimetro::llm
