#include "llm/cost_model_client.h"

#include <algorithm>
#include <iterator>

#include "common/check.h"

namespace aimetro::llm {

CostModelLlmClient::CostModelLlmClient(CostModel cost,
                                       const runtime::SimClock* clock,
                                       CostModelClientConfig cfg)
    : cost_(std::move(cost)), clock_(clock), cfg_(cfg) {
  AIM_CHECK(clock_ != nullptr);
  AIM_CHECK(cfg_.data_parallel >= 1);
  AIM_CHECK(cfg_.max_running_requests >= 1);
  AIM_CHECK(cfg_.max_prefill_tokens_per_iter >= 1);
  replicas_.resize(static_cast<std::size_t>(cfg_.data_parallel));
}

SimTime CostModelLlmClient::virtual_latency(
    std::int64_t prompt_tokens, std::int64_t output_tokens,
    std::int32_t decode_batch, std::int64_t kv_resident_tokens) const {
  SimTime t = 0;
  std::int64_t remaining = prompt_tokens;
  while (remaining > 0) {
    const std::int64_t chunk =
        std::min(remaining, cfg_.max_prefill_tokens_per_iter);
    t += cost_.iteration_time(0, chunk, 0);
    remaining -= chunk;
  }
  // Continuous batching decodes one token per running request per
  // iteration, so a request's decode time is output_tokens iterations at
  // the batch it runs in — nearly flat in batch size (memory-bound),
  // which is exactly what makes parallelism pay.
  t += output_tokens * cost_.iteration_time(decode_batch, 0,
                                            kv_resident_tokens);
  return t;
}

CompletionResult CostModelLlmClient::complete(
    const CompletionRequest& request) {
  const std::int64_t prompt_tokens = request.prompt_tokens > 0
                                         ? request.prompt_tokens
                                         : estimate_tokens(request.prompt);
  const std::int64_t output_tokens =
      std::max<std::int64_t>(1, request.max_tokens);
  const std::int64_t kv_footprint = prompt_tokens + output_tokens;

  SimTime finish = 0;
  std::size_t replica_idx = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const SimTime arrival = clock_->now();
    // Least-loaded routing, lowest index on ties (Cluster::route).
    replica_idx = 0;
    for (std::size_t i = 1; i < replicas_.size(); ++i) {
      if (replicas_[i].running < replicas_[replica_idx].running) {
        replica_idx = i;
      }
    }
    ReplicaState& r = replicas_[replica_idx];
    // At capacity the call queues (in virtual time) until in-flight work
    // drops below the cap: with `running` calls ahead of it, it starts
    // once running - cap + 1 of their finishes have passed — each
    // overflow call waits for its own slot, not just the earliest one.
    // No preemption, matching the paper.
    SimTime start = arrival;
    if (r.running >= cfg_.max_running_requests) {
      auto slot = r.finishes.begin();
      std::advance(slot, r.running - cfg_.max_running_requests);
      start = std::max(start, *slot);
    }
    const std::int32_t decode_batch =
        std::min(r.running + 1, cfg_.max_running_requests);
    const SimTime service = virtual_latency(
        prompt_tokens, output_tokens, decode_batch, r.kv_tokens + kv_footprint);
    finish = start + service;
    r.running += 1;
    r.kv_tokens += kv_footprint;
    r.finishes.insert(finish);
    peak_batch_ = std::max(peak_batch_, decode_batch);
  }

  clock_->sleep_until(finish);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ReplicaState& r = replicas_[replica_idx];
    r.running -= 1;
    r.kv_tokens -= kv_footprint;
    r.finishes.erase(r.finishes.find(finish));
    last_finish_ = std::max(last_finish_, finish);
    calls_ += 1;
  }

  CompletionResult result;
  result.prompt_tokens = static_cast<std::int32_t>(prompt_tokens);
  result.text = deterministic_completion_text(cfg_.seed, request.prompt);
  result.output_tokens = estimate_tokens(result.text);
  return result;
}

std::uint64_t CostModelLlmClient::calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_;
}

SimTime CostModelLlmClient::last_finish() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_finish_;
}

std::int32_t CostModelLlmClient::peak_batch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_batch_;
}

}  // namespace aimetro::llm
