#include "llm/cost_model_client.h"

#include <algorithm>

#include "common/check.h"

namespace aimetro::llm {

// ---- DecodeTimeline ----

DecodeTimeline::DecodeTimeline(const CostModel* cost) : cost_(cost) {
  AIM_CHECK(cost_ != nullptr);
}

std::uint64_t DecodeTimeline::admit(SimTime join, std::int64_t output_tokens,
                                    std::int64_t kv_footprint) {
  AIM_CHECK(output_tokens >= 1);
  AIM_CHECK(kv_footprint >= 0);
  const std::uint64_t id = next_id_++;
  active_.emplace(id, Req{join, output_tokens, kv_footprint});
  return id;
}

void DecodeTimeline::advance(SimTime t) {
  while (true) {
    // Compose the batch at the cursor: joined, still decoding.
    std::int32_t batch = 0;
    std::int64_t kv = 0;
    std::int64_t min_remaining = 0;
    SimTime next_join = kSimTimeMax;
    for (const auto& [id, r] : active_) {
      if (r.join <= cursor_) {
        ++batch;
        kv += r.kv;
        min_remaining =
            batch == 1 ? r.remaining : std::min(min_remaining, r.remaining);
      } else {
        next_join = std::min(next_join, r.join);
      }
    }
    if (batch == 0) {
      if (next_join > t) {
        // Idle (or idle until a join past t): iterations restart at the
        // next admission, exactly like Replica::kick.
        cursor_ = std::max(cursor_, t);
        return;
      }
      cursor_ = next_join;
      continue;
    }
    const SimTime dt = cost_->iteration_time(batch, 0, kv);
    AIM_CHECK(dt > 0);
    if (cursor_ + dt > t) return;  // partial iterations never complete
    // Run identical iterations until the next event: a batch member
    // finishing, a pending request's first boundary at or after its join
    // time, or t itself.
    std::int64_t k = std::min<std::int64_t>(min_remaining, (t - cursor_) / dt);
    if (next_join != kSimTimeMax) {
      k = std::min(k, (next_join - cursor_ + dt - 1) / dt);
    }
    AIM_CHECK(k >= 1);
    peak_batch_ = std::max(peak_batch_, batch);
    const SimTime joined_before = cursor_;
    cursor_ += k * dt;
    for (auto it = active_.begin(); it != active_.end();) {
      Req& r = it->second;
      if (r.join <= joined_before) {
        r.remaining -= k;
        if (r.remaining == 0) {
          finished_.emplace(it->first, cursor_);
          it = active_.erase(it);
          continue;
        }
      }
      ++it;
    }
  }
}

std::vector<std::pair<std::uint64_t, SimTime>>
DecodeTimeline::simulate_to_drain() const {
  // The same stepping rule as advance(), on a copy, unbounded in time:
  // one pass computes every active request's finish — never one
  // whole-timeline replay per request.
  struct Sim {
    std::uint64_t id;
    SimTime join;
    std::int64_t remaining;
    std::int64_t kv;
  };
  std::vector<Sim> reqs;
  reqs.reserve(active_.size());
  for (const auto& [rid, r] : active_) {
    reqs.push_back(Sim{rid, r.join, r.remaining, r.kv});
  }
  std::vector<std::pair<std::uint64_t, SimTime>> out;
  out.reserve(reqs.size());
  SimTime cur = cursor_;
  while (out.size() < reqs.size()) {
    std::int32_t batch = 0;
    std::int64_t kv = 0;
    std::int64_t min_remaining = 0;
    SimTime next_join = kSimTimeMax;
    for (const Sim& r : reqs) {
      if (r.remaining == 0) continue;
      if (r.join <= cur) {
        ++batch;
        kv += r.kv;
        min_remaining =
            batch == 1 ? r.remaining : std::min(min_remaining, r.remaining);
      } else {
        next_join = std::min(next_join, r.join);
      }
    }
    if (batch == 0) {
      AIM_CHECK(next_join != kSimTimeMax);  // someone is still decoding
      cur = next_join;
      continue;
    }
    const SimTime dt = cost_->iteration_time(batch, 0, kv);
    AIM_CHECK(dt > 0);
    std::int64_t k = min_remaining;
    if (next_join != kSimTimeMax) {
      k = std::min(k, (next_join - cur + dt - 1) / dt);
    }
    AIM_CHECK(k >= 1);
    const SimTime joined_before = cur;
    cur += k * dt;
    for (Sim& r : reqs) {
      if (r.remaining > 0 && r.join <= joined_before) {
        r.remaining -= k;
        if (r.remaining == 0) out.emplace_back(r.id, cur);
      }
    }
  }
  return out;
}

SimTime DecodeTimeline::predict_finish(std::uint64_t id) const {
  if (const auto f = finished_.find(id); f != finished_.end()) {
    return f->second;
  }
  AIM_CHECK_MSG(active_.count(id) != 0, "unknown timeline request");
  for (const auto& [rid, finish] : simulate_to_drain()) {
    if (rid == id) return finish;
  }
  AIM_CHECK_MSG(false, "simulate_to_drain lost a request");
  return 0;
}

std::vector<SimTime> DecodeTimeline::predicted_finishes() const {
  std::vector<SimTime> out;
  out.reserve(finished_.size() + active_.size());
  for (const auto& [id, t] : finished_) out.push_back(t);
  for (const auto& [id, t] : simulate_to_drain()) out.push_back(t);
  return out;
}

bool DecodeTimeline::finished(std::uint64_t id) const {
  return finished_.count(id) != 0;
}

SimTime DecodeTimeline::take_finish(std::uint64_t id) {
  const auto it = finished_.find(id);
  AIM_CHECK_MSG(it != finished_.end(), "take_finish on an unfinished request");
  const SimTime t = it->second;
  finished_.erase(it);
  return t;
}

// ---- CostModelLlmClient ----

CostModelLlmClient::CostModelLlmClient(CostModel cost,
                                       const runtime::SimClock* clock,
                                       CostModelClientConfig cfg)
    : cost_(std::move(cost)), clock_(clock), cfg_(cfg) {
  AIM_CHECK(clock_ != nullptr);
  AIM_CHECK(cfg_.data_parallel >= 1);
  AIM_CHECK(cfg_.max_running_requests >= 1);
  AIM_CHECK(cfg_.max_prefill_tokens_per_iter >= 1);
  replicas_.reserve(static_cast<std::size_t>(cfg_.data_parallel));
  for (std::int32_t i = 0; i < cfg_.data_parallel; ++i) {
    replicas_.push_back(std::make_unique<ReplicaState>(&cost_));
  }
  inflight_.assign(replicas_.size(), 0);
}

SimTime CostModelLlmClient::prefill_time(std::int64_t prompt_tokens) const {
  SimTime t = 0;
  std::int64_t remaining = prompt_tokens;
  while (remaining > 0) {
    const std::int64_t chunk =
        std::min(remaining, cfg_.max_prefill_tokens_per_iter);
    t += cost_.iteration_time(0, chunk, 0);
    remaining -= chunk;
  }
  return t;
}

SimTime CostModelLlmClient::virtual_latency(
    std::int64_t prompt_tokens, std::int64_t output_tokens,
    std::int32_t decode_batch, std::int64_t kv_resident_tokens) const {
  // Continuous batching decodes one token per running request per
  // iteration, so a request's decode time is output_tokens iterations at
  // the batch it runs in — nearly flat in batch size (memory-bound),
  // which is exactly what makes parallelism pay.
  return prefill_time(prompt_tokens) +
         output_tokens * cost_.iteration_time(decode_batch, 0,
                                              kv_resident_tokens);
}

CompletionResult CostModelLlmClient::complete(
    const CompletionRequest& request) {
  const std::int64_t prompt_tokens = request.prompt_tokens > 0
                                         ? request.prompt_tokens
                                         : estimate_tokens(request.prompt);
  const std::int64_t output_tokens =
      std::max<std::int64_t>(1, request.max_tokens);
  const std::int64_t kv_footprint = prompt_tokens + output_tokens;
  const SimTime prefill = prefill_time(prompt_tokens);

  std::size_t replica_idx = 0;
  std::uint64_t id = 0;
  {
    // Least-loaded routing, lowest index on ties (Cluster::route).
    // Serialized by route_mutex_ so the invariant "pick a busier replica
    // only when every replica is at least as busy" is exact, as it was
    // under the old global lock.
    common::MutexLock route_lock(route_mutex_);
    for (std::size_t i = 1; i < inflight_.size(); ++i) {
      if (inflight_[i] < inflight_[replica_idx]) replica_idx = i;
    }
    ReplicaState& r = *replicas_[replica_idx];
    common::MutexLock lock(r.mutex);
    const SimTime arrival = clock_->now();
    r.timeline.advance(arrival);
    // At capacity the call queues (in virtual time) until in-flight work
    // drops below the cap: with `inflight` calls ahead of it, it starts
    // once inflight - cap + 1 of their finishes have passed — each
    // overflow call waits for its own slot, not just the earliest one.
    // No preemption, matching the paper. Slots come from *predicted*
    // finishes now that batches are re-priced every iteration.
    SimTime start = arrival;
    const std::int32_t inflight = inflight_[replica_idx];
    if (inflight >= cfg_.max_running_requests) {
      std::vector<SimTime> finishes = r.timeline.predicted_finishes();
      const auto slot =
          static_cast<std::size_t>(inflight - cfg_.max_running_requests);
      AIM_CHECK(slot < finishes.size());
      std::nth_element(finishes.begin(), finishes.begin() + slot,
                       finishes.end());
      start = std::max(start, finishes[slot]);
    }
    // Prefill runs as the request's own chunked iterations; its decode
    // joins the replica's shared batch afterwards.
    id = r.timeline.admit(start + prefill, output_tokens, kv_footprint);
    inflight_[replica_idx] += 1;
  }

  // Block until the decode timeline completes the call: sleep to the
  // predicted finish, fold completed iterations in, and repeat — an
  // arrival during the sleep joins the batch and pushes the prediction
  // later, which is precisely the iteration-accurate behaviour. The
  // per-wake replays hold only this replica's mutex.
  ReplicaState& r = *replicas_[replica_idx];
  SimTime finish = 0;
  while (true) {
    SimTime target = 0;
    bool done = false;
    {
      common::MutexLock lock(r.mutex);
      r.timeline.advance(clock_->now());
      if (r.timeline.finished(id)) {
        done = true;
      } else {
        target = r.timeline.predict_finish(id);
      }
    }
    if (done) {
      // Reap under both locks so admission's slot math never sees the
      // timeline entry gone while the inflight count still includes it.
      // Acquired route -> replica explicitly: std::scoped_lock's
      // deadlock-avoidance may lock in either order, which the lock-order
      // validator (and a reader tracing the discipline) cannot accept.
      common::MutexLock route_lock(route_mutex_);
      common::MutexLock lock(r.mutex);
      finish = r.timeline.take_finish(id);
      inflight_[replica_idx] -= 1;
      break;
    }
    clock_->sleep_until(target);
  }
  {
    common::MutexLock lock(stats_mutex_);
    last_finish_ = std::max(last_finish_, finish);
    calls_ += 1;
  }

  CompletionResult result;
  result.prompt_tokens = static_cast<std::int32_t>(prompt_tokens);
  result.text = deterministic_completion_text(cfg_.seed, request.prompt);
  result.output_tokens = estimate_tokens(result.text);
  return result;
}

std::uint64_t CostModelLlmClient::calls() const {
  common::MutexLock lock(stats_mutex_);
  return calls_;
}

SimTime CostModelLlmClient::last_finish() const {
  common::MutexLock lock(stats_mutex_);
  return last_finish_;
}

std::int32_t CostModelLlmClient::peak_batch() const {
  std::int32_t peak = 0;
  for (const auto& r : replicas_) {
    common::MutexLock lock(r->mutex);
    peak = std::max(peak, r->timeline.peak_batch());
  }
  return peak;
}

}  // namespace aimetro::llm
