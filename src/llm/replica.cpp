#include "llm/replica.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace aimetro::llm {

Replica::Replica(std::int32_t index, des::EventLoop* loop,
                 const CostModel* cost, ReplicaConfig cfg, PullFn pull)
    : index_(index),
      loop_(loop),
      cost_(cost),
      cfg_(cfg),
      pull_(std::move(pull)) {
  AIM_CHECK(loop_ != nullptr && cost_ != nullptr);
  AIM_CHECK(cfg_.max_running_requests > 0);
  AIM_CHECK(cfg_.max_prefill_tokens_per_iter > 0);
  kv_capacity_ = cost_->kv_capacity_tokens();
}

void Replica::kick() {
  if (iteration_scheduled_) return;
  iteration_scheduled_ = true;
  loop_->schedule_after(0, [this] { run_iteration(); });
}

bool Replica::lookup_prefix_cache(std::uint64_t hash) {
  if (!cfg_.prefix_cache) return false;
  const bool hit = cache_set_.count(hash) > 0;
  if (!hit) {
    cache_set_.insert(hash);
    cache_order_.push_back(hash);
    if (cache_order_.size() > cfg_.prefix_cache_capacity) {
      cache_set_.erase(cache_order_.front());
      cache_order_.pop_front();
    }
  }
  return hit;
}

void Replica::admit() {
  while (running_.size() <
         static_cast<std::size_t>(cfg_.max_running_requests)) {
    const std::int64_t headroom = kv_capacity_ - kv_used_;
    std::optional<Request> req = pull_(headroom);
    if (!req) break;
    Running r;
    r.outcome.id = req->id;
    r.outcome.submit_time = req->submit_time;
    r.outcome.admit_time = loop_->now();
    r.outcome.replica = index_;
    r.kv_tokens = req->prompt_tokens + req->output_tokens;
    AIM_CHECK_MSG(r.kv_tokens <= kv_capacity_,
                  "request larger than replica KV capacity");
    r.prefill_remaining = req->prompt_tokens;
    if (lookup_prefix_cache(req->prompt_hash)) {
      r.outcome.prefix_cache_hit = true;
      ++cache_hits_;
      r.prefill_remaining = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 static_cast<double>(req->prompt_tokens) *
                 (1.0 - cfg_.prefix_cache_hit_frac)));
    }
    r.req = std::move(*req);
    kv_used_ += r.kv_tokens;
    running_.push_back(std::move(r));
  }
}

void Replica::run_iteration() {
  admit();
  if (running_.empty()) {
    iteration_scheduled_ = false;
    return;
  }

  // Compose this iteration: one decode token per fully-prefilled request,
  // plus a bounded chunk of prefill work (FIFO over admission order).
  // Membership is captured by request id: requests finishing prefill in
  // this iteration begin decoding only in the next one.
  std::vector<RequestId> decode_ids;
  std::int64_t kv_resident = 0;
  for (const Running& r : running_) {
    if (r.prefill_remaining == 0) {
      decode_ids.push_back(r.req.id);
      kv_resident += r.req.prompt_tokens + r.generated;
    }
  }
  std::int64_t prefill_budget = cfg_.max_prefill_tokens_per_iter;
  std::unordered_map<RequestId, std::int64_t> prefill_chunks;
  std::int64_t prefill_total = 0;
  for (const Running& r : running_) {
    if (prefill_budget <= 0) break;
    if (r.prefill_remaining > 0) {
      const std::int64_t chunk = std::min(r.prefill_remaining, prefill_budget);
      prefill_chunks.emplace(r.req.id, chunk);
      prefill_budget -= chunk;
      prefill_total += chunk;
    }
  }

  const SimTime duration = cost_->iteration_time(
      static_cast<std::int32_t>(decode_ids.size()), prefill_total, kv_resident);
  AIM_CHECK(duration > 0);
  busy_time_ += duration;
  ++iterations_;

  loop_->schedule_after(
      duration, [this, decode_ids = std::move(decode_ids),
                 prefill_chunks = std::move(prefill_chunks)] {
        std::unordered_set<RequestId> decoding(decode_ids.begin(),
                                               decode_ids.end());
        std::vector<Running> finished;
        for (auto it = running_.begin(); it != running_.end();) {
          Running& r = *it;
          if (auto pit = prefill_chunks.find(r.req.id);
              pit != prefill_chunks.end()) {
            r.prefill_remaining -= pit->second;
            prefill_tokens_ += pit->second;
            AIM_CHECK(r.prefill_remaining >= 0);
          }
          if (decoding.count(r.req.id)) {
            ++r.generated;
            ++decode_tokens_;
            if (r.generated >= r.req.output_tokens) {
              kv_used_ -= r.kv_tokens;
              finished.push_back(std::move(r));
              it = running_.erase(it);
              continue;
            }
          }
          ++it;
        }
        // Fire completions after state is consistent; callbacks may submit
        // follow-up requests (agent call chains) and re-enter kick().
        for (Running& r : finished) {
          r.outcome.finish_time = loop_->now();
          if (r.req.on_complete) r.req.on_complete(r.outcome);
        }
        run_iteration();
      });
}

}  // namespace aimetro::llm
