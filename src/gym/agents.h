// Reference Agent implementations used by tests and examples.
#pragma once

#include <string>

#include "gym/env.h"

namespace aimetro::gym {

/// A deterministic LLM-driven wanderer: asks the LLM what to do given a
/// textual rendering of its observation, hashes the response into a
/// movement choice, greets nearby agents with events, and claims adjacent
/// objects. Behaviour depends on what it perceives — including other
/// agents and their events — so any temporal-causality violation in the
/// scheduler changes the final world hash.
class WandererAgent : public Agent {
 public:
  explicit WandererAgent(std::uint64_t personality_seed)
      : personality_(personality_seed) {}

  world::StepIntent proceed(const Observation& obs,
                            llm::LlmClient& llm) override;

  std::uint64_t greetings_sent() const { return greetings_; }

 private:
  std::uint64_t personality_;
  std::uint64_t greetings_ = 0;
};

/// An agent that walks a fixed patrol loop between two corners and never
/// calls the LLM — handy for pinning down scheduler behaviour in tests.
class PatrolAgent : public Agent {
 public:
  PatrolAgent(Tile a, Tile b) : a_(a), b_(b) {}
  world::StepIntent proceed(const Observation& obs,
                            llm::LlmClient& llm) override;

 private:
  Tile a_, b_;
  bool toward_b_ = true;
};

/// Renders an observation into a prompt string (stable across runs).
std::string observation_prompt(const Observation& obs);

}  // namespace aimetro::gym
