#include "gym/env.h"

#include <numeric>

#include "common/check.h"

namespace aimetro::gym {

Env::Env(const world::GridMap* map, std::vector<Tile> starts,
         std::vector<std::unique_ptr<Agent>> agents, llm::LlmClient* llm,
         EnvConfig config)
    : map_(map),
      world_(map, std::move(starts)),
      agents_(std::move(agents)),
      llm_(llm),
      config_(config),
      chain_pool_(config.pool_workers > 0
                      ? config.pool_workers
                      : runtime::derive_pool_workers(config.n_workers)) {
  AIM_CHECK(map_ != nullptr && llm_ != nullptr);
  AIM_CHECK(world_.agent_count() == agents_.size());
  AIM_CHECK(!agents_.empty());
}

Observation Env::observe(AgentId id, Step step,
                         const world::WorldState& world) const {
  Observation obs;
  obs.self = id;
  obs.step = step;
  obs.position = world.tile_of(id);
  obs.map = map_;
  const Pos center = obs.position.center();
  for (AgentId other : world.agents_within(center, config_.params.radius_p)) {
    if (other == id) continue;
    obs.nearby_agents.emplace_back(other, world.tile_of(other));
  }
  if (step > 0) {
    obs.recent_events =
        world.events_near(center, config_.params.radius_p, step - 1, step - 1);
  }
  return obs;
}

std::vector<world::StepIntent> Env::compute_intents(
    const core::AgentCluster& cluster, const world::WorldState& world) {
  // Snapshot observations under the shared world lock; the heavy agent
  // processing (LLM calls) then runs lock-free.
  std::vector<Observation> observations;
  observations.reserve(cluster.members.size());
  {
    common::ReaderLock lock(world.mutex());
    for (AgentId m : cluster.members) {
      observations.push_back(observe(m, cluster.step, world));
    }
  }
  std::vector<world::StepIntent> intents(cluster.members.size());
  if (cluster.members.size() == 1) {
    intents[0] = agents_[static_cast<std::size_t>(cluster.members[0])]->proceed(
        observations[0], *llm_);
    intents[0].agent = cluster.members[0];
    return intents;
  }
  // Coupled agents run concurrently as tasks on the persistent member
  // pool (§3.6 runs agents within a worker concurrently); the calling
  // worker claims unstarted chains inline, so a saturated pool degrades
  // to inline execution rather than stalling the cluster. Each task
  // writes a distinct element of `intents`.
  std::vector<runtime::TaskPool::Task> tasks;
  tasks.reserve(cluster.members.size());
  for (std::size_t i = 0; i < cluster.members.size(); ++i) {
    tasks.push_back([this, &observations, &cluster, &intents, i] {
      world::StepIntent intent =
          agents_[static_cast<std::size_t>(cluster.members[i])]->proceed(
              observations[i], *llm_);
      intent.agent = cluster.members[i];
      intents[i] = intent;
    });
  }
  chain_pool_.submit_and_wait(std::move(tasks), /*priority=*/cluster.step);
  return intents;
}

runtime::EngineStats Env::run() {
  if (config_.out_of_order) {
    runtime::EngineConfig ec;
    ec.params = config_.params;
    ec.target_step = config_.target_step;
    ec.n_workers = config_.n_workers;
    ec.scan_mode = config_.scan_mode;
    ec.kv_instrumentation = config_.kv_instrumentation;
    runtime::Engine engine(
        &world_, ec,
        [this](const core::AgentCluster& cluster,
               const world::WorldState& world) {
          return compute_intents(cluster, world);
        });
    const runtime::EngineStats stats = engine.run();
    scoreboard_stats_ = engine.scoreboard().stats();
    mean_blockers_ = engine.scoreboard().mean_blockers();
    return stats;
  }
  // Lock-step baseline (Algorithm 1): one all-agents "cluster" per step.
  runtime::EngineStats stats;
  core::AgentCluster all;
  all.members.resize(agents_.size());
  std::iota(all.members.begin(), all.members.end(), 0);
  for (Step s = 0; s < config_.target_step; ++s) {
    all.step = s;
    auto intents = compute_intents(all, world_);
    {
      common::WriterLock lock(world_.mutex());
      world_.resolve_conflict_and_commit(s, intents);
    }
    ++stats.clusters_executed;
    stats.agent_steps += agents_.size();
  }
  return stats;
}

}  // namespace aimetro::gym
