// Developer-facing environment API, "similar to OpenAI Gym" (§1).
//
// Developers implement Agent::proceed — perceive the observation, call the
// LLM through the blocking client, return a StepIntent — and Env runs the
// simulation either lock-step (Algorithm 1) or out-of-order on the AI
// Metropolis engine (Algorithm 3). The observation is restricted to the
// agent's perception radius, which is precisely the contract that makes
// out-of-order execution outcome-equivalent to lock-step execution: both
// modes must produce identical world state for deterministic agents.
#pragma once

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/dependency_rules.h"
#include "llm/client.h"
#include "runtime/engine.h"
#include "runtime/task_pool.h"
#include "world/grid_map.h"
#include "world/world_state.h"

namespace aimetro::gym {

/// What an agent perceives at the start of its step: everything within
/// radius_p, plus events committed nearby during the previous step.
struct Observation {
  AgentId self = -1;
  Step step = 0;
  Tile position;
  const world::GridMap* map = nullptr;
  /// Same-step agents within the perception radius (sorted by id). The
  /// dependency rules guarantee no differently-stepped agent is ever
  /// visible here.
  std::vector<std::pair<AgentId, Tile>> nearby_agents;
  /// Events within the perception radius committed at step-1, in a
  /// schedule-independent order.
  std::vector<world::WorldEvent> recent_events;
};

class Agent {
 public:
  virtual ~Agent() = default;
  /// Decide this step's intent. May block on `llm`. Must be a
  /// deterministic function of the observation (plus internal state that
  /// itself evolves only from observations) for reproducible simulations.
  virtual world::StepIntent proceed(const Observation& obs,
                                    llm::LlmClient& llm) = 0;
};

struct EnvConfig {
  core::DependencyParams params;
  Step target_step = 100;
  std::int32_t n_workers = 4;
  /// Worker threads in the member-chain pool that runs coupled agents'
  /// LLM chains concurrently (both execution modes). <= 0 derives
  /// runtime::derive_pool_workers(n_workers).
  std::int32_t pool_workers = 0;
  /// true: AI Metropolis OOO engine; false: lock-step baseline.
  bool out_of_order = true;
  /// Scoreboard neighbor-scan implementation for the OOO engine.
  core::ScanMode scan_mode = core::ScanMode::kIndexed;
  bool kv_instrumentation = false;
};

class Env {
 public:
  Env(const world::GridMap* map, std::vector<Tile> starts,
      std::vector<std::unique_ptr<Agent>> agents, llm::LlmClient* llm,
      EnvConfig config);

  /// Run to target_step. Blocking.
  runtime::EngineStats run();

  const world::WorldState& world() const { return world_; }
  std::uint64_t state_hash() const {
    common::ReaderLock lock(world_.mutex());
    return world_.state_hash();
  }
  std::size_t agent_count() const { return agents_.size(); }
  /// The persistent pool coupled members' LLM chains run on (its stats
  /// feed the scenario report).
  const runtime::TaskPool& chain_pool() const { return chain_pool_; }
  /// Dependency statistics of the last out-of-order run() — cluster and
  /// edge counts, plus the paper's sparsity measure (mean blockers per
  /// check, §2.2). Zero-valued after lock-step runs, which build no
  /// scoreboard.
  const core::ScoreboardStats& scoreboard_stats() const {
    return scoreboard_stats_;
  }
  double mean_blockers() const { return mean_blockers_; }

 private:
  std::vector<world::StepIntent> compute_intents(
      const core::AgentCluster& cluster, const world::WorldState& world);
  Observation observe(AgentId id, Step step,
                      const world::WorldState& world) const
      REQUIRES_SHARED(world.mutex());

  const world::GridMap* map_;
  world::WorldState world_;
  std::vector<std::unique_ptr<Agent>> agents_;
  llm::LlmClient* llm_;
  EnvConfig config_;
  /// Spawned once at construction; member chains are pool tasks, so the
  /// per-step cost of running a coupled cluster is a queue push rather
  /// than a thread (or std::async) spawn inside the timed region.
  runtime::TaskPool chain_pool_;
  core::ScoreboardStats scoreboard_stats_;
  double mean_blockers_ = 0.0;
};

}  // namespace aimetro::gym
