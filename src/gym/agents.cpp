#include "gym/agents.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace aimetro::gym {

std::string observation_prompt(const Observation& obs) {
  std::string prompt = strformat(
      "You are agent %d at (%d,%d) on step %d. Nearby:", obs.self,
      obs.position.x, obs.position.y, obs.step);
  for (const auto& [id, tile] : obs.nearby_agents) {
    prompt += strformat(" agent%d@(%d,%d)", id, tile.x, tile.y);
  }
  for (const auto& ev : obs.recent_events) {
    prompt += strformat(" event[%d:%s]", ev.source, ev.text.c_str());
  }
  prompt += " What do you do next?";
  return prompt;
}

world::StepIntent WandererAgent::proceed(const Observation& obs,
                                         llm::LlmClient& llm) {
  llm::CompletionRequest request;
  request.prompt = observation_prompt(obs);
  request.priority = obs.step;
  const llm::CompletionResult result = llm.complete(request);

  // Hash the "decision" text into a concrete action.
  std::uint64_t h = personality_;
  for (unsigned char c : result.text) h = splitmix64(h ^ c);

  world::StepIntent intent;
  intent.agent = obs.self;
  auto neighbors = obs.map->neighbors(obs.position);
  std::sort(neighbors.begin(), neighbors.end());
  if (!neighbors.empty() && (h % 4) != 0) {  // 75%: move
    intent.move_to = neighbors[h % neighbors.size()];
  }
  if (!obs.nearby_agents.empty() && (h >> 8) % 3 == 0) {  // greet sometimes
    intent.emit_event = strformat("greeting from %d to %d", obs.self,
                                  obs.nearby_agents.front().first);
    ++greetings_;
  }
  // Claim an adjacent object occasionally.
  if ((h >> 16) % 5 == 0) {
    for (const auto& object : obs.map->objects()) {
      if (chebyshev(object.tile.center(), obs.position.center()) <= 1.5) {
        intent.claim_object = object.name;
        break;
      }
    }
  }
  return intent;
}

world::StepIntent PatrolAgent::proceed(const Observation& obs,
                                       llm::LlmClient& llm) {
  (void)llm;
  const Tile target = toward_b_ ? b_ : a_;
  if (obs.position == target) {
    toward_b_ = !toward_b_;
  }
  const Tile goal = toward_b_ ? b_ : a_;
  world::StepIntent intent;
  intent.agent = obs.self;
  Tile next = obs.position;
  if (goal.x > next.x) {
    next.x += 1;
  } else if (goal.x < next.x) {
    next.x -= 1;
  } else if (goal.y > next.y) {
    next.y += 1;
  } else if (goal.y < next.y) {
    next.y -= 1;
  }
  if (!(next == obs.position) && obs.map->walkable(next)) {
    intent.move_to = next;
  }
  return intent;
}

}  // namespace aimetro::gym
