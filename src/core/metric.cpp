#include "core/metric.h"

#include <queue>

#include "common/check.h"

namespace aimetro::core {

GraphMetric::GraphMetric(
    const std::vector<std::vector<std::int32_t>>& adjacency)
    : n_(static_cast<std::int32_t>(adjacency.size())) {
  AIM_CHECK(n_ > 0);
  dist_.assign(static_cast<std::size_t>(n_),
               std::vector<double>(static_cast<std::size_t>(n_),
                                   kDisconnected));
  // All-pairs BFS; graphs here are small (hundreds of nodes).
  for (std::int32_t src = 0; src < n_; ++src) {
    auto& row = dist_[static_cast<std::size_t>(src)];
    row[static_cast<std::size_t>(src)] = 0.0;
    std::queue<std::int32_t> q;
    q.push(src);
    while (!q.empty()) {
      const std::int32_t u = q.front();
      q.pop();
      for (std::int32_t v : adjacency[static_cast<std::size_t>(u)]) {
        AIM_CHECK(v >= 0 && v < n_);
        if (row[static_cast<std::size_t>(v)] >= kDisconnected) {
          row[static_cast<std::size_t>(v)] =
              row[static_cast<std::size_t>(u)] + 1.0;
          q.push(v);
        }
      }
    }
  }
}

double GraphMetric::distance(const Pos& a, const Pos& b) const {
  const auto ia = static_cast<std::int32_t>(a.x);
  const auto ib = static_cast<std::int32_t>(b.x);
  AIM_CHECK(ia >= 0 && ia < n_ && ib >= 0 && ib < n_);
  return dist_[static_cast<std::size_t>(ia)][static_cast<std::size_t>(ib)];
}

std::shared_ptr<const Metric> make_euclidean() {
  static const auto instance = std::make_shared<EuclideanMetric>();
  return instance;
}

}  // namespace aimetro::core
