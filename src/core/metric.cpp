#include "core/metric.h"

#include <utility>

#include "common/check.h"

namespace aimetro::core {

GraphMetric::GraphMetric(std::vector<std::vector<std::int32_t>> adjacency)
    : n_(static_cast<std::int32_t>(adjacency.size())),
      adjacency_(std::move(adjacency)) {
  AIM_CHECK(n_ > 0);
  // A shortest path visits each node at most once, so any connected
  // distance fits in a Depth as long as the node count does.
  AIM_CHECK_MSG(static_cast<std::uint64_t>(n_) < kUnreached,
                "graph too large for BFS depth labels");
  for (const auto& neighbors : adjacency_) {
    for (std::int32_t v : neighbors) AIM_CHECK(v >= 0 && v < n_);
  }
}

GraphMetric::BfsRow& GraphMetric::row_for(std::int32_t src) const {
  auto it = rows_.find(src);
  if (it != rows_.end()) return it->second;
  if (rows_.size() >= max_cached_rows()) rows_.clear();
  BfsRow& row = rows_[src];
  row.dist.assign(static_cast<std::size_t>(n_), kUnreached);
  row.dist[static_cast<std::size_t>(src)] = 0;
  row.frontier.push_back(src);
  return row;
}

double GraphMetric::distance(const Pos& a, const Pos& b) const {
  const auto ia = static_cast<std::int32_t>(a.x);
  const auto ib = static_cast<std::int32_t>(b.x);
  AIM_CHECK(ia >= 0 && ia < n_ && ib >= 0 && ib < n_);
  if (ia == ib) return 0.0;
  common::MutexLock lock(cache_mutex_);
  BfsRow& row = row_for(ia);
  // Expand the row one BFS level at a time until the target is labeled or
  // the component is exhausted. Scoreboard candidates come from hop-ball
  // probes a few levels deep, so in steady state this loop body never runs.
  std::vector<std::int32_t> next;
  while (row.dist[static_cast<std::size_t>(ib)] == kUnreached &&
         !row.frontier.empty()) {
    next.clear();
    const Depth depth = row.depth_done + 1;
    for (std::int32_t u : row.frontier) {
      for (std::int32_t v : adjacency_[static_cast<std::size_t>(u)]) {
        if (row.dist[static_cast<std::size_t>(v)] == kUnreached) {
          row.dist[static_cast<std::size_t>(v)] = depth;
          next.push_back(v);
        }
      }
    }
    row.frontier.swap(next);
    row.depth_done = depth;
  }
  const Depth d = row.dist[static_cast<std::size_t>(ib)];
  return d == kUnreached ? kDisconnected : static_cast<double>(d);
}

std::shared_ptr<const Metric> make_euclidean() {
  static const auto instance = std::make_shared<EuclideanMetric>();
  return instance;
}

}  // namespace aimetro::core
