// The spatiotemporal dependency scoreboard (§3.3) plus geo-clustering
// (§3.4): the data structure at the heart of AI Metropolis.
//
// Each agent is a node carrying (step, position, status). Directed edges
// record "B currently blocks A"; idle agents at the same step within the
// coupling radius are merged into clusters (the minimal synchronized
// units). The engine drives it with exactly two operations:
//
//   pop_ready_clusters()  — controller: take every cluster whose members
//                           are all unblocked, marking them running;
//   commit(moves)         — worker: a dispatched cluster finished its step;
//                           members advance one step to their new positions,
//                           relationships are re-examined, and any agents
//                           this unblocks become available to the next
//                           pop_ready_clusters().
//
// Progress guarantee: agents at the globally smallest step can only be
// blocked by running same-step agents, so some cluster is always
// dispatchable until every agent reaches `target_step`.
//
// Internally the scoreboard keeps every live (non-done) agent in a
// neighbor index, so blocker recomputation and idle clustering are local
// probes rather than full scans: Chebyshev-bounded metrics use a
// world::SpatialIndex (box probes), graph metrics use a world::GraphIndex
// (hop-bounded BFS ball probes) — see "Dependency core" in
// docs/ARCHITECTURE.md for the index structures and the radius math. A
// brute-force full-scan reference path is retained for differential
// testing (ScanMode::kBruteForce); define AIMETRO_SCOREBOARD_NO_BRUTE to
// compile it out.
//
// Sharding (the boundary-lag protocol, docs/ARCHITECTURE.md "Sharded
// world"): with `shards > 1` the world is cut into equal-width x-strips
// (world::RegionPartition) and every per-position structure — spatial
// index, live-step counts, idle clusters, dirty sets, stats — lives in
// the strip that owns the position. Probes fan out over exactly the
// strips their box overlaps and re-sort by id, so every observable bit
// (edges, clusters, stats, dispatch order) is byte-identical to the
// single-shard board. Agents whose blocking-radius box straddles a strip
// border register in every overlapped strip's border set, and clusters
// whose members span strips are counted per strip; both feed
// local_commit_shard(), which tells a concurrent caller (the engine)
// whether a commit is provably confined to one strip — the precondition
// for taking a per-shard lock instead of the exclusive one. The
// scoreboard itself stays unsynchronized: callers serialize commits that
// local_commit_shard() maps to the same strip (or to no strip) exactly
// as they serialized whole-board commits before.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "core/dependency_rules.h"
#include "core/metric.h"
#include "world/graph_index.h"
#include "world/region_partition.h"
#include "world/spatial_index.h"

namespace aimetro::core {

/// A group of coupled agents at the same step, dispatched as one unit.
struct AgentCluster {
  Step step = 0;
  std::vector<AgentId> members;  // sorted
};

enum class AgentStatus : std::uint8_t { kIdle, kRunning, kDone };

/// How the scoreboard finds "relevant" agents when recomputing edges and
/// clusters.
///  - kIndexed: index probes bounded by the live lag spread (near-O(1)
///    per commit at the paper's sparsity). Metrics with the Chebyshev
///    lower bound probe spatial-index boxes; graph metrics (those
///    exposing an adjacency) probe hop-bounded GraphIndex balls. A metric
///    with neither property silently falls back to full scans — results
///    are identical in every case.
///  - kBruteForce: the historical O(n) full scan; the reference
///    implementation for differential tests and benchmarks. Compiled out
///    when AIMETRO_SCOREBOARD_NO_BRUTE is defined.
enum class ScanMode : std::uint8_t { kIndexed, kBruteForce };

/// Hard cap on the region partition (and the encoding of shard ids into
/// the low bits of cluster ids).
inline constexpr std::int32_t kMaxShards = 64;

struct ScoreboardStats {
  std::uint64_t clusters_dispatched = 0;
  std::uint64_t commits = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t max_concurrent_running = 0;
  double sum_cluster_sizes = 0.0;
  double mean_cluster_size() const {
    return clusters_dispatched
               ? sum_cluster_sizes / static_cast<double>(clusters_dispatched)
               : 0.0;
  }
};

class Scoreboard {
 public:
  /// Agents start idle at step 0 at `initial_positions`; the simulation
  /// finishes when every agent has committed `target_step` steps.
  /// `shards` in [1, kMaxShards] requests a region partition; it takes
  /// effect only on the spatial-index probe path (kIndexed with a
  /// Chebyshev-bounded metric) and silently collapses to 1 otherwise —
  /// observable behavior is identical either way. `partition` picks how
  /// the initial strip boundaries are placed (equal-width, or at
  /// population quantiles of the initial positions); it changes only
  /// which commits classify as interior, never any observable result.
  Scoreboard(DependencyParams params, std::shared_ptr<const Metric> metric,
             std::vector<Pos> initial_positions, Step target_step,
             ScanMode mode = ScanMode::kIndexed, std::int32_t shards = 1,
             world::PartitionKind partition = world::PartitionKind::kEqualWidth);

  // ---- Controller side ----
  /// All clusters that are ready right now (every member idle and
  /// unblocked). Members are marked running; the caller must eventually
  /// commit() each returned cluster. Ordered by (step, first member).
  std::vector<AgentCluster> pop_ready_clusters();
  /// The same, restricted to clusters homed in strip `shard`. Safe to
  /// call concurrently with pops/commits in other strips only while the
  /// strip has no cross-strip clusters (cross_cluster_count(shard) == 0,
  /// which local_commit_shard() verifies).
  std::vector<AgentCluster> pop_ready_clusters_in_shard(std::int32_t shard);

  // ---- Worker side ----
  /// Commit one dispatched cluster: each member's position after the step.
  /// Members advance to step+1 (or Done at target_step).
  ///
  /// `probe_floor` is a lower bound on min_step() used to bound the
  /// blocking-radius probes; -1 (the default) reads the exact live
  /// minimum. A concurrent caller passes its own monotonic floor so a
  /// strip-local commit never reads the other strips' live-step tables;
  /// a looser floor only widens the probe boxes (the exact predicates
  /// filter the extras), so results are identical for any valid floor.
  void commit(const std::vector<std::pair<AgentId, Pos>>& moves,
              Step probe_floor = -1);

  /// Boundary-lag classification for a concurrent caller: the single
  /// strip this commit is provably confined to, or -1 if it must be
  /// treated as cross-shard. Confined means: every member's old/new
  /// influence box (blocking_radius(target - probe_floor) plus the
  /// coupling radius) lies inside one strip s, every member's border
  /// registration is single-strip on s, and strip s currently has no
  /// cross-strip clusters. Only reads state owned by the committing
  /// cluster plus one atomic counter, so it is safe to call while other
  /// strips commit.
  std::int32_t local_commit_shard(
      const std::vector<std::pair<AgentId, Pos>>& moves,
      Step probe_floor) const;

  /// Re-slice every per-strip structure (live indexes, live-step counts,
  /// idle clusters, ready queues, border sets) onto `new_partition`,
  /// which must have the same strip count. Not safe to call concurrently
  /// with anything: a caller that shares the board holds it exclusively
  /// (the engine repartitions under its topology writer lock).
  /// Dispatched-but-uncommitted clusters are tolerated — their running
  /// members carry no cluster record and simply re-home with the rest of
  /// the live set. Per-strip stats rows stay attached to their strip
  /// index (the engine's lock/pool/stats arrays are positional). Pure
  /// scheduling state moves; agent steps/positions/edges are untouched,
  /// so every observable result — digests included — is identical by the
  /// superset-then-filter argument (see "Adaptive partitioning" in
  /// docs/ARCHITECTURE.md). No-op when the board collapsed to one strip.
  void repartition(const world::RegionPartition& new_partition);

  /// The active region partition (equal-width at construction unless
  /// kEqualPopulation was requested; later replaced by repartition()).
  const world::RegionPartition& partition() const { return partition_; }

  // ---- Introspection ----
  std::size_t agent_count() const { return agents_.size(); }
  Step target_step() const { return target_step_; }
  ScanMode scan_mode() const { return mode_; }
  /// Effective shard count (1 unless the spatial-index path is active).
  std::int32_t shards() const { return shards_; }
  /// Home strip of a position under the region partition.
  std::int32_t shard_of_pos(Pos pos) const { return partition_.shard_of(pos); }
  /// Live agents currently registered in strip `shard`'s border set
  /// (their blocking-radius box straddles a strip boundary).
  std::size_t border_count(std::int32_t shard) const;
  /// Idle clusters whose members span multiple strips, counted against
  /// every strip they touch.
  std::int32_t cross_cluster_count(std::int32_t shard) const;
  /// True when kIndexed probes are answered by the hop-bounded graph
  /// index (non-Chebyshev metric exposing a graph adjacency) rather than
  /// the spatial box index. False in brute mode either way.
  bool use_graph_index() const { return graph_live_index_ != nullptr; }
  bool all_done() const {
    return done_count_.load(std::memory_order_acquire) == agents_.size();
  }
  Step step_of(AgentId id) const { return agent(id).step; }
  Pos pos_of(AgentId id) const { return agent(id).pos; }
  AgentStatus status_of(AgentId id) const { return agent(id).status; }
  bool is_blocked(AgentId id) const { return !agent(id).blocked_by.empty(); }
  /// Current blockers of `id`, sorted.
  std::vector<AgentId> blockers_of(AgentId id) const;
  /// Members of the idle cluster containing `id` (empty if not idle).
  std::vector<AgentId> cluster_of(AgentId id) const;
  /// Smallest step any agent is still about to execute (target_step once
  /// everyone is done). A lazily-combined min over the per-strip
  /// incrementally-maintained minimums: O(shards).
  Step min_step() const;
  /// Stats rolled up across strips (sums, except max_concurrent_running
  /// which is a max of per-dispatch snapshots of the global counter).
  ScoreboardStats stats() const;
  /// Per-strip stats (commits/edges attributed to the strip that owns
  /// the touched position).
  const ScoreboardStats& shard_stats(std::int32_t shard) const;

  /// Mean number of blockers per blocked-check, a sparsity measure
  /// comparable to the paper's "each agent depends on only 1.85 agents".
  double mean_blockers() const;

  /// Throws CheckError if the Appendix A validity condition is violated
  /// for any agent pair, if internal edge/cluster bookkeeping is
  /// inconsistent, or if the spatial index / live-step / border-set
  /// bookkeeping has drifted from the agent table. O(n^2); meant for
  /// tests.
  void check_invariants() const;

  /// Graphviz dot rendering of the current graph (Figure 3 style).
  std::string to_dot() const;

 private:
  struct AgentNode {
    Step step = 0;
    Pos pos;
    AgentStatus status = AgentStatus::kIdle;
    std::set<AgentId> blocked_by;  // B in blocked_by => B blocks this agent
    std::set<AgentId> blocks;      // reverse edges
    std::int64_t cluster = -1;     // idle cluster id, -1 when not idle
    // Border registration: the strip span of the blocking-radius box at
    // the last position/step change. Multi-strip spans are mirrored into
    // the border sets of every strip they touch.
    std::int32_t border_lo = 0;
    std::int32_t border_hi = 0;
  };

  struct ClusterRec {
    Step step = 0;
    std::vector<AgentId> members;
    std::int32_t blocked_members = 0;  // members with nonempty blocked_by
    // Strip span of member positions; multi-strip spans are counted in
    // cross_clusters for every strip in the span.
    std::int32_t span_lo = 0;
    std::int32_t span_hi = 0;
  };

  /// Everything owned by one strip of the region partition. With
  /// shards() == 1 there is exactly one of these and the board behaves
  /// exactly like the historical unsharded implementation.
  struct ShardData {
    explicit ShardData(double cell_size) : live_index(cell_size) {}
    /// Live (non-done) agents homed in this strip, keyed by position —
    /// the probe structure for recompute_blockers / cluster_in.
    /// Maintained only when use_index().
    world::SpatialIndex live_index;
    /// Live agents per step; begin() is this strip's min. Maintained in
    /// every mode: min_step() and the radius bound read it.
    std::map<Step, std::int32_t> live_steps;
    std::map<std::int64_t, ClusterRec> clusters;
    /// Clusters touched since the last pop (candidates for readiness).
    std::set<std::int64_t> dirty_clusters;
    /// Idle agents bucketed by step (coupling candidates for the
    /// brute-force path; pop bookkeeping either way).
    std::map<Step, std::set<AgentId>> idle_by_step;
    /// Agents whose border registration includes this strip.
    std::set<AgentId> border_agents;
    /// Idle clusters spanning this strip plus at least one other. A
    /// relaxed atomic: readers (local_commit_shard) are ordered against
    /// writers by the caller's locking protocol, not by this counter.
    std::atomic<std::int32_t> cross_clusters{0};
    /// Reusable candidate buffer so steady-state single-strip probes
    /// allocate nothing.
    std::vector<AgentId> probe_buf;
    std::int64_t next_cluster_local = 0;
    ScoreboardStats stats;
    // mean_blockers bookkeeping
    std::uint64_t blocker_samples = 0;
    std::uint64_t blocker_total = 0;
  };

  AgentNode& agent(AgentId id);
  const AgentNode& agent(AgentId id) const;
  ShardData& shard(std::int32_t s) { return *shards_data_[
      static_cast<std::size_t>(s)]; }
  const ShardData& shard(std::int32_t s) const { return *shards_data_[
      static_cast<std::size_t>(s)]; }
  /// Strip that owns `cid`'s record (encoded in the low bits).
  static std::int32_t shard_of_cluster(std::int64_t cid) {
    return static_cast<std::int32_t>(cid & (kMaxShards - 1));
  }

  bool use_index() const { return mode_ == ScanMode::kIndexed && indexable_; }
  /// Every live agent whose metric distance from `center` could be <=
  /// radius (sorted by id; exact predicates applied by the caller).
  /// Fans out over the strips the box overlaps. Requires use_index() or
  /// use_graph_index().
  const std::vector<AgentId>& probe_into(const Pos& center, double radius);
  /// Smallest step among live (non-done) agents; target_step when all
  /// done. The tight bound for the blocking-radius box probe. Reads
  /// every strip — concurrent commits pass probe_floor instead.
  Step min_live_step() const;
  void live_step_advance(std::int32_t from_strip, std::int32_t to_strip,
                         Step from, Step to, bool now_done);
  /// Recompute `id`'s border registration from its current position and
  /// step, bounding the blocking radius with `floor` (no-op with one
  /// shard).
  void update_border_registration(AgentId id, Step floor);

  void add_edge(AgentId blocker, AgentId blocked);
  void remove_edge(AgentId blocker, AgentId blocked);
  /// Recompute blocked_by for `id` from scratch: a blocking_radius(max
  /// live lag) box probe in indexed mode (lag bounded below by `floor`),
  /// a full scan otherwise.
  void recompute_blockers(AgentId id, Step floor);
  /// Re-check the agents `id` currently blocks; drop stale edges.
  void refresh_outgoing(AgentId id);
  void on_blocked_count_change(AgentId id, bool now_blocked);
  /// Place a newly idle agent into the idle clustering (may merge several
  /// existing clusters).
  void cluster_in(AgentId id);
  std::int64_t new_cluster(Step step, std::int32_t strip);
  /// Member strip-span bookkeeping (keeps the cross_clusters counters
  /// in sync; no-ops with one shard).
  void span_counters_remove(const ClusterRec& rec);
  void span_counters_add(const ClusterRec& rec);
  void cluster_span_include(std::int64_t cid, std::int32_t strip);
  void pop_shard_ready_into(std::int32_t strip,
                            std::vector<AgentCluster>* ready);

  DependencyParams params_;
  std::shared_ptr<const Metric> metric_;
  Step target_step_;
  ScanMode mode_;
  bool indexable_ = false;  // metric admits box-superset probes
  std::int32_t shards_ = 1;
  world::RegionPartition partition_{1, 0.0, 0.0};
  std::vector<AgentNode> agents_;
  std::vector<std::unique_ptr<ShardData>> shards_data_;
  /// The graph-metric sibling of the spatial indexes: live agents
  /// bucketed by graph node, probed with hop-bounded BFS balls. Non-null
  /// exactly when mode is kIndexed and the metric exposes an adjacency
  /// (which forces shards() == 1).
  std::unique_ptr<world::GraphIndex> graph_live_index_;
  /// Merge buffers for probes that straddle strips. Only touched by
  /// cross-shard probes, which callers serialize exclusively.
  std::vector<AgentId> multi_probe_buf_;
  std::vector<AgentId> strip_tmp_buf_;
  std::atomic<std::size_t> done_count_{0};
  std::atomic<std::size_t> running_count_{0};
};

}  // namespace aimetro::core
