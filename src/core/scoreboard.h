// The spatiotemporal dependency scoreboard (§3.3) plus geo-clustering
// (§3.4): the data structure at the heart of AI Metropolis.
//
// Each agent is a node carrying (step, position, status). Directed edges
// record "B currently blocks A"; idle agents at the same step within the
// coupling radius are merged into clusters (the minimal synchronized
// units). The engine drives it with exactly two operations:
//
//   pop_ready_clusters()  — controller: take every cluster whose members
//                           are all unblocked, marking them running;
//   commit(moves)         — worker: a dispatched cluster finished its step;
//                           members advance one step to their new positions,
//                           relationships are re-examined, and any agents
//                           this unblocks become available to the next
//                           pop_ready_clusters().
//
// Progress guarantee: agents at the globally smallest step can only be
// blocked by running same-step agents, so some cluster is always
// dispatchable until every agent reaches `target_step`.
//
// Internally the scoreboard keeps every live (non-done) agent in a
// neighbor index, so blocker recomputation and idle clustering are local
// probes rather than full scans: Chebyshev-bounded metrics use a
// world::SpatialIndex (box probes), graph metrics use a world::GraphIndex
// (hop-bounded BFS ball probes) — see "Dependency core" in
// docs/ARCHITECTURE.md for the index structures and the radius math. A
// brute-force full-scan reference path is retained for differential
// testing (ScanMode::kBruteForce); define AIMETRO_SCOREBOARD_NO_BRUTE to
// compile it out.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "core/dependency_rules.h"
#include "core/metric.h"
#include "world/graph_index.h"
#include "world/spatial_index.h"

namespace aimetro::core {

/// A group of coupled agents at the same step, dispatched as one unit.
struct AgentCluster {
  Step step = 0;
  std::vector<AgentId> members;  // sorted
};

enum class AgentStatus : std::uint8_t { kIdle, kRunning, kDone };

/// How the scoreboard finds "relevant" agents when recomputing edges and
/// clusters.
///  - kIndexed: index probes bounded by the live lag spread (near-O(1)
///    per commit at the paper's sparsity). Metrics with the Chebyshev
///    lower bound probe spatial-index boxes; graph metrics (those
///    exposing an adjacency) probe hop-bounded GraphIndex balls. A metric
///    with neither property silently falls back to full scans — results
///    are identical in every case.
///  - kBruteForce: the historical O(n) full scan; the reference
///    implementation for differential tests and benchmarks. Compiled out
///    when AIMETRO_SCOREBOARD_NO_BRUTE is defined.
enum class ScanMode : std::uint8_t { kIndexed, kBruteForce };

struct ScoreboardStats {
  std::uint64_t clusters_dispatched = 0;
  std::uint64_t commits = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t max_concurrent_running = 0;
  double sum_cluster_sizes = 0.0;
  double mean_cluster_size() const {
    return clusters_dispatched
               ? sum_cluster_sizes / static_cast<double>(clusters_dispatched)
               : 0.0;
  }
};

class Scoreboard {
 public:
  /// Agents start idle at step 0 at `initial_positions`; the simulation
  /// finishes when every agent has committed `target_step` steps.
  Scoreboard(DependencyParams params, std::shared_ptr<const Metric> metric,
             std::vector<Pos> initial_positions, Step target_step,
             ScanMode mode = ScanMode::kIndexed);

  // ---- Controller side ----
  /// All clusters that are ready right now (every member idle and
  /// unblocked). Members are marked running; the caller must eventually
  /// commit() each returned cluster. Ordered by (step, first member).
  std::vector<AgentCluster> pop_ready_clusters();

  // ---- Worker side ----
  /// Commit one dispatched cluster: each member's position after the step.
  /// Members advance to step+1 (or Done at target_step).
  void commit(const std::vector<std::pair<AgentId, Pos>>& moves);

  // ---- Introspection ----
  std::size_t agent_count() const { return agents_.size(); }
  Step target_step() const { return target_step_; }
  ScanMode scan_mode() const { return mode_; }
  /// True when kIndexed probes are answered by the hop-bounded graph
  /// index (non-Chebyshev metric exposing a graph adjacency) rather than
  /// the spatial box index. False in brute mode either way.
  bool use_graph_index() const { return graph_live_index_ != nullptr; }
  bool all_done() const { return done_count_ == agents_.size(); }
  Step step_of(AgentId id) const { return agent(id).step; }
  Pos pos_of(AgentId id) const { return agent(id).pos; }
  AgentStatus status_of(AgentId id) const { return agent(id).status; }
  bool is_blocked(AgentId id) const { return !agent(id).blocked_by.empty(); }
  /// Current blockers of `id`, sorted.
  std::vector<AgentId> blockers_of(AgentId id) const;
  /// Members of the idle cluster containing `id` (empty if not idle).
  std::vector<AgentId> cluster_of(AgentId id) const;
  /// Smallest step any agent is still about to execute (target_step once
  /// everyone is done). O(1): maintained incrementally from commits.
  Step min_step() const;
  const ScoreboardStats& stats() const { return stats_; }

  /// Mean number of blockers per blocked-check, a sparsity measure
  /// comparable to the paper's "each agent depends on only 1.85 agents".
  double mean_blockers() const;

  /// Throws CheckError if the Appendix A validity condition is violated
  /// for any agent pair, if internal edge/cluster bookkeeping is
  /// inconsistent, or if the spatial index / live-step bookkeeping has
  /// drifted from the agent table. O(n^2); meant for tests.
  void check_invariants() const;

  /// Graphviz dot rendering of the current graph (Figure 3 style).
  std::string to_dot() const;

 private:
  struct AgentNode {
    Step step = 0;
    Pos pos;
    AgentStatus status = AgentStatus::kIdle;
    std::set<AgentId> blocked_by;  // B in blocked_by => B blocks this agent
    std::set<AgentId> blocks;      // reverse edges
    std::int64_t cluster = -1;     // idle cluster id, -1 when not idle
  };

  struct ClusterRec {
    Step step = 0;
    std::vector<AgentId> members;
    std::int32_t blocked_members = 0;  // members with nonempty blocked_by
  };

  AgentNode& agent(AgentId id);
  const AgentNode& agent(AgentId id) const;

  bool use_index() const { return mode_ == ScanMode::kIndexed && indexable_; }
  /// Fill probe_buf_ with every live agent whose metric distance from
  /// `center` could be <= radius (sorted by id; exact predicates applied
  /// by the caller). Requires use_index() or use_graph_index().
  void probe_into(const Pos& center, double radius);
  /// Smallest step among live (non-done) agents; target_step when all
  /// done. The tight bound for the blocking-radius box probe.
  Step min_live_step() const;
  void live_step_advance(Step from, Step to, bool now_done);

  void add_edge(AgentId blocker, AgentId blocked);
  void remove_edge(AgentId blocker, AgentId blocked);
  /// Recompute blocked_by for `id` from scratch: a blocking_radius(max
  /// live lag) box probe in indexed mode, a full scan otherwise.
  void recompute_blockers(AgentId id);
  /// Re-check the agents `id` currently blocks; drop stale edges.
  void refresh_outgoing(AgentId id);
  void on_blocked_count_change(AgentId id, bool now_blocked);
  /// Place a newly idle agent into the idle clustering (may merge several
  /// existing clusters).
  void cluster_in(AgentId id);
  std::int64_t new_cluster(Step step);

  DependencyParams params_;
  std::shared_ptr<const Metric> metric_;
  Step target_step_;
  ScanMode mode_;
  bool indexable_ = false;  // metric admits box-superset probes
  std::vector<AgentNode> agents_;
  std::map<std::int64_t, ClusterRec> clusters_;
  /// Clusters touched since the last pop (candidates for readiness).
  std::set<std::int64_t> dirty_clusters_;
  /// Idle agents bucketed by step (coupling candidates for the
  /// brute-force path; pop bookkeeping either way).
  std::map<Step, std::set<AgentId>> idle_by_step_;
  /// Live (non-done) agents keyed by position — the probe structure for
  /// recompute_blockers / cluster_in. Maintained only when use_index().
  world::SpatialIndex live_index_;
  /// The graph-metric sibling of live_index_: live agents bucketed by
  /// graph node, probed with hop-bounded BFS balls. Non-null exactly when
  /// mode is kIndexed and the metric exposes an adjacency.
  std::unique_ptr<world::GraphIndex> graph_live_index_;
  /// Live agents per step; begin() is min_live_step. Maintained in every
  /// mode: min_step() and the radius bound read it.
  std::map<Step, std::int32_t> live_steps_;
  /// Reusable candidate buffer so steady-state probes allocate nothing.
  std::vector<AgentId> probe_buf_;
  std::int64_t next_cluster_id_ = 0;
  std::size_t done_count_ = 0;
  std::size_t running_count_ = 0;
  ScoreboardStats stats_;
  // mean_blockers bookkeeping
  std::uint64_t blocker_samples_ = 0;
  std::uint64_t blocker_total_ = 0;
};

}  // namespace aimetro::core
