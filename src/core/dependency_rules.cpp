#include "core/dependency_rules.h"

#include <cmath>

namespace aimetro::core {

bool coupled(double dist, Step step_a, Step step_b,
             const DependencyParams& params) {
  return step_a == step_b && dist <= params.coupling_radius();
}

bool blocks(double dist, Step step_a, Step step_b, bool b_running,
            const DependencyParams& params) {
  if (step_b > step_a) return false;  // future agents never block the past
  if (step_b == step_a && !b_running) return false;  // coupled instead
  return dist <= params.blocking_radius(step_a - step_b);
}

bool state_valid(double dist, Step step_a, Step step_b,
                 const DependencyParams& params) {
  if (step_a == step_b) return true;
  const Step gap = step_a > step_b ? step_a - step_b : step_b - step_a;
  return dist > params.radius_p +
                    static_cast<double>(gap - 1) * params.max_vel;
}

}  // namespace aimetro::core
