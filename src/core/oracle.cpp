#include "core/oracle.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "world/graph_index.h"
#include "world/spatial_index.h"

namespace aimetro::core {

namespace {

/// Plain union-find over dense agent ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<AgentId> OracleDependencies::group_of(Step rel,
                                                  AgentId agent) const {
  if (rel >= 0 && static_cast<std::size_t>(rel) < groups_by_step.size()) {
    for (const auto& group : groups_by_step[static_cast<std::size_t>(rel)]) {
      if (std::binary_search(group.begin(), group.end(), agent)) return group;
    }
  }
  return {agent};
}

std::size_t OracleDependencies::total_group_memberships() const {
  std::size_t n = 0;
  for (const auto& step_groups : groups_by_step) {
    for (const auto& g : step_groups) n += g.size();
  }
  return n;
}

OracleDependencies mine_oracle(const trace::SimulationTrace& trace) {
  OracleDependencies out;
  out.groups_by_step.resize(static_cast<std::size_t>(trace.n_steps));

  // Pre-bucket explicit interactions by relative step.
  std::unordered_map<Step, std::vector<const trace::Interaction*>> explicit_by;
  for (const auto& in : trace.interactions) {
    explicit_by[in.step - trace.start_step].push_back(&in);
  }

  const bool graph = trace.world_kind == trace::WorldKind::kGraph;
  const auto n = static_cast<std::size_t>(trace.n_agents);
  std::vector<AgentId> ball;
  for (Step rel = 0; rel < trace.n_steps; ++rel) {
    UnionFind uf(n);
    // Observation proximity at the start of the step: Euclidean tile
    // distance on grids, hop distance over the social graph otherwise.
    if (graph) {
      world::GraphIndex index(&trace.graph_adjacency);
      for (std::size_t i = 0; i < n; ++i) {
        index.insert(static_cast<AgentId>(i),
                     trace.agents[i]
                         .positions[static_cast<std::size_t>(rel)]
                         .center());
      }
      for (std::size_t i = 0; i < n; ++i) {
        const Pos p =
            trace.agents[i].positions[static_cast<std::size_t>(rel)].center();
        index.query_ball_into(p, trace.radius_p, &ball);
        for (AgentId j : ball) {
          if (static_cast<std::size_t>(j) > i) {
            uf.unite(i, static_cast<std::size_t>(j));
          }
        }
      }
    } else {
      world::SpatialIndex index(std::max(4.0, trace.radius_p));
      for (std::size_t i = 0; i < n; ++i) {
        index.insert(static_cast<AgentId>(i),
                     trace.agents[i]
                         .positions[static_cast<std::size_t>(rel)]
                         .center());
      }
      for (std::size_t i = 0; i < n; ++i) {
        const Pos p =
            trace.agents[i].positions[static_cast<std::size_t>(rel)].center();
        for (AgentId j : index.query_radius(p, trace.radius_p)) {
          if (static_cast<std::size_t>(j) > i) {
            uf.unite(i, static_cast<std::size_t>(j));
          }
        }
      }
    }
    if (auto it = explicit_by.find(rel); it != explicit_by.end()) {
      for (const trace::Interaction* in : it->second) {
        uf.unite(static_cast<std::size_t>(in->a),
                 static_cast<std::size_t>(in->b));
      }
    }
    // Materialize components of size >= 2.
    std::unordered_map<std::size_t, std::vector<AgentId>> comps;
    for (std::size_t i = 0; i < n; ++i) {
      comps[uf.find(i)].push_back(static_cast<AgentId>(i));
    }
    auto& groups = out.groups_by_step[static_cast<std::size_t>(rel)];
    for (auto& [root, members] : comps) {
      (void)root;
      if (members.size() >= 2) {
        std::sort(members.begin(), members.end());
        groups.push_back(std::move(members));
      }
    }
    std::sort(groups.begin(), groups.end());
  }
  return out;
}

}  // namespace aimetro::core
