#include "core/critical_path.h"

#include <algorithm>

#include "common/check.h"

namespace aimetro::core {

CriticalPathResult critical_path(const trace::SimulationTrace& trace,
                                 const OracleDependencies& oracle) {
  const auto n = static_cast<std::size_t>(trace.n_agents);

  // Per-agent call groups by relative step, in chain order.
  std::vector<trace::StepCalls> grouped(n);
  for (std::size_t i = 0; i < n; ++i) {
    grouped[i] = trace::group_calls_by_step(trace.agents[i]);
  }
  auto task_tokens = [&](std::size_t agent, Step rel) -> std::int64_t {
    auto it = grouped[agent].find(trace.start_step + rel);
    if (it == grouped[agent].end()) return 0;
    std::int64_t tokens = 0;
    for (const trace::LlmCall* c : it->second) {
      tokens += c->input_tokens + c->output_tokens;
    }
    return tokens;
  };

  // Longest path over steps with a rolling DP:
  //   dp[a] = heaviest chain ending at (a, rel), pred[a][rel] = choice.
  std::vector<std::int64_t> dp(n, 0);
  // pred[rel * n + a] = predecessor agent of (a, rel) at rel-1, or -1.
  std::vector<AgentId> pred(static_cast<std::size_t>(trace.n_steps) * n, -1);

  for (Step rel = 0; rel < trace.n_steps; ++rel) {
    std::vector<std::int64_t> next(n);
    for (std::size_t a = 0; a < n; ++a) {
      std::int64_t best = dp[a];
      AgentId best_pred = rel > 0 ? static_cast<AgentId>(a) : -1;
      if (rel > 0) {
        for (AgentId b : oracle.group_of(rel, static_cast<AgentId>(a))) {
          if (dp[static_cast<std::size_t>(b)] > best) {
            best = dp[static_cast<std::size_t>(b)];
            best_pred = b;
          }
        }
      }
      next[a] = best + task_tokens(a, rel);
      pred[static_cast<std::size_t>(rel) * n + a] = best_pred;
    }
    dp = std::move(next);
  }

  // Backtrack from the heaviest endpoint.
  std::size_t end_agent = 0;
  for (std::size_t a = 1; a < n; ++a) {
    if (dp[a] > dp[end_agent]) end_agent = a;
  }

  CriticalPathResult result;
  std::vector<std::pair<Step, AgentId>> chain;  // (rel, agent) oldest-last
  auto agent = static_cast<AgentId>(end_agent);
  for (Step rel = trace.n_steps - 1; rel >= 0; --rel) {
    chain.emplace_back(rel, agent);
    const AgentId p =
        pred[static_cast<std::size_t>(rel) * n + static_cast<std::size_t>(agent)];
    if (p < 0) break;
    agent = p;
  }
  std::reverse(chain.begin(), chain.end());
  for (const auto& [rel, a] : chain) {
    auto it = grouped[static_cast<std::size_t>(a)].find(trace.start_step + rel);
    if (it == grouped[static_cast<std::size_t>(a)].end()) continue;
    for (const trace::LlmCall* c : it->second) {
      result.calls.push_back(c);
      result.input_tokens += c->input_tokens;
      result.output_tokens += c->output_tokens;
      ++result.call_count;
    }
  }
  result.total_tokens = result.input_tokens + result.output_tokens;
  AIM_CHECK_MSG(result.total_tokens == dp[end_agent],
                "critical path backtrack mismatch: " << result.total_tokens
                                                     << " vs "
                                                     << dp[end_agent]);
  return result;
}

}  // namespace aimetro::core
