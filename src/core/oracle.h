// Offline oracle dependency mining (§4.1, "oracle" setting).
//
// Given a full trace, the optimal dependency graph keeps only the
// interactions that actually happened: "if two agents appear in each
// other's observation space, they synchronize before and after the step".
// We union observation-proximity pairs (distance <= radius_p at the start
// of a step) with the trace's explicit interaction records (conversation
// turns) and form per-step interaction groups (connected components). An
// agent may start step s once it and every member of its step-s group have
// committed step s-1; the group commits s together. This is unattainable
// online (it requires foresight) and serves as the upper bound on
// schedulable parallelism.
#pragma once

#include <vector>

#include "common/types.h"
#include "trace/schema.h"

namespace aimetro::core {

struct OracleDependencies {
  /// groups_by_step[s] (relative step) lists the interaction groups with
  /// >= 2 members, each sorted. Agents absent from every group in a step
  /// are independent singletons for that step.
  std::vector<std::vector<std::vector<AgentId>>> groups_by_step;

  /// Group of `agent` at relative step `rel` including itself (singleton
  /// when it interacted with nobody).
  std::vector<AgentId> group_of(Step rel, AgentId agent) const;

  std::size_t total_group_memberships() const;
};

OracleDependencies mine_oracle(const trace::SimulationTrace& trace);

}  // namespace aimetro::core
