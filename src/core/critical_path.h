// Critical-path extraction (§4.1, "critical" setting).
//
// Over the oracle dependency DAG — task (A, s) depends on (A, s-1) and on
// (B, s-1) for every B in A's step-s interaction group — find the chain of
// tasks "containing the most LLM input and output tokens". Executing that
// chain alone, one call at a time, lower-bounds the completion time
// regardless of available resources.
#pragma once

#include <cstdint>
#include <vector>

#include "core/oracle.h"
#include "trace/schema.h"

namespace aimetro::core {

struct CriticalPathResult {
  std::int64_t total_tokens = 0;   // input + output along the path
  std::int64_t input_tokens = 0;
  std::int64_t output_tokens = 0;
  std::size_t call_count = 0;
  /// The chain's calls in execution order (pointers into the trace).
  std::vector<const trace::LlmCall*> calls;
};

CriticalPathResult critical_path(const trace::SimulationTrace& trace,
                                 const OracleDependencies& oracle);

}  // namespace aimetro::core
