// The paper's conservative dependency rules (§3.2, Appendix A).
//
// State: every agent has a position and the step it is about to execute
// (equivalently: it has committed all steps below it). A valid state
// satisfies, for all agent pairs with different steps,
//
//     dist(A, B) > radius_p + (|StepA - StepB| - 1) * max_vel
//
// i.e. an agent never perceives another agent that exists at a different
// time. The rules below are the sufficient conditions AI Metropolis
// enforces online:
//   * coupled  — same step and dist <= radius_p + max_vel: must advance
//     together (same cluster);
//   * blocked  — B at an earlier step (or currently executing the same
//     step) with dist <= (StepA - StepB + 1) * max_vel + radius_p: A must
//     wait until B commits;
//   * agents at strictly later steps never block earlier agents.
#pragma once

#include "common/types.h"

namespace aimetro::core {

struct DependencyParams {
  double radius_p = 4.0;  // perception radius (GenAgent: 4 grid units)
  double max_vel = 1.0;   // max movement / information propagation per step

  double coupling_radius() const { return radius_p + max_vel; }
  /// Radius within which a blocker lagging `lag` steps behind restrains an
  /// agent (lag >= 0).
  double blocking_radius(Step lag) const {
    return static_cast<double>(lag + 1) * max_vel + radius_p;
  }
};

/// Same-step agents close enough that they must proceed together.
bool coupled(double dist, Step step_a, Step step_b,
             const DependencyParams& params);

/// Does B (at `step_b`, executing iff `b_running`) block A (at `step_a`,
/// about to start)? Same-step idle agents are coupled, not blocking; a
/// same-step *running* agent blocks (A missed that cluster and must wait
/// for the commit).
bool blocks(double dist, Step step_a, Step step_b, bool b_running,
            const DependencyParams& params);

/// The Appendix A validity condition for a pair of committed states.
bool state_valid(double dist, Step step_a, Step step_b,
                 const DependencyParams& params);

}  // namespace aimetro::core
