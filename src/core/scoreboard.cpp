#include "core/scoreboard.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace aimetro::core {

namespace {

/// Cell size for the live-agent index: coupling-radius cells keep the
/// common probes (coupling, small-lag blocking) within a 3x3 cell box
/// while staying coarse enough that buckets aren't degenerate.
double index_cell_size(const DependencyParams& params) {
  return std::max(1.0, params.coupling_radius());
}

}  // namespace

Scoreboard::Scoreboard(DependencyParams params,
                       std::shared_ptr<const Metric> metric,
                       std::vector<Pos> initial_positions, Step target_step,
                       ScanMode mode, std::int32_t shards,
                       world::PartitionKind partition)
    : params_(params),
      metric_(std::move(metric)),
      target_step_(target_step),
      mode_(mode) {
  AIM_CHECK(metric_ != nullptr);
  AIM_CHECK(target_step_ >= 0);
  AIM_CHECK(!initial_positions.empty());
  AIM_CHECK_MSG(shards >= 1 && shards <= kMaxShards,
                "shards must be in [1, " << kMaxShards << "], got " << shards);
#ifdef AIMETRO_SCOREBOARD_NO_BRUTE
  AIM_CHECK_MSG(mode_ != ScanMode::kBruteForce,
                "brute-force reference path compiled out "
                "(AIMETRO_SCOREBOARD_NO_BRUTE)");
#endif
  indexable_ = metric_->lower_bounded_by_chebyshev();
  if (mode_ == ScanMode::kIndexed && !indexable_) {
    // Graph metrics can't be probed with Chebyshev boxes, but they expose
    // their adjacency: live agents go into a GraphIndex instead, and every
    // probe site walks a hop-bounded ball (an exact metric ball — hop
    // distances are integral). A metric with neither property runs the
    // full-scan path even in indexed mode.
    if (const auto* adjacency = metric_->graph_adjacency()) {
      graph_live_index_ = std::make_unique<world::GraphIndex>(adjacency);
    }
  }
  // The region partition only pays off where probes are strip-local box
  // queries; the brute-force scan, graph-ball, and full-scan fallback
  // paths collapse to one strip (behavior is identical either way).
  shards_ = use_index() ? shards : 1;
  if (shards_ > 1 && partition == world::PartitionKind::kEqualPopulation) {
    std::vector<double> xs;
    xs.reserve(initial_positions.size());
    for (const Pos& p : initial_positions) xs.push_back(p.x);
    partition_ =
        world::RegionPartition::equal_population(shards_, std::move(xs));
  } else {
    double x_min = initial_positions.front().x;
    double x_max = x_min;
    for (const Pos& p : initial_positions) {
      x_min = std::min(x_min, p.x);
      x_max = std::max(x_max, p.x);
    }
    partition_ = world::RegionPartition(shards_, x_min, x_max);
  }
  shards_data_.reserve(static_cast<std::size_t>(shards_));
  for (std::int32_t s = 0; s < shards_; ++s) {
    shards_data_.push_back(std::make_unique<ShardData>(index_cell_size(params)));
  }

  agents_.resize(initial_positions.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    agents_[i].pos = initial_positions[i];
    if (target_step_ == 0) {
      agents_[i].status = AgentStatus::kDone;
      done_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (target_step_ == 0) return;
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    ++shard(partition_.shard_of(agents_[i].pos)).live_steps[0];
  }
  if (use_index() || use_graph_index()) {
    if (use_index()) {
      std::vector<std::vector<std::pair<AgentId, Pos>>> per_strip(
          static_cast<std::size_t>(shards_));
      for (std::size_t i = 0; i < agents_.size(); ++i) {
        per_strip[static_cast<std::size_t>(
                      partition_.shard_of(agents_[i].pos))]
            .emplace_back(static_cast<AgentId>(i), agents_[i].pos);
      }
      for (std::int32_t s = 0; s < shards_; ++s) {
        shard(s).live_index.bulk_insert(per_strip[static_cast<std::size_t>(s)]);
      }
    } else {
      std::vector<std::pair<AgentId, Pos>> items;
      items.reserve(agents_.size());
      for (std::size_t i = 0; i < agents_.size(); ++i) {
        items.emplace_back(static_cast<AgentId>(i), agents_[i].pos);
      }
      graph_live_index_->bulk_insert(items);
    }
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    update_border_registration(static_cast<AgentId>(i), 0);
  }
  // Initial edges and clustering: everyone idle at step 0, so there are no
  // blockers (no lower step, nobody running); only coupling applies. The
  // flood-fill expands each component through coupling-radius box probes
  // (indexed) or full scans (brute) — the components, and therefore the
  // cluster ids assigned in ascending-smallest-member order, are identical
  // either way.
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const std::int32_t strip = partition_.shard_of(agents_[i].pos);
    shard(strip).idle_by_step[0].insert(static_cast<AgentId>(i));
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i].cluster >= 0) continue;
    const std::int32_t strip = partition_.shard_of(agents_[i].pos);
    const std::int64_t cid = new_cluster(0, strip);
    ClusterRec& rec = shard(strip).clusters.at(cid);
    std::vector<AgentId> frontier{static_cast<AgentId>(i)};
    agents_[i].cluster = cid;
    while (!frontier.empty()) {
      const AgentId u = frontier.back();
      frontier.pop_back();
      rec.members.push_back(u);
      cluster_span_include(cid, partition_.shard_of(agent(u).pos));
      auto consider = [&](AgentId v) {
        AgentNode& node = agent(v);
        if (node.cluster >= 0) return;
        if (coupled(metric_->distance(agent(u).pos, node.pos), 0, 0,
                    params_)) {
          node.cluster = cid;
          frontier.push_back(v);
        }
      };
      if (use_index() || use_graph_index()) {
        for (AgentId v : probe_into(agent(u).pos, params_.coupling_radius())) {
          consider(v);
        }
      } else {
        for (std::size_t j = 0; j < agents_.size(); ++j) {
          consider(static_cast<AgentId>(j));
        }
      }
    }
    std::sort(rec.members.begin(), rec.members.end());
    shard(strip).dirty_clusters.insert(cid);
  }
}

Scoreboard::AgentNode& Scoreboard::agent(AgentId id) {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents_.size());
  return agents_[static_cast<std::size_t>(id)];
}

const Scoreboard::AgentNode& Scoreboard::agent(AgentId id) const {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents_.size());
  return agents_[static_cast<std::size_t>(id)];
}

const std::vector<AgentId>& Scoreboard::probe_into(const Pos& center,
                                                   double radius) {
  if (!use_index()) {
    graph_live_index_->query_ball_into(center, radius, &shard(0).probe_buf);
    return shard(0).probe_buf;
  }
  const auto span = partition_.span_of_box(center, radius);
  if (span.single()) {
    ShardData& sd = shard(span.lo);
    sd.live_index.query_box_into(center, radius, &sd.probe_buf);
    return sd.probe_buf;
  }
  // Fan out over every overlapped strip and restore global id order. Each
  // strip returns an id-sorted, disjoint slice (an agent is indexed only
  // in its home strip), so the merged result equals what one global index
  // would return. Callers of multi-strip probes hold the board
  // exclusively, so the shared merge buffers are safe.
  multi_probe_buf_.clear();
  for (std::int32_t s = span.lo; s <= span.hi; ++s) {
    shard(s).live_index.query_box_into(center, radius, &strip_tmp_buf_);
    multi_probe_buf_.insert(multi_probe_buf_.end(), strip_tmp_buf_.begin(),
                            strip_tmp_buf_.end());
  }
  std::sort(multi_probe_buf_.begin(), multi_probe_buf_.end());
  return multi_probe_buf_;
}

Step Scoreboard::min_live_step() const {
  Step best = target_step_;
  for (std::int32_t s = 0; s < shards_; ++s) {
    const auto& ls = shard(s).live_steps;
    if (!ls.empty()) best = std::min(best, ls.begin()->first);
  }
  return best;
}

void Scoreboard::live_step_advance(std::int32_t from_strip,
                                   std::int32_t to_strip, Step from, Step to,
                                   bool now_done) {
  auto& from_ls = shard(from_strip).live_steps;
  auto it = from_ls.find(from);
  AIM_CHECK(it != from_ls.end() && it->second > 0);
  if (--it->second == 0) from_ls.erase(it);
  if (!now_done) ++shard(to_strip).live_steps[to];
}

void Scoreboard::update_border_registration(AgentId id, Step floor) {
  if (shards_ == 1) return;
  AgentNode& node = agent(id);
  if (node.border_lo != node.border_hi) {
    for (std::int32_t t = node.border_lo; t <= node.border_hi; ++t) {
      shard(t).border_agents.erase(id);
    }
  }
  const std::int32_t home = partition_.shard_of(node.pos);
  if (node.status == AgentStatus::kDone) {
    node.border_lo = node.border_hi = home;
    return;
  }
  const Step lead = node.step - floor;
  AIM_CHECK(lead >= 0);
  const auto span =
      partition_.span_of_box(node.pos, params_.blocking_radius(lead));
  node.border_lo = span.lo;
  node.border_hi = span.hi;
  if (!span.single()) {
    for (std::int32_t t = span.lo; t <= span.hi; ++t) {
      shard(t).border_agents.insert(id);
    }
  }
}

void Scoreboard::repartition(const world::RegionPartition& new_partition) {
  AIM_CHECK_MSG(new_partition.shards() == shards_,
                "repartition must preserve the strip count (the engine's "
                "lock/pool/stats arrays are sized per strip): have "
                    << shards_ << ", got " << new_partition.shards());
  if (shards_ == 1) {
    partition_ = new_partition;
    return;
  }
  // 1. Detach every idle cluster, in deterministic (strip, cid) order.
  //    Only step/members/blocked_members survive; homes and spans are
  //    recomputed under the new boundaries.
  struct SavedCluster {
    Step step;
    std::vector<AgentId> members;
    std::int32_t blocked_members;
  };
  std::vector<SavedCluster> saved;
  for (std::int32_t s = 0; s < shards_; ++s) {
    for (auto& [cid, rec] : shard(s).clusters) {
      saved.push_back(
          SavedCluster{rec.step, std::move(rec.members), rec.blocked_members});
    }
  }
  // 2. Fresh strip slices. Counters that are *positional* — cluster-id
  //    allocators, stats rows, blocker-sample tallies — carry over by
  //    strip index: the engine's mutex/pool/stats arrays alias strip i
  //    before and after, and cid uniqueness needs the allocators to stay
  //    monotone per strip.
  std::vector<std::unique_ptr<ShardData>> fresh;
  fresh.reserve(static_cast<std::size_t>(shards_));
  for (std::int32_t s = 0; s < shards_; ++s) {
    fresh.push_back(std::make_unique<ShardData>(index_cell_size(params_)));
    ShardData& nd = *fresh.back();
    const ShardData& od = shard(s);
    nd.next_cluster_local = od.next_cluster_local;
    nd.stats = od.stats;
    nd.blocker_samples = od.blocker_samples;
    nd.blocker_total = od.blocker_total;
  }
  shards_data_ = std::move(fresh);
  partition_ = new_partition;
  // 3. Re-home every live agent (idle or running): live index, live-step
  //    counts, idle buckets.
  std::vector<std::vector<std::pair<AgentId, Pos>>> per_strip(
      static_cast<std::size_t>(shards_));
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    AgentNode& node = agents_[i];
    node.cluster = -1;
    if (node.status == AgentStatus::kDone) continue;
    const std::int32_t home = partition_.shard_of(node.pos);
    per_strip[static_cast<std::size_t>(home)].emplace_back(
        static_cast<AgentId>(i), node.pos);
    ++shard(home).live_steps[node.step];
    if (node.status == AgentStatus::kIdle) {
      shard(home).idle_by_step[node.step].insert(static_cast<AgentId>(i));
    }
  }
  for (std::int32_t s = 0; s < shards_; ++s) {
    shard(s).live_index.bulk_insert(per_strip[static_cast<std::size_t>(s)]);
  }
  // 4. Re-home the clusters. New cids (from the carried-over monotone
  //    allocators) can't collide with any cid ever issued; dispatch order
  //    is unaffected because pops sort by (step, first member), never by
  //    cid. Marking everything dirty is also order-neutral: every
  //    unblocked cluster was already dirty pre-repartition (commits mark
  //    what they release), and a blocked dirty cluster is silently
  //    skipped at the next pop.
  for (SavedCluster& sc : saved) {
    const std::int32_t strip =
        partition_.shard_of(agent(sc.members.front()).pos);
    const std::int64_t cid = new_cluster(sc.step, strip);
    for (AgentId m : sc.members) {
      agent(m).cluster = cid;
      cluster_span_include(cid, partition_.shard_of(agent(m).pos));
    }
    ClusterRec& rec = shard(strip).clusters.at(cid);
    rec.members = std::move(sc.members);
    rec.blocked_members = sc.blocked_members;
    shard(strip).dirty_clusters.insert(cid);
  }
  // 5. Fresh border registrations under the new boundaries (erasing the
  //    stale registration hits empty sets, harmlessly).
  const Step floor = min_live_step();
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    update_border_registration(static_cast<AgentId>(i), floor);
  }
}

std::int64_t Scoreboard::new_cluster(Step step, std::int32_t strip) {
  ShardData& sd = shard(strip);
  const std::int64_t cid = (sd.next_cluster_local++ << 6) |
                           static_cast<std::int64_t>(strip);
  ClusterRec& rec = sd.clusters[cid];
  rec.step = step;
  rec.span_lo = rec.span_hi = strip;
  return cid;
}

void Scoreboard::span_counters_remove(const ClusterRec& rec) {
  if (rec.span_lo == rec.span_hi) return;
  for (std::int32_t t = rec.span_lo; t <= rec.span_hi; ++t) {
    shard(t).cross_clusters.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Scoreboard::span_counters_add(const ClusterRec& rec) {
  if (rec.span_lo == rec.span_hi) return;
  for (std::int32_t t = rec.span_lo; t <= rec.span_hi; ++t) {
    shard(t).cross_clusters.fetch_add(1, std::memory_order_relaxed);
  }
}

void Scoreboard::cluster_span_include(std::int64_t cid, std::int32_t strip) {
  if (shards_ == 1) return;
  ClusterRec& rec = shard(shard_of_cluster(cid)).clusters.at(cid);
  if (strip >= rec.span_lo && strip <= rec.span_hi) return;
  span_counters_remove(rec);
  rec.span_lo = std::min(rec.span_lo, strip);
  rec.span_hi = std::max(rec.span_hi, strip);
  span_counters_add(rec);
}

void Scoreboard::on_blocked_count_change(AgentId id, bool now_blocked) {
  AgentNode& node = agent(id);
  if (node.cluster < 0) return;
  ShardData& sd = shard(shard_of_cluster(node.cluster));
  auto it = sd.clusters.find(node.cluster);
  AIM_CHECK(it != sd.clusters.end());
  it->second.blocked_members += now_blocked ? 1 : -1;
  AIM_CHECK(it->second.blocked_members >= 0);
  sd.dirty_clusters.insert(node.cluster);
}

void Scoreboard::add_edge(AgentId blocker, AgentId blocked) {
  AgentNode& a = agent(blocked);
  const bool was_blocked = !a.blocked_by.empty();
  if (!a.blocked_by.insert(blocker).second) return;
  agent(blocker).blocks.insert(blocked);
  ++shard(partition_.shard_of(a.pos)).stats.edges_added;
  if (!was_blocked) on_blocked_count_change(blocked, true);
}

void Scoreboard::remove_edge(AgentId blocker, AgentId blocked) {
  AgentNode& a = agent(blocked);
  if (a.blocked_by.erase(blocker) == 0) return;
  agent(blocker).blocks.erase(blocked);
  ++shard(partition_.shard_of(a.pos)).stats.edges_removed;
  if (a.blocked_by.empty()) on_blocked_count_change(blocked, false);
}

void Scoreboard::recompute_blockers(AgentId id, Step floor) {
  AgentNode& node = agent(id);
  // Drop all existing incoming edges, then rebuild. Indexed mode probes
  // the largest radius any live agent could block from: blocking_radius(
  // own step - min live step). Any blocker B at lag L satisfies dist <=
  // blocking_radius(L) <= blocking_radius(max lag), and every such metric
  // ball is inside the probe — a Chebyshev box for metrics with the
  // Chebyshev lower bound, a hop-bounded BFS ball for graph metrics — so
  // the probe is a superset of the brute-force candidate set. Candidates
  // arrive sorted by id — the same order the full scan visits them — so
  // edge bookkeeping is byte-identical (see docs/ARCHITECTURE.md,
  // "Dependency core"). Commits carrying a probe_floor use that lower
  // bound instead of the exact minimum; the box only widens, and the
  // exact blocks() predicate filters the extras.
  const std::vector<AgentId> previous(node.blocked_by.begin(),
                                      node.blocked_by.end());
  for (AgentId b : previous) remove_edge(b, id);

  if (node.status == AgentStatus::kDone) return;
  std::uint64_t found = 0;
  auto consider = [&](AgentId b) {
    if (b == id) return;
    const AgentNode& other = agent(b);
    if (other.status == AgentStatus::kDone) return;
    const double dist = metric_->distance(node.pos, other.pos);
    if (blocks(dist, node.step, other.step,
               other.status == AgentStatus::kRunning, params_)) {
      add_edge(b, id);
      ++found;
    }
  };
  if (use_index() || use_graph_index()) {
    const Step max_lag = node.step - floor;
    AIM_CHECK(max_lag >= 0);
    for (AgentId b : probe_into(node.pos, params_.blocking_radius(max_lag))) {
      consider(b);
    }
  } else {
    for (std::size_t j = 0; j < agents_.size(); ++j) {
      consider(static_cast<AgentId>(j));
    }
  }
  ShardData& sd = shard(partition_.shard_of(node.pos));
  ++sd.blocker_samples;
  sd.blocker_total += found;
}

void Scoreboard::refresh_outgoing(AgentId id) {
  AgentNode& node = agent(id);
  const std::vector<AgentId> watchers(node.blocks.begin(), node.blocks.end());
  for (AgentId w : watchers) {
    const AgentNode& watcher = agent(w);
    const double dist = metric_->distance(watcher.pos, node.pos);
    if (!blocks(dist, watcher.step, node.step,
                node.status == AgentStatus::kRunning, params_)) {
      remove_edge(id, w);
    }
  }
}

void Scoreboard::cluster_in(AgentId id) {
  AgentNode& node = agent(id);
  AIM_CHECK(node.status == AgentStatus::kIdle && node.cluster < 0);
  const std::int32_t home = partition_.shard_of(node.pos);
  shard(home).idle_by_step[node.step].insert(id);

  // Find idle same-step agents within the coupling radius; `id` may bridge
  // several existing clusters into one. Indexed mode probes a
  // coupling-radius box and filters to idle same-step agents — the same
  // candidates the brute path reads out of idle_by_step.
  std::set<std::int64_t> neighbors_clusters;
  auto consider = [&](AgentId other) {
    if (other == id) return;
    const AgentNode& o = agent(other);
    // Mid-commit, sibling members can already be idle but not yet
    // clustered (their own cluster_in hasn't run; they are not in
    // idle_by_step yet). Skip them — they will see us when they cluster
    // in — so both scan modes read the same candidate set.
    if (o.status != AgentStatus::kIdle || o.cluster < 0) return;
    if (coupled(metric_->distance(node.pos, o.pos), node.step, o.step,
                params_)) {
      neighbors_clusters.insert(o.cluster);
    }
  };
  if (use_index() || use_graph_index()) {
    for (AgentId other : probe_into(node.pos, params_.coupling_radius())) {
      consider(other);
    }
  } else {
    for (AgentId other : shard(0).idle_by_step.at(node.step)) consider(other);
  }

  std::int64_t target;
  if (neighbors_clusters.empty()) {
    target = new_cluster(node.step, home);
  } else {
    // Merge everything into the first (smallest-id) cluster. The merge
    // survivor's identity is unobservable — cluster_of() reports members
    // — so the encoded ids changing the relative order across strips
    // cannot change observable behavior.
    target = *neighbors_clusters.begin();
    ClusterRec& target_rec =
        shard(shard_of_cluster(target)).clusters.at(target);
    for (auto cit = std::next(neighbors_clusters.begin());
         cit != neighbors_clusters.end(); ++cit) {
      ShardData& victim_sd = shard(shard_of_cluster(*cit));
      ClusterRec& victim = victim_sd.clusters.at(*cit);
      for (AgentId m : victim.members) {
        agent(m).cluster = target;
        target_rec.members.push_back(m);
      }
      target_rec.blocked_members += victim.blocked_members;
      if (shards_ > 1 &&
          (victim.span_lo < target_rec.span_lo ||
           victim.span_hi > target_rec.span_hi)) {
        span_counters_remove(target_rec);
        target_rec.span_lo = std::min(target_rec.span_lo, victim.span_lo);
        target_rec.span_hi = std::max(target_rec.span_hi, victim.span_hi);
        span_counters_add(target_rec);
      }
      span_counters_remove(victim);
      victim_sd.clusters.erase(*cit);
      victim_sd.dirty_clusters.erase(*cit);
    }
  }
  ShardData& home_sd = shard(shard_of_cluster(target));
  ClusterRec& rec = home_sd.clusters.at(target);
  node.cluster = target;
  rec.members.push_back(id);
  std::sort(rec.members.begin(), rec.members.end());
  if (!node.blocked_by.empty()) ++rec.blocked_members;
  cluster_span_include(target, home);
  home_sd.dirty_clusters.insert(target);
}

void Scoreboard::pop_shard_ready_into(std::int32_t strip,
                                      std::vector<AgentCluster>* ready) {
  ShardData& sd = shard(strip);
  for (auto it = sd.dirty_clusters.begin(); it != sd.dirty_clusters.end();) {
    const std::int64_t cid = *it;
    auto cit = sd.clusters.find(cid);
    if (cit == sd.clusters.end()) {
      it = sd.dirty_clusters.erase(it);
      continue;
    }
    ClusterRec& rec = cit->second;
    if (rec.blocked_members > 0) {
      // Stays idle; keep it clean until an edge change re-dirties it.
      it = sd.dirty_clusters.erase(it);
      continue;
    }
    // Dispatch: mark members running, drop from idle structures.
    AgentCluster out;
    out.step = rec.step;
    out.members = rec.members;
    for (AgentId m : out.members) {
      AgentNode& node = agent(m);
      AIM_CHECK(node.status == AgentStatus::kIdle);
      node.status = AgentStatus::kRunning;
      node.cluster = -1;
      auto& idle = shard(partition_.shard_of(node.pos)).idle_by_step;
      auto idle_it = idle.find(rec.step);
      AIM_CHECK(idle_it != idle.end());
      idle_it->second.erase(m);
      if (idle_it->second.empty()) idle.erase(idle_it);
      running_count_.fetch_add(1, std::memory_order_relaxed);
    }
    span_counters_remove(rec);
    sd.clusters.erase(cit);
    it = sd.dirty_clusters.erase(it);
    ++sd.stats.clusters_dispatched;
    sd.stats.sum_cluster_sizes += static_cast<double>(out.members.size());
    sd.stats.max_concurrent_running = std::max<std::uint64_t>(
        sd.stats.max_concurrent_running,
        running_count_.load(std::memory_order_relaxed));
    ready->push_back(std::move(out));
  }
}

std::vector<AgentCluster> Scoreboard::pop_ready_clusters() {
  std::vector<AgentCluster> ready;
  for (std::int32_t s = 0; s < shards_; ++s) pop_shard_ready_into(s, &ready);
  std::sort(ready.begin(), ready.end(),
            [](const AgentCluster& a, const AgentCluster& b) {
              if (a.step != b.step) return a.step < b.step;
              return a.members.front() < b.members.front();
            });
  return ready;
}

std::vector<AgentCluster> Scoreboard::pop_ready_clusters_in_shard(
    std::int32_t strip) {
  AIM_CHECK(strip >= 0 && strip < shards_);
  std::vector<AgentCluster> ready;
  pop_shard_ready_into(strip, &ready);
  std::sort(ready.begin(), ready.end(),
            [](const AgentCluster& a, const AgentCluster& b) {
              if (a.step != b.step) return a.step < b.step;
              return a.members.front() < b.members.front();
            });
  return ready;
}

std::int32_t Scoreboard::local_commit_shard(
    const std::vector<std::pair<AgentId, Pos>>& moves,
    Step probe_floor) const {
  if (shards_ == 1 || moves.empty()) return -1;
  AIM_CHECK(probe_floor >= 0);
  // The influence region of a commit: every structure it can touch lies
  // within blocking_radius(max possible lag) of a member's old or new
  // position (existing edges and probe boxes), plus a coupling radius
  // for the idle-cluster merge probe. If every such box sits inside one
  // strip, every agent/cluster the commit reads or writes is homed there.
  const double rb =
      params_.blocking_radius(target_step_ - probe_floor) +
      params_.coupling_radius();
  std::int32_t strip = -1;
  for (const auto& [id, pos] : moves) {
    const AgentNode& node = agent(id);
    const auto old_span = partition_.span_of_box(node.pos, rb);
    const auto new_span = partition_.span_of_box(pos, rb);
    if (!old_span.single() || !new_span.single() ||
        old_span.lo != new_span.lo) {
      return -1;
    }
    if (strip < 0) strip = old_span.lo;
    if (old_span.lo != strip) return -1;
    // A stale (wider) border registration means an earlier, smaller
    // floor put this member's box across a boundary; deregistering it
    // would touch the neighbor strip, so reconcile cross-shard.
    if (node.border_lo != node.border_hi || node.border_lo != strip) {
      return -1;
    }
  }
  // A cluster chain reaching across the boundary couples this strip to
  // its neighbor: any commit here may need to merge into (or unblock) a
  // record owned by another strip, so it reconciles cross-shard.
  if (shard(strip).cross_clusters.load(std::memory_order_relaxed) != 0) {
    return -1;
  }
  return strip;
}

void Scoreboard::commit(const std::vector<std::pair<AgentId, Pos>>& moves,
                        Step probe_floor) {
  AIM_CHECK(!moves.empty());
  // The floor bounds every blocking-radius probe in this commit. The
  // exact path samples the live minimum once, up front: it can only rise
  // during phase 1, so the sample stays a valid lower bound, and a lower
  // floor merely widens probe boxes (the exact predicates filter the
  // extras — observable state is floor-independent).
  const Step floor = probe_floor >= 0 ? probe_floor : min_live_step();
  ++shard(partition_.shard_of(agent(moves.front().first).pos)).stats.commits;
  // Phase 1: advance state (agent table, live-step counts, live index,
  // border registration).
  for (const auto& [id, pos] : moves) {
    AgentNode& node = agent(id);
    AIM_CHECK_MSG(node.status == AgentStatus::kRunning,
                  "commit of non-running agent " << id);
    AIM_CHECK_MSG(
        metric_->distance(node.pos, pos) <= params_.max_vel + 1e-9,
        "agent " << id << " moved faster than max_vel");
    AIM_CHECK(node.step >= floor);
    const std::int32_t old_strip = partition_.shard_of(node.pos);
    const std::int32_t new_strip = partition_.shard_of(pos);
    node.pos = pos;
    node.step += 1;
    AIM_CHECK(node.step <= target_step_);
    running_count_.fetch_sub(1, std::memory_order_relaxed);
    const bool now_done = node.step == target_step_;
    live_step_advance(old_strip, new_strip, node.step - 1, node.step,
                      now_done);
    if (now_done) {
      node.status = AgentStatus::kDone;
      done_count_.fetch_add(1, std::memory_order_release);
      if (use_index()) shard(old_strip).live_index.remove(id);
      if (use_graph_index()) graph_live_index_->remove(id);
    } else {
      node.status = AgentStatus::kIdle;
      if (use_index()) {
        if (old_strip == new_strip) {
          shard(new_strip).live_index.update(id, pos);
        } else {
          shard(old_strip).live_index.remove(id);
          shard(new_strip).live_index.insert(id, pos);
        }
      }
      if (use_graph_index()) graph_live_index_->update(id, pos);
    }
    update_border_registration(id, floor);
  }
  // Phase 2: re-examine relationships. Outgoing edges of committed agents
  // can only shrink (they advanced / are no longer running); incoming edges
  // must be rebuilt because their step and position changed.
  for (const auto& [id, pos] : moves) {
    (void)pos;
    refresh_outgoing(id);
    recompute_blockers(id, floor);
  }
  // Phase 3: idle clustering for members still in flight toward target.
  for (const auto& [id, pos] : moves) {
    (void)pos;
    AgentNode& node = agent(id);
    if (node.status == AgentStatus::kIdle) cluster_in(id);
    if (node.status == AgentStatus::kDone) {
      // A done agent blocks nobody and is blocked by nobody.
      const std::vector<AgentId> watchers(node.blocks.begin(),
                                          node.blocks.end());
      for (AgentId w : watchers) remove_edge(id, w);
      AIM_CHECK(node.blocked_by.empty());
    }
  }
}

std::vector<AgentId> Scoreboard::blockers_of(AgentId id) const {
  const AgentNode& node = agent(id);
  return {node.blocked_by.begin(), node.blocked_by.end()};
}

std::vector<AgentId> Scoreboard::cluster_of(AgentId id) const {
  const AgentNode& node = agent(id);
  if (node.cluster < 0) return {};
  return shard(shard_of_cluster(node.cluster)).clusters.at(node.cluster)
      .members;
}

Step Scoreboard::min_step() const { return min_live_step(); }

std::size_t Scoreboard::border_count(std::int32_t s) const {
  AIM_CHECK(s >= 0 && s < shards_);
  return shard(s).border_agents.size();
}

std::int32_t Scoreboard::cross_cluster_count(std::int32_t s) const {
  AIM_CHECK(s >= 0 && s < shards_);
  return shard(s).cross_clusters.load(std::memory_order_relaxed);
}

ScoreboardStats Scoreboard::stats() const {
  ScoreboardStats out;
  for (std::int32_t s = 0; s < shards_; ++s) {
    const ScoreboardStats& ss = shard(s).stats;
    out.clusters_dispatched += ss.clusters_dispatched;
    out.commits += ss.commits;
    out.edges_added += ss.edges_added;
    out.edges_removed += ss.edges_removed;
    // Each per-strip maximum is a snapshot of the one global running
    // counter, so the board-wide peak is the max, not the sum.
    out.max_concurrent_running =
        std::max(out.max_concurrent_running, ss.max_concurrent_running);
    out.sum_cluster_sizes += ss.sum_cluster_sizes;
  }
  return out;
}

const ScoreboardStats& Scoreboard::shard_stats(std::int32_t s) const {
  AIM_CHECK(s >= 0 && s < shards_);
  return shard(s).stats;
}

double Scoreboard::mean_blockers() const {
  std::uint64_t samples = 0;
  std::uint64_t total = 0;
  for (std::int32_t s = 0; s < shards_; ++s) {
    samples += shard(s).blocker_samples;
    total += shard(s).blocker_total;
  }
  return samples ? static_cast<double>(total) / static_cast<double>(samples)
                 : 0.0;
}

void Scoreboard::check_invariants() const {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (std::size_t j = i + 1; j < agents_.size(); ++j) {
      const AgentNode& a = agents_[i];
      const AgentNode& b = agents_[j];
      const double dist = metric_->distance(a.pos, b.pos);
      AIM_CHECK_MSG(
          state_valid(dist, a.step, b.step, params_),
          "temporal causality violated between agents "
              << i << "@" << a.step << " and " << j << "@" << b.step
              << " at distance " << dist);
    }
  }
  // Edge symmetry and cluster bookkeeping.
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const auto id = static_cast<AgentId>(i);
    const AgentNode& node = agents_[i];
    for (AgentId b : node.blocked_by) {
      AIM_CHECK(agent(b).blocks.count(id) == 1);
    }
    for (AgentId w : node.blocks) {
      AIM_CHECK(agent(w).blocked_by.count(id) == 1);
    }
    if (node.status == AgentStatus::kIdle) {
      AIM_CHECK(node.cluster >= 0);
      const auto& shard_clusters = shard(shard_of_cluster(node.cluster))
                                       .clusters;
      const ClusterRec& rec = shard_clusters.at(node.cluster);
      AIM_CHECK(std::find(rec.members.begin(), rec.members.end(), id) !=
                rec.members.end());
      AIM_CHECK(rec.step == node.step);
    }
  }
  std::vector<std::int32_t> expected_cross(
      static_cast<std::size_t>(shards_), 0);
  for (std::int32_t s = 0; s < shards_; ++s) {
    for (const auto& [cid, rec] : shard(s).clusters) {
      AIM_CHECK(shard_of_cluster(cid) == s);
      std::int32_t blocked = 0;
      std::int32_t span_lo = std::numeric_limits<std::int32_t>::max();
      std::int32_t span_hi = std::numeric_limits<std::int32_t>::min();
      for (AgentId m : rec.members) {
        AIM_CHECK(agent(m).status == AgentStatus::kIdle);
        if (!agent(m).blocked_by.empty()) ++blocked;
        const std::int32_t strip = partition_.shard_of(agent(m).pos);
        span_lo = std::min(span_lo, strip);
        span_hi = std::max(span_hi, strip);
      }
      AIM_CHECK_MSG(blocked == rec.blocked_members,
                    "cluster blocked-count drift: " << blocked << " vs "
                                                    << rec.blocked_members);
      if (shards_ > 1) {
        AIM_CHECK_MSG(span_lo == rec.span_lo && span_hi == rec.span_hi,
                      "cluster strip-span drift for cluster " << cid);
        AIM_CHECK_MSG(rec.span_lo <= s && s <= rec.span_hi,
                      "cluster " << cid << " homed outside its span");
        if (rec.span_lo != rec.span_hi) {
          for (std::int32_t t = rec.span_lo; t <= rec.span_hi; ++t) {
            ++expected_cross[static_cast<std::size_t>(t)];
          }
        }
      }
    }
  }
  // Live-step counts, the per-strip spatial indexes, the border sets and
  // the cross-strip cluster counters must mirror the agent table.
  std::vector<std::map<Step, std::int32_t>> expected_live(
      static_cast<std::size_t>(shards_));
  std::size_t live = 0;
  const Step floor = min_live_step();
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const AgentNode& node = agents_[i];
    const auto id = static_cast<AgentId>(i);
    const std::int32_t home = partition_.shard_of(node.pos);
    if (node.status == AgentStatus::kDone) continue;
    ++live;
    ++expected_live[static_cast<std::size_t>(home)][node.step];
    if (use_index()) {
      const auto& index = shard(home).live_index;
      AIM_CHECK_MSG(index.contains(id),
                    "live agent " << id << " missing from its strip index");
      AIM_CHECK_MSG(index.position(id) == node.pos,
                    "index position drift for agent " << id);
    }
    if (use_graph_index()) {
      AIM_CHECK_MSG(graph_live_index_->contains(id),
                    "live agent " << id << " missing from the graph index");
      AIM_CHECK_MSG(graph_live_index_->position(id) == node.pos,
                    "graph-index position drift for agent " << id);
    }
    if (shards_ > 1) {
      // The registration was taken against some historical floor <= the
      // current one, so it must still contain the current box.
      const auto span = partition_.span_of_box(
          node.pos, params_.blocking_radius(node.step - floor));
      AIM_CHECK_MSG(node.border_lo <= span.lo && span.hi <= node.border_hi,
                    "border registration of agent "
                        << id << " no longer covers its blocking box");
      for (std::int32_t t = 0; t < shards_; ++t) {
        const bool registered = shard(t).border_agents.count(id) > 0;
        const bool expected = node.border_lo != node.border_hi &&
                              t >= node.border_lo && t <= node.border_hi;
        AIM_CHECK_MSG(registered == expected,
                      "border-set drift for agent " << id << " in strip "
                                                    << t);
      }
    }
  }
  std::size_t indexed_total = 0;
  for (std::int32_t s = 0; s < shards_; ++s) {
    AIM_CHECK_MSG(expected_live[static_cast<std::size_t>(s)] ==
                      shard(s).live_steps,
                  "live-step count drift in strip " << s);
    if (use_index()) indexed_total += shard(s).live_index.size();
    if (shards_ > 1) {
      AIM_CHECK_MSG(
          expected_cross[static_cast<std::size_t>(s)] ==
              shard(s).cross_clusters.load(std::memory_order_relaxed),
          "cross-strip cluster counter drift in strip " << s);
    }
  }
  if (use_index()) AIM_CHECK(indexed_total == live);
  if (use_graph_index()) AIM_CHECK(graph_live_index_->size() == live);
}

std::string Scoreboard::to_dot() const {
  std::ostringstream os;
  os << "digraph scoreboard {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const AgentNode& a = agents_[i];
    const char* color = a.status == AgentStatus::kRunning ? "green"
                        : a.blocked_by.empty()            ? "white"
                                                          : "orange";
    os << "  a" << i << " [label=\"" << static_cast<char>('A' + (i % 26))
       << "@" << a.step << "\", style=filled, fillcolor=" << color << "];\n";
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (AgentId w : agents_[i].blocks) {
      os << "  a" << i << " -> a" << w << ";\n";
    }
  }
  // Coupled relationships (same cluster) rendered as double arrows.
  for (std::int32_t s = 0; s < shards_; ++s) {
    for (const auto& [cid, rec] : shard(s).clusters) {
      (void)cid;
      for (std::size_t k = 0; k + 1 < rec.members.size(); ++k) {
        os << "  a" << rec.members[k] << " -> a" << rec.members[k + 1]
           << " [dir=both, color=blue];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace aimetro::core
