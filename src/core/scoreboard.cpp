#include "core/scoreboard.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace aimetro::core {

Scoreboard::Scoreboard(DependencyParams params,
                       std::shared_ptr<const Metric> metric,
                       std::vector<Pos> initial_positions, Step target_step)
    : params_(params), metric_(std::move(metric)), target_step_(target_step) {
  AIM_CHECK(metric_ != nullptr);
  AIM_CHECK(target_step_ >= 0);
  AIM_CHECK(!initial_positions.empty());
  agents_.resize(initial_positions.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    agents_[i].pos = initial_positions[i];
    if (target_step_ == 0) {
      agents_[i].status = AgentStatus::kDone;
      ++done_count_;
    }
  }
  if (target_step_ == 0) return;
  // Initial edges and clustering: everyone idle at step 0, so there are no
  // blockers (no lower step, nobody running); only coupling applies.
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    idle_by_step_[0].insert(static_cast<AgentId>(i));
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i].cluster >= 0) continue;
    const std::int64_t cid = new_cluster(0);
    // Flood-fill the coupled component.
    std::vector<AgentId> frontier{static_cast<AgentId>(i)};
    agents_[i].cluster = cid;
    while (!frontier.empty()) {
      const AgentId u = frontier.back();
      frontier.pop_back();
      clusters_[cid].members.push_back(u);
      for (std::size_t j = 0; j < agents_.size(); ++j) {
        const auto v = static_cast<AgentId>(j);
        if (agents_[j].cluster >= 0) continue;
        if (coupled(metric_->distance(agent(u).pos, agents_[j].pos), 0, 0,
                    params_)) {
          agents_[j].cluster = cid;
          frontier.push_back(v);
        }
      }
    }
    std::sort(clusters_[cid].members.begin(), clusters_[cid].members.end());
    dirty_clusters_.insert(cid);
  }
}

Scoreboard::AgentNode& Scoreboard::agent(AgentId id) {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents_.size());
  return agents_[static_cast<std::size_t>(id)];
}

const Scoreboard::AgentNode& Scoreboard::agent(AgentId id) const {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents_.size());
  return agents_[static_cast<std::size_t>(id)];
}

std::int64_t Scoreboard::new_cluster(Step step) {
  const std::int64_t cid = next_cluster_id_++;
  clusters_[cid].step = step;
  return cid;
}

void Scoreboard::on_blocked_count_change(AgentId id, bool now_blocked) {
  AgentNode& node = agent(id);
  if (node.cluster < 0) return;
  auto it = clusters_.find(node.cluster);
  AIM_CHECK(it != clusters_.end());
  it->second.blocked_members += now_blocked ? 1 : -1;
  AIM_CHECK(it->second.blocked_members >= 0);
  dirty_clusters_.insert(node.cluster);
}

void Scoreboard::add_edge(AgentId blocker, AgentId blocked) {
  AgentNode& a = agent(blocked);
  const bool was_blocked = !a.blocked_by.empty();
  if (!a.blocked_by.insert(blocker).second) return;
  agent(blocker).blocks.insert(blocked);
  ++stats_.edges_added;
  if (!was_blocked) on_blocked_count_change(blocked, true);
}

void Scoreboard::remove_edge(AgentId blocker, AgentId blocked) {
  AgentNode& a = agent(blocked);
  if (a.blocked_by.erase(blocker) == 0) return;
  agent(blocker).blocks.erase(blocked);
  ++stats_.edges_removed;
  if (a.blocked_by.empty()) on_blocked_count_change(blocked, false);
}

void Scoreboard::recompute_blockers(AgentId id) {
  AgentNode& node = agent(id);
  // Drop all existing incoming edges, then rebuild from a full scan. The
  // scan is O(n) with cheap per-pair math; commits are the only writers so
  // total work stays modest even at 1000 agents (see DESIGN.md).
  const std::vector<AgentId> previous(node.blocked_by.begin(),
                                      node.blocked_by.end());
  for (AgentId b : previous) remove_edge(b, id);

  if (node.status == AgentStatus::kDone) return;
  std::uint64_t found = 0;
  for (std::size_t j = 0; j < agents_.size(); ++j) {
    const auto b = static_cast<AgentId>(j);
    if (b == id) continue;
    const AgentNode& other = agents_[j];
    if (other.status == AgentStatus::kDone) continue;
    const double dist = metric_->distance(node.pos, other.pos);
    if (blocks(dist, node.step, other.step,
               other.status == AgentStatus::kRunning, params_)) {
      add_edge(b, id);
      ++found;
    }
  }
  ++blocker_samples_;
  blocker_total_ += found;
}

void Scoreboard::refresh_outgoing(AgentId id) {
  AgentNode& node = agent(id);
  const std::vector<AgentId> watchers(node.blocks.begin(), node.blocks.end());
  for (AgentId w : watchers) {
    const AgentNode& watcher = agent(w);
    const double dist = metric_->distance(watcher.pos, node.pos);
    if (!blocks(dist, watcher.step, node.step,
                node.status == AgentStatus::kRunning, params_)) {
      remove_edge(id, w);
    }
  }
}

void Scoreboard::cluster_in(AgentId id) {
  AgentNode& node = agent(id);
  AIM_CHECK(node.status == AgentStatus::kIdle && node.cluster < 0);
  idle_by_step_[node.step].insert(id);

  // Find idle same-step agents within the coupling radius; `id` may bridge
  // several existing clusters into one.
  std::set<std::int64_t> neighbors_clusters;
  auto it = idle_by_step_.find(node.step);
  for (AgentId other : it->second) {
    if (other == id) continue;
    const AgentNode& o = agent(other);
    if (coupled(metric_->distance(node.pos, o.pos), node.step, o.step,
                params_)) {
      AIM_CHECK(o.cluster >= 0);
      neighbors_clusters.insert(o.cluster);
    }
  }

  std::int64_t home;
  if (neighbors_clusters.empty()) {
    home = new_cluster(node.step);
  } else {
    // Merge everything into the first cluster.
    home = *neighbors_clusters.begin();
    for (auto cit = std::next(neighbors_clusters.begin());
         cit != neighbors_clusters.end(); ++cit) {
      ClusterRec& victim = clusters_.at(*cit);
      ClusterRec& target = clusters_.at(home);
      for (AgentId m : victim.members) {
        agent(m).cluster = home;
        target.members.push_back(m);
      }
      target.blocked_members += victim.blocked_members;
      clusters_.erase(*cit);
      dirty_clusters_.erase(*cit);
    }
  }
  ClusterRec& rec = clusters_.at(home);
  node.cluster = home;
  rec.members.push_back(id);
  std::sort(rec.members.begin(), rec.members.end());
  if (!node.blocked_by.empty()) ++rec.blocked_members;
  dirty_clusters_.insert(home);
}

std::vector<AgentCluster> Scoreboard::pop_ready_clusters() {
  std::vector<AgentCluster> ready;
  for (auto it = dirty_clusters_.begin(); it != dirty_clusters_.end();) {
    const std::int64_t cid = *it;
    auto cit = clusters_.find(cid);
    if (cit == clusters_.end()) {
      it = dirty_clusters_.erase(it);
      continue;
    }
    ClusterRec& rec = cit->second;
    if (rec.blocked_members > 0) {
      // Stays idle; keep it clean until an edge change re-dirties it.
      it = dirty_clusters_.erase(it);
      continue;
    }
    // Dispatch: mark members running, drop from idle structures.
    AgentCluster out;
    out.step = rec.step;
    out.members = rec.members;
    for (AgentId m : out.members) {
      AgentNode& node = agent(m);
      AIM_CHECK(node.status == AgentStatus::kIdle);
      node.status = AgentStatus::kRunning;
      node.cluster = -1;
      idle_by_step_[rec.step].erase(m);
      ++running_count_;
    }
    if (idle_by_step_[rec.step].empty()) idle_by_step_.erase(rec.step);
    clusters_.erase(cit);
    it = dirty_clusters_.erase(it);
    ++stats_.clusters_dispatched;
    stats_.sum_cluster_sizes += static_cast<double>(out.members.size());
    stats_.max_concurrent_running =
        std::max<std::uint64_t>(stats_.max_concurrent_running, running_count_);
    ready.push_back(std::move(out));
  }
  std::sort(ready.begin(), ready.end(),
            [](const AgentCluster& a, const AgentCluster& b) {
              if (a.step != b.step) return a.step < b.step;
              return a.members.front() < b.members.front();
            });
  return ready;
}

void Scoreboard::commit(const std::vector<std::pair<AgentId, Pos>>& moves) {
  AIM_CHECK(!moves.empty());
  ++stats_.commits;
  // Phase 1: advance state.
  for (const auto& [id, pos] : moves) {
    AgentNode& node = agent(id);
    AIM_CHECK_MSG(node.status == AgentStatus::kRunning,
                  "commit of non-running agent " << id);
    AIM_CHECK_MSG(
        metric_->distance(node.pos, pos) <= params_.max_vel + 1e-9,
        "agent " << id << " moved faster than max_vel");
    node.pos = pos;
    node.step += 1;
    AIM_CHECK(node.step <= target_step_);
    --running_count_;
    if (node.step == target_step_) {
      node.status = AgentStatus::kDone;
      ++done_count_;
    } else {
      node.status = AgentStatus::kIdle;
    }
  }
  // Phase 2: re-examine relationships. Outgoing edges of committed agents
  // can only shrink (they advanced / are no longer running); incoming edges
  // must be rebuilt because their step and position changed.
  for (const auto& [id, pos] : moves) {
    (void)pos;
    refresh_outgoing(id);
    recompute_blockers(id);
  }
  // Phase 3: idle clustering for members still in flight toward target.
  for (const auto& [id, pos] : moves) {
    (void)pos;
    AgentNode& node = agent(id);
    if (node.status == AgentStatus::kIdle) cluster_in(id);
    if (node.status == AgentStatus::kDone) {
      // A done agent blocks nobody and is blocked by nobody.
      const std::vector<AgentId> watchers(node.blocks.begin(),
                                          node.blocks.end());
      for (AgentId w : watchers) remove_edge(id, w);
      AIM_CHECK(node.blocked_by.empty());
    }
  }
}

std::vector<AgentId> Scoreboard::blockers_of(AgentId id) const {
  const AgentNode& node = agent(id);
  return {node.blocked_by.begin(), node.blocked_by.end()};
}

std::vector<AgentId> Scoreboard::cluster_of(AgentId id) const {
  const AgentNode& node = agent(id);
  if (node.cluster < 0) return {};
  return clusters_.at(node.cluster).members;
}

Step Scoreboard::min_step() const {
  Step m = target_step_;
  for (const AgentNode& a : agents_) m = std::min(m, a.step);
  return m;
}

double Scoreboard::mean_blockers() const {
  return blocker_samples_
             ? static_cast<double>(blocker_total_) /
                   static_cast<double>(blocker_samples_)
             : 0.0;
}

void Scoreboard::check_invariants() const {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (std::size_t j = i + 1; j < agents_.size(); ++j) {
      const AgentNode& a = agents_[i];
      const AgentNode& b = agents_[j];
      const double dist = metric_->distance(a.pos, b.pos);
      AIM_CHECK_MSG(
          state_valid(dist, a.step, b.step, params_),
          "temporal causality violated between agents "
              << i << "@" << a.step << " and " << j << "@" << b.step
              << " at distance " << dist);
    }
  }
  // Edge symmetry and cluster bookkeeping.
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const auto id = static_cast<AgentId>(i);
    const AgentNode& node = agents_[i];
    for (AgentId b : node.blocked_by) {
      AIM_CHECK(agent(b).blocks.count(id) == 1);
    }
    for (AgentId w : node.blocks) {
      AIM_CHECK(agent(w).blocked_by.count(id) == 1);
    }
    if (node.status == AgentStatus::kIdle) {
      AIM_CHECK(node.cluster >= 0);
      const ClusterRec& rec = clusters_.at(node.cluster);
      AIM_CHECK(std::find(rec.members.begin(), rec.members.end(), id) !=
                rec.members.end());
      AIM_CHECK(rec.step == node.step);
    }
  }
  for (const auto& [cid, rec] : clusters_) {
    (void)cid;
    std::int32_t blocked = 0;
    for (AgentId m : rec.members) {
      AIM_CHECK(agent(m).status == AgentStatus::kIdle);
      if (!agent(m).blocked_by.empty()) ++blocked;
    }
    AIM_CHECK_MSG(blocked == rec.blocked_members,
                  "cluster blocked-count drift: " << blocked << " vs "
                                                  << rec.blocked_members);
  }
}

std::string Scoreboard::to_dot() const {
  std::ostringstream os;
  os << "digraph scoreboard {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const AgentNode& a = agents_[i];
    const char* color = a.status == AgentStatus::kRunning ? "green"
                        : a.blocked_by.empty()            ? "white"
                                                          : "orange";
    os << "  a" << i << " [label=\"" << static_cast<char>('A' + (i % 26))
       << "@" << a.step << "\", style=filled, fillcolor=" << color << "];\n";
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (AgentId w : agents_[i].blocks) {
      os << "  a" << i << " -> a" << w << ";\n";
    }
  }
  // Coupled relationships (same cluster) rendered as double arrows.
  for (const auto& [cid, rec] : clusters_) {
    (void)cid;
    for (std::size_t k = 0; k + 1 < rec.members.size(); ++k) {
      os << "  a" << rec.members[k] << " -> a" << rec.members[k + 1]
         << " [dir=both, color=blue];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace aimetro::core
