#include "core/scoreboard.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace aimetro::core {

namespace {

/// Cell size for the live-agent index: coupling-radius cells keep the
/// common probes (coupling, small-lag blocking) within a 3x3 cell box
/// while staying coarse enough that buckets aren't degenerate.
double index_cell_size(const DependencyParams& params) {
  return std::max(1.0, params.coupling_radius());
}

}  // namespace

Scoreboard::Scoreboard(DependencyParams params,
                       std::shared_ptr<const Metric> metric,
                       std::vector<Pos> initial_positions, Step target_step,
                       ScanMode mode)
    : params_(params),
      metric_(std::move(metric)),
      target_step_(target_step),
      mode_(mode),
      live_index_(index_cell_size(params)) {
  AIM_CHECK(metric_ != nullptr);
  AIM_CHECK(target_step_ >= 0);
  AIM_CHECK(!initial_positions.empty());
#ifdef AIMETRO_SCOREBOARD_NO_BRUTE
  AIM_CHECK_MSG(mode_ != ScanMode::kBruteForce,
                "brute-force reference path compiled out "
                "(AIMETRO_SCOREBOARD_NO_BRUTE)");
#endif
  indexable_ = metric_->lower_bounded_by_chebyshev();
  if (mode_ == ScanMode::kIndexed && !indexable_) {
    // Graph metrics can't be probed with Chebyshev boxes, but they expose
    // their adjacency: live agents go into a GraphIndex instead, and every
    // probe site walks a hop-bounded ball (an exact metric ball — hop
    // distances are integral). A metric with neither property runs the
    // full-scan path even in indexed mode.
    if (const auto* adjacency = metric_->graph_adjacency()) {
      graph_live_index_ = std::make_unique<world::GraphIndex>(adjacency);
    }
  }
  agents_.resize(initial_positions.size());
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    agents_[i].pos = initial_positions[i];
    if (target_step_ == 0) {
      agents_[i].status = AgentStatus::kDone;
      ++done_count_;
    }
  }
  if (target_step_ == 0) return;
  live_steps_[0] = static_cast<std::int32_t>(agents_.size());
  if (use_index() || use_graph_index()) {
    std::vector<std::pair<AgentId, Pos>> items;
    items.reserve(agents_.size());
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      items.emplace_back(static_cast<AgentId>(i), agents_[i].pos);
    }
    if (use_index()) {
      live_index_.bulk_insert(items);
    } else {
      graph_live_index_->bulk_insert(items);
    }
  }
  // Initial edges and clustering: everyone idle at step 0, so there are no
  // blockers (no lower step, nobody running); only coupling applies. The
  // flood-fill expands each component through coupling-radius box probes
  // (indexed) or full scans (brute) — the components, and therefore the
  // cluster ids assigned in ascending-smallest-member order, are identical
  // either way.
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    idle_by_step_[0].insert(static_cast<AgentId>(i));
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i].cluster >= 0) continue;
    const std::int64_t cid = new_cluster(0);
    std::vector<AgentId> frontier{static_cast<AgentId>(i)};
    agents_[i].cluster = cid;
    while (!frontier.empty()) {
      const AgentId u = frontier.back();
      frontier.pop_back();
      clusters_[cid].members.push_back(u);
      auto consider = [&](AgentId v) {
        AgentNode& node = agent(v);
        if (node.cluster >= 0) return;
        if (coupled(metric_->distance(agent(u).pos, node.pos), 0, 0,
                    params_)) {
          node.cluster = cid;
          frontier.push_back(v);
        }
      };
      if (use_index() || use_graph_index()) {
        probe_into(agent(u).pos, params_.coupling_radius());
        for (AgentId v : probe_buf_) consider(v);
      } else {
        for (std::size_t j = 0; j < agents_.size(); ++j) {
          consider(static_cast<AgentId>(j));
        }
      }
    }
    std::sort(clusters_[cid].members.begin(), clusters_[cid].members.end());
    dirty_clusters_.insert(cid);
  }
}

Scoreboard::AgentNode& Scoreboard::agent(AgentId id) {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents_.size());
  return agents_[static_cast<std::size_t>(id)];
}

const Scoreboard::AgentNode& Scoreboard::agent(AgentId id) const {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents_.size());
  return agents_[static_cast<std::size_t>(id)];
}

void Scoreboard::probe_into(const Pos& center, double radius) {
  if (use_index()) {
    live_index_.query_box_into(center, radius, &probe_buf_);
  } else {
    graph_live_index_->query_ball_into(center, radius, &probe_buf_);
  }
}

Step Scoreboard::min_live_step() const {
  return live_steps_.empty() ? target_step_ : live_steps_.begin()->first;
}

void Scoreboard::live_step_advance(Step from, Step to, bool now_done) {
  auto it = live_steps_.find(from);
  AIM_CHECK(it != live_steps_.end() && it->second > 0);
  if (--it->second == 0) live_steps_.erase(it);
  if (!now_done) ++live_steps_[to];
}

std::int64_t Scoreboard::new_cluster(Step step) {
  const std::int64_t cid = next_cluster_id_++;
  clusters_[cid].step = step;
  return cid;
}

void Scoreboard::on_blocked_count_change(AgentId id, bool now_blocked) {
  AgentNode& node = agent(id);
  if (node.cluster < 0) return;
  auto it = clusters_.find(node.cluster);
  AIM_CHECK(it != clusters_.end());
  it->second.blocked_members += now_blocked ? 1 : -1;
  AIM_CHECK(it->second.blocked_members >= 0);
  dirty_clusters_.insert(node.cluster);
}

void Scoreboard::add_edge(AgentId blocker, AgentId blocked) {
  AgentNode& a = agent(blocked);
  const bool was_blocked = !a.blocked_by.empty();
  if (!a.blocked_by.insert(blocker).second) return;
  agent(blocker).blocks.insert(blocked);
  ++stats_.edges_added;
  if (!was_blocked) on_blocked_count_change(blocked, true);
}

void Scoreboard::remove_edge(AgentId blocker, AgentId blocked) {
  AgentNode& a = agent(blocked);
  if (a.blocked_by.erase(blocker) == 0) return;
  agent(blocker).blocks.erase(blocked);
  ++stats_.edges_removed;
  if (a.blocked_by.empty()) on_blocked_count_change(blocked, false);
}

void Scoreboard::recompute_blockers(AgentId id) {
  AgentNode& node = agent(id);
  // Drop all existing incoming edges, then rebuild. Indexed mode probes
  // the largest radius any live agent could block from: blocking_radius(
  // own step - min live step). Any blocker B at lag L satisfies dist <=
  // blocking_radius(L) <= blocking_radius(max lag), and every such metric
  // ball is inside the probe — a Chebyshev box for metrics with the
  // Chebyshev lower bound, a hop-bounded BFS ball for graph metrics — so
  // the probe is a superset of the brute-force candidate set. Candidates
  // arrive sorted by id — the same order the full scan visits them — so
  // edge bookkeeping is byte-identical (see docs/ARCHITECTURE.md,
  // "Dependency core").
  const std::vector<AgentId> previous(node.blocked_by.begin(),
                                      node.blocked_by.end());
  for (AgentId b : previous) remove_edge(b, id);

  if (node.status == AgentStatus::kDone) return;
  std::uint64_t found = 0;
  auto consider = [&](AgentId b) {
    if (b == id) return;
    const AgentNode& other = agent(b);
    if (other.status == AgentStatus::kDone) return;
    const double dist = metric_->distance(node.pos, other.pos);
    if (blocks(dist, node.step, other.step,
               other.status == AgentStatus::kRunning, params_)) {
      add_edge(b, id);
      ++found;
    }
  };
  if (use_index() || use_graph_index()) {
    const Step max_lag = node.step - min_live_step();
    AIM_CHECK(max_lag >= 0);
    probe_into(node.pos, params_.blocking_radius(max_lag));
    for (AgentId b : probe_buf_) consider(b);
  } else {
    for (std::size_t j = 0; j < agents_.size(); ++j) {
      consider(static_cast<AgentId>(j));
    }
  }
  ++blocker_samples_;
  blocker_total_ += found;
}

void Scoreboard::refresh_outgoing(AgentId id) {
  AgentNode& node = agent(id);
  const std::vector<AgentId> watchers(node.blocks.begin(), node.blocks.end());
  for (AgentId w : watchers) {
    const AgentNode& watcher = agent(w);
    const double dist = metric_->distance(watcher.pos, node.pos);
    if (!blocks(dist, watcher.step, node.step,
                node.status == AgentStatus::kRunning, params_)) {
      remove_edge(id, w);
    }
  }
}

void Scoreboard::cluster_in(AgentId id) {
  AgentNode& node = agent(id);
  AIM_CHECK(node.status == AgentStatus::kIdle && node.cluster < 0);
  idle_by_step_[node.step].insert(id);

  // Find idle same-step agents within the coupling radius; `id` may bridge
  // several existing clusters into one. Indexed mode probes a
  // coupling-radius box and filters to idle same-step agents — the same
  // candidates the brute path reads out of idle_by_step_.
  std::set<std::int64_t> neighbors_clusters;
  auto consider = [&](AgentId other) {
    if (other == id) return;
    const AgentNode& o = agent(other);
    // Mid-commit, sibling members can already be idle but not yet
    // clustered (their own cluster_in hasn't run; they are not in
    // idle_by_step_ yet). Skip them — they will see us when they cluster
    // in — so both scan modes read the same candidate set.
    if (o.status != AgentStatus::kIdle || o.cluster < 0) return;
    if (coupled(metric_->distance(node.pos, o.pos), node.step, o.step,
                params_)) {
      neighbors_clusters.insert(o.cluster);
    }
  };
  if (use_index() || use_graph_index()) {
    probe_into(node.pos, params_.coupling_radius());
    for (AgentId other : probe_buf_) consider(other);
  } else {
    for (AgentId other : idle_by_step_.at(node.step)) consider(other);
  }

  std::int64_t home;
  if (neighbors_clusters.empty()) {
    home = new_cluster(node.step);
  } else {
    // Merge everything into the first cluster.
    home = *neighbors_clusters.begin();
    for (auto cit = std::next(neighbors_clusters.begin());
         cit != neighbors_clusters.end(); ++cit) {
      ClusterRec& victim = clusters_.at(*cit);
      ClusterRec& target = clusters_.at(home);
      for (AgentId m : victim.members) {
        agent(m).cluster = home;
        target.members.push_back(m);
      }
      target.blocked_members += victim.blocked_members;
      clusters_.erase(*cit);
      dirty_clusters_.erase(*cit);
    }
  }
  ClusterRec& rec = clusters_.at(home);
  node.cluster = home;
  rec.members.push_back(id);
  std::sort(rec.members.begin(), rec.members.end());
  if (!node.blocked_by.empty()) ++rec.blocked_members;
  dirty_clusters_.insert(home);
}

std::vector<AgentCluster> Scoreboard::pop_ready_clusters() {
  std::vector<AgentCluster> ready;
  for (auto it = dirty_clusters_.begin(); it != dirty_clusters_.end();) {
    const std::int64_t cid = *it;
    auto cit = clusters_.find(cid);
    if (cit == clusters_.end()) {
      it = dirty_clusters_.erase(it);
      continue;
    }
    ClusterRec& rec = cit->second;
    if (rec.blocked_members > 0) {
      // Stays idle; keep it clean until an edge change re-dirties it.
      it = dirty_clusters_.erase(it);
      continue;
    }
    // Dispatch: mark members running, drop from idle structures.
    AgentCluster out;
    out.step = rec.step;
    out.members = rec.members;
    for (AgentId m : out.members) {
      AgentNode& node = agent(m);
      AIM_CHECK(node.status == AgentStatus::kIdle);
      node.status = AgentStatus::kRunning;
      node.cluster = -1;
      idle_by_step_[rec.step].erase(m);
      ++running_count_;
    }
    if (idle_by_step_[rec.step].empty()) idle_by_step_.erase(rec.step);
    clusters_.erase(cit);
    it = dirty_clusters_.erase(it);
    ++stats_.clusters_dispatched;
    stats_.sum_cluster_sizes += static_cast<double>(out.members.size());
    stats_.max_concurrent_running =
        std::max<std::uint64_t>(stats_.max_concurrent_running, running_count_);
    ready.push_back(std::move(out));
  }
  std::sort(ready.begin(), ready.end(),
            [](const AgentCluster& a, const AgentCluster& b) {
              if (a.step != b.step) return a.step < b.step;
              return a.members.front() < b.members.front();
            });
  return ready;
}

void Scoreboard::commit(const std::vector<std::pair<AgentId, Pos>>& moves) {
  AIM_CHECK(!moves.empty());
  ++stats_.commits;
  // Phase 1: advance state (agent table, live-step counts, live index).
  for (const auto& [id, pos] : moves) {
    AgentNode& node = agent(id);
    AIM_CHECK_MSG(node.status == AgentStatus::kRunning,
                  "commit of non-running agent " << id);
    AIM_CHECK_MSG(
        metric_->distance(node.pos, pos) <= params_.max_vel + 1e-9,
        "agent " << id << " moved faster than max_vel");
    node.pos = pos;
    node.step += 1;
    AIM_CHECK(node.step <= target_step_);
    --running_count_;
    const bool now_done = node.step == target_step_;
    live_step_advance(node.step - 1, node.step, now_done);
    if (now_done) {
      node.status = AgentStatus::kDone;
      ++done_count_;
      if (use_index()) live_index_.remove(id);
      if (use_graph_index()) graph_live_index_->remove(id);
    } else {
      node.status = AgentStatus::kIdle;
      if (use_index()) live_index_.update(id, pos);
      if (use_graph_index()) graph_live_index_->update(id, pos);
    }
  }
  // Phase 2: re-examine relationships. Outgoing edges of committed agents
  // can only shrink (they advanced / are no longer running); incoming edges
  // must be rebuilt because their step and position changed.
  for (const auto& [id, pos] : moves) {
    (void)pos;
    refresh_outgoing(id);
    recompute_blockers(id);
  }
  // Phase 3: idle clustering for members still in flight toward target.
  for (const auto& [id, pos] : moves) {
    (void)pos;
    AgentNode& node = agent(id);
    if (node.status == AgentStatus::kIdle) cluster_in(id);
    if (node.status == AgentStatus::kDone) {
      // A done agent blocks nobody and is blocked by nobody.
      const std::vector<AgentId> watchers(node.blocks.begin(),
                                          node.blocks.end());
      for (AgentId w : watchers) remove_edge(id, w);
      AIM_CHECK(node.blocked_by.empty());
    }
  }
}

std::vector<AgentId> Scoreboard::blockers_of(AgentId id) const {
  const AgentNode& node = agent(id);
  return {node.blocked_by.begin(), node.blocked_by.end()};
}

std::vector<AgentId> Scoreboard::cluster_of(AgentId id) const {
  const AgentNode& node = agent(id);
  if (node.cluster < 0) return {};
  return clusters_.at(node.cluster).members;
}

Step Scoreboard::min_step() const { return min_live_step(); }

double Scoreboard::mean_blockers() const {
  return blocker_samples_
             ? static_cast<double>(blocker_total_) /
                   static_cast<double>(blocker_samples_)
             : 0.0;
}

void Scoreboard::check_invariants() const {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (std::size_t j = i + 1; j < agents_.size(); ++j) {
      const AgentNode& a = agents_[i];
      const AgentNode& b = agents_[j];
      const double dist = metric_->distance(a.pos, b.pos);
      AIM_CHECK_MSG(
          state_valid(dist, a.step, b.step, params_),
          "temporal causality violated between agents "
              << i << "@" << a.step << " and " << j << "@" << b.step
              << " at distance " << dist);
    }
  }
  // Edge symmetry and cluster bookkeeping.
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const auto id = static_cast<AgentId>(i);
    const AgentNode& node = agents_[i];
    for (AgentId b : node.blocked_by) {
      AIM_CHECK(agent(b).blocks.count(id) == 1);
    }
    for (AgentId w : node.blocks) {
      AIM_CHECK(agent(w).blocked_by.count(id) == 1);
    }
    if (node.status == AgentStatus::kIdle) {
      AIM_CHECK(node.cluster >= 0);
      const ClusterRec& rec = clusters_.at(node.cluster);
      AIM_CHECK(std::find(rec.members.begin(), rec.members.end(), id) !=
                rec.members.end());
      AIM_CHECK(rec.step == node.step);
    }
  }
  for (const auto& [cid, rec] : clusters_) {
    (void)cid;
    std::int32_t blocked = 0;
    for (AgentId m : rec.members) {
      AIM_CHECK(agent(m).status == AgentStatus::kIdle);
      if (!agent(m).blocked_by.empty()) ++blocked;
    }
    AIM_CHECK_MSG(blocked == rec.blocked_members,
                  "cluster blocked-count drift: " << blocked << " vs "
                                                  << rec.blocked_members);
  }
  // Live-step counts and the spatial index must mirror the agent table.
  std::map<Step, std::int32_t> expected_live;
  std::size_t live = 0;
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const AgentNode& node = agents_[i];
    if (node.status == AgentStatus::kDone) continue;
    ++live;
    ++expected_live[node.step];
    if (use_index()) {
      const auto id = static_cast<AgentId>(i);
      AIM_CHECK_MSG(live_index_.contains(id),
                    "live agent " << id << " missing from the index");
      AIM_CHECK_MSG(live_index_.position(id) == node.pos,
                    "index position drift for agent " << id);
    }
    if (use_graph_index()) {
      const auto id = static_cast<AgentId>(i);
      AIM_CHECK_MSG(graph_live_index_->contains(id),
                    "live agent " << id << " missing from the graph index");
      AIM_CHECK_MSG(graph_live_index_->position(id) == node.pos,
                    "graph-index position drift for agent " << id);
    }
  }
  AIM_CHECK_MSG(expected_live == live_steps_, "live-step count drift");
  if (use_index()) AIM_CHECK(live_index_.size() == live);
  if (use_graph_index()) AIM_CHECK(graph_live_index_->size() == live);
}

std::string Scoreboard::to_dot() const {
  std::ostringstream os;
  os << "digraph scoreboard {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const AgentNode& a = agents_[i];
    const char* color = a.status == AgentStatus::kRunning ? "green"
                        : a.blocked_by.empty()            ? "white"
                                                          : "orange";
    os << "  a" << i << " [label=\"" << static_cast<char>('A' + (i % 26))
       << "@" << a.step << "\", style=filled, fillcolor=" << color << "];\n";
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    for (AgentId w : agents_[i].blocks) {
      os << "  a" << i << " -> a" << w << ";\n";
    }
  }
  // Coupled relationships (same cluster) rendered as double arrows.
  for (const auto& [cid, rec] : clusters_) {
    (void)cid;
    for (std::size_t k = 0; k + 1 < rec.members.size(); ++k) {
      os << "  a" << rec.members[k] << " -> a" << rec.members[k + 1]
         << " [dir=both, color=blue];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace aimetro::core
