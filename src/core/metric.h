// Distance metrics for the dependency rules.
//
// The paper derives its rules for Euclidean space but notes they "can
// extend to non-Euclidean spaces, such as social networks" (§6): the only
// property the derivation needs is the triangle-style bound
// dist(A', B) >= dist(A, B) - max_vel when A moves at most max_vel per
// step. Any metric with that property plugs in here; GraphMetric models a
// social-network world where distance is hop count and "movement" is
// changing one's neighborhood by a bounded amount per step.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

namespace aimetro::core {

class Metric {
 public:
  virtual ~Metric() = default;
  virtual double distance(const Pos& a, const Pos& b) const = 0;
  virtual std::string name() const = 0;

  /// True when distance(a, b) >= chebyshev(a, b) for every pair, i.e. a
  /// Chebyshev box of radius r around `a` is a superset of the metric
  /// ball of radius r. This is the property that lets the scoreboard
  /// answer "who is within r of a" with a world::SpatialIndex box probe;
  /// metrics without it (GraphMetric: positions encode node ids, not
  /// coordinates) use the graph index below, or fall back to full scans.
  virtual bool lower_bounded_by_chebyshev() const { return false; }

  /// Non-null when this metric is hop count over a fixed undirected graph
  /// whose positions encode node ids in `Pos::x`. The scoreboard uses the
  /// adjacency to build a world::GraphIndex and answer "who is within r of
  /// a" with a hop-bounded BFS ball probe (hop distances are integral, so
  /// the depth-floor(r) ball IS the metric ball — see "Dependency core" in
  /// docs/ARCHITECTURE.md). The pointer must stay valid for the metric's
  /// lifetime.
  virtual const std::vector<std::vector<std::int32_t>>* graph_adjacency()
      const {
    return nullptr;
  }
};

class EuclideanMetric final : public Metric {
 public:
  double distance(const Pos& a, const Pos& b) const override {
    return euclidean(a, b);
  }
  std::string name() const override { return "euclidean"; }
  bool lower_bounded_by_chebyshev() const override { return true; }
};

class ManhattanMetric final : public Metric {
 public:
  double distance(const Pos& a, const Pos& b) const override {
    return manhattan(a, b);
  }
  std::string name() const override { return "manhattan"; }
  bool lower_bounded_by_chebyshev() const override { return true; }
};

class ChebyshevMetric final : public Metric {
 public:
  double distance(const Pos& a, const Pos& b) const override {
    return chebyshev(a, b);
  }
  std::string name() const override { return "chebyshev"; }
  bool lower_bounded_by_chebyshev() const override { return true; }
};

/// Hop-count metric over a fixed undirected graph (e.g. a social network).
/// Positions encode node ids in `Pos::x` (y ignored). Distances between
/// disconnected nodes are a large finite value so every pair is comparable.
///
/// Distances come from per-source BFS rows expanded lazily, level by
/// level, only until the queried target is labeled: scoreboard queries ask
/// about candidates a few hops out, so rows stay partially expanded and a
/// 10k-node world never materializes the all-pairs table (which would be
/// O(N^2) memory). Rows are cached up to a bounded budget and rebuilt on
/// demand after a flush. Thread-safe: the cache sits behind its own lock
/// (uncontended in practice — both backends call the metric under their
/// scheduling locks).
class GraphMetric final : public Metric {
 public:
  /// `adjacency[i]` lists the neighbors of node i (undirected: j in
  /// adjacency[i] must imply i in adjacency[j] for distances to be
  /// symmetric).
  explicit GraphMetric(std::vector<std::vector<std::int32_t>> adjacency);

  double distance(const Pos& a, const Pos& b) const override;
  std::string name() const override { return "graph"; }
  const std::vector<std::vector<std::int32_t>>* graph_adjacency()
      const override {
    return &adjacency_;
  }

  std::int32_t node_count() const { return n_; }
  static constexpr double kDisconnected = 1e9;

 private:
  /// BFS depth label. 32 bits: a shortest path visits each node at most
  /// once, so any node count an int32 id can address fits (social_net10000
  /// runs a 200k-node graph, which overflowed the original uint16 labels).
  using Depth = std::uint32_t;

  /// One source's BFS state: hop distances for labeled nodes, the frontier
  /// at depth `depth_done`, expandable one level at a time.
  struct BfsRow {
    std::vector<Depth> dist;             // kUnreached until labeled
    std::vector<std::int32_t> frontier;  // nodes at depth == depth_done
    Depth depth_done = 0;
  };
  static constexpr Depth kUnreached = 0xFFFFFFFFu;
  /// Cache flush budget in row bytes (~32 MB): at 10k nodes that is ~800
  /// rows, at 200k nodes ~40 — the cache is rebuilt from scratch when the
  /// budget is hit, never grown past it.
  static constexpr std::size_t kMaxCachedRowBytes = 32u << 20;

  std::size_t max_cached_rows() const {
    const std::size_t row_bytes =
        static_cast<std::size_t>(n_) * sizeof(Depth);
    return std::max<std::size_t>(1, kMaxCachedRowBytes / row_bytes);
  }

  BfsRow& row_for(std::int32_t src) const REQUIRES(cache_mutex_);

  std::int32_t n_;
  std::vector<std::vector<std::int32_t>> adjacency_;
  mutable common::Mutex cache_mutex_{"metric.graph"};
  mutable std::unordered_map<std::int32_t, BfsRow> rows_
      GUARDED_BY(cache_mutex_);
};

std::shared_ptr<const Metric> make_euclidean();

}  // namespace aimetro::core
