// Distance metrics for the dependency rules.
//
// The paper derives its rules for Euclidean space but notes they "can
// extend to non-Euclidean spaces, such as social networks" (§6): the only
// property the derivation needs is the triangle-style bound
// dist(A', B) >= dist(A, B) - max_vel when A moves at most max_vel per
// step. Any metric with that property plugs in here; GraphMetric models a
// social-network world where distance is hop count and "movement" is
// changing one's neighborhood by a bounded amount per step.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace aimetro::core {

class Metric {
 public:
  virtual ~Metric() = default;
  virtual double distance(const Pos& a, const Pos& b) const = 0;
  virtual std::string name() const = 0;

  /// True when distance(a, b) >= chebyshev(a, b) for every pair, i.e. a
  /// Chebyshev box of radius r around `a` is a superset of the metric
  /// ball of radius r. This is the property that lets the scoreboard
  /// answer "who is within r of a" with a world::SpatialIndex box probe;
  /// metrics without it (GraphMetric: positions encode node ids, not
  /// coordinates) fall back to the full scan.
  virtual bool lower_bounded_by_chebyshev() const { return false; }
};

class EuclideanMetric final : public Metric {
 public:
  double distance(const Pos& a, const Pos& b) const override {
    return euclidean(a, b);
  }
  std::string name() const override { return "euclidean"; }
  bool lower_bounded_by_chebyshev() const override { return true; }
};

class ManhattanMetric final : public Metric {
 public:
  double distance(const Pos& a, const Pos& b) const override {
    return manhattan(a, b);
  }
  std::string name() const override { return "manhattan"; }
  bool lower_bounded_by_chebyshev() const override { return true; }
};

class ChebyshevMetric final : public Metric {
 public:
  double distance(const Pos& a, const Pos& b) const override {
    return chebyshev(a, b);
  }
  std::string name() const override { return "chebyshev"; }
  bool lower_bounded_by_chebyshev() const override { return true; }
};

/// Hop-count metric over a fixed undirected graph (e.g. a social network).
/// Positions encode node ids in `Pos::x` (y ignored). Distances between
/// disconnected nodes are a large finite value so every pair is comparable.
class GraphMetric final : public Metric {
 public:
  /// `adjacency[i]` lists the neighbors of node i.
  explicit GraphMetric(const std::vector<std::vector<std::int32_t>>& adjacency);

  double distance(const Pos& a, const Pos& b) const override;
  std::string name() const override { return "graph"; }

  std::int32_t node_count() const { return n_; }
  static constexpr double kDisconnected = 1e9;

 private:
  std::int32_t n_;
  std::vector<std::vector<double>> dist_;  // all-pairs BFS hop counts
};

std::shared_ptr<const Metric> make_euclidean();

}  // namespace aimetro::core
