// Mutable simulation state: agent positions, object occupancy, and the
// developer-visible write-conflict resolution the paper delegates to
// "developer-specified rules" (§3.4) — e.g., two agents both trying to use
// the bathroom, where only one can step in.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "world/grid_map.h"
#include "world/spatial_index.h"

namespace aimetro::world {

/// An agent's intended effects for one step: optionally move and/or claim an
/// object. Produced by Agent::proceed in the live (gym) mode.
struct StepIntent {
  AgentId agent = -1;
  std::optional<Tile> move_to;              // adjacent tile or stay
  std::optional<std::string> claim_object;  // object to occupy this step
  std::optional<std::string> emit_event;    // event text written at the tile
};

/// Outcome of conflict resolution for one agent.
struct StepOutcome {
  AgentId agent = -1;
  Tile tile;               // final position after the step
  bool move_ok = true;     // false if the move lost a conflict
  bool claim_ok = true;    // false if the object claim lost a conflict
};

/// A timestamped event visible to nearby agents (speech, object changes).
struct WorldEvent {
  Step step = 0;
  Tile tile;
  AgentId source = -1;
  std::string text;
};

class WorldState {
 public:
  WorldState(const GridMap* map, std::vector<Tile> initial_tiles);

  const GridMap& map() const { return *map_; }
  std::size_t agent_count() const { return tiles_.size(); }

  Tile tile_of(AgentId id) const;
  Pos pos_of(AgentId id) const { return tile_of(id).center(); }
  /// Direct position write (used by trace replay where movement is given).
  void set_tile(AgentId id, Tile t);

  /// Apply a batch of intents from one cluster atomically with
  /// deterministic conflict resolution:
  ///  - two agents moving onto the same tile: lowest id wins, others stay;
  ///  - moving onto a tile currently occupied by a non-moving agent: denied;
  ///  - object claims: lowest id wins, object becomes occupied this step.
  /// Events are appended to the event log.
  std::vector<StepOutcome> resolve_conflict_and_commit(
      Step step, const std::vector<StepIntent>& intents);

  /// Agents within Euclidean `radius` of `center` (sorted by id).
  std::vector<AgentId> agents_within(Pos center, double radius) const;

  /// Events within `radius` of `center` emitted at steps in
  /// [min_step, max_step].
  std::vector<WorldEvent> events_near(Pos center, double radius, Step min_step,
                                      Step max_step) const;

  const std::string* object_holder(const std::string& object) const;
  std::size_t event_count() const { return events_.size(); }

  /// Order-insensitive digest over agent positions + object occupancy +
  /// event log; equal digests across two runs mean the simulations agree.
  std::uint64_t state_hash() const;

  /// Concurrency protocol for the threaded runtime: readers (observation
  /// building) take shared locks, resolve_conflict_and_commit callers take
  /// the unique lock. WorldState itself does not lock — callers do —
  /// so single-threaded users pay nothing.
  std::shared_mutex& mutex() const { return mutex_; }

 private:
  mutable std::shared_mutex mutex_;
  const GridMap* map_;
  std::vector<Tile> tiles_;
  SpatialIndex index_;
  std::unordered_map<std::string, std::string> object_holders_;
  std::vector<WorldEvent> events_;
};

}  // namespace aimetro::world
