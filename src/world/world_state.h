// Mutable simulation state: agent positions, object occupancy, and the
// developer-visible write-conflict resolution the paper delegates to
// "developer-specified rules" (§3.4) — e.g., two agents both trying to use
// the bathroom, where only one can step in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "world/grid_map.h"
#include "world/spatial_index.h"

namespace aimetro::world {

/// An agent's intended effects for one step: optionally move and/or claim an
/// object. Produced by Agent::proceed in the live (gym) mode.
struct StepIntent {
  AgentId agent = -1;
  std::optional<Tile> move_to;              // adjacent tile or stay
  std::optional<std::string> claim_object;  // object to occupy this step
  std::optional<std::string> emit_event;    // event text written at the tile
};

/// Outcome of conflict resolution for one agent.
struct StepOutcome {
  AgentId agent = -1;
  Tile tile;               // final position after the step
  bool move_ok = true;     // false if the move lost a conflict
  bool claim_ok = true;    // false if the object claim lost a conflict
};

/// A timestamped event visible to nearby agents (speech, object changes).
struct WorldEvent {
  Step step = 0;
  Tile tile;
  AgentId source = -1;
  std::string text;
};

class WorldState {
 public:
  /// Grid world (graph_adjacency == nullptr): tiles are exclusive, moves
  /// are Chebyshev-1 steps onto walkable tiles.
  ///
  /// Graph world (graph_adjacency != nullptr, non-owning, must outlive the
  /// WorldState): positions encode node ids in Tile::x (y == 0) and `map`
  /// is the node-count-by-1 substrate used for bounds checks. A legal move
  /// stays put or follows one edge, and nodes are venues, not tiles — they
  /// hold crowds, so moves never conflict and the exclusive-occupancy rule
  /// does not apply.
  WorldState(const GridMap* map, std::vector<Tile> initial_tiles,
             const std::vector<std::vector<std::int32_t>>* graph_adjacency =
                 nullptr);

  const GridMap& map() const { return *map_; }
  bool graph_world() const { return graph_adjacency_ != nullptr; }
  /// Fixed at construction (agents are never added or removed), so no lock
  /// is needed to read it.
  std::size_t agent_count() const { return agent_count_; }

  Tile tile_of(AgentId id) const REQUIRES_SHARED(mutex_);
  Pos pos_of(AgentId id) const REQUIRES_SHARED(mutex_) {
    return tile_of(id).center();
  }
  /// Direct position write (used by trace replay where movement is given).
  void set_tile(AgentId id, Tile t) REQUIRES(mutex_);

  /// Apply a batch of intents from one cluster atomically with
  /// deterministic conflict resolution:
  ///  - two agents moving onto the same tile: lowest id wins, others stay;
  ///  - moving onto a tile currently occupied by a non-moving agent: denied;
  ///  - object claims: lowest id wins, object becomes occupied this step.
  /// Events are appended to the event log.
  std::vector<StepOutcome> resolve_conflict_and_commit(
      Step step, const std::vector<StepIntent>& intents) REQUIRES(mutex_);

  /// Agents within Euclidean `radius` of `center` (sorted by id).
  std::vector<AgentId> agents_within(Pos center, double radius) const
      REQUIRES_SHARED(mutex_);

  /// Events within `radius` of `center` emitted at steps in
  /// [min_step, max_step].
  std::vector<WorldEvent> events_near(Pos center, double radius, Step min_step,
                                      Step max_step) const
      REQUIRES_SHARED(mutex_);

  const std::string* object_holder(const std::string& object) const
      REQUIRES_SHARED(mutex_);
  std::size_t event_count() const REQUIRES_SHARED(mutex_) {
    return events_.size();
  }

  /// Order-insensitive digest over agent positions + object occupancy +
  /// event log; equal digests across two runs mean the simulations agree.
  std::uint64_t state_hash() const REQUIRES_SHARED(mutex_);

  /// Concurrency protocol for the threaded runtime: readers (observation
  /// building) take ReaderLock, resolve_conflict_and_commit callers take
  /// WriterLock. WorldState itself does not lock — callers do — so
  /// single-threaded users pay one uncontended acquisition at most.
  common::SharedMutex& mutex() const RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

 private:
  mutable common::SharedMutex mutex_{"world"};
  const GridMap* map_;
  /// Immutable after construction (like map_): null for grid worlds.
  const std::vector<std::vector<std::int32_t>>* graph_adjacency_ = nullptr;
  std::size_t agent_count_ = 0;  // immutable after construction
  std::vector<Tile> tiles_ GUARDED_BY(mutex_);
  SpatialIndex index_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::string> object_holders_
      GUARDED_BY(mutex_);
  std::vector<WorldEvent> events_ GUARDED_BY(mutex_);
};

}  // namespace aimetro::world
