// Adjacency-bucket index over agent positions on a fixed undirected graph
// — the graph-metric sibling of world::SpatialIndex.
//
// SpatialIndex answers "who is within r of here" for Chebyshev-bounded
// metrics with a uniform-grid box probe; GraphIndex answers the same
// question for hop-count metrics with a bounded BFS: each graph node keeps
// a bucket of the agents standing on it, and query_ball_into walks the
// graph outward floor(r) levels, collecting every bucket it touches. Hop
// distances are integral, so the depth-floor(r) ball is not merely a
// superset of the metric ball — it IS the metric ball; callers still apply
// their exact predicates on the candidates, exactly as they do with box
// probes.
//
// Hot-path design mirrors SpatialIndex: query_ball_into fills a
// caller-owned buffer sorted by id (the order the historical full scan
// visited agents, which is what keeps indexed scoreboard bookkeeping
// byte-identical to brute force), and the BFS scratch (epoch-stamped
// visited marks, frontier vectors) is reused across calls so steady-state
// queries allocate nothing. Not internally synchronized — callers
// serialize access, as the scoreboard's owners already do.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace aimetro::world {

class GraphIndex {
 public:
  /// `adjacency` is non-owning and must outlive the index;
  /// (*adjacency)[i] lists the neighbors of node i. Positions encode node
  /// ids in `Pos::x` (y ignored), matching core::GraphMetric.
  explicit GraphIndex(const std::vector<std::vector<std::int32_t>>* adjacency);

  void insert(AgentId id, Pos pos);
  /// Insert every (id, pos) pair at once (ids must be distinct and not
  /// yet indexed).
  void bulk_insert(const std::vector<std::pair<AgentId, Pos>>& items);
  /// No-op if absent.
  void remove(AgentId id);
  /// Insert-or-move.
  void update(AgentId id, Pos pos);
  bool contains(AgentId id) const { return positions_.count(id) > 0; }
  Pos position(AgentId id) const;
  std::size_t size() const { return positions_.size(); }
  std::int32_t node_count() const {
    return static_cast<std::int32_t>(adjacency_->size());
  }

  /// All agents within floor(hop_radius) hops of `center`'s node, sorted
  /// by id, into a caller-owned buffer (cleared first; keeps its capacity
  /// across calls).
  void query_ball_into(Pos center, double hop_radius,
                       std::vector<AgentId>* out) const;

  /// Allocating convenience form of query_ball_into.
  std::vector<AgentId> query_ball(Pos center, double hop_radius) const;

 private:
  std::int32_t node_of(Pos p) const;

  const std::vector<std::vector<std::int32_t>>* adjacency_;  // non-owning
  std::vector<std::vector<AgentId>> buckets_;  // agents standing on node i
  std::unordered_map<AgentId, Pos> positions_;
  // BFS scratch, epoch-stamped so no per-query clearing is needed.
  mutable std::vector<std::uint32_t> visit_epoch_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<std::int32_t> frontier_;
  mutable std::vector<std::int32_t> next_frontier_;
};

}  // namespace aimetro::world
