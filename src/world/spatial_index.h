// Uniform-grid spatial hash over agent positions.
//
// The dependency graph re-examines an agent's relationships against "any
// other relevant agents" (§3.3) after each step; the index turns that from
// O(n) into a local cell-box probe. query_box returns everything within a
// Chebyshev box, which is a superset of the Euclidean, Manhattan and
// Chebyshev balls of the same radius — callers apply their exact metric on
// the candidates, keeping the index metric-agnostic.
//
// Hot-path design: cell buckets store (id, pos) entries so a box query
// never touches the id->pos hash map, and query_box_into appends into a
// caller-owned buffer so steady-state queries allocate nothing.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace aimetro::world {

class SpatialIndex {
 public:
  explicit SpatialIndex(double cell_size) : cell_size_(cell_size) {
    AIM_CHECK(cell_size > 0.0);
  }

  void insert(AgentId id, Pos pos);
  /// Insert every (id, pos) pair at once (ids must be distinct and not
  /// yet indexed). Reserves the hash tables up front, so building an
  /// index over an initial population does one allocation pass instead
  /// of rehash-as-you-go.
  void bulk_insert(const std::vector<std::pair<AgentId, Pos>>& items);
  /// No-op if absent.
  void remove(AgentId id);
  /// Insert-or-move.
  void update(AgentId id, Pos pos);
  bool contains(AgentId id) const { return positions_.count(id) > 0; }
  Pos position(AgentId id) const;
  std::size_t size() const { return positions_.size(); }

  /// All agents with |dx| <= half_extent and |dy| <= half_extent from
  /// `center` (cell-rounded superset; exact box filter applied).
  /// Deterministic order (sorted by id).
  std::vector<AgentId> query_box(Pos center, double half_extent) const;

  /// query_box into a caller-owned buffer: `out` is cleared, filled with
  /// the sorted matches, and keeps its capacity across calls — the
  /// allocation-free form for per-commit hot paths.
  void query_box_into(Pos center, double half_extent,
                      std::vector<AgentId>* out) const;

  /// Agents within Euclidean distance `radius` of `center`, sorted by id.
  std::vector<AgentId> query_radius(Pos center, double radius) const;

 private:
  using Cell = Tile;  // reuse integer pair + hash

  struct Entry {
    AgentId id;
    Pos pos;
  };

  Cell cell_of(Pos p) const {
    return Cell{static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
                static_cast<std::int32_t>(std::floor(p.y / cell_size_))};
  }

  double cell_size_;
  std::unordered_map<AgentId, Pos> positions_;
  std::unordered_map<Cell, std::vector<Entry>, TileHash> cells_;
};

}  // namespace aimetro::world
