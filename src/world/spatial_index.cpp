#include "world/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace aimetro::world {

void SpatialIndex::insert(AgentId id, Pos pos) {
  AIM_CHECK_MSG(positions_.count(id) == 0, "agent " << id << " already indexed");
  positions_.emplace(id, pos);
  cells_[cell_of(pos)].push_back(id);
}

void SpatialIndex::remove(AgentId id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return;
  const Cell c = cell_of(it->second);
  auto cit = cells_.find(c);
  AIM_CHECK(cit != cells_.end());
  auto& bucket = cit->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  if (bucket.empty()) cells_.erase(cit);
  positions_.erase(it);
}

void SpatialIndex::update(AgentId id, Pos pos) {
  auto it = positions_.find(id);
  if (it == positions_.end()) {
    insert(id, pos);
    return;
  }
  const Cell old_cell = cell_of(it->second);
  const Cell new_cell = cell_of(pos);
  it->second = pos;
  if (old_cell == new_cell) return;
  auto& old_bucket = cells_[old_cell];
  old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), id));
  if (old_bucket.empty()) cells_.erase(old_cell);
  cells_[new_cell].push_back(id);
}

Pos SpatialIndex::position(AgentId id) const {
  auto it = positions_.find(id);
  AIM_CHECK_MSG(it != positions_.end(), "agent " << id << " not indexed");
  return it->second;
}

std::vector<AgentId> SpatialIndex::query_box(Pos center,
                                             double half_extent) const {
  AIM_CHECK(half_extent >= 0.0);
  std::vector<AgentId> out;
  const Cell lo = cell_of(Pos{center.x - half_extent, center.y - half_extent});
  const Cell hi = cell_of(Pos{center.x + half_extent, center.y + half_extent});
  for (std::int32_t cy = lo.y; cy <= hi.y; ++cy) {
    for (std::int32_t cx = lo.x; cx <= hi.x; ++cx) {
      auto it = cells_.find(Cell{cx, cy});
      if (it == cells_.end()) continue;
      for (AgentId id : it->second) {
        const Pos p = positions_.at(id);
        if (std::abs(p.x - center.x) <= half_extent &&
            std::abs(p.y - center.y) <= half_extent) {
          out.push_back(id);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AgentId> SpatialIndex::query_radius(Pos center,
                                                double radius) const {
  std::vector<AgentId> out = query_box(center, radius);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](AgentId id) {
                             return euclidean(positions_.at(id), center) >
                                    radius;
                           }),
            out.end());
  return out;
}

}  // namespace aimetro::world
