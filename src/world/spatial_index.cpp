#include "world/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace aimetro::world {

namespace {

template <typename Bucket>
void erase_entry(Bucket& bucket, AgentId id) {
  const auto it =
      std::find_if(bucket.begin(), bucket.end(),
                   [id](const auto& entry) { return entry.id == id; });
  AIM_CHECK(it != bucket.end());
  bucket.erase(it);
}

}  // namespace

void SpatialIndex::insert(AgentId id, Pos pos) {
  AIM_CHECK_MSG(positions_.count(id) == 0, "agent " << id << " already indexed");
  positions_.emplace(id, pos);
  cells_[cell_of(pos)].push_back(Entry{id, pos});
}

void SpatialIndex::bulk_insert(const std::vector<std::pair<AgentId, Pos>>& items) {
  positions_.reserve(positions_.size() + items.size());
  cells_.reserve(cells_.size() + items.size());
  for (const auto& [id, pos] : items) insert(id, pos);
}

void SpatialIndex::remove(AgentId id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return;
  const Cell c = cell_of(it->second);
  auto cit = cells_.find(c);
  AIM_CHECK(cit != cells_.end());
  erase_entry(cit->second, id);
  if (cit->second.empty()) cells_.erase(cit);
  positions_.erase(it);
}

void SpatialIndex::update(AgentId id, Pos pos) {
  auto it = positions_.find(id);
  if (it == positions_.end()) {
    insert(id, pos);
    return;
  }
  const Cell old_cell = cell_of(it->second);
  const Cell new_cell = cell_of(pos);
  it->second = pos;
  if (old_cell == new_cell) {
    auto& bucket = cells_.at(old_cell);
    const auto eit =
        std::find_if(bucket.begin(), bucket.end(),
                     [id](const Entry& e) { return e.id == id; });
    AIM_CHECK(eit != bucket.end());
    eit->pos = pos;
    return;
  }
  auto& old_bucket = cells_[old_cell];
  erase_entry(old_bucket, id);
  if (old_bucket.empty()) cells_.erase(old_cell);
  cells_[new_cell].push_back(Entry{id, pos});
}

Pos SpatialIndex::position(AgentId id) const {
  auto it = positions_.find(id);
  AIM_CHECK_MSG(it != positions_.end(), "agent " << id << " not indexed");
  return it->second;
}

void SpatialIndex::query_box_into(Pos center, double half_extent,
                                  std::vector<AgentId>* out) const {
  AIM_CHECK(half_extent >= 0.0);
  out->clear();
  const Cell lo = cell_of(Pos{center.x - half_extent, center.y - half_extent});
  const Cell hi = cell_of(Pos{center.x + half_extent, center.y + half_extent});
  for (std::int32_t cy = lo.y; cy <= hi.y; ++cy) {
    for (std::int32_t cx = lo.x; cx <= hi.x; ++cx) {
      auto it = cells_.find(Cell{cx, cy});
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (std::abs(e.pos.x - center.x) <= half_extent &&
            std::abs(e.pos.y - center.y) <= half_extent) {
          out->push_back(e.id);
        }
      }
    }
  }
  std::sort(out->begin(), out->end());
}

std::vector<AgentId> SpatialIndex::query_box(Pos center,
                                             double half_extent) const {
  std::vector<AgentId> out;
  query_box_into(center, half_extent, &out);
  return out;
}

std::vector<AgentId> SpatialIndex::query_radius(Pos center,
                                                double radius) const {
  std::vector<AgentId> out = query_box(center, radius);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](AgentId id) {
                             return euclidean(positions_.at(id), center) >
                                    radius;
                           }),
            out.end());
  return out;
}

}  // namespace aimetro::world
