// A* pathfinding on the grid map (4-connected, Manhattan heuristic).
// Used by the trace generator to produce realistic agent movement and by
// the live gym environment for navigation actions.
#pragma once

#include <vector>

#include "common/types.h"
#include "world/grid_map.h"

namespace aimetro::world {

/// Shortest walkable path from `start` to `goal`, inclusive of both
/// endpoints. Returns an empty vector when no path exists. If
/// start == goal, returns {start}. Deterministic tie-breaking.
std::vector<Tile> find_path(const GridMap& map, Tile start, Tile goal);

/// Nearest walkable tile to `t` (BFS ring search); returns `t` itself when
/// already walkable. Check-fails if the map has no walkable tile within
/// `max_ring` rings.
Tile nearest_walkable(const GridMap& map, Tile t, std::int32_t max_ring = 64);

}  // namespace aimetro::world
