#include "world/world_state.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace aimetro::world {

WorldState::WorldState(
    const GridMap* map, std::vector<Tile> initial_tiles,
    const std::vector<std::vector<std::int32_t>>* graph_adjacency)
    : map_(map),
      graph_adjacency_(graph_adjacency),
      tiles_(std::move(initial_tiles)),
      index_(8.0) {
  AIM_CHECK(map_ != nullptr);
  if (graph_adjacency_ != nullptr) {
    // The substrate map exists for uniform bounds checks: one row, one
    // column per node.
    AIM_CHECK_MSG(map_->width() ==
                          static_cast<std::int32_t>(graph_adjacency_->size()) &&
                      map_->height() == 1,
                  "graph substrate map must be node_count x 1");
  }
  agent_count_ = tiles_.size();
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    AIM_CHECK_MSG(map_->in_bounds(tiles_[i]),
                  "agent " << i << " starts out of bounds");
    index_.insert(static_cast<AgentId>(i), tiles_[i].center());
  }
}

Tile WorldState::tile_of(AgentId id) const {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < tiles_.size());
  return tiles_[static_cast<std::size_t>(id)];
}

void WorldState::set_tile(AgentId id, Tile t) {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < tiles_.size());
  AIM_CHECK(map_->in_bounds(t));
  tiles_[static_cast<std::size_t>(id)] = t;
  index_.update(id, t.center());
}

std::vector<StepOutcome> WorldState::resolve_conflict_and_commit(
    Step step, const std::vector<StepIntent>& intents) {
  std::vector<StepOutcome> outcomes;
  outcomes.reserve(intents.size());

  // Deterministic processing order: by agent id.
  std::vector<const StepIntent*> ordered;
  ordered.reserve(intents.size());
  for (const auto& in : intents) ordered.push_back(&in);
  std::sort(ordered.begin(), ordered.end(),
            [](const StepIntent* a, const StepIntent* b) {
              return a->agent < b->agent;
            });

  // Tiles claimed by winners this step (movers), used for collision checks.
  std::map<Tile, AgentId> claimed_tiles;
  // Agents in this cluster that are moving away free their tile.
  std::map<Tile, AgentId> vacated;
  for (const StepIntent* in : ordered) {
    if (in->move_to && !(*in->move_to == tile_of(in->agent))) {
      vacated.emplace(tile_of(in->agent), in->agent);
    }
  }

  std::map<std::string, AgentId> claimed_objects;

  for (const StepIntent* in : ordered) {
    AIM_CHECK(in->agent >= 0 &&
              static_cast<std::size_t>(in->agent) < tiles_.size());
    StepOutcome out;
    out.agent = in->agent;
    out.tile = tile_of(in->agent);

    if (in->move_to) {
      const Tile target = *in->move_to;
      if (graph_world()) {
        // Graph nodes are venues, not tiles: they hold crowds, so moves
        // never conflict. Legality is edge membership — stay put or
        // follow one edge of the social graph (one hop per step, the
        // speed limit the dependency rules assume in hop units).
        const auto& nbrs =
            (*graph_adjacency_)[static_cast<std::size_t>(out.tile.x)];
        const bool ok =
            map_->in_bounds(target) &&
            (target == out.tile ||
             std::binary_search(nbrs.begin(), nbrs.end(), target.x));
        if (ok) out.tile = target;
        out.move_ok = ok;
      } else {
        bool ok = map_->walkable(target);
        // One tile per step (Chebyshev move of <= 1): the speed limit the
        // dependency rules assume (max_vel).
        ok = ok && chebyshev(target.center(), out.tile.center()) <= 1.0 + 1e-9;
        // Lost to a lower-id mover this step?
        ok = ok && claimed_tiles.count(target) == 0;
        if (ok && !(target == out.tile)) {
          // Occupied by an agent outside the cluster (or a non-mover)?
          for (AgentId other : index_.query_radius(target.center(), 0.25)) {
            if (other == in->agent) continue;
            auto vit = vacated.find(target);
            const bool other_vacating =
                vit != vacated.end() && vit->second == other;
            if (!other_vacating) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          claimed_tiles.emplace(target, in->agent);
          out.tile = target;
          out.move_ok = true;
        } else {
          out.move_ok = false;
        }
      }
    }

    if (in->claim_object) {
      const std::string& obj = *in->claim_object;
      const MapObject* object = map_->object(obj);
      AIM_CHECK_MSG(object != nullptr, "unknown object " << obj);
      // Claims are local interactions: the agent must be on or adjacent to
      // the object's tile. (This also guarantees that competing claimers
      // are coupled into one cluster, keeping out-of-order execution
      // deterministic.)
      if (chebyshev(out.tile.center(), object->tile.center()) > 1.5) {
        out.claim_ok = false;
      } else if (claimed_objects.count(obj) ||
                 (object_holders_.count(obj) &&
                  object_holders_.at(obj) != strformat("agent_%d", in->agent))) {
        out.claim_ok = false;
      } else {
        claimed_objects.emplace(obj, in->agent);
        out.claim_ok = true;
      }
    }

    outcomes.push_back(out);
  }

  // Commit winners.
  for (const StepOutcome& out : outcomes) {
    if (!(out.tile == tiles_[static_cast<std::size_t>(out.agent)])) {
      set_tile(out.agent, out.tile);
    }
  }
  for (const auto& [obj, agent] : claimed_objects) {
    object_holders_[obj] = strformat("agent_%d", agent);
  }
  for (const StepIntent* in : ordered) {
    if (in->emit_event) {
      events_.push_back(WorldEvent{step, tile_of(in->agent), in->agent,
                                   *in->emit_event});
    }
  }
  return outcomes;
}

std::vector<AgentId> WorldState::agents_within(Pos center,
                                               double radius) const {
  return index_.query_radius(center, radius);
}

std::vector<WorldEvent> WorldState::events_near(Pos center, double radius,
                                                Step min_step,
                                                Step max_step) const {
  std::vector<WorldEvent> out;
  for (const WorldEvent& ev : events_) {
    if (ev.step < min_step || ev.step > max_step) continue;
    if (euclidean(ev.tile.center(), center) <= radius) out.push_back(ev);
  }
  // Commit order differs between lock-step and out-of-order execution;
  // sort so observations are schedule-independent.
  std::sort(out.begin(), out.end(),
            [](const WorldEvent& a, const WorldEvent& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.source != b.source) return a.source < b.source;
              return a.text < b.text;
            });
  return out;
}

const std::string* WorldState::object_holder(const std::string& object) const {
  auto it = object_holders_.find(object);
  return it == object_holders_.end() ? nullptr : &it->second;
}

std::uint64_t WorldState::state_hash() const {
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(i) << 40;
    v ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(tiles_[i].x))
         << 20;
    v ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(tiles_[i].y));
    h ^= splitmix64(v);
  }
  for (const auto& [obj, holder] : object_holders_) {
    std::uint64_t v = 0;
    for (char c : obj) v = splitmix64(v ^ static_cast<unsigned char>(c));
    for (char c : holder) v = splitmix64(v ^ static_cast<unsigned char>(c));
    h ^= v;
  }
  std::uint64_t ev_h = 0;
  for (const WorldEvent& ev : events_) {
    std::uint64_t v = splitmix64(static_cast<std::uint64_t>(ev.step) ^
                                 (static_cast<std::uint64_t>(ev.source) << 32));
    for (char c : ev.text) v = splitmix64(v ^ static_cast<unsigned char>(c));
    ev_h ^= v;  // order-insensitive: OOO commits interleave differently
  }
  return splitmix64(h ^ ev_h);
}

}  // namespace aimetro::world
