#include "world/graph_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aimetro::world {

GraphIndex::GraphIndex(
    const std::vector<std::vector<std::int32_t>>* adjacency)
    : adjacency_(adjacency) {
  AIM_CHECK(adjacency_ != nullptr && !adjacency_->empty());
  const auto n = static_cast<std::int32_t>(adjacency_->size());
  for (const auto& neighbors : *adjacency_) {
    for (std::int32_t v : neighbors) AIM_CHECK(v >= 0 && v < n);
  }
  buckets_.resize(adjacency_->size());
  visit_epoch_.assign(adjacency_->size(), 0);
}

std::int32_t GraphIndex::node_of(Pos p) const {
  const auto node = static_cast<std::int32_t>(p.x);
  AIM_CHECK_MSG(node >= 0 && node < node_count(),
                "position " << p.x << " is not a node id");
  return node;
}

void GraphIndex::insert(AgentId id, Pos pos) {
  AIM_CHECK_MSG(positions_.emplace(id, pos).second,
                "agent " << id << " already indexed");
  buckets_[static_cast<std::size_t>(node_of(pos))].push_back(id);
}

void GraphIndex::bulk_insert(
    const std::vector<std::pair<AgentId, Pos>>& items) {
  positions_.reserve(positions_.size() + items.size());
  for (const auto& [id, pos] : items) insert(id, pos);
}

void GraphIndex::remove(AgentId id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return;
  auto& bucket = buckets_[static_cast<std::size_t>(node_of(it->second))];
  const auto bit = std::find(bucket.begin(), bucket.end(), id);
  AIM_CHECK(bit != bucket.end());
  *bit = bucket.back();
  bucket.pop_back();
  positions_.erase(it);
}

void GraphIndex::update(AgentId id, Pos pos) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) {
    insert(id, pos);
    return;
  }
  const std::int32_t from = node_of(it->second);
  const std::int32_t to = node_of(pos);
  it->second = pos;
  if (from == to) return;
  auto& bucket = buckets_[static_cast<std::size_t>(from)];
  const auto bit = std::find(bucket.begin(), bucket.end(), id);
  AIM_CHECK(bit != bucket.end());
  *bit = bucket.back();
  bucket.pop_back();
  buckets_[static_cast<std::size_t>(to)].push_back(id);
}

Pos GraphIndex::position(AgentId id) const {
  const auto it = positions_.find(id);
  AIM_CHECK_MSG(it != positions_.end(), "agent " << id << " not indexed");
  return it->second;
}

void GraphIndex::query_ball_into(Pos center, double hop_radius,
                                 std::vector<AgentId>* out) const {
  AIM_CHECK(out != nullptr);
  out->clear();
  AIM_CHECK(hop_radius >= 0.0);
  // Hop distances are integral: dist <= r iff dist <= floor(r). The small
  // epsilon keeps an exactly-integral radius computed in floating point
  // (e.g. (lag+1)*max_vel + radius_p) from flooring one level short.
  const auto depth = static_cast<std::int32_t>(std::floor(hop_radius + 1e-9));
  const std::int32_t start = node_of(center);

  if (++epoch_ == 0) {  // epoch counter wrapped: reset all stamps
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0u);
    epoch_ = 1;
  }
  frontier_.clear();
  frontier_.push_back(start);
  visit_epoch_[static_cast<std::size_t>(start)] = epoch_;
  auto collect = [&](std::int32_t node) {
    const auto& bucket = buckets_[static_cast<std::size_t>(node)];
    out->insert(out->end(), bucket.begin(), bucket.end());
  };
  collect(start);
  for (std::int32_t level = 0; level < depth && !frontier_.empty(); ++level) {
    next_frontier_.clear();
    for (std::int32_t u : frontier_) {
      for (std::int32_t v : (*adjacency_)[static_cast<std::size_t>(u)]) {
        auto& stamp = visit_epoch_[static_cast<std::size_t>(v)];
        if (stamp == epoch_) continue;
        stamp = epoch_;
        next_frontier_.push_back(v);
        collect(v);
      }
    }
    frontier_.swap(next_frontier_);
  }
  std::sort(out->begin(), out->end());
}

std::vector<AgentId> GraphIndex::query_ball(Pos center,
                                            double hop_radius) const {
  std::vector<AgentId> out;
  query_ball_into(center, hop_radius, &out);
  return out;
}

}  // namespace aimetro::world
