#include "world/grid_map.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace aimetro::world {

GridMap::GridMap(std::int32_t width, std::int32_t height)
    : width_(width),
      height_(height),
      segment_stride_(width),
      walkable_(static_cast<std::size_t>(width) * height, true) {
  AIM_CHECK(width > 0 && height > 0);
}

bool GridMap::walkable(Tile t) const {
  return in_bounds(t) && walkable_[idx(t)];
}

void GridMap::set_walkable(Tile t, bool walkable) {
  AIM_CHECK(in_bounds(t));
  walkable_[idx(t)] = walkable;
}

void GridMap::block_rect(const Rect& r) {
  for (std::int32_t y = r.y0; y <= r.y1; ++y) {
    for (std::int32_t x = r.x0; x <= r.x1; ++x) {
      const Tile t{x, y};
      if (in_bounds(t)) walkable_[idx(t)] = false;
    }
  }
}

std::vector<Tile> GridMap::neighbors(Tile t) const {
  std::vector<Tile> out;
  out.reserve(4);
  const Tile candidates[4] = {
      {t.x + 1, t.y}, {t.x - 1, t.y}, {t.x, t.y + 1}, {t.x, t.y - 1}};
  for (const Tile& c : candidates) {
    if (walkable(c)) out.push_back(c);
  }
  return out;
}

void GridMap::add_arena(std::string name, Rect rect) {
  AIM_CHECK_MSG(arena_index_.count(name) == 0, "duplicate arena " << name);
  arena_index_.emplace(name, arenas_.size());
  arenas_.push_back(Arena{std::move(name), rect});
}

const Arena* GridMap::arena(const std::string& name) const {
  auto it = arena_index_.find(name);
  return it == arena_index_.end() ? nullptr : &arenas_[it->second];
}

const Arena* GridMap::arena_at(Tile t) const {
  for (const Arena& a : arenas_) {
    if (a.rect.contains(t)) return &a;
  }
  return nullptr;
}

void GridMap::add_object(std::string name, Tile tile) {
  AIM_CHECK_MSG(object_index_.count(name) == 0, "duplicate object " << name);
  AIM_CHECK(in_bounds(tile));
  object_index_.emplace(name, objects_.size());
  objects_.push_back(MapObject{std::move(name), tile});
}

const MapObject* GridMap::object(const std::string& name) const {
  auto it = object_index_.find(name);
  return it == object_index_.end() ? nullptr : &objects_[it->second];
}

GridMap GridMap::smallville(std::int32_t n_homes) {
  // The paper describes SmallVille as a 100x140 grid. We lay it out as
  // 140 wide x 100 tall: homes along the top and bottom, public venues in
  // the middle band, and streets everywhere else.
  constexpr std::int32_t kWidth = 140;
  constexpr std::int32_t kHeight = 100;
  GridMap map(kWidth, kHeight);
  AIM_CHECK(n_homes >= 1 && n_homes <= 26);

  // Homes: 8x8 plots spaced along the top (y in [4,11]) and bottom
  // (y in [88,95]) rows, alternating.
  for (std::int32_t i = 0; i < n_homes; ++i) {
    const std::int32_t col = i / 2;
    const std::int32_t x0 = 4 + col * 10;
    const bool top = (i % 2) == 0;
    const std::int32_t y0 = top ? 4 : kHeight - 12;
    const Rect plot{x0, y0, x0 + 7, y0 + 7};
    map.add_arena(strformat("home_%d", i), plot);
    map.add_object(strformat("bed_%d", i), Tile{plot.x0 + 1, plot.y0 + 1});
    map.add_object(strformat("stove_%d", i), Tile{plot.x0 + 5, plot.y0 + 1});
    // Walls around the home with a 2-tile door gap at the street side.
    for (std::int32_t x = plot.x0; x <= plot.x1; ++x) {
      map.set_walkable(Tile{x, top ? plot.y0 : plot.y1}, false);
    }
    const std::int32_t door_x = plot.x0 + 3;
    map.set_walkable(Tile{door_x, top ? plot.y0 : plot.y1}, true);
    map.set_walkable(Tile{door_x + 1, top ? plot.y0 : plot.y1}, true);
  }

  // Public venues in the central band.
  const struct {
    const char* name;
    Rect rect;
    const char* obj;
  } venues[] = {
      {"cafe", Rect{10, 40, 25, 55}, "espresso_machine"},
      {"supply_store", Rect{40, 40, 55, 55}, "shelf"},
      {"college", Rect{70, 38, 95, 58}, "lectern"},
      {"bar", Rect{105, 40, 120, 55}, "counter"},
      {"park", Rect{30, 64, 110, 80}, "fountain"},
  };
  for (const auto& v : venues) {
    map.add_arena(v.name, v.rect);
    map.add_object(v.obj, v.rect.center());
  }

  // A couple of unwalkable wall segments to force street routing.
  map.block_rect(Rect{0, 30, 60, 30});
  map.block_rect(Rect{66, 30, kWidth - 1, 30});
  map.block_rect(Rect{0, 62, 24, 62});
  map.block_rect(Rect{30, 62, kWidth - 1, 62});

  return map;
}

GridMap GridMap::plaza(std::int32_t n_homes) {
  constexpr std::int32_t kSize = 80;
  GridMap map(kSize, kSize);
  AIM_CHECK(n_homes >= 1 && n_homes <= 14);

  // Homes: 8x8 plots along the top and bottom edges, alternating.
  for (std::int32_t i = 0; i < n_homes; ++i) {
    const std::int32_t col = i / 2;
    const std::int32_t x0 = 3 + col * 11;
    const bool top = (i % 2) == 0;
    const std::int32_t y0 = top ? 2 : kSize - 10;
    const Rect plot{x0, y0, x0 + 7, y0 + 7};
    map.add_arena(strformat("home_%d", i), plot);
    map.add_object(strformat("bed_%d", i), Tile{plot.x0 + 1, plot.y0 + 1});
  }

  // The hub: one big central plaza, with a cafe and a bar facing it.
  map.add_arena("plaza", Rect{28, 28, 52, 52});
  map.add_object("fountain", Tile{40, 40});
  map.add_arena("cafe", Rect{12, 32, 24, 46});
  map.add_object("espresso_machine", Tile{18, 39});
  map.add_arena("bar", Rect{56, 32, 68, 46});
  map.add_object("counter", Tile{62, 39});
  map.add_arena("park", Rect{28, 58, 52, 68});
  map.add_object("bench", Tile{40, 63});
  return map;
}

GridMap GridMap::urban_grid(std::int32_t n_districts, std::int32_t n_homes) {
  constexpr std::int32_t kWidth = 140;
  constexpr std::int32_t kHeight = 100;
  GridMap map(kWidth, kHeight);
  AIM_CHECK(n_districts >= 1 && n_districts <= 9);
  AIM_CHECK(n_homes >= 1 && n_homes <= 18);

  // Residential west side: two columns of 8x8 plots.
  for (std::int32_t i = 0; i < n_homes; ++i) {
    const std::int32_t row = i / 2;
    const std::int32_t x0 = (i % 2) == 0 ? 3 : 14;
    const std::int32_t y0 = 3 + row * 10;
    const Rect plot{x0, y0, x0 + 7, y0 + 7};
    map.add_arena(strformat("home_%d", i), plot);
    map.add_object(strformat("bed_%d", i), Tile{plot.x0 + 1, plot.y0 + 1});
  }

  // Office districts stacked on the east side, three per column.
  for (std::int32_t d = 0; d < n_districts; ++d) {
    const std::int32_t col = d / 3;
    const std::int32_t row = d % 3;
    const std::int32_t x0 = 92 + col * 16;
    const std::int32_t y0 = 6 + row * 32;
    const Rect block{x0, y0, x0 + 13, y0 + 13};
    map.add_arena(strformat("office_%d", d), block);
    map.add_object(strformat("desk_%d", d), block.center());
  }

  // Midtown amenities between homes and offices.
  map.add_arena("cafe", Rect{52, 42, 66, 56});
  map.add_object("espresso_machine", Tile{59, 49});
  map.add_arena("park", Rect{48, 8, 80, 30});
  map.add_object("fountain", Tile{64, 19});

  // Two full-height north-south walls between the residential west and
  // the office east force every commute through a few two-tile gates —
  // the chokepoints that couple commuters at rush hour. (Homes end at
  // x=21, the cafe/park band sits between the walls, offices start at
  // x=92, so no arena is severed.)
  map.block_rect(Rect{40, 0, 40, kHeight - 1});
  map.set_walkable(Tile{40, 20}, true);
  map.set_walkable(Tile{40, 21}, true);
  map.set_walkable(Tile{40, 70}, true);
  map.set_walkable(Tile{40, 71}, true);
  map.block_rect(Rect{86, 0, 86, kHeight - 1});
  map.set_walkable(Tile{86, 49}, true);
  map.set_walkable(Tile{86, 50}, true);
  return map;
}

GridMap GridMap::arena(std::int32_t width, std::int32_t height) {
  GridMap map(width, height);
  map.add_object("fountain", Tile{width / 2, height / 2});
  return map;
}

GridMap GridMap::concatenate(const GridMap& segment, std::int32_t copies,
                             bool divider) {
  AIM_CHECK(copies >= 1);
  const std::int32_t stride = segment.width_ + (divider ? 1 : 0);
  GridMap out(stride * copies, segment.height_);
  out.segment_stride_ = stride;
  for (std::int32_t k = 0; k < copies; ++k) {
    const std::int32_t off = k * stride;
    for (std::int32_t y = 0; y < segment.height_; ++y) {
      for (std::int32_t x = 0; x < segment.width_; ++x) {
        out.walkable_[out.idx(Tile{off + x, y})] =
            segment.walkable_[segment.idx(Tile{x, y})];
      }
      if (divider && k + 1 < copies) {
        out.walkable_[out.idx(Tile{off + segment.width_, y})] = false;
      }
    }
    const std::string prefix = strformat("seg%d/", k);
    for (const Arena& a : segment.arenas_) {
      out.add_arena(prefix + a.name,
                    Rect{a.rect.x0 + off, a.rect.y0, a.rect.x1 + off, a.rect.y1});
    }
    for (const MapObject& o : segment.objects_) {
      out.add_object(prefix + o.name, Tile{o.tile.x + off, o.tile.y});
    }
  }
  return out;
}

}  // namespace aimetro::world
