#include "world/pathfinding.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <unordered_map>

#include "common/check.h"

namespace aimetro::world {

namespace {

std::int32_t manhattan_tiles(Tile a, Tile b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

struct Node {
  std::int32_t f;     // g + h
  std::int32_t g;     // cost so far
  std::uint64_t seq;  // insertion order for deterministic ties
  Tile tile;
};

struct NodeGreater {
  bool operator()(const Node& a, const Node& b) const {
    if (a.f != b.f) return a.f > b.f;
    if (a.g != b.g) return a.g < b.g;  // prefer deeper nodes on f-ties
    return a.seq > b.seq;
  }
};

}  // namespace

std::vector<Tile> find_path(const GridMap& map, Tile start, Tile goal) {
  if (!map.walkable(start) || !map.walkable(goal)) return {};
  if (start == goal) return {start};

  std::priority_queue<Node, std::vector<Node>, NodeGreater> open;
  std::unordered_map<Tile, Tile, TileHash> came_from;
  std::unordered_map<Tile, std::int32_t, TileHash> best_g;
  std::uint64_t seq = 0;

  open.push(Node{manhattan_tiles(start, goal), 0, seq++, start});
  best_g[start] = 0;

  while (!open.empty()) {
    const Node cur = open.top();
    open.pop();
    if (cur.tile == goal) {
      std::vector<Tile> path{goal};
      Tile t = goal;
      while (!(t == start)) {
        t = came_from.at(t);
        path.push_back(t);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto bit = best_g.find(cur.tile);
    if (bit != best_g.end() && cur.g > bit->second) continue;  // stale entry
    for (Tile next : map.neighbors(cur.tile)) {
      const std::int32_t g = cur.g + 1;
      auto it = best_g.find(next);
      if (it != best_g.end() && it->second <= g) continue;
      best_g[next] = g;
      came_from[next] = cur.tile;
      open.push(Node{g + manhattan_tiles(next, goal), g, seq++, next});
    }
  }
  return {};
}

Tile nearest_walkable(const GridMap& map, Tile t, std::int32_t max_ring) {
  if (map.walkable(t)) return t;
  for (std::int32_t r = 1; r <= max_ring; ++r) {
    // Scan the ring in deterministic order.
    for (std::int32_t dy = -r; dy <= r; ++dy) {
      for (std::int32_t dx = -r; dx <= r; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != r) continue;
        const Tile cand{t.x + dx, t.y + dy};
        if (map.walkable(cand)) return cand;
      }
    }
  }
  AIM_CHECK_MSG(false, "no walkable tile near (" << t.x << "," << t.y << ")");
  return t;  // unreachable
}

}  // namespace aimetro::world
