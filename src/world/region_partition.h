// Rectangular region partition for the sharded world (the spatial half
// of the boundary-lag protocol).
//
// The world is cut into `shards` vertical strips spanning the x-range of
// the initial population. Every agent has exactly one home strip (the
// strip containing its position); probes and commits whose influence box
// stays inside one strip can be answered — and synchronized — entirely
// within that strip. A box that straddles a boundary maps to the
// contiguous strip span it overlaps, which is exactly the set of shards
// that must reconcile (see "Sharded world" in docs/ARCHITECTURE.md).
//
// Two representations coexist:
//   - equal-width (the historical default): strip boundaries at
//     x_min + k * width/shards, classified with one floor division;
//   - arbitrary sorted cuts: interior boundaries anywhere in
//     [x_min, x_max], classified with a binary search. Built either from
//     an agent-position histogram (equal_population — every strip holds
//     the same share of agents) or by re-quantiling an existing partition
//     against per-strip load weights (rebalanced — hot strips shrink,
//     idle strips widen; see "Adaptive partitioning" in
//     docs/ARCHITECTURE.md).
// Both use the same half-open convention (a position exactly on a
// boundary belongs to the right strip), and the strip count never
// changes: adaptivity moves boundaries, it does not resize the lock /
// pool / stats arrays built per strip.
//
// Positions outside [x_min, x_max] clamp to the edge strips, so the
// partition stays total as agents wander: shard_of is defined for every
// Pos and span_of_box for every box.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace aimetro::world {

/// How a partition's boundaries are initially placed.
///  - kEqualWidth: equal-width strips over the x-extent (the historical
///    construction; ignores where the agents actually are).
///  - kEqualPopulation: boundaries at population quantiles of the initial
///    agent x-positions, so every strip starts with the same agent share.
enum class PartitionKind : std::uint8_t { kEqualWidth, kEqualPopulation };

class RegionPartition {
 public:
  /// Contiguous inclusive strip range [lo, hi].
  struct Span {
    std::int32_t lo = 0;
    std::int32_t hi = 0;
    bool single() const { return lo == hi; }
  };

  /// `shards` equal-width strips over [x_min, x_max]. A degenerate range
  /// (x_max <= x_min) collapses every position into strip 0.
  RegionPartition(std::int32_t shards, double x_min, double x_max)
      : shards_(shards), x_min_(x_min), x_max_(x_max) {
    AIM_CHECK(shards >= 1);
    const double width = x_max - x_min;
    strip_width_ = width > 0.0 ? width / static_cast<double>(shards) : 0.0;
  }

  /// cuts.size() + 1 strips over [x_min, x_max] with the given interior
  /// boundaries (must be sorted and inside the range). Equal cuts are
  /// legal: the strip between them is empty, never home to any position.
  RegionPartition(std::vector<double> cuts, double x_min, double x_max)
      : shards_(static_cast<std::int32_t>(cuts.size()) + 1),
        x_min_(x_min),
        x_max_(x_max),
        cuts_(std::move(cuts)) {
    AIM_CHECK(x_max_ >= x_min_);
    for (std::size_t k = 0; k < cuts_.size(); ++k) {
      AIM_CHECK_MSG(cuts_[k] >= x_min_ && cuts_[k] <= x_max_,
                    "partition cut outside [x_min, x_max]");
      AIM_CHECK_MSG(k == 0 || cuts_[k - 1] <= cuts_[k],
                    "partition cuts must be sorted");
    }
  }

  /// Boundaries at the population quantiles of `xs` (the agent
  /// x-positions; consumed). Strip k gets agents of rank [k*n/shards,
  /// (k+1)*n/shards), with each cut at the midpoint between the
  /// straddling ranks — a position-histogram build, O(n log n).
  static RegionPartition equal_population(std::int32_t shards,
                                          std::vector<double> xs) {
    AIM_CHECK(shards >= 1);
    AIM_CHECK(!xs.empty());
    std::sort(xs.begin(), xs.end());
    const double x_min = xs.front();
    const double x_max = xs.back();
    if (shards == 1 || x_max <= x_min) {
      return RegionPartition(shards, x_min, x_max);
    }
    const std::size_t n = xs.size();
    std::vector<double> cuts;
    cuts.reserve(static_cast<std::size_t>(shards) - 1);
    for (std::int32_t k = 1; k < shards; ++k) {
      const std::size_t r = std::clamp<std::size_t>(
          n * static_cast<std::size_t>(k) / static_cast<std::size_t>(shards),
          1, n - 1);
      double cut = 0.5 * (xs[r - 1] + xs[r]);
      // Duplicate x values can make midpoints regress; empty strips are
      // fine, unsorted cuts are not.
      if (!cuts.empty()) cut = std::max(cut, cuts.back());
      cuts.push_back(cut);
    }
    return RegionPartition(std::move(cuts), x_min, x_max);
  }

  /// Re-quantile this partition against per-strip load weights (commit
  /// counts, wait time — any nonnegative measure): the new boundaries
  /// split the total weight evenly, assuming uniform weight density
  /// within each current strip. A strip that carried 3x its share of the
  /// load splits into ~3 new strips' worth of boundary density (split);
  /// adjacent idle strips end up sharing one new strip (merge). The strip
  /// count is preserved. Returns *this unchanged when every weight is
  /// zero or the x-range is degenerate.
  RegionPartition rebalanced(const std::vector<double>& weights) const {
    AIM_CHECK(weights.size() == static_cast<std::size_t>(shards_));
    if (shards_ == 1) return *this;
    double total = 0.0;
    for (double w : weights) {
      AIM_CHECK(w >= 0.0);
      total += w;
    }
    if (!(total > 0.0) || !(x_max_ > x_min_)) return *this;
    std::vector<double> cuts;
    cuts.reserve(static_cast<std::size_t>(shards_) - 1);
    double cum = 0.0;   // weight left of strip j
    std::int32_t j = 0;  // current strip under the walk
    for (std::int32_t k = 1; k < shards_; ++k) {
      const double t =
          total * static_cast<double>(k) / static_cast<double>(shards_);
      while (j < shards_ - 1 &&
             cum + weights[static_cast<std::size_t>(j)] < t) {
        cum += weights[static_cast<std::size_t>(j)];
        ++j;
      }
      const double w = weights[static_cast<std::size_t>(j)];
      const double frac = w > 0.0 ? (t - cum) / w : 1.0;
      double cut = boundary(j) + frac * (boundary(j + 1) - boundary(j));
      cut = std::clamp(cut, x_min_, x_max_);
      if (!cuts.empty()) cut = std::max(cut, cuts.back());
      cuts.push_back(cut);
    }
    return RegionPartition(std::move(cuts), x_min_, x_max_);
  }

  std::int32_t shards() const { return shards_; }
  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }
  /// True for the equal-width representation (boundaries are implicit).
  bool uniform() const { return cuts_.empty(); }

  /// The k-th boundary position, k in [0, shards]: boundary(0) = x_min,
  /// boundary(shards) = x_max, interior boundaries between strips k-1
  /// and k.
  double boundary(std::int32_t k) const {
    AIM_CHECK(k >= 0 && k <= shards_);
    if (k == 0) return x_min_;
    if (k == shards_) return x_max_;
    if (!cuts_.empty()) return cuts_[static_cast<std::size_t>(k) - 1];
    return strip_width_ > 0.0 ? x_min_ + strip_width_ * k : x_min_;
  }

  /// Home strip of a position, clamped to [0, shards-1].
  std::int32_t shard_of(Pos p) const {
    if (!cuts_.empty()) {
      if (std::isnan(p.x)) return 0;  // match the equal-width clamp
      const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), p.x);
      return static_cast<std::int32_t>(it - cuts_.begin());
    }
    if (strip_width_ <= 0.0) return 0;
    const double raw = std::floor((p.x - x_min_) / strip_width_);
    return clamp_strip(raw);
  }

  /// The inclusive strip range overlapped by the Chebyshev box of
  /// half-extent `radius` around `center` — the shards a probe (or a
  /// commit's influence region) must visit.
  Span span_of_box(Pos center, double radius) const {
    AIM_CHECK(radius >= 0.0);
    return Span{shard_of(Pos{center.x - radius, center.y}),
                shard_of(Pos{center.x + radius, center.y})};
  }

  friend bool operator==(const RegionPartition&,
                         const RegionPartition&) = default;

 private:
  std::int32_t clamp_strip(double raw) const {
    if (!(raw >= 0.0)) return 0;  // also catches NaN
    if (raw >= static_cast<double>(shards_)) return shards_ - 1;
    return static_cast<std::int32_t>(raw);
  }

  std::int32_t shards_;
  double x_min_;
  double x_max_;
  double strip_width_ = 0.0;
  /// Interior boundaries (size shards_ - 1) when non-uniform; empty for
  /// the equal-width representation.
  std::vector<double> cuts_;
};

}  // namespace aimetro::world
