// Rectangular region partition for the sharded world (the spatial half
// of the boundary-lag protocol).
//
// The world is cut into `shards` equal-width vertical strips spanning the
// x-range of the initial population. Every agent has exactly one home
// strip (the strip containing its position); probes and commits whose
// influence box stays inside one strip can be answered — and synchronized
// — entirely within that strip. A box that straddles a boundary maps to
// the contiguous strip span it overlaps, which is exactly the set of
// shards that must reconcile (see "Sharded world" in
// docs/ARCHITECTURE.md).
//
// Positions outside the initial x-range clamp to the edge strips, so the
// partition stays total as agents wander: shard_of is defined for every
// Pos and span_of_box for every box.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace aimetro::world {

class RegionPartition {
 public:
  /// Contiguous inclusive strip range [lo, hi].
  struct Span {
    std::int32_t lo = 0;
    std::int32_t hi = 0;
    bool single() const { return lo == hi; }
  };

  /// `shards` equal-width strips over [x_min, x_max]. A degenerate range
  /// (x_max <= x_min) collapses every position into strip 0.
  RegionPartition(std::int32_t shards, double x_min, double x_max)
      : shards_(shards), x_min_(x_min) {
    AIM_CHECK(shards >= 1);
    const double width = x_max - x_min;
    strip_width_ = width > 0.0 ? width / static_cast<double>(shards) : 0.0;
  }

  std::int32_t shards() const { return shards_; }

  /// Home strip of a position, clamped to [0, shards-1].
  std::int32_t shard_of(Pos p) const {
    if (strip_width_ <= 0.0) return 0;
    const double raw = std::floor((p.x - x_min_) / strip_width_);
    return clamp_strip(raw);
  }

  /// The inclusive strip range overlapped by the Chebyshev box of
  /// half-extent `radius` around `center` — the shards a probe (or a
  /// commit's influence region) must visit.
  Span span_of_box(Pos center, double radius) const {
    AIM_CHECK(radius >= 0.0);
    if (strip_width_ <= 0.0) return Span{0, 0};
    const double lo = std::floor((center.x - radius - x_min_) / strip_width_);
    const double hi = std::floor((center.x + radius - x_min_) / strip_width_);
    return Span{clamp_strip(lo), clamp_strip(hi)};
  }

 private:
  std::int32_t clamp_strip(double raw) const {
    if (!(raw >= 0.0)) return 0;  // also catches NaN
    if (raw >= static_cast<double>(shards_)) return shards_ - 1;
    return static_cast<std::int32_t>(raw);
  }

  std::int32_t shards_;
  double x_min_;
  double strip_width_ = 0.0;
};

}  // namespace aimetro::world
