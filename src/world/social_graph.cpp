#include "world/social_graph.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace aimetro::world {

std::vector<std::vector<std::int32_t>> newman_watts_graph(
    std::int32_t nodes, std::int32_t degree, double shortcut_prob,
    std::uint64_t seed) {
  AIM_CHECK(nodes >= 3);
  AIM_CHECK_MSG(degree >= 2 && degree % 2 == 0,
                "ring degree must be even and >= 2");
  AIM_CHECK_MSG(degree < nodes, "ring degree must be below the node count");
  AIM_CHECK(shortcut_prob >= 0.0 && shortcut_prob <= 1.0);

  std::set<std::pair<std::int32_t, std::int32_t>> edges;
  auto add_edge = [&](std::int32_t a, std::int32_t b) {
    if (a == b) return;
    edges.insert({std::min(a, b), std::max(a, b)});
  };
  // Ring lattice: node i tied to its degree/2 neighbors on each side.
  for (std::int32_t i = 0; i < nodes; ++i) {
    for (std::int32_t k = 1; k <= degree / 2; ++k) {
      add_edge(i, (i + k) % nodes);
    }
  }
  // Shortcuts: one candidate per ring edge, Newman–Watts style (added on
  // top of the ring, never replacing it, so connectivity is guaranteed).
  Rng rng(splitmix64(seed ^ 0x50C1A1ULL));
  const std::int64_t ring_edges =
      static_cast<std::int64_t>(nodes) * (degree / 2);
  for (std::int64_t e = 0; e < ring_edges; ++e) {
    if (!rng.bernoulli(shortcut_prob)) continue;
    const auto a = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    const auto b = static_cast<std::int32_t>(rng.uniform_int(0, nodes - 1));
    add_edge(a, b);
  }

  std::vector<std::vector<std::int32_t>> adjacency(
      static_cast<std::size_t>(nodes));
  for (const auto& [a, b] : edges) {
    adjacency[static_cast<std::size_t>(a)].push_back(b);
    adjacency[static_cast<std::size_t>(b)].push_back(a);
  }
  // The edge set iterates in sorted order, so each neighborhood is already
  // ascending; assert rather than re-sort.
  for (const auto& neighbors : adjacency) {
    AIM_CHECK(std::is_sorted(neighbors.begin(), neighbors.end()));
  }
  return adjacency;
}

}  // namespace aimetro::world
