// Social-network world substrate: deterministic follower-graph builders.
//
// Graph worlds replace the tile map with a fixed undirected graph whose
// nodes are "places in the network" (profiles, venues, communities);
// agents stand on nodes, move one hop per step, and couple within a
// hop-count radius (core::GraphMetric). The canonical family is a
// Newman–Watts small world: a ring lattice (every node tied to its k
// nearest ring neighbors — the local follower clusters) plus random
// shortcut edges (the cross-community follows that give social networks
// their short path lengths). Unlike Watts–Strogatz rewiring, Newman–Watts
// only ADDS shortcuts, so the ring stays intact and the graph is always
// connected — every pair of agents has a finite hop distance.
#pragma once

#include <cstdint>
#include <vector>

namespace aimetro::world {

/// Undirected Newman–Watts small-world graph: `nodes` vertices on a ring,
/// each linked to its `degree` nearest ring neighbors (degree/2 per side;
/// `degree` must be even and >= 2), plus one shortcut per ring edge with
/// probability `shortcut_prob`. Deterministic in (nodes, degree,
/// shortcut_prob, seed). Returned as adjacency lists with each
/// neighborhood sorted ascending and free of duplicates/self-loops —
/// ready for core::GraphMetric and world::GraphIndex.
std::vector<std::vector<std::int32_t>> newman_watts_graph(
    std::int32_t nodes, std::int32_t degree, double shortcut_prob,
    std::uint64_t seed);

}  // namespace aimetro::world
