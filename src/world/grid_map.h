// Grid world substrate: the SmallVille-style tile map.
//
// GenAgent's SmallVille is a 100x140 tile world where agents inhabit named
// places (homes, cafe, college, ...), navigate streets, and interact with
// objects. The map provides walkability, named rectangular arenas, named
// objects pinned to tiles, and horizontal concatenation — the paper scales
// to 1000 agents by "concatenating multiple SmallVilles into a single,
// large ville" (§4.3).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace aimetro::world {

/// Inclusive rectangle of tiles.
struct Rect {
  std::int32_t x0 = 0;
  std::int32_t y0 = 0;
  std::int32_t x1 = 0;
  std::int32_t y1 = 0;

  bool contains(Tile t) const {
    return t.x >= x0 && t.x <= x1 && t.y >= y0 && t.y <= y1;
  }
  Tile center() const { return Tile{(x0 + x1) / 2, (y0 + y1) / 2}; }
  std::int64_t area() const {
    return static_cast<std::int64_t>(x1 - x0 + 1) * (y1 - y0 + 1);
  }
};

/// A named region of the map (a home, the cafe, the park, ...).
struct Arena {
  std::string name;
  Rect rect;
};

/// A named interactable object on a tile (a bed, the espresso machine, ...).
struct MapObject {
  std::string name;
  Tile tile;
};

class GridMap {
 public:
  /// All tiles walkable initially.
  GridMap(std::int32_t width, std::int32_t height);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }

  bool in_bounds(Tile t) const {
    return t.x >= 0 && t.x < width_ && t.y >= 0 && t.y < height_;
  }
  bool walkable(Tile t) const;
  void set_walkable(Tile t, bool walkable);
  /// Marks every tile in `r` unwalkable (a building block / wall).
  void block_rect(const Rect& r);

  /// Walkable 4-neighbors of `t`.
  std::vector<Tile> neighbors(Tile t) const;

  // ---- Arenas ----
  void add_arena(std::string name, Rect rect);
  const Arena* arena(const std::string& name) const;
  /// First arena containing `t`, or nullptr.
  const Arena* arena_at(Tile t) const;
  const std::vector<Arena>& arenas() const { return arenas_; }

  // ---- Objects ----
  void add_object(std::string name, Tile tile);
  const MapObject* object(const std::string& name) const;
  const std::vector<MapObject>& objects() const { return objects_; }

  /// The canonical GenAgent world: 140 wide x 100 tall, with homes,
  /// a cafe, a supply store, a college, a bar, and a park connected by
  /// streets. `n_homes` homes are laid out along the top and bottom rows.
  static GridMap smallville(std::int32_t n_homes = 15);

  /// A dense social hub: an 80x80 town square with one central plaza
  /// flanked by a cafe and a bar, homes ringing the edges. Nearly every
  /// path crosses the plaza, so evening socializing produces hub-dominated
  /// (power-law) contact graphs and large agent clusters.
  static GridMap plaza(std::int32_t n_homes = 14);

  /// An OpenCity-style commuter city: residential plots along the west
  /// edge, `n_districts` office districts stacked in the east, a cafe and
  /// park in the middle band. Homes and offices are far apart, producing
  /// origin-destination commute flows that decouple agents for most of the
  /// day and couple them hard at rush hour.
  static GridMap urban_grid(std::int32_t n_districts = 6,
                            std::int32_t n_homes = 18);

  /// A featureless open arena with a single central "fountain" object —
  /// the live-agent (gym) playground used by quickstart-style scenarios.
  static GridMap arena(std::int32_t width = 40, std::int32_t height = 40);

  /// Concatenate `copies` instances of `segment` left-to-right, offsetting
  /// arena/object names with a "seg<k>/" prefix, matching the paper's
  /// large-ville construction. A one-tile unwalkable divider column is
  /// placed between segments so traces generated per segment stay
  /// independent (as in the paper, where segments replay independent
  /// traces but share time and space).
  static GridMap concatenate(const GridMap& segment, std::int32_t copies,
                             bool divider = true);

  /// Width of one segment in a concatenated map (== width() if single).
  std::int32_t segment_stride() const { return segment_stride_; }

 private:
  std::int32_t width_;
  std::int32_t height_;
  std::int32_t segment_stride_;
  std::vector<bool> walkable_;
  std::vector<Arena> arenas_;
  std::vector<MapObject> objects_;
  std::unordered_map<std::string, std::size_t> arena_index_;
  std::unordered_map<std::string, std::size_t> object_index_;

  std::size_t idx(Tile t) const {
    return static_cast<std::size_t>(t.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(t.x);
  }
};

}  // namespace aimetro::world
