// Trace schema.
//
// The paper's evaluation replays traces collected by instrumenting the
// original GenAgent implementation: "Each event includes the input prompt,
// configurations, LLM response, calling step, and caller's identity. A
// separate trace file tracks the agent's movements" (§4.1). This module
// defines the equivalent schema: per-agent movement (one tile per step) and
// per-agent LLM call events with token lengths, plus explicit interaction
// records (conversation turns) used by the oracle dependency miner.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace aimetro::trace {

enum class CallType : std::uint8_t {
  kPerceive = 0,
  kRetrieve = 1,
  kPlan = 2,
  kReact = 3,
  kConverse = 4,
  kReflect = 5,
  kDailyPlan = 6,
  kScheduleDecomp = 7,
};

const char* call_type_name(CallType t);

/// One LLM invocation. Token lengths stand in for the prompt/response text
/// (the replay sets ignore_eos-style exact output lengths, as in §4.1).
struct LlmCall {
  AgentId agent = -1;
  Step step = 0;            // simulation step the call belongs to
  std::int32_t seq = 0;     // order within (agent, step); chains run serially
  CallType type = CallType::kPerceive;
  std::int32_t input_tokens = 0;
  std::int32_t output_tokens = 0;
  std::uint64_t prompt_hash = 0;    // identity of the prompt prefix (cache model)
  std::int32_t conversation_id = -1;  // -1 when not a conversation turn

  friend bool operator==(const LlmCall&, const LlmCall&) = default;
};

/// Explicit interaction between two agents at a step (conversation turn,
/// shared-object use). The oracle miner unions these with observation
/// proximity.
struct Interaction {
  Step step = 0;
  AgentId a = -1;
  AgentId b = -1;

  friend bool operator==(const Interaction&, const Interaction&) = default;
};

/// One agent's full trajectory and call stream.
struct AgentTrace {
  AgentId agent = -1;
  /// positions[i] = tile at the START of step (start_step + i);
  /// size == n_steps + 1 (the final entry is the position after the last
  /// step commits). Chebyshev distance between consecutive entries is at
  /// most max_vel.
  std::vector<Tile> positions;
  /// Sorted by (step, seq).
  std::vector<LlmCall> calls;
};

/// What kind of world a trace's positions live in. Grid traces encode
/// tiles; graph traces encode node ids of a fixed undirected graph in
/// `Tile::x` (y always 0), with `radius_p`/`max_vel` measured in hops.
enum class WorldKind : std::uint8_t { kGrid = 0, kGraph = 1 };

const char* world_kind_name(WorldKind k);

/// A complete simulation trace (possibly a slice of a day, possibly a
/// concatenation of independent segments).
struct SimulationTrace {
  std::int32_t n_agents = 0;
  Step n_steps = 0;      // steps covered: [start_step, start_step + n_steps)
  Step start_step = 0;   // absolute index of positions[0] (4320 = noon)
  double seconds_per_step = 10.0;  // simulated seconds per step (GenAgent)
  double radius_p = 4.0;           // perception radius (grid units / hops)
  double max_vel = 1.0;            // max movement per step (grid units / hops)
  std::int32_t map_width = 0;
  std::int32_t map_height = 0;
  WorldKind world_kind = WorldKind::kGrid;
  /// Graph worlds only: adjacency[i] lists the neighbors of node i.
  /// Positions must name nodes (x in [0, adjacency.size()), y == 0), and
  /// consecutive positions must be equal or adjacent. Grid worlds leave
  /// it empty. For bounds checks to stay uniform, graph traces set
  /// map_width = node count and map_height = 1.
  std::vector<std::vector<std::int32_t>> graph_adjacency;
  std::vector<AgentTrace> agents;          // indexed by AgentId
  std::vector<Interaction> interactions;   // sorted by (step, a, b)

  std::size_t total_calls() const;
  /// Check-fails when structural invariants are violated (sizes, sorting,
  /// speed limit, bounds).
  void validate() const;

  Tile position_at(AgentId id, Step step) const;
};

/// Calls of one agent grouped by step, in chain order. Steps with no calls
/// have no entry.
using StepCalls = std::map<Step, std::vector<const LlmCall*>>;
StepCalls group_calls_by_step(const AgentTrace& agent);

/// Restrict `full` to absolute steps [begin, end): agents keep their
/// positions over the window; only calls/interactions inside it survive.
SimulationTrace slice(const SimulationTrace& full, Step begin, Step end);

/// Place independent segment traces side-by-side in space (agent ids and x
/// coordinates offset by segment), sharing the same time axis — the paper's
/// "large ville" construction (§4.3). All segments must have identical
/// shape (steps/window/params).
SimulationTrace concatenate_segments(
    const std::vector<SimulationTrace>& segments, std::int32_t stride_x);

/// Prompt-prefix identity of a conversation: every turn of one conversation
/// shares the prompt prefix in the cache model, so all of its calls carry
/// this hash. Conversation ids must therefore stay unique across day and
/// segment concatenation.
std::uint64_t conversation_prompt_hash(std::int32_t conversation_id);

/// Chain day traces of one population along the TIME axis — a multi-day
/// episode. Day k must start where day k-1 ended (same agents, same map,
/// positions continuous at each boundary; every day's start_step is 0).
/// Calls and interactions are shifted onto the episode's absolute step
/// axis, and conversation ids (with their prompt hashes) are renumbered so
/// no two days share a conversation — day boundaries never create
/// artificial prefix-cache hits.
SimulationTrace concatenate_days(const std::vector<SimulationTrace>& days);

}  // namespace aimetro::trace
