#include "trace/stats.h"

#include <set>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace aimetro::trace {

TraceStats compute_stats(const SimulationTrace& trace) {
  TraceStats st;
  std::set<std::int32_t> conv_ids;
  const double steps_per_hour = 3600.0 / trace.seconds_per_step;
  for (const AgentTrace& a : trace.agents) {
    for (const LlmCall& c : a.calls) {
      ++st.total_calls;
      st.total_input_tokens += c.input_tokens;
      st.total_output_tokens += c.output_tokens;
      const auto hour = static_cast<std::size_t>(
          static_cast<double>(c.step) / steps_per_hour);
      if (hour < 24) ++st.calls_per_hour[hour];
      if (c.conversation_id >= 0) {
        ++st.conversation_calls;
        conv_ids.insert(c.conversation_id);
      }
    }
  }
  st.conversations = conv_ids.size();
  st.interactions = trace.interactions.size();
  if (st.total_calls > 0) {
    st.mean_input_tokens = static_cast<double>(st.total_input_tokens) /
                           static_cast<double>(st.total_calls);
    st.mean_output_tokens = static_cast<double>(st.total_output_tokens) /
                            static_cast<double>(st.total_calls);
  }

  // Dependency sparsity: for each (agent, step-with-calls), count agents B
  // (including self) whose prior-step position falls within the observation
  // radius — the real dependencies the paper contrasts with the default
  // "all 25 agents" of lock-step sync (§2.2).
  std::size_t dep_samples = 0;
  std::size_t dep_total = 0;
  for (const AgentTrace& a : trace.agents) {
    Step prev_step = -1;
    for (const LlmCall& c : a.calls) {
      if (c.step == prev_step) continue;  // one sample per (agent, step)
      prev_step = c.step;
      if (c.step == trace.start_step) continue;  // no prior step in window
      ++dep_samples;
      const Pos pa = trace.position_at(a.agent, c.step).center();
      for (const AgentTrace& b : trace.agents) {
        const Pos pb = trace.position_at(b.agent, c.step - 1).center();
        if (euclidean(pa, pb) <= trace.radius_p + trace.max_vel) ++dep_total;
      }
    }
  }
  st.mean_prior_step_dependencies =
      dep_samples ? static_cast<double>(dep_total) /
                        static_cast<double>(dep_samples)
                  : 0.0;
  return st;
}

std::string TraceStats::to_string() const {
  std::string out;
  out += strformat("total_calls            %zu\n", total_calls);
  out += strformat("mean_input_tokens      %.1f\n", mean_input_tokens);
  out += strformat("mean_output_tokens     %.1f\n", mean_output_tokens);
  out += strformat("conversations          %zu (%zu calls)\n", conversations,
                   conversation_calls);
  out += strformat("interactions           %zu\n", interactions);
  out += strformat("mean_prior_step_deps   %.2f\n", mean_prior_step_dependencies);
  out += "calls_per_hour:\n";
  for (std::size_t h = 0; h < 24; ++h) {
    out += strformat("  %02zu:00  %6zu\n", h, calls_per_hour[h]);
  }
  return out;
}

}  // namespace aimetro::trace
