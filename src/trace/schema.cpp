#include "trace/schema.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace aimetro::trace {

const char* call_type_name(CallType t) {
  switch (t) {
    case CallType::kPerceive:
      return "perceive";
    case CallType::kRetrieve:
      return "retrieve";
    case CallType::kPlan:
      return "plan";
    case CallType::kReact:
      return "react";
    case CallType::kConverse:
      return "converse";
    case CallType::kReflect:
      return "reflect";
    case CallType::kDailyPlan:
      return "daily_plan";
    case CallType::kScheduleDecomp:
      return "schedule_decomp";
  }
  return "?";
}

const char* world_kind_name(WorldKind k) {
  switch (k) {
    case WorldKind::kGrid:
      return "grid";
    case WorldKind::kGraph:
      return "graph";
  }
  return "?";
}

std::size_t SimulationTrace::total_calls() const {
  std::size_t n = 0;
  for (const AgentTrace& a : agents) n += a.calls.size();
  return n;
}

Tile SimulationTrace::position_at(AgentId id, Step step) const {
  AIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < agents.size());
  const Step rel = step - start_step;
  AIM_CHECK_MSG(rel >= 0 && static_cast<std::size_t>(rel) <
                                agents[static_cast<std::size_t>(id)]
                                    .positions.size(),
                "step " << step << " outside trace window");
  return agents[static_cast<std::size_t>(id)]
      .positions[static_cast<std::size_t>(rel)];
}

void SimulationTrace::validate() const {
  AIM_CHECK(n_agents == static_cast<std::int32_t>(agents.size()));
  AIM_CHECK(n_steps >= 0);
  AIM_CHECK(radius_p >= 0.0 && max_vel >= 0.0);
  const bool graph = world_kind == WorldKind::kGraph;
  if (graph) {
    AIM_CHECK_MSG(!graph_adjacency.empty(),
                  "graph trace carries no adjacency");
    AIM_CHECK_MSG(map_width ==
                          static_cast<std::int32_t>(graph_adjacency.size()) &&
                      map_height == 1,
                  "graph trace bounds must be (node count, 1)");
    const auto n_nodes = static_cast<std::int32_t>(graph_adjacency.size());
    for (const auto& neighbors : graph_adjacency) {
      AIM_CHECK_MSG(std::is_sorted(neighbors.begin(), neighbors.end()),
                    "graph adjacency lists must be sorted");
      for (std::int32_t v : neighbors) AIM_CHECK(v >= 0 && v < n_nodes);
    }
  } else {
    AIM_CHECK_MSG(graph_adjacency.empty(),
                  "grid trace carries a graph adjacency");
  }
  // A one-hop move is legal only when the speed budget allows a full hop.
  const bool hops_allowed = max_vel >= 1.0 - 1e-9;
  auto adjacent = [&](std::int32_t a, std::int32_t b) {
    const auto& neighbors = graph_adjacency[static_cast<std::size_t>(a)];
    return std::binary_search(neighbors.begin(), neighbors.end(), b);
  };
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const AgentTrace& a = agents[i];
    AIM_CHECK_MSG(a.agent == static_cast<AgentId>(i),
                  "agent ids must be dense and ordered");
    AIM_CHECK_MSG(a.positions.size() == static_cast<std::size_t>(n_steps) + 1,
                  "agent " << i << " has " << a.positions.size()
                           << " positions, expected " << n_steps + 1);
    for (const Tile& t : a.positions) {
      AIM_CHECK_MSG(t.x >= 0 && t.x < map_width && t.y >= 0 && t.y < map_height,
                    "agent " << i << " position out of bounds");
    }
    for (std::size_t s = 0; s + 1 < a.positions.size(); ++s) {
      if (graph) {
        // Graph speed rule: stay put, or hop one edge when max_vel allows
        // a whole hop (hop distances are integral, so max_vel below 1
        // means no movement at all).
        const std::int32_t from = a.positions[s].x;
        const std::int32_t to = a.positions[s + 1].x;
        if (from == to) continue;
        AIM_CHECK_MSG(hops_allowed && adjacent(from, to),
                      "agent " << i << " jumped from node " << from
                               << " to non-adjacent node " << to
                               << " at step " << s);
        continue;
      }
      const double d =
          chebyshev(a.positions[s].center(), a.positions[s + 1].center());
      AIM_CHECK_MSG(d <= max_vel + 1e-9,
                    "agent " << i << " moved " << d << " > max_vel at step "
                             << s);
    }
    for (std::size_t c = 0; c < a.calls.size(); ++c) {
      const LlmCall& call = a.calls[c];
      AIM_CHECK(call.agent == a.agent);
      AIM_CHECK_MSG(call.step >= start_step && call.step < start_step + n_steps,
                    "call step " << call.step << " outside window");
      AIM_CHECK(call.input_tokens > 0 && call.output_tokens > 0);
      if (c > 0) {
        const LlmCall& prev = a.calls[c - 1];
        AIM_CHECK_MSG(prev.step < call.step ||
                          (prev.step == call.step && prev.seq < call.seq),
                      "calls of agent " << i << " not sorted");
      }
    }
  }
  for (std::size_t i = 0; i < interactions.size(); ++i) {
    const Interaction& in = interactions[i];
    AIM_CHECK(in.a >= 0 && in.a < n_agents && in.b >= 0 && in.b < n_agents);
    AIM_CHECK(in.a != in.b);
    AIM_CHECK(in.step >= start_step && in.step < start_step + n_steps);
  }
}

StepCalls group_calls_by_step(const AgentTrace& agent) {
  StepCalls out;
  for (const LlmCall& call : agent.calls) {
    out[call.step].push_back(&call);
  }
  return out;
}

SimulationTrace slice(const SimulationTrace& full, Step begin, Step end) {
  AIM_CHECK(begin >= full.start_step);
  AIM_CHECK(end <= full.start_step + full.n_steps);
  AIM_CHECK(begin < end);
  SimulationTrace out;
  out.n_agents = full.n_agents;
  out.n_steps = end - begin;
  out.start_step = begin;
  out.seconds_per_step = full.seconds_per_step;
  out.radius_p = full.radius_p;
  out.max_vel = full.max_vel;
  out.map_width = full.map_width;
  out.map_height = full.map_height;
  out.world_kind = full.world_kind;
  out.graph_adjacency = full.graph_adjacency;
  out.agents.reserve(full.agents.size());
  const std::size_t off = static_cast<std::size_t>(begin - full.start_step);
  for (const AgentTrace& a : full.agents) {
    AgentTrace s;
    s.agent = a.agent;
    s.positions.assign(
        a.positions.begin() + static_cast<std::ptrdiff_t>(off),
        a.positions.begin() +
            static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(out.n_steps) + 1));
    for (const LlmCall& c : a.calls) {
      if (c.step >= begin && c.step < end) s.calls.push_back(c);
    }
    out.agents.push_back(std::move(s));
  }
  for (const Interaction& in : full.interactions) {
    if (in.step >= begin && in.step < end) out.interactions.push_back(in);
  }
  return out;
}

SimulationTrace concatenate_segments(
    const std::vector<SimulationTrace>& segments, std::int32_t stride_x) {
  AIM_CHECK(!segments.empty());
  const SimulationTrace& first = segments.front();
  AIM_CHECK_MSG(first.world_kind == WorldKind::kGrid,
                "segment concatenation offsets x coordinates — grid worlds "
                "only (graph worlds scale by growing the graph instead)");
  SimulationTrace out;
  out.n_agents = 0;
  out.n_steps = first.n_steps;
  out.start_step = first.start_step;
  out.seconds_per_step = first.seconds_per_step;
  out.radius_p = first.radius_p;
  out.max_vel = first.max_vel;
  out.map_width = stride_x * static_cast<std::int32_t>(segments.size());
  out.map_height = first.map_height;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const SimulationTrace& seg = segments[k];
    AIM_CHECK_MSG(seg.n_steps == first.n_steps &&
                      seg.start_step == first.start_step &&
                      seg.radius_p == first.radius_p &&
                      seg.max_vel == first.max_vel,
                  "segment shapes differ");
    AIM_CHECK_MSG(seg.map_width <= stride_x, "stride narrower than segment");
    const AgentId id_off = out.n_agents;
    const std::int32_t x_off = static_cast<std::int32_t>(k) * stride_x;
    for (const AgentTrace& a : seg.agents) {
      AgentTrace moved;
      moved.agent = a.agent + id_off;
      moved.positions.reserve(a.positions.size());
      for (Tile t : a.positions) {
        moved.positions.push_back(Tile{t.x + x_off, t.y});
      }
      moved.calls = a.calls;
      for (LlmCall& c : moved.calls) {
        c.agent += id_off;
        if (c.conversation_id >= 0) {
          // Keep conversation ids unique across segments, and rehash the
          // prompt identity with the new id — segments are independent
          // towns, so same-local-id conversations must not look like
          // shared prompt prefixes to the cache model.
          AIM_CHECK_MSG(c.conversation_id < 1000000,
                        "conversation ids overflow the segment stride");
          c.conversation_id += static_cast<std::int32_t>(k) * 1000000;
          c.prompt_hash = conversation_prompt_hash(c.conversation_id);
        }
      }
      out.agents.push_back(std::move(moved));
    }
    for (Interaction in : seg.interactions) {
      in.a += id_off;
      in.b += id_off;
      out.interactions.push_back(in);
    }
    out.n_agents += seg.n_agents;
  }
  std::sort(out.interactions.begin(), out.interactions.end(),
            [](const Interaction& x, const Interaction& y) {
              if (x.step != y.step) return x.step < y.step;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return out;
}

std::uint64_t conversation_prompt_hash(std::int32_t conversation_id) {
  return splitmix64(0xC0FFEEULL ^
                    static_cast<std::uint64_t>(conversation_id));
}

SimulationTrace concatenate_days(const std::vector<SimulationTrace>& days) {
  AIM_CHECK(!days.empty());
  const SimulationTrace& first = days.front();
  SimulationTrace out;
  out.n_agents = first.n_agents;
  out.n_steps = 0;
  out.start_step = 0;
  out.seconds_per_step = first.seconds_per_step;
  out.radius_p = first.radius_p;
  out.max_vel = first.max_vel;
  out.map_width = first.map_width;
  out.map_height = first.map_height;
  out.world_kind = first.world_kind;
  out.graph_adjacency = first.graph_adjacency;
  out.agents.resize(static_cast<std::size_t>(first.n_agents));
  for (std::size_t i = 0; i < out.agents.size(); ++i) {
    out.agents[i].agent = static_cast<AgentId>(i);
  }

  std::int32_t conv_id_offset = 0;
  for (std::size_t d = 0; d < days.size(); ++d) {
    const SimulationTrace& day = days[d];
    AIM_CHECK_MSG(day.n_agents == first.n_agents &&
                      day.start_step == 0 &&
                      day.map_width == first.map_width &&
                      day.map_height == first.map_height &&
                      day.radius_p == first.radius_p &&
                      day.max_vel == first.max_vel &&
                      day.world_kind == first.world_kind &&
                      day.graph_adjacency == first.graph_adjacency,
                  "day " << d << " has a different shape");
    const Step step_offset = out.n_steps;
    std::int32_t max_conv_id = -1;
    for (std::size_t i = 0; i < out.agents.size(); ++i) {
      const AgentTrace& src = day.agents[i];
      AgentTrace& dst = out.agents[i];
      // Continuity at the boundary: this day starts exactly where the
      // previous one ended (that final position is the carried-over one).
      if (d == 0) {
        dst.positions = src.positions;
      } else {
        AIM_CHECK_MSG(dst.positions.back() == src.positions.front(),
                      "agent " << i << " teleported across the day "
                               << d << " boundary");
        dst.positions.insert(dst.positions.end(), src.positions.begin() + 1,
                             src.positions.end());
      }
      for (LlmCall call : src.calls) {
        call.step += step_offset;
        if (call.conversation_id >= 0) {
          max_conv_id = std::max(max_conv_id, call.conversation_id);
          call.conversation_id += conv_id_offset;
          call.prompt_hash = conversation_prompt_hash(call.conversation_id);
        }
        dst.calls.push_back(call);
      }
    }
    for (Interaction in : day.interactions) {
      in.step += step_offset;
      out.interactions.push_back(in);
    }
    out.n_steps += day.n_steps;
    conv_id_offset += max_conv_id + 1;
  }
  out.validate();
  return out;
}

}  // namespace aimetro::trace
