// Trace persistence: a compact binary format (round-trip exact) plus a
// JSONL export for human inspection, mirroring how the paper releases
// collected traces as an LLM-serving benchmark artifact.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/schema.h"

namespace aimetro::trace {

/// Binary format "AIMT" v1. Throws CheckError on malformed input.
void save_binary(const SimulationTrace& trace, std::ostream& os);
SimulationTrace load_binary(std::istream& is);

void save_binary_file(const SimulationTrace& trace, const std::string& path);
SimulationTrace load_binary_file(const std::string& path);

/// One JSON object per line: a header line, then movement and call events.
void export_jsonl(const SimulationTrace& trace, std::ostream& os);

}  // namespace aimetro::trace
