// Aggregate trace statistics: the numbers §4.1 and Figure 4c report
// (calls per day, token-length means, calls per simulated hour) plus the
// dependency-sparsity measurement from §2.2 (mean prior-step dependencies
// per agent).
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "trace/schema.h"

namespace aimetro::trace {

struct TraceStats {
  std::size_t total_calls = 0;
  double mean_input_tokens = 0.0;
  double mean_output_tokens = 0.0;
  std::int64_t total_input_tokens = 0;
  std::int64_t total_output_tokens = 0;
  std::array<std::size_t, 24> calls_per_hour{};  // by simulated hour of day
  std::size_t conversation_calls = 0;
  std::size_t conversations = 0;
  std::size_t interactions = 0;
  /// Average over (agent, step) of the number of *observation-rule*
  /// dependencies on the prior step (including self) — the paper measures
  /// 1.85 for GenAgent (§2.2). Computed on steps where the agent has calls.
  double mean_prior_step_dependencies = 0.0;

  std::string to_string() const;
};

TraceStats compute_stats(const SimulationTrace& trace);

}  // namespace aimetro::trace
