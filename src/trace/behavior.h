// Pluggable behavior profiles for the synthetic workload generator.
//
// The paper evaluates one workload — a calibrated Generative-Agents day.
// A BehaviorProfile factors everything that made that workload *that*
// workload out of the generator: the routine mix (where agents work and
// socialize, when they wake/eat/sleep), the conversation propensity (how
// often co-located agents couple into clusters), and the diurnal curve
// (how LLM calls distribute over the day). Different profiles stress the
// dependency scoreboard in genuinely different ways: a socialite hub
// produces large clusters, commuters produce long decoupled stretches with
// synchronized rush-hour bursts, hermits produce near-zero coupling.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace aimetro::trace {

struct BehaviorProfile {
  std::string name = "townsfolk";

  // ---- Routine mix ----
  /// Arena-name prefixes eligible as workplaces, one relative weight per
  /// prefix (split evenly among arenas sharing a prefix). Empty, or no
  /// matching arena on the map: agents spend the workday at home.
  std::vector<std::string> workplace_prefixes = {"cafe", "supply_store",
                                                 "college", "bar"};
  std::vector<double> workplace_weights = {0.2, 0.2, 0.45, 0.15};
  /// Arena-name prefixes eligible as evening social venues. Venue choice is
  /// Zipf-distributed over the discovered venues (rank order of discovery):
  /// weight(rank k) = 1 / (k+1)^social_zipf_alpha. Large alpha concentrates
  /// the population on the top venue — a power-law contact graph where a
  /// few hub locations mediate most agent meetings.
  std::vector<std::string> social_prefixes = {"park", "bar"};
  double social_zipf_alpha = 0.6;

  /// Schedule timing, in simulated hours.
  double wake_hour_mean = 6.5;
  double wake_hour_sigma = 0.5;
  double lunch_hour_mean = 12.0;
  double lunch_hour_sigma = 0.2;
  double social_hour_mean = 17.5;
  double social_hour_sigma = 0.8;
  double home_hour_mean = 20.5;
  double sleep_hour_mean = 23.0;

  // ---- Conversation propensity ----
  /// Probability that two co-located idle agents start a conversation
  /// (per pair per step, with a per-pair cooldown).
  double conversation_start_prob = 0.03;
  Step conversation_cooldown_steps = 300;  // 50 simulated minutes
  /// Multiplies the diurnal conversation-length intensity (turn count).
  double conversation_length_scale = 1.0;

  // ---- Diurnal curve ----
  /// Fraction of the day's calls landing in each simulated hour
  /// (normalized internally). The townsfolk default reproduces Figure 4c:
  /// sleep trough 1-4am, quiet 6-7am (~1.4%), peak 12-1pm (~8.8%).
  std::array<double, 24> hourly_weights = {
      0.5,  0.05, 0.05, 0.05, 0.3, 0.8, 1.4, 3.0, 5.0, 6.0, 6.5, 7.5,
      8.8,  7.5,  6.5,  6.0,  6.0, 6.5, 7.0, 6.5, 5.5, 4.0, 2.5, 1.2};

  // ---- Built-in profiles ----
  /// The calibrated Generative-Agents day of the paper's evaluation (§4.1).
  static BehaviorProfile townsfolk();
  /// Dense social coupling: high conversation propensity, evening-heavy
  /// diurnal curve, strongly Zipf-skewed venue choice (hub contact graph).
  static BehaviorProfile socialite();
  /// OpenCity-style urban commuter: office workplaces, early wake, sharp
  /// morning/evening rush-hour activity peaks, little midday socializing.
  static BehaviorProfile commuter();
  /// Near-zero coupling: agents stay home, never converse — the
  /// embarrassingly-parallel lower bound for the scheduler.
  static BehaviorProfile hermit();

  /// Look up a built-in profile by name; nullopt for unknown names.
  static std::optional<BehaviorProfile> find(const std::string& name);
  static std::vector<std::string> names();
};

/// A weighted mix of behavior profiles — the population of a heterogeneous
/// scenario. Parsed from the spec's `population` key:
///
///   townsfolk:0.6,socialite:0.2,commuter:0.15,hermit:0.05
///
/// Weights are relative (normalized internally, so 3:1 and 0.75:0.25 are
/// the same mix). Entries must name known profiles and carry positive
/// weights; duplicates are rejected.
struct PopulationMix {
  std::vector<std::string> profiles;  // BehaviorProfile names, mix order
  std::vector<double> weights;        // same length, all > 0

  /// Parse `name:weight,name:weight,...`. Whitespace around entries is
  /// tolerated. Returns nullopt and sets *error (offending entry named)
  /// on malformed text, unknown profile names, duplicate entries, or
  /// non-positive weights.
  static std::optional<PopulationMix> parse(const std::string& text,
                                            std::string* error);

  /// Canonical `name:weight,...` rendering; parse() round-trips it.
  std::string to_text() const;
};

/// Deterministically assign a profile name to each of `n_agents` agents.
///
/// The realized mix is exact, not sampled: per-profile counts come from the
/// largest-remainder method over the normalized weights (so 20 agents of
/// 0.6/0.2/0.15/0.05 yield 12/4/3/1), and the counts are then interleaved
/// over agent ids by a seed-keyed Fisher-Yates shuffle. The result depends
/// only on (mix, n_agents, seed) — never on the execution backend — which
/// is what makes population assignment reproducible across the DES replay
/// and the live engine.
std::vector<std::string> assign_profiles(const PopulationMix& mix,
                                         std::int32_t n_agents,
                                         std::uint64_t seed);

}  // namespace aimetro::trace
