// Pluggable behavior profiles for the synthetic workload generator.
//
// The paper evaluates one workload — a calibrated Generative-Agents day.
// A BehaviorProfile factors everything that made that workload *that*
// workload out of the generator: the routine mix (where agents work and
// socialize, when they wake/eat/sleep), the conversation propensity (how
// often co-located agents couple into clusters), and the diurnal curve
// (how LLM calls distribute over the day). Different profiles stress the
// dependency scoreboard in genuinely different ways: a socialite hub
// produces large clusters, commuters produce long decoupled stretches with
// synchronized rush-hour bursts, hermits produce near-zero coupling.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace aimetro::trace {

struct BehaviorProfile {
  std::string name = "townsfolk";

  // ---- Routine mix ----
  /// Arena-name prefixes eligible as workplaces, one relative weight per
  /// prefix (split evenly among arenas sharing a prefix). Empty, or no
  /// matching arena on the map: agents spend the workday at home.
  std::vector<std::string> workplace_prefixes = {"cafe", "supply_store",
                                                 "college", "bar"};
  std::vector<double> workplace_weights = {0.2, 0.2, 0.45, 0.15};
  /// Arena-name prefixes eligible as evening social venues. Venue choice is
  /// Zipf-distributed over the discovered venues (rank order of discovery):
  /// weight(rank k) = 1 / (k+1)^social_zipf_alpha. Large alpha concentrates
  /// the population on the top venue — a power-law contact graph where a
  /// few hub locations mediate most agent meetings.
  std::vector<std::string> social_prefixes = {"park", "bar"};
  double social_zipf_alpha = 0.6;

  /// Schedule timing, in simulated hours.
  double wake_hour_mean = 6.5;
  double wake_hour_sigma = 0.5;
  double lunch_hour_mean = 12.0;
  double lunch_hour_sigma = 0.2;
  double social_hour_mean = 17.5;
  double social_hour_sigma = 0.8;
  double home_hour_mean = 20.5;
  double sleep_hour_mean = 23.0;

  // ---- Conversation propensity ----
  /// Probability that two co-located idle agents start a conversation
  /// (per pair per step, with a per-pair cooldown).
  double conversation_start_prob = 0.03;
  Step conversation_cooldown_steps = 300;  // 50 simulated minutes
  /// Multiplies the diurnal conversation-length intensity (turn count).
  double conversation_length_scale = 1.0;

  // ---- Diurnal curve ----
  /// Fraction of the day's calls landing in each simulated hour
  /// (normalized internally). The townsfolk default reproduces Figure 4c:
  /// sleep trough 1-4am, quiet 6-7am (~1.4%), peak 12-1pm (~8.8%).
  std::array<double, 24> hourly_weights = {
      0.5,  0.05, 0.05, 0.05, 0.3, 0.8, 1.4, 3.0, 5.0, 6.0, 6.5, 7.5,
      8.8,  7.5,  6.5,  6.0,  6.0, 6.5, 7.0, 6.5, 5.5, 4.0, 2.5, 1.2};

  // ---- Built-in profiles ----
  /// The calibrated Generative-Agents day of the paper's evaluation (§4.1).
  static BehaviorProfile townsfolk();
  /// Dense social coupling: high conversation propensity, evening-heavy
  /// diurnal curve, strongly Zipf-skewed venue choice (hub contact graph).
  static BehaviorProfile socialite();
  /// OpenCity-style urban commuter: office workplaces, early wake, sharp
  /// morning/evening rush-hour activity peaks, little midday socializing.
  static BehaviorProfile commuter();
  /// Near-zero coupling: agents stay home, never converse — the
  /// embarrassingly-parallel lower bound for the scheduler.
  static BehaviorProfile hermit();

  /// Look up a built-in profile by name; nullopt for unknown names.
  static std::optional<BehaviorProfile> find(const std::string& name);
  static std::vector<std::string> names();
};

}  // namespace aimetro::trace
