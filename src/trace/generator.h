// Synthetic GenAgent workload generator.
//
// Stands in for the paper's instrumented GPT-3.5 traces (40 simulation days
// of the original Generative Agents implementation). A (seed, config) pair
// deterministically produces a full-day trace whose aggregate statistics
// are calibrated to the published numbers:
//   - ~56.7k LLM calls per 25-agent day,
//   - 642.6 mean input tokens, 21.9 mean output tokens,
//   - diurnal activity: near-zero 1am-4am (all agents asleep), a quiet
//     hour 6-7am (~800 calls), a busy hour 12-1pm (~5,000 calls with long
//     conversations) — the Figure 4c shape.
// Behaviour is generated, not just sampled: agents follow daily routines
// (wake, commute, lunch, socialize, sleep) with A*-pathfound movement, and
// conversations occur when agents actually meet, which is what creates the
// spatial coupling/blocking structure the scheduler exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/behavior.h"
#include "trace/schema.h"
#include "world/grid_map.h"

namespace aimetro::trace {

struct GeneratorConfig {
  std::int32_t n_agents = 25;
  std::int32_t steps_per_day = 8640;  // 10 simulated seconds per step
  std::uint64_t seed = 42;
  double radius_p = 4.0;  // GenAgent perception radius (grid units)
  double max_vel = 1.0;   // one tile per step

  /// Total LLM calls targeted PER DAY; the paper reports 56.7k for 25
  /// agents. Scaled linearly when n_agents != 25.
  double target_calls_per_25_agents = 56700.0;

  /// Token-length targets (trace-wide means).
  double mean_input_tokens = 642.6;
  double mean_output_tokens = 21.9;

  /// The behavior model: routine mix, conversation propensity, diurnal
  /// curve. Defaults to the calibrated GenAgent townsfolk day; see
  /// trace/behavior.h for the other built-in profiles. Every agent uses
  /// this profile unless `agent_profiles` is set.
  BehaviorProfile profile;

  /// Heterogeneous population: one profile per agent (size must equal
  /// n_agents; see trace::assign_profiles for drawing one from a
  /// PopulationMix). Empty = the homogeneous `profile` above, which keeps
  /// the generator byte-identical to the historical single-profile path.
  std::vector<BehaviorProfile> agent_profiles;

  /// Days in the episode (generate_episode): each day draws independent
  /// randomness (schedules, conversations, fill) keyed by (seed, agent,
  /// day), and day k+1 starts where day k ended. days = 1 is exactly the
  /// historical single-day trace.
  std::int32_t days = 1;

  /// Which day of a multi-day episode this single-day generation is; salts
  /// the RNG streams so day 2 differs from day 1. Set by generate_episode.
  std::int32_t day_index = 0;

  /// Cross-day carry-over: start tiles for every agent (size n_agents),
  /// normally the previous day's final positions. Empty = agents start in
  /// bed at home. Set by generate_episode for days after the first.
  std::vector<Tile> start_tiles;
};

/// Generates a ONE-day trace on `map` (one segment; use
/// concatenate_segments + GridMap::concatenate for the large ville, and
/// generate_episode for multi-day runs). Ignores cfg.days.
SimulationTrace generate(const world::GridMap& map, const GeneratorConfig& cfg);

/// Generates a cfg.days-day episode on `map`: day traces chained on the
/// time axis with positional carry-over at each midnight boundary
/// (concatenate_days). With days == 1 this is exactly generate().
SimulationTrace generate_episode(const world::GridMap& map,
                                 const GeneratorConfig& cfg);

/// Generate `n_segments` independent episode traces of `segment` (derived
/// seeds base.seed + k * 0x9e3779b9) and place them side by side with a
/// one-tile divider stride — the paper's large-ville construction (§4.3).
/// `base.n_agents` is the per-segment population. Honors base.days.
SimulationTrace generate_concatenated(const world::GridMap& segment,
                                      std::int32_t n_segments,
                                      const GeneratorConfig& base);

/// As above, but with an explicit per-segment population (all counts >= 1,
/// base.n_agents ignored) — segment populations need not be equal, so a
/// total that does not divide evenly loses no agents. A heterogeneous
/// base.agent_profiles (sized to the segment totals) is split across the
/// segments in agent-id order.
SimulationTrace generate_concatenated(
    const world::GridMap& segment,
    const std::vector<std::int32_t>& agents_per_segment,
    const GeneratorConfig& base);

/// Convenience: generate_concatenated on the SmallVille segment map —
/// the paper's scaling workload with n_segments*25 agents.
SimulationTrace generate_large_ville(std::int32_t n_segments,
                                     const GeneratorConfig& base);

/// Graph-world (social-network) generator: agents live on the nodes of a
/// fixed undirected graph (e.g. world::newman_watts_graph), positions
/// encode node ids, and radius_p/max_vel are measured in hops
/// (cfg.max_vel must be >= 1 — agents move one hop per step). Daily
/// structure mirrors the grid generator: wake/sleep schedules and the
/// wake-up planning burst come from the behavior profile(s), agents
/// random-walk their neighborhood with the profile's diurnal intensity
/// (drifting toward high-degree hub nodes in social hours), conversations
/// start between co-located agents with per-pair cooldowns, and a Pass-B
/// routine fill hits the same calibrated diurnal call-count curve.
/// Requires cfg.day_index == 0 and empty cfg.start_tiles (graph scenarios
/// are single-day); cfg.days is ignored.
SimulationTrace generate_social_graph(
    const std::vector<std::vector<std::int32_t>>& adjacency,
    const GeneratorConfig& cfg);

}  // namespace aimetro::trace
