#include "trace/behavior.h"

namespace aimetro::trace {

BehaviorProfile BehaviorProfile::townsfolk() {
  return BehaviorProfile{};  // the defaults are the calibrated GenAgent day
}

BehaviorProfile BehaviorProfile::socialite() {
  BehaviorProfile p;
  p.name = "socialite";
  p.workplace_prefixes = {"cafe", "bar", "plaza"};
  p.workplace_weights = {0.5, 0.3, 0.2};
  p.social_prefixes = {"plaza", "bar", "cafe", "park"};
  p.social_zipf_alpha = 1.4;  // most evenings converge on the hub venue
  p.wake_hour_mean = 8.5;
  p.wake_hour_sigma = 0.8;
  p.lunch_hour_mean = 12.5;
  p.lunch_hour_sigma = 0.4;
  p.social_hour_mean = 15.5;  // long social afternoons and evenings
  p.social_hour_sigma = 1.0;
  p.home_hour_mean = 21.8;
  p.sleep_hour_mean = 23.6;
  p.conversation_start_prob = 0.10;
  p.conversation_cooldown_steps = 120;
  p.conversation_length_scale = 1.6;
  // Evening-heavy curve: quiet mornings, sustained afternoon ramp, a tall
  // 6-9pm plateau when the hub venue is packed.
  p.hourly_weights = {0.6, 0.1, 0.05, 0.05, 0.05, 0.1, 0.3, 0.8,
                      1.5, 2.5, 3.5, 4.5,  5.0,  5.0, 5.5, 6.0,
                      7.0, 8.0, 9.0, 9.5,  9.0,  7.5, 4.5, 2.0};
  return p;
}

BehaviorProfile BehaviorProfile::commuter() {
  BehaviorProfile p;
  p.name = "commuter";
  p.workplace_prefixes = {"office"};
  p.workplace_weights = {1.0};
  p.social_prefixes = {"cafe", "park"};
  p.social_zipf_alpha = 0.8;
  p.wake_hour_mean = 6.0;
  p.wake_hour_sigma = 0.3;  // synchronized rush: everyone leaves together
  p.lunch_hour_mean = 12.2;
  p.lunch_hour_sigma = 0.3;
  p.social_hour_mean = 17.8;
  p.social_hour_sigma = 0.4;
  p.home_hour_mean = 19.5;
  p.sleep_hour_mean = 22.5;
  p.conversation_start_prob = 0.015;  // commuters keep to themselves
  p.conversation_cooldown_steps = 420;
  p.conversation_length_scale = 0.7;
  // Double-peak rush-hour curve: sharp 7-9am and 5-7pm maxima with a
  // moderate office plateau between — the OpenCity commute shape.
  p.hourly_weights = {0.3, 0.05, 0.05, 0.05, 0.2, 1.0, 3.5, 8.0,
                      8.5, 4.5,  3.5,  3.5,  4.5, 3.5, 3.0, 3.0,
                      4.0, 8.0,  8.5,  5.0,  3.0, 2.0, 1.0, 0.5};
  return p;
}

BehaviorProfile BehaviorProfile::hermit() {
  BehaviorProfile p;
  p.name = "hermit";
  p.workplace_prefixes.clear();  // the workday happens at home
  p.workplace_weights.clear();
  p.social_prefixes.clear();     // and so does the evening
  p.wake_hour_mean = 7.5;
  p.wake_hour_sigma = 1.5;  // unsynchronized: no shared clock
  p.social_hour_mean = 18.0;
  p.home_hour_mean = 20.0;
  p.sleep_hour_mean = 23.0;
  p.conversation_start_prob = 0.0;
  p.conversation_length_scale = 0.0;
  // Flat awake-hours curve: no communal rhythm to exploit or suffer.
  p.hourly_weights = {0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 2.0,
                      3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0,
                      3.0, 3.0, 3.0, 3.0, 3.0, 2.5, 1.5, 0.8};
  return p;
}

std::optional<BehaviorProfile> BehaviorProfile::find(const std::string& name) {
  if (name == "townsfolk") return townsfolk();
  if (name == "socialite") return socialite();
  if (name == "commuter") return commuter();
  if (name == "hermit") return hermit();
  return std::nullopt;
}

std::vector<std::string> BehaviorProfile::names() {
  return {"townsfolk", "socialite", "commuter", "hermit"};
}

}  // namespace aimetro::trace
