#include "trace/behavior.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <numeric>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace aimetro::trace {

BehaviorProfile BehaviorProfile::townsfolk() {
  return BehaviorProfile{};  // the defaults are the calibrated GenAgent day
}

BehaviorProfile BehaviorProfile::socialite() {
  BehaviorProfile p;
  p.name = "socialite";
  p.workplace_prefixes = {"cafe", "bar", "plaza"};
  p.workplace_weights = {0.5, 0.3, 0.2};
  p.social_prefixes = {"plaza", "bar", "cafe", "park"};
  p.social_zipf_alpha = 1.4;  // most evenings converge on the hub venue
  p.wake_hour_mean = 8.5;
  p.wake_hour_sigma = 0.8;
  p.lunch_hour_mean = 12.5;
  p.lunch_hour_sigma = 0.4;
  p.social_hour_mean = 15.5;  // long social afternoons and evenings
  p.social_hour_sigma = 1.0;
  p.home_hour_mean = 21.8;
  p.sleep_hour_mean = 23.6;
  p.conversation_start_prob = 0.10;
  p.conversation_cooldown_steps = 120;
  p.conversation_length_scale = 1.6;
  // Evening-heavy curve: quiet mornings, sustained afternoon ramp, a tall
  // 6-9pm plateau when the hub venue is packed.
  p.hourly_weights = {0.6, 0.1, 0.05, 0.05, 0.05, 0.1, 0.3, 0.8,
                      1.5, 2.5, 3.5, 4.5,  5.0,  5.0, 5.5, 6.0,
                      7.0, 8.0, 9.0, 9.5,  9.0,  7.5, 4.5, 2.0};
  return p;
}

BehaviorProfile BehaviorProfile::commuter() {
  BehaviorProfile p;
  p.name = "commuter";
  p.workplace_prefixes = {"office"};
  p.workplace_weights = {1.0};
  p.social_prefixes = {"cafe", "park"};
  p.social_zipf_alpha = 0.8;
  p.wake_hour_mean = 6.0;
  p.wake_hour_sigma = 0.3;  // synchronized rush: everyone leaves together
  p.lunch_hour_mean = 12.2;
  p.lunch_hour_sigma = 0.3;
  p.social_hour_mean = 17.8;
  p.social_hour_sigma = 0.4;
  p.home_hour_mean = 19.5;
  p.sleep_hour_mean = 22.5;
  p.conversation_start_prob = 0.015;  // commuters keep to themselves
  p.conversation_cooldown_steps = 420;
  p.conversation_length_scale = 0.7;
  // Double-peak rush-hour curve: sharp 7-9am and 5-7pm maxima with a
  // moderate office plateau between — the OpenCity commute shape.
  p.hourly_weights = {0.3, 0.05, 0.05, 0.05, 0.2, 1.0, 3.5, 8.0,
                      8.5, 4.5,  3.5,  3.5,  4.5, 3.5, 3.0, 3.0,
                      4.0, 8.0,  8.5,  5.0,  3.0, 2.0, 1.0, 0.5};
  return p;
}

BehaviorProfile BehaviorProfile::hermit() {
  BehaviorProfile p;
  p.name = "hermit";
  p.workplace_prefixes.clear();  // the workday happens at home
  p.workplace_weights.clear();
  p.social_prefixes.clear();     // and so does the evening
  p.wake_hour_mean = 7.5;
  p.wake_hour_sigma = 1.5;  // unsynchronized: no shared clock
  p.social_hour_mean = 18.0;
  p.home_hour_mean = 20.0;
  p.sleep_hour_mean = 23.0;
  p.conversation_start_prob = 0.0;
  p.conversation_length_scale = 0.0;
  // Flat awake-hours curve: no communal rhythm to exploit or suffer.
  p.hourly_weights = {0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 2.0,
                      3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0,
                      3.0, 3.0, 3.0, 3.0, 3.0, 2.5, 1.5, 0.8};
  return p;
}

std::optional<BehaviorProfile> BehaviorProfile::find(const std::string& name) {
  if (name == "townsfolk") return townsfolk();
  if (name == "socialite") return socialite();
  if (name == "commuter") return commuter();
  if (name == "hermit") return hermit();
  return std::nullopt;
}

std::vector<std::string> BehaviorProfile::names() {
  return {"townsfolk", "socialite", "commuter", "hermit"};
}

std::optional<PopulationMix> PopulationMix::parse(const std::string& text,
                                                  std::string* error) {
  PopulationMix mix;
  std::set<std::string> seen;
  for (const std::string& raw : split(text, ',')) {
    const std::string entry = trim(raw);
    if (entry.empty()) {
      if (error != nullptr) {
        *error = "empty population entry (trailing comma?)";
      }
      return std::nullopt;
    }
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      if (error != nullptr) {
        *error = strformat("population entry '%s' is not name:weight",
                           entry.c_str());
      }
      return std::nullopt;
    }
    const std::string name = trim(entry.substr(0, colon));
    const std::string weight_text = trim(entry.substr(colon + 1));
    if (!BehaviorProfile::find(name)) {
      if (error != nullptr) {
        *error = strformat("unknown behavior profile '%s' (known: %s)",
                           name.c_str(),
                           join(BehaviorProfile::names(), ", ").c_str());
      }
      return std::nullopt;
    }
    if (!seen.insert(name).second) {
      if (error != nullptr) {
        *error = strformat("duplicate population entry '%s'", name.c_str());
      }
      return std::nullopt;
    }
    double weight = 0.0;
    const char* first = weight_text.data();
    const char* last = weight_text.data() + weight_text.size();
    const auto [ptr, ec] = std::from_chars(first, last, weight);
    if (ec != std::errc{} || ptr != last || !(weight > 0.0) ||
        !std::isfinite(weight)) {
      if (error != nullptr) {
        *error = strformat("population weight '%s' for '%s' must be a "
                           "positive number",
                           weight_text.c_str(), name.c_str());
      }
      return std::nullopt;
    }
    mix.profiles.push_back(name);
    mix.weights.push_back(weight);
  }
  if (mix.profiles.empty()) {
    if (error != nullptr) *error = "population mix is empty";
    return std::nullopt;
  }
  return mix;
}

std::string PopulationMix::to_text() const {
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    char buf[64];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), weights[i]);
    parts.push_back(profiles[i] + ":" +
                    (ec == std::errc{} ? std::string(buf, ptr)
                                       : std::to_string(weights[i])));
  }
  return join(parts, ",");
}

std::vector<std::string> assign_profiles(const PopulationMix& mix,
                                         std::int32_t n_agents,
                                         std::uint64_t seed) {
  AIM_CHECK(n_agents >= 1);
  AIM_CHECK(!mix.profiles.empty() &&
            mix.profiles.size() == mix.weights.size());
  const double weight_sum =
      std::accumulate(mix.weights.begin(), mix.weights.end(), 0.0);
  AIM_CHECK_MSG(weight_sum > 0.0, "population weights must sum > 0");

  // Largest-remainder quotas: floor shares first, then hand the leftover
  // agents to the entries with the biggest fractional parts (ties broken
  // by mix order, so the assignment is fully deterministic).
  const std::size_t k = mix.profiles.size();
  std::vector<std::int32_t> counts(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::int32_t assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double share =
        static_cast<double>(n_agents) * mix.weights[i] / weight_sum;
    counts[i] = static_cast<std::int32_t>(std::floor(share));
    assigned += counts[i];
    remainders.emplace_back(share - std::floor(share), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  const std::int32_t leftover = n_agents - assigned;  // < k by construction
  for (std::int32_t j = 0; j < leftover; ++j) {
    counts[remainders[static_cast<std::size_t>(j) % k].second] += 1;
  }

  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n_agents));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::int32_t c = 0; c < counts[i]; ++c) {
      out.push_back(mix.profiles[i]);
    }
  }
  // Interleave deterministically so agent id does not correlate with
  // profile (ids also pick homes round-robin; a blocked assignment would
  // cluster each profile in one corner of the map).
  Rng rng(splitmix64(seed ^ 0x9090917AC0DE5EEDULL));
  rng.shuffle(out);
  return out;
}

}  // namespace aimetro::trace
