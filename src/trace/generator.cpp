#include "trace/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "world/pathfinding.h"

namespace aimetro::trace {

namespace {

using world::GridMap;

constexpr double kStepsPerHour = 360.0;  // 10 s per step

struct AgentSim {
  AgentId id = -1;
  Tile tile;
  /// This agent's behavior model (the shared profile in homogeneous runs,
  /// its assigned one in heterogeneous runs). Never null after init.
  const BehaviorProfile* profile = nullptr;
  // Daily schedule (step indices).
  Step wake = 0, leave_home = 0, lunch_start = 0, lunch_end = 0;
  Step social_start = 0, home_start = 0, sleep = 0;
  std::string home, work, social;
  // Navigation.
  std::string current_target;
  std::vector<Tile> path;
  std::size_t path_idx = 0;
  // Conversation state.
  Step conversing_until = -1;
  // Output.
  std::vector<LlmCall> calls;
};

Step hour_to_step(double hour) {
  return static_cast<Step>(std::lround(hour * kStepsPerHour));
}

// Tolerates hi < lo (possible with extreme custom profiles): lo wins.
Step clamp_step(Step s, Step lo, Step hi) {
  return hi < lo ? lo : std::clamp(s, lo, hi);
}

/// Deterministically pick a walkable tile inside an arena.
Tile random_tile_in(const GridMap& map, const world::Arena& arena, Rng& rng) {
  for (int tries = 0; tries < 64; ++tries) {
    const Tile t{
        static_cast<std::int32_t>(rng.uniform_int(arena.rect.x0, arena.rect.x1)),
        static_cast<std::int32_t>(
            rng.uniform_int(arena.rect.y0, arena.rect.y1))};
    if (map.walkable(t)) return t;
  }
  return world::nearest_walkable(map, arena.rect.center());
}

std::int32_t sample_tokens(Rng& rng, double mean, double sigma_frac,
                           std::int32_t lo, std::int32_t hi) {
  const double v = rng.normal(mean, mean * sigma_frac);
  return std::clamp(static_cast<std::int32_t>(std::lround(v)), lo, hi);
}

std::uint64_t prompt_hash_for(AgentId agent, CallType type,
                              std::int32_t conversation_id) {
  if (conversation_id >= 0) {
    return conversation_prompt_hash(conversation_id);
  }
  return splitmix64((static_cast<std::uint64_t>(agent) << 8) ^
                    static_cast<std::uint64_t>(type));
}

/// The venues a profile can use on a given map: workplaces weighted by the
/// profile's prefix weights, social venues Zipf-weighted by discovery
/// rank. Heterogeneous populations build one table per distinct profile.
struct VenueTable {
  std::vector<std::string> workplaces;
  std::vector<double> workplace_w;
  std::vector<std::string> socials;
  std::vector<double> social_w;
};

VenueTable discover_venues(const GridMap& map, const BehaviorProfile& profile) {
  VenueTable vt;
  // Per-discovered-arena weights: each prefix's weight is split evenly
  // among the arenas matching it.
  for (std::size_t p = 0; p < profile.workplace_prefixes.size(); ++p) {
    std::vector<const world::Arena*> matched;
    for (const auto& arena : map.arenas()) {
      if (arena.name.rfind(profile.workplace_prefixes[p], 0) == 0) {
        matched.push_back(&arena);
      }
    }
    const double w = p < profile.workplace_weights.size()
                         ? profile.workplace_weights[p]
                         : 1.0;
    for (const auto* arena : matched) {
      vt.workplaces.push_back(arena->name);
      vt.workplace_w.push_back(w / static_cast<double>(matched.size()));
    }
  }
  // Social venues: Zipf over discovery rank — a heavy alpha concentrates
  // the evening population on one hub venue (power-law contact graph).
  for (const auto& prefix : profile.social_prefixes) {
    for (const auto& arena : map.arenas()) {
      if (arena.name.rfind(prefix, 0) == 0) {
        vt.socials.push_back(arena.name);
        vt.social_w.push_back(
            1.0 / std::pow(static_cast<double>(vt.socials.size()),
                           profile.social_zipf_alpha));
      }
    }
  }
  return vt;
}

/// Schedule-stream key for heterogeneous runs: (seed, agent, day) fully
/// determines an agent's routine draws, independent of every other agent.
std::uint64_t agent_day_seed(std::uint64_t seed, AgentId agent,
                             std::int32_t day_index) {
  return splitmix64(seed ^
                    splitmix64(0xA9E47ULL +
                               static_cast<std::uint64_t>(agent) *
                                   0x9e3779b97f4a7c15ULL +
                               (static_cast<std::uint64_t>(day_index) << 40)));
}

}  // namespace

SimulationTrace generate(const GridMap& map, const GeneratorConfig& cfg) {
  AIM_CHECK(cfg.n_agents > 0);
  AIM_CHECK(cfg.steps_per_day > 0);
  AIM_CHECK(cfg.day_index >= 0);
  const bool hetero = !cfg.agent_profiles.empty();
  AIM_CHECK_MSG(!hetero || cfg.agent_profiles.size() ==
                               static_cast<std::size_t>(cfg.n_agents),
                "agent_profiles must be empty or one per agent");
  AIM_CHECK_MSG(cfg.start_tiles.empty() ||
                    cfg.start_tiles.size() ==
                        static_cast<std::size_t>(cfg.n_agents),
                "start_tiles must be empty or one per agent");
  // Day 0 seeds exactly as the historical single-day generator; later days
  // of an episode derive an independent stream so each day rolls fresh
  // randomness (schedules, conversations, fill).
  Rng rng(cfg.day_index == 0
              ? cfg.seed
              : splitmix64(cfg.seed + 0x9e3779b97f4a7c15ULL *
                                          static_cast<std::uint64_t>(
                                              cfg.day_index)));

  const BehaviorProfile& profile = cfg.profile;

  // Discover available homes on the map. Workplaces and social venues are
  // profile-dependent (arena-name prefixes, so the same profile works on
  // any map family): one venue table per distinct profile in the run.
  std::vector<std::string> homes;
  for (const auto& arena : map.arenas()) {
    if (arena.name.rfind("home_", 0) == 0) homes.push_back(arena.name);
  }
  AIM_CHECK_MSG(!homes.empty(), "map has no home_* arenas");

  std::map<std::string, VenueTable> venue_tables;
  auto venues_for = [&](const BehaviorProfile& p) -> const VenueTable& {
    auto it = venue_tables.find(p.name);
    if (it == venue_tables.end()) {
      it = venue_tables.emplace(p.name, discover_venues(map, p)).first;
    }
    return it->second;
  };

  const Step day = cfg.steps_per_day;
  std::vector<AgentSim> sims(static_cast<std::size_t>(cfg.n_agents));
  std::vector<std::vector<Tile>> positions(
      static_cast<std::size_t>(cfg.n_agents));

  for (std::int32_t i = 0; i < cfg.n_agents; ++i) {
    AgentSim& a = sims[static_cast<std::size_t>(i)];
    a.id = i;
    const BehaviorProfile& prof =
        hetero ? cfg.agent_profiles[static_cast<std::size_t>(i)] : profile;
    a.profile = &prof;
    const VenueTable& venues = venues_for(prof);
    // Heterogeneous runs draw each agent's routine from a per-agent stream
    // keyed by (seed, agent, day): the draws are independent of the rest
    // of the population, so changing one agent's profile never perturbs a
    // neighbor's schedule. Homogeneous runs keep the historical shared
    // stream so existing seeds reproduce byte-identical traces.
    Rng agent_stream(agent_day_seed(cfg.seed, i, cfg.day_index));
    Rng& arng = hetero ? agent_stream : rng;
    a.home = homes[static_cast<std::size_t>(i) % homes.size()];
    // Profiles with no (matching) workplace or social venue keep the agent
    // home for that part of the day — the hermit routine.
    a.work = venues.workplaces.empty()
                 ? a.home
                 : venues.workplaces[arng.weighted_index(venues.workplace_w)];
    a.social = venues.socials.empty()
                   ? a.home
                   : venues.socials[arng.weighted_index(venues.social_w)];
    // Daily routines are clock-driven: agents wake on quarter-hour marks,
    // so their wake-up planning bursts align across agents (this is what
    // keeps lock-step sync comparatively cheap in the early-morning quiet
    // hour, §4.3).
    a.wake = clamp_step(
        hour_to_step(arng.normal(prof.wake_hour_mean, prof.wake_hour_sigma)),
        hour_to_step(std::max(0.0, prof.wake_hour_mean - 1.5)),
        hour_to_step(prof.wake_hour_mean + 1.5));
    a.wake = (a.wake / 90) * 90;
    a.leave_home = a.wake + static_cast<Step>(arng.uniform_int(120, 300));
    a.lunch_start = clamp_step(
        hour_to_step(
            arng.normal(prof.lunch_hour_mean, prof.lunch_hour_sigma)),
        std::max<Step>(a.leave_home,
                       hour_to_step(prof.lunch_hour_mean - 0.5)),
        hour_to_step(prof.lunch_hour_mean + 0.7));
    a.lunch_end = a.lunch_start + static_cast<Step>(arng.uniform_int(200, 380));
    a.social_start = clamp_step(
        hour_to_step(
            arng.normal(prof.social_hour_mean, prof.social_hour_sigma)),
        std::max<Step>(a.lunch_end,
                       hour_to_step(prof.social_hour_mean - 1.5)),
        hour_to_step(prof.social_hour_mean + 2.0));
    a.home_start = clamp_step(hour_to_step(arng.normal(prof.home_hour_mean, 0.8)),
                              a.social_start + 60,
                              hour_to_step(prof.home_hour_mean + 2.0));
    a.sleep = clamp_step(hour_to_step(arng.normal(prof.sleep_hour_mean, 0.8)),
                         a.home_start + 60, day);
    // Start in bed at home.
    const world::Arena* home = map.arena(a.home);
    AIM_CHECK(home != nullptr);
    Tile bed = home->rect.center();
    // Crowded maps may share homes: jitter within the plot.
    bed.x = std::clamp(bed.x + static_cast<std::int32_t>(arng.uniform_int(-2, 2)),
                       home->rect.x0, home->rect.x1);
    a.tile = world::nearest_walkable(map, bed);
    if (!cfg.start_tiles.empty()) {
      // Cross-day carry-over: this day starts exactly where the previous
      // one ended (typically in bed anyway — the routine ends at home).
      a.tile = cfg.start_tiles[static_cast<std::size_t>(i)];
    }
    positions[static_cast<std::size_t>(i)].reserve(
        static_cast<std::size_t>(day) + 1);
    positions[static_cast<std::size_t>(i)].push_back(a.tile);
  }

  auto target_arena_at = [&](const AgentSim& a, Step s) -> const std::string& {
    if (s < a.leave_home) return a.home;
    if (s < a.lunch_start) return a.work;
    if (s < a.lunch_end) {
      // Lunch out only for agents who actually left home for work.
      static const std::string kCafe = "cafe";
      return (a.work != a.home && map.arena("cafe")) ? kCafe : a.work;
    }
    if (s < a.social_start) return a.work;
    if (s < a.home_start) return a.social;
    return a.home;
  };

  std::int32_t next_conversation_id = 0;
  std::vector<Interaction> interactions;
  std::map<std::pair<AgentId, AgentId>, Step> last_conversation;

  // Scheduled conversation turns: step -> (speaker, partner, conv id, turn).
  struct Turn {
    AgentId speaker, partner;
    std::int32_t conv_id, turn_idx;
  };
  std::map<Step, std::vector<Turn>> scheduled_turns;

  // ---- Pass A: movement, conversations, wake-up planning, reflections ----
  for (std::int32_t i = 0; i < cfg.n_agents; ++i) {
    AgentSim& a = sims[static_cast<std::size_t>(i)];
    // Wake-up burst: daily plan + schedule decompositions.
    a.calls.push_back(LlmCall{a.id, a.wake, 0, CallType::kDailyPlan,
                              sample_tokens(rng, 820, 0.12, 400, 1600),
                              sample_tokens(rng, 260, 0.15, 120, 500),
                              prompt_hash_for(a.id, CallType::kDailyPlan, -1),
                              -1});
    const int decomp = static_cast<int>(rng.uniform_int(2, 3));
    for (int k = 0; k < decomp; ++k) {
      a.calls.push_back(
          LlmCall{a.id, a.wake + 1 + k, 0, CallType::kScheduleDecomp,
                  sample_tokens(rng, 700, 0.12, 300, 1400),
                  sample_tokens(rng, 120, 0.2, 40, 300),
                  prompt_hash_for(a.id, CallType::kScheduleDecomp, -1), -1});
    }
    // Reflections at 2-3 random awake steps.
    const int reflections = static_cast<int>(rng.uniform_int(2, 3));
    for (int k = 0; k < reflections; ++k) {
      const Step s = static_cast<Step>(
          rng.uniform_int(a.wake + 600, std::max<Step>(a.wake + 601, a.sleep - 60)));
      a.calls.push_back(LlmCall{a.id, std::min(s, day - 1), 0,
                                CallType::kReflect,
                                sample_tokens(rng, 1100, 0.15, 500, 2200),
                                sample_tokens(rng, 110, 0.2, 40, 250),
                                prompt_hash_for(a.id, CallType::kReflect, -1),
                                -1});
    }
  }

  for (Step s = 0; s < day; ++s) {
    const auto hour = static_cast<std::size_t>(
        std::min<Step>(23, static_cast<Step>(s / kStepsPerHour)));

    // Emit scheduled conversation turns for this step.
    if (auto it = scheduled_turns.find(s); it != scheduled_turns.end()) {
      for (const Turn& turn : it->second) {
        AgentSim& speaker = sims[static_cast<std::size_t>(turn.speaker)];
        speaker.calls.push_back(LlmCall{
            turn.speaker, s, 0, CallType::kConverse,
            sample_tokens(rng, 560.0 + 38.0 * turn.turn_idx, 0.1, 200, 3000),
            sample_tokens(rng, 26, 0.3, 4, 80),
            prompt_hash_for(turn.speaker, CallType::kConverse, turn.conv_id),
            turn.conv_id});
        interactions.push_back(Interaction{s, std::min(turn.speaker, turn.partner),
                                           std::max(turn.speaker, turn.partner)});
      }
    }

    // Movement.
    for (auto& a : sims) {
      const bool asleep = s < a.wake || s >= a.sleep;
      if (asleep || a.conversing_until >= s) {
        positions[static_cast<std::size_t>(a.id)].push_back(a.tile);
        continue;
      }
      const std::string& want = target_arena_at(a, s);
      if (want != a.current_target) {
        a.current_target = want;
        const world::Arena* arena = map.arena(want);
        AIM_CHECK(arena != nullptr);
        const Tile goal = random_tile_in(map, *arena, rng);
        a.path = world::find_path(map, a.tile, goal);
        a.path_idx = a.path.empty() ? 0 : 1;  // path[0] == current tile
      }
      if (a.path_idx < a.path.size()) {
        a.tile = a.path[a.path_idx++];
      } else if (rng.bernoulli(0.15)) {
        // Idle wander within the current arena.
        const world::Arena* arena = map.arena_at(a.tile);
        auto neighbors = map.neighbors(a.tile);
        std::vector<Tile> candidates;
        for (Tile n : neighbors) {
          if (!arena || arena->rect.contains(n)) candidates.push_back(n);
        }
        if (!candidates.empty()) {
          a.tile = candidates[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(candidates.size()) - 1))];
        }
      }
      positions[static_cast<std::size_t>(a.id)].push_back(a.tile);
    }

    // Conversation kick-off: co-located awake idle agents.
    for (std::size_t i = 0; i < sims.size(); ++i) {
      AgentSim& a = sims[i];
      if (s < a.wake || s >= a.sleep || a.conversing_until >= s) continue;
      for (std::size_t j = i + 1; j < sims.size(); ++j) {
        AgentSim& b = sims[j];
        if (s < b.wake || s >= b.sleep || b.conversing_until >= s) continue;
        if (euclidean(a.tile.center(), b.tile.center()) > cfg.radius_p) continue;
        const auto pair_key = std::make_pair(a.id, b.id);
        const BehaviorProfile& pa = *a.profile;
        const BehaviorProfile& pb = *b.profile;
        auto lit = last_conversation.find(pair_key);
        if (lit != last_conversation.end() &&
            s - lit->second < std::max(pa.conversation_cooldown_steps,
                                       pb.conversation_cooldown_steps)) {
          continue;
        }
        // Socializing follows the initiator's diurnal intensity: frequent,
        // long conversations at the midday peak, rare brief exchanges in
        // the early morning (§4.3: "busy hours feature long
        // conversations").
        double peak_weight = 0.0;
        for (double w : pa.hourly_weights) {
          peak_weight = std::max(peak_weight, w);
        }
        const double conv_intensity = pa.hourly_weights[hour] / peak_weight;
        // A conversation needs both sides willing: across profiles the
        // pair propensity is the geometric mean, so a hermit (propensity
        // 0) never converses no matter how pushy the other side is. The
        // homogeneous path keeps the plain per-profile propensity
        // (bit-exact with historical traces; sqrt(p*p) can differ by an
        // ulp).
        const double start_prob =
            hetero ? std::sqrt(pa.conversation_start_prob *
                               pb.conversation_start_prob)
                   : pa.conversation_start_prob;
        if (!rng.bernoulli(start_prob * std::max(0.1, conv_intensity))) {
          continue;
        }
        const int n_turns =
            3 + static_cast<int>(rng.poisson(1.4 * pa.hourly_weights[hour] *
                                             pa.conversation_length_scale));
        const std::int32_t conv_id = next_conversation_id++;
        Step turn_step = s + 1;
        for (int t = 0; t < n_turns && turn_step < day; ++t) {
          const AgentId speaker = (t % 2 == 0) ? a.id : b.id;
          const AgentId partner = (t % 2 == 0) ? b.id : a.id;
          scheduled_turns[turn_step].push_back(Turn{speaker, partner, conv_id, t});
          turn_step += 1;
        }
        const Step conv_end = std::min<Step>(turn_step, day - 1);
        a.conversing_until = conv_end;
        b.conversing_until = conv_end;
        last_conversation[pair_key] = conv_end;
        break;  // agent a starts at most one conversation per step
      }
    }
  }

  // ---- Pass B: routine fill to hit the diurnal call-count profile ----
  const double total_target = cfg.target_calls_per_25_agents *
                              (static_cast<double>(cfg.n_agents) / 25.0);

  // Per-hour call targets. Homogeneous: the profile's normalized curve
  // (the historical expression, kept verbatim for bit-exact seeds).
  // Heterogeneous: each agent's equal share of the day's calls spread over
  // its own diurnal curve, summed — so a population of commuters and
  // socialites shows both the rush-hour spikes and the evening plateau.
  std::array<double, 24> target_by_hour{};
  std::vector<double> agent_curve_sum(sims.size(), 0.0);
  if (!hetero) {
    double weight_sum = 0.0;
    for (double w : cfg.profile.hourly_weights) weight_sum += w;
    AIM_CHECK(weight_sum > 0.0);
    for (std::size_t h = 0; h < 24; ++h) {
      target_by_hour[h] =
          total_target * cfg.profile.hourly_weights[h] / weight_sum;
    }
  } else {
    const double per_agent =
        total_target / static_cast<double>(cfg.n_agents);
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const BehaviorProfile& prof = *sims[i].profile;
      double wsum = 0.0;
      for (double w : prof.hourly_weights) wsum += w;
      AIM_CHECK_MSG(wsum > 0.0, "profile '" << prof.name
                                            << "' has an all-zero curve");
      agent_curve_sum[i] = wsum;
      for (std::size_t h = 0; h < 24; ++h) {
        target_by_hour[h] += per_agent * prof.hourly_weights[h] / wsum;
      }
    }
  }

  // Existing (pass A) calls and input tokens per hour.
  std::array<double, 24> existing{};
  double nonroutine_input_sum = 0.0;
  std::size_t nonroutine_count = 0;
  for (const auto& a : sims) {
    for (const auto& c : a.calls) {
      existing[static_cast<std::size_t>(
          std::min<Step>(23, static_cast<Step>(c.step / kStepsPerHour)))] += 1.0;
      nonroutine_input_sum += c.input_tokens;
      ++nonroutine_count;
    }
  }

  // Choose the routine input-token mean so the trace-wide mean hits the
  // calibration target.
  double routine_quota = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    routine_quota += std::max(0.0, target_by_hour[h] - existing[h]);
  }
  const double routine_input_mean =
      routine_quota > 0.0
          ? std::clamp((cfg.mean_input_tokens *
                            (routine_quota + static_cast<double>(nonroutine_count)) -
                        nonroutine_input_sum) /
                           routine_quota,
                       64.0, 2048.0)
          : cfg.mean_input_tokens;

  // Awake agents per hour for fill sampling.
  std::array<std::vector<AgentId>, 24> awake_by_hour;
  for (const auto& a : sims) {
    for (std::size_t h = 0; h < 24; ++h) {
      const Step h0 = static_cast<Step>(h * kStepsPerHour);
      const Step h1 = h0 + static_cast<Step>(kStepsPerHour);
      if (a.wake < h1 && a.sleep > h0) awake_by_hour[h].push_back(a.id);
    }
  }

  static const CallType kBurstPattern[4] = {CallType::kPerceive,
                                            CallType::kRetrieve,
                                            CallType::kReact, CallType::kPlan};
  // Output means per routine type, tuned so the trace-wide output mean
  // lands at ~21.9 alongside the heavier plan/reflect/converse calls.
  static const double kBurstOutMean[4] = {16.0, 13.0, 38.0, 35.0};

  // The workload is heavily imbalanced across agents (§2.2, Figure 1):
  // within an hour a few agents dominate, issuing long serial chains, while
  // most agents stay quiet. Skewed per-(agent, hour) activity weights plus
  // heavy-tailed task chain lengths reproduce that sparsity, which is what
  // limits lock-step parallelism in the first place.
  for (std::size_t h = 0; h < 24; ++h) {
    double deficit = target_by_hour[h] - existing[h];
    const auto& candidates = awake_by_hour[h];
    if (candidates.empty()) continue;
    // Mild per-agent skew: the *step-level* dominance (long bursts below)
    // rotates across agents, matching Figure 1 — heavy steps, but hourly
    // totals spread enough that out-of-order execution can overlap them.
    // Heterogeneous runs additionally weight each candidate by its own
    // curve's share of the hour, so a commuter soaks up rush-hour fill and
    // a socialite the evening's.
    std::vector<double> weights(candidates.size());
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      weights[ci] = std::exp(rng.normal(0.0, 0.6));
      if (hetero) {
        const auto idx = static_cast<std::size_t>(candidates[ci]);
        weights[ci] *= std::max(
            1e-6, sims[idx].profile->hourly_weights[h] / agent_curve_sum[idx]);
      }
    }
    const Step h0 = static_cast<Step>(h * kStepsPerHour);
    while (deficit >= 1.0) {
      AgentSim& a =
          sims[static_cast<std::size_t>(candidates[rng.weighted_index(weights)])];
      // Busy hours feature heavy multi-call tasks (long conversations,
      // deep planning); quiet hours are mostly uniform one-or-two-call
      // routines — the §4.3 contrast that makes lock-step sync cheap at
      // 6am and expensive at noon. "Busy" is judged on the selected
      // agent's own curve (identical for every agent when homogeneous).
      double max_weight = 0.0;
      for (double w : a.profile->hourly_weights) {
        max_weight = std::max(max_weight, w);
      }
      const double intensity = a.profile->hourly_weights[h] / max_weight;
      const double p_task = 0.25 * intensity;
      const double task_len_lambda = 1.0 + 7.0 * intensity;
      // In light hours agents run the same clock-driven routines (waking,
      // checking schedules), so their small calls align on common steps —
      // which is why the paper sees parallel-sync do comparatively well in
      // the quiet hour (§4.3). Busy hours are event-driven and unaligned.
      const double p_pulse = 0.9 * (1.0 - intensity);
      const Step lo = std::max(h0, a.wake);
      const Step hi = std::min<Step>(h0 + static_cast<Step>(kStepsPerHour) - 1,
                                     a.sleep - 1);
      if (lo > hi) continue;
      Step s = static_cast<Step>(rng.uniform_int(lo, hi));
      int burst;
      if (rng.bernoulli(p_pulse)) {
        // Clock-aligned routine: snap to the enclosing 2.5-minute boundary.
        s = std::max(lo, static_cast<Step>(s / 15) * 15);
        burst = 1 + static_cast<int>(rng.poisson(0.5));
      } else if (rng.bernoulli(p_task)) {
        burst = 5 + static_cast<int>(rng.poisson(task_len_lambda));
      } else {
        burst = 1 + static_cast<int>(rng.poisson(1.0));  // routine check
      }
      burst = std::min(burst, 24);
      for (int k = 0; k < burst; ++k) {
        const CallType type = kBurstPattern[k % 4];
        a.calls.push_back(
            LlmCall{a.id, s, 0, type,
                    sample_tokens(rng, routine_input_mean, 0.45, 48, 3000),
                    sample_tokens(rng, kBurstOutMean[k % 4], 0.4, 3, 120),
                    prompt_hash_for(a.id, type, -1), -1});
      }
      deficit -= burst;
    }
  }

  // ---- Assemble ----
  SimulationTrace out;
  out.n_agents = cfg.n_agents;
  out.n_steps = day;
  out.start_step = 0;
  out.radius_p = cfg.radius_p;
  out.max_vel = cfg.max_vel;
  out.map_width = map.width();
  out.map_height = map.height();
  out.agents.resize(static_cast<std::size_t>(cfg.n_agents));
  for (std::int32_t i = 0; i < cfg.n_agents; ++i) {
    AgentTrace& at = out.agents[static_cast<std::size_t>(i)];
    at.agent = i;
    at.positions = std::move(positions[static_cast<std::size_t>(i)]);
    AIM_CHECK(at.positions.size() == static_cast<std::size_t>(day) + 1);
    auto& calls = sims[static_cast<std::size_t>(i)].calls;
    std::stable_sort(calls.begin(), calls.end(),
                     [](const LlmCall& x, const LlmCall& y) {
                       return x.step < y.step;
                     });
    std::int32_t seq = 0;
    Step prev = -1;
    for (auto& c : calls) {
      seq = (c.step == prev) ? seq + 1 : 0;
      prev = c.step;
      c.seq = seq;
    }
    at.calls = std::move(calls);
  }
  std::sort(interactions.begin(), interactions.end(),
            [](const Interaction& x, const Interaction& y) {
              if (x.step != y.step) return x.step < y.step;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  interactions.erase(std::unique(interactions.begin(), interactions.end()),
                     interactions.end());
  out.interactions = std::move(interactions);
  out.validate();
  return out;
}

SimulationTrace generate_episode(const world::GridMap& map,
                                 const GeneratorConfig& cfg) {
  AIM_CHECK(cfg.days >= 1);
  if (cfg.days == 1) {
    // Byte-identical to the historical single-day generator.
    return generate(map, cfg);
  }
  std::vector<SimulationTrace> day_traces;
  day_traces.reserve(static_cast<std::size_t>(cfg.days));
  GeneratorConfig day_cfg = cfg;
  for (std::int32_t d = 0; d < cfg.days; ++d) {
    day_cfg.day_index = d;
    if (d > 0) {
      // Cross-day carry-over: day d starts exactly where day d-1 ended.
      day_cfg.start_tiles.clear();
      for (const AgentTrace& a : day_traces.back().agents) {
        day_cfg.start_tiles.push_back(a.positions.back());
      }
    }
    day_traces.push_back(generate(map, day_cfg));
  }
  return concatenate_days(day_traces);
}

SimulationTrace generate_concatenated(const GridMap& segment,
                                      std::int32_t n_segments,
                                      const GeneratorConfig& base) {
  AIM_CHECK(n_segments >= 1);
  return generate_concatenated(
      segment,
      std::vector<std::int32_t>(static_cast<std::size_t>(n_segments),
                                base.n_agents),
      base);
}

SimulationTrace generate_concatenated(
    const GridMap& segment, const std::vector<std::int32_t>& agents_per_segment,
    const GeneratorConfig& base) {
  AIM_CHECK(!agents_per_segment.empty());
  const std::int32_t total = std::accumulate(agents_per_segment.begin(),
                                             agents_per_segment.end(), 0);
  AIM_CHECK_MSG(base.agent_profiles.empty() ||
                    base.agent_profiles.size() ==
                        static_cast<std::size_t>(total),
                "agent_profiles must cover the combined segment population");
  if (agents_per_segment.size() == 1) {
    GeneratorConfig cfg = base;
    cfg.n_agents = agents_per_segment.front();
    return generate_episode(segment, cfg);
  }
  std::vector<SimulationTrace> segments;
  segments.reserve(agents_per_segment.size());
  std::int32_t agent_offset = 0;
  for (std::size_t k = 0; k < agents_per_segment.size(); ++k) {
    GeneratorConfig cfg = base;
    cfg.n_agents = agents_per_segment[k];
    cfg.seed = base.seed + static_cast<std::uint64_t>(k) * 0x9e3779b9ULL;
    if (!base.agent_profiles.empty()) {
      // Split the heterogeneous assignment across segments in id order.
      const auto begin =
          base.agent_profiles.begin() + agent_offset;
      cfg.agent_profiles.assign(begin, begin + agents_per_segment[k]);
    }
    agent_offset += agents_per_segment[k];
    segments.push_back(generate_episode(segment, cfg));
  }
  return concatenate_segments(segments, segment.width() + 1);
}

SimulationTrace generate_large_ville(std::int32_t n_segments,
                                     const GeneratorConfig& base) {
  const GridMap segment_map =
      GridMap::smallville(std::min<std::int32_t>(base.n_agents, 26));
  return generate_concatenated(segment_map, n_segments, base);
}

SimulationTrace generate_social_graph(
    const std::vector<std::vector<std::int32_t>>& adjacency,
    const GeneratorConfig& cfg) {
  AIM_CHECK(cfg.n_agents > 0);
  AIM_CHECK(cfg.steps_per_day > 0);
  AIM_CHECK_MSG(cfg.day_index == 0 && cfg.start_tiles.empty(),
                "graph scenarios are single-day");
  AIM_CHECK_MSG(cfg.max_vel >= 1.0 - 1e-9,
                "graph agents hop one edge per step; cfg.max_vel must be >= 1");
  const auto n_nodes = static_cast<std::int32_t>(adjacency.size());
  AIM_CHECK_MSG(n_nodes >= 2, "social graph needs at least two nodes");
  const bool hetero = !cfg.agent_profiles.empty();
  AIM_CHECK_MSG(!hetero || cfg.agent_profiles.size() ==
                               static_cast<std::size_t>(cfg.n_agents),
                "agent_profiles must be empty or one per agent");

  Rng rng(cfg.seed);
  const Step day = cfg.steps_per_day;

  // Per node: the highest-degree neighbor (ties to the smaller id, which
  // sorted adjacency gives for free) — the hub agents drift toward during
  // social hours. This is the graph analogue of the Zipf venue choice: a
  // few well-connected nodes mediate most agent meetings.
  std::vector<std::int32_t> hub_neighbor(static_cast<std::size_t>(n_nodes), -1);
  for (std::int32_t v = 0; v < n_nodes; ++v) {
    std::int32_t best = -1;
    std::size_t best_deg = 0;
    for (std::int32_t nb : adjacency[static_cast<std::size_t>(v)]) {
      const std::size_t deg = adjacency[static_cast<std::size_t>(nb)].size();
      if (deg > best_deg) {
        best_deg = deg;
        best = nb;
      }
    }
    hub_neighbor[static_cast<std::size_t>(v)] = best;
  }

  std::vector<AgentSim> sims(static_cast<std::size_t>(cfg.n_agents));
  std::vector<std::vector<Tile>> positions(
      static_cast<std::size_t>(cfg.n_agents));
  std::vector<double> agent_peak(sims.size(), 1.0);
  for (std::int32_t i = 0; i < cfg.n_agents; ++i) {
    AgentSim& a = sims[static_cast<std::size_t>(i)];
    a.id = i;
    const BehaviorProfile& prof =
        hetero ? cfg.agent_profiles[static_cast<std::size_t>(i)] : cfg.profile;
    a.profile = &prof;
    double peak = 0.0;
    for (double w : prof.hourly_weights) peak = std::max(peak, w);
    AIM_CHECK_MSG(peak > 0.0,
                  "profile '" << prof.name << "' has an all-zero curve");
    agent_peak[static_cast<std::size_t>(i)] = peak;
    Rng agent_stream(agent_day_seed(cfg.seed, i, 0));
    Rng& arng = hetero ? agent_stream : rng;
    // Same clock-driven schedule shape as the grid generator: quarter-hour
    // wake marks keep the morning planning bursts aligned across agents.
    a.wake = clamp_step(
        hour_to_step(arng.normal(prof.wake_hour_mean, prof.wake_hour_sigma)),
        hour_to_step(std::max(0.0, prof.wake_hour_mean - 1.5)),
        hour_to_step(prof.wake_hour_mean + 1.5));
    a.wake = (a.wake / 90) * 90;
    a.social_start = clamp_step(
        hour_to_step(
            arng.normal(prof.social_hour_mean, prof.social_hour_sigma)),
        a.wake + 60, hour_to_step(prof.social_hour_mean + 2.0));
    a.home_start =
        clamp_step(hour_to_step(arng.normal(prof.home_hour_mean, 0.8)),
                   a.social_start + 60,
                   hour_to_step(prof.home_hour_mean + 2.0));
    a.sleep = clamp_step(hour_to_step(arng.normal(prof.sleep_hour_mean, 0.8)),
                         a.home_start + 60, day);
    // Home node: spread the population over the whole graph.
    a.tile = Tile{static_cast<std::int32_t>(arng.uniform_int(0, n_nodes - 1)),
                  0};
    positions[static_cast<std::size_t>(i)].reserve(
        static_cast<std::size_t>(day) + 1);
    positions[static_cast<std::size_t>(i)].push_back(a.tile);
  }

  std::int32_t next_conversation_id = 0;
  std::vector<Interaction> interactions;
  std::map<std::pair<AgentId, AgentId>, Step> last_conversation;
  struct Turn {
    AgentId speaker, partner;
    std::int32_t conv_id, turn_idx;
  };
  std::map<Step, std::vector<Turn>> scheduled_turns;

  // ---- Pass A: movement, conversations, wake-up planning, reflections ----
  for (std::int32_t i = 0; i < cfg.n_agents; ++i) {
    AgentSim& a = sims[static_cast<std::size_t>(i)];
    a.calls.push_back(LlmCall{a.id, a.wake, 0, CallType::kDailyPlan,
                              sample_tokens(rng, 820, 0.12, 400, 1600),
                              sample_tokens(rng, 260, 0.15, 120, 500),
                              prompt_hash_for(a.id, CallType::kDailyPlan, -1),
                              -1});
    const int decomp = static_cast<int>(rng.uniform_int(2, 3));
    for (int k = 0; k < decomp; ++k) {
      a.calls.push_back(
          LlmCall{a.id, a.wake + 1 + k, 0, CallType::kScheduleDecomp,
                  sample_tokens(rng, 700, 0.12, 300, 1400),
                  sample_tokens(rng, 120, 0.2, 40, 300),
                  prompt_hash_for(a.id, CallType::kScheduleDecomp, -1), -1});
    }
    const int reflections = static_cast<int>(rng.uniform_int(2, 3));
    for (int k = 0; k < reflections; ++k) {
      const Step s = static_cast<Step>(rng.uniform_int(
          a.wake + 600, std::max<Step>(a.wake + 601, a.sleep - 60)));
      a.calls.push_back(LlmCall{a.id, std::min(s, day - 1), 0,
                                CallType::kReflect,
                                sample_tokens(rng, 1100, 0.15, 500, 2200),
                                sample_tokens(rng, 110, 0.2, 40, 250),
                                prompt_hash_for(a.id, CallType::kReflect, -1),
                                -1});
    }
  }

  // Node buckets reused across steps (cleared through the touched list, so
  // a step costs O(population), not O(nodes)).
  std::vector<std::vector<AgentId>> node_bucket(
      static_cast<std::size_t>(n_nodes));
  std::vector<std::int32_t> touched;

  for (Step s = 0; s < day; ++s) {
    const auto hour = static_cast<std::size_t>(
        std::min<Step>(23, static_cast<Step>(s / kStepsPerHour)));

    // Emit scheduled conversation turns for this step.
    if (auto it = scheduled_turns.find(s); it != scheduled_turns.end()) {
      for (const Turn& turn : it->second) {
        AgentSim& speaker = sims[static_cast<std::size_t>(turn.speaker)];
        speaker.calls.push_back(LlmCall{
            turn.speaker, s, 0, CallType::kConverse,
            sample_tokens(rng, 560.0 + 38.0 * turn.turn_idx, 0.1, 200, 3000),
            sample_tokens(rng, 26, 0.3, 4, 80),
            prompt_hash_for(turn.speaker, CallType::kConverse, turn.conv_id),
            turn.conv_id});
        interactions.push_back(
            Interaction{s, std::min(turn.speaker, turn.partner),
                        std::max(turn.speaker, turn.partner)});
      }
    }

    // Movement: stay-or-one-hop random walk with the profile's diurnal
    // intensity; social hours bias the hop toward the highest-degree
    // neighbor, funneling the population onto hub nodes.
    for (auto& a : sims) {
      const bool asleep = s < a.wake || s >= a.sleep;
      if (asleep || a.conversing_until >= s) {
        positions[static_cast<std::size_t>(a.id)].push_back(a.tile);
        continue;
      }
      const double intensity = a.profile->hourly_weights[hour] /
                               agent_peak[static_cast<std::size_t>(a.id)];
      if (rng.bernoulli(0.05 + 0.25 * intensity)) {
        const auto& nbrs = adjacency[static_cast<std::size_t>(a.tile.x)];
        if (!nbrs.empty()) {
          const bool social = s >= a.social_start && s < a.home_start;
          const std::int32_t hub =
              hub_neighbor[static_cast<std::size_t>(a.tile.x)];
          std::int32_t dest;
          if (social && hub >= 0 && rng.bernoulli(0.6)) {
            dest = hub;
          } else {
            dest = nbrs[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(nbrs.size()) - 1))];
          }
          a.tile = Tile{dest, 0};
        }
      }
      positions[static_cast<std::size_t>(a.id)].push_back(a.tile);
    }

    // Conversation kick-off: same-node awake idle agents, paired within
    // their node bucket. Filling buckets in agent-id order keeps the pair
    // stream deterministic and avoids the grid generator's O(n^2) pair
    // scan, which would not survive 10k agents.
    touched.clear();
    for (const auto& a : sims) {
      if (s < a.wake || s >= a.sleep || a.conversing_until >= s) continue;
      auto& bucket = node_bucket[static_cast<std::size_t>(a.tile.x)];
      if (bucket.empty()) touched.push_back(a.tile.x);
      bucket.push_back(a.id);
    }
    for (std::int32_t node : touched) {
      auto& bucket = node_bucket[static_cast<std::size_t>(node)];
      for (std::size_t bi = 0; bi + 1 < bucket.size(); ++bi) {
        AgentSim& a = sims[static_cast<std::size_t>(bucket[bi])];
        AgentSim& b = sims[static_cast<std::size_t>(bucket[bi + 1])];
        if (a.conversing_until >= s || b.conversing_until >= s) continue;
        const auto pair_key = std::make_pair(a.id, b.id);
        const BehaviorProfile& pa = *a.profile;
        const BehaviorProfile& pb = *b.profile;
        auto lit = last_conversation.find(pair_key);
        if (lit != last_conversation.end() &&
            s - lit->second < std::max(pa.conversation_cooldown_steps,
                                       pb.conversation_cooldown_steps)) {
          continue;
        }
        const double conv_intensity =
            pa.hourly_weights[hour] / agent_peak[static_cast<std::size_t>(a.id)];
        const double start_prob =
            hetero ? std::sqrt(pa.conversation_start_prob *
                               pb.conversation_start_prob)
                   : pa.conversation_start_prob;
        if (!rng.bernoulli(start_prob * std::max(0.1, conv_intensity))) {
          continue;
        }
        const int n_turns =
            3 + static_cast<int>(rng.poisson(1.4 * pa.hourly_weights[hour] *
                                             pa.conversation_length_scale));
        const std::int32_t conv_id = next_conversation_id++;
        Step turn_step = s + 1;
        for (int t = 0; t < n_turns && turn_step < day; ++t) {
          const AgentId speaker = (t % 2 == 0) ? a.id : b.id;
          const AgentId partner = (t % 2 == 0) ? b.id : a.id;
          scheduled_turns[turn_step].push_back(
              Turn{speaker, partner, conv_id, t});
          turn_step += 1;
        }
        const Step conv_end = std::min<Step>(turn_step, day - 1);
        a.conversing_until = conv_end;
        b.conversing_until = conv_end;
        last_conversation[pair_key] = conv_end;
        ++bi;  // b is taken; move past it
      }
      bucket.clear();
    }
  }

  // ---- Pass B: routine fill to hit the diurnal call-count profile ----
  // Identical to the grid generator's fill: it depends only on schedules,
  // profiles, and the pass-A calls, never on world geometry.
  const double total_target = cfg.target_calls_per_25_agents *
                              (static_cast<double>(cfg.n_agents) / 25.0);

  std::array<double, 24> target_by_hour{};
  std::vector<double> agent_curve_sum(sims.size(), 0.0);
  if (!hetero) {
    double weight_sum = 0.0;
    for (double w : cfg.profile.hourly_weights) weight_sum += w;
    AIM_CHECK(weight_sum > 0.0);
    for (std::size_t h = 0; h < 24; ++h) {
      target_by_hour[h] =
          total_target * cfg.profile.hourly_weights[h] / weight_sum;
    }
  } else {
    const double per_agent = total_target / static_cast<double>(cfg.n_agents);
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const BehaviorProfile& prof = *sims[i].profile;
      double wsum = 0.0;
      for (double w : prof.hourly_weights) wsum += w;
      AIM_CHECK_MSG(wsum > 0.0, "profile '" << prof.name
                                            << "' has an all-zero curve");
      agent_curve_sum[i] = wsum;
      for (std::size_t h = 0; h < 24; ++h) {
        target_by_hour[h] += per_agent * prof.hourly_weights[h] / wsum;
      }
    }
  }

  std::array<double, 24> existing{};
  double nonroutine_input_sum = 0.0;
  std::size_t nonroutine_count = 0;
  for (const auto& a : sims) {
    for (const auto& c : a.calls) {
      existing[static_cast<std::size_t>(
          std::min<Step>(23, static_cast<Step>(c.step / kStepsPerHour)))] += 1.0;
      nonroutine_input_sum += c.input_tokens;
      ++nonroutine_count;
    }
  }

  double routine_quota = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    routine_quota += std::max(0.0, target_by_hour[h] - existing[h]);
  }
  const double routine_input_mean =
      routine_quota > 0.0
          ? std::clamp(
                (cfg.mean_input_tokens *
                     (routine_quota + static_cast<double>(nonroutine_count)) -
                 nonroutine_input_sum) /
                    routine_quota,
                64.0, 2048.0)
          : cfg.mean_input_tokens;

  std::array<std::vector<AgentId>, 24> awake_by_hour;
  for (const auto& a : sims) {
    for (std::size_t h = 0; h < 24; ++h) {
      const Step h0 = static_cast<Step>(h * kStepsPerHour);
      const Step h1 = h0 + static_cast<Step>(kStepsPerHour);
      if (a.wake < h1 && a.sleep > h0) awake_by_hour[h].push_back(a.id);
    }
  }

  static const CallType kBurstPattern[4] = {CallType::kPerceive,
                                            CallType::kRetrieve,
                                            CallType::kReact, CallType::kPlan};
  static const double kBurstOutMean[4] = {16.0, 13.0, 38.0, 35.0};

  for (std::size_t h = 0; h < 24; ++h) {
    double deficit = target_by_hour[h] - existing[h];
    const auto& candidates = awake_by_hour[h];
    if (candidates.empty()) continue;
    std::vector<double> weights(candidates.size());
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      weights[ci] = std::exp(rng.normal(0.0, 0.6));
      if (hetero) {
        const auto idx = static_cast<std::size_t>(candidates[ci]);
        weights[ci] *= std::max(
            1e-6, sims[idx].profile->hourly_weights[h] / agent_curve_sum[idx]);
      }
    }
    const Step h0 = static_cast<Step>(h * kStepsPerHour);
    while (deficit >= 1.0) {
      AgentSim& a = sims[static_cast<std::size_t>(
          candidates[rng.weighted_index(weights)])];
      const double intensity = a.profile->hourly_weights[h] /
                               agent_peak[static_cast<std::size_t>(a.id)];
      const double p_task = 0.25 * intensity;
      const double task_len_lambda = 1.0 + 7.0 * intensity;
      const double p_pulse = 0.9 * (1.0 - intensity);
      const Step lo = std::max(h0, a.wake);
      const Step hi = std::min<Step>(h0 + static_cast<Step>(kStepsPerHour) - 1,
                                     a.sleep - 1);
      if (lo > hi) continue;
      Step s = static_cast<Step>(rng.uniform_int(lo, hi));
      int burst;
      if (rng.bernoulli(p_pulse)) {
        s = std::max(lo, static_cast<Step>(s / 15) * 15);
        burst = 1 + static_cast<int>(rng.poisson(0.5));
      } else if (rng.bernoulli(p_task)) {
        burst = 5 + static_cast<int>(rng.poisson(task_len_lambda));
      } else {
        burst = 1 + static_cast<int>(rng.poisson(1.0));
      }
      burst = std::min(burst, 24);
      for (int k = 0; k < burst; ++k) {
        const CallType type = kBurstPattern[k % 4];
        a.calls.push_back(
            LlmCall{a.id, s, 0, type,
                    sample_tokens(rng, routine_input_mean, 0.45, 48, 3000),
                    sample_tokens(rng, kBurstOutMean[k % 4], 0.4, 3, 120),
                    prompt_hash_for(a.id, type, -1), -1});
      }
      deficit -= burst;
    }
  }

  // ---- Assemble ----
  SimulationTrace out;
  out.n_agents = cfg.n_agents;
  out.n_steps = day;
  out.start_step = 0;
  out.radius_p = cfg.radius_p;
  out.max_vel = cfg.max_vel;
  out.map_width = n_nodes;
  out.map_height = 1;
  out.world_kind = WorldKind::kGraph;
  out.graph_adjacency = adjacency;
  out.agents.resize(static_cast<std::size_t>(cfg.n_agents));
  for (std::int32_t i = 0; i < cfg.n_agents; ++i) {
    AgentTrace& at = out.agents[static_cast<std::size_t>(i)];
    at.agent = i;
    at.positions = std::move(positions[static_cast<std::size_t>(i)]);
    AIM_CHECK(at.positions.size() == static_cast<std::size_t>(day) + 1);
    auto& calls = sims[static_cast<std::size_t>(i)].calls;
    std::stable_sort(calls.begin(), calls.end(),
                     [](const LlmCall& x, const LlmCall& y) {
                       return x.step < y.step;
                     });
    std::int32_t seq = 0;
    Step prev = -1;
    for (auto& c : calls) {
      seq = (c.step == prev) ? seq + 1 : 0;
      prev = c.step;
      c.seq = seq;
    }
    at.calls = std::move(calls);
  }
  std::sort(interactions.begin(), interactions.end(),
            [](const Interaction& x, const Interaction& y) {
              if (x.step != y.step) return x.step < y.step;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  interactions.erase(std::unique(interactions.begin(), interactions.end()),
                     interactions.end());
  out.interactions = std::move(interactions);
  out.validate();
  return out;
}

}  // namespace aimetro::trace
