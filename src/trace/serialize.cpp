#include "trace/serialize.h"

#include <cstring>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "common/strings.h"

namespace aimetro::trace {

namespace {

constexpr char kMagic[4] = {'A', 'I', 'M', 'T'};
// v1: grid traces. v2 adds the world kind and, for graph worlds, the
// adjacency lists. Grid traces keep writing v1 so historical streams stay
// byte-identical; the loader accepts both.
constexpr std::uint32_t kGridVersion = 1;
constexpr std::uint32_t kGraphVersion = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  AIM_CHECK_MSG(is.good(), "truncated trace stream");
  return v;
}

}  // namespace

void save_binary(const SimulationTrace& trace, std::ostream& os) {
  const bool graph = trace.world_kind == WorldKind::kGraph;
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, graph ? kGraphVersion : kGridVersion);
  if (graph) {
    write_pod(os, static_cast<std::uint8_t>(trace.world_kind));
    write_pod(os, static_cast<std::uint64_t>(trace.graph_adjacency.size()));
    for (const auto& neighbors : trace.graph_adjacency) {
      write_pod(os, static_cast<std::uint64_t>(neighbors.size()));
      for (std::int32_t v : neighbors) write_pod(os, v);
    }
  }
  write_pod(os, trace.n_agents);
  write_pod(os, trace.n_steps);
  write_pod(os, trace.start_step);
  write_pod(os, trace.seconds_per_step);
  write_pod(os, trace.radius_p);
  write_pod(os, trace.max_vel);
  write_pod(os, trace.map_width);
  write_pod(os, trace.map_height);
  for (const AgentTrace& a : trace.agents) {
    write_pod(os, a.agent);
    write_pod(os, static_cast<std::uint64_t>(a.positions.size()));
    for (const Tile& t : a.positions) {
      write_pod(os, t.x);
      write_pod(os, t.y);
    }
    write_pod(os, static_cast<std::uint64_t>(a.calls.size()));
    for (const LlmCall& c : a.calls) {
      write_pod(os, c.step);
      write_pod(os, c.seq);
      write_pod(os, static_cast<std::uint8_t>(c.type));
      write_pod(os, c.input_tokens);
      write_pod(os, c.output_tokens);
      write_pod(os, c.prompt_hash);
      write_pod(os, c.conversation_id);
    }
  }
  write_pod(os, static_cast<std::uint64_t>(trace.interactions.size()));
  for (const Interaction& in : trace.interactions) {
    write_pod(os, in.step);
    write_pod(os, in.a);
    write_pod(os, in.b);
  }
  AIM_CHECK_MSG(os.good(), "trace write failed");
}

SimulationTrace load_binary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  AIM_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                "not an AIMT trace stream");
  const auto version = read_pod<std::uint32_t>(is);
  AIM_CHECK_MSG(version == kGridVersion || version == kGraphVersion,
                "unsupported trace version " << version);
  SimulationTrace trace;
  if (version == kGraphVersion) {
    trace.world_kind = static_cast<WorldKind>(read_pod<std::uint8_t>(is));
    const auto n_nodes = read_pod<std::uint64_t>(is);
    AIM_CHECK(n_nodes > 0 && n_nodes < 10'000'000);
    trace.graph_adjacency.resize(n_nodes);
    for (auto& neighbors : trace.graph_adjacency) {
      const auto n_neighbors = read_pod<std::uint64_t>(is);
      AIM_CHECK(n_neighbors < n_nodes);
      neighbors.reserve(n_neighbors);
      for (std::uint64_t i = 0; i < n_neighbors; ++i) {
        neighbors.push_back(read_pod<std::int32_t>(is));
      }
    }
  }
  trace.n_agents = read_pod<std::int32_t>(is);
  trace.n_steps = read_pod<Step>(is);
  trace.start_step = read_pod<Step>(is);
  trace.seconds_per_step = read_pod<double>(is);
  trace.radius_p = read_pod<double>(is);
  trace.max_vel = read_pod<double>(is);
  trace.map_width = read_pod<std::int32_t>(is);
  trace.map_height = read_pod<std::int32_t>(is);
  AIM_CHECK(trace.n_agents >= 0 && trace.n_agents < 1'000'000);
  trace.agents.resize(static_cast<std::size_t>(trace.n_agents));
  for (AgentTrace& a : trace.agents) {
    a.agent = read_pod<AgentId>(is);
    const auto n_pos = read_pod<std::uint64_t>(is);
    AIM_CHECK(n_pos == static_cast<std::uint64_t>(trace.n_steps) + 1);
    a.positions.reserve(n_pos);
    for (std::uint64_t i = 0; i < n_pos; ++i) {
      Tile t;
      t.x = read_pod<std::int32_t>(is);
      t.y = read_pod<std::int32_t>(is);
      a.positions.push_back(t);
    }
    const auto n_calls = read_pod<std::uint64_t>(is);
    a.calls.reserve(n_calls);
    for (std::uint64_t i = 0; i < n_calls; ++i) {
      LlmCall c;
      c.agent = a.agent;
      c.step = read_pod<Step>(is);
      c.seq = read_pod<std::int32_t>(is);
      c.type = static_cast<CallType>(read_pod<std::uint8_t>(is));
      c.input_tokens = read_pod<std::int32_t>(is);
      c.output_tokens = read_pod<std::int32_t>(is);
      c.prompt_hash = read_pod<std::uint64_t>(is);
      c.conversation_id = read_pod<std::int32_t>(is);
      a.calls.push_back(c);
    }
  }
  const auto n_inter = read_pod<std::uint64_t>(is);
  trace.interactions.reserve(n_inter);
  for (std::uint64_t i = 0; i < n_inter; ++i) {
    Interaction in;
    in.step = read_pod<Step>(is);
    in.a = read_pod<AgentId>(is);
    in.b = read_pod<AgentId>(is);
    trace.interactions.push_back(in);
  }
  trace.validate();
  return trace;
}

void save_binary_file(const SimulationTrace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  AIM_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  save_binary(trace, os);
}

SimulationTrace load_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AIM_CHECK_MSG(is.is_open(), "cannot open " << path);
  return load_binary(is);
}

void export_jsonl(const SimulationTrace& trace, std::ostream& os) {
  if (trace.world_kind == WorldKind::kGraph) {
    // Graph worlds lead with their kind so a reader never mistakes node
    // ids for tile coordinates; grid headers keep the historical shape.
    os << strformat(
        "{\"type\":\"header\",\"world\":\"graph\",\"n_agents\":%d,"
        "\"n_steps\":%d,\"start_step\":%d,\"radius_p\":%.3f,"
        "\"max_vel\":%.3f,\"nodes\":%d}\n",
        trace.n_agents, trace.n_steps, trace.start_step, trace.radius_p,
        trace.max_vel, trace.map_width);
  } else {
    os << strformat(
        "{\"type\":\"header\",\"n_agents\":%d,\"n_steps\":%d,\"start_step\":"
        "%d,\"radius_p\":%.3f,\"max_vel\":%.3f,\"map\":[%d,%d]}\n",
        trace.n_agents, trace.n_steps, trace.start_step, trace.radius_p,
        trace.max_vel, trace.map_width, trace.map_height);
  }
  for (const AgentTrace& a : trace.agents) {
    for (const LlmCall& c : a.calls) {
      os << strformat(
          "{\"type\":\"call\",\"agent\":%d,\"step\":%d,\"seq\":%d,"
          "\"fn\":\"%s\",\"in\":%d,\"out\":%d,\"conv\":%d}\n",
          c.agent, c.step, c.seq, call_type_name(c.type), c.input_tokens,
          c.output_tokens, c.conversation_id);
    }
    // Movement is delta-encoded: only emit steps where the tile changes.
    for (std::size_t i = 1; i < a.positions.size(); ++i) {
      if (!(a.positions[i] == a.positions[i - 1])) {
        os << strformat(
            "{\"type\":\"move\",\"agent\":%d,\"step\":%d,\"x\":%d,\"y\":%d}\n",
            a.agent, trace.start_step + static_cast<Step>(i), a.positions[i].x,
            a.positions[i].y);
      }
    }
  }
}

}  // namespace aimetro::trace
