// Experiment configuration and results for trace replay.
//
// One ExperimentConfig describes a single cell of the paper's evaluation
// grid: a scheduling setting x model x GPU platform x parallelism, plus the
// engine-overhead model. run_experiment() replays a trace under it in
// virtual time and reports completion time, achieved parallelism, and
// scheduler statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scoreboard.h"
#include "llm/cluster.h"
#include "replay/gantt.h"
#include "trace/schema.h"

namespace aimetro::replay {

/// The evaluation settings of §4.1/§4.2/§4.3.
enum class Mode {
  kSingleThread,   // original-implementation style: one global cursor
  kParallelSync,   // lock-step: global barrier per simulation step
  kMetropolis,     // this paper: OOO scheduling via the scoreboard
  kOracle,         // trace-mined optimal dependencies (unattainable online)
  kNoDependency,   // all calls issued at t=0 (resource lower bound)
  kCritical,       // the critical path executed alone (dependency bound)
};

const char* mode_name(Mode mode);

/// CPU-side cost model for the simulation engine itself. The paper's
/// engine keeps the controller's critical path in C++ precisely to keep
/// these small relative to LLM inference (§3.6).
struct EngineOverheads {
  double controller_op_us = 20.0;  // per dispatch/ack handled by controller
  double worker_step_us = 500.0;   // per agent-step with LLM work (worker)
  double commit_us = 50.0;         // per cluster commit transaction
};

struct ExperimentConfig {
  Mode mode = Mode::kMetropolis;
  llm::ModelSpec model = llm::ModelSpec::llama3_8b();
  llm::GpuSpec gpu = llm::GpuSpec::l4();
  llm::ParallelismConfig parallelism;       // replicas x TP group size
  llm::CostModelConfig cost;
  llm::ClusterConfig cluster;               // priority_scheduling lives here
  EngineOverheads overheads;
  /// Max clusters concurrently assigned to workers; 0 = unlimited.
  std::int32_t max_concurrent_clusters = 0;
  /// Scoreboard neighbor-scan implementation (Metropolis mode):
  /// spatial-index probes by default, full-scan reference on request.
  core::ScanMode scan_mode = core::ScanMode::kIndexed;
  /// Region partition of the scoreboard (Metropolis mode). The DES is
  /// single-threaded, so this buys no concurrency here — it exists so
  /// replay can certify that a sharded board replays byte-identically to
  /// shards=1 before the threaded engine trusts the same partition.
  std::int32_t shards = 1;
  /// Initial strip-boundary placement (equal-width or population
  /// quantiles); replay certifies digest-invariance for the engine here
  /// too.
  world::PartitionKind partition = world::PartitionKind::kEqualWidth;
  /// Trace-relative steps (sorted ascending, each > 0) at which the
  /// scoreboard is repartitioned once min_step() clears them — the DES
  /// mirror of EngineConfig::reshard_at, weighted by per-strip commit
  /// counts since the previous rebalance. Empty = never.
  std::vector<Step> reshard_at;
  bool record_gantt = false;
  /// Run O(n^2) scoreboard invariant checks after every commit (tests).
  bool validate_invariants = false;
};

struct ExperimentResult {
  Mode mode = Mode::kMetropolis;
  double completion_seconds = 0.0;
  /// Time-averaged outstanding LLM requests ("achieved parallelism", §4.2).
  double avg_parallelism = 0.0;
  /// Mean replica busy fraction over the run.
  double avg_utilization = 0.0;
  std::uint64_t total_calls = 0;
  std::int64_t total_input_tokens = 0;
  std::int64_t total_output_tokens = 0;
  std::uint64_t des_events = 0;
  std::uint64_t prefix_cache_hits = 0;
  // Metropolis-only scheduler statistics.
  core::ScoreboardStats scoreboard;
  double mean_blockers = 0.0;
  /// Per-agent (step, position) at completion, indexed by AgentId —
  /// the final scoreboard state (Metropolis mode only). Lets callers check
  /// that independent executions of one workload converged to one state.
  std::vector<std::pair<Step, Pos>> final_agent_states;
  std::vector<GanttRecord> gantt;
  std::vector<SimTime> step_completion_times;  // lock-step modes only

  std::string summary() const;
};

ExperimentResult run_experiment(const trace::SimulationTrace& trace,
                                const ExperimentConfig& config);

}  // namespace aimetro::replay
