// Per-call execution records for Figure-1-style Gantt rendering.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "trace/schema.h"

namespace aimetro::replay {

struct GanttRecord {
  AgentId agent = -1;
  Step step = 0;
  trace::CallType type = trace::CallType::kPerceive;
  SimTime submit = 0;
  SimTime finish = 0;
};

/// ASCII rendering: one row per agent, time bucketed into `columns` cells,
/// '#' where the agent has an in-flight LLM call, '|' marking step
/// boundaries for lock-step runs (pass the per-step completion times).
std::string render_gantt_ascii(const std::vector<GanttRecord>& records,
                               std::int32_t n_agents, SimTime t_begin,
                               SimTime t_end, int columns = 100,
                               const std::vector<SimTime>& step_marks = {});

}  // namespace aimetro::replay
