// Discrete-event executors for every scheduling setting.
//
// All settings share the same trace, serving cluster, and overhead model;
// they differ only in when agent call-chains are allowed to start — which
// is exactly the paper's experimental isolation: the schedulers only
// change available parallelism, never the work itself.
#include <algorithm>
#include <map>
#include <memory>
#include <queue>

#include "common/check.h"
#include "common/strings.h"
#include "core/critical_path.h"
#include "core/oracle.h"
#include "des/event_loop.h"
#include "replay/experiment.h"

namespace aimetro::replay {

namespace {

using trace::LlmCall;
using trace::SimulationTrace;

SimTime us(double micros) { return static_cast<SimTime>(micros); }

/// Shared replay machinery: trace indexing, chain submission, gantt.
class Executor {
 public:
  Executor(const SimulationTrace& trace, const ExperimentConfig& cfg)
      : trace_(trace),
        cfg_(cfg),
        cluster_(&loop_, cfg.model, cfg.gpu, cfg.parallelism, cfg.cost,
                 cfg.cluster) {
    chains_.resize(static_cast<std::size_t>(trace.n_agents));
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      chains_[i] = trace::group_calls_by_step(trace.agents[i]);
    }
  }

  ExperimentResult run() {
    switch (cfg_.mode) {
      case Mode::kSingleThread:
        run_single_thread();
        break;
      case Mode::kParallelSync:
        run_parallel_sync();
        break;
      case Mode::kMetropolis:
        run_metropolis();
        break;
      case Mode::kOracle:
        run_oracle();
        break;
      case Mode::kNoDependency:
        run_no_dependency();
        break;
      case Mode::kCritical:
        run_critical();
        break;
    }
    loop_.run();
    return finalize();
  }

 private:
  // ---- shared helpers ----

  const std::vector<const LlmCall*>* chain_at(AgentId agent, Step rel) const {
    const auto& by_step = chains_[static_cast<std::size_t>(agent)];
    auto it = by_step.find(trace_.start_step + rel);
    return it == by_step.end() ? nullptr : &it->second;
  }

  /// Submit an agent's calls for one step, serially, then invoke `done`.
  /// `priority` is the absolute simulation step (smaller = more urgent).
  void submit_chain(const std::vector<const LlmCall*>& chain, std::size_t idx,
                    std::int64_t priority, std::function<void()> done) {
    if (idx >= chain.size()) {
      loop_.schedule_after(0, std::move(done));
      return;
    }
    const LlmCall* call = chain[idx];
    llm::Request req;
    req.prompt_tokens = call->input_tokens;
    req.output_tokens = call->output_tokens;
    req.priority = priority;
    req.prompt_hash = call->prompt_hash;
    req.tag_agent = call->agent;
    req.tag_step = call->step;
    req.tag_type = static_cast<std::int32_t>(call->type);
    req.on_complete = [this, &chain, idx, priority, call,
                       done = std::move(done)](
                          const llm::RequestOutcome& outcome) mutable {
      if (cfg_.record_gantt) {
        gantt_.push_back(GanttRecord{call->agent, call->step, call->type,
                                     outcome.submit_time,
                                     outcome.finish_time});
      }
      submit_chain(chain, idx + 1, priority, std::move(done));
    };
    cluster_.submit(std::move(req));
  }

  ExperimentResult finalize() {
    ExperimentResult r;
    r.mode = cfg_.mode;
    const SimTime end = loop_.now();
    r.completion_seconds = sim_time_to_seconds(end);
    r.avg_parallelism = cluster_.average_parallelism(end);
    r.avg_utilization = cluster_.average_utilization(end);
    for (const auto& agent : trace_.agents) {
      for (const auto& c : agent.calls) {
        if (cfg_.mode == Mode::kCritical) continue;  // counted separately
        ++r.total_calls;
        r.total_input_tokens += c.input_tokens;
        r.total_output_tokens += c.output_tokens;
      }
    }
    if (cfg_.mode == Mode::kCritical) {
      r.total_calls = critical_calls_;
      r.total_input_tokens = critical_in_;
      r.total_output_tokens = critical_out_;
    }
    AIM_CHECK_MSG(cluster_.completed() == submitted_expected_ ||
                      submitted_expected_ == 0,
                  "not all requests completed: " << cluster_.completed());
    r.des_events = loop_.processed();
    r.prefix_cache_hits = cluster_.total_prefix_cache_hits();
    if (scoreboard_) {
      r.scoreboard = scoreboard_->stats();
      r.mean_blockers = scoreboard_->mean_blockers();
      for (AgentId a = 0; a < trace_.n_agents; ++a) {
        r.final_agent_states.emplace_back(scoreboard_->step_of(a),
                                          scoreboard_->pos_of(a));
      }
    }
    r.gantt = std::move(gantt_);
    r.step_completion_times = std::move(step_marks_);
    return r;
  }

  // ---- Mode: single-thread ----
  // One global cursor walks (step, agent, call) in order; at most one LLM
  // request is ever outstanding, as in the original GenAgent implementation.
  void run_single_thread() {
    advance_single(0, 0);
  }

  void advance_single(Step rel, std::size_t agent_idx) {
    while (rel < trace_.n_steps) {
      if (agent_idx >= chains_.size()) {
        step_marks_.push_back(loop_.now());
        rel += 1;
        agent_idx = 0;
        continue;
      }
      const auto* chain = chain_at(static_cast<AgentId>(agent_idx), rel);
      if (chain == nullptr) {
        ++agent_idx;
        continue;
      }
      ++submitted_expected_;
      submitted_expected_ += chain->size() - 1;
      const Step abs_step = trace_.start_step + rel;
      loop_.schedule_after(
          us(cfg_.overheads.worker_step_us),
          [this, chain, abs_step, rel, agent_idx] {
            submit_chain(*chain, 0, abs_step, [this, rel, agent_idx] {
              advance_single(rel, agent_idx + 1);
            });
          });
      return;
    }
  }

  // ---- Mode: parallel-sync ----
  // Algorithm 1: all agents with work this step issue their chains
  // concurrently; a global barrier waits for every chain before the next
  // step begins.
  void run_parallel_sync() { parallel_sync_step(0); }

  void parallel_sync_step(Step rel) {
    if (rel >= trace_.n_steps) return;
    loop_.schedule_after(us(cfg_.overheads.controller_op_us), [this, rel] {
      auto remaining = std::make_shared<std::size_t>(0);
      const Step abs_step = trace_.start_step + rel;
      for (std::size_t a = 0; a < chains_.size(); ++a) {
        const auto* chain = chain_at(static_cast<AgentId>(a), rel);
        if (chain == nullptr) continue;
        *remaining += 1;
        submitted_expected_ += chain->size();
        loop_.schedule_after(
            us(cfg_.overheads.worker_step_us),
            [this, chain, abs_step, rel, remaining] {
              submit_chain(*chain, 0, abs_step, [this, rel, remaining] {
                if (--*remaining == 0) {
                  step_marks_.push_back(loop_.now());
                  parallel_sync_step(rel + 1);
                }
              });
            });
      }
      if (*remaining == 0) {
        step_marks_.push_back(loop_.now());
        parallel_sync_step(rel + 1);
      }
    });
  }

  // ---- Mode: metropolis (Algorithm 3) ----
  void run_metropolis() {
    std::vector<Pos> initial;
    initial.reserve(static_cast<std::size_t>(trace_.n_agents));
    for (AgentId a = 0; a < trace_.n_agents; ++a) {
      initial.push_back(trace_.position_at(a, trace_.start_step).center());
    }
    core::DependencyParams params{trace_.radius_p, trace_.max_vel};
    // Graph traces measure distance in hops over the trace's social graph;
    // grid traces keep the historical Euclidean model.
    std::shared_ptr<const core::Metric> metric =
        trace_.world_kind == trace::WorldKind::kGraph
            ? std::make_shared<core::GraphMetric>(trace_.graph_adjacency)
            : core::make_euclidean();
    scoreboard_ = std::make_unique<core::Scoreboard>(
        params, std::move(metric), std::move(initial), trace_.n_steps,
        cfg_.scan_mode, cfg_.shards, cfg_.partition);
    reshard_base_.assign(static_cast<std::size_t>(scoreboard_->shards()), 0);
    metropolis_dispatch();
  }

  /// DES mirror of the engine's episode rebalance: once min_step() clears
  /// the next cfg_.reshard_at boundary, re-quantile the partition by each
  /// strip's commit count since the previous rebalance. The DES is
  /// single-threaded, so no locking (and no forced-cross protocol) is
  /// needed — just a call between a commit and the next dispatch. The
  /// weights differ from the engine's (no wait-time term here): partition
  /// placement is digest-invariant, so the two backends may rebalance to
  /// different boundaries and still replay identically.
  void maybe_reshard() {
    if (reshard_idx_ >= cfg_.reshard_at.size()) return;
    const Step now = scoreboard_->min_step();
    if (now < cfg_.reshard_at[reshard_idx_]) return;
    while (reshard_idx_ < cfg_.reshard_at.size() &&
           cfg_.reshard_at[reshard_idx_] <= now) {
      ++reshard_idx_;
    }
    const std::int32_t shards = scoreboard_->shards();
    if (shards <= 1) return;
    std::vector<double> weights(static_cast<std::size_t>(shards), 0.0);
    for (std::int32_t s = 0; s < shards; ++s) {
      const std::uint64_t commits = scoreboard_->shard_stats(s).commits;
      weights[static_cast<std::size_t>(s)] = static_cast<double>(
          commits - reshard_base_[static_cast<std::size_t>(s)]);
      reshard_base_[static_cast<std::size_t>(s)] = commits;
    }
    scoreboard_->repartition(scoreboard_->partition().rebalanced(weights));
    if (cfg_.validate_invariants) scoreboard_->check_invariants();
  }

  void metropolis_dispatch() {
    // Controller: collect newly ready clusters into the ready queue
    // (a priority queue keyed by step, §3.5 — plain FIFO when priority
    // scheduling is disabled, the Table 1 ablation), then hand clusters to
    // free workers.
    for (core::AgentCluster& cluster : scoreboard_->pop_ready_clusters()) {
      const Step priority =
          cfg_.cluster.priority_scheduling ? cluster.step : 0;
      ready_queue_.push(ReadyEntry{priority, ready_seq_++,
                                   std::move(cluster)});
    }
    while (!ready_queue_.empty() &&
           (cfg_.max_concurrent_clusters == 0 ||
            in_flight_clusters_ < cfg_.max_concurrent_clusters)) {
      core::AgentCluster cluster =
          std::move(const_cast<ReadyEntry&>(ready_queue_.top()).cluster);
      ready_queue_.pop();
      ++in_flight_clusters_;
      loop_.schedule_after(us(cfg_.overheads.controller_op_us),
                           [this, cluster = std::move(cluster)] {
                             execute_cluster(cluster);
                           });
    }
  }

  /// Worker: run every member's chain for this step, then commit the
  /// cluster to the scoreboard and ack.
  void execute_cluster(const core::AgentCluster& cluster) {
    auto remaining = std::make_shared<std::size_t>(cluster.members.size());
    auto finish = [this, cluster] {
      loop_.schedule_after(us(cfg_.overheads.commit_us), [this, cluster] {
        std::vector<std::pair<AgentId, Pos>> moves;
        moves.reserve(cluster.members.size());
        for (AgentId m : cluster.members) {
          moves.emplace_back(
              m, trace_.position_at(m, trace_.start_step + cluster.step + 1)
                     .center());
        }
        scoreboard_->commit(moves);
        if (cfg_.validate_invariants) scoreboard_->check_invariants();
        maybe_reshard();
        --in_flight_clusters_;
        metropolis_dispatch();
      });
    };
    const Step abs_step = trace_.start_step + cluster.step;
    bool any_work = false;
    for (AgentId m : cluster.members) {
      const auto* chain = chain_at(m, cluster.step);
      if (chain == nullptr) {
        if (--*remaining == 0) finish();
        continue;
      }
      any_work = true;
      submitted_expected_ += chain->size();
      loop_.schedule_after(us(cfg_.overheads.worker_step_us),
                           [this, chain, abs_step, remaining, finish] {
                             submit_chain(*chain, 0, abs_step,
                                          [remaining, finish] {
                                            if (--*remaining == 0) finish();
                                          });
                           });
    }
    (void)any_work;
  }

  // ---- Mode: oracle ----
  // Trace-mined interaction groups: a group at step s starts once all its
  // members committed s-1; members advance together.
  void run_oracle() {
    oracle_deps_ = core::mine_oracle(trace_);
    // Group tasks per step; agents outside any group are singletons.
    oracle_tasks_.resize(static_cast<std::size_t>(trace_.n_steps));
    oracle_task_of_.assign(
        static_cast<std::size_t>(trace_.n_steps),
        std::vector<std::int32_t>(static_cast<std::size_t>(trace_.n_agents),
                                  -1));
    for (Step rel = 0; rel < trace_.n_steps; ++rel) {
      auto& tasks = oracle_tasks_[static_cast<std::size_t>(rel)];
      auto& of = oracle_task_of_[static_cast<std::size_t>(rel)];
      for (const auto& group :
           oracle_deps_.groups_by_step[static_cast<std::size_t>(rel)]) {
        const auto id = static_cast<std::int32_t>(tasks.size());
        tasks.push_back(OracleTask{group, static_cast<std::int32_t>(
                                              group.size())});
        for (AgentId m : group) of[static_cast<std::size_t>(m)] = id;
      }
      for (AgentId a = 0; a < trace_.n_agents; ++a) {
        if (of[static_cast<std::size_t>(a)] < 0) {
          const auto id = static_cast<std::int32_t>(tasks.size());
          tasks.push_back(OracleTask{{a}, 1});
          of[static_cast<std::size_t>(a)] = id;
        }
      }
    }
    // Step-0 tasks are all immediately ready.
    for (auto& task : oracle_tasks_[0]) {
      task.waiting = 0;
      oracle_launch(0, task);
    }
  }

  struct OracleTask {
    std::vector<AgentId> members;
    std::int32_t waiting = 0;  // members yet to commit the previous step
    bool launched = false;
  };

  void oracle_launch(Step rel, OracleTask& task) {
    AIM_CHECK(!task.launched && task.waiting == 0);
    task.launched = true;
    auto remaining = std::make_shared<std::size_t>(task.members.size());
    const Step abs_step = trace_.start_step + rel;
    auto finish = [this, rel, members = task.members] {
      loop_.schedule_after(us(cfg_.overheads.commit_us), [this, rel, members] {
        for (AgentId m : members) oracle_committed(rel, m);
      });
    };
    for (AgentId m : task.members) {
      const auto* chain = chain_at(m, rel);
      if (chain == nullptr) {
        if (--*remaining == 0) finish();
        continue;
      }
      submitted_expected_ += chain->size();
      loop_.schedule_after(us(cfg_.overheads.worker_step_us),
                           [this, chain, abs_step, remaining, finish] {
                             submit_chain(*chain, 0, abs_step,
                                          [remaining, finish] {
                                            if (--*remaining == 0) finish();
                                          });
                           });
    }
  }

  void oracle_committed(Step rel, AgentId agent) {
    const Step next = rel + 1;
    if (next >= trace_.n_steps) return;
    auto& tasks = oracle_tasks_[static_cast<std::size_t>(next)];
    const std::int32_t tid =
        oracle_task_of_[static_cast<std::size_t>(next)]
                       [static_cast<std::size_t>(agent)];
    OracleTask& task = tasks[static_cast<std::size_t>(tid)];
    AIM_CHECK(task.waiting > 0);
    if (--task.waiting == 0) oracle_launch(next, task);
  }

  // ---- Mode: no-dependency ----
  void run_no_dependency() {
    for (const auto& agent : trace_.agents) {
      for (const auto& call : agent.calls) {
        ++submitted_expected_;
        llm::Request req;
        req.prompt_tokens = call.input_tokens;
        req.output_tokens = call.output_tokens;
        req.priority = call.step;
        req.prompt_hash = call.prompt_hash;
        req.tag_agent = call.agent;
        req.tag_step = call.step;
        req.tag_type = static_cast<std::int32_t>(call.type);
        if (cfg_.record_gantt) {
          req.on_complete = [this, &call](const llm::RequestOutcome& o) {
            gantt_.push_back(GanttRecord{call.agent, call.step, call.type,
                                         o.submit_time, o.finish_time});
          };
        }
        cluster_.submit(std::move(req));
      }
    }
  }

  // ---- Mode: critical ----
  // The oracle critical path executed alone, one call after another.
  void run_critical() {
    oracle_deps_ = core::mine_oracle(trace_);
    critical_result_ = core::critical_path(trace_, oracle_deps_);
    critical_calls_ = critical_result_.call_count;
    critical_in_ = critical_result_.input_tokens;
    critical_out_ = critical_result_.output_tokens;
    submitted_expected_ = critical_result_.call_count;
    submit_chain(critical_result_.calls, 0, 0, [] {});
  }

  const SimulationTrace& trace_;
  ExperimentConfig cfg_;
  des::EventLoop loop_;
  llm::Cluster cluster_;
  std::vector<trace::StepCalls> chains_;
  std::vector<GanttRecord> gantt_;
  std::vector<SimTime> step_marks_;
  std::uint64_t submitted_expected_ = 0;

  // metropolis state
  std::unique_ptr<core::Scoreboard> scoreboard_;
  struct ReadyEntry {
    Step step;
    std::uint64_t seq;
    core::AgentCluster cluster;
    bool operator>(const ReadyEntry& o) const {
      if (step != o.step) return step > o.step;
      return seq > o.seq;
    }
  };
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>>
      ready_queue_;
  std::uint64_t ready_seq_ = 0;
  std::int32_t in_flight_clusters_ = 0;
  /// Next unapplied cfg_.reshard_at boundary / per-strip commit counts at
  /// the last rebalance (see maybe_reshard).
  std::size_t reshard_idx_ = 0;
  std::vector<std::uint64_t> reshard_base_;

  // oracle state
  core::OracleDependencies oracle_deps_;
  std::vector<std::vector<OracleTask>> oracle_tasks_;
  std::vector<std::vector<std::int32_t>> oracle_task_of_;
  core::CriticalPathResult critical_result_;
  std::uint64_t critical_calls_ = 0;
  std::int64_t critical_in_ = 0;
  std::int64_t critical_out_ = 0;
};

}  // namespace

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSingleThread:
      return "single-thread";
    case Mode::kParallelSync:
      return "parallel-sync";
    case Mode::kMetropolis:
      return "metropolis";
    case Mode::kOracle:
      return "oracle";
    case Mode::kNoDependency:
      return "no-dependency";
    case Mode::kCritical:
      return "critical";
  }
  return "?";
}

std::string ExperimentResult::summary() const {
  return strformat(
      "%-14s completion=%10.1fs  parallelism=%6.2f  util=%5.1f%%  "
      "calls=%llu  events=%llu",
      mode_name(mode), completion_seconds, avg_parallelism,
      avg_utilization * 100.0, static_cast<unsigned long long>(total_calls),
      static_cast<unsigned long long>(des_events));
}

ExperimentResult run_experiment(const trace::SimulationTrace& trace,
                                const ExperimentConfig& config) {
  Executor executor(trace, config);
  return executor.run();
}

}  // namespace aimetro::replay
