#include "replay/gantt.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace aimetro::replay {

std::string render_gantt_ascii(const std::vector<GanttRecord>& records,
                               std::int32_t n_agents, SimTime t_begin,
                               SimTime t_end, int columns,
                               const std::vector<SimTime>& step_marks) {
  AIM_CHECK(t_end > t_begin && columns > 0 && n_agents > 0);
  const double span = static_cast<double>(t_end - t_begin);
  auto col_of = [&](SimTime t) {
    const double frac = static_cast<double>(t - t_begin) / span;
    return std::clamp(static_cast<int>(frac * columns), 0, columns - 1);
  };

  std::vector<std::string> rows(static_cast<std::size_t>(n_agents),
                                std::string(static_cast<std::size_t>(columns),
                                            '.'));
  for (const GanttRecord& rec : records) {
    if (rec.agent < 0 || rec.agent >= n_agents) continue;
    if (rec.finish < t_begin || rec.submit > t_end) continue;
    const int c0 = col_of(std::max(rec.submit, t_begin));
    const int c1 = col_of(std::min(rec.finish, t_end));
    auto& row = rows[static_cast<std::size_t>(rec.agent)];
    for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = '#';
  }
  for (SimTime mark : step_marks) {
    if (mark < t_begin || mark > t_end) continue;
    const int c = col_of(mark);
    for (auto& row : rows) {
      if (row[static_cast<std::size_t>(c)] == '.') {
        row[static_cast<std::size_t>(c)] = '|';
      }
    }
  }
  std::string out;
  out += strformat("time: %.1fs .. %.1fs  (# = in-flight LLM call, | = step "
                   "boundary)\n",
                   sim_time_to_seconds(t_begin), sim_time_to_seconds(t_end));
  for (std::size_t a = 0; a < rows.size(); ++a) {
    out += strformat("agent %3zu |%s|\n", a, rows[a].c_str());
  }
  return out;
}

}  // namespace aimetro::replay
