#include "des/event_loop.h"

#include <utility>

#include "common/check.h"

namespace aimetro::des {

EventId EventLoop::schedule_at(SimTime t, Callback cb) {
  AIM_CHECK_MSG(t >= now_, "schedule_at: t=" << t << " < now=" << now_);
  AIM_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId EventLoop::schedule_after(SimTime delay, Callback cb) {
  AIM_CHECK_MSG(delay >= 0, "schedule_after: negative delay " << delay);
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(EventId id) {
  // An event is cancellable iff it is still pending; erase marks it so the
  // heap entry is skipped when popped (lazy deletion).
  return live_.erase(id) > 0;
}

bool EventLoop::pop_and_run() {
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    auto it = live_.find(ev.id);
    if (it == live_.end()) continue;  // cancelled
    live_.erase(it);
    AIM_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    ev.cb();
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run() {
  stopped_ = false;
  std::uint64_t count = 0;
  while (!stopped_ && !live_.empty()) {
    if (pop_and_run()) ++count;
  }
  return count;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  stopped_ = false;
  std::uint64_t count = 0;
  while (!stopped_ && !heap_.empty() && heap_.top().time <= deadline) {
    if (pop_and_run()) ++count;
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
  return count;
}

}  // namespace aimetro::des
