// Discrete-event executive.
//
// The benchmark harnesses run the entire system (scheduling policies plus
// the simulated LLM serving cluster) under virtual time so a full simulated
// day on eight simulated GPUs completes in milliseconds of wall time and is
// bit-exact reproducible. Events at equal timestamps fire in scheduling
// order (stable sequence numbers).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace aimetro::des {

using EventId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time (microseconds).
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` microseconds (>= 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Run until the event queue is empty or stop() is called.
  /// Returns the number of events processed.
  std::uint64_t run();

  /// Run until virtual time would exceed `deadline` (events at exactly
  /// `deadline` are processed; the clock then advances to `deadline`).
  std::uint64_t run_until(SimTime deadline);

  /// Stop after the currently executing event returns.
  void stop() { stopped_ = true; }

  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  bool pop_and_run();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> live_;
};

}  // namespace aimetro::des
