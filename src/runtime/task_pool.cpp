#include "runtime/task_pool.h"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace aimetro::runtime {

namespace {
/// The pool (if any) the current thread is executing a task for. Lets
/// submit() recognize recursive submissions and bypass the queue bound.
thread_local const TaskPool* t_current_pool = nullptr;

class CurrentPoolScope {
 public:
  explicit CurrentPoolScope(const TaskPool* pool) : saved_(t_current_pool) {
    t_current_pool = pool;
  }
  ~CurrentPoolScope() { t_current_pool = saved_; }

 private:
  const TaskPool* saved_;
};

/// Best-effort affinity pin (see TaskPoolConfig::cpus). Out-of-range or
/// rejected cpus are ignored: the OS scheduler keeps working either way.
void pin_thread(std::thread& thread, std::int32_t cpu) {
#ifdef __linux__
  if (cpu < 0 || cpu >= CPU_SETSIZE) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}
}  // namespace

struct TaskPool::Handle::State {
  TaskPool::Task fn;
  /// Set by whichever thread claims the task (worker or waiting caller);
  /// losers skip it. This is the entire inline-claiming mechanism.
  std::atomic<bool> claimed{false};

  common::Mutex m{"task_pool.handle"};
  common::CondVar cv;
  bool done GUARDED_BY(m) = false;
  std::exception_ptr error GUARDED_BY(m);
};

void TaskPool::Handle::wait() const {
  AIM_CHECK_MSG(state_ != nullptr, "wait() on an empty TaskPool::Handle");
  common::MutexLock lock(state_->m);
  while (!state_->done) state_->cv.wait(state_->m);
  if (state_->error) std::rethrow_exception(state_->error);
}

TaskPool::TaskPool(TaskPoolConfig config) : max_queued_(config.max_queued) {
  AIM_CHECK(config.n_workers >= 1);
  threads_.reserve(static_cast<std::size_t>(config.n_workers));
  for (std::int32_t i = 0; i < config.n_workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
    if (!config.cpus.empty()) {
      pin_thread(threads_.back(),
                 config.cpus[static_cast<std::size_t>(i) % config.cpus.size()]);
    }
  }
}

TaskPool::~TaskPool() { shutdown(); }

TaskPool::Handle TaskPool::submit(std::int64_t priority, Task fn) {
  AIM_CHECK(fn != nullptr);
  auto state = std::make_shared<Handle::State>();
  state->fn = std::move(fn);
  {
    common::MutexLock lock(mutex_);
    AIM_CHECK_MSG(!shut_down_, "submit() on a shut-down TaskPool");
    if (max_queued_ > 0 && t_current_pool != this) {
      while (queued_ >= max_queued_ && !shut_down_) space_cv_.wait(mutex_);
      AIM_CHECK_MSG(!shut_down_, "TaskPool shut down while submit() blocked");
    }
    ++queued_;
    ++in_flight_;
    if (in_flight_ > stats_.peak_in_flight) stats_.peak_in_flight = in_flight_;
    // Push while still holding mutex_: a shutdown() racing this submit
    // either sees the task already queued (and drains it) or wins the
    // flag check above — a task can never land in a queue no worker will
    // ever pop. The queue's internal lock nests inside mutex_ only here;
    // workers release it before taking mutex_, so there is no inversion.
    queue_.push(priority, state);
  }
  return Handle(state);
}

void TaskPool::submit_and_wait(std::vector<Task> tasks,
                               std::int64_t priority) {
  // Marking the whole batch as pool-internal bypasses the queue bound:
  // the caller is about to help drain whatever it enqueues.
  CurrentPoolScope scope(this);
  std::vector<Handle> handles;
  handles.reserve(tasks.size());
  for (Task& task : tasks) {
    handles.push_back(submit(priority, std::move(task)));
  }
  // Run-or-wait: claim our own tasks so the batch makes progress even when
  // no worker is free (or every worker is itself waiting on a batch).
  for (const Handle& h : handles) {
    try_execute(h.state_, /*inline_run=*/true);
  }
  std::exception_ptr first;
  for (const Handle& h : handles) {
    try {
      h.wait();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

void TaskPool::wait_idle() const {
  common::MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_cv_.wait(mutex_);
}

void TaskPool::shutdown() {
  {
    common::MutexLock lock(mutex_);
    shut_down_ = true;
  }
  space_cv_.notify_all();
  queue_.close();  // workers drain the backlog, then exit
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

TaskPoolStats TaskPool::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

void TaskPool::worker_loop() {
  CurrentPoolScope scope(this);
  while (std::optional<StatePtr> state = queue_.pop()) {
    {
      common::MutexLock lock(mutex_);
      --queued_;
    }
    space_cv_.notify_one();
    try_execute(*state, /*inline_run=*/false);
  }
}

bool TaskPool::try_execute(const StatePtr& state, bool inline_run) {
  if (state->claimed.exchange(true)) return false;
  Task fn = std::move(state->fn);
  std::exception_ptr error;
  try {
    fn();
  } catch (...) {
    error = std::current_exception();
  }
  {
    common::MutexLock lock(state->m);
    state->done = true;
    state->error = error;
  }
  state->cv.notify_all();
  finish_one(inline_run);
  return true;
}

void TaskPool::finish_one(bool inline_run) {
  bool idle = false;
  {
    common::MutexLock lock(mutex_);
    --in_flight_;
    if (inline_run) {
      ++stats_.tasks_inlined;
    } else {
      ++stats_.tasks_executed;
    }
    idle = in_flight_ == 0;
  }
  if (idle) idle_cv_.notify_all();
}

}  // namespace aimetro::runtime
