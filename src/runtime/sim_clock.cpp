#include "runtime/sim_clock.h"

#include <thread>

#include "common/check.h"

namespace aimetro::runtime {

namespace {

/// Wall-time tail of each sleep that is spun rather than slept, bounding
/// per-call oversleep. 60 us costs ~0.3 s of spinning over a 5000-call
/// busy hour — negligible against the sleeps themselves.
constexpr std::chrono::microseconds kSpinTail{60};

}  // namespace

SimClock::SimClock(double scale) : scale_(scale) {
  AIM_CHECK_MSG(scale_ > 0.0, "SimClock scale must be > 0");
  origin_ = std::chrono::steady_clock::now();
}

SimTime SimClock::now() const {
  const auto wall = std::chrono::steady_clock::now() - origin_;
  const double wall_us =
      std::chrono::duration<double, std::micro>(wall).count();
  return static_cast<SimTime>(wall_us * scale_ + 0.5);
}

void SimClock::sleep_until(SimTime t) const {
  for (;;) {
    const SimTime current = now();
    if (current >= t) return;
    const double wall_us_left =
        static_cast<double>(t - current) / scale_;
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::duration<double, std::micro>(wall_us_left));
    if (left <= kSpinTail) continue;  // spin out the tail
    std::this_thread::sleep_for(left - kSpinTail);
  }
}

}  // namespace aimetro::runtime
