#include "runtime/engine.h"

#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace aimetro::runtime {

Engine::Engine(world::WorldState* world, EngineConfig config, StepFn step_fn)
    : world_(world), config_(config), step_fn_(std::move(step_fn)) {
  AIM_CHECK(world_ != nullptr);
  AIM_CHECK(step_fn_ != nullptr);
  AIM_CHECK(config_.n_workers >= 1);
  std::vector<Pos> initial;
  initial.reserve(world_->agent_count());
  for (std::size_t i = 0; i < world_->agent_count(); ++i) {
    initial.push_back(world_->pos_of(static_cast<AgentId>(i)));
  }
  scoreboard_ = std::make_unique<core::Scoreboard>(
      config_.params, core::make_euclidean(), std::move(initial),
      config_.target_step);
  if (config_.kv_instrumentation) {
    for (std::size_t i = 0; i < world_->agent_count(); ++i) {
      const Tile t = world_->tile_of(static_cast<AgentId>(i));
      const std::string key = strformat("agent:%zu", i);
      store_.hset(key, "step", "0");
      store_.hset(key, "x", std::to_string(t.x));
      store_.hset(key, "y", std::to_string(t.y));
    }
  }
}

Engine::~Engine() {
  ready_queue_.close();
  ack_queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Engine::dispatch_ready_locked() {
  // Caller holds state_mutex_. Ready clusters go to the ready queue in
  // step-priority order; workers pull the earliest step first (§3.5).
  for (core::AgentCluster& cluster : scoreboard_->pop_ready_clusters()) {
    const Step step = cluster.step;
    ready_queue_.push(step, std::move(cluster));
  }
}

void Engine::worker_loop() {
  while (true) {
    std::optional<core::AgentCluster> cluster = ready_queue_.pop();
    if (!cluster) return;  // queue closed: simulation finished

    // Heavy lifting off the controller's critical path (§3.6): agent
    // processing (LLM calls) runs without any engine lock.
    std::vector<world::StepIntent> intents = step_fn_(*cluster, *world_);

    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      // resolve_conflict_and_commit applies developer conflict rules and
      // commits winners to the world; the unique world lock excludes
      // concurrent observation readers in other workers.
      std::unique_lock<std::shared_mutex> world_lock(world_->mutex());
      const auto outcomes =
          world_->resolve_conflict_and_commit(cluster->step, intents);
      world_lock.unlock();
      std::vector<std::pair<AgentId, Pos>> moves;
      moves.reserve(outcomes.size());
      for (const auto& out : outcomes) {
        moves.emplace_back(out.agent, out.tile.center());
      }
      scoreboard_->commit(moves);

      if (config_.kv_instrumentation) {
        // Transactional mirror of the committed agent rows, as the paper
        // keeps all simulation state in the in-memory database.
        kv::Transaction txn = store_.transaction();
        for (const auto& out : outcomes) {
          const std::string key = strformat("agent:%d", out.agent);
          txn.hset(key, "step", std::to_string(cluster->step + 1));
          txn.hset(key, "x", std::to_string(out.tile.x));
          txn.hset(key, "y", std::to_string(out.tile.y));
        }
        txn.rpush("log:commits",
                  strformat("step=%d size=%zu", cluster->step,
                            cluster->members.size()));
        txn.incr_by("stats:agent_steps",
                    static_cast<std::int64_t>(cluster->members.size()));
        const auto result = txn.exec();
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.kv_transactions;
        if (result == kv::TxnResult::kConflict) ++stats_.kv_conflicts;
      }
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.clusters_executed;
        stats_.agent_steps += cluster->members.size();
      }
      dispatch_ready_locked();
    }
    ack_queue_.push(1);
  }
}

EngineStats Engine::run() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    dispatch_ready_locked();
  }
  for (std::int32_t i = 0; i < config_.n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  // Controller: consume acks until every agent has reached the target.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (scoreboard_->all_done()) break;
    }
    std::optional<int> ack = ack_queue_.pop();
    if (!ack) break;
  }
  ready_queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> slock(stats_mutex_);
  return stats_;
}

}  // namespace aimetro::runtime
