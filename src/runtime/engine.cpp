#include "runtime/engine.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/strings.h"

namespace aimetro::runtime {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

Engine::Engine(world::WorldState* world, EngineConfig config, StepFn step_fn)
    : world_(world), config_(config), step_fn_(std::move(step_fn)) {
  AIM_CHECK(world_ != nullptr);
  AIM_CHECK(step_fn_ != nullptr);
  AIM_CHECK(config_.n_workers >= 1);
  if (config_.pool != nullptr) {
    // The controller dispatches while holding the commit lock, which
    // every worker needs to commit: a bounded queue's backpressure would
    // then deadlock the dispatcher against its own workers. Refuse loudly.
    AIM_CHECK_MSG(config_.pool->max_queued() == 0,
                  "Engine requires an unbounded TaskPool (dispatch happens "
                  "under the commit lock; backpressure would deadlock)");
    pool_ = config_.pool;
  } else {
    owned_pool_ = std::make_unique<TaskPool>(config_.n_workers);
    pool_ = owned_pool_.get();
  }
  std::vector<Pos> initial;
  initial.reserve(world_->agent_count());
  for (std::size_t i = 0; i < world_->agent_count(); ++i) {
    initial.push_back(world_->pos_of(static_cast<AgentId>(i)));
  }
  scoreboard_ = std::make_unique<core::Scoreboard>(
      config_.params,
      config_.metric ? config_.metric : core::make_euclidean(),
      std::move(initial), config_.target_step, config_.scan_mode);
  if (config_.kv_instrumentation) {
    for (std::size_t i = 0; i < world_->agent_count(); ++i) {
      const Tile t = world_->tile_of(static_cast<AgentId>(i));
      const std::string key = strformat("agent:%zu", i);
      store_.hset(key, "step", "0");
      store_.hset(key, "x", std::to_string(t.x));
      store_.hset(key, "y", std::to_string(t.y));
    }
  }
}

Engine::~Engine() {
  // In-flight cluster tasks reference this engine; when the pool is
  // external we cannot rely on the pool destructor to join them, so drain
  // explicitly either way.
  common::MutexLock lock(commit_mutex_);
  while (inflight_clusters_ != 0) done_cv_.wait(commit_mutex_);
}

void Engine::dispatch_ready_locked() {
  // Caller holds commit_mutex_. Ready clusters become pool tasks at their
  // step as the submission priority, so a backlogged pool still hands the
  // earliest step to the next free worker (§3.5).
  if (error_ != nullptr) return;  // failed runs stop dispatching
  for (core::AgentCluster& cluster : scoreboard_->pop_ready_clusters()) {
    const Step step = cluster.step;
    ++inflight_clusters_;
    pool_->submit(step, [this, cluster = std::move(cluster)]() mutable {
      execute_cluster(std::move(cluster));
    });
  }
}

void Engine::execute_cluster(core::AgentCluster cluster) {
  // Heavy lifting off the controller's critical path (§3.6): agent
  // processing (LLM calls) runs without any engine lock, and the world
  // commit takes only the world's own mutex — graph maintenance in other
  // workers proceeds concurrently.
  std::vector<world::StepIntent> intents;
  std::exception_ptr error;
  try {
    intents = step_fn_(cluster, *world_);
  } catch (...) {
    error = std::current_exception();
  }

  if (error == nullptr && !failed_.load(std::memory_order_acquire)) {
    try {
      // resolve_conflict_and_commit applies developer conflict rules and
      // commits winners to the world; the unique world lock excludes
      // concurrent observation readers in other workers. The dependency
      // rules already guarantee in-flight clusters touch disjoint
      // perception regions, so world commits from different clusters can
      // interleave freely.
      std::vector<std::pair<AgentId, Pos>> moves;
      {
        common::WriterLock world_lock(world_->mutex());
        const auto outcomes =
            world_->resolve_conflict_and_commit(cluster.step, intents);
        world_lock.unlock();
        moves.reserve(outcomes.size());
        for (const auto& out : outcomes) {
          moves.emplace_back(out.agent, out.tile.center());
        }
        if (config_.kv_instrumentation) {
          // Transactional mirror of the committed agent rows, as the
          // paper keeps all simulation state in the in-memory database.
          // The store's shard locks make this safe outside the commit
          // lock.
          kv::Transaction txn = store_.transaction();
          for (const auto& out : outcomes) {
            const std::string key = strformat("agent:%d", out.agent);
            txn.hset(key, "step", std::to_string(cluster.step + 1));
            txn.hset(key, "x", std::to_string(out.tile.x));
            txn.hset(key, "y", std::to_string(out.tile.y));
          }
          txn.rpush("log:commits",
                    strformat("step=%d size=%zu", cluster.step,
                              cluster.members.size()));
          txn.incr_by("stats:agent_steps",
                      static_cast<std::int64_t>(cluster.members.size()));
          const auto result = txn.exec();
          common::MutexLock slock(stats_mutex_);
          ++stats_.kv_transactions;
          if (result == kv::TxnResult::kConflict) ++stats_.kv_conflicts;
        }
      }

      // Graph maintenance: the only cross-worker critical section left.
      // Timed so EngineStats can show whether commits serialize the
      // pipeline (wait) and what the maintenance itself costs (hold).
      const auto wait_begin = std::chrono::steady_clock::now();
      std::uint64_t wait_us = 0;
      std::uint64_t hold_us = 0;
      {
        common::MutexLock lock(commit_mutex_);
        const auto acquired = std::chrono::steady_clock::now();
        wait_us = elapsed_us(wait_begin, acquired);
        if (error_ == nullptr) {
          scoreboard_->commit(moves);
          dispatch_ready_locked();
        }
        hold_us = elapsed_us(acquired, std::chrono::steady_clock::now());
      }
      {
        common::MutexLock slock(stats_mutex_);
        ++stats_.clusters_executed;
        stats_.agent_steps += cluster.members.size();
        ++stats_.commits;
        stats_.commit_wait_us += wait_us;
        stats_.commit_hold_us += hold_us;
        stats_.max_commit_wait_us =
            std::max(stats_.max_commit_wait_us, wait_us);
      }
    } catch (...) {
      error = std::current_exception();
    }
  }
  {
    common::MutexLock lock(commit_mutex_);
    if (error != nullptr && error_ == nullptr) {
      error_ = error;
      failed_.store(true, std::memory_order_release);
    }
    --inflight_clusters_;
    // The commit that finishes the last agent (or records the first
    // error) is what unblocks run(). Notify under the lock: a waiter in
    // ~Engine may destroy the condition variable the instant its
    // predicate holds.
    done_cv_.notify_all();
  }
}

EngineStats Engine::run() {
  {
    common::MutexLock lock(commit_mutex_);
    dispatch_ready_locked();
    // Controller: wait until every agent has reached the target (or a
    // task failed) and all in-flight cluster tasks have drained.
    while (!((scoreboard_->all_done() || error_ != nullptr) &&
             inflight_clusters_ == 0)) {
      done_cv_.wait(commit_mutex_);
    }
    if (error_ != nullptr) std::rethrow_exception(error_);
  }
  common::MutexLock slock(stats_mutex_);
  return stats_;
}

}  // namespace aimetro::runtime
