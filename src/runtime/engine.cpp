#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/strings.h"

namespace aimetro::runtime {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

/// Sentinel for "no reshard boundary left".
constexpr Step kNoReshard = std::numeric_limits<Step>::max();

void check_unbounded(const TaskPool& pool) {
  // Workers dispatch the clusters their own commits release: a bounded
  // queue's backpressure would block a submitting worker on queue space
  // that only workers (possibly all blocked the same way) can free.
  // Refuse loudly.
  AIM_CHECK_MSG(pool.max_queued() == 0,
                "Engine requires unbounded TaskPools (workers dispatch "
                "released clusters; backpressure would deadlock)");
}

}  // namespace

Engine::Engine(world::WorldState* world, EngineConfig config, StepFn step_fn)
    : world_(world), config_(config), step_fn_(std::move(step_fn)) {
  AIM_CHECK(world_ != nullptr);
  AIM_CHECK(step_fn_ != nullptr);
  AIM_CHECK(config_.n_workers >= 1);
  AIM_CHECK_MSG(config_.shards >= 1 && config_.shards <= core::kMaxShards,
                "EngineConfig::shards out of range");
  std::vector<Pos> initial;
  initial.reserve(world_->agent_count());
  for (std::size_t i = 0; i < world_->agent_count(); ++i) {
    initial.push_back(world_->pos_of(static_cast<AgentId>(i)));
  }
  for (std::size_t i = 0; i < config_.reshard_at.size(); ++i) {
    AIM_CHECK_MSG(config_.reshard_at[i] > 0 &&
                      (i == 0 || config_.reshard_at[i - 1] < config_.reshard_at[i]),
                  "EngineConfig::reshard_at must be positive and strictly "
                  "ascending");
  }
  next_reshard_step_.store(
      config_.reshard_at.empty() ? kNoReshard : config_.reshard_at.front(),
      std::memory_order_release);
  scoreboard_ = std::make_unique<core::Scoreboard>(
      config_.params,
      config_.metric ? config_.metric : core::make_euclidean(),
      std::move(initial), config_.target_step, config_.scan_mode,
      config_.shards, config_.partition);
  // The scoreboard may collapse the partition (graph metrics, brute
  // scans); size everything to what it actually runs.
  shards_ = scoreboard_->shards();
  shard_rows_.assign(static_cast<std::size_t>(shards_) + 1, EngineStats{});
  reshard_base_ = shard_rows_;
  shard_mutexes_.reserve(static_cast<std::size_t>(shards_));
  for (std::int32_t s = 0; s < shards_; ++s) {
    shard_mutexes_.push_back(std::make_unique<common::Mutex>("engine.shard"));
  }

  if (!config_.shard_pools.empty()) {
    AIM_CHECK_MSG(config_.shard_pools.size() >=
                      static_cast<std::size_t>(shards_),
                  "EngineConfig::shard_pools must cover every shard");
    for (std::int32_t s = 0; s < shards_; ++s) {
      TaskPool* p = config_.shard_pools[static_cast<std::size_t>(s)];
      AIM_CHECK(p != nullptr);
      check_unbounded(*p);
      shard_pools_.push_back(p);
    }
  } else if (config_.pool != nullptr) {
    check_unbounded(*config_.pool);
    shard_pools_.assign(static_cast<std::size_t>(shards_), config_.pool);
  } else if (shards_ > 1) {
    // Private pool per strip, splitting n_workers between them so the
    // total thread budget matches the unsharded configuration. With
    // pin_cores, strip s's workers are pinned to the s-th contiguous
    // core group so its scoreboard slice stays in one cache/NUMA domain
    // (wrapping when there are more strips than cores).
    const std::int32_t per_shard =
        std::max<std::int32_t>(1, (config_.n_workers + shards_ - 1) / shards_);
    const std::int32_t n_cpus =
        static_cast<std::int32_t>(std::thread::hardware_concurrency());
    const std::int32_t group =
        n_cpus > 0 ? std::max<std::int32_t>(1, n_cpus / shards_) : 0;
    for (std::int32_t s = 0; s < shards_; ++s) {
      TaskPoolConfig pool_cfg;
      pool_cfg.n_workers = per_shard;
      if (config_.pin_cores && n_cpus > 0) {
        pool_cfg.cpus.reserve(static_cast<std::size_t>(group));
        for (std::int32_t c = 0; c < group; ++c) {
          pool_cfg.cpus.push_back((s * group + c) % n_cpus);
        }
      }
      owned_shard_pools_.push_back(std::make_unique<TaskPool>(pool_cfg));
      shard_pools_.push_back(owned_shard_pools_.back().get());
    }
  } else {
    owned_pool_ = std::make_unique<TaskPool>(config_.n_workers);
    shard_pools_.assign(1, owned_pool_.get());
  }
  pool_ = shard_pools_.front();

  if (config_.kv_instrumentation) {
    for (std::size_t i = 0; i < world_->agent_count(); ++i) {
      const Tile t = world_->tile_of(static_cast<AgentId>(i));
      const std::string key = strformat("agent:%zu", i);
      store_.hset(key, "step", "0");
      store_.hset(key, "x", std::to_string(t.x));
      store_.hset(key, "y", std::to_string(t.y));
    }
  }
}

Engine::~Engine() {
  // In-flight cluster tasks reference this engine; when the pools are
  // external we cannot rely on the pool destructors to join them, so
  // drain explicitly either way.
  common::MutexLock lock(control_mutex_);
  while (inflight_clusters_.load(std::memory_order_acquire) != 0) {
    done_cv_.wait(control_mutex_);
  }
}

std::vector<Engine::RoutedCluster> Engine::route_clusters(
    std::vector<core::AgentCluster> ready) {
  // Home strip of a cluster = strip of its first (smallest-id) member.
  // Members are running between pop and commit, so the position is
  // stable; the partition itself may move at reshard points, which is why
  // the caller resolves routing here, still under the topology lock.
  std::vector<RoutedCluster> routed;
  routed.reserve(ready.size());
  for (core::AgentCluster& cluster : ready) {
    const std::int32_t s =
        shards_ == 1 ? 0
                     : scoreboard_->shard_of_pos(
                           scoreboard_->pos_of(cluster.members.front()));
    routed.push_back(RoutedCluster{s, std::move(cluster)});
  }
  return routed;
}

void Engine::submit_clusters(std::vector<RoutedCluster> ready) {
  // Ready clusters become pool tasks at their step as the submission
  // priority, so a backlogged pool still hands the earliest step to the
  // next free worker (§3.5). The caller already popped and routed them
  // under the topology lock, so this needs no engine lock: inflight
  // accounting is atomic, and the submitting task's own inflight count
  // keeps run() from observing a premature zero.
  for (RoutedCluster& rc : ready) {
    const Step step = rc.cluster.step;
    TaskPool* pool = shard_pools_[static_cast<std::size_t>(rc.strip)];
    inflight_clusters_.fetch_add(1, std::memory_order_acq_rel);
    pool->submit(step, [this, cluster = std::move(rc.cluster)]() mutable {
      execute_cluster(std::move(cluster));
    });
  }
}

void Engine::maybe_reshard() {
  if (next_reshard_idx_ >= config_.reshard_at.size()) return;
  const Step now = scoreboard_->min_step();
  if (now < config_.reshard_at[next_reshard_idx_]) return;
  // Consume every boundary the minimum has cleared (several can fall in
  // one commit when boundaries are close together), but rebalance once.
  while (next_reshard_idx_ < config_.reshard_at.size() &&
         config_.reshard_at[next_reshard_idx_] <= now) {
    ++next_reshard_idx_;
  }
  next_reshard_step_.store(next_reshard_idx_ < config_.reshard_at.size()
                               ? config_.reshard_at[next_reshard_idx_]
                               : kNoReshard,
                           std::memory_order_release);
  if (shards_ <= 1) return;
  // Weigh each strip by the contention it accumulated since the last
  // rebalance: commits carry the load, and every millisecond a worker
  // waited on the strip's lock counts like one more commit, so a strip
  // that serializes gets split even if its commit count looks modest.
  std::vector<double> weights(static_cast<std::size_t>(shards_), 0.0);
  {
    common::MutexLock slock(stats_mutex_);
    for (std::int32_t s = 0; s < shards_; ++s) {
      const EngineStats& row = shard_rows_[static_cast<std::size_t>(s)];
      const EngineStats& base = reshard_base_[static_cast<std::size_t>(s)];
      weights[static_cast<std::size_t>(s)] =
          static_cast<double>(row.commits - base.commits) +
          static_cast<double>(row.commit_wait_us - base.commit_wait_us) /
              1000.0;
    }
    reshard_base_ = shard_rows_;
    ++stats_.reshards;
  }
  scoreboard_->repartition(scoreboard_->partition().rebalanced(weights));
}

void Engine::execute_cluster(core::AgentCluster cluster) {
  // Heavy lifting off the controller's critical path (§3.6): agent
  // processing (LLM calls) runs without any engine lock, and the world
  // commit takes only the world's own mutex — graph maintenance in other
  // workers proceeds concurrently.
  std::vector<world::StepIntent> intents;
  std::exception_ptr error;
  try {
    intents = step_fn_(cluster, *world_);
  } catch (...) {
    error = std::current_exception();
  }

  if (error == nullptr && !failed_.load(std::memory_order_acquire)) {
    try {
      // resolve_conflict_and_commit applies developer conflict rules and
      // commits winners to the world; the unique world lock excludes
      // concurrent observation readers in other workers. The dependency
      // rules already guarantee in-flight clusters touch disjoint
      // perception regions, so world commits from different clusters can
      // interleave freely.
      std::vector<std::pair<AgentId, Pos>> moves;
      {
        common::WriterLock world_lock(world_->mutex());
        const auto outcomes =
            world_->resolve_conflict_and_commit(cluster.step, intents);
        world_lock.unlock();
        moves.reserve(outcomes.size());
        for (const auto& out : outcomes) {
          moves.emplace_back(out.agent, out.tile.center());
        }
        if (config_.kv_instrumentation) {
          // Transactional mirror of the committed agent rows, as the
          // paper keeps all simulation state in the in-memory database.
          // The store's shard locks make this safe outside the commit
          // locks. Sharded runs log per strip so the instrumentation
          // stream shows the shard-local traffic split.
          kv::Transaction txn = store_.transaction();
          for (const auto& out : outcomes) {
            const std::string key = strformat("agent:%d", out.agent);
            txn.hset(key, "step", std::to_string(cluster.step + 1));
            txn.hset(key, "x", std::to_string(out.tile.x));
            txn.hset(key, "y", std::to_string(out.tile.y));
          }
          const std::string log_key =
              shards_ > 1 && !moves.empty()
                  ? strformat("log:commits:%d",
                              scoreboard_->shard_of_pos(moves.front().second))
                  : std::string("log:commits");
          txn.rpush(log_key, strformat("step=%d size=%zu", cluster.step,
                                       cluster.members.size()));
          txn.incr_by("stats:agent_steps",
                      static_cast<std::int64_t>(cluster.members.size()));
          const auto result = txn.exec();
          common::MutexLock slock(stats_mutex_);
          ++stats_.kv_transactions;
          if (result == kv::TxnResult::kConflict) ++stats_.kv_conflicts;
        }
      }

      // Graph maintenance — the boundary-lag commit protocol. Timed so
      // EngineStats can show whether commits serialize the pipeline
      // (wait) and what the maintenance itself costs (hold).
      const auto wait_begin = std::chrono::steady_clock::now();
      std::uint64_t wait_us = 0;
      std::uint64_t hold_us = 0;
      std::int32_t strip = -1;
      std::vector<RoutedCluster> released;
      // Near an unapplied reshard boundary B, commits that could raise
      // min_step() past B (cluster.step + 1 >= B) are forced cross-shard:
      // the raising commit then holds the topology lock exclusively, which
      // is exactly where the rebalance may run. The atomic only ever
      // advances, so a stale read is merely conservative (extra cross
      // commits, never a missed trigger).
      const Step reshard_boundary =
          next_reshard_step_.load(std::memory_order_acquire);
      {
        // Interior path: prove the commit is confined to one strip, then
        // take that strip's lock under a shared topology hold. The floor
        // is sampled before classification so classification and commit
        // bound their probe radii identically; it can only lag the true
        // minimum, which merely widens the (exactly filtered) probes.
        common::ReaderLock tlock(topology_mutex_);
        const Step floor = min_floor_.load(std::memory_order_acquire);
        strip = cluster.step + 1 >= reshard_boundary
                    ? -1
                    : scoreboard_->local_commit_shard(moves, floor);
        if (strip >= 0) {
          common::MutexLock slock(
              *shard_mutexes_[static_cast<std::size_t>(strip)]);
          const auto acquired = std::chrono::steady_clock::now();
          wait_us = elapsed_us(wait_begin, acquired);
          if (!failed_.load(std::memory_order_acquire)) {
            scoreboard_->commit(moves, floor);
            released =
                route_clusters(scoreboard_->pop_ready_clusters_in_shard(strip));
          }
          hold_us = elapsed_us(acquired, std::chrono::steady_clock::now());
        }
      }
      if (strip < 0) {
        // Cross-shard path: exclusive over the whole board (identical to
        // the old global commit lock; with shards=1 every commit lands
        // here). The exclusive hold is the only place the global minimum
        // may be recomputed and published — and therefore the only place
        // a reshard boundary can be observed crossed and acted on.
        common::WriterLock tlock(topology_mutex_);
        const auto acquired = std::chrono::steady_clock::now();
        wait_us = elapsed_us(wait_begin, acquired);
        if (!failed_.load(std::memory_order_acquire)) {
          scoreboard_->commit(moves);
          min_floor_.store(scoreboard_->min_step(),
                           std::memory_order_release);
          maybe_reshard();
          released = route_clusters(scoreboard_->pop_ready_clusters());
        }
        hold_us = elapsed_us(acquired, std::chrono::steady_clock::now());
      }
      if (!failed_.load(std::memory_order_acquire)) {
        submit_clusters(std::move(released));
      }
      {
        common::MutexLock slock(stats_mutex_);
        ++stats_.clusters_executed;
        stats_.agent_steps += cluster.members.size();
        EngineStats& row = shard_rows_[static_cast<std::size_t>(
            strip >= 0 ? strip : shards_)];
        ++row.commits;
        row.commit_wait_us += wait_us;
        row.commit_hold_us += hold_us;
        row.max_commit_wait_us = std::max(row.max_commit_wait_us, wait_us);
      }
    } catch (...) {
      error = std::current_exception();
    }
  }
  {
    common::MutexLock lock(control_mutex_);
    if (error != nullptr && error_ == nullptr) {
      error_ = error;
      failed_.store(true, std::memory_order_release);
    }
    inflight_clusters_.fetch_sub(1, std::memory_order_acq_rel);
    // The commit that finishes the last agent (or records the first
    // error) is what unblocks run(). Notify under the lock: a waiter in
    // ~Engine may destroy the condition variable the instant its
    // predicate holds.
    done_cv_.notify_all();
  }
}

EngineStats Engine::run() {
  {
    common::WriterLock tlock(topology_mutex_);
    std::vector<RoutedCluster> ready =
        route_clusters(scoreboard_->pop_ready_clusters());
    tlock.unlock();
    submit_clusters(std::move(ready));
  }
  {
    // Controller: wait until every agent has reached the target (or a
    // task failed) and all in-flight cluster tasks have drained.
    common::MutexLock lock(control_mutex_);
    while (!((scoreboard_->all_done() || error_ != nullptr) &&
             inflight_clusters_.load(std::memory_order_acquire) == 0)) {
      done_cv_.wait(control_mutex_);
    }
    if (error_ != nullptr) std::rethrow_exception(error_);
  }
  common::MutexLock slock(stats_mutex_);
  EngineStats out = stats_;
  for (const EngineStats& row : shard_rows_) {
    out.commits += row.commits;
    out.commit_wait_us += row.commit_wait_us;
    out.commit_hold_us += row.commit_hold_us;
    out.max_commit_wait_us =
        std::max(out.max_commit_wait_us, row.max_commit_wait_us);
  }
  return out;
}

std::vector<EngineStats> Engine::shard_commit_stats() const {
  common::MutexLock slock(stats_mutex_);
  return shard_rows_;
}

}  // namespace aimetro::runtime
