// The shared execution layer: a persistent worker pool for every surface
// that runs blocking agent work (engine cluster tasks, scenario-driver
// member chains, gym member chains).
//
// The paper's speedup depends on keeping the controller's critical path
// light and the workers saturated (§3.1/§3.6). Before this layer existed,
// each execution surface rolled its own concurrency — the engine owned a
// private thread vector, and the scenario driver and gym Env constructed
// and joined short-lived std::threads inside the *timed* region of every
// dispatch, paying thread spawn/teardown on the critical path. TaskPool
// centralizes that: workers are spawned once per run (outside the timed
// region) and tasks are handed over through a step-priority queue, so the
// per-dispatch cost is a queue push instead of a pthread_create.
//
// Design points:
//   - submit() returns a waitable Handle; the task's exception (if any) is
//     captured and rethrown from Handle::wait(), never lost to terminate().
//   - submit(priority, ...) orders the backlog by ascending priority (FIFO
//     within equal priority), which is how the engine preserves the
//     earliest-step-first dispatch rule (§3.5) on a shared pool.
//   - submit_and_wait() submits a batch and lets the *calling thread claim
//     and run* any task a worker has not started yet. A saturated (or even
//     zero-spare-worker) pool therefore degrades to inline execution
//     instead of deadlocking, which makes nested waits — a pool task
//     waiting on a batch it submitted to the same pool — safe by
//     construction.
//   - an optional queue bound applies backpressure to external submitters;
//     pool workers and submit_and_wait batches bypass it so the pool can
//     never wedge itself.
//   - shutdown() (and the destructor) drains queued tasks before joining:
//     work accepted is work executed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/sync_queue.h"
#include "common/thread_annotations.h"

namespace aimetro::runtime {

struct TaskPoolConfig {
  /// Persistent worker threads, spawned in the constructor.
  std::int32_t n_workers = 4;
  /// Backpressure bound on tasks waiting for a worker; 0 = unbounded.
  /// submit() from outside the pool blocks while the backlog is full.
  /// Submissions from a pool worker or inside submit_and_wait bypass the
  /// bound (blocking them could deadlock the pool against itself).
  std::size_t max_queued = 0;
  /// CPU-affinity pinning: worker i is pinned to cpus[i % cpus.size()]
  /// (empty = no pinning, the default). Linux only
  /// (pthread_setaffinity_np); silently a no-op elsewhere, and pin
  /// failures (e.g. a cpuset-restricted container) are ignored — pinning
  /// is a placement hint, never a correctness requirement. The engine
  /// uses this to keep each strip's pool on one core group so strip-local
  /// scoreboard state stays in one cache/NUMA domain.
  std::vector<std::int32_t> cpus;
};

struct TaskPoolStats {
  /// Tasks completed, by who ran them: pool workers vs. waiting callers
  /// that claimed their own batch tasks inline.
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_inlined = 0;
  /// Largest number of tasks simultaneously in flight (submitted but not
  /// finished) over the pool's lifetime.
  std::uint64_t peak_in_flight = 0;
};

class TaskPool {
 public:
  using Task = std::function<void()>;

  /// Waitable handle for one submitted task. Copyable (shared state);
  /// dropping every copy detaches the task (it still runs; an exception
  /// it throws is then unobservable).
  class Handle {
   public:
    Handle() = default;

    /// Block until the task has run; rethrows the task's exception.
    void wait() const;
    bool valid() const { return state_ != nullptr; }

   private:
    friend class TaskPool;
    struct State;
    explicit Handle(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  explicit TaskPool(TaskPoolConfig config);
  /// Convenience: a pool of `n_workers` with an unbounded queue.
  explicit TaskPool(std::int32_t n_workers)
      : TaskPool(TaskPoolConfig{n_workers, 0, {}}) {}
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue `fn` at the given priority (smaller runs first, FIFO within
  /// equal priority; plain submit() uses priority 0). Blocks only when a
  /// queue bound is configured and the caller is outside the pool.
  Handle submit(std::int64_t priority, Task fn);
  Handle submit(Task fn) { return submit(0, std::move(fn)); }

  /// Submit every task in `tasks` at `priority`, then run-or-wait: the
  /// caller claims and executes tasks no worker has started, so the batch
  /// completes even when every worker is busy (including busy waiting on
  /// batches of their own — nested use is deadlock-free). Rethrows the
  /// first exception after the whole batch has settled.
  void submit_and_wait(std::vector<Task> tasks, std::int64_t priority = 0);

  /// Block until no task is queued or running. Does not prevent further
  /// submissions; meant for quiescing between phases.
  void wait_idle() const;

  /// Drain queued tasks, then join the workers. Idempotent; called by the
  /// destructor. Submitting after shutdown is a checked error.
  void shutdown();

  std::int32_t workers() const {
    return static_cast<std::int32_t>(threads_.size());
  }
  /// The configured queue bound (0 = unbounded). Lets a borrower that
  /// submits while holding its own locks (e.g. runtime::Engine) refuse
  /// bounded pools up front instead of deadlocking against backpressure.
  std::size_t max_queued() const { return max_queued_; }
  TaskPoolStats stats() const;

 private:
  using StatePtr = std::shared_ptr<Handle::State>;

  void worker_loop();
  /// Claim and run `state` unless another thread already has. Returns
  /// whether this thread ran it. `inline_run` tags the stats bucket.
  bool try_execute(const StatePtr& state, bool inline_run);
  void finish_one(bool inline_run);

  /// Internally synchronized (its own lock nests inside mutex_ only in
  /// submit(); workers release it before taking mutex_, so no inversion).
  SyncPriorityQueue<StatePtr, std::int64_t> queue_;
  std::vector<std::thread> threads_;

  mutable common::Mutex mutex_{"task_pool"};
  mutable common::CondVar idle_cv_;
  common::CondVar space_cv_;
  std::size_t max_queued_ = 0;  // immutable after construction
  /// Submitted, not yet popped by a worker.
  std::size_t queued_ GUARDED_BY(mutex_) = 0;
  /// Submitted, not yet finished.
  std::uint64_t in_flight_ GUARDED_BY(mutex_) = 0;
  TaskPoolStats stats_ GUARDED_BY(mutex_);
  bool shut_down_ GUARDED_BY(mutex_) = false;
};

/// Default pool size for a surface that feeds member LLM chains from
/// `workers` concurrent dispatches: two chain slots per worker, plus the
/// waiting dispatcher itself running one chain inline, covers the typical
/// cluster-size distribution without spawning a thread per member.
inline std::int32_t derive_pool_workers(std::int32_t workers) {
  return workers * 2;
}

}  // namespace aimetro::runtime
