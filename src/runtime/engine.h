// The real (threaded) AI Metropolis engine — Algorithm 3 with live agents.
//
// Architecture mirrors §3.1/§3.6: a controller on a light critical path
// exchanges work with a worker pool through two step-priority queues
// (ready and ack); workers run every agent in a cluster concurrently, call
// the LLM through the blocking client shim, commit writes to the world and
// the dependency scoreboard, and acknowledge. All shared simulation state
// is additionally mirrored into the in-memory kv store (the paper keeps it
// in Redis) — agent rows are updated transactionally at each commit and an
// instrumentation log records every cluster dispatch.
//
// The paper uses processes to dodge the Python GIL; C++ threads carry no
// such penalty, so workers are threads here. The scheduling policy objects
// (Scoreboard, clustering, priorities) are the same code the
// discrete-event benchmarks use.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sync_queue.h"
#include "core/scoreboard.h"
#include "kv/store.h"
#include "world/world_state.h"

namespace aimetro::runtime {

struct EngineConfig {
  core::DependencyParams params;
  Step target_step = 100;
  std::int32_t n_workers = 4;
  /// Mirror agent state and an instrumentation stream into the kv store.
  bool kv_instrumentation = true;
};

struct EngineStats {
  std::uint64_t clusters_executed = 0;
  std::uint64_t agent_steps = 0;
  std::uint64_t kv_transactions = 0;
  std::uint64_t kv_conflicts = 0;
};

class Engine {
 public:
  /// Computes the intents of every member of `cluster` for its step. Runs
  /// on worker threads; implementations may issue blocking LLM calls. Must
  /// be thread-safe and deterministic given the world snapshot.
  using StepFn = std::function<std::vector<world::StepIntent>(
      const core::AgentCluster& cluster, const world::WorldState& world)>;

  Engine(world::WorldState* world, EngineConfig config, StepFn step_fn);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the simulation to target_step. Blocking; returns aggregate stats.
  EngineStats run();

  const core::Scoreboard& scoreboard() const { return *scoreboard_; }
  kv::Store& store() { return store_; }

 private:
  void worker_loop();
  void dispatch_ready_locked();

  world::WorldState* world_;
  EngineConfig config_;
  StepFn step_fn_;
  std::unique_ptr<core::Scoreboard> scoreboard_;
  kv::Store store_;

  std::mutex state_mutex_;  // guards scoreboard_ + world_ commits
  SyncPriorityQueue<core::AgentCluster, Step> ready_queue_;
  SyncQueue<int> ack_queue_;
  std::vector<std::thread> workers_;
  EngineStats stats_;
  std::mutex stats_mutex_;
};

}  // namespace aimetro::runtime
