// The real (threaded) AI Metropolis engine — Algorithm 3 with live agents.
//
// Architecture mirrors §3.1/§3.6: a controller on a light critical path
// exchanges work with a persistent worker pool (runtime::TaskPool); every
// ready cluster becomes one pool task, submitted at its step as the
// priority so the earliest-step cluster always runs first (§3.5). Workers
// run every agent in a cluster, call the LLM through the blocking client
// shim, commit writes to the world and the dependency scoreboard, and
// submit whatever clusters the commit released — so dispatch is a queue
// push, never a thread spawn, and nothing heavier than a condition
// variable sits on the controller's critical path. All shared simulation
// state is additionally mirrored into the in-memory kv store (the paper
// keeps it in Redis) — agent rows are updated transactionally at each
// commit and an instrumentation log records every cluster dispatch.
//
// Locking discipline (sharded commits): there is no single engine-wide
// state lock. World writes serialize on the world's own shared_mutex;
// scoreboard graph maintenance (commit + dispatch of released clusters)
// serializes on a separate commit lock; the kv mirror uses the store's
// internal shard locks. A worker preparing moves (LLM calls, world
// observation, conflict resolution) therefore never contends with another
// worker's graph maintenance — only the scoreboard commit itself is a
// critical section, and EngineStats reports how long workers waited for
// it. See docs/ARCHITECTURE.md, "Dependency core".
//
// The paper uses processes to dodge the Python GIL; C++ threads carry no
// such penalty, so workers are pool threads here. The scheduling policy
// objects (Scoreboard, clustering, priorities) are the same code the
// discrete-event benchmarks use.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/scoreboard.h"
#include "kv/store.h"
#include "runtime/task_pool.h"
#include "world/world_state.h"

namespace aimetro::runtime {

struct EngineConfig {
  core::DependencyParams params;
  Step target_step = 100;
  std::int32_t n_workers = 4;
  /// Scoreboard neighbor-scan implementation (spatial-index probes by
  /// default; kBruteForce is the full-scan reference path for
  /// differential testing).
  core::ScanMode scan_mode = core::ScanMode::kIndexed;
  /// Distance model for the dependency rules. Null = Euclidean (the
  /// historical default). Graph worlds pass a core::GraphMetric here so
  /// the scoreboard measures hops; must outlive the engine.
  std::shared_ptr<const core::Metric> metric;
  /// Mirror agent state and an instrumentation stream into the kv store.
  bool kv_instrumentation = true;
  /// Run cluster tasks on an externally owned pool instead of a private
  /// one (the pool must outlive the engine and have no queue bound —
  /// dispatch happens under the commit lock, so backpressure would
  /// deadlock the dispatcher against its own workers; checked at
  /// construction). Cluster concurrency is then bounded by that pool's
  /// worker count, not n_workers — share a pool only when that is what
  /// you mean.
  TaskPool* pool = nullptr;
};

struct EngineStats {
  std::uint64_t clusters_executed = 0;
  std::uint64_t agent_steps = 0;
  std::uint64_t kv_transactions = 0;
  std::uint64_t kv_conflicts = 0;
  /// Commit-lock contention: total scoreboard commits, total microseconds
  /// workers spent waiting to acquire the commit lock, total microseconds
  /// spent holding it (graph maintenance + dispatch), and the worst
  /// single wait. wait >> hold means commits are serializing the
  /// pipeline; both near zero means the LLM calls dominate, as designed.
  std::uint64_t commits = 0;
  std::uint64_t commit_wait_us = 0;
  std::uint64_t commit_hold_us = 0;
  std::uint64_t max_commit_wait_us = 0;
};

class Engine {
 public:
  /// Computes the intents of every member of `cluster` for its step. Runs
  /// on worker threads; implementations may issue blocking LLM calls. Must
  /// be thread-safe and deterministic given the world snapshot.
  using StepFn = std::function<std::vector<world::StepIntent>(
      const core::AgentCluster& cluster, const world::WorldState& world)>;

  /// Spawns the private worker pool (when config.pool is null) here, so a
  /// caller timing run() never measures thread creation.
  Engine(world::WorldState* world, EngineConfig config, StepFn step_fn);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the simulation to target_step. Blocking; returns aggregate stats.
  /// Rethrows the first exception a cluster task raised (the run stops
  /// dispatching and drains in-flight work first).
  EngineStats run();

  /// Post-run inspection only: callers read the scoreboard after run()
  /// returned (or before it started), when no worker can be mutating it.
  const core::Scoreboard& scoreboard() const NO_THREAD_SAFETY_ANALYSIS {
    return *scoreboard_;
  }
  kv::Store& store() { return store_; }
  const TaskPool& pool() const { return *pool_; }

 private:
  void execute_cluster(core::AgentCluster cluster);
  void dispatch_ready_locked() REQUIRES(commit_mutex_);

  world::WorldState* world_;
  EngineConfig config_;
  StepFn step_fn_;
  /// The pointer is set once in the constructor; the pointed-to graph is
  /// mutated only under commit_mutex_ (see scoreboard() for the post-run
  /// read exception).
  std::unique_ptr<core::Scoreboard> scoreboard_ PT_GUARDED_BY(commit_mutex_);
  kv::Store store_;

  std::unique_ptr<TaskPool> owned_pool_;
  TaskPool* pool_ = nullptr;

  /// Guards scoreboard_ graph maintenance, dispatch bookkeeping
  /// (inflight_clusters_), and error_. World commits take only the
  /// world's own mutex; the kv mirror uses the store's shard locks.
  common::Mutex commit_mutex_{"engine.commit"};
  common::CondVar done_cv_;
  std::uint64_t inflight_clusters_ GUARDED_BY(commit_mutex_) = 0;
  /// First task failure; stops dispatch.
  std::exception_ptr error_ GUARDED_BY(commit_mutex_);
  /// Lock-free mirror of `error_ != nullptr` so workers can skip the
  /// world commit on failed runs without touching the commit lock.
  std::atomic<bool> failed_{false};
  common::Mutex stats_mutex_{"engine.stats"};
  EngineStats stats_ GUARDED_BY(stats_mutex_);
};

}  // namespace aimetro::runtime
