// The real (threaded) AI Metropolis engine — Algorithm 3 with live agents.
//
// Architecture mirrors §3.1/§3.6: a controller on a light critical path
// exchanges work with persistent worker pools (runtime::TaskPool); every
// ready cluster becomes one pool task, submitted at its step as the
// priority so the earliest-step cluster always runs first (§3.5). Workers
// run every agent in a cluster, call the LLM through the blocking client
// shim, commit writes to the world and the dependency scoreboard, and
// submit whatever clusters the commit released — so dispatch is a queue
// push, never a thread spawn, and nothing heavier than a condition
// variable sits on the controller's critical path. All shared simulation
// state is additionally mirrored into the in-memory kv store (the paper
// keeps it in Redis) — agent rows are updated transactionally at each
// commit and an instrumentation log records every cluster dispatch.
//
// Locking discipline (boundary-lag commit protocol): there is no single
// engine-wide state lock. World writes serialize on the world's own
// shared_mutex and the kv mirror uses the store's internal shard locks,
// both outside any engine lock. Scoreboard graph maintenance uses a
// two-mode protocol over the region partition (config.shards):
//
//   interior commit — the scoreboard proves the commit's influence region
//     sits inside one strip s with no cross-strip couplings
//     (Scoreboard::local_commit_shard); the worker then holds
//     topology_mutex_ SHARED plus shard_mutexes_[s] and commits, popping
//     released clusters from strip s only. Interior commits in different
//     strips run fully concurrently — this is the hot path that removes
//     the global commit lock.
//   cross-shard commit — anything near a strip border (or with shards=1,
//     everything) holds topology_mutex_ EXCLUSIVE, which excludes every
//     interior commit: exactly the old global-commit-lock behavior. It
//     also refreshes min_floor_, the monotonic lower bound on min_step()
//     that interior commits use to bound their probe radii without
//     reading other strips' live-step tables.
//
// Lock order: engine.topology -> engine.shard -> task_pool ->
// engine.stats -> engine.control (see docs/ARCHITECTURE.md, "Sharded
// world", for the full inventory). The scoreboard object itself carries
// no capability annotation: its guard is the protocol above, which Clang
// TSA cannot express (shared-mode writers striped by a runtime index);
// the runtime lock-order validator and the TSan suite check it instead.
//
// The paper uses processes to dodge the Python GIL; C++ threads carry no
// such penalty, so workers are pool threads here. The scheduling policy
// objects (Scoreboard, clustering, priorities) are the same code the
// discrete-event benchmarks use.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/scoreboard.h"
#include "kv/store.h"
#include "runtime/task_pool.h"
#include "world/world_state.h"

namespace aimetro::runtime {

struct EngineConfig {
  core::DependencyParams params;
  Step target_step = 100;
  std::int32_t n_workers = 4;
  /// Scoreboard neighbor-scan implementation (spatial-index probes by
  /// default; kBruteForce is the full-scan reference path for
  /// differential testing).
  core::ScanMode scan_mode = core::ScanMode::kIndexed;
  /// Distance model for the dependency rules. Null = Euclidean (the
  /// historical default). Graph worlds pass a core::GraphMetric here so
  /// the scoreboard measures hops; must outlive the engine.
  std::shared_ptr<const core::Metric> metric;
  /// Mirror agent state and an instrumentation stream into the kv store.
  bool kv_instrumentation = true;
  /// Run cluster tasks on an externally owned pool instead of a private
  /// one (the pool must outlive the engine and have no queue bound —
  /// workers dispatch the clusters their own commits release, so
  /// backpressure would deadlock them against each other; checked at
  /// construction). Cluster concurrency is then bounded by that pool's
  /// worker count, not n_workers — share a pool only when that is what
  /// you mean. Ignored when shard_pools is set.
  TaskPool* pool = nullptr;
  /// Region partition of the world (1..core::kMaxShards). Values > 1
  /// activate the boundary-lag commit protocol; the scoreboard may still
  /// collapse to one strip (graph metrics, brute-force scans), in which
  /// case every commit takes the cross-shard path and behavior matches
  /// shards=1 exactly.
  std::int32_t shards = 1;
  /// Pool-per-shard seam: clusters homed in strip s run on
  /// shard_pools[s]. Must be empty or hold at least `shards` pools, all
  /// unbounded and outliving the engine. When empty and shards > 1, the
  /// engine spawns one private pool per strip, splitting n_workers
  /// between them.
  std::vector<TaskPool*> shard_pools;
  /// Initial strip-boundary placement, passed through to the scoreboard:
  /// equal-width strips, or boundaries at population quantiles of the
  /// initial agent positions. Affects only which commits classify as
  /// interior — never any observable result.
  world::PartitionKind partition = world::PartitionKind::kEqualWidth;
  /// Rebalance points (sorted ascending, each > 0): engine-relative steps
  /// — in practice the episode (midnight) boundaries between `days` —
  /// at which the partition is re-quantiled against the per-strip
  /// contention rows accumulated since the previous rebalance. Near a
  /// boundary B, commits of clusters at step B-1 or later are forced onto
  /// the cross-shard (exclusive) path; the cross commit that raises
  /// min_step() past B then repartitions the scoreboard in place while
  /// still holding the topology lock exclusively. Empty = never reshard.
  std::vector<Step> reshard_at;
  /// Pin each privately spawned per-strip pool to a contiguous CPU core
  /// group (strip s gets cores [s*C/shards, (s+1)*C/shards)), keeping a
  /// strip's scoreboard slice in one cache/NUMA domain. Linux only;
  /// ignored for external pools (pin those where they are constructed)
  /// and with shards = 1.
  bool pin_cores = false;
};

struct EngineStats {
  std::uint64_t clusters_executed = 0;
  std::uint64_t agent_steps = 0;
  std::uint64_t kv_transactions = 0;
  std::uint64_t kv_conflicts = 0;
  /// Commit-lock contention: total scoreboard commits, total microseconds
  /// workers spent waiting to acquire the commit locks, total
  /// microseconds spent holding them (graph maintenance + dispatch), and
  /// the worst single wait. wait >> hold means commits are serializing
  /// the pipeline; both near zero means the LLM calls dominate, as
  /// designed. With shards > 1 these are rollups of the per-strip rows
  /// (sums, except max_commit_wait_us which is the max).
  std::uint64_t commits = 0;
  std::uint64_t commit_wait_us = 0;
  std::uint64_t commit_hold_us = 0;
  std::uint64_t max_commit_wait_us = 0;
  /// Partition rebalances performed (config.reshard_at boundaries whose
  /// trigger actually fired). Aggregate only; zero in the per-strip rows.
  std::uint64_t reshards = 0;
};

class Engine {
 public:
  /// Computes the intents of every member of `cluster` for its step. Runs
  /// on worker threads; implementations may issue blocking LLM calls. Must
  /// be thread-safe and deterministic given the world snapshot.
  using StepFn = std::function<std::vector<world::StepIntent>(
      const core::AgentCluster& cluster, const world::WorldState& world)>;

  /// Spawns the private worker pool(s) (when config.pool / shard_pools
  /// are unset) here, so a caller timing run() never measures thread
  /// creation.
  Engine(world::WorldState* world, EngineConfig config, StepFn step_fn);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Run the simulation to target_step. Blocking; returns aggregate stats.
  /// Rethrows the first exception a cluster task raised (the run stops
  /// dispatching and drains in-flight work first).
  EngineStats run();

  /// Post-run inspection only: callers read the scoreboard after run()
  /// returned (or before it started), when no worker can be mutating it.
  const core::Scoreboard& scoreboard() const { return *scoreboard_; }
  kv::Store& store() { return store_; }
  /// The first cluster pool (the only one with shards=1).
  const TaskPool& pool() const { return *pool_; }
  /// Effective strip count (after the scoreboard's collapse rules).
  std::int32_t shards() const { return shards_; }
  /// Per-strip commit contention rows, index shards() = the cross-shard
  /// (boundary-reconciliation) row. Only the commit* fields are
  /// populated; kv/cluster totals live in the aggregate. Post-run only.
  std::vector<EngineStats> shard_commit_stats() const;

 private:
  /// A popped cluster plus its home strip, resolved while the popping
  /// thread still held the topology lock — the partition may move at
  /// reshard points, so routing must never read it unlocked.
  struct RoutedCluster {
    std::int32_t strip = 0;
    core::AgentCluster cluster;
  };

  void execute_cluster(core::AgentCluster cluster);
  /// Resolve each cluster's home strip under the current partition.
  /// Caller must hold topology_mutex_ (shared suffices: routing only
  /// reads) — a guard TSA cannot express for either-mode holds.
  std::vector<RoutedCluster> route_clusters(
      std::vector<core::AgentCluster> ready);
  /// Queue released clusters on their home strips' pools (step priority).
  void submit_clusters(std::vector<RoutedCluster> ready);
  /// Fire the next reshard boundary if min_step() has cleared it:
  /// re-quantile the partition against the contention deltas since the
  /// last rebalance and repartition the scoreboard in place. Caller must
  /// hold topology_mutex_ exclusively (the cross-shard commit path).
  void maybe_reshard();

  world::WorldState* world_;
  EngineConfig config_;
  StepFn step_fn_;
  /// Set once in the constructor. The pointed-to graph is mutated under
  /// the boundary-lag protocol described in the header comment (shared
  /// topology + one strip lock, or exclusive topology) — a guard Clang
  /// TSA cannot express, so the pointer is deliberately unannotated.
  std::unique_ptr<core::Scoreboard> scoreboard_;
  kv::Store store_;

  std::unique_ptr<TaskPool> owned_pool_;
  std::vector<std::unique_ptr<TaskPool>> owned_shard_pools_;
  TaskPool* pool_ = nullptr;
  /// Routing table, size shards(): per-strip pools or aliases of pool_.
  std::vector<TaskPool*> shard_pools_;

  std::int32_t shards_ = 1;
  /// Cross-shard commits hold this exclusively; interior commits hold it
  /// shared plus one shard mutex. Acquired before any other engine lock.
  common::SharedMutex topology_mutex_{"engine.topology"};
  std::vector<std::unique_ptr<common::Mutex>> shard_mutexes_;
  /// Monotonic lower bound on scoreboard min_step(); refreshed only by
  /// cross-shard commits (the only ones that may read every strip's
  /// live-step table). Bounds interior commits' probe radii.
  std::atomic<Step> min_floor_{0};
  /// The next unapplied config.reshard_at boundary (max() when none
  /// remain). Read lock-free by every commit to force the near-boundary
  /// commits cross-shard; advanced only under topology-exclusive. Only
  /// ever advances, so a stale read is merely conservative.
  std::atomic<Step> next_reshard_step_;
  /// Index into config_.reshard_at of the boundary above. Mutated and
  /// read only under topology-exclusive (maybe_reshard).
  std::size_t next_reshard_idx_ = 0;

  /// Control plane: run()/~Engine() wait here for in-flight cluster
  /// tasks to drain. Never held while acquiring topology/shard locks.
  common::Mutex control_mutex_{"engine.control"};
  common::CondVar done_cv_;
  std::atomic<std::int64_t> inflight_clusters_{0};
  /// First task failure; stops dispatch.
  std::exception_ptr error_ GUARDED_BY(control_mutex_);
  /// Lock-free mirror of `error_ != nullptr` so workers can skip the
  /// world commit on failed runs without touching the control lock.
  std::atomic<bool> failed_{false};
  mutable common::Mutex stats_mutex_{"engine.stats"};
  EngineStats stats_ GUARDED_BY(stats_mutex_);
  /// Commit contention per strip + the cross-shard row (size shards+1).
  std::vector<EngineStats> shard_rows_ GUARDED_BY(stats_mutex_);
  /// Snapshot of shard_rows_ at the last rebalance; maybe_reshard weighs
  /// strips by the delta against it.
  std::vector<EngineStats> reshard_base_ GUARDED_BY(stats_mutex_);
};

}  // namespace aimetro::runtime
