// Virtual-time clock for the live threaded engine.
//
// The DES backend reports completion in cost-model virtual seconds while
// the threaded engine could only measure real sleeps — so the two
// backends' numbers were not comparable. SimClock closes that gap: it maps
// the wall clock onto a virtual time axis at a fixed `scale` (virtual
// microseconds advanced per wall microsecond), so a client that computes a
// request's virtual latency from llm::CostModel can block its caller for
// latency/scale of real time. Real thread concurrency then plays out at
// scaled speed, and the measured virtual elapsed time is directly
// comparable to the DES backend's virtual seconds.
//
// scale = 1 degenerates to the wall clock; large scales compress hours of
// simulated GPU time into seconds of wall time. sleep_until() finishes
// with a short spin so per-call oversleep stays ~the spin window rather
// than the scheduler's wakeup jitter — at scale 1000 a 100 us oversleep
// would otherwise inflate every sequential call by 0.1 virtual seconds.
#pragma once

#include <chrono>

#include "common/types.h"

namespace aimetro::runtime {

class SimClock {
 public:
  /// `scale`: virtual microseconds advanced per wall microsecond (> 0).
  explicit SimClock(double scale = 1.0);

  double scale() const { return scale_; }

  /// Re-zero the virtual axis at the current wall instant, excluding setup
  /// work done since construction from the measured run. Not thread-safe;
  /// call before handing the clock to workers.
  void restart() { origin_ = std::chrono::steady_clock::now(); }

  /// Virtual microseconds elapsed since construction. Thread-safe,
  /// monotone non-decreasing across calls from one thread.
  SimTime now() const;

  /// Virtual seconds elapsed since construction.
  double elapsed_seconds() const { return sim_time_to_seconds(now()); }

  /// Block the calling thread until now() >= t. Returns immediately when t
  /// is already past. Thread-safe.
  void sleep_until(SimTime t) const;

 private:
  double scale_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace aimetro::runtime
