#include "common/lock_debug.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define AIMETRO_LOCK_DEBUG_HAVE_BACKTRACE 1
#endif
#endif

namespace aimetro::common::lock_debug {

namespace {

std::string capture_stack() {
#ifdef AIMETRO_LOCK_DEBUG_HAVE_BACKTRACE
  void* frames[32];
  const int n = ::backtrace(frames, 32);
  char** symbols = ::backtrace_symbols(frames, n);
  std::ostringstream os;
  if (symbols != nullptr) {
    // Skip capture_stack and note_acquire themselves.
    for (int i = 2; i < n; ++i) os << "    " << symbols[i] << "\n";
    std::free(symbols);
  }
  return os.str();
#else
  return "    <no backtrace support on this platform>\n";
#endif
}

const char* safe_name(const char* name) {
  return name != nullptr ? name : "mutex";
}

/// One first-observed ordering: "`to` was acquired while `from` was held".
struct Edge {
  std::string stack;  // where that order was first established
};

struct Node {
  std::string name;
  std::unordered_map<const void*, Edge> out;
};

/// Global lock-order graph. Leaked on purpose: lock wrappers with static
/// storage duration may release during shutdown after any non-leaked
/// registry would have been destroyed.
struct Registry {
  std::mutex mu;
  std::unordered_map<const void*, Node> nodes;
  Handler handler;  // empty = default abort handler
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct Held {
  const void* lock;
  const char* name;
  bool trylock;
  bool shared;
};

thread_local std::vector<Held> t_held;

/// DFS: is `to` reachable from `from`? On success `path` holds the node
/// chain from → … → to.
bool find_path(const Registry& reg, const void* from, const void* to,
               std::vector<const void*>& path,
               std::unordered_map<const void*, bool>& visited) {
  if (visited.count(from) != 0) return false;
  visited.emplace(from, true);
  path.push_back(from);
  if (from == to) return true;
  if (const auto it = reg.nodes.find(from); it != reg.nodes.end()) {
    for (const auto& [next, edge] : it->second.out) {
      if (find_path(reg, next, to, path, visited)) return true;
    }
  }
  path.pop_back();
  return false;
}

void dispatch(Registry& reg, Violation v) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    handler = reg.handler;
  }
  if (handler) {
    handler(v);
    return;
  }
  std::fprintf(stderr, "%s", v.report.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* lock, const char* name, bool trylock,
                  bool shared) {
  Registry& reg = registry();
  // Recursive acquisition: UB on std::mutex, writer-starvation deadlock
  // bait on shared_mutex. Report even for trylocks (a successful try_lock
  // of an already-held std::mutex is just as undefined).
  for (const Held& h : t_held) {
    if (h.lock == lock) {
      Violation v;
      v.kind = Violation::Kind::kRecursive;
      v.held = h.lock;
      v.acquiring = lock;
      v.held_name = safe_name(h.name);
      v.acquiring_name = safe_name(name);
      std::ostringstream os;
      os << "lock-debug: recursive acquisition of \"" << v.acquiring_name
         << "\" (" << lock << ") — this thread already holds it\n"
         << "  current acquisition:\n"
         << capture_stack();
      v.report = os.str();
      dispatch(reg, std::move(v));
      // Non-aborting handler: record the acquisition anyway so the
      // matching release keeps the held stack balanced.
      t_held.push_back(Held{lock, name, trylock, shared});
      return;
    }
  }

  if (!trylock && !t_held.empty()) {
    // Blocking acquisition while holding other locks: each (held → lock)
    // pair is an ordering edge. A trylock cannot block, so it creates no
    // incoming edge (lockdep's rule), but it still lands on the held
    // stack below — blocking acquisitions made while it is held order
    // against it normally.
    Violation pending;
    bool violated = false;
    {
      std::lock_guard<std::mutex> guard(reg.mu);
      reg.nodes[lock].name = safe_name(name);
      for (const Held& h : t_held) {
        Node& from = reg.nodes[h.lock];
        if (from.name.empty()) from.name = safe_name(h.name);
        if (from.out.count(lock) != 0) continue;  // order already known
        std::vector<const void*> path;
        std::unordered_map<const void*, bool> visited;
        if (find_path(reg, lock, h.lock, path, visited)) {
          // Adding h.lock → lock would close a cycle: the opposite order
          // lock → … → h.lock is already on record.
          pending.kind = Violation::Kind::kOrderInversion;
          pending.held = h.lock;
          pending.acquiring = lock;
          pending.held_name = from.name;
          pending.acquiring_name = reg.nodes[lock].name;
          std::ostringstream os;
          os << "lock-debug: lock-order inversion — acquiring \""
             << pending.acquiring_name << "\" (" << lock
             << ") while holding \"" << pending.held_name << "\" ("
             << h.lock << ")\n  conflicting order already established: ";
          for (std::size_t i = 0; i < path.size(); ++i) {
            if (i > 0) os << " -> ";
            const auto nit = reg.nodes.find(path[i]);
            os << '"'
               << (nit != reg.nodes.end() ? nit->second.name : "mutex")
               << '"';
          }
          os << "\n  that order was first established at:\n";
          const Edge& first =
              reg.nodes.at(path[0]).out.at(path[1]);  // path.size() >= 2
          os << (first.stack.empty() ? "    <unknown>\n" : first.stack);
          os << "  current acquisition at:\n" << capture_stack();
          pending.report = os.str();
          violated = true;
          break;  // offending edge is not added; graph stays acyclic
        }
        from.out.emplace(lock, Edge{capture_stack()});
      }
    }
    if (violated) dispatch(reg, std::move(pending));
  }
  t_held.push_back(Held{lock, name, trylock, shared});
}

void note_release(const void* lock) noexcept {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->lock == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not held per our records (e.g. acquired before a reset()): ignore.
}

void note_destroy(const void* lock) noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.mu);
  reg.nodes.erase(lock);
  for (auto& [ptr, node] : reg.nodes) node.out.erase(lock);
}

void set_failure_handler(Handler handler) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.mu);
  reg.handler = std::move(handler);
}

std::size_t edge_count() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.mu);
  std::size_t n = 0;
  for (const auto& [ptr, node] : reg.nodes) n += node.out.size();
  return n;
}

std::size_t held_count() { return t_held.size(); }

void reset() {
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> guard(reg.mu);
    reg.nodes.clear();
    reg.handler = nullptr;
  }
  t_held.clear();
}

}  // namespace aimetro::common::lock_debug
