#include "common/log.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace aimetro {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
/// Serializes the fprintf so concurrent log lines never interleave.
common::Mutex g_mutex{"log"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {
void log_message(LogLevel level, const std::string& msg) {
  common::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace internal

}  // namespace aimetro
