// Minimal leveled logging. Off by default above WARN so benchmarks stay
// quiet; tests and examples can raise verbosity.
#pragma once

#include <sstream>
#include <string>

namespace aimetro {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_message(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace aimetro

#define AIM_LOG(level)                                            \
  if (static_cast<int>(::aimetro::LogLevel::level) <              \
      static_cast<int>(::aimetro::log_level())) {                 \
  } else                                                          \
    ::aimetro::internal::LogLine(::aimetro::LogLevel::level)
