// Runtime lock-order validator (the dynamic half of the lock discipline).
//
// Clang's -Wthread-safety proves that guarded state is touched only under
// its lock, but the *ordering* half of the discipline — world → commit →
// kv-shard in the engine, route → replica in the cost-model client, index
// order across kv shards — involves locks indexed at runtime (a replica
// picked by least-loaded routing, a shard picked by key hash), which static
// capability expressions cannot name. This validator enforces ordering at
// runtime instead, lockdep-style: every common::Mutex / common::SharedMutex
// acquisition is recorded on a per-thread stack, each (held, acquired) pair
// becomes an edge in a global lock-order graph, and the first acquisition
// that would close a cycle — i.e. the first time two locks are ever taken
// in both orders, whether or not the schedule actually deadlocked — is
// reported with both acquisition stacks and aborts.
//
// The registry below is always compiled (so tests can drive it directly
// with fake lock addresses), but the wrapper hooks in common/mutex.h call
// into it only when the build defines AIMETRO_LOCK_DEBUG (CMake option of
// the same name); otherwise the wrappers are zero-cost pass-throughs.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace aimetro::common::lock_debug {

/// A detected lock-discipline violation.
struct Violation {
  enum class Kind {
    /// Acquiring B while holding A after B → … → A was already observed.
    kOrderInversion,
    /// Re-acquiring a lock the thread already holds (UB on std::mutex).
    kRecursive,
  };
  Kind kind = Kind::kOrderInversion;
  const void* held = nullptr;       // a lock the thread already holds
  const void* acquiring = nullptr;  // the lock being acquired
  std::string held_name;
  std::string acquiring_name;
  /// Human-readable report: the conflicting edge chain, the stack recorded
  /// when the opposite order was first established, and the stack of the
  /// current acquisition.
  std::string report;
};

/// Record that the current thread acquired `lock`. `trylock` acquisitions
/// cannot block, so they are pushed onto the held stack (later blocking
/// acquisitions order against them) but add no incoming ordering edges
/// themselves. `shared` marks reader acquisitions of a SharedMutex;
/// ordering edges are tracked identically (reader/writer inversions
/// deadlock just as hard).
void note_acquire(const void* lock, const char* name, bool trylock = false,
                  bool shared = false);

/// Record that the current thread released `lock`. Lenient: releasing a
/// lock that is not on this thread's stack is ignored (it can happen after
/// reset() mid-test).
void note_release(const void* lock) noexcept;

/// Purge a destroyed lock from the graph so a new lock reusing the address
/// does not inherit its edges.
void note_destroy(const void* lock) noexcept;

/// Violation sink. The default handler prints the report to stderr and
/// calls std::abort(); tests install a capturing handler instead. Passing
/// nullptr restores the default. Returns nothing; the handler itself
/// decides whether to abort (the offending edge is NOT added to the graph,
/// so a non-aborting handler sees each inverted pair reported once per
/// offending acquisition).
using Handler = std::function<void(const Violation&)>;
void set_failure_handler(Handler handler);

/// Introspection for tests.
std::size_t edge_count();
/// Locks the *current thread* currently holds (per the recorded stack).
std::size_t held_count();

/// Clear the global graph, the failure handler override, and the calling
/// thread's held stack. Test isolation only.
void reset();

}  // namespace aimetro::common::lock_debug
