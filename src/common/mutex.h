// Annotated lock types: the only mutexes the codebase uses.
//
// These wrap std::mutex / std::shared_mutex with Clang Thread Safety
// capability annotations (common/thread_annotations.h), so every guarded
// member and every REQUIRES contract across the engine, kv store, world,
// task pool, and cost-model client is machine-checked by the
// -Wthread-safety CI job. With AIMETRO_LOCK_DEBUG defined (CMake option),
// every acquisition additionally feeds the runtime lock-order validator
// (common/lock_debug.h), which aborts with both stacks on the first
// ordering inversion; without it the wrappers compile to bare std types —
// same size, same code.
//
// Conventions:
//   - Guard state with MutexLock / ReaderLock / WriterLock, never raw
//     lock()/unlock() pairs.
//   - Condition waits use common::CondVar with an explicit while loop at
//     the call site (`while (!cond) cv.wait(mu);`) — predicate lambdas
//     cannot carry capability annotations, open-coded conditions can.
//   - Name locks that participate in a cross-object ordering
//     (Mutex route_mutex_{"llm.route"}) so validator reports read well.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

#if AIMETRO_LOCK_DEBUG
#include "common/lock_debug.h"
#endif

namespace aimetro::common {

namespace internal {
#if AIMETRO_LOCK_DEBUG
inline void hook_acquire(const void* lock, const char* name,
                         bool trylock = false, bool shared = false) {
  lock_debug::note_acquire(lock, name, trylock, shared);
}
inline void hook_release(const void* lock) { lock_debug::note_release(lock); }
inline void hook_destroy(const void* lock) { lock_debug::note_destroy(lock); }
#else
inline void hook_acquire(const void*, const char*, bool = false,
                         bool = false) {}
inline void hook_release(const void*) {}
inline void hook_destroy(const void*) {}
#endif
}  // namespace internal

/// Annotated std::mutex. The optional name labels lock-order validator
/// reports; it costs nothing when AIMETRO_LOCK_DEBUG is off.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if AIMETRO_LOCK_DEBUG
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { internal::hook_destroy(this); }
#else
  explicit Mutex(const char*) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    internal::hook_acquire(this, name());
  }
  bool try_lock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) internal::hook_acquire(this, name(), /*trylock=*/true);
    return ok;
  }
  void unlock() RELEASE() {
    internal::hook_release(this);
    mu_.unlock();
  }

  /// The wrapped mutex, for CondVar's adopt-and-wait only.
  std::mutex& native() { return mu_; }

 private:
  const char* name() const {
#if AIMETRO_LOCK_DEBUG
    return name_;
#else
    return nullptr;
#endif
  }

  std::mutex mu_;
#if AIMETRO_LOCK_DEBUG
  const char* name_ = nullptr;
#endif
};

/// Annotated std::shared_mutex (reader/writer). Reader acquisitions feed
/// the lock-order validator too: reader/writer inversions deadlock just as
/// hard as writer/writer ones.
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
#if AIMETRO_LOCK_DEBUG
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex() { internal::hook_destroy(this); }
#else
  explicit SharedMutex(const char*) {}
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    internal::hook_acquire(this, name());
  }
  bool try_lock() TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) internal::hook_acquire(this, name(), /*trylock=*/true);
    return ok;
  }
  void unlock() RELEASE() {
    internal::hook_release(this);
    mu_.unlock();
  }

  void lock_shared() ACQUIRE_SHARED() {
    mu_.lock_shared();
    internal::hook_acquire(this, name(), /*trylock=*/false, /*shared=*/true);
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    const bool ok = mu_.try_lock_shared();
    if (ok) {
      internal::hook_acquire(this, name(), /*trylock=*/true, /*shared=*/true);
    }
    return ok;
  }
  void unlock_shared() RELEASE_SHARED() {
    internal::hook_release(this);
    mu_.unlock_shared();
  }

 private:
  const char* name() const {
#if AIMETRO_LOCK_DEBUG
    return name_;
#else
    return nullptr;
#endif
  }

  std::shared_mutex mu_;
#if AIMETRO_LOCK_DEBUG
  const char* name_ = nullptr;
#endif
};

/// RAII exclusive lock on a Mutex, with deferred and try variants.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    held_ = true;
  }
  /// Deferred: construct unlocked, call lock() later.
  MutexLock(Mutex& mu, std::defer_lock_t) EXCLUDES(mu) : mu_(&mu) {}
  /// Try: check owns_lock() after construction.
  MutexLock(Mutex& mu, std::try_to_lock_t) TRY_ACQUIRE(true, mu) : mu_(&mu) {
    held_ = mu_->try_lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() ACQUIRE() {
    mu_->lock();
    held_ = true;
  }
  void unlock() RELEASE() {
    mu_->unlock();
    held_ = false;
  }
  bool owns_lock() const { return held_; }
  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  bool held_ = false;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
    held_ = true;
  }
  ReaderLock(SharedMutex& mu, std::defer_lock_t) EXCLUDES(mu) : mu_(&mu) {}
  ReaderLock(SharedMutex& mu, std::try_to_lock_t) TRY_ACQUIRE_SHARED(true, mu)
      : mu_(&mu) {
    held_ = mu_->try_lock_shared();
  }
  ~ReaderLock() RELEASE() {
    if (held_) mu_->unlock_shared();
  }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  void lock() ACQUIRE_SHARED() {
    mu_->lock_shared();
    held_ = true;
  }
  void unlock() RELEASE_SHARED() {
    mu_->unlock_shared();
    held_ = false;
  }
  bool owns_lock() const { return held_; }

 private:
  SharedMutex* mu_;
  bool held_ = false;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    held_ = true;
  }
  WriterLock(SharedMutex& mu, std::defer_lock_t) EXCLUDES(mu) : mu_(&mu) {}
  WriterLock(SharedMutex& mu, std::try_to_lock_t) TRY_ACQUIRE(true, mu)
      : mu_(&mu) {
    held_ = mu_->try_lock();
  }
  ~WriterLock() RELEASE() {
    if (held_) mu_->unlock();
  }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  void lock() ACQUIRE() {
    mu_->lock();
    held_ = true;
  }
  void unlock() RELEASE() {
    mu_->unlock();
    held_ = false;
  }
  bool owns_lock() const { return held_; }

 private:
  SharedMutex* mu_;
  bool held_ = false;
};

/// Condition variable for common::Mutex. wait() takes the Mutex itself —
/// not a predicate — so the REQUIRES contract is checkable and the
/// condition re-check lives in the caller, where the analysis can see the
/// lock being held:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);
class CondVar {
 public:
  /// Atomically release `mu`, sleep, re-acquire before returning. The
  /// caller must hold `mu` (checked). Spurious wakeups happen; always wait
  /// in a while loop.
  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held native mutex, wait, then hand ownership back
    // without unlocking: zero overhead over a bare std::condition_variable.
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aimetro::common
