// Thread-safe queues used by the real (threaded) runtime: a blocking
// priority queue for ready/ack cluster traffic (Algorithm 3 keeps both as
// priority queues ordered by step) and a plain blocking FIFO. Internal
// state is guarded by an annotated common::Mutex, so -Wthread-safety
// checks the discipline and AIMETRO_LOCK_DEBUG builds order-check every
// acquisition.
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aimetro {

/// Blocking min-priority queue. Smaller Priority values pop first; FIFO
/// within equal priority (stable via sequence numbers).
template <typename T, typename Priority = int>
class SyncPriorityQueue {
 public:
  void push(Priority priority, T value) {
    {
      common::MutexLock lock(mutex_);
      heap_.push(Entry{priority, seq_++, std::move(value)});
    }
    cv_.notify_one();
  }

  /// Blocks until an element is available or close() is called.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<T> pop() {
    common::MutexLock lock(mutex_);
    while (heap_.empty() && !closed_) cv_.wait(mutex_);
    if (heap_.empty()) return std::nullopt;
    T out = std::move(const_cast<Entry&>(heap_.top()).value);
    heap_.pop();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    common::MutexLock lock(mutex_);
    if (heap_.empty()) return std::nullopt;
    T out = std::move(const_cast<Entry&>(heap_.top()).value);
    heap_.pop();
    return out;
  }

  std::size_t size() const {
    common::MutexLock lock(mutex_);
    return heap_.size();
  }

  bool closed() const {
    common::MutexLock lock(mutex_);
    return closed_;
  }

  /// Wake all waiters; subsequent pops drain the queue then return nullopt.
  void close() {
    {
      common::MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  struct Entry {
    Priority priority;
    std::uint64_t seq;
    T value;
    bool operator>(const Entry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq > other.seq;
    }
  };

  mutable common::Mutex mutex_{"sync_priority_queue"};
  common::CondVar cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_
      GUARDED_BY(mutex_);
  std::uint64_t seq_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
};

/// Simple blocking FIFO queue.
template <typename T>
class SyncQueue {
 public:
  void push(T value) {
    {
      common::MutexLock lock(mutex_);
      queue_.push(std::move(value));
    }
    cv_.notify_one();
  }

  std::optional<T> pop() {
    common::MutexLock lock(mutex_);
    while (queue_.empty() && !closed_) cv_.wait(mutex_);
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop();
    return out;
  }

  std::size_t size() const {
    common::MutexLock lock(mutex_);
    return queue_.size();
  }

  void close() {
    {
      common::MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable common::Mutex mutex_{"sync_queue"};
  common::CondVar cv_;
  std::queue<T> queue_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace aimetro
