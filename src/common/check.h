// Lightweight precondition / invariant checking used across the library.
//
// AIM_CHECK is always on (benchmarks included): scheduling-correctness bugs
// must never be silently ignored, and the checks are cheap relative to the
// simulated work. AIM_DCHECK compiles out in NDEBUG builds and is meant for
// hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aimetro {

/// Error thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace internal
}  // namespace aimetro

#define AIM_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::aimetro::internal::check_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                                    \
  } while (false)

#define AIM_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream aim_check_os_;                                   \
      aim_check_os_ << msg;                                               \
      ::aimetro::internal::check_failed(#expr, __FILE__, __LINE__,        \
                                        aim_check_os_.str());             \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define AIM_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define AIM_DCHECK(expr) AIM_CHECK(expr)
#endif
