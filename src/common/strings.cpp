#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace aimetro {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(const std::string& s) {
  const char* kWhitespace = " \t\r\n";
  const std::size_t b = s.find_first_not_of(kWhitespace);
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(kWhitespace);
  return s.substr(b, e - b + 1);
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 1.0) return strformat("%.0f ms", seconds * 1e3);
  if (seconds < 60.0) return strformat("%.2f s", seconds);
  const auto total = static_cast<long long>(std::llround(seconds));
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  if (h > 0) return strformat("%lldh %02lldm %02llds", h, m, s);
  return strformat("%lldm %02llds", m, s);
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

}  // namespace aimetro
