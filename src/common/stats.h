// Streaming statistics used by the serving-engine metrics and the
// benchmark harnesses (means, percentiles, histograms, time-weighted
// averages such as "average number of outstanding LLM requests").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace aimetro {

/// Welford streaming mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);
  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const RunningStat& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers percentile queries (exact; sorts on demand).
class PercentileTracker {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  /// q in [0,1]; linear interpolation between closest ranks.
  double percentile(double q) const;
  double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// outstanding LLM requests over virtual time. This is the metric the paper
/// calls "achieved parallelism" (§4.2).
class TimeWeightedStat {
 public:
  /// Record that the signal changed to `value` at time `t`. Times must be
  /// non-decreasing.
  void set(SimTime t, double value);
  /// Average over [first_set_time, t_end]; requires at least one set().
  double average_until(SimTime t_end) const;
  double current() const { return value_; }
  SimTime first_time() const { return first_; }

 private:
  bool started_ = false;
  SimTime first_ = 0;
  SimTime last_ = 0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;  // integral of value dt, microsecond units
};

/// Fixed-bucket histogram over [lo, hi) with `bins` buckets plus overflow
/// buckets on both ends.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x, double weight = 1.0);
  double bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total() const { return total_; }
  /// Lower edge of bucket i.
  double bucket_lo(std::size_t i) const;
  std::string to_string(int width = 50) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double total_ = 0.0;
};

}  // namespace aimetro
