// Deterministic random number generation.
//
// All stochastic components (trace generator, tie-breaking, fake LLM) draw
// from Rng so that a (seed, parameters) pair fully determines a workload.
// xoshiro256** is small, fast, and has well-understood statistical quality.
#pragma once

#include <cstdint>
#include <vector>

namespace aimetro {

/// Deterministic xoshiro256** generator with convenience distributions.
/// Satisfies UniformRandomBitGenerator so it also plugs into <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal via Box-Muller (no state caching; deterministic ordering).
  double normal(double mean, double stddev);

  /// Log-normal with the given mean and sigma of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Poisson via inversion for small lambda, normal approximation for large.
  std::int64_t poisson(double lambda);

  /// Exponential with the given rate (>0).
  double exponential(double rate);

  /// Sample an index from non-negative weights (at least one positive).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (e.g., one per agent).
  Rng fork();

 private:
  std::uint64_t s_[4] = {};
};

/// SplitMix64, used for seeding and stateless hashing of small keys.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace aimetro
