#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aimetro {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors.
  std::uint64_t s = seed;
  for (auto& word : s_) {
    s = splitmix64(s);
    word = s;
  }
  // Avoid the all-zero state (cannot occur from splitmix, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AIM_CHECK_MSG(lo <= hi, "uniform_int: lo=" << lo << " hi=" << hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw both uniforms every call for deterministic stream shape.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::int64_t Rng::poisson(double lambda) {
  AIM_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double l = std::exp(-lambda);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double v = normal(lambda, std::sqrt(lambda));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(v)));
}

double Rng::exponential(double rate) {
  AIM_CHECK(rate > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  AIM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AIM_CHECK(w >= 0.0);
    total += w;
  }
  AIM_CHECK_MSG(total > 0.0, "weighted_index: all weights are zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace aimetro
