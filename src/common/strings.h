// Small string/formatting helpers (GCC 12 lacks full std::format support).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace aimetro {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Strip leading and trailing whitespace (spaces, tabs, CR, LF).
std::string trim(const std::string& s);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Human-friendly duration from seconds, e.g. "2h 13m 05s" or "340 ms".
std::string format_duration(double seconds);

/// Fixed-width table cell helpers used by the bench harnesses.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace aimetro
