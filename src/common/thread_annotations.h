// Clang Thread Safety Analysis annotation macros.
//
// The lock discipline the engine depends on — GUARDED_BY comments, the
// world → commit → kv-shard commit hierarchy, "route before replica" in the
// cost-model client — used to live in prose. These macros turn that prose
// into attributes Clang's -Wthread-safety checks at compile time: a
// function that touches guarded state without holding the right capability
// fails the build in the thread-safety CI job. Under any other compiler
// (or with AIMETRO_NO_THREAD_SAFETY_ANALYSIS defined) every macro expands
// to nothing, so the annotations are free everywhere else.
//
// The macro set and names follow the canonical mutex.h from the Clang
// documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
// Annotate with the macros, never with raw __attribute__ spellings, so the
// whole surface can be audited with a single grep.
#pragma once

#if defined(__clang__) && !defined(AIMETRO_NO_THREAD_SAFETY_ANALYSIS)
#define AIM_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define AIM_TSA_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define CAPABILITY(x) AIM_TSA_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock, ReaderLock, WriterLock).
#define SCOPED_CAPABILITY AIM_TSA_ATTRIBUTE(scoped_lockable)

/// Data members: reads require the capability held (shared suffices),
/// writes require it held exclusively.
#define GUARDED_BY(x) AIM_TSA_ATTRIBUTE(guarded_by(x))

/// Pointer members: the pointee (not the pointer) is protected by the
/// capability.
#define PT_GUARDED_BY(x) AIM_TSA_ATTRIBUTE(pt_guarded_by(x))

/// Static lock-ordering declarations, checked under -Wthread-safety-beta.
#define ACQUIRED_BEFORE(...) AIM_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) AIM_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function-call contracts: the caller must hold the capability
/// (exclusively / at least shared) and still holds it on return.
#define REQUIRES(...) AIM_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  AIM_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability itself.
#define ACQUIRE(...) AIM_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  AIM_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) AIM_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  AIM_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  AIM_TSA_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) AIM_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  AIM_TSA_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (non-reentrancy contracts).
#define EXCLUDES(...) AIM_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so).
#define ASSERT_CAPABILITY(x) AIM_TSA_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  AIM_TSA_ATTRIBUTE(assert_shared_capability(x))

/// The function returns a reference to the given capability; lets accessor
/// calls like world.mutex() unify with the member they expose.
#define RETURN_CAPABILITY(x) AIM_TSA_ATTRIBUTE(lock_returned(x))

/// Escape hatch for code whose locking is correct but not expressible
/// (e.g. acquiring every element of a dynamic lock array in index order).
/// Every use must carry a comment explaining why the analysis cannot see
/// the discipline.
#define NO_THREAD_SAFETY_ANALYSIS AIM_TSA_ATTRIBUTE(no_thread_safety_analysis)
