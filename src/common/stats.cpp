#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace aimetro {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double PercentileTracker::percentile(double q) const {
  AIM_CHECK(!samples_.empty());
  AIM_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void TimeWeightedStat::set(SimTime t, double value) {
  if (!started_) {
    started_ = true;
    first_ = last_ = t;
    value_ = value;
    return;
  }
  AIM_CHECK_MSG(t >= last_, "TimeWeightedStat: time went backwards");
  weighted_sum_ += value_ * static_cast<double>(t - last_);
  last_ = t;
  value_ = value;
}

double TimeWeightedStat::average_until(SimTime t_end) const {
  AIM_CHECK(started_);
  AIM_CHECK(t_end >= last_);
  const double total = weighted_sum_ + value_ * static_cast<double>(t_end - last_);
  const double span = static_cast<double>(t_end - first_);
  return span > 0.0 ? total / span : value_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  AIM_CHECK(hi > lo);
  AIM_CHECK(bins > 0);
}

void Histogram::add(double x, double weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  counts_[std::min(idx, counts_.size() - 1)] += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::to_string(int width) const {
  double peak = 1e-12;
  for (double c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(counts_[i] / peak * width);
    os << bucket_lo(i) << "\t" << counts_[i] << "\t" << std::string(bar, '#')
       << "\n";
  }
  return os.str();
}

}  // namespace aimetro
