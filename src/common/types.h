// Fundamental value types shared by every module.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace aimetro {

/// Identifier of an agent within a simulation. Dense, starting at 0.
using AgentId = std::int32_t;

/// Simulation step index. One step corresponds to a fixed amount of
/// simulated wall time (10 simulated seconds in GenAgent / SmallVille).
using Step = std::int32_t;

/// Virtual time in the discrete-event executive, in microseconds.
/// Integer microseconds keep event ordering bit-exact across platforms.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Convert seconds (double) to SimTime microseconds, rounding to nearest.
constexpr SimTime sim_time_from_seconds(double seconds) {
  return static_cast<SimTime>(seconds * 1e6 + (seconds >= 0 ? 0.5 : -0.5));
}

/// Convert SimTime microseconds to seconds.
constexpr double sim_time_to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-6;
}

/// A position in the simulated world. Grid worlds use integral coordinates;
/// the dependency rules operate on real-valued distances so the same code
/// serves continuous spaces.
struct Pos {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Pos&, const Pos&) = default;
};

inline double euclidean(const Pos& a, const Pos& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline double manhattan(const Pos& a, const Pos& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double chebyshev(const Pos& a, const Pos& b) {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

/// Integer tile coordinate used by the grid world.
struct Tile {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const Tile&, const Tile&) = default;
  friend auto operator<=>(const Tile&, const Tile&) = default;

  Pos center() const {
    return Pos{static_cast<double>(x), static_cast<double>(y)};
  }
};

struct TileHash {
  std::size_t operator()(const Tile& t) const noexcept {
    // 2D -> 1D mix; maps are at most a few thousand tiles wide.
    auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.x));
    auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.y));
    std::uint64_t v = (ux << 32) | uy;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};

}  // namespace aimetro
