#include "kv/store.h"

#include <algorithm>
#include <charconv>

#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace aimetro::kv {

namespace {

std::int64_t parse_int(const std::string& s) {
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  AIM_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                "value is not an integer: '" << s << "'");
  return out;
}

std::uint64_t hash_string(const std::string& s) {
  // FNV-1a 64.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Store::Store(std::size_t shard_count) {
  AIM_CHECK(shard_count > 0);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t Store::shard_index(const std::string& key) const {
  return hash_string(key) % shards_.size();
}

Store::Shard& Store::shard_for(const std::string& key) {
  return *shards_[hash_string(key) % shards_.size()];
}

const Store::Shard& Store::shard_for(const std::string& key) const {
  return *shards_[hash_string(key) % shards_.size()];
}

Store::Entry* Store::find_unlocked(Shard& shard, const std::string& key) {
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : &it->second;
}

Store::Entry& Store::upsert_unlocked(Shard& shard, const std::string& key,
                                     Type type) {
  Entry& e = shard.map[key];
  if (e.value.type == Type::kNone) e.value.type = type;
  AIM_CHECK_MSG(e.value.type == type,
                "WRONGTYPE operation on key '" << key << "'");
  ++e.version;
  return e;
}

// ---- Strings ----

void Store::set_unlocked(Shard& shard, const std::string& key,
                         std::string value) {
  Entry& e = shard.map[key];
  // SET overwrites regardless of previous type, like Redis.
  ++e.version;
  e.value = Value{};
  e.value.type = Type::kString;
  e.value.str = std::move(value);
}

void Store::set(const std::string& key, std::string value) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  set_unlocked(shard, key, std::move(value));
}

std::optional<std::string> Store::get(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kString) {
    return std::nullopt;
  }
  return it->second.value.str;
}

std::int64_t Store::incr_by_unlocked(Shard& shard, const std::string& key,
                                     std::int64_t delta) {
  Entry& e = upsert_unlocked(shard, key, Type::kString);
  const std::int64_t cur = e.value.str.empty() ? 0 : parse_int(e.value.str);
  const std::int64_t next = cur + delta;
  e.value.str = std::to_string(next);
  return next;
}

std::int64_t Store::incr_by(const std::string& key, std::int64_t delta) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return incr_by_unlocked(shard, key, delta);
}

// ---- Hashes ----

bool Store::hset_unlocked(Shard& shard, const std::string& key,
                          const std::string& field, std::string value) {
  Entry& e = upsert_unlocked(shard, key, Type::kHash);
  auto [it, inserted] = e.value.hash.insert_or_assign(field, std::move(value));
  (void)it;
  return inserted;
}

bool Store::hset(const std::string& key, const std::string& field,
                 std::string value) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return hset_unlocked(shard, key, field, std::move(value));
}

std::optional<std::string> Store::hget(const std::string& key,
                                       const std::string& field) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kHash) {
    return std::nullopt;
  }
  auto fit = it->second.value.hash.find(field);
  if (fit == it->second.value.hash.end()) return std::nullopt;
  return fit->second;
}

bool Store::hdel_unlocked(Shard& shard, const std::string& key,
                          const std::string& field) {
  Entry* e = find_unlocked(shard, key);
  if (!e || e->value.type != Type::kHash) return false;
  const bool erased = e->value.hash.erase(field) > 0;
  if (erased) ++e->version;
  return erased;
}

bool Store::hdel(const std::string& key, const std::string& field) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return hdel_unlocked(shard, key, field);
}

std::vector<std::pair<std::string, std::string>> Store::hgetall(
    const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  std::vector<std::pair<std::string, std::string>> out;
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kHash) return out;
  out.assign(it->second.value.hash.begin(), it->second.value.hash.end());
  return out;
}

std::size_t Store::hlen(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kHash) return 0;
  return it->second.value.hash.size();
}

// ---- Sorted sets ----

bool Store::zadd_unlocked(Shard& shard, const std::string& key,
                          const std::string& member, double score) {
  Entry& e = upsert_unlocked(shard, key, Type::kZSet);
  auto it = e.value.zscores.find(member);
  if (it != e.value.zscores.end()) {
    e.value.zordered.erase({it->second, member});
    it->second = score;
    e.value.zordered.insert({score, member});
    return false;
  }
  e.value.zscores.emplace(member, score);
  e.value.zordered.insert({score, member});
  return true;
}

bool Store::zadd(const std::string& key, const std::string& member,
                 double score) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return zadd_unlocked(shard, key, member, score);
}

bool Store::zrem_unlocked(Shard& shard, const std::string& key,
                          const std::string& member) {
  Entry* e = find_unlocked(shard, key);
  if (!e || e->value.type != Type::kZSet) return false;
  auto it = e->value.zscores.find(member);
  if (it == e->value.zscores.end()) return false;
  e->value.zordered.erase({it->second, member});
  e->value.zscores.erase(it);
  ++e->version;
  return true;
}

bool Store::zrem(const std::string& key, const std::string& member) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return zrem_unlocked(shard, key, member);
}

std::optional<double> Store::zscore(const std::string& key,
                                    const std::string& member) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kZSet) {
    return std::nullopt;
  }
  auto mit = it->second.value.zscores.find(member);
  if (mit == it->second.value.zscores.end()) return std::nullopt;
  return mit->second;
}

std::vector<std::pair<std::string, double>> Store::zrange_by_score(
    const std::string& key, double min_score, double max_score) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  std::vector<std::pair<std::string, double>> out;
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kZSet) return out;
  const auto& z = it->second.value.zordered;
  for (auto zit = z.lower_bound({min_score, std::string{}});
       zit != z.end() && zit->first <= max_score; ++zit) {
    out.emplace_back(zit->second, zit->first);
  }
  return out;
}

std::optional<std::pair<std::string, double>> Store::zpop_min(
    const std::string& key) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  Entry* e = find_unlocked(shard, key);
  if (!e || e->value.type != Type::kZSet || e->value.zordered.empty()) {
    return std::nullopt;
  }
  auto first = *e->value.zordered.begin();
  e->value.zordered.erase(e->value.zordered.begin());
  e->value.zscores.erase(first.second);
  ++e->version;
  return std::make_pair(first.second, first.first);
}

std::size_t Store::zcard(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kZSet) return 0;
  return it->second.value.zscores.size();
}

// ---- Lists ----

void Store::rpush_unlocked(Shard& shard, const std::string& key,
                           std::string value) {
  Entry& e = upsert_unlocked(shard, key, Type::kList);
  e.value.list.push_back(std::move(value));
}

void Store::rpush(const std::string& key, std::string value) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  rpush_unlocked(shard, key, std::move(value));
}

std::optional<std::string> Store::lpop_unlocked(Shard& shard,
                                                const std::string& key) {
  Entry* e = find_unlocked(shard, key);
  if (!e || e->value.type != Type::kList || e->value.list.empty()) {
    return std::nullopt;
  }
  std::string out = std::move(e->value.list.front());
  e->value.list.erase(e->value.list.begin());
  ++e->version;
  return out;
}

std::optional<std::string> Store::lpop(const std::string& key) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return lpop_unlocked(shard, key);
}

std::vector<std::string> Store::lrange(const std::string& key,
                                       std::int64_t start,
                                       std::int64_t stop) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  std::vector<std::string> out;
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kList) return out;
  const auto& list = it->second.value.list;
  const auto n = static_cast<std::int64_t>(list.size());
  if (start < 0) start = std::max<std::int64_t>(0, n + start);
  if (stop < 0) stop = n + stop;
  stop = std::min(stop, n - 1);
  for (std::int64_t i = start; i <= stop; ++i) {
    out.push_back(list[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::size_t Store::llen(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value.type != Type::kList) return 0;
  return it->second.value.list.size();
}

// ---- Keyspace ----

bool Store::del_unlocked(Shard& shard, const std::string& key) {
  return shard.map.erase(key) > 0;
}

bool Store::del(const std::string& key) {
  Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return del_unlocked(shard, key);
}

bool Store::exists(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  return shard.map.count(key) > 0;
}

Type Store::type(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? Type::kNone : it->second.value.type;
}

std::uint64_t Store::version(const std::string& key) const {
  const Shard& shard = shard_for(key);
  common::MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? 0 : it->second.version;
}

std::size_t Store::key_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mutex);
    n += shard->map.size();
  }
  return n;
}

std::vector<std::string> Store::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mutex);
    for (const auto& [key, entry] : shard->map) {
      (void)entry;
      if (key.rfind(prefix, 0) == 0) out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Store::clear() {
  for (auto& shard : shards_) {
    common::MutexLock lock(shard->mutex);
    shard->map.clear();
  }
}

std::uint64_t Store::fingerprint() const {
  // XOR of per-key digests: order-independent, so shard iteration order does
  // not matter. Versions are intentionally excluded (content equality only).
  std::uint64_t fp = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mutex);
    for (const auto& [key, entry] : shard->map) {
      std::uint64_t h = hash_string(key) * 0x9e3779b97f4a7c15ULL;
      h ^= splitmix64(static_cast<std::uint64_t>(entry.value.type));
      switch (entry.value.type) {
        case Type::kString:
          h ^= hash_string(entry.value.str);
          break;
        case Type::kHash:
          for (const auto& [f, v] : entry.value.hash) {
            h ^= splitmix64(hash_string(f) ^ hash_string(v));
          }
          break;
        case Type::kZSet:
          for (const auto& [m, s] : entry.value.zscores) {
            std::uint64_t bits = 0;
            static_assert(sizeof(bits) == sizeof(s));
            __builtin_memcpy(&bits, &s, sizeof(bits));
            h ^= splitmix64(hash_string(m) ^ bits);
          }
          break;
        case Type::kList: {
          std::uint64_t lh = 0;
          for (const auto& v : entry.value.list) {
            lh = splitmix64(lh ^ hash_string(v));
          }
          h ^= lh;
          break;
        }
        case Type::kNone:
          break;
      }
      fp ^= splitmix64(h);
    }
  }
  return fp;
}

Transaction Store::transaction() { return Transaction(*this); }

// ---- Transaction ----

void Transaction::watch(const std::string& key) {
  watches_.emplace_back(key, store_.version(key));
}

void Transaction::set(std::string key, std::string value) {
  commands_.push_back(Command{Command::Op::kSet, std::move(key), {},
                              std::move(value), 0, 0.0});
}

void Transaction::incr_by(std::string key, std::int64_t delta) {
  commands_.push_back(
      Command{Command::Op::kIncrBy, std::move(key), {}, {}, delta, 0.0});
}

void Transaction::hset(std::string key, std::string field, std::string value) {
  commands_.push_back(Command{Command::Op::kHset, std::move(key),
                              std::move(field), std::move(value), 0, 0.0});
}

void Transaction::hdel(std::string key, std::string field) {
  commands_.push_back(Command{Command::Op::kHdel, std::move(key),
                              std::move(field), {}, 0, 0.0});
}

void Transaction::zadd(std::string key, std::string member, double score) {
  commands_.push_back(Command{Command::Op::kZadd, std::move(key),
                              std::move(member), {}, 0, score});
}

void Transaction::zrem(std::string key, std::string member) {
  commands_.push_back(Command{Command::Op::kZrem, std::move(key),
                              std::move(member), {}, 0, 0.0});
}

void Transaction::rpush(std::string key, std::string value) {
  commands_.push_back(Command{Command::Op::kRpush, std::move(key), {},
                              std::move(value), 0, 0.0});
}

void Transaction::del(std::string key) {
  commands_.push_back(
      Command{Command::Op::kDel, std::move(key), {}, {}, 0, 0.0});
}

void Transaction::apply(const Command& cmd) {
  Store::Shard& shard = store_.shard_for(cmd.key);
  switch (cmd.op) {
    case Command::Op::kSet:
      store_.set_unlocked(shard, cmd.key, cmd.value);
      break;
    case Command::Op::kIncrBy:
      store_.incr_by_unlocked(shard, cmd.key, cmd.delta);
      break;
    case Command::Op::kHset:
      store_.hset_unlocked(shard, cmd.key, cmd.field, cmd.value);
      break;
    case Command::Op::kHdel:
      store_.hdel_unlocked(shard, cmd.key, cmd.field);
      break;
    case Command::Op::kZadd:
      store_.zadd_unlocked(shard, cmd.key, cmd.field, cmd.score);
      break;
    case Command::Op::kZrem:
      store_.zrem_unlocked(shard, cmd.key, cmd.field);
      break;
    case Command::Op::kRpush:
      store_.rpush_unlocked(shard, cmd.key, cmd.value);
      break;
    case Command::Op::kDel:
      store_.del_unlocked(shard, cmd.key);
      break;
  }
}

TxnResult Transaction::exec() {
  // Lock only the shards the watched/queued keys hash to, in index order
  // (consistent ascending order -> deadlock-free; the lock-order validator
  // sees a subsequence of the same chain on every commit). Transactions
  // touching disjoint shard subsets commit concurrently. The guard unlocks
  // in reverse on scope exit so a throwing command (e.g. a WRONGTYPE
  // check) cannot leak the store locked.
  std::vector<std::size_t> touched;
  touched.reserve(watches_.size() + commands_.size());
  for (const auto& [key, version] : watches_) {
    touched.push_back(store_.shard_index(key));
  }
  for (const Command& cmd : commands_) {
    touched.push_back(store_.shard_index(cmd.key));
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  struct TouchedShards {
    std::vector<std::unique_ptr<Store::Shard>>& shards;
    const std::vector<std::size_t>& indices;
    TouchedShards(std::vector<std::unique_ptr<Store::Shard>>& s,
                  const std::vector<std::size_t>& idx)
        : shards(s), indices(idx) {
      for (std::size_t i : indices) shards[i]->mutex.lock();
    }
    ~TouchedShards() {
      for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
        shards[*it]->mutex.unlock();
      }
    }
  } locked(store_.shards_, touched);
  // Validate watched versions under the touched-shard locks.
  for (const auto& [key, version] : watches_) {
    auto& shard = store_.shard_for(key);
    auto it = shard.map.find(key);
    const std::uint64_t current =
        it == shard.map.end() ? 0 : it->second.version;
    if (current != version) {
      watches_.clear();
      commands_.clear();
      return TxnResult::kConflict;
    }
  }
  for (const Command& cmd : commands_) apply(cmd);
  watches_.clear();
  commands_.clear();
  return TxnResult::kCommitted;
}

}  // namespace aimetro::kv
