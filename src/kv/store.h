// In-memory transactional key-value store.
//
// The paper's runtime keeps all shared state — the spatiotemporal dependency
// graph, simulation states, and instrumentation — in Redis so that
// inter-process synchronization is handled "through an in-memory database"
// (§3.6). This module is that substrate: a thread-safe store with the Redis
// data types the engine uses (strings, hashes, sorted sets, lists) and
// WATCH/MULTI/EXEC optimistic transactions, so the threaded runtime mirrors
// the paper's architecture without an external server.
//
// Concurrency model: keys hash to shards, each guarded by its own mutex.
// Every mutation bumps a per-key version; transactions validate watched
// versions under all-shard locks (acquired in index order, so no deadlock)
// and apply their queued commands atomically.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aimetro::kv {

enum class Type { kNone, kString, kHash, kZSet, kList };

/// Result of Transaction::exec().
enum class TxnResult { kCommitted, kConflict };

class Transaction;

class Store {
 public:
  explicit Store(std::size_t shard_count = 16);

  // ---- Strings ----
  void set(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  /// Atomically add `delta` to an integer-valued key (missing key counts as
  /// 0). Throws CheckError if the value is not an integer.
  std::int64_t incr_by(const std::string& key, std::int64_t delta);

  // ---- Hashes ----
  /// Returns true if the field is new.
  bool hset(const std::string& key, const std::string& field,
            std::string value);
  std::optional<std::string> hget(const std::string& key,
                                  const std::string& field) const;
  bool hdel(const std::string& key, const std::string& field);
  /// Sorted by field for deterministic iteration.
  std::vector<std::pair<std::string, std::string>> hgetall(
      const std::string& key) const;
  std::size_t hlen(const std::string& key) const;

  // ---- Sorted sets ----
  /// Returns true if the member is new.
  bool zadd(const std::string& key, const std::string& member, double score);
  bool zrem(const std::string& key, const std::string& member);
  std::optional<double> zscore(const std::string& key,
                               const std::string& member) const;
  /// Members with score in [min_score, max_score], ordered by (score, member).
  std::vector<std::pair<std::string, double>> zrange_by_score(
      const std::string& key, double min_score, double max_score) const;
  /// Pop the (score, member)-smallest entry.
  std::optional<std::pair<std::string, double>> zpop_min(
      const std::string& key);
  std::size_t zcard(const std::string& key) const;

  // ---- Lists ----
  void rpush(const std::string& key, std::string value);
  std::optional<std::string> lpop(const std::string& key);
  /// Elements in [start, stop] with negative indices counting from the end,
  /// like Redis LRANGE.
  std::vector<std::string> lrange(const std::string& key, std::int64_t start,
                                  std::int64_t stop) const;
  std::size_t llen(const std::string& key) const;

  // ---- Keyspace ----
  bool del(const std::string& key);
  bool exists(const std::string& key) const;
  Type type(const std::string& key) const;
  /// Monotonic per-key version; 0 if the key was never written.
  std::uint64_t version(const std::string& key) const;
  std::size_t key_count() const;
  /// All keys with the given prefix, sorted (snapshot; O(n) scan).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;
  void clear();

  /// Order-independent 64-bit digest of the full store contents. Two stores
  /// hold identical data iff (with overwhelming probability) fingerprints
  /// match. Used by determinism tests.
  std::uint64_t fingerprint() const;

  Transaction transaction();

 private:
  friend class Transaction;

  struct Value {
    Type type = Type::kNone;
    std::string str;
    std::map<std::string, std::string> hash;
    std::map<std::string, double> zscores;                  // member -> score
    std::set<std::pair<double, std::string>> zordered;       // (score, member)
    std::vector<std::string> list;
  };

  struct Entry {
    Value value;
    std::uint64_t version = 0;
  };

  struct Shard {
    mutable common::Mutex mutex{"kv.shard"};
    std::unordered_map<std::string, Entry> map GUARDED_BY(mutex);
  };

  std::size_t shard_index(const std::string& key) const;
  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;

  // Primitives shared by the public API and transaction commit. Each takes
  // the shard its key hashes to and requires that shard's lock to be held —
  // the capability travels with the parameter, so -Wthread-safety checks
  // callers whichever path they lock through (single-shard public API or
  // the transaction's all-shard commit).
  Entry* find_unlocked(Shard& shard, const std::string& key)
      REQUIRES(shard.mutex);
  Entry& upsert_unlocked(Shard& shard, const std::string& key, Type type)
      REQUIRES(shard.mutex);
  void set_unlocked(Shard& shard, const std::string& key, std::string value)
      REQUIRES(shard.mutex);
  std::int64_t incr_by_unlocked(Shard& shard, const std::string& key,
                                std::int64_t delta) REQUIRES(shard.mutex);
  bool hset_unlocked(Shard& shard, const std::string& key,
                     const std::string& field, std::string value)
      REQUIRES(shard.mutex);
  bool hdel_unlocked(Shard& shard, const std::string& key,
                     const std::string& field) REQUIRES(shard.mutex);
  bool zadd_unlocked(Shard& shard, const std::string& key,
                     const std::string& member, double score)
      REQUIRES(shard.mutex);
  bool zrem_unlocked(Shard& shard, const std::string& key,
                     const std::string& member) REQUIRES(shard.mutex);
  void rpush_unlocked(Shard& shard, const std::string& key, std::string value)
      REQUIRES(shard.mutex);
  std::optional<std::string> lpop_unlocked(Shard& shard,
                                           const std::string& key)
      REQUIRES(shard.mutex);
  bool del_unlocked(Shard& shard, const std::string& key)
      REQUIRES(shard.mutex);

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Optimistic transaction: WATCH keys, queue commands, EXEC atomically.
/// EXEC fails (kConflict) iff any watched key's version changed since
/// watch() read it. Commands are queued as plain data (no per-command
/// allocation beyond the strings) and applied through Store's unlocked
/// primitives with every shard locked. Like Redis MULTI, queued commands do
/// not observe each other's effects until commit.
class Transaction {
 public:
  explicit Transaction(Store& store) : store_(store) {}

  /// Snapshot the current version of `key`; exec() validates it.
  void watch(const std::string& key);

  // Queued mutations (subset mirroring Store's API).
  void set(std::string key, std::string value);
  void incr_by(std::string key, std::int64_t delta);
  void hset(std::string key, std::string field, std::string value);
  void hdel(std::string key, std::string field);
  void zadd(std::string key, std::string member, double score);
  void zrem(std::string key, std::string member);
  void rpush(std::string key, std::string value);
  void del(std::string key);

  /// Validate watches and apply queued commands atomically. After exec()
  /// the transaction is reset (watches and queue cleared). Locks only the
  /// shards the watched/queued keys hash to, in index order — commits
  /// touching disjoint shard subsets run concurrently (the sharded engine
  /// relies on this: per-strip agent rows hash apart, so strip-local kv
  /// mirrors rarely contend). The dynamic acquisition pattern is
  /// inexpressible to thread-safety analysis, hence the opt-out;
  /// AIMETRO_LOCK_DEBUG builds still order-check each acquisition at
  /// runtime.
  TxnResult exec() NO_THREAD_SAFETY_ANALYSIS;

  std::size_t queued() const { return commands_.size(); }

 private:
  struct Command {
    enum class Op : std::uint8_t {
      kSet,
      kIncrBy,
      kHset,
      kHdel,
      kZadd,
      kZrem,
      kRpush,
      kDel,
    };
    Op op;
    std::string key;
    std::string field;  // hset/hdel field; zadd/zrem member
    std::string value;  // set/hset/rpush payload
    std::int64_t delta = 0;
    double score = 0.0;
  };

  /// Dispatch one queued command to the matching unlocked primitive. Only
  /// called from exec() with every shard locked (inexpressible statically).
  void apply(const Command& cmd) NO_THREAD_SAFETY_ANALYSIS;

  Store& store_;
  std::vector<std::pair<std::string, std::uint64_t>> watches_;
  std::vector<Command> commands_;
};

}  // namespace aimetro::kv
