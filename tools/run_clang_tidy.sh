#!/usr/bin/env bash
# Run clang-tidy (configuration: .clang-tidy at the repo root) over every
# translation unit in src/, using the compilation database of the given
# build directory.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# The build directory must have been configured with CMake (the project
# exports compile_commands.json unconditionally). Exits non-zero if any
# WarningsAsErrors category fires.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

cd "$repo_root"
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "clang-tidy over ${#sources[@]} files (database: $build_dir)"

# run-clang-tidy parallelizes across TUs when available.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$build_dir" -quiet "${sources[@]}"
else
  clang-tidy -p "$build_dir" --quiet "${sources[@]}"
fi
