// aimetro_run: list, describe, and run scenarios.
//
//   aimetro_run --list
//   aimetro_run --describe <name>
//   aimetro_run <name | spec-file> [--backend=des|engine] [key=value ...]
//
// A positional argument names a registry scenario or a spec file on disk.
// Every spec key can be overridden on the command line, either bare
// ("agents=50") or flag-style ("--agents=50"); see src/scenario/spec.h for
// the full key list.
#include <sys/stat.h>

#include <cstdio>
#include <string>

#include "common/check.h"
#include "scenario/driver.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

using namespace aimetro;

namespace {

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage:\n"
      "  aimetro_run --list                          list built-in "
      "scenarios\n"
      "  aimetro_run --describe <name>               print a scenario's "
      "spec text\n"
      "  aimetro_run <name|spec-file> [--skip-serial] [key=value...]\n"
      "                                              run a scenario\n"
      "\n"
      "--skip-serial omits the serial/lock-step baseline run (halves the\n"
      "cost when only the metropolis numbers matter).\n"
      "\n"
      "overrides: any spec key, bare or flag-style — e.g. agents=50,\n"
      "--backend=engine, --seed=7, --window_begin=4320. Run --describe on\n"
      "a scenario to see every key. With backend=engine, clock=virtual\n"
      "prices LLM calls on the spec's model/GPU cost model and reports\n"
      "virtual seconds comparable to the des backend (time_scale sets the\n"
      "wall-time compression).\n");
  return code;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

int list_scenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& entry : scenario::registry_entries()) {
    std::printf("  %-18s %s\n", entry.name.c_str(), entry.summary.c_str());
  }
  std::printf(
      "\nscaling_ville<N> accepts any N in [1, 64] (N segments, 25*N "
      "agents).\n");
  return 0;
}

/// Strip leading dashes so "--agents=50" and "agents=50" both work.
std::string strip_dashes(const std::string& arg) {
  std::size_t i = 0;
  while (i < arg.size() && arg[i] == '-') ++i;
  return arg.substr(i);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(1);
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") return usage(0);
  if (first == "--list") return list_scenarios();

  std::string error;
  if (first == "--describe") {
    if (argc < 3) return usage(1);
    const auto spec = scenario::find_scenario(argv[2], &error);
    if (!spec) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s", spec->to_text().c_str());
    return 0;
  }

  // Resolve the scenario: registry name first, then spec file.
  scenario::ScenarioSpec spec;
  if (auto found = scenario::find_scenario(first, &error)) {
    spec = *found;
  } else if (file_exists(first)) {
    auto parsed = scenario::parse_spec_file(first);
    if (!parsed) {
      std::fprintf(stderr, "error: %s: %s\n", first.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    spec = *parsed.spec;
  } else {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // Apply command-line overrides.
  bool serial_baseline = true;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--skip-serial") {
      serial_baseline = false;
      continue;
    }
    const std::string assignment = strip_dashes(argv[i]);
    if (!scenario::apply_override(&spec, assignment, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  const std::string invalid = scenario::validate_spec(spec);
  if (!invalid.empty()) {
    std::fprintf(stderr, "error: %s\n", invalid.c_str());
    return 1;
  }

  std::printf("running '%s' on the %s backend...\n", spec.name.c_str(),
              scenario::backend_name(spec.backend));
  try {
    const scenario::ScenarioDriver driver(std::move(spec));
    const scenario::ScenarioReport report = driver.run(serial_baseline);
    std::printf("%s", report.summary().c_str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
