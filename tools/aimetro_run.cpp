// aimetro_run: list, describe, validate, and run scenarios.
//
//   aimetro_run --list
//   aimetro_run --list-md
//   aimetro_run --describe <name>
//   aimetro_run --validate <name | spec-file> ...
//   aimetro_run <name | spec-file> [--backend=des|engine] [key=value ...]
//
// A positional argument names a registry scenario or a spec file on disk.
// Every spec key can be overridden on the command line, either bare
// ("agents=50") or flag-style ("--agents=50"); docs/SCENARIO_SPEC.md is
// the full key reference.
#include <sys/stat.h>

#include <cstdio>
#include <string>

#include "common/check.h"
#include "scenario/driver.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

using namespace aimetro;

namespace {

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage:\n"
      "  aimetro_run --list                          list built-in "
      "scenarios\n"
      "  aimetro_run --list-md                       same, as the README's "
      "markdown table\n"
      "  aimetro_run --describe <name>               print a scenario's "
      "spec text\n"
      "  aimetro_run --validate <name|spec-file>...  parse + validate "
      "without running\n"
      "  aimetro_run <name|spec-file> [--skip-serial] [key=value...]\n"
      "                                              run a scenario\n"
      "\n"
      "--skip-serial omits the serial/lock-step baseline run (halves the\n"
      "cost when only the metropolis numbers matter).\n"
      "\n"
      "overrides: any spec key, bare or flag-style — e.g. agents=50,\n"
      "--backend=engine, --seed=7, --days=7, --window_begin=4320. See\n"
      "docs/SCENARIO_SPEC.md for the full key reference, or run\n"
      "--describe on a scenario to see every key. With backend=engine,\n"
      "clock=virtual prices LLM calls on the spec's model/GPU cost model\n"
      "and reports virtual seconds comparable to the des backend\n"
      "(time_scale sets the wall-time compression).\n");
  return code;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

int list_scenarios() {
  std::printf("built-in scenarios:\n");
  for (const auto& entry : scenario::registry_entries()) {
    std::printf("  %-18s %s\n", entry.name.c_str(), entry.summary.c_str());
  }
  std::printf(
      "\nscaling_ville<N> accepts any N in [1, 64] (N segments, 25*N "
      "agents);\nmixed_ville<N> any N in [4, 400] (N agents from the "
      "default population mix).\n");
  return 0;
}

/// The README's scenario table, regenerated from the registry
/// (`aimetro_run --list-md`); CI fails if the README copy goes stale.
int list_scenarios_markdown() {
  std::printf("| name | what it stresses |\n| --- | --- |\n");
  for (const auto& entry : scenario::registry_entries()) {
    std::printf("| `%s` | %s |\n", entry.name.c_str(),
                entry.summary.c_str());
  }
  return 0;
}

/// Resolve a registry name or spec file and validate it; prints one line
/// per argument. Returns false on any parse or validation error.
bool validate_one(const std::string& arg) {
  std::string error;
  scenario::ScenarioSpec spec;
  if (auto found = scenario::find_scenario(arg, &error)) {
    spec = *found;
  } else if (file_exists(arg)) {
    auto parsed = scenario::parse_spec_file(arg);
    if (!parsed) {
      std::fprintf(stderr, "FAIL  %s: %s\n", arg.c_str(),
                   parsed.error.c_str());
      return false;
    }
    spec = *parsed.spec;
  } else {
    std::fprintf(stderr, "FAIL  %s: %s\n", arg.c_str(), error.c_str());
    return false;
  }
  const std::string invalid = scenario::validate_spec(spec);
  if (!invalid.empty()) {
    std::fprintf(stderr, "FAIL  %s: %s\n", arg.c_str(), invalid.c_str());
    return false;
  }
  std::printf("OK    %s (scenario '%s', %s backend)\n", arg.c_str(),
              spec.name.c_str(), scenario::backend_name(spec.backend));
  return true;
}

/// Strip leading dashes so "--agents=50" and "agents=50" both work.
std::string strip_dashes(const std::string& arg) {
  std::size_t i = 0;
  while (i < arg.size() && arg[i] == '-') ++i;
  return arg.substr(i);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(1);
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") return usage(0);
  if (first == "--list") return list_scenarios();
  if (first == "--list-md") return list_scenarios_markdown();
  if (first == "--validate") {
    if (argc < 3) return usage(1);
    bool ok = true;
    for (int i = 2; i < argc; ++i) ok = validate_one(argv[i]) && ok;
    return ok ? 0 : 1;
  }

  std::string error;
  if (first == "--describe") {
    if (argc < 3) return usage(1);
    const auto spec = scenario::find_scenario(argv[2], &error);
    if (!spec) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s", spec->to_text().c_str());
    return 0;
  }

  // Resolve the scenario: registry name first, then spec file.
  scenario::ScenarioSpec spec;
  if (auto found = scenario::find_scenario(first, &error)) {
    spec = *found;
  } else if (file_exists(first)) {
    auto parsed = scenario::parse_spec_file(first);
    if (!parsed) {
      std::fprintf(stderr, "error: %s: %s\n", first.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    spec = *parsed.spec;
  } else {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // Apply command-line overrides.
  bool serial_baseline = true;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--skip-serial") {
      serial_baseline = false;
      continue;
    }
    const std::string assignment = strip_dashes(argv[i]);
    if (!scenario::apply_override(&spec, assignment, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  const std::string invalid = scenario::validate_spec(spec);
  if (!invalid.empty()) {
    std::fprintf(stderr, "error: %s\n", invalid.c_str());
    return 1;
  }

  std::printf("running '%s' on the %s backend...\n", spec.name.c_str(),
              scenario::backend_name(spec.backend));
  try {
    const scenario::ScenarioDriver driver(std::move(spec));
    const scenario::ScenarioReport report = driver.run(serial_baseline);
    std::printf("%s", report.summary().c_str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
