// Quickstart: run the registry's `quickstart_arena` scenario — live
// LLM-driven agents executed lock-step and then out-of-order on the AI
// Metropolis engine — and verify both executions produce the identical
// world, the core guarantee of the system.
//
//   build/examples/quickstart
#include <cstdio>

#include "scenario/driver.h"
#include "scenario/registry.h"

using namespace aimetro;

int main() {
  std::string error;
  const auto spec = scenario::find_scenario("quickstart_arena", &error);
  if (!spec) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("== AI Metropolis quickstart: %d LLM agents, %d steps ==\n\n",
              spec->agents, spec->sim_steps());

  const auto report = scenario::ScenarioDriver(*spec).run();
  std::printf("%s", report.summary().c_str());

  if (report.world_hash_serial == report.world_hash_metro) {
    std::printf(
        "\nOK: out-of-order execution reproduced the lock-step world "
        "exactly.\n");
    return 0;
  }
  std::printf("\nERROR: executions diverged!\n");
  return 1;
}
