// Quickstart: define LLM-driven agents, run them lock-step and then
// out-of-order on the AI Metropolis engine, and verify both executions
// produce the identical world — the core guarantee of the system.
//
//   build/examples/quickstart
#include <cstdio>
#include <memory>

#include "gym/agents.h"
#include "gym/env.h"
#include "llm/client.h"
#include "world/grid_map.h"

using namespace aimetro;

namespace {

gym::EnvConfig config(bool out_of_order) {
  gym::EnvConfig cfg;
  cfg.params = core::DependencyParams{/*radius_p=*/4.0, /*max_vel=*/1.0};
  cfg.target_step = 120;
  cfg.n_workers = 4;
  cfg.out_of_order = out_of_order;
  return cfg;
}

std::vector<std::unique_ptr<gym::Agent>> make_agents(int n) {
  std::vector<std::unique_ptr<gym::Agent>> agents;
  for (int i = 0; i < n; ++i) {
    agents.push_back(
        std::make_unique<gym::WandererAgent>(1000u + static_cast<unsigned>(i)));
  }
  return agents;
}

}  // namespace

int main() {
  // A small town square with one contended object.
  world::GridMap map(40, 40);
  map.add_object("fountain", Tile{20, 20});
  std::vector<Tile> starts;
  for (int i = 0; i < 10; ++i) {
    starts.push_back(Tile{5 + (i % 5) * 7, 5 + (i / 5) * 14});
  }

  std::printf("== AI Metropolis quickstart: 10 LLM agents, 120 steps ==\n\n");

  // 1) Lock-step baseline (Algorithm 1): one global barrier per step.
  llm::FakeLlmClient llm_lockstep(/*seed=*/7);
  gym::Env lockstep(&map, starts, make_agents(10), &llm_lockstep,
                    config(/*out_of_order=*/false));
  lockstep.run();
  std::printf("lock-step   : %llu LLM calls, world hash %016llx\n",
              static_cast<unsigned long long>(llm_lockstep.calls()),
              static_cast<unsigned long long>(lockstep.state_hash()));

  // 2) Out-of-order (Algorithm 3): the dependency scoreboard lets distant
  //    agents advance independently; coupled neighbours move as clusters.
  llm::FakeLlmClient llm_ooo(/*seed=*/7, /*latency_us=*/300);
  gym::Env metropolis(&map, starts, make_agents(10), &llm_ooo,
                      config(/*out_of_order=*/true));
  const auto stats = metropolis.run();
  std::printf("metropolis  : %llu LLM calls, world hash %016llx\n",
              static_cast<unsigned long long>(llm_ooo.calls()),
              static_cast<unsigned long long>(metropolis.state_hash()));
  std::printf("              %llu clusters executed, %llu agent-steps\n",
              static_cast<unsigned long long>(stats.clusters_executed),
              static_cast<unsigned long long>(stats.agent_steps));

  if (lockstep.state_hash() == metropolis.state_hash()) {
    std::printf(
        "\nOK: out-of-order execution reproduced the lock-step world "
        "exactly.\n");
    return 0;
  }
  std::printf("\nERROR: executions diverged!\n");
  return 1;
}
