// SmallVille day: the registry's `smallville_day` scenario — generate the
// GenAgent-style workload, inspect its statistics, and replay the busy
// hour under every scheduling setting on the spec's serving platform (the
// experiment of the paper's §4.2 in one executable).
//
//   build/examples/smallville_day [trace-out.bin]
#include <cstdio>
#include <string>

#include "replay/experiment.h"
#include "scenario/driver.h"
#include "scenario/registry.h"
#include "trace/schema.h"
#include "trace/serialize.h"
#include "trace/stats.h"

using namespace aimetro;

int main(int argc, char** argv) {
  std::string error;
  const auto spec = scenario::find_scenario("smallville_day", &error);
  if (!spec) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  std::printf("== Generating one SmallVille day (%d agents) ==\n",
              spec->agents);
  scenario::ScenarioSpec full_day = *spec;
  full_day.window_begin = full_day.window_end = -1;  // whole day, for stats
  const scenario::ScenarioDriver driver(full_day);
  const auto day = driver.build_trace();
  const auto stats = trace::compute_stats(day);
  std::printf("%s\n", stats.to_string().c_str());

  if (argc > 1) {
    trace::save_binary_file(day, argv[1]);
    std::printf("trace written to %s\n\n", argv[1]);
  }

  std::printf("== Replaying the busy hour (12-1pm) on %dx %s, %s ==\n",
              spec->data_parallel * spec->tensor_parallel, spec->gpu.c_str(),
              spec->model.c_str());
  const auto busy =
      trace::slice(day, spec->window_begin, spec->window_end);
  replay::ExperimentConfig cfg = driver.experiment_config();
  double sync_time = 0.0;
  for (replay::Mode mode :
       {replay::Mode::kSingleThread, replay::Mode::kParallelSync,
        replay::Mode::kMetropolis, replay::Mode::kOracle,
        replay::Mode::kNoDependency, replay::Mode::kCritical}) {
    cfg.mode = mode;
    const auto result = replay::run_experiment(busy, cfg);
    std::printf("%s", result.summary().c_str());
    if (mode == replay::Mode::kParallelSync) {
      sync_time = result.completion_seconds;
    } else if (mode == replay::Mode::kMetropolis) {
      std::printf("  <- %.2fx over parallel-sync",
                  sync_time / result.completion_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe OOO engine wins exactly because most lock-step dependencies "
      "are false: distant agents never needed to wait for each other.\n");
  return 0;
}
