// SmallVille day: generate the GenAgent-style workload (25 agents, one
// simulated day on the 140x100 town), inspect its statistics, and replay
// it under every scheduling setting on a simulated 4x L4 serving cluster —
// the experiment of the paper's §4.2 in one executable.
//
//   build/examples/smallville_day [trace-out.bin]
#include <cstdio>
#include <string>

#include "replay/experiment.h"
#include "trace/generator.h"
#include "trace/serialize.h"
#include "trace/stats.h"
#include "world/grid_map.h"

using namespace aimetro;

int main(int argc, char** argv) {
  std::printf("== Generating one SmallVille day (25 agents) ==\n");
  const auto map = world::GridMap::smallville(25);
  trace::GeneratorConfig gen;
  gen.n_agents = 25;
  gen.seed = 42;
  const auto day = trace::generate(map, gen);
  const auto stats = trace::compute_stats(day);
  std::printf("%s\n", stats.to_string().c_str());

  if (argc > 1) {
    trace::save_binary_file(day, argv[1]);
    std::printf("trace written to %s\n\n", argv[1]);
  }

  std::printf("== Replaying the busy hour (12-1pm) on 4x L4, Llama-3-8B ==\n");
  const auto busy = trace::slice(day, 4320, 4680);
  double sync_time = 0.0;
  for (replay::Mode mode :
       {replay::Mode::kSingleThread, replay::Mode::kParallelSync,
        replay::Mode::kMetropolis, replay::Mode::kOracle,
        replay::Mode::kNoDependency, replay::Mode::kCritical}) {
    replay::ExperimentConfig cfg;
    cfg.mode = mode;
    cfg.model = llm::ModelSpec::llama3_8b();
    cfg.gpu = llm::GpuSpec::l4();
    cfg.parallelism = llm::ParallelismConfig{1, 4};
    const auto result = replay::run_experiment(busy, cfg);
    std::printf("%s", result.summary().c_str());
    if (mode == replay::Mode::kParallelSync) {
      sync_time = result.completion_seconds;
    } else if (mode == replay::Mode::kMetropolis) {
      std::printf("  <- %.2fx over parallel-sync",
                  sync_time / result.completion_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe OOO engine wins exactly because most lock-step dependencies "
      "are false: distant agents never needed to wait for each other.\n");
  return 0;
}
