// Scaling demo: run the registry's parameterized `scaling_ville<N>`
// scenarios (the paper's §4.3 large-ville construction) and watch the OOO
// speedup grow with the agent count.
//
//   build/examples/scaling_ville [max_segments=8]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "scenario/driver.h"
#include "scenario/registry.h"

using namespace aimetro;

int main(int argc, char** argv) {
  const int max_segments = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("agents\tsync(s)\tmetro(s)\tspeedup\tmetro-parallelism\n");
  for (int segments = 1; segments <= max_segments; segments *= 2) {
    std::string error;
    const auto spec = scenario::find_scenario(
        strformat("scaling_ville%d", segments), &error);
    if (!spec) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    // Skip the single-thread reference replay: this sweep compares
    // parallel-sync against metropolis only.
    const auto report =
        scenario::ScenarioDriver(*spec).run(/*serial_baseline=*/false);
    std::printf("%d\t%.0f\t%.0f\t%.2fx\t%.1f\n", report.agents,
                report.sync_seconds, report.metro_seconds,
                report.speedup_vs_sync, report.avg_parallelism);
  }
  return 0;
}
