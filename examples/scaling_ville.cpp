// Scaling demo: concatenate SmallVilles into a large ville (the paper's
// §4.3 construction), replay the busy hour under parallel-sync and
// metropolis on a simulated 8x L4 cluster, and watch the OOO speedup grow
// with the agent count.
//
//   build/examples/scaling_ville [max_segments=8]
#include <cstdio>
#include <cstdlib>

#include "replay/experiment.h"
#include "trace/generator.h"

using namespace aimetro;

int main(int argc, char** argv) {
  const int max_segments = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("agents\tsync(s)\tmetro(s)\tspeedup\tmetro-parallelism\n");
  for (int segments = 1; segments <= max_segments; segments *= 2) {
    trace::GeneratorConfig gen;
    gen.n_agents = 25;
    gen.seed = 42;
    const auto ville = trace::generate_large_ville(segments, gen);
    const auto busy = trace::slice(ville, 4320, 4680);

    replay::ExperimentConfig cfg;
    cfg.model = llm::ModelSpec::llama3_8b();
    cfg.gpu = llm::GpuSpec::l4();
    cfg.parallelism = llm::ParallelismConfig{1, 8};

    cfg.mode = replay::Mode::kParallelSync;
    const auto sync = replay::run_experiment(busy, cfg);
    cfg.mode = replay::Mode::kMetropolis;
    const auto metro = replay::run_experiment(busy, cfg);

    std::printf("%d\t%.0f\t%.0f\t%.2fx\t%.1f\n", segments * 25,
                sync.completion_seconds, metro.completion_seconds,
                sync.completion_seconds / metro.completion_seconds,
                metro.avg_parallelism);
  }
  return 0;
}
