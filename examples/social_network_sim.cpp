// §6 extension: the dependency rules in non-Euclidean spaces. Here the
// "world" is a social network — distance is hop count between accounts,
// perception radius 1 (you see your friends' posts), and max_vel 0
// (the follow graph is fixed during the episode). The scoreboard lets
// separate communities advance their conversation threads independently
// while each clique stays internally synchronized.
//
//   build/examples/social_network_sim
#include <cstdio>
#include <map>

#include "core/metric.h"
#include "core/scoreboard.h"

using namespace aimetro;

int main() {
  // Two 4-account friend cliques plus a lurker (node 8) who follows
  // nobody. Communities are independent; within a clique everyone sees
  // everyone's posts, so a clique must advance as one cluster.
  std::vector<std::vector<std::int32_t>> follows(9);
  auto link = [&](int a, int b) {
    follows[static_cast<std::size_t>(a)].push_back(b);
    follows[static_cast<std::size_t>(b)].push_back(a);
  };
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) link(i, j);          // clique 1: 0-3
  }
  for (int i = 4; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) link(i, j);          // clique 2: 4-7
  }

  auto metric = std::make_shared<core::GraphMetric>(follows);
  const core::DependencyParams params{/*radius_p=*/1.0, /*max_vel=*/0.0};
  std::vector<Pos> nodes;
  for (int i = 0; i < 9; ++i) nodes.push_back(Pos{static_cast<double>(i), 0});

  core::Scoreboard sb(params, metric, nodes, /*target_step=*/6);
  std::printf(
      "== Social-network simulation: 9 accounts, 2 cliques + lurker ==\n");
  std::uint64_t round = 0;
  std::map<Step, int> clique1_pace;
  while (!sb.all_done()) {
    auto ready = sb.pop_ready_clusters();
    std::printf("round %llu:\n", static_cast<unsigned long long>(round++));
    for (const auto& cluster : ready) {
      std::printf("  thread at step %d, accounts:", cluster.step);
      std::vector<std::pair<AgentId, Pos>> moves;
      for (AgentId m : cluster.members) {
        std::printf(" %d", m);
        moves.emplace_back(m, sb.pos_of(m));  // accounts do not move
      }
      std::printf("\n");
      sb.commit(moves);
    }
  }
  sb.check_invariants();
  std::printf(
      "\nDone: %llu cluster dispatches, mean cluster size %.2f.\n"
      "Each clique is one cluster (friends see each other's posts and must\n"
      "stay synchronized); the cliques and the lurker advance completely\n"
      "independently — no global lock-step over the social graph.\n",
      static_cast<unsigned long long>(sb.stats().clusters_dispatched),
      sb.stats().mean_cluster_size());
  return 0;
}
