// Figure 3 companion: build a six-agent scene like the paper's
// spatiotemporal dependency-graph illustration and print the scoreboard as
// Graphviz dot, showing coupled pairs, blocked agents, and ready clusters.
//
//   build/examples/dependency_graph_demo | grep -v '^//' | dot -Tpng > graph.png
#include <cstdio>

#include "core/scoreboard.h"

using namespace aimetro;

int main() {
  // Agents A..F (radius_p=4, max_vel=1, coupling radius 5).
  //   A(0) and B(3): coupled — they must advance together.
  //   C(40), D(46), E(52): spaced 6 apart — independent at equal steps,
  //     but one step of lag puts a neighbour inside the blocking cone
  //     ((lag+1)*max_vel + radius_p = 6).
  //   F(100): isolated, free to sprint ahead.
  const core::DependencyParams params{4.0, 1.0};
  std::vector<Pos> positions{
      {0.0, 0.0},    // A
      {3.0, 0.0},    // B
      {40.0, 0.0},   // C
      {46.0, 0.0},   // D
      {52.0, 0.0},   // E
      {100.0, 0.0},  // F
  };
  core::Scoreboard sb(params, core::make_euclidean(), positions, 32);

  auto ready = sb.pop_ready_clusters();
  std::printf("// initial ready clusters:\n");
  for (const auto& cluster : ready) {
    std::printf("//   step %d:", cluster.step);
    for (AgentId m : cluster.members) std::printf(" %c", 'A' + m);
    std::printf("\n");
  }

  // F sprints five steps ahead; C and E finish step 0 while D is still
  // executing it, so C@1 and E@1 now sit inside slow D@0's cone.
  for (int i = 0; i < 5; ++i) {
    sb.commit({{5, positions[5]}});
    sb.pop_ready_clusters();
  }
  sb.commit({{2, positions[2]}});
  sb.commit({{4, positions[4]}});
  sb.pop_ready_clusters();  // C and E are blocked: nothing new dispatches

  std::printf("// scoreboard state (D@0 blocks C@1 and E@1; A-B coupled):\n");
  for (AgentId a = 0; a < 6; ++a) {
    const auto blockers = sb.blockers_of(a);
    std::printf("//   %c@%d %s", 'A' + a, sb.step_of(a),
                blockers.empty() ? "ready/running" : "blocked by");
    for (AgentId b : blockers) std::printf(" %c", 'A' + b);
    std::printf("\n");
  }
  std::printf("%s", sb.to_dot().c_str());

  // Once D commits step 0, the cone recedes and both neighbours free up.
  sb.commit({{3, positions[3]}});
  const auto unblocked = sb.pop_ready_clusters();
  std::printf("// after D commits: %zu clusters become ready again\n",
              unblocked.size());
  return 0;
}
