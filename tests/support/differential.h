// Reusable randomized differential harness for the scoreboard scan modes.
//
// The guarantee under test: ScanMode::kIndexed must be observably
// indistinguishable from the brute-force full-scan reference — identical
// ready-cluster sequences, identical edges, identical statistics — for any
// metric, any workload shape, and any pop/commit schedule. The harness
// drives an indexed and a brute scoreboard through the exact same
// randomized executor loop and compares the complete observable state
// after every commit.
//
// A failing tuple prints a one-line repro string; re-running the sweep
// with that string in the AIMETRO_DIFF_REPRO environment variable runs
// ONLY the failing (shape, metric, seed) tuple, so a 100-case sweep
// shrinks to a single deterministic case under a debugger:
//
//   AIMETRO_DIFF_REPRO="metric=graph agents=24 spread=0 target=15
//       radius=2 vel=1 nodes=120 degree=4 rewire=0.1 seed=1007" (one
//       line) ./scoreboard_index_test --gtest_filter='*Sweep*'
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/metric.h"
#include "core/scoreboard.h"
#include "world/region_partition.h"
#include "world/social_graph.h"

namespace aimetro::test_support {

/// One differential workload shape. Grid metrics scatter agents uniformly
/// in [0, spread]^2; the graph metric ignores `spread` and scatters them
/// over the nodes of a Newman-Watts small-world graph built from the
/// graph_* knobs (and the case seed, so every seed sees a fresh graph).
struct DiffShape {
  int n_agents = 16;
  double spread = 100.0;
  Step target = 15;
  core::DependencyParams params{4.0, 1.0};
  const char* metric = "euclidean";  // euclidean|manhattan|chebyshev|graph
  int graph_nodes = 0;
  int graph_degree = 4;
  double graph_rewire = 0.1;
  /// Region partition of the *indexed* board; the brute board always runs
  /// unsharded, so shards > 1 differentially tests the sharded strip
  /// structure (border sets, per-strip cluster homes, lazy min) against
  /// the flat reference through the same executor schedule.
  int shards = 1;
  /// Repartition period in commits (0 = never): every `reshard` commits
  /// the indexed board is re-sliced to population quantiles of the live
  /// positions *mid-run*, with clusters dispatched and lag spreads built
  /// up — the adversarial version of the engine's quiescent episode
  /// reshard. State must stay equal to the never-resharded brute board
  /// after every boundary move. Ignored when shards <= 1.
  int reshard = 0;
};

/// A shape pinned to one seed: the unit of repro.
struct DiffCase {
  DiffShape shape;
  std::uint64_t seed = 0;
};

inline std::string repro_string(const DiffCase& c) {
  return strformat(
      "metric=%s agents=%d spread=%g target=%lld radius=%g vel=%g "
      "nodes=%d degree=%d rewire=%g shards=%d reshard=%d seed=%llu",
      c.shape.metric, c.shape.n_agents, c.shape.spread,
      static_cast<long long>(c.shape.target), c.shape.params.radius_p,
      c.shape.params.max_vel, c.shape.graph_nodes, c.shape.graph_degree,
      c.shape.graph_rewire, c.shape.shards, c.shape.reshard,
      static_cast<unsigned long long>(c.seed));
}

/// Inverse of repro_string; nullopt on any unknown key or malformed value.
inline std::optional<DiffCase> parse_repro(const std::string& text) {
  static std::string metric_storage;  // keeps the const char* alive
  DiffCase c;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "metric") {
        metric_storage = value;
        c.shape.metric = metric_storage.c_str();
      } else if (key == "agents") {
        c.shape.n_agents = std::stoi(value);
      } else if (key == "spread") {
        c.shape.spread = std::stod(value);
      } else if (key == "target") {
        c.shape.target = std::stoll(value);
      } else if (key == "radius") {
        c.shape.params.radius_p = std::stod(value);
      } else if (key == "vel") {
        c.shape.params.max_vel = std::stod(value);
      } else if (key == "nodes") {
        c.shape.graph_nodes = std::stoi(value);
      } else if (key == "degree") {
        c.shape.graph_degree = std::stoi(value);
      } else if (key == "rewire") {
        c.shape.graph_rewire = std::stod(value);
      } else if (key == "shards") {
        c.shape.shards = std::stoi(value);
      } else if (key == "reshard") {
        c.shape.reshard = std::stoi(value);
      } else if (key == "seed") {
        c.seed = std::stoull(value);
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return c;
}

/// Every externally observable bit of both scoreboards must agree.
inline void expect_scoreboards_equal(const core::Scoreboard& a,
                                     const core::Scoreboard& b) {
  ASSERT_EQ(a.agent_count(), b.agent_count());
  for (std::size_t i = 0; i < a.agent_count(); ++i) {
    const auto id = static_cast<AgentId>(i);
    ASSERT_EQ(a.step_of(id), b.step_of(id)) << "agent " << id;
    ASSERT_EQ(a.pos_of(id), b.pos_of(id)) << "agent " << id;
    ASSERT_EQ(a.status_of(id), b.status_of(id)) << "agent " << id;
    ASSERT_EQ(a.blockers_of(id), b.blockers_of(id)) << "agent " << id;
    ASSERT_EQ(a.cluster_of(id), b.cluster_of(id)) << "agent " << id;
  }
  ASSERT_EQ(a.min_step(), b.min_step());
  ASSERT_EQ(a.mean_blockers(), b.mean_blockers());
  const core::ScoreboardStats& sa = a.stats();
  const core::ScoreboardStats& sb = b.stats();
  ASSERT_EQ(sa.clusters_dispatched, sb.clusters_dispatched);
  ASSERT_EQ(sa.commits, sb.commits);
  ASSERT_EQ(sa.edges_added, sb.edges_added);
  ASSERT_EQ(sa.edges_removed, sb.edges_removed);
  ASSERT_EQ(sa.max_concurrent_running, sb.max_concurrent_running);
  ASSERT_EQ(sa.sum_cluster_sizes, sb.sum_cluster_sizes);
}

/// Run one (shape, seed) tuple to completion, asserting equality after
/// every commit. Uses ASSERT_* throughout: the first divergence stops the
/// case (the caller checks HasFatalFailure() to stop the sweep).
inline void run_differential_case(const DiffCase& c) {
  const DiffShape& shape = c.shape;
  const bool graph = std::string(shape.metric) == "graph";
  Rng rng(c.seed);

  std::vector<std::vector<std::int32_t>> adjacency;
  std::shared_ptr<const core::Metric> metric;
  std::vector<Pos> initial;
  if (graph) {
    ASSERT_GE(shape.graph_nodes, 3) << "graph shapes need graph_nodes";
    adjacency = world::newman_watts_graph(shape.graph_nodes,
                                          shape.graph_degree,
                                          shape.graph_rewire, c.seed);
    metric = std::make_shared<core::GraphMetric>(adjacency);
    for (int i = 0; i < shape.n_agents; ++i) {
      initial.push_back(Pos{static_cast<double>(rng.uniform_int(
                                0, shape.graph_nodes - 1)),
                            0.0});
    }
  } else if (std::string(shape.metric) == "euclidean") {
    metric = std::make_shared<core::EuclideanMetric>();
  } else if (std::string(shape.metric) == "manhattan") {
    metric = std::make_shared<core::ManhattanMetric>();
  } else if (std::string(shape.metric) == "chebyshev") {
    metric = std::make_shared<core::ChebyshevMetric>();
  } else {
    FAIL() << "unknown metric " << shape.metric;
  }
  if (!graph) {
    for (int i = 0; i < shape.n_agents; ++i) {
      initial.push_back(Pos{rng.uniform(0.0, shape.spread),
                            rng.uniform(0.0, shape.spread)});
    }
  }

  core::Scoreboard indexed(shape.params, metric, initial, shape.target,
                           core::ScanMode::kIndexed, shape.shards);
  core::Scoreboard brute(shape.params, metric, initial, shape.target,
                         core::ScanMode::kBruteForce);
  if (graph) {
    // Graph metrics collapse the partition; the request must be harmless.
    EXPECT_EQ(indexed.shards(), 1);
  } else {
    EXPECT_EQ(indexed.shards(), shape.shards);
  }
  expect_scoreboards_equal(indexed, brute);

  // One executor loop drives both boards: the ready sequences are equal
  // (asserted), so shuffled commit picks and randomized moves hit both
  // identically. Out-of-order pressure comes from committing a random
  // in-flight cluster each round, which builds up real lag spreads.
  std::vector<core::AgentCluster> in_flight;
  std::uint64_t commits = 0;
  while (!indexed.all_done()) {
    auto ready_i = indexed.pop_ready_clusters();
    const auto ready_b = brute.pop_ready_clusters();
    ASSERT_EQ(ready_i.size(), ready_b.size());
    for (std::size_t k = 0; k < ready_i.size(); ++k) {
      ASSERT_EQ(ready_i[k].step, ready_b[k].step);
      ASSERT_EQ(ready_i[k].members, ready_b[k].members);
    }
    for (auto& cl : ready_i) in_flight.push_back(std::move(cl));
    ASSERT_FALSE(in_flight.empty()) << "scheduler stalled";
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
    core::AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = indexed.pos_of(m);
      if (graph) {
        // One hop along a random edge, or stay put: hop distance 1 or 0,
        // legal whenever max_vel >= 1.
        if (shape.params.max_vel >= 1.0 && rng.bernoulli(0.7)) {
          const auto& nbrs =
              adjacency[static_cast<std::size_t>(std::llround(pos.x))];
          if (!nbrs.empty()) {
            pos.x = static_cast<double>(nbrs[static_cast<std::size_t>(
                rng.uniform_int(0,
                                static_cast<std::int64_t>(nbrs.size()) - 1))]);
          }
        }
      } else {
        const double angle = rng.uniform(0.0, 2.0 * M_PI);
        const double dist = rng.uniform(0.0, shape.params.max_vel);
        // Chebyshev displacement of a unit vector can exceed 1 only for
        // Euclidean; scale so every metric sees a legal move.
        const double scale =
            std::string(shape.metric) == "euclidean" ? 1.0 : 0.5;
        pos.x += std::cos(angle) * dist * scale;
        pos.y += std::sin(angle) * dist * scale;
      }
      moves.emplace_back(m, pos);
    }
    if (shape.shards > 1 && rng.bernoulli(0.5)) {
      // Exercise the floored-probe path the threaded engine's interior
      // commits use (plus the boundary classifier, for crash coverage):
      // a lower floor may only widen probes, never change state.
      const Step floor = indexed.min_step();
      (void)indexed.local_commit_shard(moves, floor);
      indexed.commit(moves, floor);
    } else {
      indexed.commit(moves);
    }
    brute.commit(moves);
    ++commits;
    if (shape.reshard > 0 && indexed.shards() > 1 &&
        commits % static_cast<std::uint64_t>(shape.reshard) == 0) {
      // Mid-run strip-boundary move, with clusters still in flight: the
      // indexed board alone is re-sliced to population quantiles of the
      // current positions, and must remain indistinguishable from the
      // never-resharded reference.
      std::vector<double> xs;
      xs.reserve(indexed.agent_count());
      for (std::size_t i = 0; i < indexed.agent_count(); ++i) {
        xs.push_back(indexed.pos_of(static_cast<AgentId>(i)).x);
      }
      indexed.repartition(world::RegionPartition::equal_population(
          indexed.shards(), std::move(xs)));
      indexed.check_invariants();
    }
    expect_scoreboards_equal(indexed, brute);
    if (commits % 11 == 0) {
      indexed.check_invariants();
      brute.check_invariants();
    }
  }
  EXPECT_TRUE(brute.all_done());
  EXPECT_EQ(indexed.min_step(), shape.target);
  indexed.check_invariants();
  brute.check_invariants();
}

/// Sweep shapes x seeds. When AIMETRO_DIFF_REPRO is set, run only the
/// tuple it encodes (the shrink mode); otherwise derive `n_seeds` distinct
/// seeds per shape from `seed_base` and stop the sweep at the first
/// fatally failing tuple so one bug prints one repro line, not hundreds.
inline void run_differential_sweep(const std::vector<DiffShape>& shapes,
                                   int n_seeds,
                                   std::uint64_t seed_base = 1000) {
  if (const char* env = std::getenv("AIMETRO_DIFF_REPRO")) {
    const auto c = parse_repro(env);
    ASSERT_TRUE(c.has_value()) << "unparseable AIMETRO_DIFF_REPRO: " << env;
    SCOPED_TRACE("repro " + repro_string(*c));
    run_differential_case(*c);
    return;
  }
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    for (int k = 0; k < n_seeds; ++k) {
      const DiffCase c{shapes[si],
                       seed_base + 100 * si + static_cast<std::uint64_t>(k)};
      SCOPED_TRACE("rerun just this tuple with AIMETRO_DIFF_REPRO=\"" +
                   repro_string(c) + "\"");
      run_differential_case(c);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace aimetro::test_support
