#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"
#include "des/event_loop.h"
#include "llm/client.h"
#include "llm/cluster.h"
#include "llm/cost_model.h"
#include "llm/cost_model_client.h"
#include "llm/specs.h"
#include "runtime/sim_clock.h"

namespace aimetro::llm {
namespace {

TEST(Specs, ModelFootprints) {
  const auto m8 = ModelSpec::llama3_8b();
  const auto m70 = ModelSpec::llama3_70b();
  const auto mix = ModelSpec::mixtral_8x7b();
  // The paper notes the 70B memory demand is 8.75x the 8B's (§4.2).
  EXPECT_NEAR(m70.weight_bytes() / m8.weight_bytes(), 8.75, 0.01);
  // Mixtral uses ~80% of a 70B's memory with lighter compute (§4.3).
  EXPECT_NEAR(mix.weight_bytes() / m70.weight_bytes(), 0.67, 0.1);
  EXPECT_LT(mix.active_params_b, mix.total_params_b);
  EXPECT_FALSE(m8.is_moe());
  EXPECT_TRUE(mix.is_moe());
}

TEST(CostModel, DecodeIsBatchFriendly) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  // Memory-bound decode: doubling the batch must cost far less than 2x.
  const SimTime t1 = cm.iteration_time(1, 0, 700);
  const SimTime t2 = cm.iteration_time(2, 0, 1400);
  const SimTime t32 = cm.iteration_time(32, 0, 32 * 700);
  EXPECT_LT(static_cast<double>(t2), 1.3 * static_cast<double>(t1));
  EXPECT_LT(static_cast<double>(t32), 4.0 * static_cast<double>(t1));
  // Throughput (tokens/us) strictly improves with batch.
  EXPECT_GT(32.0 / static_cast<double>(t32), 1.0 / static_cast<double>(t1));
}

TEST(CostModel, PrefillIsComputeBound) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  const SimTime t512 = cm.iteration_time(0, 512, 0);
  const SimTime t4096 = cm.iteration_time(0, 4096, 0);
  EXPECT_NEAR(static_cast<double>(t4096) / static_cast<double>(t512), 8.0,
              2.0);
}

TEST(CostModel, TensorParallelismSubLinear) {
  const CostModel tp1(ModelSpec::llama3_70b(), GpuSpec::a100_80gb(), 4);
  const CostModel tp8(ModelSpec::llama3_70b(), GpuSpec::a100_80gb(), 8);
  const SimTime t4 = tp1.iteration_time(1, 0, 700);
  const SimTime t8 = tp8.iteration_time(1, 0, 700);
  EXPECT_LT(t8, t4);                                       // faster
  EXPECT_GT(static_cast<double>(t8), 0.5 * static_cast<double>(t4));  // < 2x
}

TEST(CostModel, MoeReadsFewerWeightsAtSmallBatch) {
  const CostModel mix(ModelSpec::mixtral_8x7b(), GpuSpec::a100_80gb(), 2);
  const double w1 = mix.weights_read_bytes(1);
  const double w64 = mix.weights_read_bytes(64);
  const double all = ModelSpec::mixtral_8x7b().weight_bytes();
  EXPECT_LT(w1, 0.6 * all);
  EXPECT_GT(w64, 0.95 * all);
  // Dense model always reads everything.
  const CostModel dense(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  EXPECT_DOUBLE_EQ(dense.weights_read_bytes(1),
                   ModelSpec::llama3_8b().weight_bytes());
}

TEST(CostModel, KvCapacityReflectsFootprint) {
  const CostModel l4_8b(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  EXPECT_GT(l4_8b.kv_capacity_tokens(), 10'000);
  EXPECT_LT(l4_8b.kv_capacity_tokens(), 200'000);
  // 70B does not fit on one L4.
  EXPECT_THROW(CostModel(ModelSpec::llama3_70b(), GpuSpec::l4(), 1),
               CheckError);
  const CostModel a100_70b(ModelSpec::llama3_70b(), GpuSpec::a100_80gb(), 4);
  EXPECT_GT(a100_70b.kv_capacity_tokens(), 100'000);
}

// ---- Cluster / replica behaviour ----

struct ClusterHarness {
  des::EventLoop loop;
  std::unique_ptr<Cluster> cluster;

  explicit ClusterHarness(std::int32_t dp = 1, ClusterConfig cfg = {}) {
    cluster = std::make_unique<Cluster>(&loop, ModelSpec::llama3_8b(),
                                        GpuSpec::l4(),
                                        ParallelismConfig{1, dp},
                                        CostModelConfig{}, cfg);
  }

  Request make(std::int64_t in, std::int64_t out, std::int64_t priority = 0) {
    Request r;
    r.prompt_tokens = in;
    r.output_tokens = out;
    r.priority = priority;
    return r;
  }
};

TEST(Cluster, SingleRequestLatencyDecomposes) {
  ClusterHarness h;
  SimTime finish = 0;
  Request r = h.make(640, 22);
  r.on_complete = [&](const RequestOutcome& o) { finish = o.finish_time; };
  h.cluster->submit(std::move(r));
  h.loop.run();
  ASSERT_GT(finish, 0);
  const CostModel& cm = h.cluster->cost_model();
  // Expected: one prefill chunk + 22 decode iterations at batch 1.
  const SimTime expected = cm.iteration_time(0, 640, 0) +
                           22 * cm.iteration_time(1, 0, 650);
  EXPECT_NEAR(static_cast<double>(finish), static_cast<double>(expected),
              0.15 * static_cast<double>(expected));
  EXPECT_EQ(h.cluster->completed(), 1u);
  EXPECT_EQ(h.cluster->outstanding(), 0u);
}

TEST(Cluster, BatchingBeatsSerialExecution) {
  // 16 identical requests together must finish much sooner than 16x one.
  SimTime serial_one = 0;
  {
    ClusterHarness h;
    Request r = h.make(640, 22);
    r.on_complete = [&](const RequestOutcome& o) { serial_one = o.finish_time; };
    h.cluster->submit(std::move(r));
    h.loop.run();
  }
  ClusterHarness h;
  SimTime last = 0;
  for (int i = 0; i < 16; ++i) {
    Request r = h.make(640, 22);
    r.on_complete = [&](const RequestOutcome& o) {
      last = std::max(last, o.finish_time);
    };
    h.cluster->submit(std::move(r));
  }
  h.loop.run();
  EXPECT_LT(static_cast<double>(last),
            0.5 * 16.0 * static_cast<double>(serial_one));
  EXPECT_GT(h.cluster->average_parallelism(last), 4.0);
}

TEST(Cluster, ChainedSubmissionFromCallback) {
  ClusterHarness h;
  std::vector<SimTime> finishes;
  std::function<void(int)> submit_next = [&](int remaining) {
    Request r = h.make(100, 5);
    r.on_complete = [&, remaining](const RequestOutcome& o) {
      finishes.push_back(o.finish_time);
      if (remaining > 1) submit_next(remaining - 1);
    };
    h.cluster->submit(std::move(r));
  };
  submit_next(4);
  h.loop.run();
  ASSERT_EQ(finishes.size(), 4u);
  for (std::size_t i = 1; i < finishes.size(); ++i) {
    EXPECT_GT(finishes[i], finishes[i - 1]);  // strictly serialized
  }
  EXPECT_EQ(h.cluster->completed(), 4u);
}

TEST(Cluster, PriorityOrdersQueueUnderSaturation) {
  // One replica, many requests: with priority scheduling, low-step
  // requests jump the queue even when submitted last.
  ClusterConfig cfg;
  cfg.priority_scheduling = true;
  cfg.replica.max_running_requests = 1;  // force queueing
  ClusterHarness h(1, cfg);
  std::vector<std::int64_t> completion_order;
  for (int i = 0; i < 6; ++i) {
    Request r = h.make(200, 10, /*priority=*/100 - i);  // decreasing priority value
    r.on_complete = [&, i](const RequestOutcome&) {
      completion_order.push_back(100 - i);
    };
    h.cluster->submit(std::move(r));
  }
  h.loop.run();
  ASSERT_EQ(completion_order.size(), 6u);
  // First admitted is the first submitted (queue was empty); afterwards the
  // smallest priorities go first: 95, 96, ..., then the stragglers.
  for (std::size_t i = 2; i < completion_order.size(); ++i) {
    EXPECT_LT(completion_order[i - 1], completion_order[i]);
  }
}

TEST(Cluster, FifoWhenPriorityDisabled) {
  ClusterConfig cfg;
  cfg.priority_scheduling = false;
  cfg.replica.max_running_requests = 1;
  ClusterHarness h(1, cfg);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    Request r = h.make(200, 10, /*priority=*/1000 - i);
    r.on_complete = [&, i](const RequestOutcome&) { order.push_back(i); };
    h.cluster->submit(std::move(r));
  }
  h.loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Cluster, DataParallelRoutingUsesAllReplicas) {
  ClusterHarness h(4);
  std::vector<std::int32_t> replicas;
  for (int i = 0; i < 8; ++i) {
    Request r = h.make(640, 8);
    r.on_complete = [&](const RequestOutcome& o) {
      replicas.push_back(o.replica);
    };
    h.cluster->submit(std::move(r));
  }
  h.loop.run();
  std::set<std::int32_t> distinct(replicas.begin(), replicas.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Cluster, MoreReplicasNeverSlower) {
  SimTime t1 = 0, t4 = 0;
  for (auto* out : {&t1, &t4}) {
    ClusterHarness h(out == &t1 ? 1 : 4);
    SimTime last = 0;
    for (int i = 0; i < 32; ++i) {
      Request r = h.make(640, 22);
      r.on_complete = [&last](const RequestOutcome& o) {
        last = std::max(last, o.finish_time);
      };
      h.cluster->submit(std::move(r));
    }
    h.loop.run();
    *out = last;
  }
  EXPECT_LT(t4, t1);
}

TEST(Cluster, KvCapacityLimitsAdmission) {
  ClusterConfig cfg;
  ClusterHarness h(1, cfg);
  const std::int64_t cap = h.cluster->cost_model().kv_capacity_tokens();
  // Requests sized at ~40% capacity: at most two run concurrently.
  const std::int64_t big = cap * 2 / 5;
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    Request r = h.make(big - 50, 50);
    r.on_complete = [&](const RequestOutcome&) { ++completed; };
    h.cluster->submit(std::move(r));
  }
  // After the admission events fire, only two fit in KV.
  h.loop.run_until(h.cluster->cost_model().iteration_time(0, big, 0));
  EXPECT_LE(h.cluster->outstanding(), 4u);
  h.loop.run();
  EXPECT_EQ(completed, 4);
}

TEST(Cluster, PrefixCacheAcceleratesRepeatedPrompts) {
  SimTime cold = 0, warm = 0;
  for (auto* out : {&cold, &warm}) {
    ClusterConfig cfg;
    cfg.replica.prefix_cache = (out == &warm);
    ClusterHarness h(1, cfg);
    SimTime last = 0;
    std::function<void(int)> chain = [&](int remaining) {
      Request r = h.make(1200, 4);
      r.prompt_hash = 0xABCDEF;  // identical prefix every time
      r.on_complete = [&, remaining](const RequestOutcome& o) {
        last = o.finish_time;
        if (remaining > 1) chain(remaining - 1);
      };
      h.cluster->submit(std::move(r));
    };
    chain(10);
    h.loop.run();
    *out = last;
    if (out == &warm) EXPECT_GE(h.cluster->total_prefix_cache_hits(), 8u);
  }
  EXPECT_LT(static_cast<double>(warm), 0.85 * static_cast<double>(cold));
}

TEST(Cluster, UtilizationAndTokenAccounting) {
  ClusterHarness h(2);
  for (int i = 0; i < 6; ++i) {
    h.cluster->submit(h.make(300, 12));
  }
  h.loop.run();
  const SimTime end = h.cluster->last_completion_time();
  EXPECT_EQ(h.cluster->total_decode_tokens(), 6 * 12);
  EXPECT_EQ(h.cluster->total_prefill_tokens(), 6 * 300);
  EXPECT_GT(h.cluster->average_utilization(end), 0.0);
  EXPECT_LE(h.cluster->average_utilization(end), 1.0);
}

TEST(FakeClient, DeterministicAndThreadSafe) {
  FakeLlmClient client(7);
  CompletionRequest req;
  req.prompt = "hello world";
  const auto a = client.complete(req);
  const auto b = client.complete(req);
  EXPECT_EQ(a.text, b.text);
  req.prompt = "different";
  EXPECT_NE(client.complete(req).text, a.text);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&client] {
      CompletionRequest r;
      r.prompt = "concurrent";
      for (int i = 0; i < 100; ++i) client.complete(r);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(client.calls(), 403u);  // 3 sequential + 4 threads x 100
}

// ---- DecodeTimeline: event-driven per-iteration decode pricing ----

TEST(DecodeTimeline, SoloRequestDecodesAtBatchOne) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  DecodeTimeline tl(&cm);
  const SimTime dt = cm.iteration_time(1, 0, 54);
  const std::uint64_t id = tl.admit(/*join=*/1000, /*output_tokens=*/4,
                                    /*kv_footprint=*/54);
  EXPECT_EQ(tl.predict_finish(id), 1000 + 4 * dt);
  tl.advance(1000 + 4 * dt - 1);
  EXPECT_FALSE(tl.finished(id));  // the last iteration has not completed
  tl.advance(1000 + 4 * dt);
  ASSERT_TRUE(tl.finished(id));
  EXPECT_EQ(tl.take_finish(id), 1000 + 4 * dt);
  EXPECT_EQ(tl.peak_batch(), 1);
  EXPECT_EQ(tl.active(), 0);
}

TEST(DecodeTimeline, LateArrivalRepricesSharedIterations) {
  // THE behaviour the admission-time model got wrong: a request admitted
  // alone must slow down for exactly the iterations it later shares.
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  DecodeTimeline tl(&cm);
  const std::int64_t kv_a = 500, kv_b = 300;
  const SimTime dt1 = cm.iteration_time(1, 0, kv_a);
  const SimTime dt2 = cm.iteration_time(2, 0, kv_a + kv_b);
  const SimTime dt1_after = cm.iteration_time(1, 0, kv_a);
  const std::uint64_t a = tl.admit(0, 10, kv_a);
  // B joins exactly at A's second iteration boundary.
  const std::uint64_t b = tl.admit(2 * dt1, 5, kv_b);
  // A decodes 2 tokens alone, shares 5 iterations with B, then finishes
  // its last 3 alone again; B's 5 iterations are all shared.
  EXPECT_EQ(tl.predict_finish(b), 2 * dt1 + 5 * dt2);
  EXPECT_EQ(tl.predict_finish(a), 2 * dt1 + 5 * dt2 + 3 * dt1_after);
  tl.advance(2 * dt1 + 5 * dt2 + 3 * dt1_after);
  EXPECT_EQ(tl.take_finish(b), 2 * dt1 + 5 * dt2);
  EXPECT_EQ(tl.take_finish(a), 2 * dt1 + 5 * dt2 + 3 * dt1_after);
  EXPECT_EQ(tl.peak_batch(), 2);
}

TEST(DecodeTimeline, MidIterationJoinWaitsForTheNextBoundary) {
  // Admission happens at iteration boundaries, as in the DES replica: a
  // request joining mid-iteration starts with the next one.
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  DecodeTimeline tl(&cm);
  const std::int64_t kv_a = 400, kv_b = 200;
  const SimTime dt1 = cm.iteration_time(1, 0, kv_a);
  const SimTime dt2 = cm.iteration_time(2, 0, kv_a + kv_b);
  const std::uint64_t a = tl.admit(0, 6, kv_a);
  const std::uint64_t b = tl.admit(2 * dt1 + 1, 2, kv_b);  // just past it
  EXPECT_EQ(tl.predict_finish(b), 3 * dt1 + 2 * dt2);
  EXPECT_EQ(tl.predict_finish(a), 3 * dt1 + 2 * dt2 + dt1);
  tl.advance(kSimTimeMax / 2);
  EXPECT_EQ(tl.take_finish(b), 3 * dt1 + 2 * dt2);
  EXPECT_EQ(tl.take_finish(a), 3 * dt1 + 2 * dt2 + dt1);
}

TEST(DecodeTimeline, IdleGapRestartsIterationsAtTheNextJoin) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  DecodeTimeline tl(&cm);
  const SimTime dt = cm.iteration_time(1, 0, 100);
  const std::uint64_t a = tl.admit(0, 2, 100);
  tl.advance(5 * dt);
  EXPECT_EQ(tl.take_finish(a), 2 * dt);
  // A later request must not inherit stale iteration boundaries from the
  // idle gap: its decode starts at its own join time.
  const std::uint64_t b = tl.admit(10 * dt, 3, 100);
  EXPECT_EQ(tl.predict_finish(b), 10 * dt + 3 * dt);
  tl.advance(20 * dt);
  EXPECT_EQ(tl.take_finish(b), 13 * dt);
}

TEST(DecodeTimeline, PredictedFinishesCoverEveryUnreapedRequest) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  DecodeTimeline tl(&cm);
  const SimTime dt = cm.iteration_time(1, 0, 50);
  const std::uint64_t a = tl.admit(0, 1, 50);
  tl.advance(dt);  // a finished but not reaped
  ASSERT_TRUE(tl.finished(a));
  // Three overlapping actives: the single-pass replay must produce the
  // same finish for each as the per-request prediction.
  const std::uint64_t b = tl.admit(2 * dt, 4, 50);
  const std::uint64_t c = tl.admit(2 * dt, 7, 80);
  const std::uint64_t d = tl.admit(3 * dt, 2, 60);
  auto finishes = tl.predicted_finishes();
  ASSERT_EQ(finishes.size(), 4u);  // one exact + three predicted
  std::sort(finishes.begin(), finishes.end());
  std::vector<SimTime> expected = {dt, tl.predict_finish(b),
                                   tl.predict_finish(c),
                                   tl.predict_finish(d)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(finishes, expected);
}

// ---- CostModelLlmClient: cost-model latencies on a virtual clock ----

TEST(CostModelClient, VirtualLatencyMatchesIterationTime) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  const runtime::SimClock clock(1e6);  // compress sleeps away
  CostModelClientConfig cfg;
  cfg.max_prefill_tokens_per_iter = 8192;
  const CostModelLlmClient client(cm, &clock, cfg);

  // Single prefill chunk + one decode iteration per output token at the
  // given batch: exactly the DES cost model's pricing.
  const SimTime expected_small =
      cm.iteration_time(0, 1000, 0) + 10 * cm.iteration_time(3, 0, 2100);
  EXPECT_EQ(client.virtual_latency(1000, 10, 3, 2100), expected_small);

  // Long prompts prefill in max_prefill_tokens_per_iter chunks.
  const SimTime expected_chunked = cm.iteration_time(0, 8192, 0) +
                                   cm.iteration_time(0, 8192, 0) +
                                   cm.iteration_time(0, 3616, 0) +
                                   22 * cm.iteration_time(1, 0, 20022);
  EXPECT_EQ(client.virtual_latency(20000, 22, 1, 20022), expected_chunked);

  // No prefill: decode only.
  EXPECT_EQ(client.virtual_latency(0, 5, 2, 500),
            5 * cm.iteration_time(2, 0, 500));
}

TEST(CostModelClient, CompleteAccountsVirtualTimeAndStaysDeterministic) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  // Low enough compression that calls take real wall microseconds, so the
  // concurrent section below genuinely overlaps in flight.
  const runtime::SimClock clock(200.0);
  CostModelClientConfig cfg;
  cfg.data_parallel = 2;
  cfg.seed = 7;
  CostModelLlmClient client(cm, &clock, cfg);

  CompletionRequest req;
  req.prompt = "hello world";
  req.prompt_tokens = 640;
  req.max_tokens = 20;
  const auto a = client.complete(req);
  const auto b = client.complete(req);
  // Response text is the same deterministic digest FakeLlmClient returns,
  // so swapping clients never changes agent behaviour.
  EXPECT_EQ(a.text, FakeLlmClient(7).complete(req).text);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.prompt_tokens, 640);
  EXPECT_EQ(client.calls(), 2u);

  // Sequential calls accumulate at least their unbatched service time on
  // the virtual axis.
  const SimTime solo = client.virtual_latency(640, 20, 1, 660);
  EXPECT_GE(client.last_finish(), 2 * solo);

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&client] {
      CompletionRequest r;
      r.prompt = "concurrent";
      r.prompt_tokens = 100;
      r.max_tokens = 5;
      for (int i = 0; i < 20; ++i) client.complete(r);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(client.calls(), 162u);  // 2 sequential + 8 threads x 20
  // 8 concurrent callers over 2 replicas: batches beyond 1 must occur.
  EXPECT_GT(client.peak_batch(), 1);
  EXPECT_LE(client.peak_batch(), 4);
}

TEST(CostModelClient, CapacityQueueingSerializesOverflow) {
  const CostModel cm(ModelSpec::llama3_8b(), GpuSpec::l4(), 1);
  const runtime::SimClock clock(2000.0);
  CostModelClientConfig cfg;
  cfg.data_parallel = 1;
  cfg.max_running_requests = 1;  // every concurrent call must queue
  CostModelLlmClient client(cm, &clock, cfg);

  const SimTime solo = client.virtual_latency(50, 4, 1, 54);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&client] {
      CompletionRequest r;
      r.prompt = "queued";
      r.prompt_tokens = 50;
      r.max_tokens = 4;
      for (int i = 0; i < 5; ++i) client.complete(r);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(client.calls(), 20u);
  EXPECT_EQ(client.peak_batch(), 1);  // the cap bounds the priced batch
  // One slot serializes all 20 calls on the virtual axis — overflow
  // arrivals each wait for their own slot, not just the earliest finish.
  EXPECT_GE(client.last_finish(), 20 * solo);
}

}  // namespace
}  // namespace aimetro::llm
