#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/sync_queue.h"
#include "common/types.h"

namespace aimetro {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(AIM_CHECK(1 == 2), CheckError);
  try {
    AIM_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Types, SimTimeConversions) {
  EXPECT_EQ(sim_time_from_seconds(1.0), 1'000'000);
  EXPECT_EQ(sim_time_from_seconds(0.0), 0);
  EXPECT_DOUBLE_EQ(sim_time_to_seconds(2'500'000), 2.5);
}

TEST(Types, Distances) {
  const Pos a{0, 0};
  const Pos b{3, 4};
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(chebyshev(a, b), 4.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool all_equal = true;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(11);
  for (const double lambda : {0.5, 3.0, 50.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStat st;
  for (int i = 0; i < 30000; ++i) st.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.weighted_index({}), CheckError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  // Child and parent streams should differ.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RunningStat, Moments) {
  RunningStat st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_EQ(st.count(), 8);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, both;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(0, 1);
    (i % 2 ? a : b).add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), both.variance(), 1e-9);
}

TEST(PercentileTracker, ExactQuantiles) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(1.0), 100.0);
  EXPECT_NEAR(t.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(t.mean(), 50.5, 1e-9);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage) {
  TimeWeightedStat s;
  s.set(0, 2.0);     // 2 for [0, 10)
  s.set(10, 4.0);    // 4 for [10, 20)
  EXPECT_DOUBLE_EQ(s.average_until(20), 3.0);
  EXPECT_DOUBLE_EQ(s.current(), 4.0);
  EXPECT_THROW(s.set(5, 1.0), CheckError);  // time went backwards
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
}

TEST(Strings, Format) {
  EXPECT_EQ(strformat("a=%d b=%s", 3, "x"), "a=3 b=x");
  EXPECT_EQ(strformat("%.2f", 1.5), "1.50");
}

TEST(Strings, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(0.5), "500 ms");
  EXPECT_EQ(format_duration(12.25), "12.25 s");
  EXPECT_EQ(format_duration(3725), "1h 02m 05s");
  EXPECT_EQ(format_duration(125), "2m 05s");
}

TEST(Strings, Pad) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 4), "abcde");
}

TEST(SyncPriorityQueue, OrdersByPriorityThenFifo) {
  SyncPriorityQueue<std::string, int> q;
  q.push(3, "c");
  q.push(1, "a1");
  q.push(2, "b");
  q.push(1, "a2");
  EXPECT_EQ(q.pop().value(), "a1");
  EXPECT_EQ(q.pop().value(), "a2");
  EXPECT_EQ(q.pop().value(), "b");
  EXPECT_EQ(q.pop().value(), "c");
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SyncPriorityQueue, CloseWakesBlockedConsumers) {
  SyncPriorityQueue<int, int> q;
  std::atomic<int> finished{0};
  std::thread consumer([&] {
    while (q.pop().has_value()) {
    }
    finished = 1;
  });
  q.push(0, 42);
  q.close();
  consumer.join();
  EXPECT_EQ(finished.load(), 1);
}

TEST(SyncPriorityQueue, ConcurrentProducersConsumeAll) {
  SyncPriorityQueue<int, int> q;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p, i);
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (q.pop().has_value()) consumed.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  while (consumed.load() < 4 * kPerProducer) {
    std::this_thread::yield();
  }
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 4 * kPerProducer);
}

TEST(SyncPriorityQueue, CloseWithBacklogDrainsBeforeNullopt) {
  // close() must not discard queued work: pops after close still drain
  // the backlog (in priority order), and only then return nullopt. The
  // TaskPool's drain-on-shutdown guarantee is built on this.
  SyncPriorityQueue<int, int> q;
  q.push(2, 20);
  q.push(1, 10);
  q.close();
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 20);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(SyncPriorityQueue, CloseWakesManyConsumersBlockedInPop) {
  // Several consumers blocked inside pop() on an *empty* queue: close()
  // must wake every one of them with nullopt, not just the first.
  SyncPriorityQueue<int, int> q;
  std::atomic<int> woke_empty{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      if (!q.pop().has_value()) woke_empty.fetch_add(1);
    });
  }
  // Give the consumers a moment to actually block in pop().
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke_empty.load(), 4);
}

TEST(SyncQueue, FifoAndClose) {
  SyncQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SyncQueue, CloseWakesBlockedConsumersAndDrainsBacklog) {
  SyncQueue<int> q;
  std::atomic<int> consumed{0};
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (q.pop().has_value()) consumed.fetch_add(1);
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.push(1);
  q.push(2);
  q.close();  // wakes blocked consumers; backlog is still delivered
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 2);
  EXPECT_EQ(finished.load(), 3);
}

}  // namespace
}  // namespace aimetro
