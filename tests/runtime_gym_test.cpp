#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "common/check.h"
#include "common/mutex.h"
#include "gym/agents.h"
#include "gym/env.h"
#include "llm/client.h"
#include "runtime/task_pool.h"
#include "world/grid_map.h"

namespace aimetro::gym {
namespace {

world::GridMap arena_map() {
  world::GridMap map(30, 30);
  map.add_object("fountain", Tile{15, 15});
  return map;
}

std::vector<Tile> spread_starts(int n) {
  std::vector<Tile> starts;
  for (int i = 0; i < n; ++i) {
    starts.push_back(Tile{3 + (i % 4) * 7, 3 + (i / 4) * 7});
  }
  return starts;
}

std::vector<std::unique_ptr<Agent>> wanderers(int n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < n; ++i) {
    agents.push_back(std::make_unique<WandererAgent>(
        seed + static_cast<std::uint64_t>(i) * 1000));
  }
  return agents;
}

EnvConfig env_config(bool ooo, Step target = 40, int workers = 4) {
  EnvConfig cfg;
  cfg.params = core::DependencyParams{4.0, 1.0};
  cfg.target_step = target;
  cfg.n_workers = workers;
  cfg.out_of_order = ooo;
  return cfg;
}

/// THE headline correctness property: out-of-order execution must produce
/// exactly the same simulation outcome as lock-step execution, for
/// deterministic perception-limited agents — across seeds and world sizes.
class OooEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OooEquivalence, LockstepAndOooProduceIdenticalWorlds) {
  const std::uint64_t seed = GetParam();
  const auto map = arena_map();

  llm::FakeLlmClient llm_lockstep(seed, /*latency_us=*/0);
  Env lockstep(&map, spread_starts(8), wanderers(8, seed), &llm_lockstep,
               env_config(/*ooo=*/false));
  lockstep.run();

  llm::FakeLlmClient llm_ooo(seed, /*latency_us=*/200);
  Env ooo(&map, spread_starts(8), wanderers(8, seed), &llm_ooo,
          env_config(/*ooo=*/true));
  const auto stats = ooo.run();

  EXPECT_EQ(lockstep.state_hash(), ooo.state_hash())
      << "OOO execution diverged from lock-step for seed " << seed;
  EXPECT_EQ(llm_lockstep.calls(), llm_ooo.calls());
  EXPECT_EQ(stats.agent_steps, 8u * 40u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OooEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(OooEquivalence, WorkerCountDoesNotChangeOutcome) {
  const auto map = arena_map();
  std::uint64_t hashes[3];
  int i = 0;
  for (int workers : {1, 2, 8}) {
    llm::FakeLlmClient llm(99, 100);
    Env env(&map, spread_starts(6), wanderers(6, 99), &llm,
            env_config(true, 30, workers));
    env.run();
    hashes[i++] = env.state_hash();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
}

TEST(OooEquivalence, CrowdedWorldWithConflicts) {
  // Agents start adjacent: constant coupling, movement conflicts, and
  // object contention — the stress case for cluster-atomic commits.
  world::GridMap map(12, 12);
  map.add_object("fountain", Tile{6, 6});
  std::vector<Tile> starts;
  for (int i = 0; i < 6; ++i) starts.push_back(Tile{4 + i % 3, 5 + i / 3});

  llm::FakeLlmClient llm_a(7, 0);
  Env lockstep(&map, starts, wanderers(6, 7), &llm_a, env_config(false, 60));
  lockstep.run();

  llm::FakeLlmClient llm_b(7, 150);
  Env ooo(&map, starts, wanderers(6, 7), &llm_b, env_config(true, 60));
  ooo.run();

  EXPECT_EQ(lockstep.state_hash(), ooo.state_hash());
  EXPECT_GT(lockstep.world().event_count(), 0u);  // greetings happened
}

TEST(OooEquivalence, CoupledMembersRunThroughTheChainPool) {
  // Adjacent agents form multi-member clusters every step, so member
  // chains go through the Env's TaskPool. A deliberately tiny pool (1
  // chain worker for up to 8 coupled members, under 4 engine workers)
  // forces the inline-claiming path; the outcome must not change, and
  // chains must actually have flowed through the pool.
  world::GridMap map(14, 14);
  map.add_object("fountain", Tile{7, 7});
  std::vector<Tile> starts;
  for (int i = 0; i < 8; ++i) starts.push_back(Tile{5 + i % 4, 6 + i / 4});

  llm::FakeLlmClient llm_lockstep(21, 0);
  EnvConfig lockstep_cfg = env_config(/*ooo=*/false, 50);
  lockstep_cfg.pool_workers = 1;
  Env lockstep(&map, starts, wanderers(8, 21), &llm_lockstep, lockstep_cfg);
  lockstep.run();

  llm::FakeLlmClient llm_ooo(21, 120);
  EnvConfig ooo_cfg = env_config(/*ooo=*/true, 50);
  ooo_cfg.pool_workers = 1;
  Env ooo(&map, starts, wanderers(8, 21), &llm_ooo, ooo_cfg);
  ooo.run();

  EXPECT_EQ(lockstep.state_hash(), ooo.state_hash());
  const auto stats = ooo.chain_pool().stats();
  EXPECT_GT(stats.tasks_executed + stats.tasks_inlined, 0u);
  EXPECT_GT(stats.tasks_inlined, 0u);  // the 1-worker pool needed help
  EXPECT_EQ(ooo.chain_pool().workers(), 1);
}

TEST(Runtime, EngineRunsOnAnExternalTaskPool) {
  // Two consecutive engine runs share one externally-owned pool — the
  // multi-pool extension point EngineConfig::pool exists for. Outcomes
  // must match a private-pool run.
  const auto map = arena_map();
  runtime::TaskPool shared(3);
  std::uint64_t hashes[2];
  for (int run = 0; run < 2; ++run) {
    llm::FakeLlmClient llm(5, 50);
    world::WorldState world(&map, spread_starts(6));
    runtime::EngineConfig cfg;
    cfg.params = core::DependencyParams{4.0, 1.0};
    cfg.target_step = 30;
    cfg.n_workers = 3;
    cfg.kv_instrumentation = false;
    cfg.pool = &shared;
    std::vector<std::unique_ptr<Agent>> agents = wanderers(6, 5);
    auto step_fn = [&](const core::AgentCluster& cluster,
                       const world::WorldState& w) {
      std::vector<world::StepIntent> intents;
      for (AgentId m : cluster.members) {
        Observation obs;
        obs.self = m;
        obs.step = cluster.step;
        {
          aimetro::common::ReaderLock lock(w.mutex());
          obs.position = w.tile_of(m);
        }
        obs.map = &map;
        world::StepIntent intent =
            agents[static_cast<std::size_t>(m)]->proceed(obs, llm);
        intent.agent = m;
        intents.push_back(intent);
      }
      return intents;
    };
    runtime::Engine engine(&world, cfg, step_fn);
    const auto stats = engine.run();
    EXPECT_EQ(stats.agent_steps, 6u * 30u);
    hashes[run] = world.state_hash();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_GT(shared.stats().tasks_executed, 0u);
}

TEST(Runtime, EngineRefusesBoundedExternalPools) {
  // Dispatch happens under the engine lock; a bounded pool's
  // backpressure could deadlock the dispatcher against its own workers,
  // so the engine must reject bounded pools loudly at construction.
  const auto map = arena_map();
  world::WorldState world(&map, spread_starts(4));
  runtime::TaskPoolConfig pool_cfg;
  pool_cfg.n_workers = 2;
  pool_cfg.max_queued = 1;
  runtime::TaskPool bounded(pool_cfg);
  runtime::EngineConfig cfg;
  cfg.params = core::DependencyParams{4.0, 1.0};
  cfg.pool = &bounded;
  auto step_fn = [](const core::AgentCluster&, const world::WorldState&) {
    return std::vector<world::StepIntent>{};
  };
  EXPECT_THROW(runtime::Engine(&world, cfg, step_fn), CheckError);
}

TEST(Runtime, StepFnExceptionPropagatesOutOfRun) {
  // A throwing StepFn used to terminate() the process from a worker
  // thread; the pool captures it and run() rethrows after draining.
  const auto map = arena_map();
  world::WorldState world(&map, spread_starts(4));
  runtime::EngineConfig cfg;
  cfg.params = core::DependencyParams{4.0, 1.0};
  cfg.target_step = 20;
  cfg.n_workers = 2;
  cfg.kv_instrumentation = false;
  std::atomic<int> calls{0};
  runtime::Engine engine(
      &world, cfg,
      [&](const core::AgentCluster& cluster,
          const world::WorldState&) -> std::vector<world::StepIntent> {
        if (calls.fetch_add(1) == 5) {
          throw std::runtime_error("agent exploded");
        }
        std::vector<world::StepIntent> intents;
        for (AgentId m : cluster.members) {
          world::StepIntent intent;
          intent.agent = m;
          intents.push_back(intent);
        }
        return intents;
      });
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Runtime, PatrolAgentsMeetDeterministically) {
  world::GridMap map(40, 5);
  std::vector<std::unique_ptr<Agent>> agents;
  agents.push_back(std::make_unique<PatrolAgent>(Tile{0, 2}, Tile{39, 2}));
  agents.push_back(std::make_unique<PatrolAgent>(Tile{39, 2}, Tile{0, 2}));
  llm::FakeLlmClient llm(1);
  Env env(&map, {Tile{0, 2}, Tile{39, 2}}, std::move(agents), &llm,
          env_config(true, 50, 2));
  env.run();
  // They pass each other: positions must have swapped sides.
  EXPECT_GT(env.world().tile_of(0).x, 20);
  EXPECT_LT(env.world().tile_of(1).x, 20);
  EXPECT_EQ(llm.calls(), 0u);  // patrol agents never call the LLM
}

TEST(Runtime, KvMirrorsFinalWorldState) {
  const auto map = arena_map();
  llm::FakeLlmClient llm(12, 0);
  world::WorldState world(&map, spread_starts(5));
  runtime::EngineConfig cfg;
  cfg.params = core::DependencyParams{4.0, 1.0};
  cfg.target_step = 25;
  cfg.n_workers = 3;
  cfg.kv_instrumentation = true;
  std::vector<std::unique_ptr<Agent>> agents = wanderers(5, 12);
  // Drive the engine directly (below the gym layer) to test kv mirroring.
  auto step_fn = [&](const core::AgentCluster& cluster,
                     const world::WorldState& w) {
    std::vector<world::StepIntent> intents;
    for (AgentId m : cluster.members) {
      Observation obs;
      obs.self = m;
      obs.step = cluster.step;
      {
        aimetro::common::ReaderLock lock(w.mutex());
        obs.position = w.tile_of(m);
      }
      obs.map = &map;
      world::StepIntent intent =
          agents[static_cast<std::size_t>(m)]->proceed(obs, llm);
      intent.agent = m;
      intents.push_back(intent);
    }
    return intents;
  };
  runtime::Engine engine(&world, cfg, step_fn);
  const auto stats = engine.run();
  EXPECT_EQ(stats.agent_steps, 5u * 25u);
  EXPECT_GT(stats.clusters_executed, 0u);
  EXPECT_GT(stats.kv_transactions, 0u);

  // kv agent rows agree with the final world.
  for (AgentId a = 0; a < 5; ++a) {
    const std::string key = "agent:" + std::to_string(a);
    EXPECT_EQ(engine.store().hget(key, "step").value(), "25");
    EXPECT_EQ(engine.store().hget(key, "x").value(),
              std::to_string(world.tile_of(a).x));
    EXPECT_EQ(engine.store().hget(key, "y").value(),
              std::to_string(world.tile_of(a).y));
  }
  EXPECT_EQ(engine.store().get("stats:agent_steps").value(), "125");
  EXPECT_EQ(engine.store().llen("log:commits"), stats.clusters_executed);
  // Scoreboard finished cleanly.
  EXPECT_TRUE(engine.scoreboard().all_done());
  engine.scoreboard().check_invariants();
}

TEST(Runtime, ShardedCommitsRunConcurrentlyAndReportContention) {
  // The commit-lock split: workers preparing moves (step_fn + world
  // commit) must proceed while another worker holds the scoreboard commit
  // lock. 16 far-apart wanderers give 16 independent clusters; a slow
  // step_fn keeps many in flight at once, so commits genuinely interleave
  // across 8 workers (TSan races this path in CI). The run must complete
  // every agent-step and surface the new contention counters.
  world::GridMap map(100, 100);
  std::vector<Tile> starts;
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < 16; ++i) {
    starts.push_back(Tile{5 + (i % 4) * 25, 5 + (i / 4) * 25});
    agents.push_back(std::make_unique<WandererAgent>(i * 17u));
  }
  world::WorldState world(&map, starts);
  runtime::EngineConfig cfg;
  cfg.params = core::DependencyParams{4.0, 1.0};
  cfg.target_step = 20;
  cfg.n_workers = 8;
  cfg.kv_instrumentation = true;  // kv mirror now runs outside the lock
  llm::FakeLlmClient llm(5, /*latency_us=*/200);
  auto step_fn = [&](const core::AgentCluster& cluster,
                     const world::WorldState& w) {
    std::vector<world::StepIntent> intents;
    for (AgentId m : cluster.members) {
      Observation obs;
      obs.self = m;
      obs.step = cluster.step;
      {
        aimetro::common::ReaderLock lock(w.mutex());
        obs.position = w.tile_of(m);
      }
      obs.map = &map;
      world::StepIntent intent =
          agents[static_cast<std::size_t>(m)]->proceed(obs, llm);
      intent.agent = m;
      intents.push_back(intent);
    }
    return intents;
  };
  runtime::Engine engine(&world, cfg, step_fn);
  const auto stats = engine.run();
  EXPECT_EQ(stats.agent_steps, 16u * 20u);
  EXPECT_EQ(stats.commits, stats.clusters_executed);
  EXPECT_GT(stats.commits, 0u);
  // Wait/hold are measured per commit; the worst single wait can never be
  // smaller than the average wait.
  EXPECT_GE(stats.max_commit_wait_us, stats.commit_wait_us / stats.commits);
  EXPECT_TRUE(engine.scoreboard().all_done());
  engine.scoreboard().check_invariants();
}

TEST(Runtime, BoundaryLagProtocolMatchesGlobalLockUnderConcurrency) {
  // The tentpole guarantee at the engine layer: shards=8 (interior
  // commits striped across per-shard locks, cross-shard commits
  // escalating to the exclusive topology lock) must produce exactly the
  // world shards=1 (the old global commit lock) produces, under real
  // thread interleavings. A wide map keeps most strips interior; slow
  // fake-LLM calls keep many clusters in flight so interior commits in
  // different strips genuinely overlap (TSan races this path in CI).
  world::GridMap map(400, 12);
  std::vector<Tile> starts;
  for (int i = 0; i < 24; ++i) {
    starts.push_back(Tile{8 + i * 15, 2 + (i % 3) * 4});
  }
  std::uint64_t hashes[2];
  int idx = 0;
  for (const std::int32_t shards : {1, 8}) {
    std::vector<std::unique_ptr<Agent>> agents;
    for (int i = 0; i < 24; ++i) {
      agents.push_back(
          std::make_unique<WandererAgent>(1000 + static_cast<std::uint64_t>(i) * 17));
    }
    world::WorldState world(&map, starts);
    llm::FakeLlmClient llm(5, /*latency_us=*/150);
    runtime::EngineConfig cfg;
    cfg.params = core::DependencyParams{4.0, 1.0};
    cfg.target_step = 15;
    cfg.n_workers = 8;
    cfg.shards = shards;
    auto step_fn = [&](const core::AgentCluster& cluster,
                       const world::WorldState& w) {
      std::vector<world::StepIntent> intents;
      for (AgentId m : cluster.members) {
        Observation obs;
        obs.self = m;
        obs.step = cluster.step;
        {
          aimetro::common::ReaderLock lock(w.mutex());
          obs.position = w.tile_of(m);
        }
        obs.map = &map;
        world::StepIntent intent =
            agents[static_cast<std::size_t>(m)]->proceed(obs, llm);
        intent.agent = m;
        intents.push_back(intent);
      }
      return intents;
    };
    runtime::Engine engine(&world, cfg, step_fn);
    const auto stats = engine.run();
    EXPECT_EQ(engine.shards(), shards);
    EXPECT_EQ(stats.agent_steps, 24u * 15u);
    EXPECT_EQ(stats.commits, stats.clusters_executed);
    const auto rows = engine.shard_commit_stats();
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(shards) + 1);
    std::uint64_t row_commits = 0;
    std::uint64_t interior_commits = 0;
    for (std::size_t s = 0; s < rows.size(); ++s) {
      row_commits += rows[s].commits;
      if (s + 1 < rows.size()) interior_commits += rows[s].commits;
    }
    EXPECT_EQ(row_commits, stats.commits);
    if (shards > 1) {
      // The wide map must actually yield interior (striped) commits —
      // otherwise this test exercises nothing beyond shards=1.
      EXPECT_GT(interior_commits, 0u);
    }
    EXPECT_TRUE(engine.scoreboard().all_done());
    engine.scoreboard().check_invariants();
    {
      aimetro::common::ReaderLock lock(world.mutex());
      hashes[idx++] = world.state_hash();
    }
  }
  EXPECT_EQ(hashes[0], hashes[1])
      << "sharded commits diverged from the global-lock reference";
}

TEST(Runtime, EpisodeReshardRebalancesWithoutChangingTheWorld) {
  // Adaptive partitioning at the engine layer: a hotspot crowd (18 of 24
  // wanderers in the west quarter of a wide map) run under three
  // settings — static equal-width strips, population-quantile strips,
  // and equal-width with one mid-run contention-driven reshard plus
  // core-pinned strip pools — must produce identical final worlds.
  // The reshard setting must genuinely fire: one reshard counted, and a
  // non-uniform partition left behind.
  world::GridMap map(400, 12);
  std::vector<Tile> starts;
  for (int i = 0; i < 18; ++i) {
    starts.push_back(Tile{5 + (i % 6) * 15, 1 + (i / 6) * 4});
  }
  for (int i = 0; i < 6; ++i) {
    starts.push_back(Tile{120 + i * 45, 6});
  }
  struct Setting {
    world::PartitionKind partition;
    bool reshard;
    bool pin;
  };
  const Setting settings[] = {
      {world::PartitionKind::kEqualWidth, false, false},
      {world::PartitionKind::kEqualPopulation, false, false},
      {world::PartitionKind::kEqualWidth, true, true},
  };
  std::uint64_t hashes[3];
  int idx = 0;
  for (const Setting& setting : settings) {
    std::vector<std::unique_ptr<Agent>> agents;
    for (int i = 0; i < 24; ++i) {
      agents.push_back(std::make_unique<WandererAgent>(
          2000 + static_cast<std::uint64_t>(i) * 17));
    }
    world::WorldState world(&map, starts);
    llm::FakeLlmClient llm(5, /*latency_us=*/150);
    runtime::EngineConfig cfg;
    cfg.params = core::DependencyParams{4.0, 1.0};
    cfg.target_step = 15;
    cfg.n_workers = 8;
    cfg.shards = 8;
    cfg.partition = setting.partition;
    if (setting.reshard) cfg.reshard_at = {8};
    cfg.pin_cores = setting.pin;
    auto step_fn = [&](const core::AgentCluster& cluster,
                       const world::WorldState& w) {
      std::vector<world::StepIntent> intents;
      for (AgentId m : cluster.members) {
        Observation obs;
        obs.self = m;
        obs.step = cluster.step;
        {
          aimetro::common::ReaderLock lock(w.mutex());
          obs.position = w.tile_of(m);
        }
        obs.map = &map;
        world::StepIntent intent =
            agents[static_cast<std::size_t>(m)]->proceed(obs, llm);
        intent.agent = m;
        intents.push_back(intent);
      }
      return intents;
    };
    runtime::Engine engine(&world, cfg, step_fn);
    const auto stats = engine.run();
    EXPECT_EQ(stats.agent_steps, 24u * 15u);
    if (setting.reshard) {
      EXPECT_EQ(stats.reshards, 1u);
      EXPECT_FALSE(engine.scoreboard().partition().uniform());
    } else {
      EXPECT_EQ(stats.reshards, 0u);
    }
    if (setting.partition == world::PartitionKind::kEqualPopulation) {
      EXPECT_FALSE(engine.scoreboard().partition().uniform());
    }
    EXPECT_TRUE(engine.scoreboard().all_done());
    engine.scoreboard().check_invariants();
    {
      aimetro::common::ReaderLock lock(world.mutex());
      hashes[idx++] = world.state_hash();
    }
  }
  EXPECT_EQ(hashes[0], hashes[1])
      << "population partition diverged from equal-width";
  EXPECT_EQ(hashes[0], hashes[2])
      << "episode reshard diverged from the static partition";
}

TEST(Runtime, ScanModesProduceIdenticalGymWorlds) {
  // Indexed vs brute scoreboards must drive the OOO engine to the same
  // final world — the engine-side half of the differential guarantee.
  const auto map = arena_map();
  std::uint64_t hashes[2] = {0, 0};
  const core::ScanMode modes[2] = {core::ScanMode::kIndexed,
                                   core::ScanMode::kBruteForce};
  for (int i = 0; i < 2; ++i) {
    llm::FakeLlmClient llm(9, 0);
    EnvConfig cfg = env_config(true, 40, 4);
    cfg.scan_mode = modes[i];
    Env env(&map, spread_starts(8), wanderers(8, 9), &llm, cfg);
    const auto stats = env.run();
    EXPECT_EQ(stats.agent_steps, 8u * 40u);
    EXPECT_GT(env.scoreboard_stats().clusters_dispatched, 0u);
    hashes[i] = env.state_hash();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(Runtime, ScalesToManyAgentsQuickly) {
  world::GridMap map(60, 60);
  std::vector<Tile> starts;
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < 24; ++i) {
    starts.push_back(Tile{2 + (i % 6) * 10, 2 + (i / 6) * 10});
    agents.push_back(std::make_unique<WandererAgent>(i * 31u));
  }
  llm::FakeLlmClient llm(3, 50);
  Env env(&map, starts, std::move(agents), &llm, env_config(true, 30, 8));
  const auto stats = env.run();
  EXPECT_EQ(stats.agent_steps, 24u * 30u);
}

}  // namespace
}  // namespace aimetro::gym
