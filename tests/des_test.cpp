#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "des/event_loop.h"

namespace aimetro::des {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, TiesBreakInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NestedSchedulingAdvancesClock) {
  EventLoop loop;
  std::vector<SimTime> times;
  loop.schedule_after(5, [&] {
    times.push_back(loop.now());
    loop.schedule_after(7, [&] {
      times.push_back(loop.now());
      loop.schedule_after(0, [&] { times.push_back(loop.now()); });
    });
  });
  loop.run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 12, 12}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  int fired = 0;
  const EventId id = loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(5, [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // already cancelled
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(loop.cancel(id));  // nothing pending
}

TEST(EventLoop, CancelFromWithinEvent) {
  EventLoop loop;
  int fired = 0;
  const EventId victim = loop.schedule_at(20, [&] { ++fired; });
  loop.schedule_at(10, [&] { EXPECT_TRUE(loop.cancel(victim)); });
  loop.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> seen;
  loop.schedule_at(10, [&] { seen.push_back(10); });
  loop.schedule_at(20, [&] { seen.push_back(20); });
  loop.schedule_at(30, [&] { seen.push_back(30); });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(seen, (std::vector<int>{10, 20}));
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(seen.back(), 30);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoop, StopHaltsProcessing) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1, [&] {
    ++fired;
    loop.stop();
  });
  loop.schedule_at(2, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  loop.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RejectsPastAndNegative) {
  EventLoop loop;
  loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5, [] {}), CheckError);
  EXPECT_THROW(loop.schedule_after(-1, [] {}), CheckError);
}

TEST(EventLoop, ProcessedCountExcludesCancelled) {
  EventLoop loop;
  const EventId a = loop.schedule_at(1, [] {});
  loop.schedule_at(2, [] {});
  loop.cancel(a);
  loop.run();
  EXPECT_EQ(loop.processed(), 1u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, ManyEventsStressOrdering) {
  EventLoop loop;
  SimTime last = -1;
  for (int i = 0; i < 10000; ++i) {
    loop.schedule_at((i * 7919) % 1000, [&, i] {
      ASSERT_GE(loop.now(), last);
      last = loop.now();
    });
  }
  EXPECT_EQ(loop.run(), 10000u);
}

}  // namespace
}  // namespace aimetro::des
