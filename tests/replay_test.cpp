#include <gtest/gtest.h>

#include "replay/experiment.h"
#include "trace/generator.h"
#include "world/grid_map.h"

namespace aimetro::replay {
namespace {

const trace::SimulationTrace& small_busy_trace() {
  static const trace::SimulationTrace trace = [] {
    const auto map = world::GridMap::smallville(10);
    trace::GeneratorConfig cfg;
    cfg.n_agents = 10;
    cfg.seed = 2024;
    auto full = trace::generate(map, cfg);
    return trace::slice(full, 4320, 4500);  // 180 busy steps
  }();
  return trace;
}

ExperimentConfig base_config(Mode mode, std::int32_t gpus = 2) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.parallelism = llm::ParallelismConfig{1, gpus};
  return cfg;
}

ExperimentResult run(Mode mode, std::int32_t gpus = 2) {
  return run_experiment(small_busy_trace(), base_config(mode, gpus));
}

TEST(Replay, AllModesCompleteAllCalls) {
  const auto total = small_busy_trace().total_calls();
  for (Mode mode : {Mode::kSingleThread, Mode::kParallelSync,
                    Mode::kMetropolis, Mode::kOracle, Mode::kNoDependency}) {
    const auto r = run(mode);
    EXPECT_EQ(r.total_calls, total) << mode_name(mode);
    EXPECT_GT(r.completion_seconds, 0.0) << mode_name(mode);
    EXPECT_GT(r.des_events, 0u) << mode_name(mode);
  }
}

TEST(Replay, PerformanceOrderingHolds) {
  // critical <= oracle <= metropolis <= parallel-sync <= single-thread
  // (§4's qualitative ordering). Modest slack for scheduling noise.
  const double critical = run(Mode::kCritical).completion_seconds;
  const double oracle = run(Mode::kOracle).completion_seconds;
  const double metropolis = run(Mode::kMetropolis).completion_seconds;
  const double sync = run(Mode::kParallelSync).completion_seconds;
  const double single = run(Mode::kSingleThread).completion_seconds;
  const double nodep = run(Mode::kNoDependency).completion_seconds;
  EXPECT_LE(critical, oracle * 1.02);
  EXPECT_LE(oracle, metropolis * 1.05);
  EXPECT_LE(metropolis, sync * 1.02);
  EXPECT_LE(sync, single * 1.02);
  EXPECT_LE(nodep, oracle * 1.02);  // resource bound below dependency bound
}

TEST(Replay, DeterministicAcrossRuns) {
  for (Mode mode : {Mode::kMetropolis, Mode::kOracle, Mode::kParallelSync}) {
    const auto a = run(mode);
    const auto b = run(mode);
    EXPECT_DOUBLE_EQ(a.completion_seconds, b.completion_seconds)
        << mode_name(mode);
    EXPECT_EQ(a.des_events, b.des_events) << mode_name(mode);
    EXPECT_DOUBLE_EQ(a.avg_parallelism, b.avg_parallelism) << mode_name(mode);
  }
}

TEST(Replay, MetropolisBeatsSyncAndApproachesOracle) {
  const auto sync = run(Mode::kParallelSync, 4);
  const auto metro = run(Mode::kMetropolis, 4);
  const auto oracle = run(Mode::kOracle, 4);
  EXPECT_LT(metro.completion_seconds, sync.completion_seconds);
  const double frac = oracle.completion_seconds / metro.completion_seconds;
  EXPECT_GT(frac, 0.4);  // within the band the paper reports (53%-100%)
  EXPECT_LE(frac, 1.0 + 1e-9);
  EXPECT_GT(metro.avg_parallelism, sync.avg_parallelism);
}

TEST(Replay, MoreGpusNeverSlower) {
  for (Mode mode : {Mode::kParallelSync, Mode::kMetropolis}) {
    const auto g1 = run(mode, 1);
    const auto g8 = run(mode, 8);
    EXPECT_LE(g8.completion_seconds, g1.completion_seconds * 1.01)
        << mode_name(mode);
  }
}

TEST(Replay, SingleThreadParallelismIsOne) {
  const auto r = run(Mode::kSingleThread);
  EXPECT_NEAR(r.avg_parallelism, 1.0, 0.1);
}

TEST(Replay, MetropolisInvariantsHoldDuringReplay) {
  auto cfg = base_config(Mode::kMetropolis);
  cfg.validate_invariants = true;  // O(n^2) causality check at every commit
  const auto r = run_experiment(small_busy_trace(), cfg);
  EXPECT_GT(r.scoreboard.commits, 0u);
  EXPECT_GT(r.scoreboard.clusters_dispatched, 0u);
  EXPECT_GE(r.scoreboard.mean_cluster_size(), 1.0);
  EXPECT_GT(r.mean_blockers, 0.0);
  EXPECT_LT(r.mean_blockers, 10.0);  // sparse, as §2.2 measures
}

TEST(Replay, PrioritySchedulingHelpsMetropolis) {
  // Table 1: priority scheduling speeds metropolis up (or at least never
  // hurts) under contention.
  auto with = base_config(Mode::kMetropolis, 1);
  auto without = base_config(Mode::kMetropolis, 1);
  without.cluster.priority_scheduling = false;
  const auto rw = run_experiment(small_busy_trace(), with);
  const auto ro = run_experiment(small_busy_trace(), without);
  EXPECT_LE(rw.completion_seconds, ro.completion_seconds * 1.02);
}

TEST(Replay, GanttRecordsMatchCalls) {
  auto cfg = base_config(Mode::kParallelSync);
  cfg.record_gantt = true;
  const auto r = run_experiment(small_busy_trace(), cfg);
  EXPECT_EQ(r.gantt.size(), r.total_calls);
  for (const auto& rec : r.gantt) {
    EXPECT_GE(rec.finish, rec.submit);
    EXPECT_GE(rec.agent, 0);
    EXPECT_LT(rec.agent, small_busy_trace().n_agents);
  }
  // Step marks exist for lock-step runs (the Figure 1 dashed lines).
  EXPECT_EQ(r.step_completion_times.size(),
            static_cast<std::size_t>(small_busy_trace().n_steps));
  const std::string art = render_gantt_ascii(
      r.gantt, small_busy_trace().n_agents, 0,
      sim_time_from_seconds(r.completion_seconds), 80,
      r.step_completion_times);
  EXPECT_NE(art.find("agent"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Replay, WorkerLimitThrottlesMetropolis) {
  auto unlimited = base_config(Mode::kMetropolis, 8);
  auto throttled = base_config(Mode::kMetropolis, 8);
  throttled.max_concurrent_clusters = 1;  // a single worker
  const auto ru = run_experiment(small_busy_trace(), unlimited);
  const auto rt = run_experiment(small_busy_trace(), throttled);
  EXPECT_GT(rt.completion_seconds, ru.completion_seconds);
}

TEST(Replay, CriticalPathReportsChainOnly) {
  const auto r = run(Mode::kCritical);
  EXPECT_GT(r.total_calls, 0u);
  EXPECT_LT(r.total_calls, small_busy_trace().total_calls());
  EXPECT_NEAR(r.avg_parallelism, 1.0, 0.05);
}

TEST(Replay, PrefixCacheAblationGains) {
  // §4.1: enabling the prefix cache yields roughly a 20% throughput gain.
  auto off = base_config(Mode::kMetropolis, 2);
  auto on = base_config(Mode::kMetropolis, 2);
  on.cluster.replica.prefix_cache = true;
  const auto r_off = run_experiment(small_busy_trace(), off);
  const auto r_on = run_experiment(small_busy_trace(), on);
  EXPECT_LT(r_on.completion_seconds, r_off.completion_seconds);
  EXPECT_GT(r_on.prefix_cache_hits, 0u);
  EXPECT_EQ(r_off.prefix_cache_hits, 0u);
}

TEST(Replay, QuietHourIsCheaperThanBusyHour) {
  const auto map = world::GridMap::smallville(10);
  trace::GeneratorConfig gcfg;
  gcfg.n_agents = 10;
  gcfg.seed = 5;
  const auto full = trace::generate(map, gcfg);
  const auto busy = trace::slice(full, 4320, 4500);
  const auto quiet = trace::slice(full, 2160, 2340);
  const auto cfg = base_config(Mode::kMetropolis);
  const auto rb = run_experiment(busy, cfg);
  const auto rq = run_experiment(quiet, cfg);
  EXPECT_LT(rq.completion_seconds, rb.completion_seconds);
}

TEST(Replay, SummaryStringsAreReadable) {
  const auto r = run(Mode::kMetropolis);
  const std::string s = r.summary();
  EXPECT_NE(s.find("metropolis"), std::string::npos);
  EXPECT_NE(s.find("completion"), std::string::npos);
  EXPECT_STREQ(mode_name(Mode::kNoDependency), "no-dependency");
}

}  // namespace
}  // namespace aimetro::replay
