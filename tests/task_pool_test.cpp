#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.h"
#include "runtime/task_pool.h"

namespace aimetro::runtime {
namespace {

TEST(TaskPool, RunsEverySubmittedTask) {
  TaskPool pool(4);
  std::atomic<int> sum{0};
  std::vector<TaskPool::Handle> handles;
  for (int i = 1; i <= 100; ++i) {
    handles.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (const auto& h : handles) h.wait();
  EXPECT_EQ(sum.load(), 5050);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed + stats.tasks_inlined, 100u);
  EXPECT_GE(stats.peak_in_flight, 1u);
}

TEST(TaskPool, PriorityOrdersTheBacklog) {
  // One worker, blocked by a gate task while the backlog builds up: the
  // queued tasks must then run in ascending priority order (FIFO within
  // equal priority), the rule the engine relies on for earliest-step-first
  // dispatch.
  TaskPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  TaskPool::Handle gate_handle = pool.submit([open] { open.wait(); });

  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<TaskPool::Handle> handles;
  for (int priority : {5, 1, 3, 1}) {
    handles.push_back(pool.submit(priority, [&order_mutex, &order, priority] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(priority);
    }));
  }
  gate.set_value();
  for (const auto& h : handles) h.wait();
  gate_handle.wait();
  EXPECT_EQ(order, (std::vector<int>{1, 1, 3, 5}));
}

TEST(TaskPool, HandleWaitRethrowsTheTaskException) {
  TaskPool pool(2);
  TaskPool::Handle ok = pool.submit([] {});
  TaskPool::Handle boom =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.wait());
  EXPECT_THROW(boom.wait(), std::runtime_error);
  // The pool survives a throwing task; later work still runs.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).wait();
  EXPECT_TRUE(ran.load());
}

TEST(TaskPool, SubmitAndWaitRethrowsAfterTheBatchSettles) {
  TaskPool pool(2);
  std::atomic<int> completed{0};
  std::vector<TaskPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&completed, i]() {
      if (i == 3) throw std::invalid_argument("bad member");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.submit_and_wait(std::move(tasks)), std::invalid_argument);
  // Every non-throwing member of the batch still ran to completion.
  EXPECT_EQ(completed.load(), 7);
}

TEST(TaskPool, ShutdownDrainsQueuedTasks) {
  // Work accepted is work executed: tasks still queued at shutdown run
  // before the workers exit.
  std::atomic<int> ran{0};
  {
    TaskPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    pool.submit([open] { open.wait(); });
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    gate.set_value();
    // Destructor drains + joins.
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskPool, SubmitAfterShutdownIsACheckedError) {
  TaskPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), CheckError);
}

TEST(TaskPool, WaitIdleBlocksUntilAllTasksFinish) {
  TaskPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(TaskPool, NestedSubmitAndWaitCannotDeadlock) {
  // Every worker submits a sub-batch to the *same* pool and waits on it.
  // With inline claiming the waiting workers run their own sub-tasks, so
  // this completes even though the pool has no spare workers at all.
  TaskPool pool(2);
  std::atomic<int> leaf{0};
  std::vector<TaskPool::Task> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &leaf] {
      std::vector<TaskPool::Task> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back([&leaf] { leaf.fetch_add(1); });
      }
      pool.submit_and_wait(std::move(inner));
    });
  }
  pool.submit_and_wait(std::move(outer));
  EXPECT_EQ(leaf.load(), 16);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed + stats.tasks_inlined, 20u);
}

TEST(TaskPool, BoundedQueueAppliesBackpressureToExternalSubmitters) {
  TaskPoolConfig cfg;
  cfg.n_workers = 1;
  cfg.max_queued = 1;
  TaskPool pool(cfg);

  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  pool.submit([open] { open.wait(); });  // occupies the only worker
  pool.submit([] {});                    // fills the one queue slot

  std::atomic<bool> third_submitted{false};
  std::thread submitter([&pool, &third_submitted] {
    pool.submit([] {});  // must block until the worker drains a slot
    third_submitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_submitted.load());
  gate.set_value();
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  pool.wait_idle();
}

TEST(TaskPool, PeakInFlightTracksTheBacklogHighWaterMark) {
  TaskPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  pool.submit([open] { open.wait(); });
  for (int i = 0; i < 7; ++i) pool.submit([] {});
  gate.set_value();
  pool.wait_idle();
  EXPECT_EQ(pool.stats().peak_in_flight, 8u);
}

TEST(TaskPool, DerivedPoolSizeDoublesTheWorkerCount) {
  EXPECT_EQ(derive_pool_workers(1), 2);
  EXPECT_EQ(derive_pool_workers(4), 8);
}

TEST(TaskPool, ManyProducersManyTasks) {
  // Hammer the queue from several producer threads at mixed priorities;
  // every task must run exactly once.
  TaskPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &ran, p] {
      for (int i = 0; i < 250; ++i) {
        pool.submit(/*priority=*/(p + i) % 3, [&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1000);
}

}  // namespace
}  // namespace aimetro::runtime
