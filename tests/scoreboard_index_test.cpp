// Differential tests for the spatial-index-backed scoreboard.
//
// ScanMode::kIndexed must be observably indistinguishable from the
// brute-force full-scan reference: identical ready-cluster sequences,
// identical edges, identical statistics, for any pop/commit schedule.
// These tests drive an indexed and a brute scoreboard through the exact
// same randomized executor loop and compare the complete observable
// state after every commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/metric.h"
#include "core/scoreboard.h"

namespace aimetro::core {
namespace {

std::shared_ptr<const Metric> metric_by_name(const std::string& name) {
  if (name == "euclidean") return std::make_shared<EuclideanMetric>();
  if (name == "manhattan") return std::make_shared<ManhattanMetric>();
  if (name == "chebyshev") return std::make_shared<ChebyshevMetric>();
  ADD_FAILURE() << "unknown metric " << name;
  return nullptr;
}

/// Every externally observable bit of one agent's state.
void expect_agents_equal(const Scoreboard& a, const Scoreboard& b) {
  ASSERT_EQ(a.agent_count(), b.agent_count());
  for (std::size_t i = 0; i < a.agent_count(); ++i) {
    const auto id = static_cast<AgentId>(i);
    ASSERT_EQ(a.step_of(id), b.step_of(id)) << "agent " << id;
    ASSERT_EQ(a.pos_of(id), b.pos_of(id)) << "agent " << id;
    ASSERT_EQ(a.status_of(id), b.status_of(id)) << "agent " << id;
    ASSERT_EQ(a.blockers_of(id), b.blockers_of(id)) << "agent " << id;
    ASSERT_EQ(a.cluster_of(id), b.cluster_of(id)) << "agent " << id;
  }
  ASSERT_EQ(a.min_step(), b.min_step());
  ASSERT_EQ(a.mean_blockers(), b.mean_blockers());
  const ScoreboardStats& sa = a.stats();
  const ScoreboardStats& sb = b.stats();
  ASSERT_EQ(sa.clusters_dispatched, sb.clusters_dispatched);
  ASSERT_EQ(sa.commits, sb.commits);
  ASSERT_EQ(sa.edges_added, sb.edges_added);
  ASSERT_EQ(sa.edges_removed, sb.edges_removed);
  ASSERT_EQ(sa.max_concurrent_running, sb.max_concurrent_running);
  ASSERT_EQ(sa.sum_cluster_sizes, sb.sum_cluster_sizes);
}

struct DiffParam {
  int n_agents;
  double spread;  // initial max coordinate
  Step target;
  std::uint64_t seed;
  DependencyParams params;
  const char* metric;
};

class ScoreboardDifferential : public ::testing::TestWithParam<DiffParam> {};

TEST_P(ScoreboardDifferential, IndexedMatchesBruteForceAtEveryCommit) {
  const DiffParam p = GetParam();
  Rng rng(p.seed);
  std::vector<Pos> initial;
  for (int i = 0; i < p.n_agents; ++i) {
    initial.push_back(
        Pos{rng.uniform(0.0, p.spread), rng.uniform(0.0, p.spread)});
  }
  const auto metric = metric_by_name(p.metric);
  Scoreboard indexed(p.params, metric, initial, p.target, ScanMode::kIndexed);
  Scoreboard brute(p.params, metric, initial, p.target,
                   ScanMode::kBruteForce);
  expect_agents_equal(indexed, brute);

  // One executor loop drives both boards: the ready sequences are equal
  // (asserted), so shuffled commit picks and randomized moves hit both
  // identically. Out-of-order pressure comes from committing a random
  // in-flight cluster each round, which builds up real lag spreads.
  std::vector<AgentCluster> in_flight;
  std::uint64_t commits = 0;
  while (!indexed.all_done()) {
    auto ready_i = indexed.pop_ready_clusters();
    const auto ready_b = brute.pop_ready_clusters();
    ASSERT_EQ(ready_i.size(), ready_b.size());
    for (std::size_t k = 0; k < ready_i.size(); ++k) {
      ASSERT_EQ(ready_i[k].step, ready_b[k].step);
      ASSERT_EQ(ready_i[k].members, ready_b[k].members);
    }
    for (auto& c : ready_i) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty()) << "scheduler stalled";
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = indexed.pos_of(m);
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      const double dist = rng.uniform(0.0, p.params.max_vel);
      // Chebyshev displacement of a unit vector can exceed 1 only for
      // Euclidean; scale so every metric sees a legal move.
      const double scale =
          std::string(p.metric) == "euclidean" ? 1.0 : 0.5;
      pos.x += std::cos(angle) * dist * scale;
      pos.y += std::sin(angle) * dist * scale;
      moves.emplace_back(m, pos);
    }
    indexed.commit(moves);
    brute.commit(moves);
    ++commits;
    expect_agents_equal(indexed, brute);
    if (commits % 11 == 0) {
      indexed.check_invariants();
      brute.check_invariants();
    }
  }
  EXPECT_TRUE(brute.all_done());
  EXPECT_EQ(indexed.min_step(), p.target);
  indexed.check_invariants();
  brute.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScoreboardDifferential,
    ::testing::Values(
        // Dense coupling: big clusters, lots of merging.
        DiffParam{24, 30.0, 20, 11, DependencyParams{4.0, 1.0}, "euclidean"},
        // Sparse: independence, long lag spreads, tight radius bound.
        DiffParam{40, 400.0, 25, 12, DependencyParams{4.0, 1.0}, "euclidean"},
        // Mixed occupancy, different seed.
        DiffParam{64, 120.0, 15, 13, DependencyParams{4.0, 1.0}, "euclidean"},
        // Large perception radius: blocking dominates.
        DiffParam{32, 80.0, 12, 14, DependencyParams{10.0, 1.0}, "euclidean"},
        // Slow agents: lag cones grow slowly.
        DiffParam{24, 40.0, 18, 15, DependencyParams{3.0, 0.25}, "euclidean"},
        // Non-Euclidean grid metrics exercise the box-superset filter.
        DiffParam{32, 60.0, 15, 16, DependencyParams{4.0, 1.0}, "manhattan"},
        DiffParam{32, 60.0, 15, 17, DependencyParams{4.0, 1.0}, "chebyshev"},
        // Degenerate single agent.
        DiffParam{1, 5.0, 30, 18, DependencyParams{4.0, 1.0}, "euclidean"}));

TEST(ScoreboardIndex, GraphMetricFallsBackAndStillMatchesBrute) {
  // GraphMetric positions encode node ids, not coordinates, so indexed
  // mode must fall back to full scans — and remain identical to an
  // explicitly brute board. 0-1-2-3-4 chain, radius 1, no movement.
  auto metric = std::make_shared<GraphMetric>(
      std::vector<std::vector<std::int32_t>>{{1}, {0, 2}, {1, 3}, {2, 4}, {3}});
  DependencyParams params{1.0, 0.0};
  std::vector<Pos> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(Pos{static_cast<double>(i), 0});
  Scoreboard indexed(params, metric, nodes, 6, ScanMode::kIndexed);
  Scoreboard brute(params, metric, nodes, 6, ScanMode::kBruteForce);
  while (!indexed.all_done()) {
    const auto ready_i = indexed.pop_ready_clusters();
    const auto ready_b = brute.pop_ready_clusters();
    ASSERT_EQ(ready_i.size(), ready_b.size());
    for (const auto& c : ready_i) {
      std::vector<std::pair<AgentId, Pos>> moves;
      for (AgentId m : c.members) moves.emplace_back(m, indexed.pos_of(m));
      indexed.commit(moves);
      brute.commit(moves);
    }
    expect_agents_equal(indexed, brute);
  }
}

TEST(ScoreboardIndex, MinStepIsMaintainedIncrementally) {
  // min_step() is O(1) now; cross-check it against a full scan at every
  // commit of a lag-heavy schedule (one straggler pinned at step 0).
  Rng rng(21);
  std::vector<Pos> initial;
  for (int i = 0; i < 16; ++i) {
    initial.push_back(Pos{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
  }
  Scoreboard sb(DependencyParams{4.0, 1.0}, make_euclidean(), initial, 12);
  std::vector<AgentCluster> in_flight;
  while (!sb.all_done()) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty());
    // Never commit a cluster containing agent 0 until nothing else can
    // move — maximal lag spread.
    std::size_t pick = in_flight.size();
    for (std::size_t k = 0; k < in_flight.size(); ++k) {
      const auto& members = in_flight[k].members;
      if (std::find(members.begin(), members.end(), 0) == members.end()) {
        pick = k;
        break;
      }
    }
    if (pick == in_flight.size()) pick = 0;  // only agent-0 work left
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) moves.emplace_back(m, sb.pos_of(m));
    sb.commit(moves);
    Step brute_min = sb.target_step();
    for (std::size_t i = 0; i < sb.agent_count(); ++i) {
      brute_min = std::min(brute_min, sb.step_of(static_cast<AgentId>(i)));
    }
    ASSERT_EQ(sb.min_step(), brute_min);
  }
  EXPECT_EQ(sb.min_step(), 12);
}

TEST(ScoreboardIndex, ThousandAgentRunHoldsInvariants) {
  // The scale the index exists for: 1000 agents, moderately dense, run to
  // completion in indexed mode with full O(n^2) invariant checks at
  // checkpoints (causality, edge symmetry, cluster bookkeeping, index
  // consistency).
  Rng rng(31);
  std::vector<Pos> initial;
  for (int i = 0; i < 1000; ++i) {
    initial.push_back(
        Pos{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 150.0)});
  }
  Scoreboard sb(DependencyParams{4.0, 1.0}, make_euclidean(), initial, 5);
  std::vector<AgentCluster> in_flight;
  std::uint64_t commits = 0;
  while (!sb.all_done()) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty()) << "scheduler stalled";
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = sb.pos_of(m);
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      const double dist = rng.uniform(0.0, 1.0);
      pos.x += std::cos(angle) * dist;
      pos.y += std::sin(angle) * dist;
      moves.emplace_back(m, pos);
    }
    sb.commit(moves);
    if (++commits % 997 == 0) sb.check_invariants();
  }
  sb.check_invariants();
  EXPECT_EQ(sb.min_step(), 5);
  EXPECT_EQ(sb.stats().commits, commits);
  // The paper's sparsity regime: far fewer blockers than agents.
  EXPECT_LT(sb.mean_blockers(), 5.0);
}

}  // namespace
}  // namespace aimetro::core
