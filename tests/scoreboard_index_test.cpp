// Differential tests for the index-backed scoreboard scan modes.
//
// ScanMode::kIndexed (spatial-index box probes on Chebyshev-bounded
// metrics, graph-index BFS ball probes on hop metrics) must be observably
// indistinguishable from the brute-force full-scan reference. The
// randomized sweep lives in tests/support/differential.h — a reusable
// harness that drives an indexed and a brute scoreboard through one
// executor loop and compares the complete observable state after every
// commit, with a one-line AIMETRO_DIFF_REPRO shrink mode for failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/metric.h"
#include "core/scoreboard.h"
#include "support/differential.h"

namespace aimetro::core {
namespace {

using test_support::DiffCase;
using test_support::DiffShape;
using test_support::parse_repro;
using test_support::repro_string;
using test_support::run_differential_sweep;

/// The sweep's shape catalogue: every metric family, every density regime
/// the scheduler distinguishes. Graph shapes draw a fresh Newman-Watts
/// small-world graph per seed, so 16 seeds mean 16 different graphs.
const std::vector<DiffShape>& sweep_shapes() {
  static const std::vector<DiffShape> kShapes = {
      // Dense coupling: big clusters, lots of merging.
      {24, 30.0, 20, DependencyParams{4.0, 1.0}, "euclidean"},
      // Sparse: independence, long lag spreads, tight radius bound.
      {40, 400.0, 25, DependencyParams{4.0, 1.0}, "euclidean"},
      // Mixed occupancy.
      {64, 120.0, 15, DependencyParams{4.0, 1.0}, "euclidean"},
      // Large perception radius: blocking dominates.
      {32, 80.0, 12, DependencyParams{10.0, 1.0}, "euclidean"},
      // Slow agents: lag cones grow slowly.
      {24, 40.0, 18, DependencyParams{3.0, 0.25}, "euclidean"},
      // Non-Euclidean grid metrics exercise the box-superset filter.
      {32, 60.0, 15, DependencyParams{4.0, 1.0}, "manhattan"},
      {32, 60.0, 15, DependencyParams{4.0, 1.0}, "chebyshev"},
      // Degenerate single agent.
      {1, 5.0, 30, DependencyParams{4.0, 1.0}, "euclidean"},
      // Graph shapes exercise the BFS ball probe end to end.
      // Sparse small-world: ~1 agent per 5 nodes, 2-hop perception.
      {24, 0.0, 15, DependencyParams{2.0, 1.0}, "graph", 120, 4, 0.1},
      // Crowded: more agents than nodes, wide hop radius, heavy merging.
      {40, 0.0, 12, DependencyParams{3.0, 1.0}, "graph", 30, 6, 0.2},
      // Pure ring (no shortcuts): worst-case BFS depth, fractional radius
      // exercises the floor(r) hop bound.
      {12, 0.0, 15, DependencyParams{2.5, 1.0}, "graph", 48, 2, 0.0},
      // Immobile agents on a graph: pure blocking, no index updates.
      {16, 0.0, 20, DependencyParams{1.0, 0.0}, "graph", 64, 4, 0.1},
      // Sharded strip structure against the flat reference: wide spread
      // gives mostly-interior strips with live borders as agents drift.
      {48, 400.0, 15, DependencyParams{4.0, 1.0}, "euclidean", 0, 4, 0.1, 4},
      // Strips narrower than the blocking radius: nearly every agent is a
      // border agent and most clusters are cross-strip — the escalation
      // path must still match the flat board exactly.
      {32, 60.0, 12, DependencyParams{4.0, 1.0}, "euclidean", 0, 4, 0.1, 8},
      // Sharded non-Euclidean: box-superset probes across strip seams.
      {40, 240.0, 12, DependencyParams{4.0, 1.0}, "chebyshev", 0, 4, 0.1, 4},
      // Graph metric with shards requested: the partition must collapse
      // to one strip and behave exactly like the unsharded board.
      {24, 0.0, 12, DependencyParams{2.0, 1.0}, "graph", 120, 4, 0.1, 8},
      // Mid-run resharding: every 7 commits the sharded board is
      // re-sliced to population quantiles with clusters in flight; state
      // must track the never-resharded reference through every move.
      {48, 400.0, 15, DependencyParams{4.0, 1.0}, "euclidean", 0, 4, 0.1, 4,
       7},
      // Aggressive resharding on border-heavy narrow strips: boundary
      // sets are rebuilt almost continuously.
      {32, 60.0, 12, DependencyParams{4.0, 1.0}, "euclidean", 0, 4, 0.1, 8,
       3},
  };
  return kShapes;
}

TEST(ScoreboardDifferential, SweepIndexedMatchesBruteAcrossMetricsAndSeeds) {
  run_differential_sweep(sweep_shapes(), /*n_seeds=*/16);
}

TEST(DifferentialHarness, ReproStringRoundTripsEveryShape) {
  // The shrink mode is only useful if the printed tuple parses back to
  // the exact case that failed.
  for (const DiffShape& shape : sweep_shapes()) {
    const DiffCase c{shape, 4242};
    const auto parsed = parse_repro(repro_string(c));
    ASSERT_TRUE(parsed.has_value()) << repro_string(c);
    EXPECT_EQ(repro_string(*parsed), repro_string(c));
  }
  EXPECT_FALSE(parse_repro("metric=graph bogus_key=1").has_value());
  EXPECT_FALSE(parse_repro("agents=twelve").has_value());
}

TEST(ScoreboardShards, PartitionClassifiesInteriorAndBorderCommits) {
  // Four strips of width 250 over x in [0, 1000] (the anchors at the
  // extremes pin the range). With target=5 and floor=0 the confinement
  // radius is blocking_radius(5) + coupling_radius = 10 + 5 = 15, so a
  // commit is interior iff its members' old and new boxes of half-extent
  // 15 stay inside one strip.
  const DependencyParams params{4.0, 1.0};
  const std::vector<Pos> initial = {
      {0.0, 0.0},    // strip 0 edge anchor
      {125.0, 0.0},  // strip 0 interior
      {245.0, 0.0},  // strip 0, within 15 of the 250 border
      {625.0, 0.0},  // strip 2 interior
      {1000.0, 0.0}  // strip 3 edge anchor
  };
  Scoreboard sb(params, make_euclidean(), initial, 5, ScanMode::kIndexed, 4);
  ASSERT_EQ(sb.shards(), 4);
  EXPECT_EQ(sb.shard_of_pos(Pos{125.0, 0.0}), 0);
  EXPECT_EQ(sb.shard_of_pos(Pos{251.0, 0.0}), 1);
  EXPECT_EQ(sb.shard_of_pos(Pos{625.0, 0.0}), 2);
  EXPECT_EQ(sb.shard_of_pos(Pos{-40.0, 0.0}), 0);    // clamped
  EXPECT_EQ(sb.shard_of_pos(Pos{2000.0, 0.0}), 3);   // clamped

  // Border registration: agent 2's blocking box straddles the 250 line,
  // so it sits in both strip 0's and strip 1's border sets; agents 1 and
  // 3 are interior and the edge anchors only touch their own strips.
  EXPECT_GE(sb.border_count(0), 1u);
  EXPECT_GE(sb.border_count(1), 1u);
  EXPECT_EQ(sb.border_count(2), 0u);

  // Interior commit: agent 3 deep inside strip 2, staying there.
  const std::vector<std::pair<AgentId, Pos>> interior = {
      {3, Pos{626.0, 0.0}}};
  EXPECT_EQ(sb.local_commit_shard(interior, /*probe_floor=*/0), 2);
  // Border commit: agent 2's box straddles strips 0 and 1.
  const std::vector<std::pair<AgentId, Pos>> border = {{2, Pos{246.0, 0.0}}};
  EXPECT_EQ(sb.local_commit_shard(border, /*probe_floor=*/0), -1);

  // Per-strip pops see only clusters homed there, and together they see
  // everything the global pop would.
  auto s0 = sb.pop_ready_clusters_in_shard(0);
  auto s2 = sb.pop_ready_clusters_in_shard(2);
  std::size_t popped = s0.size() + s2.size();
  for (std::int32_t s : {1, 3}) {
    popped += sb.pop_ready_clusters_in_shard(s).size();
  }
  EXPECT_EQ(popped, 5u);  // far-apart agents: one singleton cluster each
  for (const auto& c : s2) {
    for (AgentId m : c.members) {
      EXPECT_EQ(sb.shard_of_pos(sb.pos_of(m)), 2);
    }
  }
  sb.check_invariants();
}

TEST(ScoreboardShards, NonIndexableModesCollapseToOneStrip) {
  const DependencyParams params{4.0, 1.0};
  const std::vector<Pos> initial = {{0.0, 0.0}, {500.0, 0.0}, {1000.0, 0.0}};
  Scoreboard brute(params, make_euclidean(), initial, 5,
                   ScanMode::kBruteForce, 8);
  EXPECT_EQ(brute.shards(), 1);
  auto metric = std::make_shared<GraphMetric>(
      std::vector<std::vector<std::int32_t>>{{1}, {0, 2}, {1}});
  Scoreboard graph(params, metric,
                   {Pos{0.0, 0.0}, Pos{1.0, 0.0}, Pos{2.0, 0.0}}, 5,
                   ScanMode::kIndexed, 8);
  EXPECT_EQ(graph.shards(), 1);
  // Collapsed boards classify every commit as cross-shard (the engine
  // then always escalates, which is exactly the old global-lock path).
  EXPECT_EQ(brute.local_commit_shard({{1, Pos{500.0, 0.0}}}, 0), -1);
}

TEST(ScoreboardShards, ShardedRunToCompletionHoldsInvariants) {
  // A full randomized run on a sharded board, exercising borders forming
  // and dissolving as agents drift across strips, with per-strip stats
  // summing to the global rollup.
  Rng rng(77);
  std::vector<Pos> initial;
  for (int i = 0; i < 200; ++i) {
    initial.push_back(Pos{rng.uniform(0.0, 800.0), rng.uniform(0.0, 80.0)});
  }
  Scoreboard sb(DependencyParams{4.0, 1.0}, make_euclidean(), initial, 8,
                ScanMode::kIndexed, 8);
  ASSERT_EQ(sb.shards(), 8);
  std::vector<AgentCluster> in_flight;
  std::uint64_t commits = 0;
  while (!sb.all_done()) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty()) << "scheduler stalled";
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = sb.pos_of(m);
      pos.x += rng.uniform(-1.0, 1.0) * 0.7;
      pos.y += rng.uniform(-1.0, 1.0) * 0.7;
      moves.emplace_back(m, pos);
    }
    sb.commit(moves, /*probe_floor=*/sb.min_step());
    if (++commits % 101 == 0) sb.check_invariants();
  }
  sb.check_invariants();
  EXPECT_EQ(sb.min_step(), 8);
  std::uint64_t shard_commits = 0;
  for (std::int32_t s = 0; s < sb.shards(); ++s) {
    shard_commits += sb.shard_stats(s).commits;
  }
  EXPECT_EQ(shard_commits, sb.stats().commits);
  EXPECT_EQ(sb.stats().commits, commits);
}

TEST(ScoreboardShards, RepartitionConservesObservableState) {
  // Moving the strip boundaries is pure re-bookkeeping: every externally
  // observable bit — steps, positions, statuses, blockers, cluster
  // memberships, the lazy min, the stats rollup — must survive a
  // repartition unchanged, even with clusters dispatched and lag built up.
  Rng rng(99);
  std::vector<Pos> initial;
  for (int i = 0; i < 120; ++i) {
    initial.push_back(Pos{rng.uniform(0.0, 800.0), rng.uniform(0.0, 60.0)});
  }
  Scoreboard sb(DependencyParams{4.0, 1.0}, make_euclidean(), initial, 6,
                ScanMode::kIndexed, 8);
  ASSERT_EQ(sb.shards(), 8);

  // Build real lag: dispatch everything, commit only every other cluster,
  // keep the rest in flight across the repartition.
  std::vector<AgentCluster> in_flight;
  for (int round = 0; round < 3; ++round) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    for (std::size_t k = 0; k + 1 < in_flight.size(); k += 2) {
      std::vector<std::pair<AgentId, Pos>> moves;
      for (AgentId m : in_flight[k].members) {
        Pos pos = sb.pos_of(m);
        pos.x += rng.uniform(-0.9, 0.9);
        moves.emplace_back(m, pos);
      }
      sb.commit(moves);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  ASSERT_FALSE(in_flight.empty());

  const std::size_t n = sb.agent_count();
  std::vector<Step> steps(n);
  std::vector<Pos> positions(n);
  std::vector<AgentStatus> statuses(n);
  std::vector<std::vector<AgentId>> blockers(n), clusters(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<AgentId>(i);
    steps[i] = sb.step_of(id);
    positions[i] = sb.pos_of(id);
    statuses[i] = sb.status_of(id);
    blockers[i] = sb.blockers_of(id);
    clusters[i] = sb.cluster_of(id);
  }
  const Step min_before = sb.min_step();
  const ScoreboardStats stats_before = sb.stats();
  const double blockers_before = sb.mean_blockers();

  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(sb.pos_of(static_cast<AgentId>(i)).x);
  }
  const auto quantiles = world::RegionPartition::equal_population(8, xs);
  sb.repartition(quantiles);
  EXPECT_EQ(sb.partition(), quantiles);
  sb.check_invariants();

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<AgentId>(i);
    EXPECT_EQ(sb.step_of(id), steps[i]) << "agent " << id;
    EXPECT_EQ(sb.pos_of(id), positions[i]) << "agent " << id;
    EXPECT_EQ(sb.status_of(id), statuses[i]) << "agent " << id;
    EXPECT_EQ(sb.blockers_of(id), blockers[i]) << "agent " << id;
    EXPECT_EQ(sb.cluster_of(id), clusters[i]) << "agent " << id;
  }
  EXPECT_EQ(sb.min_step(), min_before);
  EXPECT_EQ(sb.mean_blockers(), blockers_before);
  const ScoreboardStats stats_after = sb.stats();
  EXPECT_EQ(stats_after.commits, stats_before.commits);
  EXPECT_EQ(stats_after.clusters_dispatched, stats_before.clusters_dispatched);
  EXPECT_EQ(stats_after.edges_added, stats_before.edges_added);
  EXPECT_EQ(stats_after.edges_removed, stats_before.edges_removed);
  EXPECT_EQ(stats_after.sum_cluster_sizes, stats_before.sum_cluster_sizes);

  // Per-strip stats rows stayed positional: the rollup still sums to the
  // same totals (checked above), and each strip's commits are unchanged
  // by the boundary move itself.
  std::uint64_t strip_commits = 0;
  for (std::int32_t s = 0; s < sb.shards(); ++s) {
    strip_commits += sb.shard_stats(s).commits;
  }
  EXPECT_EQ(strip_commits, stats_before.commits);

  // The run still completes: in-flight clusters commit against the new
  // boundaries, and the re-homed ready queues drain everything else.
  std::uint64_t safety = 0;
  while (!sb.all_done()) {
    ASSERT_LT(++safety, 100000u) << "scheduler stalled after repartition";
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty());
    AgentCluster cluster = std::move(in_flight.back());
    in_flight.pop_back();
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = sb.pos_of(m);
      pos.x += rng.uniform(-0.9, 0.9);
      moves.emplace_back(m, pos);
    }
    sb.commit(moves, /*probe_floor=*/sb.min_step());
  }
  sb.check_invariants();
  EXPECT_EQ(sb.min_step(), 6);
}

TEST(ScoreboardShards, RepartitionRebuildsBorderSetsUnderTheNewCuts) {
  // Same five far-apart agents as the classifier test: under the uniform
  // partition agent 2 (x=245) straddles the 250 boundary; after moving
  // the cuts away from it, no blocking box straddles any boundary and the
  // border sets must empty out.
  const DependencyParams params{4.0, 1.0};
  const std::vector<Pos> initial = {{0.0, 0.0},
                                    {125.0, 0.0},
                                    {245.0, 0.0},
                                    {625.0, 0.0},
                                    {1000.0, 0.0}};
  Scoreboard sb(params, make_euclidean(), initial, 5, ScanMode::kIndexed, 4);
  ASSERT_EQ(sb.shards(), 4);
  EXPECT_GE(sb.border_count(0), 1u);
  EXPECT_GE(sb.border_count(1), 1u);

  // Cuts at 60 / 500 / 900: every agent sits > 15 (the confinement
  // radius at floor 0) from every boundary.
  sb.repartition(world::RegionPartition({60.0, 500.0, 900.0}, 0.0, 1000.0));
  sb.check_invariants();
  for (std::int32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sb.border_count(s), 0u) << "strip " << s;
  }
  EXPECT_EQ(sb.shard_of_pos(Pos{125.0, 0.0}), 1);
  EXPECT_EQ(sb.shard_of_pos(Pos{245.0, 0.0}), 1);
  EXPECT_EQ(sb.shard_of_pos(Pos{625.0, 0.0}), 2);
  // Interior commits classify under the new cuts: agent 2 now commits
  // locally in strip 1, agent 0 is within 15 of the x_min edge (edges are
  // not boundaries) and stays local too.
  EXPECT_EQ(sb.local_commit_shard({{2, Pos{246.0, 0.0}}}, 0), 1);
  EXPECT_EQ(sb.local_commit_shard({{0, Pos{1.0, 0.0}}}, 0), 0);
}

TEST(ScoreboardIndex, GraphMetricRunsIndexedNotFallback) {
  // GraphMetric positions encode node ids, so the box index cannot serve
  // it — but the adjacency seam hands the scoreboard a GraphIndex, and
  // indexed mode must genuinely use it (and still match brute force; the
  // sweep above covers the matching at scale).
  auto metric = std::make_shared<GraphMetric>(
      std::vector<std::vector<std::int32_t>>{{1}, {0, 2}, {1, 3}, {2, 4}, {3}});
  DependencyParams params{1.0, 0.0};
  std::vector<Pos> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(Pos{static_cast<double>(i), 0});
  Scoreboard indexed(params, metric, nodes, 6, ScanMode::kIndexed);
  Scoreboard brute(params, metric, nodes, 6, ScanMode::kBruteForce);
  EXPECT_TRUE(indexed.use_graph_index());
  EXPECT_FALSE(brute.use_graph_index());
  while (!indexed.all_done()) {
    const auto ready_i = indexed.pop_ready_clusters();
    const auto ready_b = brute.pop_ready_clusters();
    ASSERT_EQ(ready_i.size(), ready_b.size());
    for (const auto& c : ready_i) {
      std::vector<std::pair<AgentId, Pos>> moves;
      for (AgentId m : c.members) moves.emplace_back(m, indexed.pos_of(m));
      indexed.commit(moves);
      brute.commit(moves);
    }
    test_support::expect_scoreboards_equal(indexed, brute);
  }
  indexed.check_invariants();
}

TEST(ScoreboardIndex, MinStepIsMaintainedIncrementally) {
  // min_step() is O(1) now; cross-check it against a full scan at every
  // commit of a lag-heavy schedule (one straggler pinned at step 0).
  Rng rng(21);
  std::vector<Pos> initial;
  for (int i = 0; i < 16; ++i) {
    initial.push_back(Pos{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
  }
  Scoreboard sb(DependencyParams{4.0, 1.0}, make_euclidean(), initial, 12);
  std::vector<AgentCluster> in_flight;
  while (!sb.all_done()) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty());
    // Never commit a cluster containing agent 0 until nothing else can
    // move — maximal lag spread.
    std::size_t pick = in_flight.size();
    for (std::size_t k = 0; k < in_flight.size(); ++k) {
      const auto& members = in_flight[k].members;
      if (std::find(members.begin(), members.end(), 0) == members.end()) {
        pick = k;
        break;
      }
    }
    if (pick == in_flight.size()) pick = 0;  // only agent-0 work left
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) moves.emplace_back(m, sb.pos_of(m));
    sb.commit(moves);
    Step brute_min = sb.target_step();
    for (std::size_t i = 0; i < sb.agent_count(); ++i) {
      brute_min = std::min(brute_min, sb.step_of(static_cast<AgentId>(i)));
    }
    ASSERT_EQ(sb.min_step(), brute_min);
  }
  EXPECT_EQ(sb.min_step(), 12);
}

TEST(ScoreboardIndex, ThousandAgentRunHoldsInvariants) {
  // The scale the index exists for: 1000 agents, moderately dense, run to
  // completion in indexed mode with full O(n^2) invariant checks at
  // checkpoints (causality, edge symmetry, cluster bookkeeping, index
  // consistency).
  Rng rng(31);
  std::vector<Pos> initial;
  for (int i = 0; i < 1000; ++i) {
    initial.push_back(
        Pos{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 150.0)});
  }
  Scoreboard sb(DependencyParams{4.0, 1.0}, make_euclidean(), initial, 5);
  std::vector<AgentCluster> in_flight;
  std::uint64_t commits = 0;
  while (!sb.all_done()) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty()) << "scheduler stalled";
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = sb.pos_of(m);
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      const double dist = rng.uniform(0.0, 1.0);
      pos.x += std::cos(angle) * dist;
      pos.y += std::sin(angle) * dist;
      moves.emplace_back(m, pos);
    }
    sb.commit(moves);
    if (++commits % 997 == 0) sb.check_invariants();
  }
  sb.check_invariants();
  EXPECT_EQ(sb.min_step(), 5);
  EXPECT_EQ(sb.stats().commits, commits);
  // The paper's sparsity regime: far fewer blockers than agents.
  EXPECT_LT(sb.mean_blockers(), 5.0);
}

}  // namespace
}  // namespace aimetro::core
