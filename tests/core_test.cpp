#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "core/critical_path.h"
#include "core/dependency_rules.h"
#include "core/metric.h"
#include "core/oracle.h"
#include "core/scoreboard.h"
#include "trace/generator.h"
#include "world/grid_map.h"

namespace aimetro::core {
namespace {

const DependencyParams kParams{4.0, 1.0};  // GenAgent defaults

TEST(Rules, CoupledThreshold) {
  EXPECT_TRUE(coupled(5.0, 3, 3, kParams));   // == radius_p + max_vel
  EXPECT_FALSE(coupled(5.1, 3, 3, kParams));
  EXPECT_FALSE(coupled(1.0, 3, 4, kParams));  // different steps never couple
}

TEST(Rules, BlockingThresholdGrowsWithLag) {
  // B behind by `lag`: radius is (lag+1)*max_vel + radius_p.
  EXPECT_TRUE(blocks(6.0, 5, 4, false, kParams));    // lag 1 -> 6.0
  EXPECT_FALSE(blocks(6.1, 5, 4, false, kParams));
  EXPECT_TRUE(blocks(14.0, 13, 3, false, kParams));  // lag 10 -> 15.0
  EXPECT_TRUE(blocks(15.0, 13, 3, false, kParams));
  EXPECT_FALSE(blocks(15.1, 13, 3, false, kParams));
}

TEST(Rules, FutureAgentsNeverBlock) {
  EXPECT_FALSE(blocks(0.0, 3, 4, false, kParams));
  EXPECT_FALSE(blocks(0.0, 3, 4, true, kParams));
}

TEST(Rules, SameStepBlocksOnlyWhileRunning) {
  EXPECT_FALSE(blocks(2.0, 3, 3, false, kParams));  // idle: coupled instead
  EXPECT_TRUE(blocks(2.0, 3, 3, true, kParams));
  EXPECT_FALSE(blocks(5.1, 3, 3, true, kParams));   // outside radius
}

TEST(Rules, ValidityCondition) {
  // |gap|=1: need dist > radius_p.
  EXPECT_TRUE(state_valid(4.1, 5, 6, kParams));
  EXPECT_FALSE(state_valid(4.0, 5, 6, kParams));
  // |gap|=3: need dist > radius_p + 2.
  EXPECT_TRUE(state_valid(6.1, 2, 5, kParams));
  EXPECT_FALSE(state_valid(6.0, 5, 2, kParams));
  // Same step: always valid.
  EXPECT_TRUE(state_valid(0.0, 7, 7, kParams));
}

TEST(Rules, BlockingPreservesValidityOneStepAhead) {
  // Property: if B does NOT block A, then A advancing one step keeps the
  // validity condition intact even if both move adversarially (the
  // Appendix A derivation). Randomized check.
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const Step step_b = static_cast<Step>(rng.uniform_int(0, 50));
    const Step step_a = step_b + static_cast<Step>(rng.uniform_int(0, 20));
    const double dist = rng.uniform(0.0, 40.0);
    if (blocks(dist, step_a, step_b, false, kParams)) continue;
    if (step_a == step_b && coupled(dist, step_a, step_b, kParams)) continue;
    // A advances to step_a+1; both may close the gap by max_vel total
    // relative movement per agent step is bounded by max_vel for A.
    const double worst_dist = dist - kParams.max_vel;
    EXPECT_TRUE(state_valid(worst_dist, step_a + 1, step_b, kParams))
        << "dist=" << dist << " steps " << step_a << "," << step_b;
  }
}

TEST(Metric, BuiltinsAgreeWithHelpers) {
  EuclideanMetric e;
  ManhattanMetric m;
  ChebyshevMetric c;
  const Pos a{1, 2}, b{4, 6};
  EXPECT_DOUBLE_EQ(e.distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(m.distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(c.distance(a, b), 4.0);
  EXPECT_EQ(e.name(), "euclidean");
}

TEST(Metric, GraphHopDistances) {
  // 0-1-2-3 path plus isolated node 4.
  GraphMetric g({{1}, {0, 2}, {1, 3}, {2}, {}});
  auto node = [](int i) { return Pos{static_cast<double>(i), 0}; };
  EXPECT_DOUBLE_EQ(g.distance(node(0), node(0)), 0.0);
  EXPECT_DOUBLE_EQ(g.distance(node(0), node(3)), 3.0);
  EXPECT_DOUBLE_EQ(g.distance(node(1), node(3)), 2.0);
  EXPECT_GE(g.distance(node(0), node(4)), GraphMetric::kDisconnected);
}

// ---- Scoreboard ----

std::vector<Pos> line_positions(std::initializer_list<double> xs) {
  std::vector<Pos> out;
  for (double x : xs) out.push_back(Pos{x, 0.0});
  return out;
}

TEST(Scoreboard, SingleAgentRunsToTarget) {
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0}), 3);
  for (int s = 0; s < 3; ++s) {
    auto ready = sb.pop_ready_clusters();
    ASSERT_EQ(ready.size(), 1u) << "step " << s;
    EXPECT_EQ(ready[0].step, s);
    sb.commit({{0, Pos{static_cast<double>(s + 1), 0.0}}});
  }
  EXPECT_TRUE(sb.all_done());
  EXPECT_TRUE(sb.pop_ready_clusters().empty());
  EXPECT_EQ(sb.stats().commits, 3u);
}

TEST(Scoreboard, FarAgentsAreIndependent) {
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0, 100.0}), 10);
  auto ready = sb.pop_ready_clusters();
  ASSERT_EQ(ready.size(), 2u);
  // Agent 1 can sprint many steps ahead without agent 0 moving at all.
  sb.commit({{1, Pos{100.0, 0.0}}});
  for (int s = 1; s < 10; ++s) {
    auto r = sb.pop_ready_clusters();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].members, (std::vector<AgentId>{1}));
    sb.commit({{1, Pos{100.0, 0.0}}});
  }
  EXPECT_EQ(sb.step_of(1), 10);
  EXPECT_EQ(sb.status_of(1), AgentStatus::kDone);
  EXPECT_EQ(sb.step_of(0), 0);
  sb.check_invariants();
}

TEST(Scoreboard, CloseAgentsCouple) {
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0, 3.0}), 5);
  auto ready = sb.pop_ready_clusters();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].members, (std::vector<AgentId>{0, 1}));
  // The cluster commits together.
  sb.commit({{0, Pos{0.0, 0.0}}, {1, Pos{3.0, 0.0}}});
  EXPECT_EQ(sb.step_of(0), 1);
  EXPECT_EQ(sb.step_of(1), 1);
  sb.check_invariants();
}

TEST(Scoreboard, LaggardBlocksLeaderAtTheRule) {
  // Agents at distance 7: coupling radius is 5, so they start separately;
  // the leader can advance until (lag+1)*1 + 4 >= 7, i.e. lag 2.
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0, 7.0}), 10);
  auto ready = sb.pop_ready_clusters();
  ASSERT_EQ(ready.size(), 2u);
  // Advance agent 1 only (commit it, never dispatch agent 0's cluster work).
  sb.commit({{1, Pos{7.0, 0.0}}});  // now step 1, lag 1: 2*1+4=6 < 7: free
  auto r1 = sb.pop_ready_clusters();
  ASSERT_EQ(r1.size(), 1u);
  sb.commit({{1, Pos{7.0, 0.0}}});  // now step 2, lag 2: 3*1+4=7 >= 7: blocked
  EXPECT_TRUE(sb.is_blocked(1));
  EXPECT_EQ(sb.blockers_of(1), (std::vector<AgentId>{0}));
  EXPECT_TRUE(sb.pop_ready_clusters().empty());
  // Agent 0 commits its step 0 (it was marked running at the start).
  sb.commit({{0, Pos{0.0, 0.0}}});
  EXPECT_FALSE(sb.is_blocked(1));  // lag back to 1
  const auto r2 = sb.pop_ready_clusters();
  ASSERT_EQ(r2.size(), 2u);  // both agents have ready clusters again
  sb.check_invariants();
}

TEST(Scoreboard, LeaderHitsTheStragglersCone) {
  // Leader at distance 20 from a straggler stuck executing step 0: the
  // leader may advance until (lag+1)*max_vel + radius_p reaches 20, i.e.
  // exactly step 15. Once the straggler commits one step, the cone recedes
  // and the leader is free again.
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0, 20.0}), 50);
  auto ready = sb.pop_ready_clusters();
  ASSERT_EQ(ready.size(), 2u);  // both dispatched; agent 0 never commits yet
  int leader_steps = 0;
  sb.commit({{1, Pos{20.0, 0.0}}});
  ++leader_steps;
  while (true) {
    auto r = sb.pop_ready_clusters();
    if (r.empty()) break;
    ASSERT_EQ(r.size(), 1u);
    ASSERT_EQ(r[0].members, (std::vector<AgentId>{1}));
    sb.commit({{1, Pos{20.0, 0.0}}});
    ++leader_steps;
    ASSERT_LE(leader_steps, 20) << "leader was never blocked";
  }
  // dist 20 <= (15 - 0 + 1) + 4 = 20: blocked exactly at step 15.
  EXPECT_EQ(sb.step_of(1), 15);
  EXPECT_TRUE(sb.is_blocked(1));
  EXPECT_EQ(sb.blockers_of(1), (std::vector<AgentId>{0}));
  sb.check_invariants();
  // Straggler commits step 0: lag drops to 14, radius 19 < 20 -> free.
  sb.commit({{0, Pos{0.0, 0.0}}});
  EXPECT_FALSE(sb.is_blocked(1));
  const auto r2 = sb.pop_ready_clusters();
  ASSERT_EQ(r2.size(), 2u);
  sb.check_invariants();
}

TEST(Scoreboard, MergingClustersThroughBridgeAgent) {
  // Two pairs 8 apart, bridge agent in the middle connects them.
  Scoreboard sb(kParams, make_euclidean(),
                line_positions({0.0, 4.0, 8.0}), 5);
  auto ready = sb.pop_ready_clusters();
  ASSERT_EQ(ready.size(), 1u);  // all coupled transitively via the middle
  EXPECT_EQ(ready[0].members.size(), 3u);
}

TEST(Scoreboard, RejectsBadCommits) {
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0}), 5);
  // Not running yet.
  EXPECT_THROW(sb.commit({{0, Pos{0.0, 0.0}}}), CheckError);
  sb.pop_ready_clusters();
  // Speed violation.
  EXPECT_THROW(sb.commit({{0, Pos{5.0, 0.0}}}), CheckError);
}

TEST(Scoreboard, DotRenderingContainsAgents) {
  Scoreboard sb(kParams, make_euclidean(), line_positions({0.0, 2.0}), 5);
  const std::string dot = sb.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("A@0"), std::string::npos);
  EXPECT_NE(dot.find("B@0"), std::string::npos);
}

/// Randomized lifecycle property test: drive the scoreboard like an
/// executor would — pop ready clusters, commit them in random order with
/// random legal moves — and assert the causality invariant plus internal
/// consistency at every commit, for several world shapes.
struct LifecycleParam {
  int n_agents;
  double spread;  // initial max coordinate
  Step target;
  std::uint64_t seed;
};

class ScoreboardLifecycle : public ::testing::TestWithParam<LifecycleParam> {};

TEST_P(ScoreboardLifecycle, InvariantsHoldUnderRandomSchedules) {
  const LifecycleParam p = GetParam();
  Rng rng(p.seed);
  std::vector<Pos> initial;
  for (int i = 0; i < p.n_agents; ++i) {
    initial.push_back(
        Pos{rng.uniform(0.0, p.spread), rng.uniform(0.0, p.spread)});
  }
  Scoreboard sb(kParams, make_euclidean(), initial, p.target);
  std::vector<AgentCluster> in_flight;
  std::uint64_t commits = 0;
  while (!sb.all_done()) {
    for (auto& c : sb.pop_ready_clusters()) in_flight.push_back(std::move(c));
    ASSERT_FALSE(in_flight.empty()) << "scheduler stalled (deadlock)";
    // Commit a random in-flight cluster with random legal moves.
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(in_flight.size()) - 1));
    AgentCluster cluster = std::move(in_flight[pick]);
    in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<std::pair<AgentId, Pos>> moves;
    for (AgentId m : cluster.members) {
      Pos pos = sb.pos_of(m);
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      const double dist = rng.uniform(0.0, kParams.max_vel);
      pos.x += std::cos(angle) * dist;
      pos.y += std::sin(angle) * dist;
      moves.emplace_back(m, pos);
    }
    sb.commit(moves);
    ++commits;
    if (commits % 7 == 0) sb.check_invariants();  // amortize the O(n^2)
  }
  sb.check_invariants();
  EXPECT_EQ(sb.min_step(), p.target);
  EXPECT_EQ(sb.stats().commits, commits);
  // Sparsity: with few agents spread out, blocking should be rare.
  EXPECT_LT(sb.mean_blockers(), static_cast<double>(p.n_agents));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScoreboardLifecycle,
    ::testing::Values(LifecycleParam{4, 10.0, 30, 1},    // cramped: couples
                      LifecycleParam{8, 60.0, 25, 2},    // mixed
                      LifecycleParam{16, 200.0, 20, 3},  // sparse
                      LifecycleParam{12, 30.0, 15, 4},   // dense blocking
                      LifecycleParam{1, 5.0, 50, 5}));   // degenerate

TEST(Scoreboard, GraphMetricWorld) {
  // Social-network world (§6 extension): distance is hop count.
  // 0-1-2-3-4 chain; radius_p=1, max_vel=0 (agents do not move socially).
  GraphMetric::kDisconnected;
  auto metric = std::make_shared<GraphMetric>(
      std::vector<std::vector<std::int32_t>>{{1}, {0, 2}, {1, 3}, {2, 4}, {3}});
  DependencyParams params{1.0, 0.0};
  std::vector<Pos> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(Pos{static_cast<double>(i), 0});
  Scoreboard sb(params, metric, nodes, 10);
  // Neighbors (hop distance 1 == radius_p + 0) couple transitively: the
  // whole chain is one cluster.
  auto ready = sb.pop_ready_clusters();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].members.size(), 5u);
}

// ---- Oracle & critical path ----

trace::SimulationTrace tiny_trace() {
  const auto map = world::GridMap::smallville(6);
  trace::GeneratorConfig cfg;
  cfg.n_agents = 6;
  cfg.seed = 31;
  auto full = trace::generate(map, cfg);
  return trace::slice(full, 4320, 4440);  // 120 busy steps
}

TEST(Oracle, GroupsReflectProximityAndInteractions) {
  const auto trace = tiny_trace();
  const OracleDependencies oracle = mine_oracle(trace);
  ASSERT_EQ(oracle.groups_by_step.size(),
            static_cast<std::size_t>(trace.n_steps));
  for (Step rel = 0; rel < trace.n_steps; ++rel) {
    for (const auto& group :
         oracle.groups_by_step[static_cast<std::size_t>(rel)]) {
      EXPECT_GE(group.size(), 2u);
      EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
    }
  }
  // Every pair within radius_p at a step must share a group.
  for (Step rel = 0; rel < trace.n_steps; ++rel) {
    for (AgentId a = 0; a < trace.n_agents; ++a) {
      for (AgentId b = a + 1; b < trace.n_agents; ++b) {
        const double d = euclidean(
            trace.position_at(a, trace.start_step + rel).center(),
            trace.position_at(b, trace.start_step + rel).center());
        if (d <= trace.radius_p) {
          const auto ga = oracle.group_of(rel, a);
          EXPECT_TRUE(std::binary_search(ga.begin(), ga.end(), b))
              << "step " << rel << " agents " << a << "," << b;
        }
      }
    }
  }
  // Explicit interactions are honored too.
  for (const auto& in : trace.interactions) {
    const auto g = oracle.group_of(in.step - trace.start_step, in.a);
    EXPECT_TRUE(std::binary_search(g.begin(), g.end(), in.b));
  }
}

TEST(Oracle, SingletonGroupOfLoner) {
  const auto trace = tiny_trace();
  const OracleDependencies oracle = mine_oracle(trace);
  const auto g = oracle.group_of(-5, 0);  // out of range -> singleton
  EXPECT_EQ(g, (std::vector<AgentId>{0}));
}

TEST(CriticalPath, HandBuiltChain) {
  // Two agents, 3 steps. Agent 0 has heavy calls at steps 0 and 2; agent 1
  // has a heavy call at step 1 and interacts with agent 0 at step 1, so the
  // critical chain can hop 0@0 -> 1@1 -> (0 or 1)@2.
  trace::SimulationTrace t;
  t.n_agents = 2;
  t.n_steps = 3;
  t.map_width = t.map_height = 100;
  t.radius_p = 4.0;
  t.max_vel = 1.0;
  t.agents.resize(2);
  for (int i = 0; i < 2; ++i) {
    t.agents[static_cast<std::size_t>(i)].agent = i;
    // Keep them 3 apart (within radius_p: interacting throughout).
    for (int s = 0; s <= 3; ++s) {
      t.agents[static_cast<std::size_t>(i)].positions.push_back(
          Tile{i * 3, 0});
    }
  }
  auto add_call = [&](AgentId a, Step s, int in, int out) {
    trace::LlmCall c;
    c.agent = a;
    c.step = s;
    c.seq = 0;
    c.input_tokens = in;
    c.output_tokens = out;
    t.agents[static_cast<std::size_t>(a)].calls.push_back(c);
  };
  add_call(0, 0, 1000, 10);  // heavy
  add_call(1, 0, 10, 1);
  add_call(1, 1, 2000, 20);  // heavy
  add_call(0, 2, 500, 5);    // agent 0's finale is heavier than agent 1's
  add_call(1, 2, 100, 1);
  t.validate();
  const auto oracle = mine_oracle(t);
  const auto cp = critical_path(t, oracle);
  EXPECT_EQ(cp.total_tokens, 1010 + 2020 + 505);
  EXPECT_EQ(cp.call_count, 3u);
}

TEST(CriticalPath, BoundedByTotalsOnRealTrace) {
  const auto trace = tiny_trace();
  const auto oracle = mine_oracle(trace);
  const auto cp = critical_path(trace, oracle);
  std::int64_t total = 0;
  std::int64_t heaviest_agent = 0;
  for (const auto& agent : trace.agents) {
    std::int64_t mine = 0;
    for (const auto& c : agent.calls) mine += c.input_tokens + c.output_tokens;
    total += mine;
    heaviest_agent = std::max(heaviest_agent, mine);
  }
  EXPECT_GE(cp.total_tokens, heaviest_agent);  // self-chains always count
  EXPECT_LE(cp.total_tokens, total);
  EXPECT_EQ(cp.total_tokens, cp.input_tokens + cp.output_tokens);
  // The chain is executable: steps never decrease.
  for (std::size_t i = 1; i < cp.calls.size(); ++i) {
    EXPECT_LE(cp.calls[i - 1]->step, cp.calls[i]->step);
  }
}

}  // namespace
}  // namespace aimetro::core
