// Lock-discipline enforcement tests, in two layers:
//
//  1. Registry-level: the lock-order graph in common/lock_debug.{h,cpp} is
//     always compiled, so these drive note_acquire/note_release directly
//     with fake lock addresses — inversion detection, transitive cycles,
//     recursive acquisition, trylock semantics, and address reuse are all
//     checked regardless of how the build was configured.
//
//  2. Wrapper-level: with AIMETRO_LOCK_DEBUG on (the lock-debug CI job),
//     common::Mutex / MutexLock acquisitions feed the registry, so the
//     production orderings — llm route -> replica, kv ascending shard
//     order — are exercised end to end, including a deliberately inverted
//     acquisition that must be reported. With it off, the wrappers must
//     cost nothing: same size as the std types they wrap.
#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/lock_debug.h"
#include "common/mutex.h"
#include "kv/store.h"

namespace aimetro {
namespace {

namespace lock_debug = common::lock_debug;

class LockDebugTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lock_debug::reset();
    lock_debug::set_failure_handler(
        [this](const lock_debug::Violation& v) { violations_.push_back(v); });
  }
  void TearDown() override { lock_debug::reset(); }

  std::vector<lock_debug::Violation> violations_;
};

TEST_F(LockDebugTest, ConsistentOrderBuildsEdgesWithoutViolation) {
  int a = 0, b = 0;
  for (int i = 0; i < 3; ++i) {
    lock_debug::note_acquire(&a, "A");
    lock_debug::note_acquire(&b, "B");
    lock_debug::note_release(&b);
    lock_debug::note_release(&a);
  }
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(lock_debug::edge_count(), 1u);  // A -> B, recorded once
  EXPECT_EQ(lock_debug::held_count(), 0u);
}

TEST_F(LockDebugTest, InvertedOrderIsReportedWithBothNamesAndStacks) {
  int route = 0, replica = 0;
  lock_debug::note_acquire(&route, "llm.route");
  lock_debug::note_acquire(&replica, "llm.replica");
  lock_debug::note_release(&replica);
  lock_debug::note_release(&route);

  lock_debug::note_acquire(&replica, "llm.replica");
  lock_debug::note_acquire(&route, "llm.route");  // inversion
  ASSERT_EQ(violations_.size(), 1u);
  const lock_debug::Violation& v = violations_[0];
  EXPECT_EQ(v.kind, lock_debug::Violation::Kind::kOrderInversion);
  EXPECT_EQ(v.held, &replica);
  EXPECT_EQ(v.acquiring, &route);
  EXPECT_EQ(v.held_name, "llm.replica");
  EXPECT_EQ(v.acquiring_name, "llm.route");
  EXPECT_NE(v.report.find("llm.route"), std::string::npos);
  EXPECT_NE(v.report.find("llm.replica"), std::string::npos);
  EXPECT_NE(v.report.find("first established"), std::string::npos);
  EXPECT_NE(v.report.find("current acquisition"), std::string::npos);
  lock_debug::note_release(&route);
  lock_debug::note_release(&replica);
  // The offending edge was not added: the graph still has only the
  // original ordering, and the same inversion reports again next time.
  EXPECT_EQ(lock_debug::edge_count(), 1u);
}

TEST_F(LockDebugTest, TransitiveCycleIsDetected) {
  int a = 0, b = 0, c = 0;
  lock_debug::note_acquire(&a, "A");
  lock_debug::note_acquire(&b, "B");
  lock_debug::note_release(&b);
  lock_debug::note_release(&a);
  lock_debug::note_acquire(&b, "B");
  lock_debug::note_acquire(&c, "C");
  lock_debug::note_release(&c);
  lock_debug::note_release(&b);
  ASSERT_TRUE(violations_.empty());

  // A -> B -> C is on record; C -> A closes the cycle transitively even
  // though A and C were never held together before.
  lock_debug::note_acquire(&c, "C");
  lock_debug::note_acquire(&a, "A");
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind,
            lock_debug::Violation::Kind::kOrderInversion);
  EXPECT_EQ(violations_[0].held, &c);
  EXPECT_EQ(violations_[0].acquiring, &a);
  lock_debug::note_release(&a);
  lock_debug::note_release(&c);
}

TEST_F(LockDebugTest, RecursiveAcquisitionIsReported) {
  int a = 0;
  lock_debug::note_acquire(&a, "A");
  lock_debug::note_acquire(&a, "A");
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, lock_debug::Violation::Kind::kRecursive);
  // Both acquisitions were recorded, so the stack stays balanced through
  // the matching releases.
  EXPECT_EQ(lock_debug::held_count(), 2u);
  lock_debug::note_release(&a);
  lock_debug::note_release(&a);
  EXPECT_EQ(lock_debug::held_count(), 0u);
}

TEST_F(LockDebugTest, TrylockAddsNoIncomingEdgeButOrdersSuccessors) {
  int a = 0, b = 0, c = 0;
  // try_lock(b) while holding a: no a -> b edge (a trylock cannot block,
  // so it cannot deadlock against the opposite order).
  lock_debug::note_acquire(&a, "A");
  lock_debug::note_acquire(&b, "B", /*trylock=*/true);
  EXPECT_EQ(lock_debug::edge_count(), 0u);
  // But a blocking acquisition made while the trylock is held orders
  // against it normally: edges a -> c and b -> c.
  lock_debug::note_acquire(&c, "C");
  EXPECT_EQ(lock_debug::edge_count(), 2u);
  lock_debug::note_release(&c);
  lock_debug::note_release(&b);
  lock_debug::note_release(&a);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockDebugTest, SharedAcquisitionsOrderLikeExclusiveOnes) {
  int rw = 0, m = 0;
  lock_debug::note_acquire(&rw, "world", /*trylock=*/false, /*shared=*/true);
  lock_debug::note_acquire(&m, "commit");
  lock_debug::note_release(&m);
  lock_debug::note_release(&rw);
  ASSERT_TRUE(violations_.empty());
  // Reader/writer inversions deadlock just as hard: commit -> world must
  // still be flagged even though the first order held world only shared.
  lock_debug::note_acquire(&m, "commit");
  lock_debug::note_acquire(&rw, "world");
  ASSERT_EQ(violations_.size(), 1u);
  lock_debug::note_release(&rw);
  lock_debug::note_release(&m);
}

TEST_F(LockDebugTest, DestroyPurgesTheAddressFromTheGraph) {
  int a = 0, b = 0;
  lock_debug::note_acquire(&a, "A");
  lock_debug::note_acquire(&b, "B");
  lock_debug::note_release(&b);
  lock_debug::note_release(&a);
  EXPECT_EQ(lock_debug::edge_count(), 1u);
  // A new lock constructed at b's address must not inherit "A before B".
  lock_debug::note_destroy(&b);
  EXPECT_EQ(lock_debug::edge_count(), 0u);
  lock_debug::note_acquire(&b, "B2");
  lock_debug::note_acquire(&a, "A");
  EXPECT_TRUE(violations_.empty());
  lock_debug::note_release(&a);
  lock_debug::note_release(&b);
}

TEST_F(LockDebugTest, EdgesAreGlobalAcrossThreads) {
  // Thread 1 establishes A -> B; the main thread then violates it. The
  // graph is global — that is the point: the two orders need never be
  // interleaved in one schedule for the validator to flag the deadlock.
  int a = 0, b = 0;
  std::thread t([&] {
    lock_debug::note_acquire(&a, "A");
    lock_debug::note_acquire(&b, "B");
    lock_debug::note_release(&b);
    lock_debug::note_release(&a);
  });
  t.join();
  lock_debug::note_acquire(&b, "B");
  lock_debug::note_acquire(&a, "A");
  ASSERT_EQ(violations_.size(), 1u);
  lock_debug::note_release(&a);
  lock_debug::note_release(&b);
}

#if AIMETRO_LOCK_DEBUG

// ---- Wrapper integration (lock-debug builds only) ----

TEST_F(LockDebugTest, MutexWrapperFeedsTheRegistry) {
  common::Mutex mu{"wrapper"};
  {
    common::MutexLock lock(mu);
    EXPECT_EQ(lock_debug::held_count(), 1u);
  }
  EXPECT_EQ(lock_debug::held_count(), 0u);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockDebugTest, WrapperInversionMirroringRouteReplicaIsReported) {
  // The exact production pair: CostModelLlmClient admission and reaping
  // both take route before replica. Simulate the buggy opposite order and
  // expect the validator to name both locks.
  common::Mutex route{"llm.route"};
  common::Mutex replica{"llm.replica"};
  {
    common::MutexLock r(route);
    common::MutexLock rep(replica);
  }
  {
    common::MutexLock rep(replica);
    common::MutexLock r(route);  // deliberate inversion
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].held_name, "llm.replica");
  EXPECT_EQ(violations_[0].acquiring_name, "llm.route");
}

TEST_F(LockDebugTest, ShardedCommitProtocolOrderingIsClean) {
  // The engine's boundary-lag protocol: interior commits hold the
  // topology lock shared plus exactly one strip lock; cross-shard
  // commits hold topology exclusive and no strip lock. The validator
  // keys locks by address, so the identically named per-strip mutexes
  // are distinct nodes — and because no commit ever holds two strips at
  // once, no strip-strip edge can form in either direction.
  common::SharedMutex topology{"engine.topology"};
  common::Mutex strip0{"engine.shard"};
  common::Mutex strip1{"engine.shard"};
  for (int round = 0; round < 2; ++round) {
    {
      common::ReaderLock t(topology);
      common::MutexLock s(strip0);
    }
    {
      common::ReaderLock t(topology);
      common::MutexLock s(strip1);
    }
    {
      common::WriterLock t(topology);  // cross-shard escalation
    }
  }
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(lock_debug::edge_count(), 2u);  // topology -> each strip
}

TEST_F(LockDebugTest, SharedMutexReaderWriterInversionIsReported) {
  // A strip lock held across a topology acquisition is exactly the
  // deadlock the protocol forbids (a writer blocks between the reader
  // and its strip): the validator must name both locks.
  common::SharedMutex topology{"engine.topology"};
  common::Mutex strip{"engine.shard"};
  {
    common::ReaderLock t(topology);
    common::MutexLock s(strip);
  }
  {
    common::MutexLock s(strip);
    common::WriterLock t(topology);  // deliberate inversion
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].held_name, "engine.shard");
  EXPECT_EQ(violations_[0].acquiring_name, "engine.topology");
}

TEST_F(LockDebugTest, KvTransactionAscendingShardOrderIsClean) {
  // Transaction::exec locks every shard in index order; under the
  // validator a whole store workload (including all-shard commits and
  // single-shard traffic) must produce zero violations.
  kv::Store store(8);
  for (int i = 0; i < 32; ++i) {
    store.set("k" + std::to_string(i), std::to_string(i));
  }
  kv::Transaction txn = store.transaction();
  txn.watch("k0");
  txn.set("k1", "x");
  txn.incr_by("counter", 2);
  txn.rpush("log", "entry");
  EXPECT_EQ(txn.exec(), kv::TxnResult::kCommitted);
  EXPECT_TRUE(violations_.empty());
}

#else  // !AIMETRO_LOCK_DEBUG

// ---- Zero-cost-off guarantees (default builds) ----

TEST(LockDebugOff, WrappersAreLayoutIdenticalToStdTypes) {
  static_assert(sizeof(common::Mutex) == sizeof(std::mutex),
                "common::Mutex must add nothing when AIMETRO_LOCK_DEBUG "
                "is off");
  static_assert(sizeof(common::SharedMutex) == sizeof(std::shared_mutex),
                "common::SharedMutex must add nothing when "
                "AIMETRO_LOCK_DEBUG is off");
  SUCCEED();
}

TEST(LockDebugOff, WrapperAcquisitionsDoNotTouchTheRegistry) {
  lock_debug::reset();
  common::Mutex mu{"ignored"};
  {
    common::MutexLock lock(mu);
    EXPECT_EQ(lock_debug::held_count(), 0u);
  }
  EXPECT_EQ(lock_debug::edge_count(), 0u);
}

#endif  // AIMETRO_LOCK_DEBUG

}  // namespace
}  // namespace aimetro
