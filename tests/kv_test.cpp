#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/check.h"
#include "kv/store.h"

namespace aimetro::kv {
namespace {

TEST(KvStrings, SetGetDel) {
  Store s;
  EXPECT_FALSE(s.get("k").has_value());
  s.set("k", "v1");
  EXPECT_EQ(s.get("k").value(), "v1");
  s.set("k", "v2");
  EXPECT_EQ(s.get("k").value(), "v2");
  EXPECT_TRUE(s.del("k"));
  EXPECT_FALSE(s.del("k"));
  EXPECT_FALSE(s.exists("k"));
}

TEST(KvStrings, IncrBy) {
  Store s;
  EXPECT_EQ(s.incr_by("n", 5), 5);
  EXPECT_EQ(s.incr_by("n", -2), 3);
  EXPECT_EQ(s.get("n").value(), "3");
  s.set("bad", "xyz");
  EXPECT_THROW(s.incr_by("bad", 1), CheckError);
}

TEST(KvHashes, BasicOps) {
  Store s;
  EXPECT_TRUE(s.hset("h", "f1", "a"));
  EXPECT_FALSE(s.hset("h", "f1", "b"));  // overwrite, not new
  EXPECT_TRUE(s.hset("h", "f2", "c"));
  EXPECT_EQ(s.hget("h", "f1").value(), "b");
  EXPECT_FALSE(s.hget("h", "nope").has_value());
  EXPECT_EQ(s.hlen("h"), 2u);
  const auto all = s.hgetall("h");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "f1");  // sorted by field
  EXPECT_TRUE(s.hdel("h", "f1"));
  EXPECT_FALSE(s.hdel("h", "f1"));
  EXPECT_EQ(s.hlen("h"), 1u);
}

TEST(KvHashes, WrongTypeRejected) {
  Store s;
  s.set("str", "x");
  EXPECT_THROW(s.hset("str", "f", "v"), CheckError);
  EXPECT_FALSE(s.hget("str", "f").has_value());
}

TEST(KvZSets, ScoresAndRanges) {
  Store s;
  EXPECT_TRUE(s.zadd("z", "a", 3.0));
  EXPECT_TRUE(s.zadd("z", "b", 1.0));
  EXPECT_TRUE(s.zadd("z", "c", 2.0));
  EXPECT_FALSE(s.zadd("z", "a", 0.5));  // update
  EXPECT_EQ(s.zcard("z"), 3u);
  EXPECT_DOUBLE_EQ(s.zscore("z", "a").value(), 0.5);
  const auto range = s.zrange_by_score("z", 0.0, 2.0);
  ASSERT_EQ(range.size(), 3u);  // a(0.5), b(1.0), c(2.0)
  EXPECT_EQ(range[0].first, "a");
  EXPECT_EQ(range[1].first, "b");
  EXPECT_EQ(range[2].first, "c");
  const auto popped = s.zpop_min("z");
  EXPECT_EQ(popped->first, "a");
  EXPECT_TRUE(s.zrem("z", "b"));
  EXPECT_FALSE(s.zrem("z", "b"));
  EXPECT_EQ(s.zcard("z"), 1u);
}

TEST(KvLists, PushPopRange) {
  Store s;
  s.rpush("l", "a");
  s.rpush("l", "b");
  s.rpush("l", "c");
  EXPECT_EQ(s.llen("l"), 3u);
  EXPECT_EQ(s.lrange("l", 0, -1),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(s.lrange("l", -2, -1), (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(s.lrange("l", 1, 1), (std::vector<std::string>{"b"}));
  EXPECT_EQ(s.lpop("l").value(), "a");
  EXPECT_EQ(s.llen("l"), 2u);
}

TEST(KvKeyspace, TypeVersionPrefix) {
  Store s;
  s.set("a:1", "x");
  s.hset("a:2", "f", "y");
  s.zadd("b:1", "m", 1.0);
  EXPECT_EQ(s.type("a:1"), Type::kString);
  EXPECT_EQ(s.type("a:2"), Type::kHash);
  EXPECT_EQ(s.type("b:1"), Type::kZSet);
  EXPECT_EQ(s.type("nope"), Type::kNone);
  EXPECT_EQ(s.keys_with_prefix("a:"),
            (std::vector<std::string>{"a:1", "a:2"}));
  EXPECT_EQ(s.key_count(), 3u);
  const auto v1 = s.version("a:1");
  s.set("a:1", "x2");
  EXPECT_GT(s.version("a:1"), v1);
  EXPECT_EQ(s.version("missing"), 0u);
  s.clear();
  EXPECT_EQ(s.key_count(), 0u);
}

TEST(KvFingerprint, ContentEqualityIgnoringHistory) {
  Store a, b;
  a.set("k", "v");
  a.hset("h", "f", "1");
  a.zadd("z", "m", 2.5);
  a.rpush("l", "e1");
  // Build b in a different order, with extra churn.
  b.rpush("l", "e1");
  b.set("k", "tmp");
  b.set("k", "v");
  b.zadd("z", "m", 2.5);
  b.hset("h", "f", "1");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.set("k", "other");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(KvFingerprint, ListOrderMatters) {
  Store a, b;
  a.rpush("l", "x");
  a.rpush("l", "y");
  b.rpush("l", "y");
  b.rpush("l", "x");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(KvTransaction, CommitsAtomically) {
  Store s;
  Transaction txn = s.transaction();
  txn.set("a", "1");
  txn.hset("h", "f", "2");
  txn.zadd("z", "m", 3.0);
  txn.rpush("l", "4");
  txn.incr_by("n", 7);
  EXPECT_EQ(txn.queued(), 5u);
  EXPECT_EQ(txn.exec(), TxnResult::kCommitted);
  EXPECT_EQ(s.get("a").value(), "1");
  EXPECT_EQ(s.hget("h", "f").value(), "2");
  EXPECT_DOUBLE_EQ(s.zscore("z", "m").value(), 3.0);
  EXPECT_EQ(s.llen("l"), 1u);
  EXPECT_EQ(s.get("n").value(), "7");
}

TEST(KvTransaction, WatchDetectsConflict) {
  Store s;
  s.set("w", "original");
  Transaction txn = s.transaction();
  txn.watch("w");
  txn.set("out", "computed-from-original");
  s.set("w", "changed-by-someone-else");
  EXPECT_EQ(txn.exec(), TxnResult::kConflict);
  EXPECT_FALSE(s.exists("out"));
}

TEST(KvTransaction, WatchOnMissingKeyDetectsCreation) {
  Store s;
  Transaction txn = s.transaction();
  txn.watch("ghost");
  txn.set("out", "1");
  s.set("ghost", "now exists");
  EXPECT_EQ(txn.exec(), TxnResult::kConflict);
}

TEST(KvTransaction, UnchangedWatchCommits) {
  Store s;
  s.set("w", "same");
  Transaction txn = s.transaction();
  txn.watch("w");
  txn.del("w");
  EXPECT_EQ(txn.exec(), TxnResult::kCommitted);
  EXPECT_FALSE(s.exists("w"));
}

TEST(KvConcurrency, ParallelIncrementsAreLossless) {
  Store s;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s] {
      for (int i = 0; i < kPerThread; ++i) s.incr_by("counter", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.get("counter").value(), std::to_string(kThreads * kPerThread));
}

TEST(KvConcurrency, OptimisticRetryLoopConverges) {
  // Classic WATCH/MULTI/EXEC pattern: read, compute, conditional write.
  Store s;
  s.set("balance", "0");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 300;
  std::atomic<int> retries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        while (true) {
          Transaction txn = s.transaction();
          txn.watch("balance");
          const auto current = std::stoll(s.get("balance").value());
          txn.set("balance", std::to_string(current + 1));
          if (txn.exec() == TxnResult::kCommitted) break;
          retries.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.get("balance").value(), std::to_string(kThreads * kPerThread));
}

TEST(KvConcurrency, MixedTypeStress) {
  Store s(4);  // few shards to force contention
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "k" + std::to_string(i % 17);
        switch ((t + i) % 4) {
          case 0:
            s.hset(key + ":h", "f" + std::to_string(i % 5), "v");
            break;
          case 1:
            s.zadd(key + ":z", "m" + std::to_string(i % 5), i);
            break;
          case 2:
            s.rpush(key + ":l", "x");
            break;
          default:
            s.incr_by(key + ":n", 1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(s.key_count(), 0u);
  EXPECT_EQ(s.get("k0:n").has_value(), true);
}

}  // namespace
}  // namespace aimetro::kv
