#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "llm/specs.h"
#include "scenario/driver.h"
#include "scenario/registry.h"
#include "scenario/spec.h"
#include "trace/behavior.h"
#include "trace/generator.h"
#include "world/grid_map.h"

namespace aimetro::scenario {
namespace {

// ---- Spec text round trips ----

TEST(SpecParse, DefaultSpecRoundTrips) {
  const ScenarioSpec spec;
  const auto parsed = parse_spec_text(spec.to_text());
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(*parsed.spec, spec);
}

TEST(SpecParse, EveryRegistryEntryRoundTrips) {
  for (const auto& entry : registry_entries()) {
    std::string error;
    const auto spec = find_scenario(entry.name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const auto parsed = parse_spec_text(spec->to_text());
    ASSERT_TRUE(parsed) << entry.name << ": " << parsed.error;
    EXPECT_EQ(*parsed.spec, *spec) << entry.name;
  }
}

TEST(SpecParse, CommentsAndBlankLinesIgnored) {
  const auto parsed = parse_spec_text(
      "# a comment\n"
      "\n"
      "agents = 50\n"
      "   seed=7   \n");
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->agents, 50);
  EXPECT_EQ(parsed.spec->seed, 7u);
}

TEST(SpecParse, ParsesOnTopOfABaseSpec) {
  std::string error;
  const auto base = find_scenario("smallville_day", &error);
  ASSERT_TRUE(base.has_value());
  const auto parsed = parse_spec_text("agents = 75\nsegments = 3\n", *base);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->agents, 75);
  EXPECT_EQ(parsed.spec->segments, 3);
  EXPECT_EQ(parsed.spec->window_begin, base->window_begin);  // inherited
}

TEST(SpecParse, ParsesFromFile) {
  const std::string path = ::testing::TempDir() + "aimetro_spec_test.spec";
  {
    std::ofstream out(path);
    out << "# custom\nagents = 30\nbackend = engine\n";
  }
  const auto parsed = parse_spec_file(path);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->agents, 30);
  EXPECT_EQ(parsed.spec->backend, Backend::kEngine);

  const auto missing = parse_spec_file("/nonexistent/aimetro.spec");
  EXPECT_FALSE(missing);
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos);
}

// ---- Malformed input rejection ----

TEST(SpecParse, RejectsUnknownKey) {
  const auto parsed = parse_spec_text("no_such_key = 3\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("unknown key"), std::string::npos);
  EXPECT_NE(parsed.error.find("no_such_key"), std::string::npos);
}

TEST(SpecParse, RejectsMissingEquals) {
  const auto parsed = parse_spec_text("agents 25\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("key=value"), std::string::npos);
}

TEST(SpecParse, RejectsNonNumericInt) {
  const auto parsed = parse_spec_text("agents = many\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("invalid value"), std::string::npos);
}

TEST(SpecParse, RejectsTrailingGarbageOnNumbers) {
  EXPECT_FALSE(parse_spec_text("agents = 25x\n"));
  EXPECT_FALSE(parse_spec_text("radius_p = 4.0.1\n"));
  EXPECT_FALSE(parse_spec_text("seed = -1\n"));  // seed is unsigned
}

TEST(SpecParse, RejectsUnknownEnumValues) {
  EXPECT_FALSE(parse_spec_text("backend = quantum\n"));
  EXPECT_FALSE(parse_spec_text("map = moonbase\n"));
}

TEST(SpecParse, ReportsLineNumbers) {
  const auto parsed = parse_spec_text("agents = 10\nbogus = 1\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos);
}

TEST(ApplyOverride, SetsAndRejects) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_TRUE(apply_override(&spec, "workers=9", &error));
  EXPECT_EQ(spec.workers, 9);
  EXPECT_FALSE(apply_override(&spec, "workers=fast", &error));
  EXPECT_FALSE(apply_override(&spec, "nonsense", &error));
}

// ---- Semantic validation ----

TEST(SpecValidate, RegistryEntriesAreValid) {
  for (const auto& entry : registry_entries()) {
    std::string error;
    const auto spec = find_scenario(entry.name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(validate_spec(*spec), "") << entry.name;
  }
}

TEST(SpecValidate, CatchesStructuralErrors) {
  ScenarioSpec spec;
  spec.agents = 10;
  spec.segments = 3;  // not divisible: fine, the remainder is distributed
  EXPECT_EQ(validate_spec(spec), "");
  spec.agents = 2;
  spec.segments = 3;  // a segment would be empty
  EXPECT_NE(validate_spec(spec), "");

  spec = ScenarioSpec{};
  spec.window_begin = 100;
  spec.window_end = 50;
  EXPECT_NE(validate_spec(spec), "");

  spec = ScenarioSpec{};
  spec.map = MapKind::kArena;
  spec.backend = Backend::kDes;  // arena maps need the live engine
  EXPECT_NE(validate_spec(spec), "");

  spec = ScenarioSpec{};
  spec.profile = "warlock";
  const std::string err = validate_spec(spec);
  EXPECT_NE(err.find("unknown behavior profile"), std::string::npos);
  EXPECT_NE(err.find("townsfolk"), std::string::npos);  // lists knowns
}

TEST(SpecValidate, UnknownModelAndGpuAreErrorsNotDefaults) {
  ScenarioSpec spec;
  spec.model = "gpt-17";
  std::string err = validate_spec(spec);
  EXPECT_NE(err.find("unknown model 'gpt-17'"), std::string::npos);
  EXPECT_NE(err.find("llama-3-8b-instruct"), std::string::npos);

  spec = ScenarioSpec{};
  spec.gpu = "tpu-v9";
  err = validate_spec(spec);
  EXPECT_NE(err.find("unknown GPU 'tpu-v9'"), std::string::npos);
  EXPECT_NE(err.find("NVIDIA L4"), std::string::npos);
}

TEST(LlmSpecs, NameResolutionAndAliases) {
  ASSERT_TRUE(llm::find_model("llama-3-8b-instruct").has_value());
  EXPECT_EQ(llm::find_model("Llama_3 8B Instruct")->name,
            "llama-3-8b-instruct");
  EXPECT_EQ(llm::find_model("70b")->name, "llama-3-70b-instruct");
  EXPECT_EQ(llm::find_model("mixtral")->name, "mixtral-8x7b-instruct-v0.1");
  EXPECT_FALSE(llm::find_model("claude").has_value());
  EXPECT_EQ(llm::find_gpu("a100")->name, "NVIDIA A100-80GB");
  EXPECT_EQ(llm::find_gpu("L4")->name, "NVIDIA L4");
  EXPECT_FALSE(llm::find_gpu("h100").has_value());
  EXPECT_FALSE(llm::known_model_names().empty());
  EXPECT_FALSE(llm::known_gpu_names().empty());
}

// ---- Registry ----

TEST(Registry, HasAtLeastFiveScenariosWithUniqueNames) {
  const auto entries = registry_entries();
  EXPECT_GE(entries.size(), 5u);
  std::set<std::string> names;
  for (const auto& e : entries) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
    EXPECT_FALSE(e.summary.empty()) << e.name;
  }
}

TEST(Registry, ScalingVilleIsParameterized) {
  std::string error;
  const auto s3 = find_scenario("scaling_ville3", &error);
  ASSERT_TRUE(s3.has_value()) << error;
  EXPECT_EQ(s3->segments, 3);
  EXPECT_EQ(s3->agents, 75);
  EXPECT_EQ(validate_spec(*s3), "");

  EXPECT_FALSE(find_scenario("scaling_ville0", &error).has_value());
  EXPECT_FALSE(find_scenario("scaling_villeXL", &error).has_value());
}

TEST(Registry, UnknownNameListsKnownScenarios) {
  std::string error;
  EXPECT_FALSE(find_scenario("metropolis_prime", &error).has_value());
  EXPECT_NE(error.find("unknown scenario"), std::string::npos);
  EXPECT_NE(error.find("smallville_day"), std::string::npos);
}

// ---- Behavior profiles & map builders ----

TEST(BehaviorProfiles, AllNamesResolve) {
  for (const auto& name : trace::BehaviorProfile::names()) {
    const auto p = trace::BehaviorProfile::find(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(trace::BehaviorProfile::find("gremlin").has_value());
}

TEST(MapBuilders, PlazaAndUrbanGridHaveTheArenasProfilesNeed) {
  const auto plaza = world::GridMap::plaza(14);
  EXPECT_NE(plaza.arena("home_0"), nullptr);
  EXPECT_NE(plaza.arena("plaza"), nullptr);
  EXPECT_NE(plaza.arena("cafe"), nullptr);

  const auto city = world::GridMap::urban_grid(9, 18);
  EXPECT_NE(city.arena("home_17"), nullptr);
  EXPECT_NE(city.arena("office_8"), nullptr);
  EXPECT_NE(city.arena("cafe"), nullptr);
  EXPECT_NE(city.arena("park"), nullptr);
}

TEST(BehaviorProfiles, ProfilesShapeTheWorkload) {
  // Socialites on the plaza converse heavily; hermits never do.
  trace::GeneratorConfig cfg;
  cfg.n_agents = 12;
  cfg.seed = 5;
  cfg.target_calls_per_25_agents = 8000.0;  // keep the test fast

  cfg.profile = trace::BehaviorProfile::socialite();
  const auto social =
      trace::generate(world::GridMap::plaza(12), cfg);
  EXPECT_GT(social.interactions.size(), 0u);

  cfg.profile = trace::BehaviorProfile::hermit();
  const auto hermit =
      trace::generate(world::GridMap::smallville(12), cfg);
  EXPECT_EQ(hermit.interactions.size(), 0u);

  // Commuters follow the double-peak diurnal curve: the morning rush
  // (7-9am) carries far more calls than the mid-afternoon lull (2-4pm).
  cfg.profile = trace::BehaviorProfile::commuter();
  const auto commute =
      trace::generate(world::GridMap::urban_grid(6, 12), cfg);
  auto calls_between = [&](Step begin, Step end) {
    std::size_t n = 0;
    for (const auto& agent : commute.agents) {
      for (const auto& call : agent.calls) {
        if (call.step >= begin && call.step < end) ++n;
      }
    }
    return n;
  };
  EXPECT_GT(calls_between(7 * 360, 9 * 360), calls_between(14 * 360, 16 * 360));
}

// ---- The cross-backend determinism guarantee ----

TEST(CrossBackend, DesAndEngineAgreeOnASparseSpec) {
  std::string error;
  auto spec = find_scenario("sparse_ville", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  // Small window keeps both runs fast; hermits in disjoint walled homes
  // never conflict, so the engine replays the trace positions exactly.
  spec->agents = 8;
  spec->window_begin = 4320;
  spec->window_end = 4400;
  spec->workers = 4;
  spec->call_latency_us = 100;

  spec->backend = Backend::kDes;
  const auto des = ScenarioDriver(*spec).run();

  spec->backend = Backend::kEngine;
  const auto engine = ScenarioDriver(*spec).run();

  EXPECT_EQ(des.agents, engine.agents);
  EXPECT_EQ(des.steps, engine.steps);
  EXPECT_EQ(des.agent_steps, engine.agent_steps);
  EXPECT_EQ(des.agent_steps, 8u * 80u);
  EXPECT_EQ(des.total_calls, engine.total_calls);
  // Final scoreboard state — every agent's (step, position) — agrees.
  EXPECT_EQ(des.scoreboard_digest, engine.scoreboard_digest);
  // And the engine's serial and OOO executions produced identical worlds.
  EXPECT_EQ(engine.world_hash_serial, engine.world_hash_metro);
}

TEST(CrossBackend, EngineBackendRunsACoupledScenario) {
  // smallville_day has real coupling and movement conflicts; the engine
  // must still complete every agent-step and keep serial == OOO worlds.
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->backend = Backend::kEngine;
  spec->agents = 10;
  spec->window_begin = 4320;
  spec->window_end = 4360;  // 40 steps
  spec->call_latency_us = 50;

  const auto report = ScenarioDriver(*spec).run();
  EXPECT_EQ(report.agent_steps, 10u * 40u);
  EXPECT_GT(report.total_calls, 0u);
  EXPECT_EQ(report.world_hash_serial, report.world_hash_metro);
}

TEST(Driver, DesReportHasSchedulerMetrics) {
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 4320;
  spec->window_end = 4380;  // one simulated minute x 6

  const auto report = ScenarioDriver(*spec).run();
  EXPECT_GT(report.total_calls, 0u);
  EXPECT_GT(report.serial_seconds, 0.0);
  EXPECT_GT(report.sync_seconds, 0.0);
  EXPECT_GT(report.metro_seconds, 0.0);
  EXPECT_GE(report.speedup_vs_serial, 1.0);
  EXPECT_GT(report.mean_cluster_size, 0.0);
  EXPECT_GT(report.clusters_dispatched, 0u);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Driver, InvalidSpecThrowsWithTheValidationMessage) {
  ScenarioSpec spec;
  spec.model = "gpt-17";
  EXPECT_THROW(ScenarioDriver{spec}, CheckError);
}

// ---- Remainder-preserving segment splits ----

TEST(SegmentSplit, DistributesTheRemainderAcrossSegments) {
  EXPECT_EQ(segment_agent_counts(25, 4),
            (std::vector<std::int32_t>{7, 6, 6, 6}));
  EXPECT_EQ(segment_agent_counts(8, 8),
            (std::vector<std::int32_t>{1, 1, 1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(segment_agent_counts(50, 2),
            (std::vector<std::int32_t>{25, 25}));
  std::int32_t total = 0;
  for (auto c : segment_agent_counts(103, 7)) total += c;
  EXPECT_EQ(total, 103);
  EXPECT_THROW(segment_agent_counts(3, 4), CheckError);
}

TEST(SegmentSplit, TraceAndReportCarryEveryRequestedAgent) {
  // 25 agents over 4 segments used to silently simulate 24 (25/4*4).
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->agents = 25;
  spec->segments = 4;
  spec->window_begin = 4320;
  spec->window_end = 4340;
  ASSERT_EQ(validate_spec(*spec), "");

  const ScenarioDriver driver(*spec);
  EXPECT_EQ(driver.build_trace().n_agents, 25);

  const auto report = driver.run(/*serial_baseline=*/false);
  EXPECT_EQ(report.agents, 25);
  EXPECT_EQ(report.agent_steps, 25u * 20u);
}

// ---- Gym start placement ----

TEST(GymStarts, UniqueWalkableAndComplete) {
  // Overflowing grid anchors used to clamp several agents onto one tile.
  const auto arena = world::GridMap::arena(10, 10);
  const auto starts = plan_gym_starts(arena, 60);
  ASSERT_EQ(starts.size(), 60u);
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (const Tile& t : starts) {
    EXPECT_TRUE(arena.walkable(t)) << t.x << "," << t.y;
    EXPECT_TRUE(seen.insert({t.x, t.y}).second)
        << "duplicate start " << t.x << "," << t.y;
  }
}

TEST(GymStarts, AvoidsUnwalkableTilesOnBuiltUpMaps) {
  const auto ville = world::GridMap::smallville(25);
  const auto starts = plan_gym_starts(ville, 40);
  ASSERT_EQ(starts.size(), 40u);
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (const Tile& t : starts) {
    EXPECT_TRUE(ville.walkable(t));
    EXPECT_TRUE(seen.insert({t.x, t.y}).second);
  }
}

TEST(GymStarts, FailsLoudlyWhenTheMapCannotSeatEveryone) {
  const auto tiny = world::GridMap::arena(4, 4);
  EXPECT_EQ(plan_gym_starts(tiny, 16).size(), 16u);  // exactly full
  EXPECT_THROW(plan_gym_starts(tiny, 17), CheckError);
  ScenarioSpec spec;
  spec.map = MapKind::kArena;
  spec.map_width = 4;
  spec.map_height = 4;
  spec.agents = 17;
  spec.backend = Backend::kEngine;
  EXPECT_NE(validate_spec(spec), "");
}

// ---- Baseline-skipped summaries ----

TEST(Report, SummaryOmitsBaselineWhenSerialSkipped) {
  std::string error;
  auto spec = find_scenario("sparse_ville", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->agents = 4;
  spec->window_begin = 4320;
  spec->window_end = 4360;

  const auto with = ScenarioDriver(*spec).run(/*serial_baseline=*/true);
  EXPECT_TRUE(with.has_serial);
  EXPECT_NE(with.summary().find("baseline"), std::string::npos);
  EXPECT_NE(with.summary().find("vs serial"), std::string::npos);

  const auto without = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  EXPECT_FALSE(without.has_serial);
  EXPECT_EQ(without.summary().find("baseline"), std::string::npos);
  EXPECT_EQ(without.summary().find("vs serial"), std::string::npos);
  EXPECT_NE(without.summary().find("vs sync"), std::string::npos);
}

// ---- The virtual-time engine clock ----

TEST(VirtualClock, EngineVirtualSecondsTrackTheDesBackend) {
  // Same spec on both backends; clock = virtual must report completion
  // times on the DES cost model's virtual axis. The documented tolerance
  // is 25% (README); observed agreement is ~5%.
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 4320;
  spec->window_end = 4380;

  spec->backend = Backend::kDes;
  const auto des = ScenarioDriver(*spec).run();
  ASSERT_GT(des.serial_seconds, 0.0);

  spec->backend = Backend::kEngine;
  spec->clock = ClockKind::kVirtual;
  spec->time_scale = 5000.0;  // ~0.4 s of wall time for this window
  const auto engine = ScenarioDriver(*spec).run();
  EXPECT_TRUE(engine.virtual_time);
  EXPECT_EQ(engine.total_calls, des.total_calls);
  EXPECT_NE(engine.summary().find("s (virtual)"), std::string::npos);
  EXPECT_NEAR(engine.serial_seconds / des.serial_seconds, 1.0, 0.25);
  EXPECT_NEAR(engine.metro_seconds / des.metro_seconds, 1.0, 0.25);
  // The engine's correctness guarantee holds under the virtual clock.
  EXPECT_EQ(engine.world_hash_serial, engine.world_hash_metro);
}

TEST(VirtualClock, WallClockStillDefaultAndWallLabelled) {
  std::string error;
  const auto spec = find_scenario("quickstart_arena", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->clock, ClockKind::kWall);
  auto small = *spec;
  small.agents = 4;
  small.steps_per_day = 20;
  small.call_latency_us = 50;
  const auto report = ScenarioDriver(small).run();
  EXPECT_FALSE(report.virtual_time);
  EXPECT_NE(report.summary().find("s (wall)"), std::string::npos);
}

}  // namespace
}  // namespace aimetro::scenario
