#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "llm/specs.h"
#include "runtime/task_pool.h"
#include "scenario/driver.h"
#include "scenario/registry.h"
#include "scenario/spec.h"
#include "trace/behavior.h"
#include "trace/generator.h"
#include "world/grid_map.h"

namespace aimetro::scenario {
namespace {

// ---- Spec text round trips ----

TEST(SpecParse, DefaultSpecRoundTrips) {
  const ScenarioSpec spec;
  const auto parsed = parse_spec_text(spec.to_text());
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(*parsed.spec, spec);
}

TEST(SpecParse, EveryRegistryEntryRoundTrips) {
  for (const auto& entry : registry_entries()) {
    std::string error;
    const auto spec = find_scenario(entry.name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const auto parsed = parse_spec_text(spec->to_text());
    ASSERT_TRUE(parsed) << entry.name << ": " << parsed.error;
    EXPECT_EQ(*parsed.spec, *spec) << entry.name;
  }
}

TEST(SpecParse, CommentsAndBlankLinesIgnored) {
  const auto parsed = parse_spec_text(
      "# a comment\n"
      "\n"
      "agents = 50\n"
      "   seed=7   \n");
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->agents, 50);
  EXPECT_EQ(parsed.spec->seed, 7u);
}

TEST(SpecParse, ParsesOnTopOfABaseSpec) {
  std::string error;
  const auto base = find_scenario("smallville_day", &error);
  ASSERT_TRUE(base.has_value());
  const auto parsed = parse_spec_text("agents = 75\nsegments = 3\n", *base);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->agents, 75);
  EXPECT_EQ(parsed.spec->segments, 3);
  EXPECT_EQ(parsed.spec->window_begin, base->window_begin);  // inherited
}

TEST(SpecParse, ParsesFromFile) {
  const std::string path = ::testing::TempDir() + "aimetro_spec_test.spec";
  {
    std::ofstream out(path);
    out << "# custom\nagents = 30\nbackend = engine\n";
  }
  const auto parsed = parse_spec_file(path);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->agents, 30);
  EXPECT_EQ(parsed.spec->backend, Backend::kEngine);

  const auto missing = parse_spec_file("/nonexistent/aimetro.spec");
  EXPECT_FALSE(missing);
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos);
}

// ---- Malformed input rejection ----

TEST(SpecParse, RejectsUnknownKey) {
  const auto parsed = parse_spec_text("no_such_key = 3\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("unknown key"), std::string::npos);
  EXPECT_NE(parsed.error.find("no_such_key"), std::string::npos);
}

TEST(SpecParse, UnknownKeySuggestsTheNearestValidKey) {
  // Typos fail hard AND point at the intended key.
  const auto parsed = parse_spec_text("windw_begin = 4320\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("did you mean 'window_begin'?"),
            std::string::npos);

  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(apply_override(&spec, "agnets=50", &error));
  EXPECT_NE(error.find("did you mean 'agents'?"), std::string::npos);
  EXPECT_FALSE(apply_override(&spec, "popluation=hermit:1", &error));
  EXPECT_NE(error.find("did you mean 'population'?"), std::string::npos);
}

TEST(SpecParse, EveryKeyIsSettableAndRoundTrips) {
  // spec_key_names() is the authoritative key list: every key must accept
  // its own rendered default back through apply_override.
  const ScenarioSpec defaults;
  const std::string text = defaults.to_text();
  for (const std::string& key : spec_key_names()) {
    EXPECT_NE(text.find("\n" + key + " = "), std::string::npos)
        << "to_text() does not render '" << key << "'";
  }
  const auto parsed = parse_spec_text(text);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(*parsed.spec, defaults);
}

TEST(SpecDocs, EverySpecKeyIsDocumented) {
  // docs/SCENARIO_SPEC.md is the exhaustive key reference; a key added to
  // the field table without a docs row fails here, not in review.
  std::ifstream docs(std::string(AIMETRO_SOURCE_DIR) +
                     "/docs/SCENARIO_SPEC.md");
  ASSERT_TRUE(docs.good()) << "docs/SCENARIO_SPEC.md missing";
  std::stringstream buffer;
  buffer << docs.rdbuf();
  const std::string text = buffer.str();
  for (const std::string& key : spec_key_names()) {
    EXPECT_NE(text.find("`" + key + "`"), std::string::npos)
        << "spec key '" << key << "' is not documented in SCENARIO_SPEC.md";
  }
}

TEST(SpecParse, DaysAndPopulationRoundTrip) {
  const auto parsed = parse_spec_text(
      "days = 7\n"
      "population = townsfolk:0.6,socialite:0.2,commuter:0.15,hermit:0.05\n");
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->days, 7);
  EXPECT_EQ(parsed.spec->population,
            "townsfolk:0.6,socialite:0.2,commuter:0.15,hermit:0.05");
  EXPECT_EQ(parsed.spec->episode_steps(), 7 * 8640);
  const auto reparsed = parse_spec_text(parsed.spec->to_text());
  ASSERT_TRUE(reparsed) << reparsed.error;
  EXPECT_EQ(*reparsed.spec, *parsed.spec);
}

TEST(SpecParse, RejectsMissingEquals) {
  const auto parsed = parse_spec_text("agents 25\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("key=value"), std::string::npos);
}

TEST(SpecParse, RejectsNonNumericInt) {
  const auto parsed = parse_spec_text("agents = many\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("invalid value"), std::string::npos);
}

TEST(SpecParse, RejectsTrailingGarbageOnNumbers) {
  EXPECT_FALSE(parse_spec_text("agents = 25x\n"));
  EXPECT_FALSE(parse_spec_text("radius_p = 4.0.1\n"));
  EXPECT_FALSE(parse_spec_text("seed = -1\n"));  // seed is unsigned
}

TEST(SpecParse, RejectsUnknownEnumValues) {
  EXPECT_FALSE(parse_spec_text("backend = quantum\n"));
  EXPECT_FALSE(parse_spec_text("map = moonbase\n"));
}

TEST(SpecParse, ReportsLineNumbers) {
  const auto parsed = parse_spec_text("agents = 10\nbogus = 1\n");
  ASSERT_FALSE(parsed);
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos);
}

TEST(ApplyOverride, SetsAndRejects) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_TRUE(apply_override(&spec, "workers=9", &error));
  EXPECT_EQ(spec.workers, 9);
  EXPECT_FALSE(apply_override(&spec, "workers=fast", &error));
  EXPECT_FALSE(apply_override(&spec, "nonsense", &error));
}

// ---- Semantic validation ----

TEST(SpecValidate, RegistryEntriesAreValid) {
  for (const auto& entry : registry_entries()) {
    std::string error;
    const auto spec = find_scenario(entry.name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(validate_spec(*spec), "") << entry.name;
  }
}

TEST(SpecValidate, CatchesStructuralErrors) {
  ScenarioSpec spec;
  spec.agents = 10;
  spec.segments = 3;  // not divisible: fine, the remainder is distributed
  EXPECT_EQ(validate_spec(spec), "");
  spec.agents = 2;
  spec.segments = 3;  // a segment would be empty
  EXPECT_NE(validate_spec(spec), "");

  spec = ScenarioSpec{};
  spec.window_begin = 100;
  spec.window_end = 50;
  EXPECT_NE(validate_spec(spec), "");

  spec = ScenarioSpec{};
  spec.map = MapKind::kArena;
  spec.backend = Backend::kDes;  // arena maps need the live engine
  EXPECT_NE(validate_spec(spec), "");

  spec = ScenarioSpec{};
  spec.profile = "warlock";
  const std::string err = validate_spec(spec);
  EXPECT_NE(err.find("unknown behavior profile"), std::string::npos);
  EXPECT_NE(err.find("townsfolk"), std::string::npos);  // lists knowns
}

TEST(SpecValidate, PoolWorkersValidatesAndDerives) {
  ScenarioSpec spec;
  EXPECT_EQ(validate_spec(spec), "");
  // 0 (the default) derives from `workers`.
  EXPECT_EQ(spec.pool_workers, 0);
  EXPECT_EQ(spec.resolved_pool_workers(),
            runtime::derive_pool_workers(spec.workers));
  spec.workers = 3;
  EXPECT_EQ(spec.resolved_pool_workers(), 6);
  spec.pool_workers = 5;  // explicit values win
  EXPECT_EQ(spec.resolved_pool_workers(), 5);
  EXPECT_EQ(validate_spec(spec), "");
  spec.pool_workers = -1;
  EXPECT_NE(validate_spec(spec), "");

  // The key parses, round-trips, and typos suggest it.
  const auto parsed = parse_spec_text("pool_workers = 12\n");
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->pool_workers, 12);
  ScenarioSpec target;
  std::string error;
  EXPECT_FALSE(apply_override(&target, "pool_worker=4", &error));
  EXPECT_NE(error.find("did you mean 'pool_workers'?"), std::string::npos);
}

TEST(SpecValidate, DaysAndPopulation) {
  ScenarioSpec spec;
  spec.days = 0;
  EXPECT_NE(validate_spec(spec), "");
  spec.days = 65;
  EXPECT_NE(validate_spec(spec), "");
  spec.days = 7;
  EXPECT_EQ(validate_spec(spec), "");

  // Windows may span day boundaries but not the episode's end.
  spec.window_begin = 8400;
  spec.window_end = 9000;  // crosses midnight into day 2
  EXPECT_EQ(validate_spec(spec), "");
  spec.days = 1;
  EXPECT_NE(validate_spec(spec), "");  // now past the single day's end

  spec = ScenarioSpec{};
  spec.population = "townsfolk:0.5,hermit:0.5";
  EXPECT_EQ(validate_spec(spec), "");
  spec.population = "warlock:1.0";
  EXPECT_NE(validate_spec(spec).find("unknown behavior profile"),
            std::string::npos);
  spec.population = "townsfolk:0";
  EXPECT_NE(validate_spec(spec), "");
  spec.population = "townsfolk:0.5,townsfolk:0.5";
  EXPECT_NE(validate_spec(spec).find("duplicate"), std::string::npos);
  spec.population = "townsfolk";
  EXPECT_NE(validate_spec(spec).find("name:weight"), std::string::npos);

  // Gym agents have no profiles: population on an arena map would be
  // silently ignored, so it is rejected instead.
  spec = ScenarioSpec{};
  spec.map = MapKind::kArena;
  spec.backend = Backend::kEngine;
  spec.population = "townsfolk:1";
  EXPECT_NE(validate_spec(spec).find("population"), std::string::npos);
}

TEST(PopulationMix, ParsesNormalizesAndRejects) {
  std::string error;
  const auto mix = trace::PopulationMix::parse(
      " townsfolk : 3 , hermit:1 ", &error);
  ASSERT_TRUE(mix.has_value()) << error;
  EXPECT_EQ(mix->profiles, (std::vector<std::string>{"townsfolk", "hermit"}));
  EXPECT_EQ(mix->weights, (std::vector<double>{3.0, 1.0}));
  // to_text round-trips through parse.
  const auto again = trace::PopulationMix::parse(mix->to_text(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->profiles, mix->profiles);

  EXPECT_FALSE(trace::PopulationMix::parse("", &error).has_value());
  EXPECT_FALSE(trace::PopulationMix::parse("townsfolk:1,", &error).has_value());
  EXPECT_FALSE(trace::PopulationMix::parse("townsfolk:-1", &error).has_value());
  EXPECT_FALSE(trace::PopulationMix::parse("townsfolk:abc", &error).has_value());
}

TEST(PopulationMix, AssignmentIsDeterministicAndExact) {
  std::string error;
  const auto mix = trace::PopulationMix::parse(
      "townsfolk:0.6,socialite:0.2,commuter:0.15,hermit:0.05", &error);
  ASSERT_TRUE(mix.has_value()) << error;

  const auto a = trace::assign_profiles(*mix, 20, 42);
  const auto b = trace::assign_profiles(*mix, 20, 42);
  EXPECT_EQ(a, b);  // same (mix, n, seed) -> same assignment, always

  // Largest-remainder quotas: the realized mix is exact, not sampled.
  auto count = [&](const std::vector<std::string>& v, const char* name) {
    return std::count(v.begin(), v.end(), name);
  };
  EXPECT_EQ(count(a, "townsfolk"), 12);
  EXPECT_EQ(count(a, "socialite"), 4);
  EXPECT_EQ(count(a, "commuter"), 3);
  EXPECT_EQ(count(a, "hermit"), 1);

  // A different seed interleaves differently but keeps the same counts.
  const auto c = trace::assign_profiles(*mix, 20, 7);
  EXPECT_NE(a, c);
  EXPECT_EQ(count(c, "townsfolk"), 12);
  EXPECT_EQ(count(c, "hermit"), 1);
}

TEST(SpecValidate, UnknownModelAndGpuAreErrorsNotDefaults) {
  ScenarioSpec spec;
  spec.model = "gpt-17";
  std::string err = validate_spec(spec);
  EXPECT_NE(err.find("unknown model 'gpt-17'"), std::string::npos);
  EXPECT_NE(err.find("llama-3-8b-instruct"), std::string::npos);

  spec = ScenarioSpec{};
  spec.gpu = "tpu-v9";
  err = validate_spec(spec);
  EXPECT_NE(err.find("unknown GPU 'tpu-v9'"), std::string::npos);
  EXPECT_NE(err.find("NVIDIA L4"), std::string::npos);
}

TEST(LlmSpecs, NameResolutionAndAliases) {
  ASSERT_TRUE(llm::find_model("llama-3-8b-instruct").has_value());
  EXPECT_EQ(llm::find_model("Llama_3 8B Instruct")->name,
            "llama-3-8b-instruct");
  EXPECT_EQ(llm::find_model("70b")->name, "llama-3-70b-instruct");
  EXPECT_EQ(llm::find_model("mixtral")->name, "mixtral-8x7b-instruct-v0.1");
  EXPECT_FALSE(llm::find_model("claude").has_value());
  EXPECT_EQ(llm::find_gpu("a100")->name, "NVIDIA A100-80GB");
  EXPECT_EQ(llm::find_gpu("L4")->name, "NVIDIA L4");
  EXPECT_FALSE(llm::find_gpu("h100").has_value());
  EXPECT_FALSE(llm::known_model_names().empty());
  EXPECT_FALSE(llm::known_gpu_names().empty());
}

// ---- Registry ----

TEST(Registry, HasAtLeastFiveScenariosWithUniqueNames) {
  const auto entries = registry_entries();
  EXPECT_GE(entries.size(), 5u);
  std::set<std::string> names;
  for (const auto& e : entries) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
    EXPECT_FALSE(e.summary.empty()) << e.name;
  }
}

TEST(Registry, ScalingVilleIsParameterized) {
  std::string error;
  const auto s3 = find_scenario("scaling_ville3", &error);
  ASSERT_TRUE(s3.has_value()) << error;
  EXPECT_EQ(s3->segments, 3);
  EXPECT_EQ(s3->agents, 75);
  EXPECT_EQ(validate_spec(*s3), "");

  EXPECT_FALSE(find_scenario("scaling_ville0", &error).has_value());
  EXPECT_FALSE(find_scenario("scaling_villeXL", &error).has_value());
}

TEST(Registry, MixedVilleIsParameterized) {
  std::string error;
  const auto m12 = find_scenario("mixed_ville12", &error);
  ASSERT_TRUE(m12.has_value()) << error;
  EXPECT_EQ(m12->agents, 12);
  EXPECT_FALSE(m12->population.empty());
  EXPECT_EQ(validate_spec(*m12), "");

  EXPECT_FALSE(find_scenario("mixed_ville3", &error).has_value());
  EXPECT_FALSE(find_scenario("mixed_ville9000", &error).has_value());
  EXPECT_FALSE(find_scenario("mixed_villeXL", &error).has_value());
}

TEST(Registry, MetroVilleIsParameterizedToOneHundredThousand) {
  std::string error;
  const auto m100 = find_scenario("metro_ville100", &error);
  ASSERT_TRUE(m100.has_value()) << error;
  EXPECT_EQ(m100->agents, 100);
  EXPECT_EQ(m100->segments, 4);
  EXPECT_EQ(validate_spec(*m100), "");
  // Small members stay unsharded under the auto partition.
  EXPECT_EQ(m100->resolved_shards(), 1);

  const auto m100k = find_scenario("metro_ville100000", &error);
  ASSERT_TRUE(m100k.has_value()) << error;
  EXPECT_EQ(m100k->agents, 100000);
  EXPECT_EQ(m100k->segments, 4000);
  EXPECT_EQ(validate_spec(*m100k), "");
  EXPECT_EQ(m100k->resolved_shards(), 40);

  // Non-multiples of 25 ride the generic remainder split.
  const auto m1013 = find_scenario("metro_ville1013", &error);
  ASSERT_TRUE(m1013.has_value()) << error;
  EXPECT_EQ(m1013->segments, 41);
  EXPECT_EQ(validate_spec(*m1013), "");

  EXPECT_FALSE(find_scenario("metro_ville99", &error).has_value());
  EXPECT_FALSE(find_scenario("metro_ville100001", &error).has_value());
  EXPECT_FALSE(find_scenario("metro_villeXXL", &error).has_value());
}

TEST(Registry, SkewedVilleIsAHotspotReshardEpisode) {
  std::string error;
  const auto s1k = find_scenario("skewed_ville1000", &error);
  ASSERT_TRUE(s1k.has_value()) << error;
  EXPECT_EQ(s1k->agents, 1000);
  EXPECT_EQ(s1k->segments, 40);
  EXPECT_DOUBLE_EQ(s1k->segment_skew, 0.3);
  EXPECT_EQ(s1k->partition, PartitionChoice::kPopulation);
  EXPECT_EQ(s1k->reshard, ReshardMode::kEpisode);
  EXPECT_EQ(validate_spec(*s1k), "");
  // The replay window must straddle the day-0/day-1 midnight so the
  // episode reshard has a boundary to fire at.
  EXPECT_EQ(s1k->days, 2);
  EXPECT_LT(s1k->window_begin, s1k->steps_per_day);
  EXPECT_GT(s1k->window_end, s1k->steps_per_day);
  EXPECT_LE(s1k->window_end, s1k->episode_steps());

  EXPECT_FALSE(find_scenario("skewed_ville99", &error).has_value());
  EXPECT_FALSE(find_scenario("skewed_ville100001", &error).has_value());
  EXPECT_FALSE(find_scenario("skewed_villeXL", &error).has_value());
}

TEST(Registry, MetropolisWeekIsAMultiDayMixedEpisode) {
  std::string error;
  const auto week = find_scenario("metropolis_week", &error);
  ASSERT_TRUE(week.has_value()) << error;
  EXPECT_EQ(week->days, 7);
  EXPECT_FALSE(week->population.empty());
  EXPECT_EQ(validate_spec(*week), "");
  EXPECT_EQ(week->episode_steps(), 7 * week->steps_per_day);
}

TEST(Registry, UnknownNameListsKnownScenarios) {
  std::string error;
  EXPECT_FALSE(find_scenario("metropolis_prime", &error).has_value());
  EXPECT_NE(error.find("unknown scenario"), std::string::npos);
  EXPECT_NE(error.find("smallville_day"), std::string::npos);
}

// ---- Behavior profiles & map builders ----

TEST(BehaviorProfiles, AllNamesResolve) {
  for (const auto& name : trace::BehaviorProfile::names()) {
    const auto p = trace::BehaviorProfile::find(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(trace::BehaviorProfile::find("gremlin").has_value());
}

TEST(MapBuilders, PlazaAndUrbanGridHaveTheArenasProfilesNeed) {
  const auto plaza = world::GridMap::plaza(14);
  EXPECT_NE(plaza.arena("home_0"), nullptr);
  EXPECT_NE(plaza.arena("plaza"), nullptr);
  EXPECT_NE(plaza.arena("cafe"), nullptr);

  const auto city = world::GridMap::urban_grid(9, 18);
  EXPECT_NE(city.arena("home_17"), nullptr);
  EXPECT_NE(city.arena("office_8"), nullptr);
  EXPECT_NE(city.arena("cafe"), nullptr);
  EXPECT_NE(city.arena("park"), nullptr);
}

TEST(BehaviorProfiles, ProfilesShapeTheWorkload) {
  // Socialites on the plaza converse heavily; hermits never do.
  trace::GeneratorConfig cfg;
  cfg.n_agents = 12;
  cfg.seed = 5;
  cfg.target_calls_per_25_agents = 8000.0;  // keep the test fast

  cfg.profile = trace::BehaviorProfile::socialite();
  const auto social =
      trace::generate(world::GridMap::plaza(12), cfg);
  EXPECT_GT(social.interactions.size(), 0u);

  cfg.profile = trace::BehaviorProfile::hermit();
  const auto hermit =
      trace::generate(world::GridMap::smallville(12), cfg);
  EXPECT_EQ(hermit.interactions.size(), 0u);

  // Commuters follow the double-peak diurnal curve: the morning rush
  // (7-9am) carries far more calls than the mid-afternoon lull (2-4pm).
  cfg.profile = trace::BehaviorProfile::commuter();
  const auto commute =
      trace::generate(world::GridMap::urban_grid(6, 12), cfg);
  auto calls_between = [&](Step begin, Step end) {
    std::size_t n = 0;
    for (const auto& agent : commute.agents) {
      for (const auto& call : agent.calls) {
        if (call.step >= begin && call.step < end) ++n;
      }
    }
    return n;
  };
  EXPECT_GT(calls_between(7 * 360, 9 * 360), calls_between(14 * 360, 16 * 360));
}

// ---- Multi-day episodes ----

namespace {

/// Structural equality of two traces (schema has no operator== on purpose;
/// tests want the members spelled out for useful failure messages).
void expect_traces_identical(const trace::SimulationTrace& a,
                             const trace::SimulationTrace& b) {
  ASSERT_EQ(a.n_agents, b.n_agents);
  ASSERT_EQ(a.n_steps, b.n_steps);
  ASSERT_EQ(a.start_step, b.start_step);
  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].positions, b.agents[i].positions) << "agent " << i;
    EXPECT_EQ(a.agents[i].calls, b.agents[i].calls) << "agent " << i;
  }
  EXPECT_EQ(a.interactions, b.interactions);
}

}  // namespace

TEST(MultiDay, OneDayReducesExactlyToTheSingleDayTrace) {
  // days = 1 must be byte-identical to the historical single-day
  // generator — multi-day plumbing cannot perturb existing workloads.
  const auto map = world::GridMap::smallville(8);
  trace::GeneratorConfig cfg;
  cfg.n_agents = 6;
  cfg.seed = 11;
  cfg.target_calls_per_25_agents = 6000.0;  // keep the test fast
  cfg.days = 1;
  expect_traces_identical(trace::generate_episode(map, cfg),
                          trace::generate(map, cfg));
}

TEST(MultiDay, EpisodeChainsDaysWithCarryOverAndFreshRandomness) {
  const auto map = world::GridMap::urban_grid(6, 12);
  trace::GeneratorConfig cfg;
  cfg.n_agents = 6;
  cfg.seed = 3;
  cfg.target_calls_per_25_agents = 5000.0;
  cfg.days = 3;
  const auto episode = trace::generate_episode(map, cfg);
  EXPECT_EQ(episode.n_steps, 3 * cfg.steps_per_day);
  EXPECT_EQ(episode.start_step, 0);

  std::set<std::int32_t> conv_ids_day1, conv_ids_later;
  for (const auto& agent : episode.agents) {
    ASSERT_EQ(agent.positions.size(),
              static_cast<std::size_t>(episode.n_steps) + 1);
    // Calls land in every day of the episode.
    bool day1 = false, day2 = false, day3 = false;
    for (const auto& call : agent.calls) {
      const std::int32_t d = call.step / cfg.steps_per_day;
      day1 |= d == 0;
      day2 |= d == 1;
      day3 |= d == 2;
      if (call.conversation_id >= 0) {
        (d == 0 ? conv_ids_day1 : conv_ids_later).insert(call.conversation_id);
        // Renumbered ids keep the hash convention.
        EXPECT_EQ(call.prompt_hash,
                  trace::conversation_prompt_hash(call.conversation_id));
      }
    }
    EXPECT_TRUE(day1 && day2 && day3) << "agent " << agent.agent;
  }
  // Conversation identities never straddle days (no phantom cache hits).
  for (std::int32_t id : conv_ids_later) {
    EXPECT_EQ(conv_ids_day1.count(id), 0u);
  }

  // Fresh per-day randomness: day 2's call pattern differs from day 1's.
  auto day_steps = [&](std::int32_t day) {
    std::vector<Step> steps;
    for (const auto& agent : episode.agents) {
      for (const auto& call : agent.calls) {
        const std::int32_t d = call.step / cfg.steps_per_day;
        if (d == day) steps.push_back(call.step - d * cfg.steps_per_day);
      }
    }
    return steps;
  };
  EXPECT_NE(day_steps(0), day_steps(1));
  EXPECT_NE(day_steps(1), day_steps(2));
}

TEST(MultiDay, WindowedDesRunReportsPerDayRows) {
  std::string error;
  auto spec = find_scenario("metropolis_week", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->days = 2;
  spec->agents = 8;
  spec->calls_scale = 0.1;
  // A window straddling midnight: late day 1 through early day 2.
  spec->window_begin = 7200;   // 20:00 day 1
  spec->window_end = 11520;    // 08:00 day 2
  ASSERT_EQ(validate_spec(*spec), "");

  const auto report = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  ASSERT_EQ(report.day_rows.size(), 2u);
  EXPECT_EQ(report.day_rows[0].day, 0);
  EXPECT_EQ(report.day_rows[1].day, 1);
  std::uint64_t row_calls = 0;
  for (const auto& row : report.day_rows) row_calls += row.calls;
  EXPECT_EQ(row_calls, report.total_calls);
  // Day finishes are ordered and positive under virtual time.
  EXPECT_GT(report.day_rows[0].finish_seconds, 0.0);
  EXPECT_GE(report.day_rows[1].finish_seconds,
            report.day_rows[0].finish_seconds);
  EXPECT_NE(report.summary().find("per-day breakdown"), std::string::npos);
  EXPECT_NE(report.summary().find("population"), std::string::npos);
}

// ---- The cross-backend determinism guarantee ----

TEST(CrossBackend, DesAndEngineAgreeOnASparseSpec) {
  std::string error;
  auto spec = find_scenario("sparse_ville", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  // Small window keeps both runs fast; hermits in disjoint walled homes
  // never conflict, so the engine replays the trace positions exactly.
  spec->agents = 8;
  spec->window_begin = 4320;
  spec->window_end = 4400;
  spec->workers = 4;
  spec->call_latency_us = 100;

  spec->backend = Backend::kDes;
  const auto des = ScenarioDriver(*spec).run();

  spec->backend = Backend::kEngine;
  const auto engine = ScenarioDriver(*spec).run();

  EXPECT_EQ(des.agents, engine.agents);
  EXPECT_EQ(des.steps, engine.steps);
  EXPECT_EQ(des.agent_steps, engine.agent_steps);
  EXPECT_EQ(des.agent_steps, 8u * 80u);
  EXPECT_EQ(des.total_calls, engine.total_calls);
  // Final scoreboard state — every agent's (step, position) — agrees.
  EXPECT_EQ(des.scoreboard_digest, engine.scoreboard_digest);
  // And the engine's serial and OOO executions produced identical worlds.
  EXPECT_EQ(engine.world_hash_serial, engine.world_hash_metro);
}

TEST(CrossBackend, MixedPopulationAssignmentAndStateAgree) {
  // A heterogeneous multi-day spec must resolve to the same per-agent
  // profile assignment — and the same final scoreboard state — on both
  // backends (both derive it from (population, agents, seed) alone).
  std::string error;
  auto spec = find_scenario("metropolis_week", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->days = 2;
  spec->agents = 6;
  spec->calls_scale = 0.05;
  spec->window_begin = 8580;  // 23:50 day 1 ...
  spec->window_end = 8700;    // ... 00:10 day 2 (120 steps over midnight)
  spec->workers = 4;
  spec->call_latency_us = 50;
  ASSERT_EQ(validate_spec(*spec), "");

  spec->backend = Backend::kDes;
  const auto des = ScenarioDriver(*spec).run(/*serial_baseline=*/false);

  spec->backend = Backend::kEngine;
  const auto engine = ScenarioDriver(*spec).run(/*serial_baseline=*/false);

  EXPECT_EQ(des.population, engine.population);
  EXPECT_FALSE(des.population.empty());
  EXPECT_EQ(des.agents, engine.agents);
  EXPECT_EQ(des.total_calls, engine.total_calls);
  EXPECT_EQ(des.scoreboard_digest, engine.scoreboard_digest);
  ASSERT_EQ(des.day_rows.size(), 2u);
  ASSERT_EQ(engine.day_rows.size(), 2u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(des.day_rows[d].calls, engine.day_rows[d].calls);
    EXPECT_EQ(des.day_rows[d].input_tokens, engine.day_rows[d].input_tokens);
  }
}

TEST(CrossBackend, EngineBackendRunsACoupledScenario) {
  // smallville_day has real coupling and movement conflicts; the engine
  // must still complete every agent-step and keep serial == OOO worlds.
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->backend = Backend::kEngine;
  spec->agents = 10;
  spec->window_begin = 4320;
  spec->window_end = 4360;  // 40 steps
  spec->call_latency_us = 50;

  const auto report = ScenarioDriver(*spec).run();
  EXPECT_EQ(report.agent_steps, 10u * 40u);
  EXPECT_GT(report.total_calls, 0u);
  EXPECT_EQ(report.world_hash_serial, report.world_hash_metro);
}

TEST(Driver, DesReportHasSchedulerMetrics) {
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 4320;
  spec->window_end = 4380;  // one simulated minute x 6

  const auto report = ScenarioDriver(*spec).run();
  EXPECT_GT(report.total_calls, 0u);
  EXPECT_GT(report.serial_seconds, 0.0);
  EXPECT_GT(report.sync_seconds, 0.0);
  EXPECT_GT(report.metro_seconds, 0.0);
  EXPECT_GE(report.speedup_vs_serial, 1.0);
  EXPECT_GT(report.mean_cluster_size, 0.0);
  EXPECT_GT(report.clusters_dispatched, 0u);
  EXPECT_FALSE(report.summary().empty());
}

TEST(Driver, InvalidSpecThrowsWithTheValidationMessage) {
  ScenarioSpec spec;
  spec.model = "gpt-17";
  EXPECT_THROW(ScenarioDriver{spec}, CheckError);
}

// ---- Graph-native social worlds ----

TEST(GraphWorld, SpecKeysParseValidateAndSuggest) {
  // The world kind is explicit at parse time; the graph_* knobs parse,
  // round-trip, and validate their ranges.
  const auto parsed = parse_spec_text(
      "world = graph\n"
      "graph_nodes = 60\n"
      "graph_degree = 4\n"
      "graph_rewire = 0.2\n"
      "max_vel = 1\n");
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.spec->world, WorldKind::kGraph);
  EXPECT_EQ(parsed.spec->graph_nodes, 60);
  EXPECT_EQ(validate_spec(*parsed.spec), "");
  const auto again = parse_spec_text(parsed.spec->to_text());
  ASSERT_TRUE(again) << again.error;
  EXPECT_EQ(*again.spec, *parsed.spec);

  // Unknown world kinds and typo'd keys fail loudly with suggestions.
  EXPECT_FALSE(parse_spec_text("world = torus\n"));
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(apply_override(&spec, "grph_nodes=60", &error));
  EXPECT_NE(error.find("did you mean 'graph_nodes'?"), std::string::npos);

  // Setting graph knobs while world = grid is a spec error that names
  // the fix, not a silently ignored key.
  ASSERT_TRUE(apply_override(&spec, "graph_nodes=60", &error)) << error;
  EXPECT_NE(validate_spec(spec).find("world = graph"), std::string::npos);

  // Range/compatibility validation on graph worlds.
  auto graph_spec = *parsed.spec;
  graph_spec.graph_degree = 3;  // odd
  EXPECT_NE(validate_spec(graph_spec), "");
  graph_spec = *parsed.spec;
  graph_spec.graph_rewire = 1.5;
  EXPECT_NE(validate_spec(graph_spec), "");
  graph_spec = *parsed.spec;
  graph_spec.max_vel = 0.5;  // cannot even cross one edge
  EXPECT_NE(validate_spec(graph_spec), "");
  graph_spec = *parsed.spec;
  graph_spec.segments = 2;  // grid-only construction
  EXPECT_NE(validate_spec(graph_spec), "");
  graph_spec = *parsed.spec;
  graph_spec.days = 2;  // graph generator is single-day
  EXPECT_NE(validate_spec(graph_spec), "");
}

TEST(GraphWorld, SocialNetFamilyIsParameterized) {
  std::string error;
  const auto s10 = find_scenario("social_net10", &error);
  ASSERT_TRUE(s10.has_value()) << error;
  EXPECT_EQ(s10->world, WorldKind::kGraph);
  EXPECT_EQ(s10->agents, 10);
  EXPECT_EQ(s10->graph_nodes, 200);  // ~1 agent per 20 nodes
  EXPECT_EQ(validate_spec(*s10), "");

  const auto s10k = find_scenario("social_net10000", &error);
  ASSERT_TRUE(s10k.has_value()) << error;
  EXPECT_EQ(s10k->agents, 10000);
  EXPECT_EQ(s10k->graph_nodes, 200000);
  EXPECT_EQ(validate_spec(*s10k), "");

  EXPECT_FALSE(find_scenario("social_net9", &error).has_value());
  EXPECT_FALSE(find_scenario("social_net10001", &error).has_value());
  EXPECT_FALSE(find_scenario("social_netXL", &error).has_value());
}

TEST(GraphWorld, CrossBackendDigestsAgreeIndexedAndBrute) {
  // The tentpole guarantee at the scenario level: a graph world reaches
  // the same final scoreboard state on the DES and engine backends, in
  // indexed and brute scan modes — four runs, one digest.
  std::string error;
  auto spec = find_scenario("social_net10", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 4320;
  spec->window_end = 4340;
  spec->call_latency_us = 0;
  ASSERT_EQ(validate_spec(*spec), "");

  std::vector<std::uint64_t> digests;
  std::uint64_t calls = 0;
  for (Backend backend : {Backend::kDes, Backend::kEngine}) {
    for (ScoreboardKind scan :
         {ScoreboardKind::kIndexed, ScoreboardKind::kBrute}) {
      spec->backend = backend;
      spec->scoreboard = scan;
      const auto report = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
      EXPECT_EQ(report.agent_steps, 10u * 20u)
          << backend_name(backend) << "/" << scoreboard_name(scan);
      digests.push_back(report.scoreboard_digest);
      if (calls == 0) calls = report.total_calls;
      EXPECT_EQ(report.total_calls, calls);
    }
  }
  ASSERT_EQ(digests.size(), 4u);
  EXPECT_EQ(digests[0], digests[1]) << "des indexed vs brute";
  EXPECT_EQ(digests[0], digests[2]) << "des vs engine";
  EXPECT_EQ(digests[2], digests[3]) << "engine indexed vs brute";
}

// ---- Scoreboard scan modes ----

TEST(ScanModes, SpecKeyParsesRendersAndRejects) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.scoreboard, ScoreboardKind::kIndexed);
  std::string error;
  ASSERT_TRUE(apply_override(&spec, "scoreboard=brute", &error)) << error;
  EXPECT_EQ(spec.scoreboard, ScoreboardKind::kBrute);
  EXPECT_NE(spec.to_text().find("scoreboard = brute"), std::string::npos);
  EXPECT_FALSE(apply_override(&spec, "scoreboard=quadtree", &error));
  EXPECT_EQ(validate_spec(spec), "");
}

TEST(ScanModes, BruteAndIndexedDigestsAgreeOnEveryRegistryScenario) {
  // The differential guarantee at the workload level: for every shipped
  // registry scenario, on both backends, the spatial-index scoreboard
  // must reach the same final state (digest), dispatch the same clusters,
  // and measure the same sparsity as the brute-force reference. Windows
  // are shrunk so the whole sweep stays unit-test-sized; the Release CI
  // smoke runs metro_ville1000 at full window.
  for (const auto& entry : registry_entries()) {
    std::string error;
    auto spec = find_scenario(entry.name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    if (spec->map == MapKind::kArena) {
      spec->steps_per_day = 20;  // live gym run: 20 target steps
    } else {
      spec->window_begin = 4320;
      spec->window_end = 4340;
      if (spec->agents > 200) {
        spec->agents = 200;
        spec->segments = std::min(spec->segments, 8);
      }
    }
    spec->call_latency_us = 0;
    ASSERT_EQ(validate_spec(*spec), "") << entry.name;

    for (Backend backend : {Backend::kDes, Backend::kEngine}) {
      if (spec->map == MapKind::kArena && backend == Backend::kDes) {
        continue;  // arena maps are engine-only
      }
      spec->backend = backend;
      spec->scoreboard = ScoreboardKind::kIndexed;
      const auto indexed = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
      spec->scoreboard = ScoreboardKind::kBrute;
      const auto brute = ScenarioDriver(*spec).run(/*serial_baseline=*/false);

      EXPECT_EQ(indexed.scoreboard_digest, brute.scoreboard_digest)
          << entry.name << " on " << backend_name(backend);
      EXPECT_EQ(indexed.total_calls, brute.total_calls) << entry.name;
      EXPECT_EQ(indexed.agent_steps, brute.agent_steps) << entry.name;
      if (backend == Backend::kDes) {
        // Virtual time makes the whole schedule deterministic, so the
        // scheduler statistics must match bit for bit. (Engine runs
        // reach the same final state, but cluster formation there
        // depends on real thread interleaving either way.)
        EXPECT_EQ(indexed.clusters_dispatched, brute.clusters_dispatched)
            << entry.name;
        EXPECT_EQ(indexed.mean_cluster_size, brute.mean_cluster_size)
            << entry.name;
        EXPECT_EQ(indexed.mean_blockers, brute.mean_blockers) << entry.name;
        EXPECT_EQ(indexed.metro_seconds, brute.metro_seconds) << entry.name;
      }
    }
  }
}

TEST(ScanModes, ShardedAndUnshardedDigestsAgreeOnEveryRegistryScenario) {
  // The sharding guarantee at the workload level: on every shipped
  // scenario, on both backends, the region-partitioned scoreboard must
  // reach the same final state, issue the same calls, and (in virtual
  // time) measure the same schedule as the single-strip reference —
  // sharding changes which locks are taken, never what is computed.
  // Arena maps are skipped: the gym loop is unsharded by construction.
  for (const auto& entry : registry_entries()) {
    std::string error;
    auto spec = find_scenario(entry.name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    if (spec->map == MapKind::kArena) continue;
    spec->window_begin = 4320;
    spec->window_end = 4340;
    if (spec->agents > 200) {
      spec->agents = 200;
      spec->segments = std::min(spec->segments, 8);
    }
    spec->call_latency_us = 0;
    ASSERT_EQ(validate_spec(*spec), "") << entry.name;

    for (Backend backend : {Backend::kDes, Backend::kEngine}) {
      spec->backend = backend;
      spec->shards = 1;
      const auto single = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
      spec->shards = 8;
      const auto sharded = ScenarioDriver(*spec).run(/*serial_baseline=*/false);

      EXPECT_EQ(sharded.scoreboard_digest, single.scoreboard_digest)
          << entry.name << " on " << backend_name(backend);
      EXPECT_EQ(sharded.total_calls, single.total_calls) << entry.name;
      EXPECT_EQ(sharded.agent_steps, single.agent_steps) << entry.name;
      // Graph worlds measure hops, which the strip partition cannot
      // cover: the board collapses to one strip and must say so.
      if (spec->world == WorldKind::kGraph) {
        EXPECT_EQ(sharded.shards, 1) << entry.name;
      } else {
        EXPECT_EQ(sharded.shards, 8) << entry.name;
      }
      if (backend == Backend::kDes) {
        EXPECT_EQ(sharded.clusters_dispatched, single.clusters_dispatched)
            << entry.name;
        EXPECT_EQ(sharded.mean_cluster_size, single.mean_cluster_size)
            << entry.name;
        EXPECT_EQ(sharded.mean_blockers, single.mean_blockers) << entry.name;
        EXPECT_EQ(sharded.metro_seconds, single.metro_seconds) << entry.name;
      }
    }
  }
}

TEST(ScanModes, EpisodeReshardKeepsDigestsAcrossTheMidnightBoundary) {
  // The adaptive-partitioning guarantee end to end: a hotspot scenario
  // replayed across its day-0/day-1 midnight — where reshard = episode
  // moves the strip boundaries mid-run — must reach the same final state
  // as the unsharded board, the static equal-width partition, and the
  // pinned-pool configuration, on both backends.
  std::string error;
  auto spec = find_scenario("skewed_ville100", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 8630;  // straddles midnight at step 8640
  spec->window_end = 8652;
  spec->call_latency_us = 0;
  ASSERT_EQ(validate_spec(*spec), "");

  struct Variant {
    std::int32_t shards;
    PartitionChoice partition;
    ReshardMode reshard;
    PinMode pin;
  };
  const Variant variants[] = {
      {1, PartitionChoice::kWidth, ReshardMode::kOff, PinMode::kNone},
      {4, PartitionChoice::kWidth, ReshardMode::kOff, PinMode::kNone},
      {4, PartitionChoice::kPopulation, ReshardMode::kEpisode, PinMode::kNone},
      {4, PartitionChoice::kWidth, ReshardMode::kEpisode, PinMode::kCores},
  };
  for (Backend backend : {Backend::kDes, Backend::kEngine}) {
    spec->backend = backend;
    std::uint64_t reference = 0;
    for (std::size_t v = 0; v < std::size(variants); ++v) {
      spec->shards = variants[v].shards;
      spec->partition = variants[v].partition;
      spec->reshard = variants[v].reshard;
      spec->pin = variants[v].pin;
      const auto report = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
      if (v == 0) {
        reference = report.scoreboard_digest;
      } else {
        EXPECT_EQ(report.scoreboard_digest, reference)
            << "variant " << v << " on " << backend_name(backend);
      }
      EXPECT_EQ(report.days, 2);
    }
  }
}

TEST(ScanModes, GymReportCarriesDependencySparsity) {
  // The arena/gym path reports mean blockers and mean cluster size from
  // the OOO engine's scoreboard, like the trace paths do.
  std::string error;
  auto spec = find_scenario("quickstart_arena", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->steps_per_day = 20;
  spec->call_latency_us = 0;
  const auto report = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  EXPECT_GT(report.clusters_dispatched, 0u);
  EXPECT_GT(report.mean_cluster_size, 0.0);
  EXPECT_GE(report.mean_blockers, 0.0);
  EXPECT_NE(report.summary().find("mean-blockers"), std::string::npos);
}

// ---- Remainder-preserving segment splits ----

TEST(SegmentSplit, DistributesTheRemainderAcrossSegments) {
  EXPECT_EQ(segment_agent_counts(25, 4),
            (std::vector<std::int32_t>{7, 6, 6, 6}));
  EXPECT_EQ(segment_agent_counts(8, 8),
            (std::vector<std::int32_t>{1, 1, 1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(segment_agent_counts(50, 2),
            (std::vector<std::int32_t>{25, 25}));
  std::int32_t total = 0;
  for (auto c : segment_agent_counts(103, 7)) total += c;
  EXPECT_EQ(total, 103);
  EXPECT_THROW(segment_agent_counts(3, 4), CheckError);
}

TEST(SegmentSplit, GeometricSkewPilesAgentsOnTheFirstSegments) {
  // skew = 0 reduces to the even split exactly.
  EXPECT_EQ(segment_agent_counts(25, 4, 0.0), segment_agent_counts(25, 4));
  // A skewed split still sums exactly, keeps every segment populated,
  // and is non-increasing (geometric weights are).
  const auto counts = segment_agent_counts(1000, 40, 0.3);
  ASSERT_EQ(counts.size(), 40u);
  std::int32_t total = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    total += counts[k];
    EXPECT_GE(counts[k], 1) << "segment " << k;
    if (k > 0) EXPECT_LE(counts[k], counts[k - 1]) << "segment " << k;
  }
  EXPECT_EQ(total, 1000);
  // The hotspot is real: the first segment carries several times the
  // even share of 25.
  EXPECT_GE(counts[0], 100);
  // Degenerate shapes: one segment takes everything; agents == segments
  // leaves exactly one each regardless of skew.
  EXPECT_EQ(segment_agent_counts(7, 1, 0.5),
            (std::vector<std::int32_t>{7}));
  EXPECT_EQ(segment_agent_counts(5, 5, 0.9),
            (std::vector<std::int32_t>{1, 1, 1, 1, 1}));
}

TEST(SegmentSplit, TraceAndReportCarryEveryRequestedAgent) {
  // 25 agents over 4 segments used to silently simulate 24 (25/4*4).
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->agents = 25;
  spec->segments = 4;
  spec->window_begin = 4320;
  spec->window_end = 4340;
  ASSERT_EQ(validate_spec(*spec), "");

  const ScenarioDriver driver(*spec);
  EXPECT_EQ(driver.build_trace().n_agents, 25);

  const auto report = driver.run(/*serial_baseline=*/false);
  EXPECT_EQ(report.agents, 25);
  EXPECT_EQ(report.agent_steps, 25u * 20u);
}

// ---- Gym start placement ----

TEST(GymStarts, UniqueWalkableAndComplete) {
  // Overflowing grid anchors used to clamp several agents onto one tile.
  const auto arena = world::GridMap::arena(10, 10);
  const auto starts = plan_gym_starts(arena, 60);
  ASSERT_EQ(starts.size(), 60u);
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (const Tile& t : starts) {
    EXPECT_TRUE(arena.walkable(t)) << t.x << "," << t.y;
    EXPECT_TRUE(seen.insert({t.x, t.y}).second)
        << "duplicate start " << t.x << "," << t.y;
  }
}

TEST(GymStarts, AvoidsUnwalkableTilesOnBuiltUpMaps) {
  const auto ville = world::GridMap::smallville(25);
  const auto starts = plan_gym_starts(ville, 40);
  ASSERT_EQ(starts.size(), 40u);
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (const Tile& t : starts) {
    EXPECT_TRUE(ville.walkable(t));
    EXPECT_TRUE(seen.insert({t.x, t.y}).second);
  }
}

TEST(GymStarts, FailsLoudlyWhenTheMapCannotSeatEveryone) {
  const auto tiny = world::GridMap::arena(4, 4);
  EXPECT_EQ(plan_gym_starts(tiny, 16).size(), 16u);  // exactly full
  EXPECT_THROW(plan_gym_starts(tiny, 17), CheckError);
  ScenarioSpec spec;
  spec.map = MapKind::kArena;
  spec.map_width = 4;
  spec.map_height = 4;
  spec.agents = 17;
  spec.backend = Backend::kEngine;
  EXPECT_NE(validate_spec(spec), "");
}

// ---- Baseline-skipped summaries ----

TEST(Report, SummaryOmitsBaselineWhenSerialSkipped) {
  std::string error;
  auto spec = find_scenario("sparse_ville", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->agents = 4;
  spec->window_begin = 4320;
  spec->window_end = 4360;

  const auto with = ScenarioDriver(*spec).run(/*serial_baseline=*/true);
  EXPECT_TRUE(with.has_serial);
  EXPECT_NE(with.summary().find("baseline"), std::string::npos);
  EXPECT_NE(with.summary().find("vs serial"), std::string::npos);

  const auto without = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  EXPECT_FALSE(without.has_serial);
  EXPECT_EQ(without.summary().find("baseline"), std::string::npos);
  EXPECT_EQ(without.summary().find("vs serial"), std::string::npos);
  EXPECT_NE(without.summary().find("vs sync"), std::string::npos);
}

TEST(Report, EngineRunsSurfaceChainPoolDiagnostics) {
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 4320;
  spec->window_end = 4350;
  spec->call_latency_us = 20;

  // DES has no chain pool; its summary must not show one.
  const auto des = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  EXPECT_EQ(des.pool_workers, 0);
  EXPECT_EQ(des.summary().find("chain-pool"), std::string::npos);

  // The engine backend reports the per-run pool size (derived: 2x
  // workers) and the in-flight high-water mark.
  spec->backend = Backend::kEngine;
  const auto engine = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  EXPECT_EQ(engine.pool_workers, spec->resolved_pool_workers());
  EXPECT_GE(engine.peak_inflight_tasks, 1u);
  EXPECT_NE(engine.summary().find("chain-pool"), std::string::npos);

  // An explicit pool_workers override is what the run actually uses.
  spec->pool_workers = 3;
  const auto sized = ScenarioDriver(*spec).run(/*serial_baseline=*/false);
  EXPECT_EQ(sized.pool_workers, 3);
}

// ---- The virtual-time engine clock ----

// Sanitizers slow compute (TSan ~15x, ASan ~2-4x), and that slowdown
// leaks into the scaled virtual axis — the accuracy tolerances below
// cannot hold under them. The test still runs under the sanitizers for
// its race/memory coverage (SimClock + CostModelLlmClient shared across
// engine workers); only the tolerance assertions are gated out.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define AIMETRO_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define AIMETRO_UNDER_SANITIZER 1
#endif
#endif
#ifndef AIMETRO_UNDER_SANITIZER
#define AIMETRO_UNDER_SANITIZER 0
#endif

TEST(VirtualClock, EngineVirtualSecondsTrackTheDesBackend) {
  // Same spec on both backends; clock = virtual must report completion
  // times on the DES cost model's virtual axis within the documented
  // ±25% envelope (docs/ARCHITECTURE.md "Virtual time envelope"). The
  // test runs at the default time_scale = 1000: the envelope doc calls
  // out that 5000 amplifies the engine's real compute overhead to the
  // envelope edge, and on a contended host that edge is the difference
  // between a stable test and a flaky one. The engine run is also
  // retried: the accuracy claim is about the clock mapping, not about
  // any one scheduling of the host.
  std::string error;
  auto spec = find_scenario("smallville_day", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  spec->window_begin = 4320;
  spec->window_end = 4380;

  spec->backend = Backend::kDes;
  const auto des = ScenarioDriver(*spec).run();
  ASSERT_GT(des.serial_seconds, 0.0);
  ASSERT_GT(des.metro_seconds, 0.0);

  spec->backend = Backend::kEngine;
  spec->clock = ClockKind::kVirtual;
  spec->time_scale = 1000.0;  // ~2 s of wall time for this window
  constexpr int kAttempts = 3;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    const auto engine = ScenarioDriver(*spec).run();
    EXPECT_TRUE(engine.virtual_time);
    EXPECT_EQ(engine.total_calls, des.total_calls);
    EXPECT_NE(engine.summary().find("s (virtual)"), std::string::npos);
    // The engine's correctness guarantee holds under the virtual clock.
    EXPECT_EQ(engine.world_hash_serial, engine.world_hash_metro);

    if (AIMETRO_UNDER_SANITIZER) break;
    const double serial_ratio = engine.serial_seconds / des.serial_seconds;
    const double metro_ratio = engine.metro_seconds / des.metro_seconds;
    const bool accurate = std::abs(serial_ratio - 1.0) <= 0.25 &&
                          std::abs(metro_ratio - 1.0) <= 0.25;
    if (accurate) break;
    if (attempt == kAttempts) {
      EXPECT_NEAR(serial_ratio, 1.0, 0.25);
      EXPECT_NEAR(metro_ratio, 1.0, 0.25);
    }
  }
}

TEST(VirtualClock, WallClockStillDefaultAndWallLabelled) {
  std::string error;
  const auto spec = find_scenario("quickstart_arena", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->clock, ClockKind::kWall);
  auto small = *spec;
  small.agents = 4;
  small.steps_per_day = 20;
  small.call_latency_us = 50;
  const auto report = ScenarioDriver(small).run();
  EXPECT_FALSE(report.virtual_time);
  EXPECT_NE(report.summary().find("s (wall)"), std::string::npos);
}

}  // namespace
}  // namespace aimetro::scenario
