#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "trace/generator.h"
#include "trace/schema.h"
#include "trace/serialize.h"
#include "trace/stats.h"
#include "world/grid_map.h"
#include "world/social_graph.h"

namespace aimetro::trace {
namespace {

SimulationTrace day_trace(std::uint64_t seed, std::int32_t n_agents = 25) {
  const auto map = world::GridMap::smallville(std::min(n_agents, 26));
  GeneratorConfig cfg;
  cfg.n_agents = n_agents;
  cfg.seed = seed;
  return generate(map, cfg);
}

/// Calibration sweep over seeds: the generator must reproduce the paper's
/// published aggregates for any seed, not just a lucky one.
class GeneratorCalibration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorCalibration, MatchesPaperAggregates) {
  const SimulationTrace trace = day_trace(GetParam());
  const TraceStats stats = compute_stats(trace);
  // ~56.7k calls per 25-agent day (§4.1).
  EXPECT_NEAR(static_cast<double>(stats.total_calls), 56700.0, 56700.0 * 0.10);
  // Mean input 642.6 tokens, mean output 21.9 tokens.
  EXPECT_NEAR(stats.mean_input_tokens, 642.6, 642.6 * 0.10);
  EXPECT_NEAR(stats.mean_output_tokens, 21.9, 21.9 * 0.20);
  // Figure 4c shape: busy hour ~5000 calls, quiet hour ~800, sleep trough.
  EXPECT_NEAR(static_cast<double>(stats.calls_per_hour[12]), 5000.0, 900.0);
  EXPECT_NEAR(static_cast<double>(stats.calls_per_hour[6]), 800.0, 250.0);
  for (int h : {1, 2, 3}) {
    EXPECT_LT(stats.calls_per_hour[static_cast<std::size_t>(h)], 100u)
        << "hour " << h;
  }
  EXPECT_GT(stats.calls_per_hour[12], stats.calls_per_hour[6]);
  // Conversations exist and create interactions.
  EXPECT_GT(stats.conversations, 50u);
  EXPECT_GT(stats.interactions, 500u);
  // Dependency sparsity: a handful of real dependencies, far fewer than 25
  // (the paper measures 1.85 including self for the original trace).
  EXPECT_GT(stats.mean_prior_step_dependencies, 1.0);
  EXPECT_LT(stats.mean_prior_step_dependencies, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorCalibration,
                         ::testing::Values(42u, 7u, 12345u));

TEST(Generator, StructurallyValidAndDeterministic) {
  const SimulationTrace a = day_trace(99);
  const SimulationTrace b = day_trace(99);
  a.validate();
  EXPECT_EQ(a.total_calls(), b.total_calls());
  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].positions, b.agents[i].positions);
    EXPECT_EQ(a.agents[i].calls, b.agents[i].calls);
  }
  EXPECT_EQ(a.interactions, b.interactions);
}

TEST(Generator, AgentsSleepAtNight) {
  const SimulationTrace trace = day_trace(5);
  // At 2am (step 720) agents are in their homes, stationary.
  for (const AgentTrace& a : trace.agents) {
    EXPECT_EQ(a.positions[700], a.positions[740]);
  }
}

TEST(Generator, ConversationsAreSpatiallyConsistent) {
  const SimulationTrace trace = day_trace(8);
  // At every explicit interaction, the pair must be within perception
  // range (they were co-located when the conversation started and do not
  // move during it; allow the start-step offset of one move).
  for (const Interaction& in : trace.interactions) {
    const double d = euclidean(trace.position_at(in.a, in.step).center(),
                               trace.position_at(in.b, in.step).center());
    EXPECT_LE(d, trace.radius_p + 2 * trace.max_vel)
        << "step " << in.step << " agents " << in.a << "," << in.b;
  }
}

TEST(Slice, WindowsCallsAndPositions) {
  const SimulationTrace trace = day_trace(4);
  const SimulationTrace busy = slice(trace, 4320, 4680);
  busy.validate();
  EXPECT_EQ(busy.n_steps, 360);
  EXPECT_EQ(busy.start_step, 4320);
  EXPECT_EQ(busy.agents[0].positions.size(), 361u);
  EXPECT_EQ(busy.position_at(0, 4320), trace.position_at(0, 4320));
  for (const auto& agent : busy.agents) {
    for (const auto& call : agent.calls) {
      EXPECT_GE(call.step, 4320);
      EXPECT_LT(call.step, 4680);
    }
  }
  // Slice totals match the full trace restricted to the window.
  std::size_t expected = 0;
  for (const auto& agent : trace.agents) {
    for (const auto& call : agent.calls) {
      if (call.step >= 4320 && call.step < 4680) ++expected;
    }
  }
  EXPECT_EQ(busy.total_calls(), expected);
  EXPECT_THROW(slice(trace, 100, 100), CheckError);
}

TEST(Concatenate, OffsetsAgentsAndSpace) {
  GeneratorConfig cfg;
  cfg.n_agents = 5;
  const SimulationTrace big = generate_large_ville(3, cfg);
  big.validate();
  EXPECT_EQ(big.n_agents, 15);
  const auto map = world::GridMap::smallville(5);
  // Same-seed segment 0 reproduces inside the concatenation.
  GeneratorConfig seg_cfg = cfg;
  const SimulationTrace seg0 = generate(map, seg_cfg);
  EXPECT_EQ(big.agents[0].positions, seg0.agents[0].positions);
  // Segment 1 agents live in x ranges shifted by the stride.
  const std::int32_t stride = map.width() + 1;
  for (const Tile& t : big.agents[5].positions) {
    EXPECT_GE(t.x, stride);
    EXPECT_LT(t.x, 2 * stride);
  }
  // Interactions never cross segments.
  for (const Interaction& in : big.interactions) {
    EXPECT_EQ(in.a / 5, in.b / 5);
  }
}

TEST(GroupCalls, ChainsOrderedWithinStep) {
  const SimulationTrace trace = day_trace(3, 8);
  const StepCalls grouped = group_calls_by_step(trace.agents[0]);
  std::size_t total = 0;
  for (const auto& [step, chain] : grouped) {
    (void)step;
    EXPECT_FALSE(chain.empty());
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_LT(chain[i - 1]->seq, chain[i]->seq);
    }
    total += chain.size();
  }
  EXPECT_EQ(total, trace.agents[0].calls.size());
}

TEST(Serialize, BinaryRoundTripIsExact) {
  const SimulationTrace trace = day_trace(6, 6);
  std::stringstream ss;
  save_binary(trace, ss);
  const SimulationTrace loaded = load_binary(ss);
  EXPECT_EQ(loaded.n_agents, trace.n_agents);
  EXPECT_EQ(loaded.n_steps, trace.n_steps);
  EXPECT_EQ(loaded.radius_p, trace.radius_p);
  ASSERT_EQ(loaded.agents.size(), trace.agents.size());
  for (std::size_t i = 0; i < trace.agents.size(); ++i) {
    EXPECT_EQ(loaded.agents[i].positions, trace.agents[i].positions);
    EXPECT_EQ(loaded.agents[i].calls, trace.agents[i].calls);
  }
  EXPECT_EQ(loaded.interactions, trace.interactions);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a trace";
  EXPECT_THROW(load_binary(ss), CheckError);
}

TEST(Serialize, JsonlExportHasHeaderAndEvents) {
  const SimulationTrace trace = day_trace(2, 4);
  std::stringstream ss;
  export_jsonl(trace, ss);
  std::string line;
  ASSERT_TRUE(std::getline(ss, line));
  EXPECT_NE(line.find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(line.find("\"n_agents\":4"), std::string::npos);
  std::size_t calls = 0, moves = 0;
  while (std::getline(ss, line)) {
    if (line.find("\"type\":\"call\"") != std::string::npos) ++calls;
    if (line.find("\"type\":\"move\"") != std::string::npos) ++moves;
  }
  EXPECT_EQ(calls, trace.total_calls());
  EXPECT_GT(moves, 0u);
}

TEST(Stats, HourHistogramSumsToTotal) {
  const SimulationTrace trace = day_trace(10, 10);
  const TraceStats stats = compute_stats(trace);
  std::size_t sum = 0;
  for (const auto c : stats.calls_per_hour) sum += c;
  EXPECT_EQ(sum, stats.total_calls);
  EXPECT_FALSE(stats.to_string().empty());
}

// ---- Graph-world traces ----

namespace {

SimulationTrace graph_trace(std::uint64_t seed, std::int32_t n_agents = 6,
                            std::int32_t nodes = 60) {
  GeneratorConfig cfg;
  cfg.n_agents = n_agents;
  cfg.seed = seed;
  cfg.target_calls_per_25_agents = 6000.0;  // keep the tests fast
  return generate_social_graph(world::newman_watts_graph(nodes, 4, 0.1, seed),
                               cfg);
}

}  // namespace

TEST(GraphTrace, GeneratorEmitsAValidDeterministicGraphWorld) {
  const SimulationTrace a = graph_trace(5);
  a.validate();
  EXPECT_EQ(a.world_kind, WorldKind::kGraph);
  EXPECT_EQ(a.map_width, 60);  // node count
  EXPECT_EQ(a.map_height, 1);
  ASSERT_EQ(a.graph_adjacency.size(), 60u);
  EXPECT_GT(a.total_calls(), 0u);
  EXPECT_GT(a.interactions.size(), 0u);
  // Positions encode node ids; consecutive positions stay or follow an
  // edge (validate() enforces this — spot-check the encoding here).
  for (const auto& agent : a.agents) {
    for (const Tile& t : agent.positions) {
      EXPECT_EQ(t.y, 0);
      EXPECT_GE(t.x, 0);
      EXPECT_LT(t.x, 60);
    }
  }
  // Same seed, same trace.
  const SimulationTrace b = graph_trace(5);
  EXPECT_EQ(a.total_calls(), b.total_calls());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].positions, b.agents[i].positions);
    EXPECT_EQ(a.agents[i].calls, b.agents[i].calls);
  }
  EXPECT_EQ(a.interactions, b.interactions);
}

TEST(GraphTrace, ConversationPartnersShareANode) {
  // Graph conversations happen between co-located agents, like grid
  // conversations happen within speaking distance.
  const SimulationTrace trace = graph_trace(11);
  for (const Interaction& in : trace.interactions) {
    EXPECT_EQ(trace.position_at(in.a, in.step).x,
              trace.position_at(in.b, in.step).x)
        << "interaction at step " << in.step;
  }
}

TEST(GraphTrace, BinaryRoundTripKeepsWorldKindAndAdjacency) {
  const SimulationTrace trace = graph_trace(7);
  std::stringstream ss;
  save_binary(trace, ss);
  const SimulationTrace loaded = load_binary(ss);
  loaded.validate();
  EXPECT_EQ(loaded.world_kind, WorldKind::kGraph);
  EXPECT_EQ(loaded.graph_adjacency, trace.graph_adjacency);
  EXPECT_EQ(loaded.map_width, trace.map_width);
  EXPECT_EQ(loaded.map_height, trace.map_height);
  ASSERT_EQ(loaded.agents.size(), trace.agents.size());
  for (std::size_t i = 0; i < trace.agents.size(); ++i) {
    EXPECT_EQ(loaded.agents[i].positions, trace.agents[i].positions);
    EXPECT_EQ(loaded.agents[i].calls, trace.agents[i].calls);
  }
  EXPECT_EQ(loaded.interactions, trace.interactions);
}

TEST(GraphTrace, JsonlHeaderNamesTheGraphWorld) {
  const SimulationTrace trace = graph_trace(3, 2, 30);
  std::stringstream ss;
  export_jsonl(trace, ss);
  std::string header;
  ASSERT_TRUE(std::getline(ss, header));
  EXPECT_NE(header.find("\"world\":\"graph\""), std::string::npos);
  EXPECT_NE(header.find("\"nodes\":30"), std::string::npos);
}

TEST(GraphTrace, SliceKeepsGraphFieldsAndSegmentsReject) {
  const SimulationTrace trace = graph_trace(9);
  const SimulationTrace busy = slice(trace, 4320, 4680);
  busy.validate();
  EXPECT_EQ(busy.world_kind, WorldKind::kGraph);
  EXPECT_EQ(busy.graph_adjacency, trace.graph_adjacency);
  // x-offset segment concatenation is meaningless on node ids.
  EXPECT_THROW(concatenate_segments({trace, trace}, trace.map_width + 1),
               CheckError);
}

TEST(GraphTrace, ValidateCatchesNonEdgeHopsAndBadAdjacency) {
  SimulationTrace trace = graph_trace(13);
  {
    // Teleport across the graph: consecutive positions must share an edge.
    SimulationTrace bad = trace;
    auto& positions = bad.agents[0].positions;
    const std::int32_t from = positions[100].x;
    // Pick a node that is not `from` and not adjacent to it.
    std::int32_t far = -1;
    for (std::int32_t v = 0; v < bad.map_width; ++v) {
      const auto& nbrs = bad.graph_adjacency[static_cast<std::size_t>(from)];
      if (v != from &&
          !std::binary_search(nbrs.begin(), nbrs.end(), v)) {
        far = v;
        break;
      }
    }
    ASSERT_GE(far, 0);
    positions[101] = Tile{far, 0};
    EXPECT_THROW(bad.validate(), CheckError);
  }
  {
    // Adjacency must stay sorted.
    SimulationTrace bad = trace;
    auto& nbrs = bad.graph_adjacency[0];
    ASSERT_GE(nbrs.size(), 2u);
    std::swap(nbrs[0], nbrs[1]);
    EXPECT_THROW(bad.validate(), CheckError);
  }
  {
    // Graph traces carry map dims = nodes x 1.
    SimulationTrace bad = trace;
    bad.map_height = 2;
    EXPECT_THROW(bad.validate(), CheckError);
  }
}

TEST(Validate, CatchesSpeedViolations) {
  SimulationTrace trace = day_trace(1, 4);
  trace.agents[0].positions[100] = Tile{0, 0};
  trace.agents[0].positions[101] = Tile{50, 50};
  EXPECT_THROW(trace.validate(), CheckError);
}

TEST(Validate, CatchesUnsortedCalls) {
  SimulationTrace trace = day_trace(1, 4);
  auto& calls = trace.agents[1].calls;
  ASSERT_GE(calls.size(), 2u);
  std::swap(calls[0], calls[1]);
  EXPECT_THROW(trace.validate(), CheckError);
}

}  // namespace
}  // namespace aimetro::trace
