#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/metric.h"
#include "world/graph_index.h"
#include "world/grid_map.h"
#include "world/pathfinding.h"
#include "world/region_partition.h"
#include "world/social_graph.h"
#include "world/spatial_index.h"
#include "world/world_state.h"

namespace aimetro::world {
namespace {

TEST(GridMap, BoundsAndWalkability) {
  GridMap map(10, 5);
  EXPECT_TRUE(map.walkable(Tile{0, 0}));
  EXPECT_TRUE(map.walkable(Tile{9, 4}));
  EXPECT_FALSE(map.walkable(Tile{10, 0}));
  EXPECT_FALSE(map.walkable(Tile{0, -1}));
  map.set_walkable(Tile{3, 3}, false);
  EXPECT_FALSE(map.walkable(Tile{3, 3}));
  map.block_rect(Rect{0, 0, 2, 2});
  EXPECT_FALSE(map.walkable(Tile{1, 1}));
}

TEST(GridMap, NeighborsRespectWalls) {
  GridMap map(5, 5);
  map.set_walkable(Tile{2, 1}, false);
  const auto n = map.neighbors(Tile{2, 2});
  EXPECT_EQ(n.size(), 3u);  // up blocked
  const auto corner = map.neighbors(Tile{0, 0});
  EXPECT_EQ(corner.size(), 2u);
}

TEST(GridMap, ArenasAndObjects) {
  GridMap map(20, 20);
  map.add_arena("cafe", Rect{2, 2, 6, 6});
  map.add_object("machine", Tile{4, 4});
  ASSERT_NE(map.arena("cafe"), nullptr);
  EXPECT_EQ(map.arena("nope"), nullptr);
  EXPECT_EQ(map.arena_at(Tile{3, 3})->name, "cafe");
  EXPECT_EQ(map.arena_at(Tile{10, 10}), nullptr);
  EXPECT_EQ(map.object("machine")->tile, (Tile{4, 4}));
  EXPECT_THROW(map.add_arena("cafe", Rect{}), CheckError);
}

TEST(GridMap, SmallvilleLayout) {
  const GridMap map = GridMap::smallville(25);
  EXPECT_EQ(map.width(), 140);
  EXPECT_EQ(map.height(), 100);
  EXPECT_NE(map.arena("home_0"), nullptr);
  EXPECT_NE(map.arena("home_24"), nullptr);
  EXPECT_NE(map.arena("cafe"), nullptr);
  EXPECT_NE(map.arena("park"), nullptr);
  EXPECT_NE(map.object("bed_0"), nullptr);
  EXPECT_NE(map.object("espresso_machine"), nullptr);
}

TEST(GridMap, SmallvilleHomesReachCafe) {
  const GridMap map = GridMap::smallville(25);
  for (int h : {0, 1, 12, 24}) {
    const Tile bed = map.object("bed_" + std::to_string(h))->tile;
    const Tile start = nearest_walkable(map, bed);
    const Tile goal = nearest_walkable(map, map.arena("cafe")->rect.center());
    EXPECT_FALSE(find_path(map, start, goal).empty()) << "home_" << h;
  }
}

TEST(GridMap, ConcatenationOffsetsAndDividers) {
  const GridMap seg = GridMap::smallville(4);
  const GridMap big = GridMap::concatenate(seg, 3);
  EXPECT_EQ(big.width(), (seg.width() + 1) * 3);
  EXPECT_EQ(big.segment_stride(), seg.width() + 1);
  ASSERT_NE(big.arena("seg0/cafe"), nullptr);
  ASSERT_NE(big.arena("seg2/cafe"), nullptr);
  EXPECT_EQ(big.arena("seg1/cafe")->rect.x0,
            big.arena("seg0/cafe")->rect.x0 + seg.width() + 1);
  // Dividers prevent cross-segment paths.
  const Tile in_seg0 = nearest_walkable(big, big.arena("seg0/cafe")->rect.center());
  const Tile in_seg1 = nearest_walkable(big, big.arena("seg1/cafe")->rect.center());
  EXPECT_TRUE(find_path(big, in_seg0, in_seg1).empty());
}

TEST(SpatialIndex, InsertQueryRemove) {
  SpatialIndex idx(4.0);
  idx.insert(0, Pos{1, 1});
  idx.insert(1, Pos{2, 2});
  idx.insert(2, Pos{50, 50});
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.query_radius(Pos{0, 0}, 5.0),
            (std::vector<AgentId>{0, 1}));
  EXPECT_EQ(idx.query_radius(Pos{50, 50}, 0.5), (std::vector<AgentId>{2}));
  idx.remove(1);
  EXPECT_EQ(idx.query_radius(Pos{0, 0}, 5.0), (std::vector<AgentId>{0}));
  idx.remove(1);  // no-op
  EXPECT_EQ(idx.size(), 2u);
}

TEST(SpatialIndex, UpdateMovesAcrossCells) {
  SpatialIndex idx(4.0);
  idx.insert(7, Pos{0, 0});
  idx.update(7, Pos{100, 100});
  EXPECT_TRUE(idx.query_radius(Pos{0, 0}, 10.0).empty());
  EXPECT_EQ(idx.query_radius(Pos{100, 100}, 1.0), (std::vector<AgentId>{7}));
  EXPECT_EQ(idx.position(7), (Pos{100, 100}));
  idx.update(42, Pos{5, 5});  // insert-or-move inserts
  EXPECT_TRUE(idx.contains(42));
}

TEST(SpatialIndex, BoxQueryIsChebyshevBall) {
  SpatialIndex idx(3.0);
  idx.insert(0, Pos{0, 0});
  idx.insert(1, Pos{4, 4});    // chebyshev 4, euclidean 5.66
  idx.insert(2, Pos{5, 0});    // chebyshev 5
  EXPECT_EQ(idx.query_box(Pos{0, 0}, 4.0), (std::vector<AgentId>{0, 1}));
  EXPECT_EQ(idx.query_radius(Pos{0, 0}, 5.0), (std::vector<AgentId>{0, 2}));
}

TEST(SpatialIndex, BulkInsertMatchesIncrementalInserts) {
  SpatialIndex bulk(4.0);
  SpatialIndex one_by_one(4.0);
  std::vector<std::pair<AgentId, Pos>> items;
  for (AgentId i = 0; i < 64; ++i) {
    const Pos p{static_cast<double>((i * 17) % 40),
                static_cast<double>((i * 29) % 40)};
    items.emplace_back(i, p);
    one_by_one.insert(i, p);
  }
  bulk.bulk_insert(items);
  EXPECT_EQ(bulk.size(), one_by_one.size());
  for (double r : {0.0, 3.0, 10.0, 50.0}) {
    EXPECT_EQ(bulk.query_box(Pos{20, 20}, r),
              one_by_one.query_box(Pos{20, 20}, r));
  }
}

TEST(SpatialIndex, QueryIntoBufferReusesCapacityAndSorts) {
  SpatialIndex idx(4.0);
  for (AgentId i = 0; i < 32; ++i) {
    idx.insert(i, Pos{static_cast<double>(i % 8), static_cast<double>(i / 8)});
  }
  std::vector<AgentId> buf;
  idx.query_box_into(Pos{3.5, 1.5}, 10.0, &buf);
  EXPECT_EQ(buf.size(), 32u);
  EXPECT_TRUE(std::is_sorted(buf.begin(), buf.end()));
  const std::size_t cap = buf.capacity();
  idx.query_box_into(Pos{0, 0}, 0.5, &buf);
  EXPECT_EQ(buf, (std::vector<AgentId>{0}));
  EXPECT_EQ(buf.capacity(), cap);  // cleared, not reallocated
  // Same-cell position updates must be visible to the box filter.
  idx.update(0, Pos{1.0, 1.0});
  idx.query_box_into(Pos{0, 0}, 0.5, &buf);
  EXPECT_TRUE(buf.empty());
}

TEST(SocialGraph, NewmanWattsIsConnectedSortedAndDeterministic) {
  const auto adj = newman_watts_graph(/*nodes=*/50, /*degree=*/4,
                                      /*shortcut_prob=*/0.3, /*seed=*/9);
  ASSERT_EQ(adj.size(), 50u);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    EXPECT_TRUE(std::is_sorted(adj[i].begin(), adj[i].end())) << "node " << i;
    EXPECT_TRUE(std::adjacent_find(adj[i].begin(), adj[i].end()) ==
                adj[i].end())
        << "duplicate neighbor at node " << i;
    for (std::int32_t j : adj[i]) {
      ASSERT_GE(j, 0);
      ASSERT_LT(j, 50);
      EXPECT_NE(j, static_cast<std::int32_t>(i)) << "self-loop at " << i;
      // Undirected: every edge appears from both ends.
      EXPECT_TRUE(std::binary_search(adj[static_cast<std::size_t>(j)].begin(),
                                     adj[static_cast<std::size_t>(j)].end(),
                                     static_cast<std::int32_t>(i)));
    }
    // The ring lattice is kept intact (shortcuts only add edges), so
    // every node keeps at least its degree-4 ring neighborhood.
    EXPECT_GE(adj[i].size(), 4u) << "node " << i;
  }
  // Connected: BFS from node 0 reaches everything (the ring guarantees
  // it; this pins the guarantee).
  std::vector<bool> seen(adj.size(), false);
  std::vector<std::int32_t> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    for (std::int32_t w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        ++reached;
        stack.push_back(w);
      }
    }
  }
  EXPECT_EQ(reached, adj.size());
  // Deterministic in the seed; shortcut_prob > 0 actually adds shortcuts.
  EXPECT_EQ(newman_watts_graph(50, 4, 0.3, 9), adj);
  EXPECT_NE(newman_watts_graph(50, 4, 0.3, 10), adj);
  std::size_t edge_ends = 0;
  for (const auto& nbrs : adj) edge_ends += nbrs.size();
  EXPECT_GT(edge_ends, 50u * 4u);  // ring + at least one shortcut
  // Degenerate knobs are rejected loudly.
  EXPECT_THROW(newman_watts_graph(2, 2, 0.1, 1), CheckError);
  EXPECT_THROW(newman_watts_graph(10, 3, 0.1, 1), CheckError);   // odd degree
  EXPECT_THROW(newman_watts_graph(10, 10, 0.1, 1), CheckError);  // >= nodes
}

TEST(GraphIndex, InsertRemoveUpdateAndBallProbes) {
  // 0-1-2-3-4 chain: hop balls are exactly id ranges.
  const std::vector<std::vector<std::int32_t>> adj{
      {1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  GraphIndex idx(&adj);
  EXPECT_EQ(idx.node_count(), 5);
  for (AgentId i = 0; i < 5; ++i) {
    idx.insert(i, Pos{static_cast<double>(i), 0});
  }
  EXPECT_EQ(idx.size(), 5u);
  EXPECT_EQ(idx.query_ball(Pos{2, 0}, 1.0), (std::vector<AgentId>{1, 2, 3}));
  // floor(1.9) = 1 hop: fractional radii round down (hop distances are
  // integral, so this IS the metric ball of radius 1.9).
  EXPECT_EQ(idx.query_ball(Pos{2, 0}, 1.9), (std::vector<AgentId>{1, 2, 3}));
  EXPECT_EQ(idx.query_ball(Pos{0, 0}, 0.0), (std::vector<AgentId>{0}));
  EXPECT_EQ(idx.query_ball(Pos{0, 0}, 10.0),
            (std::vector<AgentId>{0, 1, 2, 3, 4}));
  idx.remove(2);
  EXPECT_EQ(idx.query_ball(Pos{2, 0}, 1.0), (std::vector<AgentId>{1, 3}));
  idx.remove(2);  // no-op
  EXPECT_EQ(idx.size(), 4u);
  idx.update(0, Pos{4, 0});  // move across the chain
  EXPECT_EQ(idx.query_ball(Pos{4, 0}, 1.0), (std::vector<AgentId>{0, 3, 4}));
  idx.update(2, Pos{2, 0});  // insert-or-move inserts
  EXPECT_TRUE(idx.contains(2));
  EXPECT_EQ(idx.position(2), (Pos{2, 0}));
  // Crowds: many agents on one node all come back, sorted by id.
  idx.update(4, Pos{2, 0});
  idx.update(1, Pos{2, 0});
  EXPECT_EQ(idx.query_ball(Pos{2, 0}, 0.0), (std::vector<AgentId>{1, 2, 4}));
}

TEST(GraphIndex, RandomizedBallMatchesBruteMetricScan) {
  // The exactness claim behind the scoreboard's graph probes: the
  // depth-floor(r) BFS ball equals the set of agents whose GraphMetric
  // distance is <= r, for random small-world graphs, placements, centers,
  // and (fractional) radii.
  Rng rng(77);
  for (int round = 0; round < 8; ++round) {
    const int nodes = 20 + 15 * round;
    const auto adj = newman_watts_graph(nodes, 4, 0.15, 900 + round);
    const core::GraphMetric metric(adj);
    GraphIndex idx(&adj);
    std::vector<Pos> pos;
    const int n_agents = 10 + 7 * round;
    for (AgentId i = 0; i < n_agents; ++i) {
      pos.push_back(Pos{static_cast<double>(rng.uniform_int(0, nodes - 1)), 0});
      idx.insert(i, pos.back());
    }
    for (double radius : {0.0, 1.0, 1.5, 2.0, 2.9, 3.0, 6.0}) {
      const Pos center{static_cast<double>(rng.uniform_int(0, nodes - 1)), 0};
      std::vector<AgentId> brute;
      for (AgentId i = 0; i < n_agents; ++i) {
        if (metric.distance(center, pos[static_cast<std::size_t>(i)]) <=
            radius) {
          brute.push_back(i);
        }
      }
      EXPECT_EQ(idx.query_ball(center, radius), brute)
          << "round " << round << " radius " << radius;
    }
  }
}

TEST(Pathfinding, ShortestOnOpenGrid) {
  GridMap map(20, 20);
  const auto path = find_path(map, Tile{1, 1}, Tile{6, 4});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), (Tile{1, 1}));
  EXPECT_EQ(path.back(), (Tile{6, 4}));
  EXPECT_EQ(path.size(), 9u);  // manhattan distance 8 + start
  // Each hop is a 4-neighbor move.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(std::abs(path[i].x - path[i - 1].x) +
                  std::abs(path[i].y - path[i - 1].y),
              1);
  }
}

TEST(Pathfinding, RoutesAroundWalls) {
  GridMap map(10, 10);
  map.block_rect(Rect{5, 0, 5, 8});  // wall with gap at y=9
  const auto path = find_path(map, Tile{2, 2}, Tile{8, 2});
  ASSERT_FALSE(path.empty());
  EXPECT_GT(path.size(), 7u);  // must detour
  bool passes_gap = false;
  for (const Tile& t : path) {
    if (t.x == 5) {
      EXPECT_EQ(t.y, 9);
      passes_gap = true;
    }
  }
  EXPECT_TRUE(passes_gap);
}

TEST(Pathfinding, UnreachableReturnsEmpty) {
  GridMap map(10, 10);
  map.block_rect(Rect{4, 0, 4, 9});
  EXPECT_TRUE(find_path(map, Tile{0, 0}, Tile{9, 9}).empty());
  EXPECT_EQ(find_path(map, Tile{2, 2}, Tile{2, 2}).size(), 1u);
}

TEST(Pathfinding, NearestWalkable) {
  GridMap map(10, 10);
  map.block_rect(Rect{3, 3, 5, 5});
  EXPECT_EQ(nearest_walkable(map, Tile{7, 7}), (Tile{7, 7}));
  const Tile near = nearest_walkable(map, Tile{4, 4});
  EXPECT_TRUE(map.walkable(near));
  EXPECT_LE(chebyshev(near.center(), Pos{4, 4}), 2.0);
}

class WorldStateTest : public ::testing::Test {
 protected:
  WorldStateTest() : map_(GridMap(20, 20)) {
    map_.add_object("fountain", Tile{10, 10});
  }
  GridMap map_;
};

TEST_F(WorldStateTest, MoveCommitAndPerception) {
  WorldState w(&map_, {Tile{1, 1}, Tile{3, 1}, Tile{15, 15}});
  EXPECT_EQ(w.tile_of(0), (Tile{1, 1}));
  std::vector<StepIntent> intents(1);
  intents[0].agent = 0;
  intents[0].move_to = Tile{2, 1};
  const auto outcomes = w.resolve_conflict_and_commit(0, intents);
  EXPECT_TRUE(outcomes[0].move_ok);
  EXPECT_EQ(w.tile_of(0), (Tile{2, 1}));
  EXPECT_EQ(w.agents_within(Pos{2, 1}, 2.0), (std::vector<AgentId>{0, 1}));
}

TEST_F(WorldStateTest, MoveConflictLowestIdWins) {
  WorldState w(&map_, {Tile{1, 1}, Tile{3, 1}});
  std::vector<StepIntent> intents(2);
  intents[0].agent = 1;  // shuffled order: resolution must sort by id
  intents[0].move_to = Tile{2, 1};
  intents[1].agent = 0;
  intents[1].move_to = Tile{2, 1};
  const auto outcomes = w.resolve_conflict_and_commit(0, intents);
  // outcomes are in id order after sorting
  EXPECT_EQ(outcomes[0].agent, 0);
  EXPECT_TRUE(outcomes[0].move_ok);
  EXPECT_EQ(outcomes[1].agent, 1);
  EXPECT_FALSE(outcomes[1].move_ok);
  EXPECT_EQ(w.tile_of(0), (Tile{2, 1}));
  EXPECT_EQ(w.tile_of(1), (Tile{3, 1}));
}

TEST_F(WorldStateTest, CannotMoveOntoStationaryAgent) {
  WorldState w(&map_, {Tile{1, 1}, Tile{2, 1}});
  std::vector<StepIntent> intents(1);
  intents[0].agent = 0;
  intents[0].move_to = Tile{2, 1};
  const auto outcomes = w.resolve_conflict_and_commit(0, intents);
  EXPECT_FALSE(outcomes[0].move_ok);
}

TEST_F(WorldStateTest, SwapAllowedWhenBothVacate) {
  WorldState w(&map_, {Tile{1, 1}, Tile{2, 1}});
  std::vector<StepIntent> intents(2);
  intents[0].agent = 0;
  intents[0].move_to = Tile{2, 1};
  intents[1].agent = 1;
  intents[1].move_to = Tile{1, 1};
  const auto outcomes = w.resolve_conflict_and_commit(0, intents);
  EXPECT_TRUE(outcomes[0].move_ok);
  EXPECT_TRUE(outcomes[1].move_ok);
  EXPECT_EQ(w.tile_of(0), (Tile{2, 1}));
  EXPECT_EQ(w.tile_of(1), (Tile{1, 1}));
}

TEST_F(WorldStateTest, SpeedLimitEnforced) {
  WorldState w(&map_, {Tile{1, 1}});
  std::vector<StepIntent> intents(1);
  intents[0].agent = 0;
  intents[0].move_to = Tile{5, 5};  // too far for one step
  const auto outcomes = w.resolve_conflict_and_commit(0, intents);
  EXPECT_FALSE(outcomes[0].move_ok);
  EXPECT_EQ(w.tile_of(0), (Tile{1, 1}));
}

TEST_F(WorldStateTest, ObjectClaimsAdjacencyAndContention) {
  WorldState w(&map_, {Tile{10, 11}, Tile{11, 10}, Tile{1, 1}});
  std::vector<StepIntent> intents(3);
  for (int i = 0; i < 3; ++i) {
    intents[static_cast<std::size_t>(i)].agent = i;
    intents[static_cast<std::size_t>(i)].claim_object = "fountain";
  }
  const auto outcomes = w.resolve_conflict_and_commit(0, intents);
  EXPECT_TRUE(outcomes[0].claim_ok);    // adjacent, lowest id
  EXPECT_FALSE(outcomes[1].claim_ok);   // adjacent but lost
  EXPECT_FALSE(outcomes[2].claim_ok);   // too far away
  ASSERT_NE(w.object_holder("fountain"), nullptr);
  EXPECT_EQ(*w.object_holder("fountain"), "agent_0");
  // Held object rejects later claimers.
  std::vector<StepIntent> again(1);
  again[0].agent = 1;
  again[0].claim_object = "fountain";
  EXPECT_FALSE(w.resolve_conflict_and_commit(1, again)[0].claim_ok);
}

TEST_F(WorldStateTest, EventsFilteredAndSorted) {
  WorldState w(&map_, {Tile{5, 5}, Tile{6, 5}, Tile{15, 15}});
  std::vector<StepIntent> intents(3);
  for (int i = 0; i < 3; ++i) {
    intents[static_cast<std::size_t>(i)].agent = i;
    intents[static_cast<std::size_t>(i)].emit_event =
        "ev" + std::to_string(i);
  }
  w.resolve_conflict_and_commit(3, intents);
  const auto near = w.events_near(Pos{5, 5}, 4.0, 3, 3);
  ASSERT_EQ(near.size(), 2u);
  EXPECT_EQ(near[0].source, 0);
  EXPECT_EQ(near[1].source, 1);
  EXPECT_TRUE(w.events_near(Pos{5, 5}, 4.0, 4, 9).empty());
  EXPECT_EQ(w.event_count(), 3u);
}

TEST_F(WorldStateTest, AgentsWithinMatchesLinearScan) {
  // The shared-index perception query must equal the obvious O(n) scan
  // for randomized placements, centers, and radii (including radii far
  // beyond the index cell size and zero-radius self-hits).
  Rng rng(123);
  GridMap map(40, 40);
  std::vector<Tile> tiles;
  for (int i = 0; i < 60; ++i) {
    tiles.push_back(Tile{static_cast<std::int32_t>(rng.uniform_int(0, 39)),
                         static_cast<std::int32_t>(rng.uniform_int(0, 39))});
  }
  WorldState w(&map, tiles);
  for (int probe = 0; probe < 40; ++probe) {
    const Pos center{rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)};
    const double radius = rng.uniform(0.0, probe % 4 == 0 ? 60.0 : 8.0);
    std::vector<AgentId> brute;
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      if (euclidean(tiles[i].center(), center) <= radius) {
        brute.push_back(static_cast<AgentId>(i));
      }
    }
    EXPECT_EQ(w.agents_within(center, radius), brute)
        << "probe " << probe << " radius " << radius;
  }
}

TEST(WorldStateGraph, NodesAreVenuesMovesFollowEdges) {
  // Graph mode: legality is edge membership, and nodes hold crowds — the
  // exclusive-occupancy rules of grid mode must NOT apply.
  const std::vector<std::vector<std::int32_t>> adj{
      {1}, {0, 2}, {1, 3}, {2}};
  GridMap substrate(4, 1);
  WorldState w(&substrate, {Tile{0, 0}, Tile{1, 0}, Tile{1, 0}}, &adj);
  EXPECT_TRUE(w.graph_world());
  EXPECT_EQ(w.tile_of(1), w.tile_of(2));  // two agents share node 1

  // Edge move onto an occupied node succeeds (venues, not tiles).
  std::vector<StepIntent> intents(1);
  intents[0].agent = 0;
  intents[0].move_to = Tile{1, 0};
  auto outcomes = w.resolve_conflict_and_commit(0, intents);
  EXPECT_TRUE(outcomes[0].move_ok);
  EXPECT_EQ(w.tile_of(0), (Tile{1, 0}));  // three agents on node 1 now

  // Non-edge hops are denied: node 1's neighbors are {0, 2}, not 3.
  intents[0].move_to = Tile{3, 0};
  outcomes = w.resolve_conflict_and_commit(1, intents);
  EXPECT_FALSE(outcomes[0].move_ok);
  EXPECT_EQ(w.tile_of(0), (Tile{1, 0}));

  // Staying put is always legal; out-of-bounds nodes are denied.
  intents[0].move_to = Tile{1, 0};
  EXPECT_TRUE(w.resolve_conflict_and_commit(2, intents)[0].move_ok);
  intents[0].move_to = Tile{7, 0};
  EXPECT_FALSE(w.resolve_conflict_and_commit(3, intents)[0].move_ok);

  // Two agents converging on the same node both win — no conflict.
  std::vector<StepIntent> both(2);
  both[0].agent = 1;
  both[0].move_to = Tile{2, 0};
  both[1].agent = 2;
  both[1].move_to = Tile{2, 0};
  const auto pair = w.resolve_conflict_and_commit(4, both);
  EXPECT_TRUE(pair[0].move_ok);
  EXPECT_TRUE(pair[1].move_ok);
  EXPECT_EQ(w.tile_of(1), (Tile{2, 0}));
  EXPECT_EQ(w.tile_of(2), (Tile{2, 0}));
}

TEST_F(WorldStateTest, StateHashDetectsDifferences) {
  WorldState a(&map_, {Tile{1, 1}, Tile{2, 2}});
  WorldState b(&map_, {Tile{1, 1}, Tile{2, 2}});
  EXPECT_EQ(a.state_hash(), b.state_hash());
  std::vector<StepIntent> intents(1);
  intents[0].agent = 0;
  intents[0].move_to = Tile{1, 2};
  a.resolve_conflict_and_commit(0, intents);
  EXPECT_NE(a.state_hash(), b.state_hash());
  b.resolve_conflict_and_commit(0, intents);
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

// ---- Region partitions (adaptive strip boundaries) ----

TEST(RegionPartition, CutsClassifyLikeTheEquivalentUniformPartition) {
  // A cuts-based partition whose boundaries sit exactly at the uniform
  // positions must classify every position (and every box) identically to
  // the equal-width representation, including the half-open boundary
  // convention and out-of-range clamping.
  const RegionPartition uniform(4, 0.0, 100.0);
  const RegionPartition cuts({25.0, 50.0, 75.0}, 0.0, 100.0);
  EXPECT_TRUE(uniform.uniform());
  EXPECT_FALSE(cuts.uniform());
  for (double x : {-10.0, 0.0, 12.5, 24.999, 25.0, 49.0, 50.0, 74.9, 75.0,
                   99.0, 100.0, 250.0}) {
    EXPECT_EQ(cuts.shard_of(Pos{x, 0.0}), uniform.shard_of(Pos{x, 0.0}))
        << "x=" << x;
    for (double r : {0.0, 3.0, 30.0}) {
      const auto su = uniform.span_of_box(Pos{x, 0.0}, r);
      const auto sc = cuts.span_of_box(Pos{x, 0.0}, r);
      EXPECT_EQ(sc.lo, su.lo) << "x=" << x << " r=" << r;
      EXPECT_EQ(sc.hi, su.hi) << "x=" << x << " r=" << r;
    }
  }
  for (std::int32_t k = 0; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(cuts.boundary(k), uniform.boundary(k)) << k;
  }
}

TEST(RegionPartition, EqualPopulationBalancesASkewedHistogram) {
  // 90 agents piled into [0, 10), 10 spread over [10, 100): population
  // quantiles must put three of the four strips inside the hotspot, where
  // equal-width strips would leave three strips nearly empty.
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(i * 10.0 / 90.0);
  for (int i = 0; i < 10; ++i) xs.push_back(10.0 + i * 9.0);
  const auto part = RegionPartition::equal_population(4, xs);
  ASSERT_EQ(part.shards(), 4);
  std::vector<int> count(4, 0);
  for (double x : xs) ++count[static_cast<std::size_t>(
      part.shard_of(Pos{x, 0.0}))];
  for (int c : count) {
    EXPECT_GE(c, 20) << "strip far below its population share";
    EXPECT_LE(c, 30) << "strip far above its population share";
  }
  // All-identical positions degenerate to the single-strip-0 clamp.
  const auto flat =
      RegionPartition::equal_population(4, std::vector<double>(8, 5.0));
  for (double x : {-1.0, 5.0, 9.0}) {
    EXPECT_EQ(flat.shard_of(Pos{x, 0.0}), 0);
  }
}

TEST(RegionPartition, RebalancedMovesBoundariesTowardTheLoad) {
  // Strip 0 carried 3x the load of each other strip: after re-quantiling,
  // the first boundary must move left (strip 0 shrinks) and every
  // boundary stays sorted inside the range. Equal weights on a uniform
  // partition must reproduce the uniform boundaries.
  const RegionPartition uniform(4, 0.0, 100.0);
  const auto even = uniform.rebalanced({1.0, 1.0, 1.0, 1.0});
  for (std::int32_t k = 0; k <= 4; ++k) {
    EXPECT_NEAR(even.boundary(k), uniform.boundary(k), 1e-9) << k;
  }
  const auto skewed = uniform.rebalanced({3.0, 1.0, 1.0, 1.0});
  EXPECT_LT(skewed.boundary(1), uniform.boundary(1));
  EXPECT_LT(skewed.boundary(2), uniform.boundary(2));
  for (std::int32_t k = 1; k <= 4; ++k) {
    EXPECT_GE(skewed.boundary(k), skewed.boundary(k - 1)) << k;
  }
  EXPECT_GE(skewed.boundary(1), 0.0);
  EXPECT_LE(skewed.boundary(3), 100.0);
  // Hot strip 0 now splits across the first two new strips: the second
  // boundary lands inside old strip 0's [0, 25) span scaled by weight —
  // total 6, targets at 1.5/3.0/4.5 → cuts 12.5, 25, 62.5.
  EXPECT_NEAR(skewed.boundary(1), 12.5, 1e-9);
  EXPECT_NEAR(skewed.boundary(2), 25.0, 1e-9);
  EXPECT_NEAR(skewed.boundary(3), 62.5, 1e-9);
  // Degenerate inputs return the partition unchanged.
  const auto zero = uniform.rebalanced({0.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(zero, uniform);
}

TEST(RegionPartition, RebalancedHandlesZeroWeightEdgeStrips) {
  // Idle edge strips merge into their neighbors without producing
  // out-of-range or unsorted cuts.
  const RegionPartition uniform(4, 0.0, 80.0);
  const auto part = uniform.rebalanced({0.0, 5.0, 0.0, 0.0});
  for (std::int32_t k = 1; k <= 4; ++k) {
    EXPECT_GE(part.boundary(k), part.boundary(k - 1)) << k;
    EXPECT_GE(part.boundary(k), 0.0);
    EXPECT_LE(part.boundary(k), 80.0);
  }
  // All load sat in strip 1 ([20, 40)): every new boundary lands there.
  for (std::int32_t k = 1; k < 4; ++k) {
    EXPECT_GE(part.boundary(k), 20.0) << k;
    EXPECT_LE(part.boundary(k), 40.0) << k;
  }
}

}  // namespace
}  // namespace aimetro::world
